
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alpha_filter.cc" "src/core/CMakeFiles/ftl_core.dir/alpha_filter.cc.o" "gcc" "src/core/CMakeFiles/ftl_core.dir/alpha_filter.cc.o.d"
  "/root/repo/src/core/assignment.cc" "src/core/CMakeFiles/ftl_core.dir/assignment.cc.o" "gcc" "src/core/CMakeFiles/ftl_core.dir/assignment.cc.o.d"
  "/root/repo/src/core/blocking.cc" "src/core/CMakeFiles/ftl_core.dir/blocking.cc.o" "gcc" "src/core/CMakeFiles/ftl_core.dir/blocking.cc.o.d"
  "/root/repo/src/core/compatibility_model.cc" "src/core/CMakeFiles/ftl_core.dir/compatibility_model.cc.o" "gcc" "src/core/CMakeFiles/ftl_core.dir/compatibility_model.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/ftl_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/ftl_core.dir/engine.cc.o.d"
  "/root/repo/src/core/enrichment.cc" "src/core/CMakeFiles/ftl_core.dir/enrichment.cc.o" "gcc" "src/core/CMakeFiles/ftl_core.dir/enrichment.cc.o.d"
  "/root/repo/src/core/evidence.cc" "src/core/CMakeFiles/ftl_core.dir/evidence.cc.o" "gcc" "src/core/CMakeFiles/ftl_core.dir/evidence.cc.o.d"
  "/root/repo/src/core/identity_graph.cc" "src/core/CMakeFiles/ftl_core.dir/identity_graph.cc.o" "gcc" "src/core/CMakeFiles/ftl_core.dir/identity_graph.cc.o.d"
  "/root/repo/src/core/model_builders.cc" "src/core/CMakeFiles/ftl_core.dir/model_builders.cc.o" "gcc" "src/core/CMakeFiles/ftl_core.dir/model_builders.cc.o.d"
  "/root/repo/src/core/model_diagnostics.cc" "src/core/CMakeFiles/ftl_core.dir/model_diagnostics.cc.o" "gcc" "src/core/CMakeFiles/ftl_core.dir/model_diagnostics.cc.o.d"
  "/root/repo/src/core/naive_bayes.cc" "src/core/CMakeFiles/ftl_core.dir/naive_bayes.cc.o" "gcc" "src/core/CMakeFiles/ftl_core.dir/naive_bayes.cc.o.d"
  "/root/repo/src/core/sharded.cc" "src/core/CMakeFiles/ftl_core.dir/sharded.cc.o" "gcc" "src/core/CMakeFiles/ftl_core.dir/sharded.cc.o.d"
  "/root/repo/src/core/streaming.cc" "src/core/CMakeFiles/ftl_core.dir/streaming.cc.o" "gcc" "src/core/CMakeFiles/ftl_core.dir/streaming.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/traj/CMakeFiles/ftl_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ftl_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ftl_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
