file(REMOVE_RECURSE
  "CMakeFiles/ftl_core.dir/alpha_filter.cc.o"
  "CMakeFiles/ftl_core.dir/alpha_filter.cc.o.d"
  "CMakeFiles/ftl_core.dir/assignment.cc.o"
  "CMakeFiles/ftl_core.dir/assignment.cc.o.d"
  "CMakeFiles/ftl_core.dir/blocking.cc.o"
  "CMakeFiles/ftl_core.dir/blocking.cc.o.d"
  "CMakeFiles/ftl_core.dir/compatibility_model.cc.o"
  "CMakeFiles/ftl_core.dir/compatibility_model.cc.o.d"
  "CMakeFiles/ftl_core.dir/engine.cc.o"
  "CMakeFiles/ftl_core.dir/engine.cc.o.d"
  "CMakeFiles/ftl_core.dir/enrichment.cc.o"
  "CMakeFiles/ftl_core.dir/enrichment.cc.o.d"
  "CMakeFiles/ftl_core.dir/evidence.cc.o"
  "CMakeFiles/ftl_core.dir/evidence.cc.o.d"
  "CMakeFiles/ftl_core.dir/identity_graph.cc.o"
  "CMakeFiles/ftl_core.dir/identity_graph.cc.o.d"
  "CMakeFiles/ftl_core.dir/model_builders.cc.o"
  "CMakeFiles/ftl_core.dir/model_builders.cc.o.d"
  "CMakeFiles/ftl_core.dir/model_diagnostics.cc.o"
  "CMakeFiles/ftl_core.dir/model_diagnostics.cc.o.d"
  "CMakeFiles/ftl_core.dir/naive_bayes.cc.o"
  "CMakeFiles/ftl_core.dir/naive_bayes.cc.o.d"
  "CMakeFiles/ftl_core.dir/sharded.cc.o"
  "CMakeFiles/ftl_core.dir/sharded.cc.o.d"
  "CMakeFiles/ftl_core.dir/streaming.cc.o"
  "CMakeFiles/ftl_core.dir/streaming.cc.o.d"
  "libftl_core.a"
  "libftl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
