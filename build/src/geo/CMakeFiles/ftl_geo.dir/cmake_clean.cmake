file(REMOVE_RECURSE
  "CMakeFiles/ftl_geo.dir/projection.cc.o"
  "CMakeFiles/ftl_geo.dir/projection.cc.o.d"
  "libftl_geo.a"
  "libftl_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
