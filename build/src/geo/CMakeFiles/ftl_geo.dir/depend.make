# Empty dependencies file for ftl_geo.
# This may be replaced when dependencies are built.
