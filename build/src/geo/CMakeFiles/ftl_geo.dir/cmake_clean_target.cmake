file(REMOVE_RECURSE
  "libftl_geo.a"
)
