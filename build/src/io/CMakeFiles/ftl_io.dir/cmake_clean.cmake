file(REMOVE_RECURSE
  "CMakeFiles/ftl_io.dir/csv.cc.o"
  "CMakeFiles/ftl_io.dir/csv.cc.o.d"
  "CMakeFiles/ftl_io.dir/geojson.cc.o"
  "CMakeFiles/ftl_io.dir/geojson.cc.o.d"
  "CMakeFiles/ftl_io.dir/model_io.cc.o"
  "CMakeFiles/ftl_io.dir/model_io.cc.o.d"
  "CMakeFiles/ftl_io.dir/report_json.cc.o"
  "CMakeFiles/ftl_io.dir/report_json.cc.o.d"
  "libftl_io.a"
  "libftl_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
