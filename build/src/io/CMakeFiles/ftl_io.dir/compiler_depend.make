# Empty compiler generated dependencies file for ftl_io.
# This may be replaced when dependencies are built.
