
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/csv.cc" "src/io/CMakeFiles/ftl_io.dir/csv.cc.o" "gcc" "src/io/CMakeFiles/ftl_io.dir/csv.cc.o.d"
  "/root/repo/src/io/geojson.cc" "src/io/CMakeFiles/ftl_io.dir/geojson.cc.o" "gcc" "src/io/CMakeFiles/ftl_io.dir/geojson.cc.o.d"
  "/root/repo/src/io/model_io.cc" "src/io/CMakeFiles/ftl_io.dir/model_io.cc.o" "gcc" "src/io/CMakeFiles/ftl_io.dir/model_io.cc.o.d"
  "/root/repo/src/io/report_json.cc" "src/io/CMakeFiles/ftl_io.dir/report_json.cc.o" "gcc" "src/io/CMakeFiles/ftl_io.dir/report_json.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/traj/CMakeFiles/ftl_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ftl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/ftl_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ftl_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ftl_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
