file(REMOVE_RECURSE
  "libftl_io.a"
)
