
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traj/alignment.cc" "src/traj/CMakeFiles/ftl_traj.dir/alignment.cc.o" "gcc" "src/traj/CMakeFiles/ftl_traj.dir/alignment.cc.o.d"
  "/root/repo/src/traj/database.cc" "src/traj/CMakeFiles/ftl_traj.dir/database.cc.o" "gcc" "src/traj/CMakeFiles/ftl_traj.dir/database.cc.o.d"
  "/root/repo/src/traj/record.cc" "src/traj/CMakeFiles/ftl_traj.dir/record.cc.o" "gcc" "src/traj/CMakeFiles/ftl_traj.dir/record.cc.o.d"
  "/root/repo/src/traj/resample.cc" "src/traj/CMakeFiles/ftl_traj.dir/resample.cc.o" "gcc" "src/traj/CMakeFiles/ftl_traj.dir/resample.cc.o.d"
  "/root/repo/src/traj/summary.cc" "src/traj/CMakeFiles/ftl_traj.dir/summary.cc.o" "gcc" "src/traj/CMakeFiles/ftl_traj.dir/summary.cc.o.d"
  "/root/repo/src/traj/trajectory.cc" "src/traj/CMakeFiles/ftl_traj.dir/trajectory.cc.o" "gcc" "src/traj/CMakeFiles/ftl_traj.dir/trajectory.cc.o.d"
  "/root/repo/src/traj/transforms.cc" "src/traj/CMakeFiles/ftl_traj.dir/transforms.cc.o" "gcc" "src/traj/CMakeFiles/ftl_traj.dir/transforms.cc.o.d"
  "/root/repo/src/traj/validation.cc" "src/traj/CMakeFiles/ftl_traj.dir/validation.cc.o" "gcc" "src/traj/CMakeFiles/ftl_traj.dir/validation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/ftl_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
