# Empty compiler generated dependencies file for ftl_traj.
# This may be replaced when dependencies are built.
