file(REMOVE_RECURSE
  "libftl_traj.a"
)
