file(REMOVE_RECURSE
  "CMakeFiles/ftl_traj.dir/alignment.cc.o"
  "CMakeFiles/ftl_traj.dir/alignment.cc.o.d"
  "CMakeFiles/ftl_traj.dir/database.cc.o"
  "CMakeFiles/ftl_traj.dir/database.cc.o.d"
  "CMakeFiles/ftl_traj.dir/record.cc.o"
  "CMakeFiles/ftl_traj.dir/record.cc.o.d"
  "CMakeFiles/ftl_traj.dir/resample.cc.o"
  "CMakeFiles/ftl_traj.dir/resample.cc.o.d"
  "CMakeFiles/ftl_traj.dir/summary.cc.o"
  "CMakeFiles/ftl_traj.dir/summary.cc.o.d"
  "CMakeFiles/ftl_traj.dir/trajectory.cc.o"
  "CMakeFiles/ftl_traj.dir/trajectory.cc.o.d"
  "CMakeFiles/ftl_traj.dir/transforms.cc.o"
  "CMakeFiles/ftl_traj.dir/transforms.cc.o.d"
  "CMakeFiles/ftl_traj.dir/validation.cc.o"
  "CMakeFiles/ftl_traj.dir/validation.cc.o.d"
  "libftl_traj.a"
  "libftl_traj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_traj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
