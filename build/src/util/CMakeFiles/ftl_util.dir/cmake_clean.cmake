file(REMOVE_RECURSE
  "CMakeFiles/ftl_util.dir/rng.cc.o"
  "CMakeFiles/ftl_util.dir/rng.cc.o.d"
  "CMakeFiles/ftl_util.dir/status.cc.o"
  "CMakeFiles/ftl_util.dir/status.cc.o.d"
  "CMakeFiles/ftl_util.dir/string_util.cc.o"
  "CMakeFiles/ftl_util.dir/string_util.cc.o.d"
  "CMakeFiles/ftl_util.dir/thread_pool.cc.o"
  "CMakeFiles/ftl_util.dir/thread_pool.cc.o.d"
  "libftl_util.a"
  "libftl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
