file(REMOVE_RECURSE
  "CMakeFiles/ftl_eval.dir/calibration.cc.o"
  "CMakeFiles/ftl_eval.dir/calibration.cc.o.d"
  "CMakeFiles/ftl_eval.dir/metrics.cc.o"
  "CMakeFiles/ftl_eval.dir/metrics.cc.o.d"
  "CMakeFiles/ftl_eval.dir/sweep.cc.o"
  "CMakeFiles/ftl_eval.dir/sweep.cc.o.d"
  "CMakeFiles/ftl_eval.dir/workload.cc.o"
  "CMakeFiles/ftl_eval.dir/workload.cc.o.d"
  "libftl_eval.a"
  "libftl_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
