# Empty compiler generated dependencies file for ftl_eval.
# This may be replaced when dependencies are built.
