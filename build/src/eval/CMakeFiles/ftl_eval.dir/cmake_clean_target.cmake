file(REMOVE_RECURSE
  "libftl_eval.a"
)
