
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/calibration.cc" "src/eval/CMakeFiles/ftl_eval.dir/calibration.cc.o" "gcc" "src/eval/CMakeFiles/ftl_eval.dir/calibration.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/ftl_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/ftl_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/sweep.cc" "src/eval/CMakeFiles/ftl_eval.dir/sweep.cc.o" "gcc" "src/eval/CMakeFiles/ftl_eval.dir/sweep.cc.o.d"
  "/root/repo/src/eval/workload.cc" "src/eval/CMakeFiles/ftl_eval.dir/workload.cc.o" "gcc" "src/eval/CMakeFiles/ftl_eval.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ftl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/ftl_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ftl_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ftl_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
