file(REMOVE_RECURSE
  "CMakeFiles/ftl_baselines.dir/search.cc.o"
  "CMakeFiles/ftl_baselines.dir/search.cc.o.d"
  "CMakeFiles/ftl_baselines.dir/similarity.cc.o"
  "CMakeFiles/ftl_baselines.dir/similarity.cc.o.d"
  "libftl_baselines.a"
  "libftl_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
