
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/search.cc" "src/baselines/CMakeFiles/ftl_baselines.dir/search.cc.o" "gcc" "src/baselines/CMakeFiles/ftl_baselines.dir/search.cc.o.d"
  "/root/repo/src/baselines/similarity.cc" "src/baselines/CMakeFiles/ftl_baselines.dir/similarity.cc.o" "gcc" "src/baselines/CMakeFiles/ftl_baselines.dir/similarity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/traj/CMakeFiles/ftl_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ftl_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
