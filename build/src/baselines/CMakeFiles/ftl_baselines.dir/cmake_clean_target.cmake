file(REMOVE_RECURSE
  "libftl_baselines.a"
)
