# Empty compiler generated dependencies file for ftl_baselines.
# This may be replaced when dependencies are built.
