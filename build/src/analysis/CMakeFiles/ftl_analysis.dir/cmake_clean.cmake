file(REMOVE_RECURSE
  "CMakeFiles/ftl_analysis.dir/feasibility.cc.o"
  "CMakeFiles/ftl_analysis.dir/feasibility.cc.o.d"
  "CMakeFiles/ftl_analysis.dir/mutual_segment_analysis.cc.o"
  "CMakeFiles/ftl_analysis.dir/mutual_segment_analysis.cc.o.d"
  "libftl_analysis.a"
  "libftl_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
