file(REMOVE_RECURSE
  "libftl_analysis.a"
)
