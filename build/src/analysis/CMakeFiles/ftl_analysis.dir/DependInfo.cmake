
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/feasibility.cc" "src/analysis/CMakeFiles/ftl_analysis.dir/feasibility.cc.o" "gcc" "src/analysis/CMakeFiles/ftl_analysis.dir/feasibility.cc.o.d"
  "/root/repo/src/analysis/mutual_segment_analysis.cc" "src/analysis/CMakeFiles/ftl_analysis.dir/mutual_segment_analysis.cc.o" "gcc" "src/analysis/CMakeFiles/ftl_analysis.dir/mutual_segment_analysis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/ftl_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
