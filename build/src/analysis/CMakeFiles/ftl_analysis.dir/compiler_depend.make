# Empty compiler generated dependencies file for ftl_analysis.
# This may be replaced when dependencies are built.
