file(REMOVE_RECURSE
  "CMakeFiles/ftl_sim.dir/observation.cc.o"
  "CMakeFiles/ftl_sim.dir/observation.cc.o.d"
  "CMakeFiles/ftl_sim.dir/path.cc.o"
  "CMakeFiles/ftl_sim.dir/path.cc.o.d"
  "CMakeFiles/ftl_sim.dir/population_sim.cc.o"
  "CMakeFiles/ftl_sim.dir/population_sim.cc.o.d"
  "CMakeFiles/ftl_sim.dir/scenario.cc.o"
  "CMakeFiles/ftl_sim.dir/scenario.cc.o.d"
  "CMakeFiles/ftl_sim.dir/taxi_sim.cc.o"
  "CMakeFiles/ftl_sim.dir/taxi_sim.cc.o.d"
  "CMakeFiles/ftl_sim.dir/transit_sim.cc.o"
  "CMakeFiles/ftl_sim.dir/transit_sim.cc.o.d"
  "libftl_sim.a"
  "libftl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
