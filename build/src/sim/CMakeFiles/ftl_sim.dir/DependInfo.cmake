
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/observation.cc" "src/sim/CMakeFiles/ftl_sim.dir/observation.cc.o" "gcc" "src/sim/CMakeFiles/ftl_sim.dir/observation.cc.o.d"
  "/root/repo/src/sim/path.cc" "src/sim/CMakeFiles/ftl_sim.dir/path.cc.o" "gcc" "src/sim/CMakeFiles/ftl_sim.dir/path.cc.o.d"
  "/root/repo/src/sim/population_sim.cc" "src/sim/CMakeFiles/ftl_sim.dir/population_sim.cc.o" "gcc" "src/sim/CMakeFiles/ftl_sim.dir/population_sim.cc.o.d"
  "/root/repo/src/sim/scenario.cc" "src/sim/CMakeFiles/ftl_sim.dir/scenario.cc.o" "gcc" "src/sim/CMakeFiles/ftl_sim.dir/scenario.cc.o.d"
  "/root/repo/src/sim/taxi_sim.cc" "src/sim/CMakeFiles/ftl_sim.dir/taxi_sim.cc.o" "gcc" "src/sim/CMakeFiles/ftl_sim.dir/taxi_sim.cc.o.d"
  "/root/repo/src/sim/transit_sim.cc" "src/sim/CMakeFiles/ftl_sim.dir/transit_sim.cc.o" "gcc" "src/sim/CMakeFiles/ftl_sim.dir/transit_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/traj/CMakeFiles/ftl_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ftl_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
