file(REMOVE_RECURSE
  "CMakeFiles/ftl_privacy.dir/attack_eval.cc.o"
  "CMakeFiles/ftl_privacy.dir/attack_eval.cc.o.d"
  "CMakeFiles/ftl_privacy.dir/defenses.cc.o"
  "CMakeFiles/ftl_privacy.dir/defenses.cc.o.d"
  "libftl_privacy.a"
  "libftl_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
