# Empty compiler generated dependencies file for ftl_privacy.
# This may be replaced when dependencies are built.
