file(REMOVE_RECURSE
  "libftl_privacy.a"
)
