# Empty compiler generated dependencies file for ftl_stats.
# This may be replaced when dependencies are built.
