file(REMOVE_RECURSE
  "libftl_stats.a"
)
