file(REMOVE_RECURSE
  "CMakeFiles/ftl_stats.dir/descriptive.cc.o"
  "CMakeFiles/ftl_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/ftl_stats.dir/distributions.cc.o"
  "CMakeFiles/ftl_stats.dir/distributions.cc.o.d"
  "CMakeFiles/ftl_stats.dir/goodness_of_fit.cc.o"
  "CMakeFiles/ftl_stats.dir/goodness_of_fit.cc.o.d"
  "CMakeFiles/ftl_stats.dir/poisson_binomial.cc.o"
  "CMakeFiles/ftl_stats.dir/poisson_binomial.cc.o.d"
  "libftl_stats.a"
  "libftl_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
