file(REMOVE_RECURSE
  "CMakeFiles/taxi_linking.dir/taxi_linking.cpp.o"
  "CMakeFiles/taxi_linking.dir/taxi_linking.cpp.o.d"
  "taxi_linking"
  "taxi_linking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taxi_linking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
