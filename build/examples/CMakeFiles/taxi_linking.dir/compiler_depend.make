# Empty compiler generated dependencies file for taxi_linking.
# This may be replaced when dependencies are built.
