# Empty compiler generated dependencies file for disease_contact_tracing.
# This may be replaced when dependencies are built.
