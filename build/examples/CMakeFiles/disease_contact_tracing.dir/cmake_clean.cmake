file(REMOVE_RECURSE
  "CMakeFiles/disease_contact_tracing.dir/disease_contact_tracing.cpp.o"
  "CMakeFiles/disease_contact_tracing.dir/disease_contact_tracing.cpp.o.d"
  "disease_contact_tracing"
  "disease_contact_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disease_contact_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
