file(REMOVE_RECURSE
  "CMakeFiles/multi_source_fusion.dir/multi_source_fusion.cpp.o"
  "CMakeFiles/multi_source_fusion.dir/multi_source_fusion.cpp.o.d"
  "multi_source_fusion"
  "multi_source_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_source_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
