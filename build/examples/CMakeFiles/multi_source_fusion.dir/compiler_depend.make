# Empty compiler generated dependencies file for multi_source_fusion.
# This may be replaced when dependencies are built.
