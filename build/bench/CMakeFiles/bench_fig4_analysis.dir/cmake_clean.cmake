file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_analysis.dir/bench_fig4_analysis.cc.o"
  "CMakeFiles/bench_fig4_analysis.dir/bench_fig4_analysis.cc.o.d"
  "bench_fig4_analysis"
  "bench_fig4_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
