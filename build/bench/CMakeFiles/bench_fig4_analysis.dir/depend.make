# Empty dependencies file for bench_fig4_analysis.
# This may be replaced when dependencies are built.
