
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/classifier_test.cc" "tests/CMakeFiles/classifier_test.dir/classifier_test.cc.o" "gcc" "tests/CMakeFiles/classifier_test.dir/classifier_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/ftl_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ftl_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ftl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/ftl_io.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/ftl_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/ftl_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ftl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/ftl_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ftl_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ftl_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
