# Empty compiler generated dependencies file for transit_sim_test.
# This may be replaced when dependencies are built.
