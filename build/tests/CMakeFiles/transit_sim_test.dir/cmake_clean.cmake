file(REMOVE_RECURSE
  "CMakeFiles/transit_sim_test.dir/transit_sim_test.cc.o"
  "CMakeFiles/transit_sim_test.dir/transit_sim_test.cc.o.d"
  "transit_sim_test"
  "transit_sim_test.pdb"
  "transit_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transit_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
