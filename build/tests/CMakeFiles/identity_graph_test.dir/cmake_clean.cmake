file(REMOVE_RECURSE
  "CMakeFiles/identity_graph_test.dir/identity_graph_test.cc.o"
  "CMakeFiles/identity_graph_test.dir/identity_graph_test.cc.o.d"
  "identity_graph_test"
  "identity_graph_test.pdb"
  "identity_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/identity_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
