# Empty dependencies file for identity_graph_test.
# This may be replaced when dependencies are built.
