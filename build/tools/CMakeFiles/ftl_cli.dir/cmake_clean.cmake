file(REMOVE_RECURSE
  "CMakeFiles/ftl_cli.dir/main.cc.o"
  "CMakeFiles/ftl_cli.dir/main.cc.o.d"
  "ftl"
  "ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
