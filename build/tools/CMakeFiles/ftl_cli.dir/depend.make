# Empty dependencies file for ftl_cli.
# This may be replaced when dependencies are built.
