# Empty dependencies file for ftl_cli_lib.
# This may be replaced when dependencies are built.
