file(REMOVE_RECURSE
  "libftl_cli_lib.a"
)
