file(REMOVE_RECURSE
  "CMakeFiles/ftl_cli_lib.dir/cli.cc.o"
  "CMakeFiles/ftl_cli_lib.dir/cli.cc.o.d"
  "libftl_cli_lib.a"
  "libftl_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
