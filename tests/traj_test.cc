#include <gtest/gtest.h>

#include "traj/database.h"
#include "traj/record.h"
#include "traj/summary.h"
#include "traj/trajectory.h"

namespace ftl::traj {
namespace {

Record R(double x, double y, Timestamp t) { return Record{{x, y}, t}; }

// --------------------------------------------------------------- Record

TEST(RecordTest, DistAndTimeDiff) {
  Record a = R(0, 0, 100);
  Record b = R(30, 40, 160);
  EXPECT_DOUBLE_EQ(Dist(a, b), 50.0);
  EXPECT_EQ(TimeDiff(a, b), 60);
  EXPECT_EQ(TimeDiff(b, a), 60);
}

TEST(RecordTest, RequiredSpeed) {
  Record a = R(0, 0, 0);
  Record b = R(100, 0, 10);
  EXPECT_DOUBLE_EQ(RequiredSpeed(a, b), 10.0);
}

TEST(RecordTest, RequiredSpeedSimultaneous) {
  Record a = R(0, 0, 5);
  Record b = R(100, 0, 5);
  EXPECT_TRUE(std::isinf(RequiredSpeed(a, b)));
  Record c = R(0, 0, 5);
  EXPECT_DOUBLE_EQ(RequiredSpeed(a, c), 0.0);
}

TEST(RecordTest, CompatibilityDefinition3) {
  // 70 km in 20 minutes needs 58.3 m/s; incompatible at Vmax=120 kph.
  double vmax = 120.0 * 1000 / 3600;
  Record a = R(0, 0, 0);
  Record b = R(70000, 0, 20 * 60);
  EXPECT_FALSE(IsCompatible(a, b, vmax));
  // Same distance in 2 hours is fine.
  Record c = R(70000, 0, 2 * 3600);
  EXPECT_TRUE(IsCompatible(a, c, vmax));
}

TEST(RecordTest, CompatibilityBoundaryIsInclusive) {
  // dist / timediff == vmax exactly -> compatible (<=).
  Record a = R(0, 0, 0);
  Record b = R(100, 0, 10);
  EXPECT_TRUE(IsCompatible(a, b, 10.0));
  EXPECT_FALSE(IsCompatible(a, b, 9.999));
}

TEST(RecordTest, SimultaneousColocatedIsCompatible) {
  Record a = R(5, 5, 7);
  Record b = R(5, 5, 7);
  EXPECT_TRUE(IsCompatible(a, b, 1.0));
}

TEST(RecordTest, SimultaneousApartIsIncompatible) {
  Record a = R(0, 0, 7);
  Record b = R(1, 0, 7);
  EXPECT_FALSE(IsCompatible(a, b, 1000.0));
}

// ----------------------------------------------------------- Trajectory

TEST(TrajectoryTest, ConstructorSortsByTime) {
  Trajectory t("x", 1, {R(0, 0, 30), R(1, 1, 10), R(2, 2, 20)});
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].t, 10);
  EXPECT_EQ(t[1].t, 20);
  EXPECT_EQ(t[2].t, 30);
  EXPECT_TRUE(t.IsSorted());
}

TEST(TrajectoryTest, LabelAndOwner) {
  Trajectory t("card-7", 99, {});
  EXPECT_EQ(t.label(), "card-7");
  EXPECT_EQ(t.owner(), 99u);
  t.set_owner(7);
  EXPECT_EQ(t.owner(), 7u);
}

TEST(TrajectoryTest, AppendKeepsOrder) {
  Trajectory t;
  EXPECT_TRUE(t.Append(R(0, 0, 10)).ok());
  EXPECT_TRUE(t.Append(R(0, 0, 10)).ok());  // equal timestamps allowed
  EXPECT_TRUE(t.Append(R(0, 0, 20)).ok());
  EXPECT_FALSE(t.Append(R(0, 0, 5)).ok());
  EXPECT_EQ(t.size(), 3u);
}

TEST(TrajectoryTest, AppendUncheckedThenSort) {
  Trajectory t;
  t.AppendUnchecked(R(0, 0, 50));
  t.AppendUnchecked(R(0, 0, 10));
  EXPECT_FALSE(t.IsSorted());
  t.SortByTime();
  EXPECT_TRUE(t.IsSorted());
}

TEST(TrajectoryTest, DurationAndGap) {
  Trajectory t("x", 1, {R(0, 0, 0), R(0, 0, 100), R(0, 0, 300)});
  EXPECT_EQ(t.DurationSeconds(), 300);
  EXPECT_DOUBLE_EQ(t.MeanGapSeconds(), 150.0);
}

TEST(TrajectoryTest, DurationDegenerateCases) {
  Trajectory empty;
  EXPECT_EQ(empty.DurationSeconds(), 0);
  EXPECT_DOUBLE_EQ(empty.MeanGapSeconds(), 0.0);
  Trajectory one("x", 1, {R(0, 0, 42)});
  EXPECT_EQ(one.DurationSeconds(), 0);
}

TEST(TrajectoryTest, LowerBound) {
  Trajectory t("x", 1, {R(0, 0, 10), R(0, 0, 20), R(0, 0, 30)});
  EXPECT_EQ(t.LowerBound(5), 0u);
  EXPECT_EQ(t.LowerBound(10), 0u);
  EXPECT_EQ(t.LowerBound(15), 1u);
  EXPECT_EQ(t.LowerBound(30), 2u);
  EXPECT_EQ(t.LowerBound(31), 3u);
}

TEST(TrajectoryTest, SliceTime) {
  Trajectory t("x", 5, {R(0, 0, 10), R(0, 0, 20), R(0, 0, 30), R(0, 0, 40)});
  Trajectory s = t.SliceTime(20, 40);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].t, 20);
  EXPECT_EQ(s[1].t, 30);
  EXPECT_EQ(s.label(), "x");
  EXPECT_EQ(s.owner(), 5u);
}

TEST(TrajectoryTest, SliceTimeEmptyWindow) {
  Trajectory t("x", 1, {R(0, 0, 10)});
  EXPECT_TRUE(t.SliceTime(100, 200).empty());
}

// ------------------------------------------------------------- Database

TEST(DatabaseTest, AddAndFind) {
  TrajectoryDatabase db("test");
  EXPECT_TRUE(db.Add(Trajectory("a", 1, {R(0, 0, 1)})).ok());
  EXPECT_TRUE(db.Add(Trajectory("b", 2, {R(0, 0, 2)})).ok());
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.Find("a"), 0u);
  EXPECT_EQ(db.Find("b"), 1u);
  EXPECT_EQ(db.Find("zzz"), TrajectoryDatabase::npos);
}

TEST(DatabaseTest, DuplicateLabelRejected) {
  TrajectoryDatabase db;
  EXPECT_TRUE(db.Add(Trajectory("a", 1, {})).ok());
  Status s = db.Add(Trajectory("a", 2, {}));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db.size(), 1u);
}

TEST(DatabaseTest, FindByOwner) {
  TrajectoryDatabase db;
  (void)db.Add(Trajectory("a", 10, {}));
  (void)db.Add(Trajectory("b", 20, {}));
  EXPECT_EQ(db.FindByOwner(20), 1u);
  EXPECT_EQ(db.FindByOwner(30), TrajectoryDatabase::npos);
}

TEST(DatabaseTest, TotalRecords) {
  TrajectoryDatabase db;
  (void)db.Add(Trajectory("a", 1, {R(0, 0, 1), R(0, 0, 2)}));
  (void)db.Add(Trajectory("b", 2, {R(0, 0, 3)}));
  EXPECT_EQ(db.TotalRecords(), 3u);
}

TEST(DatabaseTest, PruneShort) {
  TrajectoryDatabase db;
  (void)db.Add(Trajectory("a", 1, {R(0, 0, 1)}));
  (void)db.Add(Trajectory("b", 2, {R(0, 0, 1), R(0, 0, 2), R(0, 0, 3)}));
  size_t removed = db.PruneShort(2);
  EXPECT_EQ(removed, 1u);
  ASSERT_EQ(db.size(), 1u);
  EXPECT_EQ(db[0].label(), "b");
  // Label index must be rebuilt.
  EXPECT_EQ(db.Find("b"), 0u);
  EXPECT_EQ(db.Find("a"), TrajectoryDatabase::npos);
}

TEST(DatabaseTest, RangeFor) {
  TrajectoryDatabase db;
  (void)db.Add(Trajectory("a", 1, {}));
  (void)db.Add(Trajectory("b", 2, {}));
  size_t count = 0;
  for (const auto& t : db) {
    (void)t;
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

// -------------------------------------------------------------- Summary

TEST(SummaryTest, BasicStatistics) {
  TrajectoryDatabase db;
  (void)db.Add(Trajectory("a", 1, {R(0, 0, 0), R(0, 0, 3600)}));
  (void)db.Add(
      Trajectory("b", 2, {R(0, 0, 0), R(0, 0, 7200), R(0, 0, 14400)}));
  DatabaseSummary s = Summarize(db);
  EXPECT_EQ(s.num_trajectories, 2u);
  EXPECT_EQ(s.total_records, 5u);
  EXPECT_DOUBLE_EQ(s.mean_size, 2.5);
  // Gaps: 1h, 2h, 2h.
  EXPECT_NEAR(s.mean_gap_hours, 5.0 / 3.0, 1e-9);
  EXPECT_NEAR(s.duration_days, 14400.0 / 86400.0, 1e-9);
}

TEST(SummaryTest, EmptyDatabase) {
  TrajectoryDatabase db;
  DatabaseSummary s = Summarize(db);
  EXPECT_EQ(s.num_trajectories, 0u);
  EXPECT_DOUBLE_EQ(s.mean_size, 0.0);
  EXPECT_DOUBLE_EQ(s.duration_days, 0.0);
}

TEST(SummaryTest, ToStringContainsFields) {
  TrajectoryDatabase db;
  (void)db.Add(Trajectory("a", 1, {R(0, 0, 0), R(0, 0, 60)}));
  std::string s = ToString(Summarize(db));
  EXPECT_NE(s.find("trajectories=1"), std::string::npos);
  EXPECT_NE(s.find("mean|P|="), std::string::npos);
}

}  // namespace
}  // namespace ftl::traj
