#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "io/csv.h"
#include "io/model_io.h"

namespace ftl::io {
namespace {

using traj::Record;
using traj::Trajectory;
using traj::TrajectoryDatabase;

Record R(double x, double y, traj::Timestamp t) { return Record{{x, y}, t}; }

TrajectoryDatabase SampleDb() {
  TrajectoryDatabase db("sample");
  (void)db.Add(Trajectory("a", 1, {R(1.5, 2.25, 10), R(3, 4, 20)}));
  (void)db.Add(Trajectory("b", traj::kUnknownOwner, {R(-7.125, 0, 5)}));
  return db;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ------------------------------------------------------------------ CSV

TEST(CsvTest, RoundTripString) {
  auto db = SampleDb();
  auto parsed = FromCsvString(ToCsvString(db), "sample");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& out = parsed.value();
  ASSERT_EQ(out.size(), 2u);
  size_t ia = out.Find("a");
  ASSERT_NE(ia, TrajectoryDatabase::npos);
  EXPECT_EQ(out[ia].owner(), 1u);
  ASSERT_EQ(out[ia].size(), 2u);
  EXPECT_EQ(out[ia][0].t, 10);
  EXPECT_NEAR(out[ia][0].location.x, 1.5, 1e-9);
  size_t ib = out.Find("b");
  EXPECT_EQ(out[ib].owner(), traj::kUnknownOwner);
}

TEST(CsvTest, RoundTripFile) {
  auto db = SampleDb();
  std::string path = TempPath("ftl_csv_test.csv");
  ASSERT_TRUE(WriteCsv(db, path).ok());
  auto parsed = ReadCsv(path, "sample");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value().TotalRecords(), 3u);
  std::remove(path.c_str());
}

TEST(CsvTest, UnsortedRowsGetSorted) {
  std::string csv =
      "label,owner,t,x,y\n"
      "a,1,30,0,0\n"
      "a,1,10,1,1\n"
      "a,1,20,2,2\n";
  auto parsed = FromCsvString(csv, "x");
  ASSERT_TRUE(parsed.ok());
  const auto& t = parsed.value()[0];
  EXPECT_TRUE(t.IsSorted());
  EXPECT_EQ(t[0].t, 10);
}

TEST(CsvTest, RejectsBadHeader) {
  EXPECT_FALSE(FromCsvString("x,y,z\n", "x").ok());
  EXPECT_FALSE(FromCsvString("", "x").ok());
}

TEST(CsvTest, RejectsBadFieldCount) {
  auto r = FromCsvString("label,owner,t,x,y\na,1,2\n", "x");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("5 fields"), std::string::npos);
}

TEST(CsvTest, RejectsNonNumericFields) {
  EXPECT_FALSE(
      FromCsvString("label,owner,t,x,y\na,1,abc,0,0\n", "x").ok());
  EXPECT_FALSE(
      FromCsvString("label,owner,t,x,y\na,1,5,zz,0\n", "x").ok());
}

TEST(CsvTest, SkipsBlankLines) {
  auto r = FromCsvString("label,owner,t,x,y\n\na,1,5,0,0\n\n", "x");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().TotalRecords(), 1u);
}

TEST(CsvTest, ReadMissingFileFails) {
  auto r = ReadCsv("/nonexistent/path/file.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(CsvTest, WriteToBadPathFails) {
  EXPECT_FALSE(WriteCsv(SampleDb(), "/nonexistent/dir/file.csv").ok());
}

// ----------------------------------------------------------- Quarantine

TEST(CsvTest, StrictErrorsCarryRowLevelReasons) {
  auto field_count = FromCsvString("label,owner,t,x,y\na,1,5,0\n", "x");
  ASSERT_FALSE(field_count.ok());
  EXPECT_NE(field_count.status().message().find("line 2"),
            std::string::npos);
  EXPECT_NE(field_count.status().message().find("5 fields"),
            std::string::npos);

  // int64 overflow must fail the parse, not wrap into a bogus value.
  auto overflow = FromCsvString(
      "label,owner,t,x,y\na,1,999999999999999999999,0,0\n", "x");
  ASSERT_FALSE(overflow.ok());
  EXPECT_NE(overflow.status().message().find("line 2"), std::string::npos);

  auto non_finite = FromCsvString("label,owner,t,x,y\na,1,5,nan,0\n", "x");
  ASSERT_FALSE(non_finite.ok());
  EXPECT_NE(non_finite.status().message().find("non-finite"),
            std::string::npos);

  // Physical-range checks are lenient-mode policy: strict mode keeps
  // the historical contract that any finite parseable timestamp loads.
  auto negative_t = FromCsvString("label,owner,t,x,y\na,1,-5,0,0\n", "x");
  EXPECT_TRUE(negative_t.ok()) << negative_t.status().ToString();
}

TEST(CsvTest, LenientLoadsCleanRowsAndReportsTheRest) {
  std::string csv =
      "label,owner,t,x,y\n"
      "a,1,0,0,0\n"
      "a,1,60,30,30\n"
      "a,1,120,60\n"            // field count
      "a,1,180,90,90\n"
      "b,2,0,abc,5\n"           // unparseable
      "b,2,60,inf,5\n"          // non-finite
      "b,2,120,99999999,5\n"    // coordinate range
      "b,2,180,-1000,5\n"
      "b,2,240,-990,6\n"
      "c,3,-60,1,1\n";          // timestamp range
  CsvReadOptions opts;
  opts.lenient = true;
  QuarantineReport report;
  auto db = FromCsvString(csv, "lenient", opts, &report);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(report.rows_total, 10u);
  EXPECT_EQ(report.rows_quarantined, 5u);
  EXPECT_EQ(report.count(QuarantineReason::kFieldCount), 1u);
  EXPECT_EQ(report.count(QuarantineReason::kUnparseable), 1u);
  EXPECT_EQ(report.count(QuarantineReason::kNonFinite), 1u);
  EXPECT_EQ(report.count(QuarantineReason::kCoordinateRange), 1u);
  EXPECT_EQ(report.count(QuarantineReason::kTimestampRange), 1u);
  EXPECT_EQ(report.sample_rows.size(), 5u);
  // The clean 90% loads: a keeps 3 records, b keeps 2; c vanished
  // entirely (its only row was quarantined).
  ASSERT_EQ(db.value().size(), 2u);
  EXPECT_EQ(db.value()[db.value().Find("a")].size(), 3u);
  EXPECT_EQ(db.value()[db.value().Find("b")].size(), 2u);
  EXPECT_EQ(db.value().Find("c"), traj::TrajectoryDatabase::npos);
  EXPECT_NE(report.ToString().find("quarantined 5/10 rows"),
            std::string::npos)
      << report.ToString();
}

TEST(CsvTest, LenientDropsDuplicateTimestampsFirstRowWins) {
  std::string csv =
      "label,owner,t,x,y\n"
      "a,1,60,111,0\n"
      "a,1,60,222,0\n"  // duplicate of t=60; the first row wins
      "a,1,0,5,5\n";
  CsvReadOptions opts;
  opts.lenient = true;
  QuarantineReport report;
  auto db = FromCsvString(csv, "dups", opts, &report);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(report.count(QuarantineReason::kDuplicateTimestamp), 1u);
  const auto& a = db.value()[db.value().Find("a")];
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[1].t, 60);
  EXPECT_NEAR(a[1].location.x, 111.0, 1e-9);
}

TEST(CsvTest, LenientQuarantinesTeleports) {
  // 100 km in 60 s is far beyond the 30 m/s ceiling.
  std::string csv =
      "label,owner,t,x,y\n"
      "a,1,0,0,0\n"
      "a,1,60,100000,0\n"
      "a,1,120,1200,0\n";  // compatible with the kept t=0 record? no:
                           // 1200 m in 120 s = 10 m/s -> kept.
  CsvReadOptions opts;
  opts.lenient = true;
  opts.max_speed_mps = 30.0;
  QuarantineReport report;
  auto db = FromCsvString(csv, "tp", opts, &report);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(report.count(QuarantineReason::kTeleport), 1u);
  const auto& a = db.value()[db.value().Find("a")];
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].t, 0);
  EXPECT_EQ(a[1].t, 120);
}

TEST(CsvTest, LenientWritesSidecarCsv) {
  std::string path = TempPath("ftl_quarantine_sidecar.csv");
  std::string csv =
      "label,owner,t,x,y\n"
      "a,1,0,0,0\n"
      "a,1,60,bogus,0\n";
  CsvReadOptions opts;
  opts.lenient = true;
  opts.sidecar_path = path;
  QuarantineReport report;
  auto db = FromCsvString(csv, "sc", opts, &report);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_EQ(report.rows_quarantined, 1u);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header, row;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, "reason,label,owner,t,x,y");
  ASSERT_TRUE(std::getline(in, row));
  EXPECT_NE(row.find("unparseable"), std::string::npos);
  EXPECT_NE(row.find("bogus"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvTest, LenientNoCorruptionMatchesStrictLoad) {
  std::string csv = ToCsvString(SampleDb());
  CsvReadOptions opts;
  opts.lenient = true;
  QuarantineReport report;
  auto lenient = FromCsvString(csv, "sample", opts, &report);
  auto strict = FromCsvString(csv, "sample");
  ASSERT_TRUE(lenient.ok());
  ASSERT_TRUE(strict.ok());
  EXPECT_TRUE(report.empty());
  EXPECT_EQ(ToCsvString(lenient.value()), ToCsvString(strict.value()));
}

// ---------------------------------------------------------------- Model

core::CompatibilityModel SampleModel() {
  core::CompatibilityModel m(60, {0.5, 0.25, 0.0, 1.0});
  m.set_support({100, 50, 10, 2});
  return m;
}

TEST(ModelIoTest, RoundTripString) {
  auto m = SampleModel();
  auto parsed = ModelFromString(ModelToString(m));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().time_unit_seconds(), 60);
  ASSERT_EQ(parsed.value().probs().size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(parsed.value().probs()[i], m.probs()[i], 1e-9);
    EXPECT_EQ(parsed.value().support()[i], m.support()[i]);
  }
}

TEST(ModelIoTest, RoundTripFile) {
  std::string path = TempPath("ftl_model_test.txt");
  ASSERT_TRUE(WriteModel(SampleModel(), path).ok());
  auto parsed = ReadModel(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().probs().size(), 4u);
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsBadMagic) {
  EXPECT_FALSE(ModelFromString("not-a-model\n").ok());
}

TEST(ModelIoTest, RejectsTruncated) {
  std::string text = ModelToString(SampleModel());
  text.resize(text.size() / 2);
  // Either a truncated-bucket error or bad bucket line — must not crash
  // and must not return OK.
  EXPECT_FALSE(ModelFromString(text).ok());
}

TEST(ModelIoTest, RejectsMalformedHeaderLines) {
  EXPECT_FALSE(
      ModelFromString("ftl-compat-model v1\nunit_seconds abc\n").ok());
  EXPECT_FALSE(
      ModelFromString("ftl-compat-model v1\nunit_seconds 60\nbuckets -3\n")
          .ok());
}

TEST(ModelIoTest, EmptyModelRoundTrips) {
  core::CompatibilityModel m(30, {});
  auto parsed = ModelFromString(ModelToString(m));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().time_unit_seconds(), 30);
  EXPECT_TRUE(parsed.value().probs().empty());
}

TEST(ModelIoTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadModel("/nonexistent/model.txt").ok());
}

}  // namespace
}  // namespace ftl::io
