#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "io/csv.h"
#include "io/model_io.h"

namespace ftl::io {
namespace {

using traj::Record;
using traj::Trajectory;
using traj::TrajectoryDatabase;

Record R(double x, double y, traj::Timestamp t) { return Record{{x, y}, t}; }

TrajectoryDatabase SampleDb() {
  TrajectoryDatabase db("sample");
  (void)db.Add(Trajectory("a", 1, {R(1.5, 2.25, 10), R(3, 4, 20)}));
  (void)db.Add(Trajectory("b", traj::kUnknownOwner, {R(-7.125, 0, 5)}));
  return db;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ------------------------------------------------------------------ CSV

TEST(CsvTest, RoundTripString) {
  auto db = SampleDb();
  auto parsed = FromCsvString(ToCsvString(db), "sample");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& out = parsed.value();
  ASSERT_EQ(out.size(), 2u);
  size_t ia = out.Find("a");
  ASSERT_NE(ia, TrajectoryDatabase::npos);
  EXPECT_EQ(out[ia].owner(), 1u);
  ASSERT_EQ(out[ia].size(), 2u);
  EXPECT_EQ(out[ia][0].t, 10);
  EXPECT_NEAR(out[ia][0].location.x, 1.5, 1e-9);
  size_t ib = out.Find("b");
  EXPECT_EQ(out[ib].owner(), traj::kUnknownOwner);
}

TEST(CsvTest, RoundTripFile) {
  auto db = SampleDb();
  std::string path = TempPath("ftl_csv_test.csv");
  ASSERT_TRUE(WriteCsv(db, path).ok());
  auto parsed = ReadCsv(path, "sample");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value().TotalRecords(), 3u);
  std::remove(path.c_str());
}

TEST(CsvTest, UnsortedRowsGetSorted) {
  std::string csv =
      "label,owner,t,x,y\n"
      "a,1,30,0,0\n"
      "a,1,10,1,1\n"
      "a,1,20,2,2\n";
  auto parsed = FromCsvString(csv, "x");
  ASSERT_TRUE(parsed.ok());
  const auto& t = parsed.value()[0];
  EXPECT_TRUE(t.IsSorted());
  EXPECT_EQ(t[0].t, 10);
}

TEST(CsvTest, RejectsBadHeader) {
  EXPECT_FALSE(FromCsvString("x,y,z\n", "x").ok());
  EXPECT_FALSE(FromCsvString("", "x").ok());
}

TEST(CsvTest, RejectsBadFieldCount) {
  auto r = FromCsvString("label,owner,t,x,y\na,1,2\n", "x");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("5 fields"), std::string::npos);
}

TEST(CsvTest, RejectsNonNumericFields) {
  EXPECT_FALSE(
      FromCsvString("label,owner,t,x,y\na,1,abc,0,0\n", "x").ok());
  EXPECT_FALSE(
      FromCsvString("label,owner,t,x,y\na,1,5,zz,0\n", "x").ok());
}

TEST(CsvTest, SkipsBlankLines) {
  auto r = FromCsvString("label,owner,t,x,y\n\na,1,5,0,0\n\n", "x");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().TotalRecords(), 1u);
}

TEST(CsvTest, ReadMissingFileFails) {
  auto r = ReadCsv("/nonexistent/path/file.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(CsvTest, WriteToBadPathFails) {
  EXPECT_FALSE(WriteCsv(SampleDb(), "/nonexistent/dir/file.csv").ok());
}

// ---------------------------------------------------------------- Model

core::CompatibilityModel SampleModel() {
  core::CompatibilityModel m(60, {0.5, 0.25, 0.0, 1.0});
  m.set_support({100, 50, 10, 2});
  return m;
}

TEST(ModelIoTest, RoundTripString) {
  auto m = SampleModel();
  auto parsed = ModelFromString(ModelToString(m));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().time_unit_seconds(), 60);
  ASSERT_EQ(parsed.value().probs().size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(parsed.value().probs()[i], m.probs()[i], 1e-9);
    EXPECT_EQ(parsed.value().support()[i], m.support()[i]);
  }
}

TEST(ModelIoTest, RoundTripFile) {
  std::string path = TempPath("ftl_model_test.txt");
  ASSERT_TRUE(WriteModel(SampleModel(), path).ok());
  auto parsed = ReadModel(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().probs().size(), 4u);
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsBadMagic) {
  EXPECT_FALSE(ModelFromString("not-a-model\n").ok());
}

TEST(ModelIoTest, RejectsTruncated) {
  std::string text = ModelToString(SampleModel());
  text.resize(text.size() / 2);
  // Either a truncated-bucket error or bad bucket line — must not crash
  // and must not return OK.
  EXPECT_FALSE(ModelFromString(text).ok());
}

TEST(ModelIoTest, RejectsMalformedHeaderLines) {
  EXPECT_FALSE(
      ModelFromString("ftl-compat-model v1\nunit_seconds abc\n").ok());
  EXPECT_FALSE(
      ModelFromString("ftl-compat-model v1\nunit_seconds 60\nbuckets -3\n")
          .ok());
}

TEST(ModelIoTest, EmptyModelRoundTrips) {
  core::CompatibilityModel m(30, {});
  auto parsed = ModelFromString(ModelToString(m));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().time_unit_seconds(), 30);
  EXPECT_TRUE(parsed.value().probs().empty());
}

TEST(ModelIoTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadModel("/nonexistent/model.txt").ok());
}

}  // namespace
}  // namespace ftl::io
