#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/alpha_filter.h"
#include "core/model_diagnostics.h"
#include "io/csv.h"
#include "stats/descriptive.h"
#include "stats/poisson_binomial.h"
#include "traj/alignment.h"
#include "util/rng.h"

namespace ftl {
namespace {

using core::CompatibilityModel;
using core::ModelPair;
using core::MutualSegmentEvidence;

/// Draws evidence FROM a model: buckets uniform in [0, buckets), bits
/// Bernoulli with the model's per-bucket probability.
MutualSegmentEvidence DrawEvidence(Rng* rng, const CompatibilityModel& m,
                                   size_t n) {
  MutualSegmentEvidence ev;
  for (size_t i = 0; i < n; ++i) {
    int32_t unit = static_cast<int32_t>(rng->Index(m.probs().size()));
    ev.units.push_back(unit);
    ev.incompatible.push_back(
        rng->Bernoulli(m.IncompatProbByUnit(unit)) ? 1 : 0);
  }
  ev.total_mutual = static_cast<int64_t>(n);
  return ev;
}

ModelPair RealisticModels() {
  // Decaying acceptance probabilities, small flat rejection noise —
  // the shape real training produces.
  std::vector<double> rej(20, 0.02);
  std::vector<double> acc(20);
  for (size_t i = 0; i < acc.size(); ++i) {
    acc[i] = 0.85 * std::exp(-static_cast<double>(i) / 8.0);
  }
  ModelPair m;
  m.rejection = CompatibilityModel(60, rej);
  m.acceptance = CompatibilityModel(60, acc);
  return m;
}

/// Statistical soundness of the α1-rejection phase: when evidence truly
/// comes from the rejection model (same person), the false-rejection
/// rate at level α must be <= α (discrete tests are conservative).
class RejectionCalibrationTest : public ::testing::TestWithParam<double> {};

TEST_P(RejectionCalibrationTest, FalseRejectionBoundedByAlpha) {
  double alpha = GetParam();
  ModelPair models = RealisticModels();
  Rng rng(static_cast<uint64_t>(alpha * 1e6) + 17);
  const int trials = 4000;
  int rejected = 0;
  for (int t = 0; t < trials; ++t) {
    auto ev = DrawEvidence(&rng, models.rejection, 30);
    stats::PoissonBinomial dist(ev.ProbsUnder(models.rejection));
    double p1 = dist.UpperTailPValue(ev.ObservedIncompatible());
    if (p1 < alpha) ++rejected;
  }
  double rate = static_cast<double>(rejected) / trials;
  // Conservative test: rate <= alpha + 3 binomial sigmas.
  double sigma = std::sqrt(alpha * (1 - alpha) / trials);
  EXPECT_LE(rate, alpha + 3 * sigma + 1e-9) << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(Alphas, RejectionCalibrationTest,
                         ::testing::Values(0.01, 0.05, 0.1, 0.25));

/// Power: when evidence comes from the acceptance model (different
/// persons), the rejection phase should fire almost always at any
/// reasonable level.
TEST(PowerTest, DifferentPersonEvidenceIsRejected) {
  ModelPair models = RealisticModels();
  Rng rng(23);
  const int trials = 1000;
  int rejected = 0;
  for (int t = 0; t < trials; ++t) {
    auto ev = DrawEvidence(&rng, models.acceptance, 30);
    stats::PoissonBinomial dist(ev.ProbsUnder(models.rejection));
    if (dist.UpperTailPValue(ev.ObservedIncompatible()) < 0.01) {
      ++rejected;
    }
  }
  EXPECT_GT(static_cast<double>(rejected) / trials, 0.95);
}

/// Acceptance-phase power: same-person evidence yields small p2.
TEST(PowerTest, SamePersonEvidenceIsAccepted) {
  ModelPair models = RealisticModels();
  Rng rng(29);
  const int trials = 1000;
  int accepted = 0;
  for (int t = 0; t < trials; ++t) {
    auto ev = DrawEvidence(&rng, models.rejection, 30);
    stats::PoissonBinomial dist(ev.ProbsUnder(models.acceptance));
    if (dist.LowerTailPValue(ev.ObservedIncompatible()) < 0.05) {
      ++accepted;
    }
  }
  EXPECT_GT(static_cast<double>(accepted) / trials, 0.95);
}

/// Eq. 2 score behaves monotonically in the incompatible count.
TEST(ScoreMonotonicityTest, MoreIncompatibleLowersScore) {
  ModelPair models = RealisticModels();
  const size_t n = 25;
  double prev = 2.0;
  for (size_t k = 0; k <= n; k += 5) {
    MutualSegmentEvidence ev;
    for (size_t i = 0; i < n; ++i) {
      ev.units.push_back(3);
      ev.incompatible.push_back(i < k ? 1 : 0);
    }
    stats::PoissonBinomial rej(ev.ProbsUnder(models.rejection));
    stats::PoissonBinomial acc(ev.ProbsUnder(models.acceptance));
    int64_t kk = ev.ObservedIncompatible();
    double score = rej.UpperTailPValue(kk) *
                   (1.0 - acc.LowerTailPValue(kk));
    EXPECT_LE(score, prev + 1e-12) << "k=" << k;
    prev = score;
  }
}

// ----------------------------------------------------- ModelDiagnostics

TEST(ModelDiagnosticsTest, SeparableModelsScoreHigh) {
  auto d = core::DiagnoseModels(RealisticModels());
  EXPECT_GT(d.mean_js_bits, 0.1);
  EXPECT_LT(d.segments_for_decisive_link, 100.0);
  EXPECT_NE(d.ToString().find("mean_js_bits"), std::string::npos);
}

TEST(ModelDiagnosticsTest, IdenticalModelsScoreZero) {
  ModelPair m;
  m.rejection = CompatibilityModel(60, std::vector<double>(10, 0.3));
  m.acceptance = CompatibilityModel(60, std::vector<double>(10, 0.3));
  auto d = core::DiagnoseModels(m);
  EXPECT_NEAR(d.mean_js_bits, 0.0, 1e-9);
  EXPECT_TRUE(std::isinf(d.segments_for_decisive_link) ||
              d.segments_for_decisive_link > 1e6);
  EXPECT_EQ(d.inverted_buckets, 10u);  // pa <= pr everywhere
}

TEST(ModelDiagnosticsTest, CountsInvertedBuckets) {
  ModelPair m;
  m.rejection = CompatibilityModel(60, {0.1, 0.5, 0.1});
  m.acceptance = CompatibilityModel(60, {0.8, 0.2, 0.9});
  auto d = core::DiagnoseModels(m);
  EXPECT_EQ(d.inverted_buckets, 1u);  // middle bucket
  ASSERT_EQ(d.bucket_js_bits.size(), 3u);
  EXPECT_GT(d.bucket_js_bits[0], d.bucket_js_bits[1]);
}

TEST(ModelDiagnosticsTest, SupportWeighting) {
  // Same probs; concentrating support on the separable bucket raises
  // the weighted mean.
  ModelPair m;
  m.rejection = CompatibilityModel(60, {0.02, 0.02});
  m.acceptance = CompatibilityModel(60, {0.9, 0.03});
  m.rejection.set_support({1000, 1});
  double high = core::DiagnoseModels(m).mean_js_bits;
  m.rejection.set_support({1, 1000});
  double low = core::DiagnoseModels(m).mean_js_bits;
  EXPECT_GT(high, low);
}

// ------------------------------------------------------- CSV fuzzing

/// Round-trip property over randomized databases.
class CsvFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(CsvFuzzTest, RoundTripPreservesEverything) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 1);
  traj::TrajectoryDatabase db("fuzz");
  size_t n_traj = 1 + rng.Index(8);
  for (size_t i = 0; i < n_traj; ++i) {
    std::vector<traj::Record> recs;
    size_t n_rec = rng.Index(30);
    int64_t t = -5000 + static_cast<int64_t>(rng.Index(10000));
    for (size_t j = 0; j < n_rec; ++j) {
      t += rng.UniformInt(0, 1000);
      recs.push_back(traj::Record{
          {rng.Uniform(-1e6, 1e6), rng.Uniform(-1e6, 1e6)}, t});
    }
    traj::OwnerId owner = rng.Bernoulli(0.2)
                              ? traj::kUnknownOwner
                              : static_cast<traj::OwnerId>(rng.Index(100));
    (void)db.Add(traj::Trajectory("fz-" + std::to_string(i), owner,
                                  std::move(recs)));
  }
  auto parsed = io::FromCsvString(io::ToCsvString(db), "fuzz");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& out = parsed.value();
  // Empty trajectories vanish in CSV (no rows); compare non-empty ones.
  size_t non_empty = 0;
  for (const auto& t : db) {
    if (t.empty()) continue;
    ++non_empty;
    size_t oi = out.Find(t.label());
    ASSERT_NE(oi, traj::TrajectoryDatabase::npos) << t.label();
    const auto& o = out[oi];
    EXPECT_EQ(o.owner(), t.owner());
    ASSERT_EQ(o.size(), t.size());
    for (size_t j = 0; j < t.size(); ++j) {
      EXPECT_EQ(o[j].t, t[j].t);
      EXPECT_NEAR(o[j].location.x, t[j].location.x, 1e-3);
      EXPECT_NEAR(o[j].location.y, t[j].location.y, 1e-3);
    }
  }
  EXPECT_EQ(out.size(), non_empty);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest, ::testing::Range(0, 12));

// ------------------------------------------- alignment brute-force fuzz

/// Mutual-segment counting vs an independent brute-force reference.
class AlignmentFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(AlignmentFuzzTest, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 3);
  std::vector<traj::Record> pr, qr;
  size_t np = rng.Index(25), nq = rng.Index(25);
  int64_t t = 0;
  for (size_t i = 0; i < np; ++i) {
    t += rng.UniformInt(1, 50);
    pr.push_back(traj::Record{{0, 0}, t});
  }
  t = static_cast<int64_t>(rng.Index(40));
  for (size_t i = 0; i < nq; ++i) {
    t += rng.UniformInt(1, 50);
    qr.push_back(traj::Record{{0, 0}, t});
  }
  traj::Trajectory p("p", 0, pr), q("q", 1, qr);

  // Brute force: tag, concatenate, stable-sort, count alternations.
  struct Tagged {
    int64_t t;
    int src;
  };
  std::vector<Tagged> all;
  for (const auto& r : pr) all.push_back({r.t, 0});
  for (const auto& r : qr) all.push_back({r.t, 1});
  std::stable_sort(all.begin(), all.end(),
                   [](const Tagged& a, const Tagged& b) {
                     // Reproduce the P-first tie break: stable sort of
                     // P-then-Q concatenation by time.
                     return a.t < b.t;
                   });
  size_t brute = 0;
  for (size_t i = 1; i < all.size(); ++i) {
    if (all[i].src != all[i - 1].src) ++brute;
  }
  EXPECT_EQ(traj::CountMutualSegments(p, q), brute);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlignmentFuzzTest, ::testing::Range(0, 16));

}  // namespace
}  // namespace ftl
