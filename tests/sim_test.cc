#include <gtest/gtest.h>

#include <cmath>

#include "sim/city.h"
#include "sim/observation.h"
#include "sim/path.h"
#include "sim/population_sim.h"
#include "sim/scenario.h"
#include "sim/taxi_sim.h"
#include "traj/summary.h"

namespace ftl::sim {
namespace {

// ------------------------------------------------------------------ Path

TEST(PathTest, CoversRequestedSpan) {
  Rng rng(1);
  CityModel city = SingaporeLike();
  auto path = GenerateWaypointPath(&rng, city, 0, 86400, {});
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.start_time(), 0);
  EXPECT_EQ(path.end_time(), 86400);
}

TEST(PathTest, StaysInsideCity) {
  Rng rng(2);
  CityModel city = SingaporeLike();
  auto path = GenerateWaypointPath(&rng, city, 0, 86400, {});
  for (const auto& k : path.knots()) {
    EXPECT_TRUE(city.bounds.Contains(k.location))
        << k.location.x << "," << k.location.y;
  }
}

TEST(PathTest, RespectsSpeedLimit) {
  Rng rng(3);
  CityModel city = SingaporeLike();
  auto path = GenerateWaypointPath(&rng, city, 0, 7 * 86400, {});
  // Straight-line knot speed <= physical speed / road factor <= max.
  EXPECT_LE(path.MaxKnotSpeed(), city.max_speed_mps + 1e-6);
}

TEST(PathTest, PositionInterpolates) {
  GroundTruthPath path({traj::Record{{0, 0}, 0}, traj::Record{{100, 0}, 100}});
  EXPECT_NEAR(path.PositionAt(50).x, 50.0, 1e-9);
  EXPECT_NEAR(path.PositionAt(0).x, 0.0, 1e-9);
  EXPECT_NEAR(path.PositionAt(100).x, 100.0, 1e-9);
  // Clamped outside the span.
  EXPECT_NEAR(path.PositionAt(-10).x, 0.0, 1e-9);
  EXPECT_NEAR(path.PositionAt(500).x, 100.0, 1e-9);
}

TEST(PathTest, MeanSpeed) {
  GroundTruthPath path({traj::Record{{0, 0}, 0}, traj::Record{{100, 0}, 50}});
  EXPECT_NEAR(path.MeanSpeed(0, 50), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(path.MeanSpeed(0, 0), 0.0);
}

TEST(PathTest, DeterministicGivenSeed) {
  CityModel city = BeijingLike();
  Rng r1(9), r2(9);
  auto p1 = GenerateWaypointPath(&r1, city, 0, 86400, {});
  auto p2 = GenerateWaypointPath(&r2, city, 0, 86400, {});
  ASSERT_EQ(p1.knots().size(), p2.knots().size());
  for (size_t i = 0; i < p1.knots().size(); ++i) {
    EXPECT_EQ(p1.knots()[i].t, p2.knots()[i].t);
    EXPECT_DOUBLE_EQ(p1.knots()[i].location.x, p2.knots()[i].location.x);
  }
}

// ----------------------------------------------------------- Observation

TEST(ObservationTest, GaussianNoiseMagnitude) {
  Rng rng(4);
  GroundTruthPath path(
      {traj::Record{{1000, 1000}, 0}, traj::Record{{1000, 1000}, 10000}});
  NoiseModel noise{50.0, 0.0, 0};
  double sq = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    auto r = Observe(&rng, path, 500, noise);
    double dx = r.location.x - 1000.0;
    double dy = r.location.y - 1000.0;
    sq += dx * dx + dy * dy;
  }
  // E[dx^2 + dy^2] = 2 sigma^2.
  EXPECT_NEAR(sq / n, 2 * 50.0 * 50.0, 300.0);
}

TEST(ObservationTest, CellGridSnapping) {
  Rng rng(5);
  GroundTruthPath path(
      {traj::Record{{1234, 5678}, 0}, traj::Record{{1234, 5678}, 100}});
  NoiseModel noise{0.0, 500.0, 0};
  auto r = Observe(&rng, path, 50, noise);
  EXPECT_DOUBLE_EQ(std::fmod(r.location.x, 500.0), 0.0);
  EXPECT_DOUBLE_EQ(std::fmod(r.location.y, 500.0), 0.0);
  EXPECT_NEAR(r.location.x, 1234.0, 250.0);
}

TEST(ObservationTest, TimeJitter) {
  Rng rng(6);
  GroundTruthPath path(
      {traj::Record{{0, 0}, 0}, traj::Record{{0, 0}, 100000}});
  NoiseModel noise{0.0, 0.0, 30};
  bool jittered = false;
  for (int i = 0; i < 100; ++i) {
    auto r = Observe(&rng, path, 5000, noise);
    EXPECT_GE(r.t, 4970);
    EXPECT_LE(r.t, 5030);
    if (r.t != 5000) jittered = true;
  }
  EXPECT_TRUE(jittered);
}

TEST(ObservationTest, PeriodicSamplingCadence) {
  Rng rng(7);
  CityModel city = SingaporeLike();
  auto path = GenerateWaypointPath(&rng, city, 0, 2 * 86400, {});
  PeriodicSampler sampler{60.0, 0.0, 1.0};
  ActivityPattern act{86400, 0, 86400, 0.0};  // always on
  auto recs = SamplePeriodic(&rng, path, sampler, act, {0.0, 0.0, 0});
  // ~2880 records over 2 days at 60 s cadence.
  EXPECT_NEAR(static_cast<double>(recs.size()), 2880.0, 30.0);
  for (size_t i = 1; i < recs.size(); ++i) {
    EXPECT_GE(recs[i].t, recs[i - 1].t);
  }
}

TEST(ObservationTest, ActivityWindowRestrictsSamples) {
  Rng rng(8);
  GroundTruthPath path(
      {traj::Record{{0, 0}, 0}, traj::Record{{0, 0}, 86400}});
  PeriodicSampler sampler{60.0, 0.0, 1.0};
  ActivityPattern act{86400, 6 * 3600, 4 * 3600, 0.0};
  auto recs = SamplePeriodic(&rng, path, sampler, act, {0.0, 0.0, 0});
  ASSERT_FALSE(recs.empty());
  for (const auto& r : recs) {
    EXPECT_GE(r.t, 6 * 3600);
    EXPECT_LT(r.t, 10 * 3600 + 60);
  }
}

TEST(ObservationTest, KeepProbThins) {
  Rng rng(9);
  GroundTruthPath path(
      {traj::Record{{0, 0}, 0}, traj::Record{{0, 0}, 10 * 86400}});
  PeriodicSampler dense{60.0, 0.0, 1.0};
  PeriodicSampler thin{60.0, 0.0, 0.1};
  ActivityPattern act{86400, 0, 86400, 0.0};
  auto full = SamplePeriodic(&rng, path, dense, act, {0.0, 0.0, 0});
  auto kept = SamplePeriodic(&rng, path, thin, act, {0.0, 0.0, 0});
  EXPECT_NEAR(static_cast<double>(kept.size()),
              0.1 * static_cast<double>(full.size()),
              0.03 * static_cast<double>(full.size()));
}

TEST(ObservationTest, PoissonSamplingRate) {
  Rng rng(10);
  GroundTruthPath path(
      {traj::Record{{0, 0}, 0}, traj::Record{{0, 0}, 100 * 86400}});
  double rate = 10.0 / 86400.0;  // 10 per day
  auto recs = SamplePoisson(&rng, path, rate, {0.0, 0.0, 0});
  EXPECT_NEAR(static_cast<double>(recs.size()), 1000.0, 120.0);
}

// -------------------------------------------------------------- TaxiSim

TEST(TaxiSimTest, ProducesPairedDatabases) {
  TaxiFleetOptions opts;
  opts.num_taxis = 10;
  opts.duration_days = 2;
  opts.seed = 11;
  auto data = SimulateTaxiFleet(opts);
  EXPECT_EQ(data.log_db.size(), 10u);
  EXPECT_EQ(data.trip_db.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(data.log_db[i].owner(), data.trip_db[i].owner());
    EXPECT_NE(data.log_db[i].label(), data.trip_db[i].label());
  }
}

TEST(TaxiSimTest, LogDenserThanTrips) {
  TaxiFleetOptions opts;
  opts.num_taxis = 5;
  opts.duration_days = 3;
  opts.seed = 12;
  auto data = SimulateTaxiFleet(opts);
  // "the update frequency in log data is much denser than that in trip
  // data" (paper Section VII-A).
  EXPECT_GT(data.log_db.TotalRecords(), 5 * data.trip_db.TotalRecords());
}

TEST(TaxiSimTest, RecordsRespectVmax) {
  TaxiFleetOptions opts;
  opts.num_taxis = 5;
  opts.duration_days = 2;
  opts.seed = 13;
  auto data = SimulateTaxiFleet(opts);
  // Consecutive same-taxi records never need more than Vmax=120 kph
  // (up to GPS noise on short gaps; tolerate a tiny violation count).
  double vmax = geo::KphToMps(120.0);
  size_t violations = 0, segments = 0;
  for (const auto& t : data.log_db) {
    const auto& recs = t.records();
    for (size_t i = 1; i < recs.size(); ++i) {
      ++segments;
      if (!traj::IsCompatible(recs[i - 1], recs[i], vmax)) ++violations;
    }
  }
  ASSERT_GT(segments, 1000u);
  EXPECT_LT(static_cast<double>(violations) / static_cast<double>(segments),
            0.01);
}

TEST(TaxiSimTest, Deterministic) {
  TaxiFleetOptions opts;
  opts.num_taxis = 3;
  opts.duration_days = 1;
  opts.seed = 14;
  auto d1 = SimulateTaxiFleet(opts);
  auto d2 = SimulateTaxiFleet(opts);
  ASSERT_EQ(d1.log_db.TotalRecords(), d2.log_db.TotalRecords());
  EXPECT_EQ(d1.log_db[0].size(), d2.log_db[0].size());
}

// -------------------------------------------------------- PopulationSim

TEST(PopulationSimTest, FullOverlapPairsEveryone) {
  PopulationOptions opts;
  opts.num_persons = 20;
  opts.duration_days = 2;
  opts.overlap_fraction = 1.0;
  opts.seed = 15;
  auto data = SimulatePopulation(opts);
  EXPECT_EQ(data.cdr_db.size(), 20u);
  EXPECT_EQ(data.transit_db.size(), 20u);
}

TEST(PopulationSimTest, PartialOverlap) {
  PopulationOptions opts;
  opts.num_persons = 400;
  opts.duration_days = 1;
  opts.overlap_fraction = 0.5;
  opts.seed = 16;
  auto data = SimulatePopulation(opts);
  // Each person lands in cdr-only, transit-only, or both.
  EXPECT_LT(data.cdr_db.size(), 400u);
  EXPECT_LT(data.transit_db.size(), 400u);
  EXPECT_GT(data.cdr_db.size(), 150u);
  EXPECT_GT(data.transit_db.size(), 150u);
}

TEST(PopulationSimTest, CdrSnapsToCellGrid) {
  PopulationOptions opts;
  opts.num_persons = 5;
  opts.duration_days = 3;
  opts.seed = 17;
  auto data = SimulatePopulation(opts);
  for (const auto& t : data.cdr_db) {
    for (const auto& r : t.records()) {
      EXPECT_DOUBLE_EQ(std::fmod(r.location.x, 500.0), 0.0);
    }
  }
}

TEST(PopulationSimTest, AccessRatesApproximatelyPoisson) {
  PopulationOptions opts;
  opts.num_persons = 100;
  opts.duration_days = 10;
  opts.cdr_accesses_per_day = 12.0;
  opts.seed = 18;
  auto data = SimulatePopulation(opts);
  double total = static_cast<double>(data.cdr_db.TotalRecords());
  double per_person_day = total / 100.0 / 10.0;
  EXPECT_NEAR(per_person_day, 12.0, 1.0);
}

// ------------------------------------------------------------- Scenario

TEST(ScenarioTest, ConfigTablesMatchPaper) {
  auto s = SingaporeConfigs();
  ASSERT_EQ(s.size(), 6u);
  EXPECT_EQ(s[0].name, "SA");
  EXPECT_DOUBLE_EQ(s[0].rate_p, 0.006);
  EXPECT_EQ(s[0].duration_days, 31);
  EXPECT_EQ(s[5].name, "SF");
  EXPECT_EQ(s[5].duration_days, 21);
  auto t = TDriveConfigs();
  ASSERT_EQ(t.size(), 6u);
  EXPECT_EQ(t[2].name, "TC");
  EXPECT_DOUBLE_EQ(t[2].rate_p, 0.08);
  EXPECT_EQ(t[3].duration_days, 2);
}

TEST(ScenarioTest, FindConfig) {
  EXPECT_EQ(FindConfig("SB").name, "SB");
  EXPECT_EQ(FindConfig("TF").name, "TF");
  EXPECT_TRUE(FindConfig("XX").name.empty());
}

TEST(ScenarioTest, BuildSingaporeDataset) {
  auto pair = BuildDataset(FindConfig("SD"), 30, 19);
  EXPECT_EQ(pair.name, "SD");
  EXPECT_EQ(pair.p.size(), 30u);
  EXPECT_EQ(pair.q.size(), 30u);
  // Rate 0.01 on ~60s logs over 7 days: |P| in the tens.
  auto sum = traj::Summarize(pair.p);
  EXPECT_GT(sum.mean_size, 10.0);
  EXPECT_LT(sum.mean_size, 200.0);
}

TEST(ScenarioTest, BuildTDriveDataset) {
  auto pair = BuildDataset(FindConfig("TD"), 30, 20);
  EXPECT_EQ(pair.p.size(), 30u);
  EXPECT_EQ(pair.q.size(), 30u);
  // Owners align between the split halves.
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(pair.p[i].owner(), pair.q[i].owner());
  }
}

TEST(ScenarioTest, LongerDurationMoreRecords) {
  auto d2 = BuildDataset(FindConfig("TD"), 20, 21);  // 2 days
  auto d6 = BuildDataset(FindConfig("TF"), 20, 21);  // 6 days
  EXPECT_GT(traj::Summarize(d6.p).mean_size,
            traj::Summarize(d2.p).mean_size);
}

TEST(ScenarioTest, HigherRateMoreRecords) {
  auto lo = BuildDataset(FindConfig("SA"), 15, 22);  // rate 0.006
  auto hi = BuildDataset(FindConfig("SC"), 15, 22);  // rate 0.01
  EXPECT_GT(traj::Summarize(hi.p).mean_size,
            traj::Summarize(lo.p).mean_size);
}

}  // namespace
}  // namespace ftl::sim
