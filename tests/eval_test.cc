#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/workload.h"

namespace ftl::eval {
namespace {

using core::MatchCandidate;
using core::QueryResult;
using traj::Record;
using traj::Trajectory;
using traj::TrajectoryDatabase;

Record R(traj::Timestamp t) { return Record{{0, 0}, t}; }

TrajectoryDatabase Db(const std::vector<traj::OwnerId>& owners) {
  TrajectoryDatabase db;
  for (size_t i = 0; i < owners.size(); ++i) {
    (void)db.Add(Trajectory("t" + std::to_string(i), owners[i],
                            {R(0), R(10)}));
  }
  return db;
}

QueryResult MakeResult(const std::vector<size_t>& indices, size_t db_size) {
  QueryResult r;
  for (size_t idx : indices) {
    MatchCandidate c;
    c.index = idx;
    r.candidates.push_back(c);
  }
  r.selectiveness = static_cast<double>(indices.size()) /
                    static_cast<double>(db_size);
  return r;
}

// -------------------------------------------------------------- Metrics

TEST(MetricsTest, PerceptivenessCountsHits) {
  auto db = Db({10, 20, 30});
  std::vector<QueryResult> results = {
      MakeResult({0, 1}, 3),  // owner 10 at rank 0 -> hit for owner 10
      MakeResult({2}, 3),     // owner 30 -> miss for owner 20
  };
  auto m = ComputeMetrics(results, {10, 20}, db);
  EXPECT_EQ(m.num_queries, 2u);
  EXPECT_DOUBLE_EQ(m.perceptiveness, 0.5);
  ASSERT_EQ(m.true_match_ranks.size(), 2u);
  EXPECT_EQ(m.true_match_ranks[0], 0);
  EXPECT_EQ(m.true_match_ranks[1], -1);
}

TEST(MetricsTest, SelectivenessIsMean) {
  auto db = Db({1, 2, 3, 4});
  std::vector<QueryResult> results = {MakeResult({0}, 4),
                                      MakeResult({0, 1, 2}, 4)};
  auto m = ComputeMetrics(results, {1, 1}, db);
  EXPECT_DOUBLE_EQ(m.selectiveness, (0.25 + 0.75) / 2.0);
  EXPECT_DOUBLE_EQ(m.mean_candidates, 2.0);
}

TEST(MetricsTest, RankIsPositionOfFirstTrueMatch) {
  auto db = Db({5, 6, 5});
  std::vector<QueryResult> results = {MakeResult({1, 2, 0}, 3)};
  auto m = ComputeMetrics(results, {5}, db);
  EXPECT_EQ(m.true_match_ranks[0], 1);  // index 2 owner 5 at rank 1
}

TEST(MetricsTest, EmptyResults) {
  auto db = Db({1});
  auto m = ComputeMetrics({}, {}, db);
  EXPECT_EQ(m.num_queries, 0u);
  EXPECT_DOUBLE_EQ(m.perceptiveness, 0.0);
}

TEST(MetricsTest, TopKCurveMonotone) {
  WorkloadMetrics m;
  m.true_match_ranks = {0, 2, 2, -1, 5};
  auto curve = TopKCurve(m, 6);
  ASSERT_EQ(curve.size(), 6u);
  EXPECT_EQ(curve[0], 1);  // one query at rank 0
  EXPECT_EQ(curve[1], 1);
  EXPECT_EQ(curve[2], 3);  // + two at rank 2
  EXPECT_EQ(curve[5], 4);  // + one at rank 5; the miss never counts
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1]);
  }
}

TEST(MetricsTest, PrecisionAtK) {
  std::vector<int64_t> ranks = {0, 9, 10, -1};
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranks, 1), 0.25);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranks, 10), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranks, 11), 0.75);
  EXPECT_DOUBLE_EQ(PrecisionAtK({}, 5), 0.0);
}

// ------------------------------------------------------------- Workload

TEST(WorkloadTest, SelectsRequestedCount) {
  auto p = Db({1, 2, 3, 4, 5, 6, 7, 8});
  auto q = Db({1, 2, 3, 4, 5, 6, 7, 8});
  WorkloadOptions o;
  o.num_queries = 3;
  o.seed = 1;
  auto w = MakeWorkload(p, q, o);
  EXPECT_EQ(w.queries.size(), 3u);
  EXPECT_EQ(w.owners.size(), 3u);
}

TEST(WorkloadTest, RequiresMatchInQ) {
  auto p = Db({1, 2, 3, 4});
  auto q = Db({3, 4});  // only owners 3, 4 present
  WorkloadOptions o;
  o.num_queries = 10;
  o.require_match_in_q = true;
  auto w = MakeWorkload(p, q, o);
  EXPECT_EQ(w.queries.size(), 2u);
  for (auto owner : w.owners) {
    EXPECT_TRUE(owner == 3 || owner == 4);
  }
}

TEST(WorkloadTest, WithoutMatchRequirementUsesAll) {
  auto p = Db({1, 2, 3, 4});
  auto q = Db({99});
  WorkloadOptions o;
  o.num_queries = 10;
  o.require_match_in_q = false;
  auto w = MakeWorkload(p, q, o);
  EXPECT_EQ(w.queries.size(), 4u);
}

TEST(WorkloadTest, MinRecordsFilter) {
  TrajectoryDatabase p;
  (void)p.Add(Trajectory("short", 1, {R(0)}));
  (void)p.Add(Trajectory("long", 2, {R(0), R(1), R(2)}));
  auto q = Db({1, 2});
  WorkloadOptions o;
  o.num_queries = 10;
  o.min_query_records = 2;
  auto w = MakeWorkload(p, q, o);
  ASSERT_EQ(w.queries.size(), 1u);
  EXPECT_EQ(w.queries[0].label(), "long");
}

TEST(WorkloadTest, DeterministicGivenSeed) {
  auto p = Db({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  auto q = Db({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  WorkloadOptions o;
  o.num_queries = 4;
  o.seed = 77;
  auto w1 = MakeWorkload(p, q, o);
  auto w2 = MakeWorkload(p, q, o);
  ASSERT_EQ(w1.queries.size(), w2.queries.size());
  for (size_t i = 0; i < w1.queries.size(); ++i) {
    EXPECT_EQ(w1.queries[i].label(), w2.queries[i].label());
  }
}

TEST(WorkloadTest, UnknownOwnersExcludedWhenMatchRequired) {
  TrajectoryDatabase p;
  (void)p.Add(Trajectory("anon", traj::kUnknownOwner, {R(0), R(1)}));
  (void)p.Add(Trajectory("known", 5, {R(0), R(1)}));
  auto q = Db({5});
  WorkloadOptions o;
  o.num_queries = 10;
  auto w = MakeWorkload(p, q, o);
  ASSERT_EQ(w.queries.size(), 1u);
  EXPECT_EQ(w.queries[0].label(), "known");
}

}  // namespace
}  // namespace ftl::eval
