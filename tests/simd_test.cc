// Property tests for the SIMD kernel layer: every compiled-in ISA
// level must be bit-identical to the scalar reference — histograms,
// convolutions, and end-to-end accept decisions — across randomized
// inputs that exercise the corners the vector paths special-case:
// NaN coordinates, duplicate timestamps (P-first merge ties), empty
// buckets, length-0/1 and odd-length columns (vector remainder tails),
// and timestamp spans past the int32 staging guard.

#include "simd/dispatch.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "sim/scenario.h"
#include "traj/flat_database.h"

namespace ftl {
namespace {

std::vector<simd::IsaLevel> VectorLevels() {
  std::vector<simd::IsaLevel> out;
  for (simd::IsaLevel l : {simd::IsaLevel::kSimd128, simd::IsaLevel::kAvx2}) {
    if (simd::KernelsFor(l) != nullptr) out.push_back(l);
  }
  return out;
}

struct Columns {
  std::vector<int64_t> ts;
  std::vector<double> xs, ys;
};

/// Random sorted trajectory columns. Zero increments are common (20%)
/// so P/Q merges hit duplicate timestamps and the P-first tie rule;
/// 5% of coordinates are NaN (the speed compare must treat them as
/// compatible, exactly like scalar).
Columns RandomColumns(std::mt19937_64& rng, size_t n, int64_t t0,
                      int64_t max_step) {
  std::uniform_int_distribution<int64_t> step(0, max_step);
  std::uniform_real_distribution<double> coord(-5000.0, 5000.0);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  Columns c;
  int64_t t = t0;
  for (size_t i = 0; i < n; ++i) {
    t += u01(rng) < 0.2 ? 0 : step(rng);
    c.ts.push_back(t);
    c.xs.push_back(u01(rng) < 0.05
                       ? std::numeric_limits<double>::quiet_NaN()
                       : coord(rng));
    c.ys.push_back(u01(rng) < 0.05
                       ? std::numeric_limits<double>::quiet_NaN()
                       : coord(rng));
  }
  return c;
}

/// Runs `level`'s evidence kernel and requires byte-identical counts,
/// incompatibles, and return value vs the scalar reference.
void ExpectEvidenceIdentical(const Columns& p, const Columns& q,
                             const simd::EvidenceParams& params,
                             simd::IsaLevel level,
                             simd::EvidenceScratch* scratch) {
  const simd::Kernels* scalar = simd::KernelsFor(simd::IsaLevel::kScalar);
  const simd::Kernels* vec = simd::KernelsFor(level);
  ASSERT_NE(scalar, nullptr);
  ASSERT_NE(vec, nullptr);
  const size_t slots = static_cast<size_t>(params.horizon_units) + 1;
  std::vector<int32_t> cnt_s(slots, 0), inc_s(slots, 0);
  std::vector<int32_t> cnt_v(slots, 0), inc_v(slots, 0);
  int64_t r_s = scalar->evidence_histogram(
      p.ts.data(), p.xs.data(), p.ys.data(), p.ts.size(), q.ts.data(),
      q.xs.data(), q.ys.data(), q.ts.size(), params, cnt_s.data(),
      inc_s.data(), nullptr);
  int64_t r_v = vec->evidence_histogram(
      p.ts.data(), p.xs.data(), p.ys.data(), p.ts.size(), q.ts.data(),
      q.xs.data(), q.ys.data(), q.ts.size(), params, cnt_v.data(),
      inc_v.data(), scratch);
  EXPECT_EQ(r_s, r_v) << "np=" << p.ts.size() << " nq=" << q.ts.size();
  EXPECT_EQ(0, std::memcmp(cnt_s.data(), cnt_v.data(),
                           slots * sizeof(int32_t)))
      << "count histograms differ (np=" << p.ts.size()
      << " nq=" << q.ts.size() << ")";
  EXPECT_EQ(0, std::memcmp(inc_s.data(), inc_v.data(),
                           slots * sizeof(int32_t)))
      << "incompatible histograms differ (np=" << p.ts.size()
      << " nq=" << q.ts.size() << ")";
}

TEST(SimdKernelsTest, EvidenceHistogramMatchesScalarOnRandomTrajectories) {
  auto levels = VectorLevels();
  if (levels.empty()) GTEST_SKIP() << "scalar-only build";
  std::mt19937_64 rng(0x5eed5eedULL);
  simd::EvidenceScratch scratch;
  const simd::EvidenceParams param_sets[] = {
      {60, 60, 33.3},  // production shape
      {1, 0, 0.0},     // 1s units, horizon 0: everything overflows
      {7, 3, 1.0},     // odd unit, tiny horizon
      {3600, 24, 250.0},
  };
  // Lengths stress the vector remainder tails: empty, single-record,
  // below one vector width, odd, and long enough for many full blocks.
  const size_t lengths[] = {0, 1, 2, 3, 5, 7, 8, 13, 64, 127, 200};
  std::uniform_int_distribution<size_t> pick(0, std::size(lengths) - 1);
  for (int trial = 0; trial < 300; ++trial) {
    const auto& params = param_sets[trial % std::size(param_sets)];
    size_t np = lengths[pick(rng)];
    size_t nq = lengths[pick(rng)];
    // Shared time base so P/Q timestamps collide often.
    int64_t t0 = 1'000'000 + (trial % 7) * 31;
    Columns p = RandomColumns(rng, np, t0, 150);
    Columns q = RandomColumns(rng, nq, t0, 150);
    for (simd::IsaLevel level : levels) {
      ExpectEvidenceIdentical(p, q, params, level, &scratch);
      // Null scratch must defer to the scalar path, not crash.
      ExpectEvidenceIdentical(p, q, params, level, nullptr);
    }
  }
}

TEST(SimdKernelsTest, EvidenceHistogramMatchesScalarPastInt32SpanGuard) {
  auto levels = VectorLevels();
  if (levels.empty()) GTEST_SKIP() << "scalar-only build";
  std::mt19937_64 rng(0xabcdefULL);
  simd::EvidenceScratch scratch;
  simd::EvidenceParams params{60, 60, 33.3};
  // Steps up to 2^40 seconds push the merged span far past what the
  // int32 dt staging can hold; the vector kernels must take their
  // scalar fallback and stay bit-identical.
  Columns p = RandomColumns(rng, 50, 0, int64_t{1} << 40);
  Columns q = RandomColumns(rng, 50, 0, int64_t{1} << 40);
  for (simd::IsaLevel level : levels) {
    ExpectEvidenceIdentical(p, q, params, level, &scratch);
  }
  // Huge time units disable the int32 unit math the same way.
  simd::EvidenceParams huge_unit{int64_t{1} << 33, 60, 33.3};
  Columns p2 = RandomColumns(rng, 40, 0, 150);
  Columns q2 = RandomColumns(rng, 40, 0, 150);
  for (simd::IsaLevel level : levels) {
    ExpectEvidenceIdentical(p2, q2, huge_unit, level, &scratch);
  }
}

TEST(SimdKernelsTest, ConvolutionKernelsMatchScalarOnRandomInputs) {
  auto levels = VectorLevels();
  if (levels.empty()) GTEST_SKIP() << "scalar-only build";
  std::mt19937_64 rng(0xc0ffeeULL);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  std::uniform_int_distribution<size_t> len(1, 600);
  std::uniform_int_distribution<size_t> mm(1, 6);
  for (int trial = 0; trial < 200; ++trial) {
    size_t n = trial < 8 ? static_cast<size_t>(trial) + 1 : len(rng);
    size_t m = mm(rng);
    std::vector<double> f0(n);
    for (double& v : f0) v = u01(rng);
    std::vector<double> b(m + 1);
    for (double& v : b) v = u01(rng);
    std::vector<double> fs = f0, fv(n);
    const simd::Kernels* scalar = simd::KernelsFor(simd::IsaLevel::kScalar);
    scalar->convolve_prefix(fs.data(), n, b.data(), m);
    for (simd::IsaLevel level : levels) {
      fv = f0;
      simd::KernelsFor(level)->convolve_prefix(fv.data(), n, b.data(), m);
      EXPECT_EQ(0, std::memcmp(fs.data(), fv.data(), n * sizeof(double)))
          << "convolve_prefix n=" << n << " m=" << m;
    }
    double pp = u01(rng);
    fs = f0;
    scalar->bernoulli_step(fs.data(), n, pp, 1.0 - pp);
    for (simd::IsaLevel level : levels) {
      fv = f0;
      simd::KernelsFor(level)->bernoulli_step(fv.data(), n, pp, 1.0 - pp);
      EXPECT_EQ(0, std::memcmp(fs.data(), fv.data(), n * sizeof(double)))
          << "bernoulli_step n=" << n;
    }
  }
}

TEST(SimdKernelsTest, DispatchClampsToSupportedLevel) {
  const simd::IsaLevel best = simd::BestSupportedLevel();
  const simd::Kernels& forced = simd::SetDispatchForTest(simd::IsaLevel::kAvx2);
  EXPECT_LE(static_cast<int>(forced.level), static_cast<int>(best));
  EXPECT_EQ(&simd::Dispatch(), &forced);
  const simd::Kernels& scalar =
      simd::SetDispatchForTest(simd::IsaLevel::kScalar);
  EXPECT_EQ(scalar.level, simd::IsaLevel::kScalar);
  simd::SetDispatchForTest(best);
}

TEST(SimdKernelsTest, EngineAcceptDecisionsIdenticalAcrossLevels) {
  auto levels = VectorLevels();
  if (levels.empty()) GTEST_SKIP() << "scalar-only build";
  sim::DatasetPair pair = sim::BuildDataset(sim::FindConfig("SC"), 30, 77);
  traj::FlatDatabase db = traj::FlatDatabase::FromDatabase(pair.q);
  traj::FlatDatabase queries = traj::FlatDatabase::FromDatabase(pair.p);
  core::EngineOptions eo;
  eo.training.horizon_units = 60;
  core::FtlEngine engine(eo);
  ASSERT_TRUE(engine.Train(pair.p, pair.q).ok());

  const size_t nq = std::min<size_t>(queries.size(), 6);
  std::vector<core::QueryResult> oracle;
  simd::SetDispatchForTest(simd::IsaLevel::kScalar);
  for (size_t i = 0; i < nq; ++i) {
    auto r = engine.Query(queries[i], db, core::Matcher::kAlphaFilter);
    ASSERT_TRUE(r.ok());
    oracle.push_back(std::move(r).value());
  }
  for (simd::IsaLevel level : levels) {
    simd::SetDispatchForTest(level);
    for (size_t i = 0; i < nq; ++i) {
      auto r = engine.Query(queries[i], db, core::Matcher::kAlphaFilter);
      ASSERT_TRUE(r.ok());
      const auto& a = oracle[i].candidates;
      const auto& b = r.value().candidates;
      ASSERT_EQ(a.size(), b.size()) << "accept set differs, query " << i;
      for (size_t j = 0; j < a.size(); ++j) {
        EXPECT_EQ(a[j].index, b[j].index);
        uint64_t bits_a = 0, bits_b = 0;
        std::memcpy(&bits_a, &a[j].p1, sizeof(bits_a));
        std::memcpy(&bits_b, &b[j].p1, sizeof(bits_b));
        EXPECT_EQ(bits_a, bits_b);
        std::memcpy(&bits_a, &a[j].p2, sizeof(bits_a));
        std::memcpy(&bits_b, &b[j].p2, sizeof(bits_b));
        EXPECT_EQ(bits_a, bits_b);
      }
    }
  }
  simd::SetDispatchForTest(simd::BestSupportedLevel());
}

}  // namespace
}  // namespace ftl
