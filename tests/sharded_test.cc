#include <gtest/gtest.h>

#include "core/sharded.h"
#include "sim/population_sim.h"

namespace ftl::core {
namespace {

sim::PopulationData TestData(uint64_t seed = 21) {
  sim::PopulationOptions po;
  po.num_persons = 50;
  po.duration_days = 6;
  po.cdr_accesses_per_day = 18.0;
  po.transit_accesses_per_day = 15.0;
  po.seed = seed;
  return sim::SimulatePopulation(po);
}

ShardedOptions Opts(size_t shards) {
  ShardedOptions o;
  o.num_shards = shards;
  o.engine.training.horizon_units = 30;
  o.engine.naive_bayes.phi_r = 0.05;
  return o;
}

TEST(ShardedTest, QueryBeforeTrainFails) {
  ShardedEngine engine(Opts(4));
  auto data = TestData();
  auto r = engine.Query(data.cdr_db[0], Matcher::kNaiveBayes);
  EXPECT_FALSE(r.ok());
}

TEST(ShardedTest, BuildsRequestedShards) {
  ShardedEngine engine(Opts(4));
  auto data = TestData();
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());
  EXPECT_EQ(engine.num_shards(), 4u);
  EXPECT_EQ(engine.total_candidates(), data.transit_db.size());
}

TEST(ShardedTest, ShardCountClampedToDbSize) {
  sim::PopulationOptions po;
  po.num_persons = 3;
  po.duration_days = 2;
  po.seed = 5;
  auto data = sim::SimulatePopulation(po);
  ShardedEngine engine(Opts(16));
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());
  EXPECT_LE(engine.num_shards(), 3u);
}

/// The core distributed-correctness property: sharded results equal
/// single-node results exactly, for both matchers and several shard
/// counts.
class ShardedEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardedEquivalenceTest, MatchesSingleNode) {
  size_t shards = static_cast<size_t>(GetParam());
  auto data = TestData();

  ShardedOptions so = Opts(shards);
  ShardedEngine sharded(so);
  ASSERT_TRUE(sharded.Train(data.cdr_db, data.transit_db).ok());

  FtlEngine single(so.engine);
  ASSERT_TRUE(single.Train(data.cdr_db, data.transit_db).ok());

  for (auto matcher : {Matcher::kAlphaFilter, Matcher::kNaiveBayes}) {
    for (size_t qi = 0; qi < 6; ++qi) {
      auto rs = sharded.Query(data.cdr_db[qi], matcher);
      auto r1 = single.Query(data.cdr_db[qi], data.transit_db, matcher);
      ASSERT_TRUE(rs.ok());
      ASSERT_TRUE(r1.ok());
      ASSERT_EQ(rs.value().candidates.size(),
                r1.value().candidates.size());
      EXPECT_DOUBLE_EQ(rs.value().selectiveness,
                       r1.value().selectiveness);
      // Same candidate set with the same scores (order may differ only
      // among exact ties; compare as sorted (index, score) multisets).
      auto key = [](const MatchCandidate& c) {
        return std::make_pair(c.index, c.score);
      };
      std::vector<std::pair<size_t, double>> a, b;
      for (const auto& c : rs.value().candidates) a.push_back(key(c));
      for (const auto& c : r1.value().candidates) b.push_back(key(c));
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      EXPECT_EQ(a, b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedEquivalenceTest,
                         ::testing::Values(1, 2, 3, 8));

TEST(ShardedTest, ScoresDescendAfterGather) {
  auto data = TestData(33);
  ShardedEngine engine(Opts(4));
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());
  auto r = engine.Query(data.cdr_db[1], Matcher::kNaiveBayes);
  ASSERT_TRUE(r.ok());
  for (size_t i = 1; i < r.value().candidates.size(); ++i) {
    EXPECT_GE(r.value().candidates[i - 1].score,
              r.value().candidates[i].score);
  }
}

TEST(ShardedTest, GlobalIndicesValid) {
  auto data = TestData(34);
  ShardedEngine engine(Opts(5));
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());
  auto r = engine.Query(data.cdr_db[2], Matcher::kNaiveBayes);
  ASSERT_TRUE(r.ok());
  for (const auto& c : r.value().candidates) {
    ASSERT_LT(c.index, data.transit_db.size());
    EXPECT_EQ(c.label, data.transit_db[c.index].label());
  }
}

}  // namespace
}  // namespace ftl::core
