#include <gtest/gtest.h>

#include <cmath>

#include "baselines/search.h"
#include "baselines/similarity.h"

namespace ftl::baselines {
namespace {

using traj::Record;
using traj::Timestamp;
using traj::Trajectory;
using traj::TrajectoryDatabase;

Record R(double x, double y, Timestamp t) { return Record{{x, y}, t}; }

Trajectory Line(const std::string& label, double x0, double step, size_t n,
                traj::OwnerId owner = 0) {
  std::vector<Record> recs;
  for (size_t i = 0; i < n; ++i) {
    recs.push_back(R(x0 + step * static_cast<double>(i), 0,
                     static_cast<Timestamp>(i)));
  }
  return Trajectory(label, owner, std::move(recs));
}

// ------------------------------------------------------------------ P2T

TEST(P2TTest, ZeroForIdenticalTrajectories) {
  Trajectory a = Line("a", 0, 10, 5);
  EXPECT_DOUBLE_EQ(P2TDistance().Distance(a, a), 0.0);
}

TEST(P2TTest, MeanNearestDistance) {
  Trajectory a("a", 0, {R(0, 0, 0), R(10, 0, 1)});
  Trajectory b("b", 0, {R(0, 3, 0)});
  // Nearest distances: 3 and sqrt(100+9).
  double expect = (3.0 + std::sqrt(109.0)) / 2.0;
  EXPECT_NEAR(P2TDistance().Distance(a, b), expect, 1e-12);
}

TEST(P2TTest, EmptyIsInfinite) {
  Trajectory a = Line("a", 0, 1, 3);
  Trajectory e("e", 0, {});
  EXPECT_TRUE(std::isinf(P2TDistance().Distance(a, e)));
  EXPECT_TRUE(std::isinf(P2TDistance().Distance(e, a)));
}

TEST(P2TTest, Name) { EXPECT_EQ(P2TDistance().Name(), "P2T"); }

// ------------------------------------------------------------------ DTW

TEST(DtwTest, ZeroForIdenticalTrajectories) {
  Trajectory a = Line("a", 0, 7, 6);
  EXPECT_DOUBLE_EQ(DtwDistance().Distance(a, a), 0.0);
}

TEST(DtwTest, SinglePointPair) {
  Trajectory a("a", 0, {R(0, 0, 0)});
  Trajectory b("b", 0, {R(3, 4, 0)});
  EXPECT_DOUBLE_EQ(DtwDistance().Distance(a, b), 5.0);
}

TEST(DtwTest, WarpingAbsorbsStutteredSampling) {
  // The same spatial points with each point reported twice (a stalled
  // GPS): warping aligns duplicates for free, so DTW is exactly 0.
  Trajectory a = Line("a", 0, 10, 10);
  std::vector<Record> stuttered;
  for (size_t i = 0; i < 10; ++i) {
    stuttered.push_back(R(static_cast<double>(i) * 10.0, 0,
                          static_cast<Timestamp>(2 * i)));
    stuttered.push_back(R(static_cast<double>(i) * 10.0, 0,
                          static_cast<Timestamp>(2 * i + 1)));
  }
  Trajectory b("b", 0, std::move(stuttered));
  EXPECT_LT(DtwDistance().Distance(a, b), 1e-9);
}

TEST(DtwTest, HalfDensitySamplingStaysCloserThanDifferentPath) {
  // Resampling the same path at twice the density perturbs DTW far
  // less than moving to a genuinely different path.
  Trajectory a = Line("a", 0, 10, 10);
  std::vector<Record> dense;
  for (size_t i = 0; i < 19; ++i) {
    dense.push_back(R(static_cast<double>(i) * 5.0, 0,
                      static_cast<Timestamp>(i)));
  }
  Trajectory b("b", 0, std::move(dense));
  Trajectory c = Line("c", 5000, 10, 10);
  EXPECT_LT(DtwDistance().Distance(a, b), DtwDistance().Distance(a, c));
}

TEST(DtwTest, SymmetricWithoutBand) {
  Trajectory a = Line("a", 0, 10, 8);
  Trajectory b = Line("b", 5, 9, 11);
  EXPECT_NEAR(DtwDistance().Distance(a, b), DtwDistance().Distance(b, a),
              1e-9);
}

TEST(DtwTest, BandedIsAtLeastUnbanded) {
  Trajectory a = Line("a", 0, 10, 20);
  Trajectory b = Line("b", 3, 11, 20);
  double full = DtwDistance().Distance(a, b);
  double banded = DtwDistance(2).Distance(a, b);
  EXPECT_GE(banded, full - 1e-9);
}

TEST(DtwTest, EmptyIsInfinite) {
  Trajectory a = Line("a", 0, 1, 3);
  Trajectory e("e", 0, {});
  EXPECT_TRUE(std::isinf(DtwDistance().Distance(a, e)));
}

// ----------------------------------------------------------------- LCSS

TEST(LcssTest, IdenticalIsZeroDistance) {
  Trajectory a = Line("a", 0, 10, 5);
  EXPECT_DOUBLE_EQ(LcssDistance(1.0).Distance(a, a), 0.0);
}

TEST(LcssTest, DisjointIsOneDistance) {
  Trajectory a = Line("a", 0, 1, 5);
  Trajectory b = Line("b", 100000, 1, 5);
  EXPECT_DOUBLE_EQ(LcssDistance(10.0).Distance(a, b), 1.0);
}

TEST(LcssTest, PartialOverlap) {
  // 3 of 5 points within epsilon.
  Trajectory a("a", 0,
               {R(0, 0, 0), R(10, 0, 1), R(20, 0, 2), R(1000, 0, 3),
                R(2000, 0, 4)});
  Trajectory b("b", 0,
               {R(0, 1, 0), R(10, 1, 1), R(20, 1, 2), R(5000, 0, 3),
                R(7000, 0, 4)});
  EXPECT_NEAR(LcssDistance(5.0).Distance(a, b), 1.0 - 3.0 / 5.0, 1e-12);
}

TEST(LcssTest, DeltaConstrainsIndexOffset) {
  // Matching points are offset by 3 positions; delta=1 forbids the match.
  Trajectory a("a", 0, {R(0, 0, 0), R(1e6, 0, 1), R(2e6, 0, 2), R(3e6, 0, 3)});
  Trajectory b("b", 0, {R(9e6, 0, 0), R(8e6, 0, 1), R(7e6, 0, 2), R(0, 1, 3)});
  // a[0] matches b[3] spatially (offset 3).
  EXPECT_DOUBLE_EQ(LcssDistance(10.0, 1).Distance(a, b), 1.0);
  EXPECT_NEAR(LcssDistance(10.0, -1).Distance(a, b), 1.0 - 1.0 / 4.0,
              1e-12);
}

TEST(LcssTest, EmptyIsMaxDistance) {
  Trajectory a = Line("a", 0, 1, 3);
  Trajectory e("e", 0, {});
  EXPECT_DOUBLE_EQ(LcssDistance(1.0).Distance(a, e), 1.0);
}

// ------------------------------------------------------------------ EDR

TEST(EdrTest, IdenticalIsZero) {
  Trajectory a = Line("a", 0, 10, 6);
  EXPECT_DOUBLE_EQ(EdrDistance(1.0).Distance(a, a), 0.0);
}

TEST(EdrTest, CompletelyDifferentIsOne) {
  Trajectory a = Line("a", 0, 1, 4);
  Trajectory b = Line("b", 1e7, 1, 4);
  EXPECT_DOUBLE_EQ(EdrDistance(10.0).Distance(a, b), 1.0);
}

TEST(EdrTest, OneSubstitution) {
  Trajectory a("a", 0, {R(0, 0, 0), R(10, 0, 1), R(20, 0, 2)});
  Trajectory b("b", 0, {R(0, 0, 0), R(9999, 0, 1), R(20, 0, 2)});
  EXPECT_NEAR(EdrDistance(5.0).Distance(a, b), 1.0 / 3.0, 1e-12);
}

TEST(EdrTest, InsertionCost) {
  Trajectory a = Line("a", 0, 10, 4);
  Trajectory b = Line("b", 0, 10, 5);  // one extra point
  EXPECT_NEAR(EdrDistance(5.0).Distance(a, b), 1.0 / 5.0, 1e-12);
}

TEST(EdrTest, BothEmptyIsZero) {
  Trajectory e1("a", 0, {}), e2("b", 0, {});
  EXPECT_DOUBLE_EQ(EdrDistance(1.0).Distance(e1, e2), 0.0);
  Trajectory a = Line("c", 0, 1, 2);
  EXPECT_DOUBLE_EQ(EdrDistance(1.0).Distance(a, e1), 1.0);
}

// --------------------------------------------------------------- Search

TEST(SearchTest, TopKReturnsNearestFirst) {
  TrajectoryDatabase db;
  (void)db.Add(Line("far", 10000, 1, 5, 1));
  (void)db.Add(Line("near", 5, 1, 5, 2));
  (void)db.Add(Line("mid", 500, 1, 5, 3));
  Trajectory query = Line("q", 0, 1, 5, 9);
  auto hits = TopK(query, db, P2TDistance(), 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(db[hits[0].index].label(), "near");
  EXPECT_EQ(db[hits[1].index].label(), "mid");
  EXPECT_LE(hits[0].distance, hits[1].distance);
}

TEST(SearchTest, KLargerThanDb) {
  TrajectoryDatabase db;
  (void)db.Add(Line("a", 0, 1, 3, 1));
  auto hits = TopK(Line("q", 0, 1, 3), db, P2TDistance(), 10);
  EXPECT_EQ(hits.size(), 1u);
}

TEST(SearchTest, ContainsOwner) {
  TrajectoryDatabase db;
  (void)db.Add(Line("a", 0, 1, 3, 7));
  (void)db.Add(Line("b", 100, 1, 3, 8));
  std::vector<SearchHit> hits = {{0, 1.0}, {1, 2.0}};
  EXPECT_TRUE(ContainsOwner(hits, db, 7));
  EXPECT_TRUE(ContainsOwner(hits, db, 8));
  EXPECT_FALSE(ContainsOwner(hits, db, 9));
  EXPECT_FALSE(ContainsOwner({}, db, 7));
}

TEST(SearchTest, AllMeasuresRankSelfFirst) {
  // Property: a trajectory's own (noisy) copy beats unrelated ones.
  TrajectoryDatabase db;
  Trajectory self = Line("self", 0, 10, 20, 1);
  std::vector<Record> noisy;
  for (const auto& r : self.records()) {
    noisy.push_back(R(r.location.x + 1.0, r.location.y - 1.0, r.t));
  }
  (void)db.Add(Trajectory("noisy-self", 1, std::move(noisy)));
  (void)db.Add(Line("other1", 5000, 10, 20, 2));
  (void)db.Add(Line("other2", -8000, 7, 25, 3));
  P2TDistance p2t;
  DtwDistance dtw;
  LcssDistance lcss(50.0);
  EdrDistance edr(50.0);
  for (const SimilarityMeasure* m :
       std::initializer_list<const SimilarityMeasure*>{&p2t, &dtw, &lcss,
                                                       &edr}) {
    auto hits = TopK(self, db, *m, 1);
    ASSERT_EQ(hits.size(), 1u) << m->Name();
    EXPECT_EQ(db[hits[0].index].label(), "noisy-self") << m->Name();
  }
}

}  // namespace
}  // namespace ftl::baselines
