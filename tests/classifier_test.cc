#include <gtest/gtest.h>

#include <cmath>

#include "core/alpha_filter.h"
#include "core/evidence.h"
#include "core/naive_bayes.h"

namespace ftl::core {
namespace {

using traj::Record;
using traj::Timestamp;
using traj::Trajectory;

Record R(double x, double y, Timestamp t) { return Record{{x, y}, t}; }

EvidenceOptions Ev() {
  EvidenceOptions o;
  o.vmax_mps = 120.0 * 1000 / 3600;
  o.time_unit_seconds = 60;
  o.horizon_units = 10;
  return o;
}

/// Models with a clear gap: same-person incompatibility 2%, different-
/// person incompatibility 70% for every informative bucket.
ModelPair SyntheticModels() {
  ModelPair m;
  m.rejection = CompatibilityModel(60, std::vector<double>(10, 0.02));
  m.acceptance = CompatibilityModel(60, std::vector<double>(10, 0.70));
  return m;
}

// ------------------------------------------------------------- Evidence

TEST(EvidenceTest, CollectsBucketsAndBits) {
  // P at t=0 (x=0); Q at t=60 (x=0, compatible) and t=150
  // (x=1e6, incompatible vs P's t=180 record? build carefully).
  Trajectory p("p", 0, {R(0, 0, 0), R(0, 0, 180)});
  Trajectory q("q", 1, {R(0, 0, 60), R(1e6, 0, 150)});
  // Alignment: p0(0) q0(60) q1(150) p1(180).
  // Mutual: (p0,q0) gap 60 compat; (q1,p1) gap 30 distance 1e6 ->
  // incompatible.
  auto ev = CollectEvidence(p, q, Ev());
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev.total_mutual, 2);
  EXPECT_EQ(ev.units[0], 1);
  EXPECT_EQ(ev.incompatible[0], 0);
  EXPECT_EQ(ev.units[1], 1);  // 30 s rounds to unit 1? 30+30=60 /60 = 1
  EXPECT_EQ(ev.incompatible[1], 1);
  EXPECT_EQ(ev.ObservedIncompatible(), 1);
}

TEST(EvidenceTest, BeyondHorizonExcluded) {
  Trajectory p("p", 0, {R(0, 0, 0)});
  Trajectory q("q", 1, {R(0, 0, 100000)});  // gap >> horizon
  auto ev = CollectEvidence(p, q, Ev());
  EXPECT_EQ(ev.size(), 0u);
  EXPECT_EQ(ev.total_mutual, 1);
  EXPECT_EQ(ev.beyond_horizon_incompatible, 0);
}

TEST(EvidenceTest, BeyondHorizonIncompatibleTracked) {
  EvidenceOptions o = Ev();
  o.vmax_mps = 0.001;  // absurdly tight
  Trajectory p("p", 0, {R(0, 0, 0)});
  Trajectory q("q", 1, {R(1e9, 0, 100000)});
  auto ev = CollectEvidence(p, q, o);
  EXPECT_EQ(ev.beyond_horizon_incompatible, 1);
}

TEST(EvidenceTest, ProbsUnderModel) {
  MutualSegmentEvidence ev;
  ev.units = {0, 3, 9};
  ev.incompatible = {0, 1, 0};
  CompatibilityModel m(60, {0.1, 0.2, 0.3, 0.4, 0.5, 0.5, 0.5, 0.5, 0.5,
                            0.9});
  auto probs = ev.ProbsUnder(m);
  ASSERT_EQ(probs.size(), 3u);
  EXPECT_DOUBLE_EQ(probs[0], 0.1);
  EXPECT_DOUBLE_EQ(probs[1], 0.4);
  EXPECT_DOUBLE_EQ(probs[2], 0.9);
}

TEST(EvidenceTest, EmptyPairNoEvidence) {
  Trajectory p("p", 0, {});
  Trajectory q("q", 1, {R(0, 0, 0)});
  auto ev = CollectEvidence(p, q, Ev());
  EXPECT_EQ(ev.size(), 0u);
  EXPECT_EQ(ev.total_mutual, 0);
}

// ---------------------------------------------------------- AlphaFilter

MutualSegmentEvidence MakeEvidence(size_t n, size_t k_incompatible) {
  MutualSegmentEvidence ev;
  for (size_t i = 0; i < n; ++i) {
    ev.units.push_back(1);
    ev.incompatible.push_back(i < k_incompatible ? 1 : 0);
  }
  ev.total_mutual = static_cast<int64_t>(n);
  return ev;
}

TEST(AlphaFilterTest, AcceptsCleanSamePersonEvidence) {
  ModelPair models = SyntheticModels();
  AlphaFilter filter(models, {0.01, 0.05});
  // 30 informative segments, none incompatible: consistent with Mr
  // (mean 0.6), wildly below Ma (mean 21).
  auto d = filter.Classify(MakeEvidence(30, 0));
  EXPECT_TRUE(d.survived_rejection);
  EXPECT_TRUE(d.accepted);
  EXPECT_GT(d.p1, 0.5);
  EXPECT_LT(d.p2, 0.001);
  EXPECT_GT(d.Score(), 0.5);
}

TEST(AlphaFilterTest, RejectsDifferentPersonEvidence) {
  ModelPair models = SyntheticModels();
  AlphaFilter filter(models, {0.01, 0.05});
  // 30 segments, 21 incompatible: typical under Ma, impossible under Mr.
  auto d = filter.Classify(MakeEvidence(30, 21));
  EXPECT_FALSE(d.survived_rejection);
  EXPECT_FALSE(d.accepted);
  EXPECT_LT(d.p1, 1e-6);
}

TEST(AlphaFilterTest, NoEvidenceIsNotAccepted) {
  ModelPair models = SyntheticModels();
  AlphaFilter filter(models, {0.01, 0.05});
  auto d = filter.Classify(MakeEvidence(0, 0));
  EXPECT_TRUE(d.survived_rejection);  // p1 = 1
  EXPECT_FALSE(d.accepted);           // p2 = 1 >= alpha2
  EXPECT_DOUBLE_EQ(d.p1, 1.0);
  EXPECT_DOUBLE_EQ(d.p2, 1.0);
  EXPECT_DOUBLE_EQ(d.Score(), 0.0);
}

TEST(AlphaFilterTest, StricterAlpha1RejectsMore) {
  ModelPair models = SyntheticModels();
  // 30 segments, 3 incompatible: mildly suspicious under Mr.
  auto ev = MakeEvidence(30, 3);
  AlphaFilter loose(models, {1e-6, 0.05});
  AlphaFilter strict(models, {0.5, 0.05});
  EXPECT_TRUE(loose.Classify(ev).survived_rejection);
  EXPECT_FALSE(strict.Classify(ev).survived_rejection);
}

TEST(AlphaFilterTest, StricterAlpha2AcceptsFewer) {
  ModelPair models = SyntheticModels();
  // 8 segments, 2 incompatible: lower tail under Ma is moderate.
  auto ev = MakeEvidence(8, 2);
  AlphaFilter loose(models, {0.001, 0.5});
  AlphaFilter strict(models, {0.001, 1e-6});
  auto dl = loose.Classify(ev);
  auto ds = strict.Classify(ev);
  ASSERT_TRUE(dl.survived_rejection);
  EXPECT_TRUE(dl.accepted);
  EXPECT_FALSE(ds.accepted);
}

TEST(AlphaFilterTest, ClassifyFromTrajectories) {
  ModelPair models = SyntheticModels();
  AlphaFilter filter(models, {0.01, 0.5});
  // Co-located interleaved records: all compatible.
  std::vector<Record> pr, qr;
  for (int i = 0; i < 20; ++i) {
    pr.push_back(R(0, 0, i * 120));
    qr.push_back(R(10, 0, i * 120 + 60));
  }
  Trajectory p("p", 0, std::move(pr));
  Trajectory q("q", 0, std::move(qr));
  auto d = filter.Classify(p, q, Ev());
  EXPECT_TRUE(d.accepted);
  EXPECT_EQ(d.k_observed, 0);
  EXPECT_GE(d.n_segments, 30u);
}

// ----------------------------------------------------------- NaiveBayes

TEST(NaiveBayesTest, CleanEvidenceIsSamePerson) {
  ModelPair models = SyntheticModels();
  NaiveBayesMatcher nb(models, {0.01, 1e-6});
  auto d = nb.Classify(MakeEvidence(30, 0));
  EXPECT_TRUE(d.same_person);
  EXPECT_GT(d.LogOdds(), 0.0);
}

TEST(NaiveBayesTest, DirtyEvidenceIsDifferentPerson) {
  ModelPair models = SyntheticModels();
  NaiveBayesMatcher nb(models, {0.5, 1e-6});
  auto d = nb.Classify(MakeEvidence(30, 21));
  EXPECT_FALSE(d.same_person);
  EXPECT_LT(d.LogOdds(), 0.0);
}

TEST(NaiveBayesTest, PriorActsAsStrictnessKnob) {
  ModelPair models = SyntheticModels();
  // Borderline evidence: 10 segments, 2 incompatible.
  auto ev = MakeEvidence(10, 2);
  NaiveBayesMatcher loose(models, {0.49, 1e-6});
  NaiveBayesMatcher strict(models, {1e-9, 1e-6});
  EXPECT_TRUE(loose.Classify(ev).same_person);
  EXPECT_FALSE(strict.Classify(ev).same_person);
}

TEST(NaiveBayesTest, NoEvidencePriorDecides) {
  ModelPair models = SyntheticModels();
  auto ev = MakeEvidence(0, 0);
  NaiveBayesMatcher tiny(models, {0.01, 1e-6});
  EXPECT_FALSE(tiny.Classify(ev).same_person);
  NaiveBayesMatcher big(models, {0.99, 1e-6});
  EXPECT_TRUE(big.Classify(ev).same_person);
}

TEST(NaiveBayesTest, ProbFloorPreventsInfiniteLogs) {
  ModelPair m;
  m.rejection = CompatibilityModel(60, std::vector<double>(10, 0.0));
  m.acceptance = CompatibilityModel(60, std::vector<double>(10, 1.0));
  NaiveBayesMatcher nb(m, {0.5, 1e-6});
  auto ev = MakeEvidence(5, 2);  // impossible under both extremes
  auto d = nb.Classify(ev);
  EXPECT_TRUE(std::isfinite(d.log_post_same));
  EXPECT_TRUE(std::isfinite(d.log_post_diff));
}

TEST(NaiveBayesTest, LogOddsMonotoneInIncompatibleCount) {
  ModelPair models = SyntheticModels();
  NaiveBayesMatcher nb(models, {0.5, 1e-6});
  double prev = nb.Classify(MakeEvidence(20, 0)).LogOdds();
  for (size_t k = 1; k <= 20; ++k) {
    double cur = nb.Classify(MakeEvidence(20, k)).LogOdds();
    EXPECT_LT(cur, prev) << "k=" << k;
    prev = cur;
  }
}

// Parameterized sweep: the alpha filter decision respects the
// theoretical p-value thresholds for all (n, k).
class AlphaFilterSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AlphaFilterSweep, DecisionMatchesPValues) {
  auto [n, k] = GetParam();
  if (k > n) GTEST_SKIP();
  ModelPair models = SyntheticModels();
  AlphaFilterParams params{0.01, 0.05};
  AlphaFilter filter(models, params);
  auto ev = MakeEvidence(static_cast<size_t>(n), static_cast<size_t>(k));
  auto d = filter.Classify(ev);
  EXPECT_EQ(d.survived_rejection, d.p1 >= params.alpha1);
  if (d.survived_rejection) {
    EXPECT_EQ(d.accepted, d.p2 < params.alpha2);
  } else {
    EXPECT_FALSE(d.accepted);
  }
  EXPECT_GE(d.p1, 0.0);
  EXPECT_LE(d.p1, 1.0);
  EXPECT_GE(d.p2, 0.0);
  EXPECT_LE(d.p2, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AlphaFilterSweep,
    ::testing::Combine(::testing::Values(1, 5, 10, 25, 50),
                       ::testing::Values(0, 1, 3, 10, 25, 50)));

}  // namespace
}  // namespace ftl::core
