#include "obs/metrics.h"

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace ftl::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  // The registry is process-global; start each test from zeroed values
  // so assertions are independent of test order.
  void SetUp() override { MetricsRegistry::Global().ResetAllForTest(); }
};

TEST_F(ObsTest, CounterBasics) {
  Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42);
  c.Reset();
  EXPECT_EQ(c.Value(), 0);
}

TEST_F(ObsTest, CounterConcurrentAddsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int64_t kAddsPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int64_t i = 0; i < kAddsPerThread; ++i) c.Add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.Value(), kThreads * kAddsPerThread);
}

TEST_F(ObsTest, GaugeBasics) {
  Gauge g;
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Add(3);
  g.Sub(10);
  EXPECT_EQ(g.Value(), 0);
  g.Sub();
  EXPECT_EQ(g.Value(), -1);  // gauges may go negative transiently
}

TEST_F(ObsTest, HistogramCountSumMean) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  h.Record(0);
  h.Record(10);
  h.Record(20);
  EXPECT_EQ(h.Count(), 3);
  EXPECT_EQ(h.Sum(), 30);
  EXPECT_DOUBLE_EQ(h.Mean(), 10.0);
}

TEST_F(ObsTest, HistogramNegativeClampsToZeroBucket) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.Count(), 1);
  EXPECT_EQ(h.Sum(), 0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 0.0);
}

TEST_F(ObsTest, HistogramQuantileWithinBucketResolution) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Record(1000);  // bucket [512, 1024)
  double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 512.0);
  EXPECT_LE(p50, 1024.0);
  // All mass in one bucket: every quantile lands in its range.
  EXPECT_GE(h.Quantile(0.01), 512.0);
  EXPECT_LE(h.Quantile(0.99), 1024.0);
}

TEST_F(ObsTest, HistogramQuantileOrdersAcrossBuckets) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.Record(100);     // ~[64, 128)
  for (int i = 0; i < 10; ++i) h.Record(100000);  // ~[65536, 131072)
  EXPECT_LT(h.Quantile(0.5), 128.0 + 1);
  EXPECT_GT(h.Quantile(0.95), 65536.0 - 1);
  EXPECT_LE(h.Quantile(0.0), h.Quantile(1.0));
}

TEST_F(ObsTest, HistogramConcurrentRecordsKeepCountAndSum) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int64_t i = 0; i < kPerThread; ++i) h.Record(3);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.Count(), kThreads * kPerThread);
  EXPECT_EQ(h.Sum(), 3 * kThreads * kPerThread);
}

TEST_F(ObsTest, RegistryReturnsStableHandles) {
  auto& reg = MetricsRegistry::Global();
  Counter& a = reg.GetCounter("obs_test_stable_total");
  Counter& b = reg.GetCounter("obs_test_stable_total");
  EXPECT_EQ(&a, &b);
  a.Add(5);
  EXPECT_EQ(b.Value(), 5);
  Histogram& h1 = reg.GetHistogram("obs_test_stable_ns");
  Histogram& h2 = reg.GetHistogram("obs_test_stable_ns");
  EXPECT_EQ(&h1, &h2);
}

TEST_F(ObsTest, RegistryResetZeroesWithoutInvalidatingHandles) {
  auto& reg = MetricsRegistry::Global();
  Counter& c = reg.GetCounter("obs_test_reset_total");
  c.Add(9);
  reg.ResetAllForTest();
  EXPECT_EQ(c.Value(), 0);
  c.Add(1);  // handle still live
  EXPECT_EQ(reg.GetCounter("obs_test_reset_total").Value(), 1);
}

TEST_F(ObsTest, PrometheusDumpFormat) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("obs_test_prom_total").Add(3);
  reg.GetCounter("obs_test_prom_total{kind=\"labeled\"}").Add(2);
  reg.GetGauge("obs_test_prom_depth").Set(4);
  Histogram& h = reg.GetHistogram("obs_test_prom_ns");
  h.Record(100);
  h.Record(100000);
  std::string dump = reg.DumpPrometheus();
  EXPECT_NE(dump.find("# TYPE obs_test_prom_total counter\n"),
            std::string::npos);
  EXPECT_NE(dump.find("obs_test_prom_total 3\n"), std::string::npos);
  EXPECT_NE(dump.find("obs_test_prom_total{kind=\"labeled\"} 2\n"),
            std::string::npos);
  EXPECT_NE(dump.find("obs_test_prom_depth 4\n"), std::string::npos);
  EXPECT_NE(dump.find("# TYPE obs_test_prom_ns histogram\n"),
            std::string::npos);
  EXPECT_NE(dump.find("obs_test_prom_ns_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(dump.find("obs_test_prom_ns_sum 100100\n"), std::string::npos);
  EXPECT_NE(dump.find("obs_test_prom_ns_count 2\n"), std::string::npos);
  // One TYPE line per family, even with labeled variants present.
  size_t first = dump.find("# TYPE obs_test_prom_total counter");
  EXPECT_EQ(dump.find("# TYPE obs_test_prom_total counter", first + 1),
            std::string::npos);
}

TEST_F(ObsTest, PrometheusHistogramBucketsAreCumulative) {
  auto& reg = MetricsRegistry::Global();
  Histogram& h = reg.GetHistogram("obs_test_cumulative_ns");
  h.Record(1);   // bucket le="1"
  h.Record(2);   // bucket le="3"
  h.Record(3);   // bucket le="3"
  std::string dump = reg.DumpPrometheus();
  EXPECT_NE(dump.find("obs_test_cumulative_ns_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(dump.find("obs_test_cumulative_ns_bucket{le=\"3\"} 3\n"),
            std::string::npos);
}

TEST_F(ObsTest, JsonDumpParsesShape) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("obs_test_json_total").Add(11);
  reg.GetHistogram("obs_test_json_ns").Record(64);
  std::string dump = reg.DumpJson();
  EXPECT_NE(dump.find("\"counters\""), std::string::npos);
  EXPECT_NE(dump.find("\"gauges\""), std::string::npos);
  EXPECT_NE(dump.find("\"histograms\""), std::string::npos);
  EXPECT_NE(dump.find("\"obs_test_json_total\": 11"), std::string::npos);
  EXPECT_NE(dump.find("\"count\": 1"), std::string::npos);
  // Balanced braces is a cheap structural sanity check (the CI smoke
  // step runs a real JSON parser over the CLI's --metrics-out file).
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < dump.size(); ++i) {
    char ch = dump[i];
    if (ch == '"' && (i == 0 || dump[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(ObsTest, GlobalDumpHelpersMatchRegistry) {
  MetricsRegistry::Global().GetCounter("obs_test_helper_total").Add(1);
  EXPECT_EQ(DumpPrometheus(), MetricsRegistry::Global().DumpPrometheus());
  EXPECT_EQ(DumpJson(), MetricsRegistry::Global().DumpJson());
}

TEST_F(ObsTest, BucketUpperBoundsAreMonotone) {
  int64_t prev = -1;
  for (size_t b = 0; b < Histogram::kBuckets; ++b) {
    int64_t ub = Histogram::BucketUpperBound(b);
    EXPECT_GT(ub, prev - (b == 0 ? 1 : 0));
    EXPECT_GE(ub, prev);
    prev = ub;
  }
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023);
}

}  // namespace
}  // namespace ftl::obs
