#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "io/geojson.h"

namespace ftl::io {
namespace {

using traj::Record;
using traj::Trajectory;
using traj::TrajectoryDatabase;

Record R(double x, double y, traj::Timestamp t) { return Record{{x, y}, t}; }

TrajectoryDatabase Db() {
  TrajectoryDatabase db("g");
  (void)db.Add(Trajectory("alpha", 1, {R(100, 200, 0), R(300, 400, 10)}));
  (void)db.Add(Trajectory("beta", traj::kUnknownOwner, {R(-5, 7.5, 3)}));
  return db;
}

TEST(GeoJsonTest, StructureAndProperties) {
  std::string gj = ToGeoJson(Db());
  EXPECT_NE(gj.find("\"type\":\"FeatureCollection\""), std::string::npos);
  EXPECT_NE(gj.find("\"label\":\"alpha\""), std::string::npos);
  EXPECT_NE(gj.find("\"owner\":1"), std::string::npos);
  EXPECT_NE(gj.find("\"owner\":null"), std::string::npos);
  EXPECT_NE(gj.find("\"records\":2"), std::string::npos);
  EXPECT_NE(gj.find("LineString"), std::string::npos);
}

TEST(GeoJsonTest, PlanarCoordinatesEmitted) {
  std::string gj = ToGeoJson(Db());
  EXPECT_NE(gj.find("[100.000000,200.000000]"), std::string::npos);
  EXPECT_NE(gj.find("[-5.000000,7.500000]"), std::string::npos);
}

TEST(GeoJsonTest, ProjectionConvertsToLonLat) {
  geo::LocalProjection proj(geo::LatLon{1.35, 103.82});
  std::string gj = ToGeoJson(Db(), proj);
  // All coordinates should be near the anchor lon/lat, i.e. ~103.82 /
  // ~1.35, not in the hundreds.
  EXPECT_NE(gj.find("103.82"), std::string::npos);
  EXPECT_EQ(gj.find("[100.000000,200.000000]"), std::string::npos);
}

TEST(GeoJsonTest, EscapesSpecialCharactersInLabels) {
  TrajectoryDatabase db;
  (void)db.Add(Trajectory("we\"ird\\label", 1, {R(0, 0, 0)}));
  std::string gj = ToGeoJson(db);
  EXPECT_NE(gj.find("we\\\"ird\\\\label"), std::string::npos);
}

TEST(GeoJsonTest, EmptyDatabase) {
  TrajectoryDatabase db;
  std::string gj = ToGeoJson(db);
  EXPECT_EQ(gj, "{\"type\":\"FeatureCollection\",\"features\":[]}");
}

TEST(GeoJsonTest, WriteToFile) {
  auto path = (std::filesystem::temp_directory_path() / "ftl_gj_test.json")
                  .string();
  ASSERT_TRUE(WriteGeoJson(Db(), path).ok());
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("FeatureCollection"), std::string::npos);
  std::remove(path.c_str());
}

TEST(GeoJsonTest, WriteToBadPathFails) {
  EXPECT_FALSE(WriteGeoJson(Db(), "/nonexistent/dir/x.json").ok());
}

}  // namespace
}  // namespace ftl::io
