// libFuzzer harness for the WAL framing layer: WalValidPrefix, ScanWal
// and DecodeBatch must treat arbitrary bytes as (at worst) a torn tail
// — no out-of-bounds reads, no unbounded allocation, no crash — and
// the frames they do accept must round-trip byte-identically.
//
// Built as a real -fsanitize=fuzzer binary under Clang
// (-DFTL_ENABLE_FUZZERS=ON); under other compilers the standalone
// driver in fuzz_driver_main.cc replays the seed corpus plus
// single-byte mutations, which is what the ctest smoke entry runs.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "store/wal.h"
#include "util/status.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view in(reinterpret_cast<const char*>(data), size);

  // The valid prefix and a scan over the same bytes must agree.
  const size_t prefix = ftl::store::WalValidPrefix(in);
  if (prefix > size) __builtin_trap();
  ftl::store::WalReplayStats stats;
  ftl::Status st = ftl::store::ScanWal(
      in,
      [](uint64_t seqno, std::string_view payload) {
        if (seqno == 0) __builtin_trap();  // seqnos start at 1
        auto batch = ftl::store::DecodeBatch(payload);
        if (batch.ok() &&
            ftl::store::EncodeBatch(batch.value()) != payload) {
          __builtin_trap();  // accepted payloads must round-trip exactly
        }
        return ftl::Status::OK();
      },
      &stats);
  if (!st.ok()) __builtin_trap();  // an OK visitor never fails the scan
  if (stats.bytes != prefix) __builtin_trap();
  if (stats.bytes + stats.torn_bytes_dropped != size) __builtin_trap();

  // The payload decoder is also reachable with unframed bytes (a CRC
  // collision, or a fuzzer driving it directly): same hardening bar.
  auto batch = ftl::store::DecodeBatch(in);
  if (batch.ok() &&
      ftl::store::EncodeBatch(batch.value()) != in) {
    __builtin_trap();
  }
  return 0;
}
