// libFuzzer harness for io::ParseJson, the parser behind every serve
// request body (/v1/query, /v1/rank, /v1/ingest): arbitrary bytes must
// produce a Status or a value — never a crash, hang, or OOB access.
// See wal_fuzz.cc for how the harness is built and driven.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "io/json_parse.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string in(reinterpret_cast<const char*>(data), size);
  auto parsed = ftl::io::ParseJson(in);
  if (parsed.ok()) {
    // Walk the tree so lazily-materialized accessors run under the
    // sanitizers too.
    std::function<void(const ftl::io::JsonValue&)> walk =
        [&](const ftl::io::JsonValue& v) {
          if (v.is_number()) (void)v.AsDouble();
          if (v.is_string()) (void)v.AsString();
          if (v.is_array()) {
            for (const auto& e : v.items()) walk(e);
          }
          if (v.is_object()) {
            for (const auto& [k, e] : v.members()) {
              (void)k;
              walk(e);
            }
          }
        };
    walk(parsed.value());
  }
  return 0;
}
