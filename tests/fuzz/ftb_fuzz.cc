// libFuzzer harness for the FTB columnar reader: arbitrary bytes on
// disk must be either a valid database or a clean error — no
// out-of-bounds reads through the mmap, no unbounded allocation from
// forged section lengths, no crash — and the mmap and heap load paths
// must agree byte-for-byte on what they accept.
//
// Built as a real -fsanitize=fuzzer binary under Clang
// (-DFTL_ENABLE_FUZZERS=ON); under other compilers the standalone
// driver in fuzz_driver_main.cc replays the seed corpus plus
// single-byte mutations, which is what the ctest smoke entry runs.

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>

#include "io/ftb.h"
#include "traj/flat_database.h"

namespace {

/// One scratch file per process, overwritten on every input: ReadFtb
/// only speaks paths, so the fuzz bytes take a trip through disk.
const std::string& ScratchPath() {
  static const std::string path =
      (std::filesystem::temp_directory_path() /
       ("ftl_ftb_fuzz." + std::to_string(static_cast<long long>(::getpid())) +
        ".ftb"))
          .string();
  return path;
}

bool SameDatabase(const ftl::traj::FlatDatabase& a,
                  const ftl::traj::FlatDatabase& b) {
  if (a.size() != b.size() || a.TotalRecords() != b.TotalRecords()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].label() != b[i].label() || a[i].size() != b[i].size()) {
      return false;
    }
  }
  return true;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  {
    std::FILE* f = std::fopen(ScratchPath().c_str(), "wb");
    if (f == nullptr) return 0;
    if (size > 0 && std::fwrite(data, 1, size, f) != size) {
      std::fclose(f);
      return 0;
    }
    std::fclose(f);
  }

  ftl::io::FtbReadOptions mmap_opts;
  mmap_opts.prefer_mmap = true;
  ftl::io::FtbReadOptions heap_opts;
  heap_opts.prefer_mmap = false;

  auto via_mmap = ftl::io::ReadFtb(ScratchPath(), mmap_opts);
  auto via_heap = ftl::io::ReadFtb(ScratchPath(), heap_opts);

  // The two load paths validate the same bytes: they must agree on
  // accept/reject, and on the database they accept.
  if (via_mmap.ok() != via_heap.ok()) __builtin_trap();
  if (via_mmap.ok() && !SameDatabase(via_mmap.value(), via_heap.value())) {
    __builtin_trap();
  }

  // Skipping the CRC pass relaxes corruption *detection*, never memory
  // safety: structural validation still rejects anything whose offsets
  // or lengths leave the file. A database accepted with checksums on
  // must also load with them off.
  ftl::io::FtbReadOptions no_crc;
  no_crc.verify_checksums = false;
  auto relaxed = ftl::io::ReadFtb(ScratchPath(), no_crc);
  if (via_mmap.ok() && !relaxed.ok()) __builtin_trap();
  if (via_mmap.ok() && !SameDatabase(via_mmap.value(), relaxed.value())) {
    __builtin_trap();
  }
  return 0;
}
