// libFuzzer harness for the CSV reader: arbitrary text must parse to a
// database or fail with a clean Status in strict mode — no crash, no
// runaway allocation — while lenient mode additionally promises to
// never fail after the header: malformed rows land in the quarantine
// report instead. Whatever strict mode accepts must round-trip through
// the writer byte-identically.
//
// Built as a real -fsanitize=fuzzer binary under Clang
// (-DFTL_ENABLE_FUZZERS=ON); under other compilers the standalone
// driver in fuzz_driver_main.cc replays the seed corpus plus
// single-byte mutations, which is what the ctest smoke entry runs.

#include <cstddef>
#include <cstdint>
#include <string>

#include "io/csv.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string in(reinterpret_cast<const char*>(data), size);

  auto strict = ftl::io::FromCsvString(in, "fuzz");

  ftl::io::CsvReadOptions lenient_opts;
  lenient_opts.lenient = true;
  ftl::io::QuarantineReport report;
  auto lenient =
      ftl::io::FromCsvString(in, "fuzz", lenient_opts, &report);

  if (strict.ok()) {
    // Anything strict accepts, lenient must too — its filters only
    // tighten value ranges, and strict-valid inputs inside those
    // ranges parse to a subset of the same rows.
    if (!lenient.ok()) __builtin_trap();
    if (lenient.value().TotalRecords() + report.rows_quarantined !=
        strict.value().TotalRecords()) {
      __builtin_trap();
    }
    // Round trip: serialize and re-parse must reproduce the database
    // (and the serialized form must be a fixed point).
    std::string first = ftl::io::ToCsvString(strict.value());
    auto again = ftl::io::FromCsvString(first, "fuzz");
    if (!again.ok()) __builtin_trap();
    if (ftl::io::ToCsvString(again.value()) != first) __builtin_trap();
    if (again.value().size() != strict.value().size() ||
        again.value().TotalRecords() != strict.value().TotalRecords()) {
      __builtin_trap();
    }
  }
  return 0;
}
