// Standalone corpus driver for the fuzz harnesses, used when the
// toolchain has no libFuzzer (the local GCC build): replays every file
// under the directories/files given on the command line through
// LLVMFuzzerTestOneInput, then replays deterministic single-byte-flip
// and truncation mutants of each seed. This is a smoke test, not a
// fuzzer — CI's clang job runs the real -fsanitize=fuzzer binary.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

void RunOne(const std::string& bytes) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    fs::path p(argv[i]);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& e : fs::recursive_directory_iterator(p)) {
        if (e.is_regular_file()) files.push_back(e.path().string());
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p.string());
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "usage: %s <corpus-dir-or-file>...\n", argv[0]);
    return 1;
  }

  size_t runs = 0;
  for (const std::string& f : files) {
    std::ifstream in(f, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)), {});
    RunOne(bytes);
    ++runs;
    if (bytes.size() > 4096) continue;  // keep mutants cheap
    for (size_t i = 0; i < bytes.size(); ++i) {
      std::string flipped = bytes;
      flipped[i] = static_cast<char>(flipped[i] ^ 0xff);
      RunOne(flipped);
      ++runs;
    }
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      RunOne(bytes.substr(0, cut));
      ++runs;
    }
  }
  std::printf("replayed %zu input(s) from %zu seed file(s)\n", runs,
              files.size());
  return 0;
}
