#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "core/blocking.h"
#include "core/engine.h"
#include "sim/population_sim.h"
#include "traj/flat_database.h"

namespace ftl::core {
namespace {

using traj::Record;
using traj::Trajectory;
using traj::TrajectoryDatabase;

Record R(double x, double y, traj::Timestamp t) { return Record{{x, y}, t}; }

Trajectory T(const std::string& label, traj::OwnerId owner,
             std::vector<Record> recs) {
  return Trajectory(label, owner, std::move(recs));
}

BlockingOptions NoSlack() {
  BlockingOptions o;
  o.temporal_slack_seconds = 0;
  return o;
}

TEST(BlockingTest, TemporalDisjointPruned) {
  TrajectoryDatabase db;
  (void)db.Add(T("early", 1, {R(0, 0, 0), R(0, 0, 100)}));
  (void)db.Add(T("late", 2, {R(0, 0, 100000), R(0, 0, 100100)}));
  BlockingOptions o = NoSlack();
  o.use_spatial = false;
  BlockingIndex index(db, o);
  Trajectory query = T("q", 9, {R(0, 0, 50), R(0, 0, 80)});
  auto cands = index.Candidates(query);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(db[cands[0]].label(), "early");
}

TEST(BlockingTest, TemporalSlackExtendsWindow) {
  TrajectoryDatabase db;
  (void)db.Add(T("near", 1, {R(0, 0, 2000), R(0, 0, 2100)}));
  BlockingOptions o;
  o.use_spatial = false;
  o.temporal_slack_seconds = 0;
  BlockingIndex tight(db, o);
  o.temporal_slack_seconds = 5000;
  BlockingIndex loose(db, o);
  Trajectory query = T("q", 9, {R(0, 0, 0), R(0, 0, 100)});
  EXPECT_TRUE(tight.Candidates(query).empty());
  EXPECT_EQ(loose.Candidates(query).size(), 1u);
}

TEST(BlockingTest, SpatialSharedCellRequired) {
  TrajectoryDatabase db;
  (void)db.Add(T("here", 1, {R(100, 100, 0), R(200, 200, 50)}));
  (void)db.Add(T("far", 2, {R(90000, 90000, 0), R(90100, 90100, 50)}));
  BlockingOptions o = NoSlack();
  o.use_temporal = false;
  o.cell_size_meters = 1000.0;
  o.neighborhood = 1;
  BlockingIndex index(db, o);
  Trajectory query = T("q", 9, {R(150, 150, 25)});
  auto cands = index.Candidates(query);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(db[cands[0]].label(), "here");
}

TEST(BlockingTest, NeighborhoodAbsorbsCellBoundary) {
  // Query at the very edge of a cell; candidate just across the border.
  TrajectoryDatabase db;
  (void)db.Add(T("across", 1, {R(1001, 0, 0)}));
  BlockingOptions o = NoSlack();
  o.use_temporal = false;
  o.cell_size_meters = 1000.0;
  o.neighborhood = 0;
  BlockingIndex strict(db, o);
  o.neighborhood = 1;
  BlockingIndex relaxed(db, o);
  Trajectory query = T("q", 9, {R(999, 0, 0)});
  EXPECT_TRUE(strict.Candidates(query).empty());
  EXPECT_EQ(relaxed.Candidates(query).size(), 1u);
}

TEST(BlockingTest, MinSharedCellsFilters) {
  TrajectoryDatabase db;
  // Candidate visits two cells of the query's footprint.
  (void)db.Add(T("two-cells", 1, {R(500, 500, 0), R(5500, 5500, 50)}));
  // Candidate visits only one.
  (void)db.Add(T("one-cell", 2, {R(500, 500, 0)}));
  BlockingOptions o = NoSlack();
  o.use_temporal = false;
  o.cell_size_meters = 1000.0;
  o.neighborhood = 0;
  o.min_shared_cells = 2;
  BlockingIndex index(db, o);
  Trajectory query = T("q", 9, {R(400, 400, 10), R(5600, 5600, 60)});
  auto cands = index.Candidates(query);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(db[cands[0]].label(), "two-cells");
}

TEST(BlockingTest, EmptyQueryNoCandidates) {
  TrajectoryDatabase db;
  (void)db.Add(T("a", 1, {R(0, 0, 0)}));
  BlockingIndex index(db, {});
  EXPECT_TRUE(index.Candidates(T("q", 9, {})).empty());
}

TEST(BlockingTest, EmptyCandidatesNeverReturned) {
  TrajectoryDatabase db;
  (void)db.Add(T("empty", 1, {}));
  (void)db.Add(T("full", 2, {R(0, 0, 0), R(0, 0, 100)}));
  BlockingIndex index(db, {});
  auto cands = index.Candidates(T("q", 9, {R(10, 10, 50)}));
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(db[cands[0]].label(), "full");
}

TEST(BlockingTest, HighRecallOnPopulation) {
  // Property: on paired data from *localized* movers (each person stays
  // in their own neighbourhood of a large city), spatial blocking keeps
  // nearly every true match while pruning a large share of candidates.
  sim::PopulationOptions po;
  po.num_persons = 120;
  po.duration_days = 7;
  po.cdr_accesses_per_day = 15.0;
  po.transit_accesses_per_day = 10.0;
  po.city = sim::BeijingLike();
  po.city.hotspots.clear();       // no shared attractors
  po.waypoints.hotspot_prob = 0.0;
  po.waypoints.trip_scale_meters = 2500.0;  // stay local
  po.waypoints.long_trip_prob = 0.0;
  po.seed = 404;
  auto data = sim::SimulatePopulation(po);
  BlockingOptions o;
  o.cell_size_meters = 4000.0;
  o.neighborhood = 1;
  BlockingIndex index(data.transit_db, o);

  size_t kept_true = 0, total = 0, candidate_sum = 0;
  for (const auto& query : data.cdr_db) {
    if (query.size() < 2) continue;
    ++total;
    auto cands = index.Candidates(query);
    candidate_sum += cands.size();
    for (size_t ci : cands) {
      if (data.transit_db[ci].owner() == query.owner()) {
        ++kept_true;
        break;
      }
    }
  }
  ASSERT_GT(total, 100u);
  double recall = static_cast<double>(kept_true) /
                  static_cast<double>(total);
  double reduction = static_cast<double>(candidate_sum) /
                     (static_cast<double>(total) *
                      static_cast<double>(data.transit_db.size()));
  EXPECT_GT(recall, 0.97);
  EXPECT_LT(reduction, 0.9);
}

TEST(BlockingTest, QueryWithCandidatesMatchesFullQueryOnSurvivors) {
  sim::PopulationOptions po;
  po.num_persons = 40;
  po.duration_days = 5;
  po.cdr_accesses_per_day = 20.0;
  po.transit_accesses_per_day = 20.0;
  po.seed = 405;
  auto data = sim::SimulatePopulation(po);
  EngineOptions eo;
  eo.training.horizon_units = 30;
  FtlEngine engine(eo);
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());

  BlockingIndex index(data.transit_db, {});
  const auto& query = data.cdr_db[3];
  auto survivors = index.Candidates(query);
  auto full = engine.Query(query, data.transit_db, Matcher::kNaiveBayes);
  auto blocked = engine.QueryWithCandidates(query, data.transit_db,
                                            survivors,
                                            Matcher::kNaiveBayes);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(blocked.ok());
  // Every blocked result must appear in the full results (blocking can
  // only remove candidates).
  for (const auto& c : blocked.value().candidates) {
    bool found = false;
    for (const auto& f : full.value().candidates) {
      if (f.index == c.index) found = true;
    }
    EXPECT_TRUE(found);
  }
}

/// Owned columns for hand-built FlatDatabases (no sortedness
/// validation — the vector for the unsorted-span regression).
struct OwnedColumns {
  std::vector<uint64_t> record_offsets;
  std::vector<uint64_t> owners;
  std::vector<uint64_t> label_offsets;
  std::string label_pool;
  std::vector<int64_t> ts;
  std::vector<double> xs;
  std::vector<double> ys;
};

traj::FlatDatabase FlatFromRows(
    const std::vector<std::pair<std::string,
                                std::vector<Record>>>& rows) {
  auto oc = std::make_shared<OwnedColumns>();
  oc->record_offsets.push_back(0);
  oc->label_offsets.push_back(0);
  for (size_t i = 0; i < rows.size(); ++i) {
    for (const Record& r : rows[i].second) {
      oc->ts.push_back(r.t);
      oc->xs.push_back(r.location.x);
      oc->ys.push_back(r.location.y);
    }
    oc->record_offsets.push_back(oc->ts.size());
    oc->owners.push_back(i + 1);
    oc->label_pool += rows[i].first;
    oc->label_offsets.push_back(oc->label_pool.size());
  }
  traj::FlatDatabase::Columns c;
  c.record_offsets = oc->record_offsets.data();
  c.owners = oc->owners.data();
  c.label_offsets = oc->label_offsets.data();
  c.label_pool = oc->label_pool.data();
  c.ts = oc->ts.data();
  c.xs = oc->xs.data();
  c.ys = oc->ys.data();
  c.num_trajectories = rows.size();
  c.num_records = oc->ts.size();
  c.label_pool_size = oc->label_pool.size();
  return traj::FlatDatabase::FromColumns(c, oc, "handmade");
}

TEST(BlockingTest, UnsortedInputSpansComputedAsMinMax) {
  // Regression: the index must not trust first/last records as the
  // span. This candidate's rows arrive newest-first; trusting
  // front()/back() yields the inverted span [100000, 50] and a query
  // inside the true span would be pruned.
  traj::FlatDatabase db = FlatFromRows(
      {{"unsorted", {R(0, 0, 100000), R(0, 0, 50)}}});
  BlockingOptions o;
  o.use_spatial = false;
  o.temporal_slack_seconds = 0;
  BlockingIndex index(db, o);
  // Query strictly inside [50, 100000] but far from both endpoints.
  traj::FlatDatabase qdb = FlatFromRows({{"q", {R(0, 0, 40000)}}});
  auto mid = index.Candidates(qdb[0]);
  ASSERT_EQ(mid.size(), 1u);
  EXPECT_EQ(mid[0], 0u);
  // And outside the true span it is still pruned.
  traj::FlatDatabase qout = FlatFromRows({{"q2", {R(0, 0, 200000)}}});
  EXPECT_TRUE(index.Candidates(qout[0]).empty());
}

TEST(BlockingTest, ExtremeCoordinatesDoNotOverflow) {
  // Cell coordinates saturate instead of overflowing int32 (UB in the
  // old code): huge/non-finite positions index and query safely.
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  TrajectoryDatabase db;
  (void)db.Add(T("huge", 1, {R(1e308, -1e308, 0)}));
  (void)db.Add(T("inf", 2, {R(inf, -inf, 10)}));
  (void)db.Add(T("nan", 3, {R(nan, nan, 20)}));
  (void)db.Add(T("near", 4, {R(100, 100, 30)}));
  BlockingOptions o = NoSlack();
  o.use_temporal = false;
  o.cell_size_meters = 0.001;  // tiny cells amplify the coordinates
  o.neighborhood = 1;
  BlockingIndex index(db, o);
  // A normal-area query must not pick up the saturated candidates.
  auto near = index.Candidates(T("q", 9, {R(100, 100, 0)}));
  ASSERT_EQ(near.size(), 1u);
  EXPECT_EQ(db[near[0]].label(), "near");
  // A saturated query lands in the same clamped cells as the
  // saturated candidates — no crash, deterministic result.
  auto far = index.Candidates(T("q2", 9, {R(1e308, -1e308, 0)}));
  EXPECT_FALSE(far.empty());
}

TEST(BlockingTest, ValidateRejectsBadOptions) {
  EXPECT_TRUE(BlockingOptions{}.Validate().ok());
  BlockingOptions o;
  o.cell_size_meters = 0.0;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  o.cell_size_meters = -5.0;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  o.cell_size_meters = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  o.cell_size_meters = std::numeric_limits<double>::infinity();
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  o = BlockingOptions{};
  o.temporal_slack_seconds = -1;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  o = BlockingOptions{};
  o.time_bucket_seconds = 0;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  o = BlockingOptions{};
  o.neighborhood = -1;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  o.neighborhood = 17;
  EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(BlockingTest, ParseBlockingModeRoundTrips) {
  for (BlockingMode m : {BlockingMode::kOff, BlockingMode::kGuaranteed,
                         BlockingMode::kAggressive}) {
    auto parsed = ParseBlockingMode(BlockingModeName(m));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), m);
  }
  EXPECT_EQ(ParseBlockingMode("bogus").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BlockingTest, CallerOwnedScratchReusableAcrossIndices) {
  // One scratch serving two indices of different sizes (the
  // thread_local pinning bug made this pattern return stale results).
  TrajectoryDatabase small;
  (void)small.Add(T("s0", 1, {R(0, 0, 0), R(0, 0, 100)}));
  TrajectoryDatabase big;
  for (int i = 0; i < 50; ++i) {
    (void)big.Add(T("b" + std::to_string(i), 100 + i,
                    {R(i * 10.0, 0, i * 10), R(i * 10.0, 0, i * 10 + 5)}));
  }
  BlockingOptions o;
  BlockingIndex small_index(small, o);
  BlockingIndex big_index(big, o);
  BlockingScratch scratch;
  Trajectory query = T("q", 9, {R(0, 0, 50)});
  for (int round = 0; round < 3; ++round) {
    std::vector<size_t> out;
    small_index.Candidates(query, &scratch, &out);
    EXPECT_EQ(out, small_index.Candidates(query));
    big_index.Candidates(query, &scratch, &out);
    EXPECT_EQ(out, big_index.Candidates(query));
  }
}

TEST(BlockingTest, NegativeCoordinatesStraddleCellZero) {
  // Floor-division grid: (-1, -1) is in cell (-1, -1), not cell (0, 0)
  // (integer truncation would merge them and mask real separation).
  TrajectoryDatabase db;
  (void)db.Add(T("neg", 1, {R(-1, -1, 0)}));
  BlockingOptions o = NoSlack();
  o.use_temporal = false;
  o.cell_size_meters = 1000.0;
  o.neighborhood = 0;
  BlockingIndex strict(db, o);
  o.neighborhood = 1;
  BlockingIndex relaxed(db, o);
  Trajectory query = T("q", 9, {R(1, 1, 0)});
  EXPECT_TRUE(strict.Candidates(query).empty());
  EXPECT_EQ(relaxed.Candidates(query).size(), 1u);
}

TEST(BlockingTest, BothBlockersDisabledReturnsIdentity) {
  TrajectoryDatabase db;
  (void)db.Add(T("a", 1, {R(0, 0, 0)}));
  (void)db.Add(T("b", 2, {}));  // even empty candidates
  (void)db.Add(T("c", 3, {R(1e6, 1e6, 1000000)}));
  BlockingOptions o;
  o.use_temporal = false;
  o.use_spatial = false;
  BlockingIndex index(db, o);
  auto cands = index.Candidates(T("q", 9, {R(0, 0, 0)}));
  EXPECT_EQ(cands, (std::vector<size_t>{0, 1, 2}));
  // ... but an empty query still returns nothing.
  EXPECT_TRUE(index.Candidates(T("q2", 9, {})).empty());
}

TEST(BlockingTest, MinSharedCellsZeroDisablesSpatialFilter) {
  TrajectoryDatabase db;
  (void)db.Add(T("far", 1, {R(90000, 90000, 0)}));
  BlockingOptions o = NoSlack();
  o.use_temporal = false;
  o.min_shared_cells = 0;
  BlockingIndex index(db, o);
  EXPECT_EQ(index.Candidates(T("q", 9, {R(0, 0, 0)})).size(), 1u);
}

TEST(BlockingGuaranteedTest, EdgeCases) {
  TrajectoryDatabase db;
  (void)db.Add(T("a", 1, {R(0, 0, 0), R(0, 0, 100)}));
  (void)db.Add(T("empty", 2, {}));
  (void)db.Add(T("far", 3, {R(0, 0, 1000000)}));
  BlockingIndex index(db, {});
  BlockingScratch scratch;
  std::vector<size_t> out;

  // min_segments == 0 means "cannot prune": identity, even for an
  // empty query (a no-evidence accept criterion accepts everything).
  BlockingGuarantee cannot{3600, 0};
  index.GuaranteedCandidates(T("q", 9, {}), cannot, &scratch, &out);
  EXPECT_EQ(out, (std::vector<size_t>{0, 1, 2}));

  // An empty query has no co-occurrence: with a real bound everything
  // is provably unacceptable.
  BlockingGuarantee g{3600, 1};
  index.GuaranteedCandidates(T("q", 9, {}), g, &scratch, &out);
  EXPECT_TRUE(out.empty());

  // Empty candidates can never co-occur; far candidates are outside
  // the horizon.
  index.GuaranteedCandidates(T("q", 9, {R(0, 0, 50)}), g, &scratch, &out);
  EXPECT_EQ(out, (std::vector<size_t>{0}));
}

/// Property harness: guaranteed mode must keep engine results
/// byte-identical to exhaustive scoring, for both matchers, on both
/// representations.
void ExpectGuaranteedIdentity(Matcher matcher) {
  sim::PopulationOptions po;
  po.num_persons = 40;
  po.duration_days = 5;
  po.cdr_accesses_per_day = 20.0;
  po.transit_accesses_per_day = 20.0;
  po.seed = 407;
  auto data = sim::SimulatePopulation(po);
  EngineOptions eo;
  eo.training.horizon_units = 30;
  FtlEngine engine(eo);
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());

  BlockingIndex index(data.transit_db, {});
  traj::FlatDatabase flat_q = traj::FlatDatabase::FromDatabase(
      data.transit_db);
  BlockingIndex flat_index(flat_q, {});
  traj::FlatDatabase flat_p = traj::FlatDatabase::FromDatabase(data.cdr_db);
  BlockingScratch scratch;
  for (size_t qi = 0; qi < data.cdr_db.size(); ++qi) {
    auto full = engine.Query(data.cdr_db[qi], data.transit_db, matcher);
    auto blocked = engine.QueryBlocked(data.cdr_db[qi], data.transit_db,
                                       index, BlockingMode::kGuaranteed,
                                       matcher, &scratch);
    ASSERT_TRUE(full.ok());
    ASSERT_TRUE(blocked.ok());
    ASSERT_EQ(full.value().candidates.size(),
              blocked.value().candidates.size());
    for (size_t i = 0; i < full.value().candidates.size(); ++i) {
      EXPECT_EQ(full.value().candidates[i].index,
                blocked.value().candidates[i].index);
      EXPECT_EQ(full.value().candidates[i].score,
                blocked.value().candidates[i].score);
    }
    // SoA path: same property over the columnar database.
    auto flat_blocked = engine.QueryBlocked(
        flat_p[qi], flat_q, flat_index, BlockingMode::kGuaranteed, matcher,
        &scratch);
    ASSERT_TRUE(flat_blocked.ok());
    ASSERT_EQ(full.value().candidates.size(),
              flat_blocked.value().candidates.size());
    for (size_t i = 0; i < full.value().candidates.size(); ++i) {
      EXPECT_EQ(full.value().candidates[i].index,
                flat_blocked.value().candidates[i].index);
    }
  }
}

TEST(BlockingGuaranteedTest, NaiveBayesAcceptSetsByteIdentical) {
  ExpectGuaranteedIdentity(Matcher::kNaiveBayes);
}

TEST(BlockingGuaranteedTest, AlphaFilterAcceptSetsByteIdentical) {
  ExpectGuaranteedIdentity(Matcher::kAlphaFilter);
}

TEST(BlockingGuaranteedTest, QueryBlockedOffMatchesPlainQuery) {
  sim::PopulationOptions po;
  po.num_persons = 15;
  po.duration_days = 3;
  po.seed = 408;
  auto data = sim::SimulatePopulation(po);
  FtlEngine engine;
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());
  BlockingIndex index(data.transit_db, {});
  auto off = engine.QueryBlocked(data.cdr_db[0], data.transit_db, index,
                                 BlockingMode::kOff, Matcher::kNaiveBayes);
  auto plain = engine.Query(data.cdr_db[0], data.transit_db,
                            Matcher::kNaiveBayes);
  ASSERT_TRUE(off.ok());
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(off.value().candidates.size(), plain.value().candidates.size());
  for (size_t i = 0; i < off.value().candidates.size(); ++i) {
    EXPECT_EQ(off.value().candidates[i].index,
              plain.value().candidates[i].index);
  }
}

TEST(BlockingGuaranteedTest, IndexSizeMismatchRejected) {
  sim::PopulationOptions po;
  po.num_persons = 10;
  po.duration_days = 2;
  po.seed = 409;
  auto data = sim::SimulatePopulation(po);
  FtlEngine engine;
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());
  TrajectoryDatabase other;
  (void)other.Add(T("x", 1, {R(0, 0, 0)}));
  BlockingIndex stale(other, {});
  auto r = engine.QueryBlocked(data.cdr_db[0], data.transit_db, stale,
                               BlockingMode::kGuaranteed,
                               Matcher::kNaiveBayes);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(BlockingTest, OutOfRangeCandidateIndexRejected) {
  sim::PopulationOptions po;
  po.num_persons = 10;
  po.duration_days = 2;
  po.seed = 406;
  auto data = sim::SimulatePopulation(po);
  FtlEngine engine;
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());
  auto r = engine.QueryWithCandidates(data.cdr_db[0], data.transit_db,
                                      {99999}, Matcher::kNaiveBayes);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace ftl::core
