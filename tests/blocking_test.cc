#include <gtest/gtest.h>

#include <algorithm>

#include "core/blocking.h"
#include "core/engine.h"
#include "sim/population_sim.h"

namespace ftl::core {
namespace {

using traj::Record;
using traj::Trajectory;
using traj::TrajectoryDatabase;

Record R(double x, double y, traj::Timestamp t) { return Record{{x, y}, t}; }

Trajectory T(const std::string& label, traj::OwnerId owner,
             std::vector<Record> recs) {
  return Trajectory(label, owner, std::move(recs));
}

BlockingOptions NoSlack() {
  BlockingOptions o;
  o.temporal_slack_seconds = 0;
  return o;
}

TEST(BlockingTest, TemporalDisjointPruned) {
  TrajectoryDatabase db;
  (void)db.Add(T("early", 1, {R(0, 0, 0), R(0, 0, 100)}));
  (void)db.Add(T("late", 2, {R(0, 0, 100000), R(0, 0, 100100)}));
  BlockingOptions o = NoSlack();
  o.use_spatial = false;
  BlockingIndex index(db, o);
  Trajectory query = T("q", 9, {R(0, 0, 50), R(0, 0, 80)});
  auto cands = index.Candidates(query);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(db[cands[0]].label(), "early");
}

TEST(BlockingTest, TemporalSlackExtendsWindow) {
  TrajectoryDatabase db;
  (void)db.Add(T("near", 1, {R(0, 0, 2000), R(0, 0, 2100)}));
  BlockingOptions o;
  o.use_spatial = false;
  o.temporal_slack_seconds = 0;
  BlockingIndex tight(db, o);
  o.temporal_slack_seconds = 5000;
  BlockingIndex loose(db, o);
  Trajectory query = T("q", 9, {R(0, 0, 0), R(0, 0, 100)});
  EXPECT_TRUE(tight.Candidates(query).empty());
  EXPECT_EQ(loose.Candidates(query).size(), 1u);
}

TEST(BlockingTest, SpatialSharedCellRequired) {
  TrajectoryDatabase db;
  (void)db.Add(T("here", 1, {R(100, 100, 0), R(200, 200, 50)}));
  (void)db.Add(T("far", 2, {R(90000, 90000, 0), R(90100, 90100, 50)}));
  BlockingOptions o = NoSlack();
  o.use_temporal = false;
  o.cell_size_meters = 1000.0;
  o.neighborhood = 1;
  BlockingIndex index(db, o);
  Trajectory query = T("q", 9, {R(150, 150, 25)});
  auto cands = index.Candidates(query);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(db[cands[0]].label(), "here");
}

TEST(BlockingTest, NeighborhoodAbsorbsCellBoundary) {
  // Query at the very edge of a cell; candidate just across the border.
  TrajectoryDatabase db;
  (void)db.Add(T("across", 1, {R(1001, 0, 0)}));
  BlockingOptions o = NoSlack();
  o.use_temporal = false;
  o.cell_size_meters = 1000.0;
  o.neighborhood = 0;
  BlockingIndex strict(db, o);
  o.neighborhood = 1;
  BlockingIndex relaxed(db, o);
  Trajectory query = T("q", 9, {R(999, 0, 0)});
  EXPECT_TRUE(strict.Candidates(query).empty());
  EXPECT_EQ(relaxed.Candidates(query).size(), 1u);
}

TEST(BlockingTest, MinSharedCellsFilters) {
  TrajectoryDatabase db;
  // Candidate visits two cells of the query's footprint.
  (void)db.Add(T("two-cells", 1, {R(500, 500, 0), R(5500, 5500, 50)}));
  // Candidate visits only one.
  (void)db.Add(T("one-cell", 2, {R(500, 500, 0)}));
  BlockingOptions o = NoSlack();
  o.use_temporal = false;
  o.cell_size_meters = 1000.0;
  o.neighborhood = 0;
  o.min_shared_cells = 2;
  BlockingIndex index(db, o);
  Trajectory query = T("q", 9, {R(400, 400, 10), R(5600, 5600, 60)});
  auto cands = index.Candidates(query);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(db[cands[0]].label(), "two-cells");
}

TEST(BlockingTest, EmptyQueryNoCandidates) {
  TrajectoryDatabase db;
  (void)db.Add(T("a", 1, {R(0, 0, 0)}));
  BlockingIndex index(db, {});
  EXPECT_TRUE(index.Candidates(T("q", 9, {})).empty());
}

TEST(BlockingTest, EmptyCandidatesNeverReturned) {
  TrajectoryDatabase db;
  (void)db.Add(T("empty", 1, {}));
  (void)db.Add(T("full", 2, {R(0, 0, 0), R(0, 0, 100)}));
  BlockingIndex index(db, {});
  auto cands = index.Candidates(T("q", 9, {R(10, 10, 50)}));
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(db[cands[0]].label(), "full");
}

TEST(BlockingTest, HighRecallOnPopulation) {
  // Property: on paired data from *localized* movers (each person stays
  // in their own neighbourhood of a large city), spatial blocking keeps
  // nearly every true match while pruning a large share of candidates.
  sim::PopulationOptions po;
  po.num_persons = 120;
  po.duration_days = 7;
  po.cdr_accesses_per_day = 15.0;
  po.transit_accesses_per_day = 10.0;
  po.city = sim::BeijingLike();
  po.city.hotspots.clear();       // no shared attractors
  po.waypoints.hotspot_prob = 0.0;
  po.waypoints.trip_scale_meters = 2500.0;  // stay local
  po.waypoints.long_trip_prob = 0.0;
  po.seed = 404;
  auto data = sim::SimulatePopulation(po);
  BlockingOptions o;
  o.cell_size_meters = 4000.0;
  o.neighborhood = 1;
  BlockingIndex index(data.transit_db, o);

  size_t kept_true = 0, total = 0, candidate_sum = 0;
  for (const auto& query : data.cdr_db) {
    if (query.size() < 2) continue;
    ++total;
    auto cands = index.Candidates(query);
    candidate_sum += cands.size();
    for (size_t ci : cands) {
      if (data.transit_db[ci].owner() == query.owner()) {
        ++kept_true;
        break;
      }
    }
  }
  ASSERT_GT(total, 100u);
  double recall = static_cast<double>(kept_true) /
                  static_cast<double>(total);
  double reduction = static_cast<double>(candidate_sum) /
                     (static_cast<double>(total) *
                      static_cast<double>(data.transit_db.size()));
  EXPECT_GT(recall, 0.97);
  EXPECT_LT(reduction, 0.9);
}

TEST(BlockingTest, QueryWithCandidatesMatchesFullQueryOnSurvivors) {
  sim::PopulationOptions po;
  po.num_persons = 40;
  po.duration_days = 5;
  po.cdr_accesses_per_day = 20.0;
  po.transit_accesses_per_day = 20.0;
  po.seed = 405;
  auto data = sim::SimulatePopulation(po);
  EngineOptions eo;
  eo.training.horizon_units = 30;
  FtlEngine engine(eo);
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());

  BlockingIndex index(data.transit_db, {});
  const auto& query = data.cdr_db[3];
  auto survivors = index.Candidates(query);
  auto full = engine.Query(query, data.transit_db, Matcher::kNaiveBayes);
  auto blocked = engine.QueryWithCandidates(query, data.transit_db,
                                            survivors,
                                            Matcher::kNaiveBayes);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(blocked.ok());
  // Every blocked result must appear in the full results (blocking can
  // only remove candidates).
  for (const auto& c : blocked.value().candidates) {
    bool found = false;
    for (const auto& f : full.value().candidates) {
      if (f.index == c.index) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(BlockingTest, OutOfRangeCandidateIndexRejected) {
  sim::PopulationOptions po;
  po.num_persons = 10;
  po.duration_days = 2;
  po.seed = 406;
  auto data = sim::SimulatePopulation(po);
  FtlEngine engine;
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());
  auto r = engine.QueryWithCandidates(data.cdr_db[0], data.transit_db,
                                      {99999}, Matcher::kNaiveBayes);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace ftl::core
