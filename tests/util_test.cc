#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace ftl {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllNamedConstructors) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
}

TEST(StatusTest, CodeNamesAreDistinct) {
  std::set<std::string> names;
  for (auto code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kIOError, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kInternal,
        StatusCode::kDeadlineExceeded, StatusCode::kCancelled}) {
    names.insert(StatusCodeName(code));
  }
  EXPECT_EQ(names.size(), 9u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusIsRejected) {
  Result<int> r(Status::OK());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 3));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count(0));
  EXPECT_TRUE(seen.count(3));
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, PoissonMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(0.25);
  EXPECT_NEAR(sum / n, 4.0, 0.2);
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng(19);
  auto picks = rng.SampleIndices(100, 30);
  ASSERT_EQ(picks.size(), 30u);
  std::set<size_t> uniq(picks.begin(), picks.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (size_t p : picks) EXPECT_LT(p, 100u);
}

TEST(RngTest, SampleIndicesAllWhenKTooLarge) {
  Rng rng(19);
  auto picks = rng.SampleIndices(10, 50);
  ASSERT_EQ(picks.size(), 10u);
  std::set<size_t> uniq(picks.begin(), picks.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(RngTest, SampleIndicesUnbiased) {
  // Each index should be picked with probability k/n.
  Rng rng(23);
  std::vector<int> hits(10, 0);
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    for (size_t p : rng.SampleIndices(10, 3)) ++hits[p];
  }
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / trials, 0.3, 0.05);
  }
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(31);
  Rng child = parent.Fork();
  // Child stream should not simply replay the parent stream.
  Rng parent2(31);
  (void)parent2.Fork();
  double a = child.Uniform(0, 1);
  double b = parent.Uniform(0, 1);
  EXPECT_NE(a, b);
}

TEST(RngTest, PoissonProcessRate) {
  Rng rng(37);
  auto events = PoissonProcess(&rng, 2.0, 0.0, 10000.0);
  // Expect ~20000 events.
  EXPECT_NEAR(static_cast<double>(events.size()), 20000.0, 600.0);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i], events[i - 1]);
  }
  EXPECT_GE(events.front(), 0.0);
  EXPECT_LT(events.back(), 10000.0);
}

TEST(RngTest, PoissonProcessEmptyCases) {
  Rng rng(37);
  EXPECT_TRUE(PoissonProcess(&rng, 0.0, 0.0, 10.0).empty());
  EXPECT_TRUE(PoissonProcess(&rng, 1.0, 10.0, 10.0).empty());
  EXPECT_TRUE(PoissonProcess(&rng, -1.0, 0.0, 10.0).empty());
}

// ---------------------------------------------------------------- string

TEST(StringUtilTest, SplitBasic) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split(",x,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("he", "hello"));
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble(" -1e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringUtilTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(ParseInt64("4.2", &v));
  EXPECT_FALSE(ParseInt64("", &v));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(StringUtilTest, RenderTableAligns) {
  std::string t = RenderTable({{"name", "v"}, {"alpha", "1"}, {"b", "22"}});
  // Header, separator, two rows.
  auto lines = Split(t, '\n');
  ASSERT_GE(lines.size(), 4u);
  EXPECT_NE(lines[1].find("---"), std::string::npos);
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasks) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, MinimumOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ParallelForTest, CoversAllIndices) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(1000, 8, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, SerialFallback) {
  std::vector<int> order;
  ParallelFor(5, 1, [&order](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroItems) {
  bool called = false;
  ParallelFor(0, 4, [&called](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleItemRunsInline) {
  // n <= 1 must execute on the calling thread with no pool spin-up.
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id executed;
  ParallelFor(1, 8, [&executed](size_t i) {
    EXPECT_EQ(i, 0u);
    executed = std::this_thread::get_id();
  });
  EXPECT_EQ(executed, caller);
}

TEST(ParallelWorkerCountTest, ClampsToItemsAndFloorsAtOne) {
  EXPECT_EQ(ParallelWorkerCount(10, 4), 4u);
  EXPECT_EQ(ParallelWorkerCount(2, 8), 2u);
  EXPECT_EQ(ParallelWorkerCount(0, 8), 1u);
  EXPECT_EQ(ParallelWorkerCount(10, 0), 1u);
}

TEST(ParallelForWorkersTest, ChunksPartitionTheRange) {
  // Every index is visited exactly once, regardless of how the atomic
  // chunk scheduler interleaves workers.
  std::vector<std::atomic<int>> hits(777);
  ParallelForWorkers(777, 8,
                     [&hits](size_t /*worker*/, size_t begin, size_t end) {
                       ASSERT_LE(begin, end);
                       for (size_t i = begin; i < end; ++i) {
                         hits[i].fetch_add(1);
                       }
                     });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForWorkersTest, WorkerIdsStayInRange) {
  const size_t n = 500;
  const size_t threads = 5;
  const size_t workers = ParallelWorkerCount(n, threads);
  std::vector<std::atomic<int>> used(workers);
  ParallelForWorkers(n, threads,
                     [&used, workers](size_t worker, size_t, size_t) {
                       ASSERT_LT(worker, workers);
                       used[worker].fetch_add(1);
                     });
  // Every chunk was claimed by some in-range worker. (Worker 0 is the
  // calling thread, but on a loaded machine the spawned workers can
  // legitimately drain the whole range before it claims a chunk, so
  // per-worker participation is not asserted.)
  int total = 0;
  for (auto& u : used) total += u.load();
  EXPECT_GT(total, 0);
}

TEST(ParallelForWorkersTest, NullStopMatchesPlainOverload) {
  std::vector<std::atomic<int>> hits(200);
  size_t processed = ParallelForWorkers(
      200, 4, nullptr, [&hits](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
  EXPECT_EQ(processed, 200u);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForWorkersTest, StopYieldsContiguousPrefix) {
  // Once stop trips, the processed items must form exactly the prefix
  // [0, processed) — the guarantee deadline-truncated query results
  // are built on.
  for (size_t threads : {1u, 4u}) {
    const size_t n = 400;
    std::vector<std::atomic<int>> hits(n);
    std::atomic<int> polls{0};
    auto stop = [&polls]() { return polls.fetch_add(1) >= 3; };
    size_t processed = ParallelForWorkers(
        n, threads, stop, [&hits](size_t, size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
        });
    EXPECT_LE(processed, n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), i < processed ? 1 : 0)
          << "threads=" << threads << " i=" << i
          << " processed=" << processed;
    }
  }
}

TEST(ParallelForWorkersTest, StopBeforeStartProcessesNothing) {
  size_t processed = ParallelForWorkers(
      100, 4, []() { return true; },
      [](size_t, size_t, size_t) { FAIL() << "no chunk should run"; });
  EXPECT_EQ(processed, 0u);
}

TEST(ParallelForWorkersTest, InlineWhenSingleItem) {
  std::thread::id caller = std::this_thread::get_id();
  ParallelForWorkers(1, 8, [&caller](size_t worker, size_t begin,
                                     size_t end) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch sw;
  double t0 = sw.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(sw.ElapsedSeconds(), t0);
  sw.Reset();
  EXPECT_LT(sw.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace ftl
