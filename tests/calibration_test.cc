#include <gtest/gtest.h>

#include "eval/calibration.h"
#include "sim/population_sim.h"

namespace ftl::eval {
namespace {

struct Fixture {
  sim::PopulationData data;
  core::FtlEngine engine;
  Workload workload;
  std::vector<QueryScores> scores;
};

Fixture MakeFixture() {
  Fixture f;
  sim::PopulationOptions po;
  po.num_persons = 60;
  po.duration_days = 7;
  po.cdr_accesses_per_day = 12.0;
  po.transit_accesses_per_day = 8.0;
  po.seed = 888;
  f.data = sim::SimulatePopulation(po);
  core::EngineOptions eo;
  eo.training.horizon_units = 30;
  f.engine = core::FtlEngine(eo);
  EXPECT_TRUE(f.engine.Train(f.data.cdr_db, f.data.transit_db).ok());
  WorkloadOptions wo;
  wo.num_queries = 30;
  wo.seed = 12;
  f.workload = MakeWorkload(f.data.cdr_db, f.data.transit_db, wo);
  f.scores = ComputePairScores(f.engine, f.workload.queries,
                               f.data.transit_db);
  return f;
}

TEST(CalibrationTest, PhiRespectsBudget) {
  Fixture f = MakeFixture();
  CalibrationTarget target;
  target.max_mean_candidates = 3.0;
  auto r = CalibratePhi(f.scores, f.workload.owners, f.data.transit_db,
                        target);
  EXPECT_LE(r.mean_candidates, 3.0);
  EXPECT_GT(r.phi_r, 0.0);
  EXPECT_GT(r.perceptiveness, 0.0);
  EXPECT_TRUE(r.feasible);
}

TEST(CalibrationTest, LooserBudgetLoosensPhi) {
  Fixture f = MakeFixture();
  CalibrationTarget tight;
  tight.max_mean_candidates = 1.0;
  CalibrationTarget loose;
  loose.max_mean_candidates = 50.0;
  auto rt = CalibratePhi(f.scores, f.workload.owners, f.data.transit_db,
                         tight);
  auto rl = CalibratePhi(f.scores, f.workload.owners, f.data.transit_db,
                         loose);
  EXPECT_LE(rt.phi_r, rl.phi_r);
  EXPECT_GE(rl.perceptiveness + 1e-9, rt.perceptiveness);
}

TEST(CalibrationTest, AlphaRespectsBudget) {
  Fixture f = MakeFixture();
  CalibrationTarget target;
  target.max_mean_candidates = 5.0;
  auto r = CalibrateAlpha(f.scores, f.workload.owners, f.data.transit_db,
                          target);
  EXPECT_LE(r.mean_candidates, 5.0);
  EXPECT_GT(r.alpha1, 0.0);
  EXPECT_GT(r.alpha2, 0.0);
  EXPECT_TRUE(r.feasible);
}

TEST(CalibrationTest, ImpossibleBudgetFallsBackToStrictest) {
  Fixture f = MakeFixture();
  CalibrationTarget impossible;
  impossible.max_mean_candidates = 0.0;
  auto r = CalibratePhi(f.scores, f.workload.owners, f.data.transit_db,
                        impossible);
  // Strictest grid point returned; budget may still be exceeded but the
  // result is well-defined — and explicitly flagged infeasible, so
  // callers cannot mistake the fallback for a setting within budget.
  EXPECT_DOUBLE_EQ(r.phi_r, 1e-6);
  EXPECT_GT(r.mean_candidates, 0.0);
  EXPECT_FALSE(r.feasible);
}

TEST(CalibrationTest, ImpossibleBudgetAlphaIsFlaggedInfeasible) {
  Fixture f = MakeFixture();
  CalibrationTarget impossible;
  impossible.max_mean_candidates = 0.0;
  auto r = CalibrateAlpha(f.scores, f.workload.owners, f.data.transit_db,
                          impossible);
  // The strictest (α1, α2) grid point is the fallback.
  EXPECT_DOUBLE_EQ(r.alpha1, 0.2);
  EXPECT_DOUBLE_EQ(r.alpha2, 0.001);
  EXPECT_FALSE(r.feasible);
}

TEST(CalibrationTest, AutoCalibrateEndToEnd) {
  Fixture f = MakeFixture();
  CalibrationTarget target;
  target.max_mean_candidates = 4.0;
  WorkloadOptions wo;
  wo.num_queries = 20;
  wo.seed = 13;
  auto r = AutoCalibrate(f.engine, f.data.cdr_db, f.data.transit_db,
                         core::Matcher::kNaiveBayes, target, wo);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_LE(r.value().mean_candidates, 4.0);
  EXPECT_GT(r.value().perceptiveness, 0.5);
}

TEST(CalibrationTest, AutoCalibrateAlphaMatcher) {
  Fixture f = MakeFixture();
  CalibrationTarget target;
  target.max_mean_candidates = 6.0;
  WorkloadOptions wo;
  wo.num_queries = 20;
  wo.seed = 14;
  auto r = AutoCalibrate(f.engine, f.data.cdr_db, f.data.transit_db,
                         core::Matcher::kAlphaFilter, target, wo);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().alpha1, 0.0);
}

TEST(CalibrationTest, UntrainedEngineFails) {
  Fixture f = MakeFixture();
  core::FtlEngine untrained;
  WorkloadOptions wo;
  auto r = AutoCalibrate(untrained, f.data.cdr_db, f.data.transit_db,
                         core::Matcher::kNaiveBayes, {}, wo);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CalibrationTest, EmptyWorkloadFails) {
  Fixture f = MakeFixture();
  traj::TrajectoryDatabase empty_p("empty");
  WorkloadOptions wo;
  auto r = AutoCalibrate(f.engine, empty_p, f.data.transit_db,
                         core::Matcher::kNaiveBayes, {}, wo);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace ftl::eval
