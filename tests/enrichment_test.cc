#include <gtest/gtest.h>

#include <set>

#include "core/assignment.h"
#include "core/enrichment.h"

namespace ftl::core {
namespace {

using traj::Record;
using traj::Trajectory;
using traj::TrajectoryDatabase;

Record R(double x, double y, traj::Timestamp t) { return Record{{x, y}, t}; }

// ------------------------------------------------------------ Enrichment

TEST(EnrichmentTest, MergesInTimeOrderWithSourceTags) {
  Trajectory p("bob-cdr", 1, {R(0, 0, 10), R(0, 0, 30)});
  Trajectory q("card-2565", 1, {R(0, 0, 20), R(0, 0, 40)});
  EnrichmentOptions opts;
  opts.p_source_name = "CDR";
  opts.q_source_name = "Commuter";
  auto e = Enrich(p, q, opts);
  ASSERT_TRUE(e.ok());
  const auto& recs = e.value().records;
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_EQ(recs[0].source, "CDR");
  EXPECT_EQ(recs[1].source, "Commuter");
  EXPECT_EQ(recs[2].source, "CDR");
  EXPECT_EQ(recs[3].source, "Commuter");
  for (size_t i = 1; i < recs.size(); ++i) {
    EXPECT_LE(recs[i - 1].record.t, recs[i].record.t);
  }
  EXPECT_EQ(e.value().p_label, "bob-cdr");
  EXPECT_EQ(e.value().q_label, "card-2565");
}

TEST(EnrichmentTest, BothEmptyFails) {
  Trajectory p("p", 1, {});
  Trajectory q("q", 1, {});
  EXPECT_FALSE(Enrich(p, q, {}).ok());
}

TEST(EnrichmentTest, OneEmptyStillMerges) {
  Trajectory p("p", 1, {R(0, 0, 10)});
  Trajectory q("q", 1, {});
  auto e = Enrich(p, q, {});
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value().records.size(), 1u);
  EXPECT_DOUBLE_EQ(e.value().p_fraction, 1.0);
}

TEST(EnrichmentTest, AuditsIncompatibleSegments) {
  // A bogus link: the two "linked" trajectories teleport between
  // records.
  Trajectory p("p", 1, {R(0, 0, 0), R(0, 0, 120)});
  Trajectory q("q", 2, {R(500000, 0, 60)});
  EnrichmentOptions opts;
  opts.vmax_mps = 33.3;
  auto e = Enrich(p, q, opts);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value().incompatible_mutual_segments, 2u);
}

TEST(EnrichmentTest, CleanLinkHasNoIncompatibilities) {
  Trajectory p("p", 1, {R(0, 0, 0), R(10, 0, 120)});
  Trajectory q("q", 1, {R(5, 0, 60)});
  auto e = Enrich(p, q, {});
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value().incompatible_mutual_segments, 0u);
}

TEST(EnrichmentTest, DensificationFactor) {
  // P samples every 100 s, Q samples every 100 s offset by 50:
  // merged cadence 50 s -> factor ~2.
  std::vector<Record> pr, qr;
  for (int i = 0; i < 20; ++i) {
    pr.push_back(R(0, 0, i * 100));
    qr.push_back(R(0, 0, i * 100 + 50));
  }
  Trajectory p("p", 1, std::move(pr));
  Trajectory q("q", 1, std::move(qr));
  auto e = Enrich(p, q, {});
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e.value().densification_factor, 2.0, 0.1);
}

TEST(EnrichmentTest, TableStringRendersRows) {
  Trajectory p("bob", 1, {R(87, 23, 100)});
  Trajectory q("#2565", 1, {R(63, 45, 200)});
  auto e = Enrich(p, q, {});
  ASSERT_TRUE(e.ok());
  std::string table = ToTableString(e.value());
  EXPECT_NE(table.find("bob"), std::string::npos);
  EXPECT_NE(table.find("#2565"), std::string::npos);
  EXPECT_NE(table.find("source"), std::string::npos);
}

TEST(EnrichmentTest, TableStringTruncates) {
  std::vector<Record> pr;
  for (int i = 0; i < 50; ++i) pr.push_back(R(0, 0, i));
  Trajectory p("p", 1, std::move(pr));
  Trajectory q("q", 1, {R(0, 0, 1000)});
  auto e = Enrich(p, q, {});
  ASSERT_TRUE(e.ok());
  std::string table = ToTableString(e.value(), 5);
  EXPECT_NE(table.find("more rows"), std::string::npos);
}

// ------------------------------------------------------------ Assignment

QueryResult ResultWith(std::vector<std::pair<size_t, double>> cands) {
  QueryResult r;
  for (auto [idx, score] : cands) {
    MatchCandidate c;
    c.index = idx;
    c.score = score;
    r.candidates.push_back(c);
  }
  return r;
}

TEST(AssignmentTest, ResolvesCollisionByScore) {
  // Queries 0 and 1 both want candidate 7; query 1 scores higher and
  // wins; query 0 falls back to candidate 3.
  std::vector<QueryResult> results = {
      ResultWith({{7, 0.8}, {3, 0.6}}),
      ResultWith({{7, 0.9}}),
  };
  auto assignments = AssignOneToOne(results);
  ASSERT_EQ(assignments.size(), 2u);
  EXPECT_EQ(assignments[0].query_index, 0u);
  EXPECT_EQ(assignments[0].candidate_index, 3u);
  EXPECT_EQ(assignments[1].query_index, 1u);
  EXPECT_EQ(assignments[1].candidate_index, 7u);
}

TEST(AssignmentTest, MinScoreExcludesWeakPairs) {
  std::vector<QueryResult> results = {ResultWith({{1, 0.05}})};
  EXPECT_TRUE(AssignOneToOne(results, 0.1).empty());
  EXPECT_EQ(AssignOneToOne(results, 0.01).size(), 1u);
}

TEST(AssignmentTest, EachQueryAndCandidateAtMostOnce) {
  std::vector<QueryResult> results = {
      ResultWith({{1, 0.9}, {2, 0.8}}),
      ResultWith({{1, 0.7}, {2, 0.6}}),
      ResultWith({{1, 0.5}, {2, 0.4}}),
  };
  auto assignments = AssignOneToOne(results);
  EXPECT_EQ(assignments.size(), 2u);  // only two distinct candidates
  std::set<size_t> qs, cs;
  for (const auto& a : assignments) {
    EXPECT_TRUE(qs.insert(a.query_index).second);
    EXPECT_TRUE(cs.insert(a.candidate_index).second);
  }
}

TEST(AssignmentTest, EmptyInput) {
  EXPECT_TRUE(AssignOneToOne({}).empty());
}

TEST(AssignmentTest, AccuracyAgainstGroundTruth) {
  TrajectoryDatabase db;
  (void)db.Add(Trajectory("c0", 10, {}));
  (void)db.Add(Trajectory("c1", 20, {}));
  std::vector<Assignment> assignments = {{0, 0, 0.9}, {1, 1, 0.8}};
  // Query 0 owner 10 -> candidate 0 owner 10: correct.
  // Query 1 owner 99 -> candidate 1 owner 20: wrong.
  EXPECT_DOUBLE_EQ(AssignmentAccuracy(assignments, {10, 99}, db), 0.5);
  EXPECT_DOUBLE_EQ(AssignmentAccuracy({}, {10, 99}, db), 0.0);
}

TEST(AssignmentTest, AssignmentNeverHurtsCollidingTop1) {
  // Construct a batch where independent top-1 is wrong for one query
  // due to a collision, and assignment fixes it.
  TrajectoryDatabase db;
  (void)db.Add(Trajectory("c0", 100, {}));
  (void)db.Add(Trajectory("c1", 200, {}));
  // Query 0 (owner 100): ranks c0 first, correctly, with high score.
  // Query 1 (owner 200): also ranks c0 first (collision), c1 second.
  std::vector<QueryResult> results = {
      ResultWith({{0, 0.95}}),
      ResultWith({{0, 0.6}, {1, 0.5}}),
  };
  std::vector<traj::OwnerId> owners = {100, 200};
  // Independent top-1: query 1 picks c0 -> wrong. Accuracy 0.5.
  auto assignments = AssignOneToOne(results);
  EXPECT_DOUBLE_EQ(AssignmentAccuracy(assignments, owners, db), 1.0);
}

}  // namespace
}  // namespace ftl::core
