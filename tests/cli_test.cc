#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "io/csv.h"
#include "io/json_parse.h"
#include "tools/cli.h"
#include "util/failpoint.h"

namespace ftl::tools {
namespace {

namespace fs = std::filesystem;

std::string Tmp(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

struct TempFiles {
  std::vector<std::string> paths;
  std::string Add(const std::string& name) {
    paths.push_back(Tmp(name));
    return paths.back();
  }
  ~TempFiles() {
    for (const auto& p : paths) std::remove(p.c_str());
  }
};

// ---------------------------------------------------------------- ArgMap

TEST(ArgMapTest, ParsesKeyValuePairs) {
  auto m = ArgMap::Parse({"--a", "1", "--b", "x"});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().Get("a", ""), "1");
  EXPECT_EQ(m.value().Get("b", ""), "x");
  EXPECT_EQ(m.value().Get("c", "zz"), "zz");
  EXPECT_TRUE(m.value().Has("a"));
  EXPECT_FALSE(m.value().Has("c"));
}

TEST(ArgMapTest, ValuelessFlagGetsTrue) {
  auto m = ArgMap::Parse({"--verbose", "--k", "3"});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().Get("verbose", ""), "true");
  EXPECT_EQ(m.value().Get("k", ""), "3");
}

TEST(ArgMapTest, RejectsBareToken) {
  EXPECT_FALSE(ArgMap::Parse({"oops"}).ok());
  EXPECT_FALSE(ArgMap::Parse({"--ok", "1", "--"}).ok());
}

TEST(ArgMapTest, NumericAccessors) {
  auto m = ArgMap::Parse({"--d", "2.5", "--i", "42", "--bad", "xyz"});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m.value().GetDouble("d", 0).value(), 2.5);
  EXPECT_EQ(m.value().GetInt("i", 0).value(), 42);
  EXPECT_DOUBLE_EQ(m.value().GetDouble("missing", 7.0).value(), 7.0);
  EXPECT_FALSE(m.value().GetDouble("bad", 0).ok());
  EXPECT_FALSE(m.value().GetInt("d", 0).ok());
}

// ------------------------------------------------------------- Commands

TEST(CliTest, UsageOnNoArgs) {
  std::ostringstream out;
  EXPECT_EQ(RunCli({}, out), 1);
  EXPECT_NE(out.str().find("usage:"), std::string::npos);
}

TEST(CliTest, HelpIsSuccess) {
  std::ostringstream out;
  EXPECT_EQ(RunCli({"help"}, out), 0);
}

TEST(CliTest, UsageListsServeWithItsFlags) {
  std::string usage = UsageText();
  EXPECT_NE(usage.find("serve"), std::string::npos);
  for (const char* flag : {"--listen", "--ftb", "--max-queue",
                           "--request-deadline-ms", "--threads"}) {
    EXPECT_NE(usage.find(flag), std::string::npos) << "usage missing " << flag;
  }
  EXPECT_NE(usage.find("--json"), std::string::npos);  // link --json
}

TEST(ArgMapTest, GetAllReturnsRepeatedFlagInOrder) {
  auto m = ArgMap::Parse(
      {"--ftb", "a.ftb", "--p", "p.csv", "--ftb", "b.ftb", "--ftb", "c.ftb"});
  ASSERT_TRUE(m.ok());
  std::vector<std::string> shards = m.value().GetAll("ftb");
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0], "a.ftb");
  EXPECT_EQ(shards[1], "b.ftb");
  EXPECT_EQ(shards[2], "c.ftb");
  EXPECT_TRUE(m.value().GetAll("absent").empty());
}

// The one-shot CLI and the daemon share one status table: exit codes
// come from util/status (re-exported here) and the HTTP mapping derives
// from the same enum — spot-check the pairing stays coherent.
TEST(CliTest, ExitCodeTableIsTheSharedOne) {
  EXPECT_EQ(ExitCodeForStatus(Status::OK()), 0);
  EXPECT_EQ(ExitCodeForStatus(Status::InvalidArgument("x")), 2);
  EXPECT_EQ(ExitCodeForStatus(Status::NotFound("x")), 3);
  EXPECT_EQ(ExitCodeForStatus(Status::IOError("x")), 4);
  EXPECT_EQ(ExitCodeForStatus(Status::OutOfRange("x")), 5);
  EXPECT_EQ(ExitCodeForStatus(Status::FailedPrecondition("x")), 6);
  EXPECT_EQ(ExitCodeForStatus(Status::Internal("x")), 7);
  EXPECT_EQ(ExitCodeForStatus(Status::DeadlineExceeded("x")), 8);
  EXPECT_EQ(ExitCodeForStatus(Status::Cancelled("x")), 9);
}

TEST(CliTest, UnknownCommand) {
  std::ostringstream out;
  EXPECT_EQ(RunCli({"frobnicate"}, out), 1);
  EXPECT_NE(out.str().find("unknown command"), std::string::npos);
}

TEST(CliTest, SimulateRequiresOutputs) {
  std::ostringstream out;
  EXPECT_EQ(RunCli({"simulate"}, out), 2);  // InvalidArgument
  EXPECT_NE(out.str().find("out-p"), std::string::npos);
}

TEST(CliTest, SimulateRejectsUnknownConfig) {
  std::ostringstream out;
  int rc = RunCli({"simulate", "--out-p", Tmp("x.csv"), "--out-q",
                   Tmp("y.csv"), "--config", "ZZ"},
                  out);
  EXPECT_EQ(rc, 2);  // InvalidArgument
  EXPECT_NE(out.str().find("unknown config"), std::string::npos);
}

TEST(CliTest, EndToEndPipeline) {
  TempFiles files;
  std::string p_csv = files.Add("cli_p.csv");
  std::string q_csv = files.Add("cli_q.csv");
  std::string rej = files.Add("cli_rej.model");
  std::string acc = files.Add("cli_acc.model");
  std::string gj = files.Add("cli_out.geojson");

  // simulate
  {
    std::ostringstream out;
    int rc = RunCli({"simulate", "--out-p", p_csv, "--out-q", q_csv,
                     "--config", "SD", "--objects", "40", "--seed", "5"},
                    out);
    ASSERT_EQ(rc, 0) << out.str();
    EXPECT_NE(out.str().find("simulated SD"), std::string::npos);
  }
  // stats
  {
    std::ostringstream out;
    ASSERT_EQ(RunCli({"stats", "--db", p_csv}, out), 0) << out.str();
    EXPECT_NE(out.str().find("trajectories=40"), std::string::npos);
  }
  // train
  {
    std::ostringstream out;
    int rc = RunCli({"train", "--p", p_csv, "--q", q_csv,
                     "--out-rejection", rej, "--out-acceptance", acc},
                    out);
    ASSERT_EQ(rc, 0) << out.str();
    EXPECT_NE(out.str().find("trained models"), std::string::npos);
    EXPECT_TRUE(std::filesystem::exists(rej));
    EXPECT_TRUE(std::filesystem::exists(acc));
  }
  // link (single query)
  {
    std::ostringstream out;
    int rc = RunCli({"link", "--p", p_csv, "--q", q_csv, "--query",
                     "log-0", "--matcher", "nb", "--phi", "0.05"},
                    out);
    ASSERT_EQ(rc, 0) << out.str();
    EXPECT_NE(out.str().find("log-0 ->"), std::string::npos);
  }
  // export
  {
    std::ostringstream out;
    ASSERT_EQ(RunCli({"export", "--db", q_csv, "--out", gj}, out), 0)
        << out.str();
    EXPECT_TRUE(std::filesystem::exists(gj));
  }
}

TEST(CliTest, ConvertRoundTripsAndFtbInputsLinkIdentically) {
  TempFiles files;
  std::string p_csv = files.Add("cli_ftb_p.csv");
  std::string q_csv = files.Add("cli_ftb_q.csv");
  std::string q_ftb = files.Add("cli_ftb_q.ftb");
  std::string q2_csv = files.Add("cli_ftb_q2.csv");
  {
    std::ostringstream out;
    ASSERT_EQ(RunCli({"simulate", "--out-p", p_csv, "--out-q", q_csv,
                      "--config", "SD", "--objects", "20", "--seed", "5"},
                     out),
              0)
        << out.str();
  }
  // CSV -> FTB; magic-byte sniffing then accepts it anywhere.
  {
    std::ostringstream out;
    ASSERT_EQ(RunCli({"convert", "--in", q_csv, "--out", q_ftb}, out), 0)
        << out.str();
    EXPECT_NE(out.str().find("(FTB)"), std::string::npos);
  }
  std::string link_csv, link_ftb;
  {
    std::ostringstream out;
    ASSERT_EQ(RunCli({"link", "--p", p_csv, "--q", q_csv, "--query",
                      "log-0", "--matcher", "alpha"},
                     out),
              0)
        << out.str();
    link_csv = out.str();
  }
  {
    std::ostringstream out;
    ASSERT_EQ(RunCli({"link", "--p", p_csv, "--q", q_ftb, "--query",
                      "log-0", "--matcher", "alpha"},
                     out),
              0)
        << out.str();
    link_ftb = out.str();
  }
  EXPECT_EQ(link_csv, link_ftb);
  // FTB -> CSV round-trip preserves every record.
  {
    std::ostringstream out;
    ASSERT_EQ(
        RunCli({"convert", "--in", q_ftb, "--out", q2_csv, "--to", "csv"},
               out),
        0)
        << out.str();
  }
  auto a = io::ReadCsv(q_csv, "a");
  auto b = io::ReadCsv(q2_csv, "b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(io::ToCsvString(a.value()), io::ToCsvString(b.value()));
}

// `link --json` emits one machine-readable JSON object per query line
// — the same serializer the serve daemon uses, so downstream tooling
// (and the CI byte-identity check) can diff the two paths.
TEST(CliTest, LinkJsonEmitsParseableObjects) {
  TempFiles files;
  std::string p_csv = files.Add("cli_json_p.csv");
  std::string q_csv = files.Add("cli_json_q.csv");
  {
    std::ostringstream out;
    ASSERT_EQ(RunCli({"simulate", "--out-p", p_csv, "--out-q", q_csv,
                      "--config", "SD", "--objects", "20", "--seed", "5"},
                     out),
              0)
        << out.str();
  }
  std::ostringstream out;
  ASSERT_EQ(RunCli({"link", "--p", p_csv, "--q", q_csv, "--query", "log-0",
                    "--matcher", "alpha", "--json"},
                   out),
            0)
      << out.str();
  std::istringstream lines(out.str());
  std::string line;
  size_t objects = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    auto parsed = io::ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << line;
    EXPECT_EQ(parsed.value().Find("query")->AsString(), "log-0");
    ASSERT_NE(parsed.value().Find("truncated"), nullptr);
    ASSERT_NE(parsed.value().Find("candidates"), nullptr);
    ++objects;
  }
  EXPECT_EQ(objects, 1u);
}

TEST(CliTest, LinkBlockingGuaranteedIsByteIdentical) {
  TempFiles files;
  std::string p_csv = files.Add("cli_blk_p.csv");
  std::string q_csv = files.Add("cli_blk_q.csv");
  {
    std::ostringstream out;
    ASSERT_EQ(RunCli({"simulate", "--out-p", p_csv, "--out-q", q_csv,
                      "--config", "SD", "--objects", "25", "--seed", "6"},
                     out),
              0)
        << out.str();
  }
  std::ostringstream off, guaranteed;
  ASSERT_EQ(RunCli({"link", "--p", p_csv, "--q", q_csv, "--json"}, off), 0);
  ASSERT_EQ(RunCli({"link", "--p", p_csv, "--q", q_csv, "--json",
                    "--blocking", "guaranteed"},
                   guaranteed),
            0);
  // The serve wire format covers every index, score, and p-value: one
  // string compare proves the accept sets identical.
  EXPECT_EQ(off.str(), guaranteed.str());

  // Aggressive mode runs (results may legitimately differ).
  std::ostringstream aggressive;
  EXPECT_EQ(RunCli({"link", "--p", p_csv, "--q", q_csv, "--json",
                    "--blocking", "aggressive"},
                   aggressive),
            0);

  // Bad mode and bad tuning are rejected up front.
  std::ostringstream err1, err2;
  EXPECT_EQ(RunCli({"link", "--p", p_csv, "--q", q_csv, "--blocking",
                    "sometimes"},
                   err1),
            2);
  EXPECT_EQ(RunCli({"link", "--p", p_csv, "--q", q_csv, "--blocking",
                    "guaranteed", "--blocking-cell-m", "-3"},
                   err2),
            2);
}

TEST(CliTest, LinkRejectsBadMatcher) {
  TempFiles files;
  std::string p_csv = files.Add("cli_p2.csv");
  std::string q_csv = files.Add("cli_q2.csv");
  std::ostringstream out;
  ASSERT_EQ(RunCli({"simulate", "--out-p", p_csv, "--out-q", q_csv,
                    "--config", "SD", "--objects", "10"},
                   out),
            0);
  std::ostringstream out2;
  int rc = RunCli({"link", "--p", p_csv, "--q", q_csv, "--matcher",
                   "bogus"},
                  out2);
  EXPECT_EQ(rc, 2);  // InvalidArgument
  EXPECT_NE(out2.str().find("--matcher"), std::string::npos);
}

TEST(CliTest, LinkUnknownQueryLabel) {
  TempFiles files;
  std::string p_csv = files.Add("cli_p3.csv");
  std::string q_csv = files.Add("cli_q3.csv");
  std::ostringstream out;
  ASSERT_EQ(RunCli({"simulate", "--out-p", p_csv, "--out-q", q_csv,
                    "--config", "SD", "--objects", "10"},
                   out),
            0);
  std::ostringstream out2;
  EXPECT_EQ(RunCli({"link", "--p", p_csv, "--q", q_csv, "--query",
                    "no-such-label"},
                   out2),
            3);  // NotFound
  EXPECT_NE(out2.str().find("NotFound"), std::string::npos);
}

TEST(CliTest, ValidateDiagnoseCalibrateEnrich) {
  TempFiles files;
  std::string p_csv = files.Add("cli_p4.csv");
  std::string q_csv = files.Add("cli_q4.csv");
  std::string clean_csv = files.Add("cli_clean4.csv");
  std::ostringstream sim_out;
  ASSERT_EQ(RunCli({"simulate", "--out-p", p_csv, "--out-q", q_csv,
                    "--config", "SD", "--objects", "25", "--seed", "9"},
                   sim_out),
            0);
  {
    std::ostringstream out;
    ASSERT_EQ(RunCli({"validate", "--db", p_csv, "--sanitized-out",
                      clean_csv},
                     out),
              0)
        << out.str();
    EXPECT_NE(out.str().find("trajectories=25"), std::string::npos);
    EXPECT_TRUE(std::filesystem::exists(clean_csv));
  }
  {
    std::ostringstream out;
    ASSERT_EQ(RunCli({"diagnose", "--p", p_csv, "--q", q_csv}, out), 0)
        << out.str();
    EXPECT_NE(out.str().find("mean_js_bits"), std::string::npos);
  }
  {
    std::ostringstream out;
    ASSERT_EQ(RunCli({"calibrate", "--p", p_csv, "--q", q_csv,
                      "--budget", "5", "--queries", "10"},
                     out),
              0)
        << out.str();
    EXPECT_NE(out.str().find("calibrated phi_r="), std::string::npos);
  }
  {
    std::ostringstream out;
    ASSERT_EQ(RunCli({"enrich", "--p", p_csv, "--q", q_csv, "--query",
                      "log-1", "--candidate", "trip-1"},
                     out),
              0)
        << out.str();
    EXPECT_NE(out.str().find("linked: log-1 <-> trip-1"),
              std::string::npos);
    EXPECT_NE(out.str().find("densification"), std::string::npos);
  }
  {
    std::ostringstream out;
    EXPECT_EQ(RunCli({"enrich", "--p", p_csv, "--q", q_csv, "--query",
                      "nope", "--candidate", "trip-1"},
                     out),
              3);  // NotFound
  }
}

TEST(CliTest, StatsMissingFile) {
  std::ostringstream out;
  EXPECT_EQ(RunCli({"stats", "--db", "/nonexistent/f.csv"}, out),
            4);  // IOError
  EXPECT_NE(out.str().find("IOError"), std::string::npos);
}

// ----------------------------------------------------- Robustness flags

TEST(CliTest, ErrorsGoToTheErrorStream) {
  std::ostringstream out, err;
  EXPECT_EQ(RunCli({"stats", "--db", "/nonexistent/f.csv"}, out, err), 4);
  EXPECT_TRUE(out.str().empty()) << out.str();
  EXPECT_NE(err.str().find("IOError"), std::string::npos);
}

TEST(CliTest, LenientLoadQuarantinesCorruptRows) {
  TempFiles files;
  std::string db_csv = files.Add("cli_corrupt.csv");
  std::string sidecar = files.Add("cli_quar");
  std::string sidecar_file = sidecar + ".db.csv";
  {
    std::ofstream f(db_csv);
    f << "label,owner,t,x,y\n"
      << "a,1,0,0,0\n"
      << "a,1,60,30,30\n"
      << "a,1,120,bogus,30\n"
      << "b,2,0,5,5\n";
  }
  // Strict load fails with the row-level reason...
  std::ostringstream strict_out, strict_err;
  EXPECT_EQ(RunCli({"stats", "--db", db_csv}, strict_out, strict_err), 4);
  EXPECT_NE(strict_err.str().find("line 4"), std::string::npos)
      << strict_err.str();
  // ...and --lenient loads the clean remainder, reporting the rest.
  std::ostringstream out;
  ASSERT_EQ(RunCli({"stats", "--db", db_csv, "--lenient",
                    "--quarantine-out", sidecar},
                   out),
            0)
      << out.str();
  EXPECT_NE(out.str().find("quarantined 1/4 rows"), std::string::npos)
      << out.str();
  EXPECT_NE(out.str().find("unparseable"), std::string::npos);
  EXPECT_NE(out.str().find("trajectories=2"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(sidecar_file));
  files.paths.push_back(sidecar_file);
}

TEST(CliTest, FailpointsFlagInjectsFaults) {
  TempFiles files;
  std::string p_csv = files.Add("cli_fp_p.csv");
  std::string q_csv = files.Add("cli_fp_q.csv");
  std::ostringstream sim_out;
  ASSERT_EQ(RunCli({"simulate", "--out-p", p_csv, "--out-q", q_csv,
                    "--config", "SD", "--objects", "10"},
                   sim_out),
            0);
  {
    std::ostringstream out, err;
    int rc = RunCli({"stats", "--db", p_csv, "--failpoints",
                     "io.read_csv=error"},
                    out, err);
    failpoint::DisarmAll();
    EXPECT_EQ(rc, 7);  // Internal
    EXPECT_NE(err.str().find("failpoint"), std::string::npos)
        << err.str();
  }
  {
    std::ostringstream out, err;
    int rc = RunCli({"stats", "--db", p_csv, "--failpoints",
                     "io.read_csv=explode"},
                    out, err);
    failpoint::DisarmAll();
    EXPECT_EQ(rc, 2);  // InvalidArgument: malformed spec
  }
  {
    // Disarmed again: the same command succeeds.
    std::ostringstream out;
    EXPECT_EQ(RunCli({"stats", "--db", p_csv}, out), 0) << out.str();
  }
}

// ------------------------------------------------------- Observability

std::string ReadWholeFile(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST(CliTest, MetricsOutWritesJsonSnapshot) {
  TempFiles files;
  std::string p_csv = files.Add("cli_mx_p.csv");
  std::string q_csv = files.Add("cli_mx_q.csv");
  std::string metrics = files.Add("cli_mx.json");
  std::ostringstream sim_out;
  ASSERT_EQ(RunCli({"simulate", "--out-p", p_csv, "--out-q", q_csv,
                    "--config", "SD", "--objects", "10"},
                   sim_out),
            0);
  std::ostringstream out;
  ASSERT_EQ(RunCli({"link", "--p", p_csv, "--q", q_csv, "--matcher",
                    "alpha", "--metrics-out", metrics},
                   out),
            0)
      << out.str();
  std::string dump = ReadWholeFile(metrics);
  EXPECT_NE(dump.find("\"counters\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("ftl_query_total"), std::string::npos);
  EXPECT_NE(dump.find("ftl_ingest_rows_total"), std::string::npos);
  EXPECT_NE(dump.find("ftl_query_latency_us"), std::string::npos);
}

TEST(CliTest, MetricsOutPromExtensionSelectsPrometheus) {
  TempFiles files;
  std::string p_csv = files.Add("cli_mp_p.csv");
  std::string q_csv = files.Add("cli_mp_q.csv");
  std::string metrics = files.Add("cli_mp.prom");
  std::ostringstream sim_out;
  ASSERT_EQ(RunCli({"simulate", "--out-p", p_csv, "--out-q", q_csv,
                    "--config", "SD", "--objects", "10"},
                   sim_out),
            0);
  std::ostringstream out;
  ASSERT_EQ(RunCli({"stats", "--db", p_csv, "--metrics-out", metrics},
                   out),
            0);
  std::string dump = ReadWholeFile(metrics);
  EXPECT_NE(dump.find("# TYPE ftl_ingest_rows_total counter"),
            std::string::npos)
      << dump;
}

TEST(CliTest, MetricsOutWrittenEvenOnCommandFailure) {
  TempFiles files;
  std::string metrics = files.Add("cli_mf.json");
  std::ostringstream out, err;
  EXPECT_EQ(RunCli({"stats", "--db", "/nonexistent/f.csv",
                    "--metrics-out", metrics},
                   out, err),
            4);  // the command's IOError wins the exit code
  EXPECT_TRUE(std::filesystem::exists(metrics));
  EXPECT_NE(ReadWholeFile(metrics).find("\"counters\""),
            std::string::npos);
}

TEST(CliTest, MetricsSubcommandDumps) {
  TempFiles files;
  std::string p_csv = files.Add("cli_ms_p.csv");
  std::string q_csv = files.Add("cli_ms_q.csv");
  std::ostringstream sim_out;
  ASSERT_EQ(RunCli({"simulate", "--out-p", p_csv, "--out-q", q_csv,
                    "--config", "SD", "--objects", "10"},
                   sim_out),
            0);
  std::ostringstream stats_out;
  ASSERT_EQ(RunCli({"stats", "--db", p_csv}, stats_out), 0);
  std::ostringstream prom;
  EXPECT_EQ(RunCli({"metrics"}, prom), 0);
  EXPECT_NE(prom.str().find("# TYPE ftl_ingest_rows_total counter"),
            std::string::npos)
      << prom.str();
  std::ostringstream json;
  EXPECT_EQ(RunCli({"metrics", "--format", "json"}, json), 0);
  EXPECT_NE(json.str().find("\"counters\""), std::string::npos);
  std::ostringstream bad, bad_err;
  EXPECT_EQ(RunCli({"metrics", "--format", "xml"}, bad, bad_err), 2);
}

}  // namespace
}  // namespace ftl::tools
