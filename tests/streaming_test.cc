#include <gtest/gtest.h>

#include <algorithm>

#include "core/alpha_filter.h"
#include "core/streaming.h"
#include "stats/poisson_binomial.h"
#include "sim/population_sim.h"
#include "util/rng.h"

namespace ftl::core {
namespace {

using traj::Record;
using traj::Trajectory;

Record R(double x, double y, traj::Timestamp t) { return Record{{x, y}, t}; }

ModelPair SyntheticModels() {
  ModelPair m;
  m.rejection = CompatibilityModel(60, std::vector<double>(10, 0.02));
  m.acceptance = CompatibilityModel(60, std::vector<double>(10, 0.70));
  return m;
}

EvidenceOptions Ev() {
  EvidenceOptions o;
  o.time_unit_seconds = 60;
  o.horizon_units = 10;
  return o;
}

TEST(StreamingTest, DuplicateWatchRejected) {
  StreamingLinker linker(SyntheticModels(), Ev());
  EXPECT_TRUE(linker.AddWatch("w").ok());
  EXPECT_FALSE(linker.AddWatch("w").ok());
}

TEST(StreamingTest, UnregisteredQueryLabelRejected) {
  StreamingLinker linker(SyntheticModels(), Ev());
  Status s = linker.Ingest(StreamSide::kQuery, "ghost", R(0, 0, 0));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(StreamingTest, OutOfOrderIngestRejected) {
  StreamingLinker linker(SyntheticModels(), Ev());
  ASSERT_TRUE(linker.AddWatch("w").ok());
  ASSERT_TRUE(linker.Ingest(StreamSide::kCandidate, "c", R(0, 0, 100)).ok());
  Status s = linker.Ingest(StreamSide::kCandidate, "c", R(0, 0, 50));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // Equal timestamps are fine.
  EXPECT_TRUE(linker.Ingest(StreamSide::kCandidate, "c2", R(0, 0, 100)).ok());
}

TEST(StreamingTest, UnknownLabelsInLookups) {
  StreamingLinker linker(SyntheticModels(), Ev());
  ASSERT_TRUE(linker.AddWatch("w").ok());
  EXPECT_FALSE(linker.Belief("nope", "c").ok());
  EXPECT_FALSE(linker.Belief("w", "nope").ok());
  EXPECT_FALSE(linker.RankedCandidates("nope").ok());
}

TEST(StreamingTest, CandidateAutoRegistered) {
  StreamingLinker linker(SyntheticModels(), Ev());
  ASSERT_TRUE(linker.AddWatch("w").ok());
  ASSERT_TRUE(linker.Ingest(StreamSide::kCandidate, "c1", R(0, 0, 0)).ok());
  ASSERT_TRUE(linker.Ingest(StreamSide::kCandidate, "c2", R(0, 0, 10)).ok());
  EXPECT_EQ(linker.candidate_labels().size(), 2u);
  EXPECT_TRUE(linker.Belief("w", "c1").ok());
}

/// Reference: batch evidence for the same record streams.
MutualSegmentEvidence BatchEvidence(const std::vector<Record>& w_records,
                                    const std::vector<Record>& c_records) {
  Trajectory p("w", 0, w_records);
  Trajectory q("c", 1, c_records);
  return CollectEvidence(p, q, Ev());
}

TEST(StreamingTest, MatchesBatchEvidenceSimpleInterleave) {
  StreamingLinker linker(SyntheticModels(), Ev());
  ASSERT_TRUE(linker.AddWatch("w").ok());
  std::vector<Record> wr = {R(0, 0, 0), R(100, 0, 120), R(200, 0, 240)};
  std::vector<Record> cr = {R(50, 0, 60), R(1e6, 0, 180)};
  // Merge manually in time order.
  ASSERT_TRUE(linker.Ingest(StreamSide::kQuery, "w", wr[0]).ok());
  ASSERT_TRUE(linker.Ingest(StreamSide::kCandidate, "c", cr[0]).ok());
  ASSERT_TRUE(linker.Ingest(StreamSide::kQuery, "w", wr[1]).ok());
  ASSERT_TRUE(linker.Ingest(StreamSide::kCandidate, "c", cr[1]).ok());
  ASSERT_TRUE(linker.Ingest(StreamSide::kQuery, "w", wr[2]).ok());

  auto belief = linker.Belief("w", "c");
  ASSERT_TRUE(belief.ok());
  auto batch = BatchEvidence(wr, cr);
  EXPECT_EQ(belief.value().informative_segments, batch.size());
  EXPECT_EQ(belief.value().incompatible, batch.ObservedIncompatible());
}

TEST(StreamingTest, MatchesBatchEvidenceRandomized) {
  // Property: for random streams, incremental evidence == batch
  // evidence on every prefix boundary we probe.
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Record> wr, cr;
    int64_t t = 0;
    std::vector<std::pair<StreamSide, Record>> events;
    for (int i = 0; i < 60; ++i) {
      t += rng.UniformInt(5, 400);
      Record r = R(rng.Uniform(0, 20000), rng.Uniform(0, 20000), t);
      if (rng.Bernoulli(0.5)) {
        wr.push_back(r);
        events.emplace_back(StreamSide::kQuery, r);
      } else {
        cr.push_back(r);
        events.emplace_back(StreamSide::kCandidate, r);
      }
    }
    StreamingLinker linker(SyntheticModels(), Ev());
    ASSERT_TRUE(linker.AddWatch("w").ok());
    for (const auto& [side, rec] : events) {
      ASSERT_TRUE(linker
                      .Ingest(side, side == StreamSide::kQuery ? "w" : "c",
                              rec)
                      .ok());
    }
    auto belief = linker.Belief("w", "c");
    ASSERT_TRUE(belief.ok());
    auto batch = BatchEvidence(wr, cr);
    EXPECT_EQ(belief.value().informative_segments, batch.size())
        << "trial " << trial;
    EXPECT_EQ(belief.value().incompatible, batch.ObservedIncompatible())
        << "trial " << trial;
  }
}

TEST(StreamingTest, BeliefPValuesMatchBatchClassifier) {
  StreamingLinker linker(SyntheticModels(), Ev());
  ASSERT_TRUE(linker.AddWatch("w").ok());
  std::vector<Record> wr, cr;
  int64_t t = 0;
  Rng rng(7);
  std::vector<std::pair<StreamSide, Record>> events;
  for (int i = 0; i < 40; ++i) {
    t += rng.UniformInt(10, 200);
    Record r = R(rng.Uniform(0, 5000), rng.Uniform(0, 5000), t);
    if (i % 2 == 0) {
      wr.push_back(r);
      events.emplace_back(StreamSide::kQuery, r);
    } else {
      cr.push_back(r);
      events.emplace_back(StreamSide::kCandidate, r);
    }
  }
  for (const auto& [side, rec] : events) {
    ASSERT_TRUE(
        linker.Ingest(side, side == StreamSide::kQuery ? "w" : "c", rec)
            .ok());
  }
  auto belief = linker.Belief("w", "c");
  ASSERT_TRUE(belief.ok());

  ModelPair models = SyntheticModels();
  auto batch = BatchEvidence(wr, cr);
  int64_t k = batch.ObservedIncompatible();
  stats::PoissonBinomial rej(batch.ProbsUnder(models.rejection));
  stats::PoissonBinomial acc(batch.ProbsUnder(models.acceptance));
  EXPECT_NEAR(belief.value().p1, rej.UpperTailPValue(k), 1e-12);
  EXPECT_NEAR(belief.value().p2, acc.LowerTailPValue(k), 1e-12);
}

TEST(StreamingTest, RankedCandidatesSortedAndComplete) {
  StreamingLinker linker(SyntheticModels(), Ev());
  ASSERT_TRUE(linker.AddWatch("w").ok());
  Rng rng(13);
  int64_t t = 0;
  for (int i = 0; i < 200; ++i) {
    t += rng.UniformInt(5, 120);
    double far = rng.Bernoulli(0.3) ? 5e5 : 0.0;
    std::string label = "c" + std::to_string(i % 5);
    if (i % 4 == 0) {
      ASSERT_TRUE(
          linker.Ingest(StreamSide::kQuery, "w", R(0, 0, t)).ok());
    } else {
      ASSERT_TRUE(
          linker.Ingest(StreamSide::kCandidate, label, R(far, 0, t)).ok());
    }
  }
  auto ranked = linker.RankedCandidates("w");
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(ranked.value().size(), 5u);
  for (size_t i = 1; i < ranked.value().size(); ++i) {
    EXPECT_GE(ranked.value()[i - 1].score, ranked.value()[i].score);
  }
}

TEST(StreamingTest, LiveLinkingFindsTruePartner) {
  // End-to-end: replay a small simulated population as a merged stream;
  // the watch's true partner should rank first.
  sim::PopulationOptions po;
  po.num_persons = 25;
  po.duration_days = 7;
  po.cdr_accesses_per_day = 20.0;
  po.transit_accesses_per_day = 20.0;
  po.seed = 321;
  auto data = sim::SimulatePopulation(po);

  ModelTrainingOptions to;
  to.horizon_units = 30;
  auto models = BuildModels(data.cdr_db, data.transit_db, to);
  ASSERT_TRUE(models.ok());
  EvidenceOptions ev;
  ev.vmax_mps = to.vmax_mps;
  ev.time_unit_seconds = to.time_unit_seconds;
  ev.horizon_units = to.horizon_units;

  StreamingLinker linker(models.value(), ev);
  const Trajectory& watch = data.cdr_db[4];
  ASSERT_TRUE(linker.AddWatch(watch.label()).ok());

  // Merge the watch's records with ALL transit records into one stream.
  struct Event {
    traj::Timestamp t;
    StreamSide side;
    const std::string* label;
    Record rec;
  };
  std::vector<Event> events;
  for (const auto& r : watch.records()) {
    events.push_back({r.t, StreamSide::kQuery, &watch.label(), r});
  }
  for (const auto& cand : data.transit_db) {
    for (const auto& r : cand.records()) {
      events.push_back({r.t, StreamSide::kCandidate, &cand.label(), r});
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.t < b.t; });
  for (const auto& e : events) {
    ASSERT_TRUE(linker.Ingest(e.side, *e.label, e.rec).ok());
  }

  auto ranked = linker.RankedCandidates(watch.label());
  ASSERT_TRUE(ranked.ok());
  ASSERT_FALSE(ranked.value().empty());
  size_t truth = data.transit_db.Find(ranked.value()[0].candidate_label);
  ASSERT_NE(truth, traj::TrajectoryDatabase::npos);
  EXPECT_EQ(data.transit_db[truth].owner(), watch.owner());
}

}  // namespace
}  // namespace ftl::core
