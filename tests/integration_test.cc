#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/engine.h"
#include "eval/metrics.h"
#include "eval/workload.h"
#include "io/csv.h"
#include "io/model_io.h"
#include "sim/population_sim.h"
#include "sim/scenario.h"

namespace ftl {
namespace {

/// End-to-end: simulate a population exposing two services, train, link,
/// and verify the paper's headline claim — high perceptiveness at low
/// selectiveness — holds on our synthetic substitute data.
TEST(IntegrationTest, PopulationLinkingEndToEnd) {
  sim::PopulationOptions po;
  po.num_persons = 80;
  po.duration_days = 10;
  po.cdr_accesses_per_day = 15.0;
  po.transit_accesses_per_day = 8.0;
  po.seed = 1001;
  auto data = sim::SimulatePopulation(po);

  core::EngineOptions eo;
  eo.training.horizon_units = 40;
  eo.training.acceptance_pairs_per_db = 600;
  eo.alpha = {0.01, 0.3};
  eo.naive_bayes.phi_r = 0.05;
  core::FtlEngine engine(eo);
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());

  eval::WorkloadOptions wo;
  wo.num_queries = 40;
  wo.seed = 5;
  auto workload = eval::MakeWorkload(data.cdr_db, data.transit_db, wo);
  ASSERT_GE(workload.queries.size(), 30u);

  for (auto matcher :
       {core::Matcher::kAlphaFilter, core::Matcher::kNaiveBayes}) {
    auto results =
        engine.BatchQuery(workload.queries, data.transit_db, matcher);
    ASSERT_TRUE(results.ok());
    auto m = eval::ComputeMetrics(results.value(), workload.owners,
                                  data.transit_db);
    EXPECT_GT(m.perceptiveness, 0.7)
        << "matcher=" << static_cast<int>(matcher);
    EXPECT_LT(m.selectiveness, 0.35)
        << "matcher=" << static_cast<int>(matcher);
  }
}

/// The selectiveness/perceptiveness trade-off moves the right way when
/// the Naive-Bayes prior is loosened (paper Section IV-E discussion).
TEST(IntegrationTest, PhiRTradeoffDirection) {
  sim::PopulationOptions po;
  po.num_persons = 60;
  po.duration_days = 7;
  po.cdr_accesses_per_day = 10.0;
  po.transit_accesses_per_day = 6.0;
  po.seed = 1002;
  auto data = sim::SimulatePopulation(po);

  core::EngineOptions eo;
  eo.training.horizon_units = 40;
  core::FtlEngine engine(eo);
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());

  eval::WorkloadOptions wo;
  wo.num_queries = 30;
  wo.seed = 6;
  auto workload = eval::MakeWorkload(data.cdr_db, data.transit_db, wo);

  double prev_sel = -1.0;
  for (double phi : {1e-4, 0.01, 0.3}) {
    engine.mutable_options()->naive_bayes.phi_r = phi;
    auto results = engine.BatchQuery(workload.queries, data.transit_db,
                                     core::Matcher::kNaiveBayes);
    ASSERT_TRUE(results.ok());
    auto m = eval::ComputeMetrics(results.value(), workload.owners,
                                  data.transit_db);
    EXPECT_GE(m.selectiveness, prev_sel)
        << "looser prior must not shrink the candidate sets";
    prev_sel = m.selectiveness;
  }
}

/// Sparser data hurts: SA (rate 0.006) vs SC (rate 0.01) on the same
/// fleet — perceptiveness should not improve when records are dropped.
TEST(IntegrationTest, SparsityDegradesPerceptiveness) {
  auto lo = sim::BuildDataset(sim::FindConfig("SA"), 60, 2024);
  auto hi = sim::BuildDataset(sim::FindConfig("SC"), 60, 2024);

  auto run = [](sim::DatasetPair& pair) {
    core::EngineOptions eo;
    eo.training.horizon_units = 60;
    eo.alpha = {0.001, 0.3};
    core::FtlEngine engine(eo);
    EXPECT_TRUE(engine.Train(pair.p, pair.q).ok());
    eval::WorkloadOptions wo;
    wo.num_queries = 30;
    wo.seed = 7;
    auto workload = eval::MakeWorkload(pair.p, pair.q, wo);
    auto results = engine.BatchQuery(workload.queries, pair.q,
                                     core::Matcher::kNaiveBayes);
    EXPECT_TRUE(results.ok());
    return eval::ComputeMetrics(results.value(), workload.owners, pair.q);
  };
  auto m_lo = run(lo);
  auto m_hi = run(hi);
  // Allow slack for noise at this small scale, but the dense config
  // must not be clearly worse.
  EXPECT_GE(m_hi.perceptiveness + 0.15, m_lo.perceptiveness);
}

/// Models persisted to disk load back and reproduce query results.
TEST(IntegrationTest, ModelPersistenceRoundTrip) {
  sim::PopulationOptions po;
  po.num_persons = 30;
  po.duration_days = 5;
  po.seed = 1003;
  auto data = sim::SimulatePopulation(po);

  core::FtlEngine engine;
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());

  namespace fs = std::filesystem;
  std::string rej = (fs::temp_directory_path() / "ftl_it_rej.txt").string();
  std::string acc = (fs::temp_directory_path() / "ftl_it_acc.txt").string();
  ASSERT_TRUE(io::WriteModel(engine.models().rejection, rej).ok());
  ASSERT_TRUE(io::WriteModel(engine.models().acceptance, acc).ok());

  auto r = io::ReadModel(rej);
  auto a = io::ReadModel(acc);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(a.ok());
  core::FtlEngine loaded;
  loaded.SetModels(
      core::ModelPair{std::move(r).value(), std::move(a).value()});

  auto q1 = engine.Query(data.cdr_db[0], data.transit_db,
                         core::Matcher::kAlphaFilter);
  auto q2 = loaded.Query(data.cdr_db[0], data.transit_db,
                         core::Matcher::kAlphaFilter);
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  ASSERT_EQ(q1.value().candidates.size(), q2.value().candidates.size());
  for (size_t i = 0; i < q1.value().candidates.size(); ++i) {
    EXPECT_EQ(q1.value().candidates[i].index,
              q2.value().candidates[i].index);
    EXPECT_NEAR(q1.value().candidates[i].score,
                q2.value().candidates[i].score, 1e-6);
  }
  std::remove(rej.c_str());
  std::remove(acc.c_str());
}

/// Databases persisted as CSV reload into an equivalent linking problem.
TEST(IntegrationTest, CsvPersistenceKeepsLinkability) {
  sim::PopulationOptions po;
  po.num_persons = 30;
  po.duration_days = 5;
  po.cdr_accesses_per_day = 20.0;
  po.transit_accesses_per_day = 20.0;
  po.seed = 1004;
  auto data = sim::SimulatePopulation(po);

  auto reloaded_p = io::FromCsvString(io::ToCsvString(data.cdr_db), "p");
  auto reloaded_q =
      io::FromCsvString(io::ToCsvString(data.transit_db), "q");
  ASSERT_TRUE(reloaded_p.ok());
  ASSERT_TRUE(reloaded_q.ok());

  core::FtlEngine engine;
  ASSERT_TRUE(
      engine.Train(reloaded_p.value(), reloaded_q.value()).ok());
  // A couple of queries still find their true match after the round trip.
  size_t hits = 0;
  for (size_t i = 0; i < 5; ++i) {
    auto r = engine.Query(reloaded_p.value()[i], reloaded_q.value(),
                          core::Matcher::kNaiveBayes);
    ASSERT_TRUE(r.ok());
    for (const auto& c : r.value().candidates) {
      if (reloaded_q.value()[c.index].owner() ==
          reloaded_p.value()[i].owner()) {
        ++hits;
        break;
      }
    }
  }
  EXPECT_GE(hits, 4u);
}

}  // namespace
}  // namespace ftl
