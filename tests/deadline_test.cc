// Deadline & cancellation coverage: inert options change nothing,
// fired limits produce reproducible prefix-partial results, and a
// batch under a short deadline returns quickly with per-query
// statuses instead of failing.

#include "util/deadline.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "core/engine.h"
#include "sim/population_sim.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace ftl {
namespace {

using core::EngineOptions;
using core::FtlEngine;
using core::Matcher;
using core::QueryOptions;
using core::QueryResult;

TEST(CancelTokenTest, DefaultTokenIsInert) {
  CancelToken t;
  EXPECT_FALSE(t.can_cancel());
  EXPECT_FALSE(t.cancel_requested());
  t.RequestCancel();  // no-op, must not crash
  EXPECT_FALSE(t.cancel_requested());
}

TEST(CancelTokenTest, CopiesShareTheFlag) {
  CancelToken t = CancelToken::Create();
  CancelToken copy = t;
  EXPECT_TRUE(copy.can_cancel());
  EXPECT_FALSE(copy.cancel_requested());
  t.RequestCancel();
  EXPECT_TRUE(copy.cancel_requested());
}

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.has_deadline());
  EXPECT_FALSE(d.expired());
}

TEST(DeadlineTest, PastDeadlineIsExpired) {
  Deadline d = Deadline::AfterMillis(-1);
  EXPECT_TRUE(d.has_deadline());
  EXPECT_TRUE(d.expired());
  EXPECT_FALSE(Deadline::AfterMillis(60000).expired());
}

TEST(QueryOptionsTest, CheckReportsTheFiredLimit) {
  QueryOptions inert;
  EXPECT_TRUE(inert.Check().ok());

  QueryOptions late;
  late.deadline = Deadline::AfterMillis(-1);
  EXPECT_EQ(late.Check().code(), StatusCode::kDeadlineExceeded);

  QueryOptions cancelled;
  cancelled.cancel = CancelToken::Create();
  cancelled.cancel.RequestCancel();
  EXPECT_EQ(cancelled.Check().code(), StatusCode::kCancelled);

  // Cancellation wins when both limits have fired.
  cancelled.deadline = Deadline::AfterMillis(-1);
  EXPECT_EQ(cancelled.Check().code(), StatusCode::kCancelled);
}

// ------------------------------------------------------------- engine

sim::PopulationData DeadlinePopulation(size_t persons = 20) {
  sim::PopulationOptions po;
  po.num_persons = persons;
  po.duration_days = 3;
  po.cdr_accesses_per_day = 15.0;
  po.transit_accesses_per_day = 15.0;
  po.seed = 23;
  return sim::SimulatePopulation(po);
}

EngineOptions DeadlineEngineOptions() {
  EngineOptions o;
  o.training.horizon_units = 20;
  o.training.acceptance_pairs_per_db = 100;
  o.alpha = {0.01, 0.2};
  o.naive_bayes.phi_r = 0.05;
  return o;
}

std::string Fingerprint(const QueryResult& r) {
  std::string out;
  for (const auto& c : r.candidates) {
    out += c.label + ":" + FormatDouble(c.score, 12) + ":" +
           std::to_string(c.index) + ";";
  }
  return out;
}

class EngineDeadlineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::DisarmAll();
    data_ = DeadlinePopulation();
    engine_ = FtlEngine(DeadlineEngineOptions());
    ASSERT_TRUE(engine_.Train(data_.cdr_db, data_.transit_db).ok());
  }
  void TearDown() override { failpoint::DisarmAll(); }

  sim::PopulationData data_;
  FtlEngine engine_{DeadlineEngineOptions()};
};

TEST_F(EngineDeadlineTest, InertOptionsMatchPlainQuery) {
  auto plain = engine_.Query(data_.cdr_db[0], data_.transit_db,
                             Matcher::kAlphaFilter);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  auto limited = engine_.Query(data_.cdr_db[0], data_.transit_db,
                               Matcher::kAlphaFilter, QueryOptions{});
  ASSERT_TRUE(limited.ok()) << limited.status().ToString();
  EXPECT_FALSE(limited.value().truncated);
  EXPECT_TRUE(limited.value().status.ok());
  EXPECT_EQ(limited.value().evaluated, data_.transit_db.size());
  EXPECT_EQ(Fingerprint(limited.value()), Fingerprint(plain.value()));
  EXPECT_EQ(limited.value().selectiveness, plain.value().selectiveness);
}

TEST_F(EngineDeadlineTest, PreCancelledTokenEvaluatesNothing) {
  QueryOptions qopts;
  qopts.cancel = CancelToken::Create();
  qopts.cancel.RequestCancel();
  auto r = engine_.Query(data_.cdr_db[0], data_.transit_db,
                         Matcher::kAlphaFilter, qopts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().truncated);
  EXPECT_EQ(r.value().status.code(), StatusCode::kCancelled);
  EXPECT_EQ(r.value().evaluated, 0u);
  EXPECT_TRUE(r.value().candidates.empty());
}

// The reproducibility contract: a truncated result is byte-identical
// to the full run restricted to the prefix of candidates that were
// evaluated before the limit fired.
TEST_F(EngineDeadlineTest, TruncatedResultIsPrefixOfFullRun) {
  auto full = engine_.Query(data_.cdr_db[0], data_.transit_db,
                            Matcher::kAlphaFilter);
  ASSERT_TRUE(full.ok()) << full.status().ToString();

  // Slow each candidate down so a short deadline fires mid-scan.
  failpoint::Arm("core.query.candidate", {failpoint::Action::kDelay, 5});
  QueryOptions qopts;
  qopts.deadline = Deadline::AfterMillis(20);
  qopts.check_every = 1;
  auto part = engine_.Query(data_.cdr_db[0], data_.transit_db,
                            Matcher::kAlphaFilter, qopts);
  failpoint::DisarmAll();
  ASSERT_TRUE(part.ok()) << part.status().ToString();
  ASSERT_TRUE(part.value().truncated);
  EXPECT_EQ(part.value().status.code(), StatusCode::kDeadlineExceeded);
  size_t evaluated = part.value().evaluated;
  ASSERT_LT(evaluated, data_.transit_db.size());

  // Whole-database queries evaluate candidates in index order, so the
  // expected partial result is the full result filtered to indices
  // below `evaluated` (ranking is a stable sort, so relative order of
  // the survivors is unchanged).
  QueryResult expected;
  for (const auto& c : full.value().candidates) {
    if (c.index < evaluated) expected.candidates.push_back(c);
  }
  EXPECT_EQ(Fingerprint(part.value()), Fingerprint(expected));
}

TEST_F(EngineDeadlineTest, HardFaultStillFailsTheQuery) {
  // An injected error is a real fault, not a limit: the query must
  // fail even though deadline plumbing is engaged.
  failpoint::Arm("core.query.candidate", {failpoint::Action::kError, 0});
  QueryOptions qopts;
  qopts.deadline = Deadline::AfterMillis(60000);
  auto r = engine_.Query(data_.cdr_db[0], data_.transit_db,
                         Matcher::kAlphaFilter, qopts);
  failpoint::DisarmAll();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

// The serving-layer acceptance gate: a 50 ms deadline over a >1 s
// workload returns truncated partials for the whole batch well inside
// 150 ms, without failing the batch.
TEST_F(EngineDeadlineTest, BatchQueryDeadlineReturnsPartialsQuickly) {
  std::vector<traj::Trajectory> queries(data_.cdr_db.begin(),
                                        data_.cdr_db.end());
  // ~2 ms per candidate x |Q| candidates x |P| queries >> 1 s.
  failpoint::Arm("core.query.candidate", {failpoint::Action::kDelay, 2});
  QueryOptions qopts;
  qopts.deadline = Deadline::AfterMillis(50);
  qopts.check_every = 1;
  auto start = std::chrono::steady_clock::now();
  auto batch = engine_.BatchQuery(queries, data_.transit_db,
                                  Matcher::kAlphaFilter, qopts);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  failpoint::DisarmAll();

  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_LT(elapsed.count(), 150) << "deadline did not bound latency";
  ASSERT_EQ(batch.value().size(), queries.size());
  size_t truncated = 0;
  for (const auto& r : batch.value()) {
    if (!r.truncated) continue;
    ++truncated;
    EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  }
  EXPECT_GT(truncated, 0u);
  // The deadline fired long before the tail of the batch: queries that
  // never started must report an empty truncated result.
  const auto& last = batch.value().back();
  EXPECT_TRUE(last.truncated);
  EXPECT_EQ(last.evaluated, 0u);
}

TEST_F(EngineDeadlineTest, BatchQueryInertOptionsMatchPlainBatch) {
  std::vector<traj::Trajectory> queries(data_.cdr_db.begin(),
                                        data_.cdr_db.begin() + 5);
  auto plain = engine_.BatchQuery(queries, data_.transit_db,
                                  Matcher::kNaiveBayes);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  auto limited = engine_.BatchQuery(queries, data_.transit_db,
                                    Matcher::kNaiveBayes, QueryOptions{});
  ASSERT_TRUE(limited.ok()) << limited.status().ToString();
  ASSERT_EQ(limited.value().size(), plain.value().size());
  for (size_t i = 0; i < plain.value().size(); ++i) {
    EXPECT_FALSE(limited.value()[i].truncated);
    EXPECT_EQ(Fingerprint(limited.value()[i]), Fingerprint(plain.value()[i]));
  }
}

}  // namespace
}  // namespace ftl
