#include <gtest/gtest.h>

#include "traj/resample.h"

namespace ftl::traj {
namespace {

Record R(double x, double y, Timestamp t) { return Record{{x, y}, t}; }

TEST(ResampleTest, UniformCadence) {
  Trajectory t("t", 1, {R(0, 0, 0), R(100, 0, 100)});
  Trajectory r = ResampleUniform(t, 25);
  ASSERT_EQ(r.size(), 5u);
  for (size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(r[i].t, static_cast<Timestamp>(i * 25));
    EXPECT_NEAR(r[i].location.x, static_cast<double>(i) * 25.0, 1e-9);
  }
}

TEST(ResampleTest, MultiSegmentInterpolation) {
  Trajectory t("t", 1, {R(0, 0, 0), R(100, 0, 10), R(100, 200, 20)});
  Trajectory r = ResampleUniform(t, 5);
  ASSERT_EQ(r.size(), 5u);
  EXPECT_NEAR(r[1].location.x, 50.0, 1e-9);   // t=5, mid first leg
  EXPECT_NEAR(r[3].location.y, 100.0, 1e-9);  // t=15, mid second leg
}

TEST(ResampleTest, DegenerateInputsReturnedUnchanged) {
  Trajectory empty;
  EXPECT_TRUE(ResampleUniform(empty, 10).empty());
  Trajectory one("t", 1, {R(5, 5, 42)});
  EXPECT_EQ(ResampleUniform(one, 10).size(), 1u);
  Trajectory two("t", 1, {R(0, 0, 0), R(1, 1, 10)});
  EXPECT_EQ(ResampleUniform(two, 0).size(), 2u);  // bad interval: no-op
}

TEST(ResampleTest, PreservesLabelAndOwner) {
  Trajectory t("taxi-9", 9, {R(0, 0, 0), R(10, 0, 100)});
  Trajectory r = ResampleUniform(t, 10);
  EXPECT_EQ(r.label(), "taxi-9");
  EXPECT_EQ(r.owner(), 9u);
  EXPECT_TRUE(r.IsSorted());
}

TEST(ResampleTest, DuplicateTimestampsHandled) {
  Trajectory t("t", 1, {R(0, 0, 0), R(100, 0, 0), R(200, 0, 10)});
  Trajectory r = ResampleUniform(t, 5);
  ASSERT_GE(r.size(), 2u);
  // No NaN/garbage from the zero-length leg.
  for (size_t i = 0; i < r.size(); ++i) {
    EXPECT_TRUE(std::isfinite(r[i].location.x));
  }
}

TEST(StayPointTest, DetectsSingleDwell) {
  std::vector<Record> recs;
  // Move, dwell 1h at (1000, 0), move away.
  recs.push_back(R(0, 0, 0));
  for (int i = 0; i <= 6; ++i) {
    recs.push_back(R(1000 + i, 0, 1000 + i * 600));
  }
  recs.push_back(R(9000, 0, 10000));
  Trajectory t("t", 1, std::move(recs));
  auto sps = StayPoints(t, 100.0, 1800);
  ASSERT_EQ(sps.size(), 1u);
  EXPECT_NEAR(sps[0].centroid.x, 1003.0, 1.0);
  EXPECT_EQ(sps[0].arrive, 1000);
  EXPECT_EQ(sps[0].depart, 1000 + 6 * 600);
  EXPECT_EQ(sps[0].DurationSeconds(), 3600);
}

TEST(StayPointTest, ShortDwellIgnored) {
  std::vector<Record> recs = {R(0, 0, 0), R(1, 0, 60), R(2, 0, 120),
                              R(9000, 0, 180)};
  Trajectory t("t", 1, std::move(recs));
  EXPECT_TRUE(StayPoints(t, 100.0, 1800).empty());
}

TEST(StayPointTest, MultipleDwells) {
  std::vector<Record> recs;
  for (int i = 0; i < 5; ++i) recs.push_back(R(0, 0, i * 1000));
  recs.push_back(R(50000, 0, 10000));
  for (int i = 0; i < 5; ++i) {
    recs.push_back(R(50000, 0, 20000 + i * 1000));
  }
  Trajectory t("t", 1, std::move(recs));
  auto sps = StayPoints(t, 200.0, 3000);
  ASSERT_EQ(sps.size(), 2u);
  EXPECT_NEAR(sps[0].centroid.x, 0.0, 1.0);
  EXPECT_NEAR(sps[1].centroid.x, 50000.0, 1.0);
}

TEST(StayPointTest, EmptyTrajectory) {
  Trajectory t;
  EXPECT_TRUE(StayPoints(t, 100.0, 60).empty());
}

}  // namespace
}  // namespace ftl::traj
