#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "analysis/mutual_segment_analysis.h"
#include "stats/descriptive.h"
#include "stats/distributions.h"
#include "stats/goodness_of_fit.h"

namespace ftl::analysis {
namespace {

// ----------------------------------------------- AlternationProbability

TEST(AlternationTest, DegenerateOneSided) {
  EXPECT_DOUBLE_EQ(AlternationProbability(0, 5, 0), 1.0);
  EXPECT_DOUBLE_EQ(AlternationProbability(5, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(AlternationProbability(0, 5, 1), 0.0);
  EXPECT_DOUBLE_EQ(AlternationProbability(0, 0, 0), 1.0);
}

TEST(AlternationTest, OneOfEach) {
  // Sequences PQ and QP: always exactly 1 alternation.
  EXPECT_DOUBLE_EQ(AlternationProbability(1, 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(AlternationProbability(1, 1, 0), 0.0);
  EXPECT_DOUBLE_EQ(AlternationProbability(1, 1, 2), 0.0);
}

TEST(AlternationTest, TwoAndOne) {
  // a=2, b=1: sequences PPQ, PQP, QPP. Alternations: 1, 2, 1.
  EXPECT_NEAR(AlternationProbability(2, 1, 1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(AlternationProbability(2, 1, 2), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(AlternationProbability(2, 1, 0), 0.0);
}

TEST(AlternationTest, SumsToOne) {
  for (int64_t a = 1; a <= 12; ++a) {
    for (int64_t b = 1; b <= 12; ++b) {
      double s = 0;
      for (int64_t x = 0; x <= a + b; ++x) {
        s += AlternationProbability(a, b, x);
      }
      EXPECT_NEAR(s, 1.0, 1e-9) << "a=" << a << " b=" << b;
    }
  }
}

TEST(AlternationTest, ExpectedValueFormula) {
  // E[alternations | a, b] = 2ab / (a + b).
  for (int64_t a = 1; a <= 10; ++a) {
    for (int64_t b = 1; b <= 10; ++b) {
      double e = 0;
      for (int64_t x = 0; x <= a + b; ++x) {
        e += static_cast<double>(x) * AlternationProbability(a, b, x);
      }
      double expect = 2.0 * static_cast<double>(a * b) /
                      static_cast<double>(a + b);
      EXPECT_NEAR(e, expect, 1e-8) << "a=" << a << " b=" << b;
    }
  }
}

TEST(AlternationTest, SymmetricInAB) {
  for (int64_t x = 0; x <= 8; ++x) {
    EXPECT_NEAR(AlternationProbability(3, 5, x),
                AlternationProbability(5, 3, x), 1e-12);
  }
}

TEST(AlternationTest, MaxAlternations) {
  // With a == b, max alternations is 2a - 1 (perfect interleave).
  EXPECT_GT(AlternationProbability(3, 3, 5), 0.0);
  EXPECT_DOUBLE_EQ(AlternationProbability(3, 3, 6), 0.0);
  // With a = 5, b = 2: max is 2*2 = 4.
  EXPECT_GT(AlternationProbability(5, 2, 4), 0.0);
  EXPECT_DOUBLE_EQ(AlternationProbability(5, 2, 5), 0.0);
}

// ----------------------------------------------------------------- f_X(x)

TEST(MutualSegmentCountPmfTest, SumsToOne) {
  auto pmf = MutualSegmentCountPmf(0.5, 2.0, 40);
  double s = std::accumulate(pmf.begin(), pmf.end(), 0.0);
  EXPECT_NEAR(s, 1.0, 1e-6);
}

TEST(MutualSegmentCountPmfTest, ZeroProbabilityMatchesPaper) {
  // f_X(0) = e^{-λP} + e^{-λQ} - e^{-(λP+λQ)}  (one side has no events).
  double lp = 0.5, lq = 2.0;
  auto pmf = MutualSegmentCountPmf(lp, lq, 10);
  double expect = std::exp(-lp) + std::exp(-lq) - std::exp(-(lp + lq));
  EXPECT_NEAR(pmf[0], expect, 1e-9);
}

TEST(MutualSegmentCountPmfTest, MeanMatchesClosedForm) {
  for (auto [lp, lq] : std::vector<std::pair<double, double>>{
           {0.5, 2.0}, {4.0, 10.0}, {1.0, 1.0}, {3.0, 0.2}}) {
    auto pmf = MutualSegmentCountPmf(lp, lq, 80);
    double mean = 0;
    for (size_t x = 0; x < pmf.size(); ++x) {
      mean += static_cast<double>(x) * pmf[x];
    }
    EXPECT_NEAR(mean, ExpectedMutualSegments(lp, lq), 1e-4)
        << "lp=" << lp << " lq=" << lq;
  }
}

TEST(MutualSegmentCountPmfTest, MatchesSimulation) {
  double lp = 0.5, lq = 2.0;
  auto pmf = MutualSegmentCountPmf(lp, lq, 20);
  Rng rng(55);
  auto counts = SimulateMutualSegmentCounts(&rng, lp, lq, 100000);
  auto emp = stats::EmpiricalPmf(counts);
  EXPECT_LT(stats::TotalVariationDistance(emp, pmf), 0.012);
}

TEST(MutualSegmentCountPmfTest, MatchesSimulationLargerRates) {
  double lp = 4.0, lq = 10.0;
  auto pmf = MutualSegmentCountPmf(lp, lq, 40);
  Rng rng(56);
  auto counts = SimulateMutualSegmentCounts(&rng, lp, lq, 100000);
  auto emp = stats::EmpiricalPmf(counts);
  EXPECT_LT(stats::TotalVariationDistance(emp, pmf), 0.015);
}

// ------------------------------------------------------------------ E(X)

TEST(ExpectedMutualSegmentsTest, ClosedFormValues) {
  // Degenerate rates.
  EXPECT_DOUBLE_EQ(ExpectedMutualSegments(0.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(ApproxExpectedMutualSegments(0.0, 0.0), 0.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(ExpectedMutualSegments(2.0, 3.0),
                   ExpectedMutualSegments(3.0, 2.0));
}

TEST(ExpectedMutualSegmentsTest, ApproximationGapInHalfOpenInterval) {
  // Ê(X) - E(X) = 2λPλQ/(λP+λQ)^2 (1 - e^-(λP+λQ)) ∈ (0, 0.5).
  for (auto [lp, lq] : std::vector<std::pair<double, double>>{
           {0.5, 2.0}, {4.0, 10.0}, {0.1, 0.1}, {20.0, 30.0}}) {
    double gap = ApproxExpectedMutualSegments(lp, lq) -
                 ExpectedMutualSegments(lp, lq);
    EXPECT_GT(gap, 0.0);
    EXPECT_LT(gap, 0.5);
  }
}

TEST(ExpectedMutualSegmentsTest, Corollary61Bound) {
  for (auto [lp, lq] : std::vector<std::pair<double, double>>{
           {0.5, 2.0}, {4.0, 10.0}, {7.0, 7.0}}) {
    EXPECT_LT(ExpectedMutualSegments(lp, lq),
              MutualSegmentCountUpperBound(lp, lq));
    EXPECT_LE(ApproxExpectedMutualSegments(lp, lq),
              MutualSegmentCountUpperBound(lp, lq));
  }
}

TEST(ExpectedMutualSegmentsTest, MatchesSimulation) {
  Rng rng(57);
  double lp = 2.0, lq = 5.0;
  auto counts = SimulateMutualSegmentCounts(&rng, lp, lq, 200000);
  double mean = 0;
  for (int64_t c : counts) mean += static_cast<double>(c);
  mean /= static_cast<double>(counts.size());
  EXPECT_NEAR(mean, ExpectedMutualSegments(lp, lq), 0.02);
}

TEST(ExpectedMutualSegmentsTest, LimitIsTwoLambda) {
  // lim_{λQ→∞} E(X) = 2 λP.
  EXPECT_NEAR(ApproxExpectedMutualSegments(3.0, 1e9), 6.0, 1e-6);
}

// ---------------------------------------------------- Poisson approx of X

TEST(PoissonApproxTest, CloseToExactPmf) {
  // Figure 4 claim: the three curves are similar in trend; the Poisson
  // approximation is close in total variation for moderate rates.
  auto exact = MutualSegmentCountPmf(4.0, 10.0, 40);
  auto approx = MutualSegmentCountPoissonApprox(4.0, 10.0, 40);
  EXPECT_LT(stats::TotalVariationDistance(exact, approx), 0.15);
}

TEST(PoissonApproxTest, BiasShrinksWithRate) {
  double tv_small = stats::TotalVariationDistance(
      MutualSegmentCountPmf(0.5, 2.0, 30),
      MutualSegmentCountPoissonApprox(0.5, 2.0, 30));
  double tv_large = stats::TotalVariationDistance(
      MutualSegmentCountPmf(8.0, 20.0, 80),
      MutualSegmentCountPoissonApprox(8.0, 20.0, 80));
  EXPECT_LT(tv_large, tv_small);
}

// ------------------------------------------------------------------ g_Y

TEST(GapDistributionTest, PdfIsExponential) {
  EXPECT_DOUBLE_EQ(MutualSegmentGapPdf(1.0, 2.0, 0.0), 3.0);
  EXPECT_NEAR(MutualSegmentGapPdf(1.0, 2.0, 1.0), 3.0 * std::exp(-3.0),
              1e-12);
  EXPECT_NEAR(MutualSegmentGapCdf(1.0, 2.0, std::log(2.0) / 3.0), 0.5,
              1e-12);
}

TEST(GapDistributionTest, SimulatedGapsFollowExponential) {
  Rng rng(58);
  double lp = 1.0, lq = 2.0;
  auto gaps = SimulateMutualSegmentGaps(&rng, lp, lq, 20000.0);
  ASSERT_GT(gaps.size(), 10000u);
  double d = stats::KsStatistic(gaps, [lp, lq](double y) {
    return MutualSegmentGapCdf(lp, lq, y);
  });
  // Corollary 6.2: mutual-segment gaps are Exp(λP+λQ). The simulation
  // measures gaps conditioned on alternation, which matches the
  // memoryless inter-event law; allow a loose KS threshold.
  EXPECT_LT(d, 0.02);
}

TEST(GapDistributionTest, SimulatedGapMeanMatches) {
  Rng rng(59);
  double lp = 0.7, lq = 1.3;
  auto gaps = SimulateMutualSegmentGaps(&rng, lp, lq, 50000.0);
  double mean = 0;
  for (double g : gaps) mean += g;
  mean /= static_cast<double>(gaps.size());
  EXPECT_NEAR(mean, 1.0 / (lp + lq), 0.02);
}

}  // namespace
}  // namespace ftl::analysis
