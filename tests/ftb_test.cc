// Tests for the FTB binary columnar store: round-trips, byte-identical
// query results across AoS/SoA backends, corruption rejection, the
// heap fallback, and the io.read_ftb / io.write_ftb failpoints.

#include "io/ftb.h"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "io/csv.h"
#include "obs/metrics.h"
#include "sim/scenario.h"
#include "traj/flat_database.h"
#include "util/failpoint.h"

namespace ftl {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good()) << path;
}

uint32_t LoadU32(const std::string& b, size_t off) {
  uint32_t v = 0;
  std::memcpy(&v, b.data() + off, sizeof(v));
  return v;
}

uint64_t LoadU64(const std::string& b, size_t off) {
  uint64_t v = 0;
  std::memcpy(&v, b.data() + off, sizeof(v));
  return v;
}

void StoreU32(std::string* b, size_t off, uint32_t v) {
  std::memcpy(b->data() + off, &v, sizeof(v));
}

void StoreU64(std::string* b, size_t off, uint64_t v) {
  std::memcpy(b->data() + off, &v, sizeof(v));
}

// Mirrors the on-disk layout (documented in DESIGN.md §9) so tests can
// patch files surgically.
constexpr size_t kTableOffset = 48;
constexpr size_t kEntrySize = 24;
constexpr size_t kOffVersion = 8;
constexpr size_t kOffNumTrajectories = 16;
constexpr size_t kOffNumRecords = 24;
constexpr size_t kOffTableCrc = 40;
constexpr size_t kOffHeaderCrc = 44;

struct SectionEntry {
  uint32_t id = 0;
  uint32_t crc = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
};

SectionEntry FindSection(const std::string& bytes, uint32_t id) {
  for (size_t i = 0; i < 8; ++i) {
    size_t at = kTableOffset + i * kEntrySize;
    if (LoadU32(bytes, at) == id) {
      return SectionEntry{LoadU32(bytes, at), LoadU32(bytes, at + 4),
                          LoadU64(bytes, at + 8), LoadU64(bytes, at + 16)};
    }
  }
  ADD_FAILURE() << "section " << id << " not found";
  return {};
}

/// Recomputes section CRC (for `id`), table CRC, and header CRC after a
/// test patched payload bytes — producing a structurally self-consistent
/// but semantically altered file.
void ResealFile(std::string* bytes, uint32_t id) {
  for (size_t i = 0; i < 8; ++i) {
    size_t at = kTableOffset + i * kEntrySize;
    if (LoadU32(*bytes, at) != id) continue;
    uint64_t off = LoadU64(*bytes, at + 8);
    uint64_t len = LoadU64(*bytes, at + 16);
    StoreU32(bytes, at + 4, io::Crc32(bytes->data() + off, len));
  }
  StoreU32(bytes, kOffTableCrc,
           io::Crc32(bytes->data() + kTableOffset, 8 * kEntrySize));
  StoreU32(bytes, kOffHeaderCrc, io::Crc32(bytes->data(), kOffHeaderCrc));
}

traj::TrajectoryDatabase MakeDb() {
  traj::TrajectoryDatabase db("ftb-test");
  EXPECT_TRUE(db.Add(traj::Trajectory("alpha", 7,
                                      {{{1.5, -2.25}, -100},
                                       {{3.0, 4.0}, 0},
                                       {{-5.125, 6.5}, 42}}))
                  .ok());
  EXPECT_TRUE(db.Add(traj::Trajectory("beta", traj::kUnknownOwner,
                                      {{{1e6, -1e6}, 1000}}))
                  .ok());
  EXPECT_TRUE(db.Add(traj::Trajectory("empty", 9, {})).ok());
  return db;
}

class FtbTest : public ::testing::Test {
 protected:
  // Per-test filename: ctest runs each case as its own process, in
  // parallel, so a shared path would let tests clobber each other.
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = TempPath(std::string("ftl_ftb_") + info->name() + ".ftb");
  }
  void TearDown() override {
    failpoint::DisarmAll();
    std::filesystem::remove(path_);
  }
  std::string path_;
};

TEST_F(FtbTest, RoundTripPreservesEverything) {
  traj::TrajectoryDatabase db = MakeDb();
  ASSERT_TRUE(io::WriteFtb(db, path_).ok());
  EXPECT_TRUE(io::SniffFtb(path_));

  io::FtbLoadInfo info;
  auto flat = io::ReadFtb(path_, {}, &info);
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  EXPECT_GT(info.bytes, 0u);
  EXPECT_EQ(flat.value().size(), db.size());
  EXPECT_EQ(flat.value().TotalRecords(), db.TotalRecords());
  EXPECT_EQ(flat.value().name(), db.name());

  traj::TrajectoryDatabase back = flat.value().ToDatabase();
  ASSERT_EQ(back.size(), db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(back[i].label(), db[i].label());
    EXPECT_EQ(back[i].owner(), db[i].owner());
    ASSERT_EQ(back[i].size(), db[i].size());
    for (size_t j = 0; j < db[i].size(); ++j) {
      EXPECT_EQ(back[i][j].t, db[i][j].t);
      EXPECT_EQ(back[i][j].location.x, db[i][j].location.x);
      EXPECT_EQ(back[i][j].location.y, db[i][j].location.y);
    }
  }
  // Label lookup works off the interned pool.
  EXPECT_EQ(flat.value().Find("beta"), 1u);
  EXPECT_EQ(flat.value().Find("nope"), traj::FlatDatabase::npos);
}

TEST_F(FtbTest, EmptyDatabaseRoundTrips) {
  traj::TrajectoryDatabase db("nothing");
  ASSERT_TRUE(io::WriteFtb(db, path_).ok());
  auto flat = io::ReadFtb(path_);
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  EXPECT_EQ(flat.value().size(), 0u);
  EXPECT_EQ(flat.value().TotalRecords(), 0u);
  EXPECT_TRUE(flat.value().ToDatabase().empty());
}

TEST_F(FtbTest, HeapFallbackMatchesMmap) {
  ASSERT_TRUE(io::WriteFtb(MakeDb(), path_).ok());
  io::FtbReadOptions heap_opts;
  heap_opts.prefer_mmap = false;
  io::FtbLoadInfo heap_info, mmap_info;
  auto heap = io::ReadFtb(path_, heap_opts, &heap_info);
  auto mapped = io::ReadFtb(path_, {}, &mmap_info);
  ASSERT_TRUE(heap.ok());
  ASSERT_TRUE(mapped.ok());
  EXPECT_FALSE(heap_info.mmapped);
  ASSERT_EQ(heap.value().size(), mapped.value().size());
  for (size_t i = 0; i < heap.value().size(); ++i) {
    auto&& a = heap.value()[i];
    auto&& b = mapped.value()[i];
    EXPECT_EQ(a.label(), b.label());
    EXPECT_EQ(a.owner(), b.owner());
    ASSERT_EQ(a.size(), b.size());
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].t, b[j].t);
      EXPECT_EQ(a[j].location.x, b[j].location.x);
      EXPECT_EQ(a[j].location.y, b[j].location.y);
    }
  }
}

TEST_F(FtbTest, QueryResultsByteIdenticalAcrossBackends) {
  sim::DatasetPair pair =
      sim::BuildDataset(sim::FindConfig("SC"), 40, 20160501);
  core::EngineOptions eo;
  eo.training.horizon_units = 60;
  core::FtlEngine engine(eo);
  ASSERT_TRUE(engine.Train(pair.p, pair.q).ok());

  // Round the AoS database through CSV, then derive the FTB backend
  // from that same load — what `ftl convert` produces.
  std::string csv = TempPath("ftl_ftb_parity.csv");
  ASSERT_TRUE(io::WriteCsv(pair.q, csv).ok());
  auto aos = io::ReadCsv(csv, "q");
  ASSERT_TRUE(aos.ok());
  ASSERT_TRUE(io::WriteFtb(aos.value(), path_).ok());
  auto soa = io::ReadFtb(path_);
  ASSERT_TRUE(soa.ok()) << soa.status().ToString();
  std::filesystem::remove(csv);

  for (size_t qi = 0; qi < 6 && qi < pair.p.size(); ++qi) {
    auto ra =
        engine.Query(pair.p[qi], aos.value(), core::Matcher::kAlphaFilter);
    auto rs = engine.Query(traj::FlatDatabase::FromDatabase(pair.p)[qi],
                           soa.value(), core::Matcher::kAlphaFilter);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rs.ok());
    const auto& ca = ra.value().candidates;
    const auto& cs = rs.value().candidates;
    ASSERT_EQ(ca.size(), cs.size()) << "query " << qi;
    for (size_t j = 0; j < ca.size(); ++j) {
      EXPECT_EQ(ca[j].index, cs[j].index);
      EXPECT_EQ(ca[j].label, cs[j].label);
      // Bit-pattern equality, not approximate: the SoA path must run
      // the identical arithmetic.
      uint64_t pa = 0, ps = 0;
      std::memcpy(&pa, &ca[j].score, 8);
      std::memcpy(&ps, &cs[j].score, 8);
      EXPECT_EQ(pa, ps) << "score bits, query " << qi << " cand " << j;
      std::memcpy(&pa, &ca[j].p1, 8);
      std::memcpy(&ps, &cs[j].p1, 8);
      EXPECT_EQ(pa, ps) << "p1 bits";
      std::memcpy(&pa, &ca[j].p2, 8);
      std::memcpy(&ps, &cs[j].p2, 8);
      EXPECT_EQ(pa, ps) << "p2 bits";
      EXPECT_EQ(ca[j].k_observed, cs[j].k_observed);
      EXPECT_EQ(ca[j].n_segments, cs[j].n_segments);
    }
  }
}

TEST_F(FtbTest, RejectsCorruptMagic) {
  ASSERT_TRUE(io::WriteFtb(MakeDb(), path_).ok());
  std::string bytes = ReadFileBytes(path_);
  bytes[0] = 'X';
  WriteFileBytes(path_, bytes);
  EXPECT_FALSE(io::SniffFtb(path_));
  auto r = io::ReadFtb(path_);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("magic"), std::string::npos);
}

TEST_F(FtbTest, RejectsHeaderCorruptionEvenWithChecksumsOff) {
  ASSERT_TRUE(io::WriteFtb(MakeDb(), path_).ok());
  std::string bytes = ReadFileBytes(path_);
  bytes[kOffNumRecords] ^= 0x01;  // tamper with the record count
  WriteFileBytes(path_, bytes);
  io::FtbReadOptions opts;
  opts.verify_checksums = false;
  auto r = io::ReadFtb(path_, opts);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("header CRC"), std::string::npos);
}

TEST_F(FtbTest, RejectsTruncatedFile) {
  ASSERT_TRUE(io::WriteFtb(MakeDb(), path_).ok());
  std::string bytes = ReadFileBytes(path_);
  WriteFileBytes(path_, bytes.substr(0, bytes.size() - 16));
  auto r = io::ReadFtb(path_);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("truncated"), std::string::npos);
}

TEST_F(FtbTest, RejectsWrongVersion) {
  ASSERT_TRUE(io::WriteFtb(MakeDb(), path_).ok());
  std::string written = ReadFileBytes(path_);
  for (uint32_t bad : {io::kFtbVersion + 1, io::kFtbMinReadVersion - 1}) {
    std::string bytes = written;
    StoreU32(&bytes, kOffVersion, bad);
    StoreU32(&bytes, kOffHeaderCrc, io::Crc32(bytes.data(), kOffHeaderCrc));
    WriteFileBytes(path_, bytes);
    auto r = io::ReadFtb(path_);
    EXPECT_FALSE(r.ok()) << "version " << bad;
    EXPECT_NE(r.status().ToString().find("version"), std::string::npos);
  }
}

TEST_F(FtbTest, WriterAlignsSectionsTo32Bytes) {
  // Version 2 starts every section on a 32-byte boundary so AVX2 loads
  // on the mmap'd columns are aligned.
  ASSERT_TRUE(io::WriteFtb(MakeDb(), path_).ok());
  std::string bytes = ReadFileBytes(path_);
  EXPECT_EQ(LoadU32(bytes, kOffVersion), io::kFtbVersion);
  for (uint32_t id = 1; id <= 8; ++id) {
    EXPECT_EQ(FindSection(bytes, id).offset % 32, 0u) << "section " << id;
  }
}

TEST_F(FtbTest, AcceptsVersion1Files) {
  // Old readers never saw version 2, but new readers must keep loading
  // version-1 files (which only guarantee 8-byte section alignment).
  // 32-byte-aligned offsets satisfy the looser v1 check, so patching
  // the version field back down yields a valid v1 file.
  traj::TrajectoryDatabase db = MakeDb();
  ASSERT_TRUE(io::WriteFtb(db, path_).ok());
  std::string bytes = ReadFileBytes(path_);
  StoreU32(&bytes, kOffVersion, 1);
  StoreU32(&bytes, kOffHeaderCrc, io::Crc32(bytes.data(), kOffHeaderCrc));
  WriteFileBytes(path_, bytes);

  auto flat = io::ReadFtb(path_);
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  traj::TrajectoryDatabase back = flat.value().ToDatabase();
  ASSERT_EQ(back.size(), db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(back[i].label(), db[i].label());
    ASSERT_EQ(back[i].size(), db[i].size());
    for (size_t j = 0; j < db[i].size(); ++j) {
      EXPECT_EQ(back[i][j].t, db[i][j].t);
    }
  }
}

TEST_F(FtbTest, BadSectionCrcDetectedAndCounted) {
  ASSERT_TRUE(io::WriteFtb(MakeDb(), path_).ok());
  std::string bytes = ReadFileBytes(path_);
  SectionEntry y = FindSection(bytes, 7);  // Y column payload
  ASSERT_GT(y.length, 0u);
  bytes[y.offset + y.length / 2] ^= 0xff;
  WriteFileBytes(path_, bytes);

  auto& counter = obs::MetricsRegistry::Global().GetCounter(
      "ftl_io_ftb_checksum_failures_total");
  int64_t before = counter.Value();
  auto r = io::ReadFtb(path_);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("CRC"), std::string::npos);
  EXPECT_GT(counter.Value(), before);

  // Structural validation alone cannot see a flipped coordinate byte;
  // that is exactly the risk verify_checksums=false accepts.
  io::FtbReadOptions opts;
  opts.verify_checksums = false;
  EXPECT_TRUE(io::ReadFtb(path_, opts).ok());
}

TEST_F(FtbTest, RejectsOverflowingHeaderCounts) {
  // A crafted header with num_traj = 2^61 + 3 makes
  // (num_traj + 1) * 8 wrap to exactly the 32 bytes the real offset
  // section occupies, so without an explicit count bound the length
  // check passes and endpoint validation reads far out of bounds.
  ASSERT_TRUE(io::WriteFtb(MakeDb(), path_).ok());
  std::string bytes = ReadFileBytes(path_);
  StoreU64(&bytes, kOffNumTrajectories, (uint64_t{1} << 61) + 3);
  StoreU32(&bytes, kOffHeaderCrc, io::Crc32(bytes.data(), kOffHeaderCrc));
  WriteFileBytes(path_, bytes);
  auto r = io::ReadFtb(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("count exceeds file size"),
            std::string::npos);

  // Same trick on the record count.
  bytes = ReadFileBytes(path_);
  StoreU64(&bytes, kOffNumTrajectories, 3);
  StoreU64(&bytes, kOffNumRecords, uint64_t{1} << 61);
  StoreU32(&bytes, kOffHeaderCrc, io::Crc32(bytes.data(), kOffHeaderCrc));
  WriteFileBytes(path_, bytes);
  r = io::ReadFtb(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("count exceeds file size"),
            std::string::npos);
}

TEST_F(FtbTest, RejectsOverlappingSections) {
  // Re-point the name section at the timestamp column. Every entry is
  // still in-bounds, aligned, and CRC-consistent after resealing, but
  // sections must be disjoint and ascending like the writer lays them
  // out.
  ASSERT_TRUE(io::WriteFtb(MakeDb(), path_).ok());
  std::string bytes = ReadFileBytes(path_);
  SectionEntry ts = FindSection(bytes, 5);
  ASSERT_GT(ts.length, 0u);
  for (size_t i = 0; i < 8; ++i) {
    size_t at = kTableOffset + i * kEntrySize;
    if (LoadU32(bytes, at) != 8) continue;  // name section entry
    StoreU64(&bytes, at + 8, ts.offset);
    StoreU64(&bytes, at + 16, 8);
  }
  ResealFile(&bytes, 8);
  WriteFileBytes(path_, bytes);
  auto r = io::ReadFtb(path_);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("overlap"), std::string::npos);
}

TEST_F(FtbTest, DefaultConstructedFlatDatabaseWrites) {
  // Null column pointers with one-entry offset-table sections must not
  // reach memcpy; the file still round-trips as an empty database.
  traj::FlatDatabase empty;
  ASSERT_TRUE(io::WriteFtb(empty, path_).ok());
  auto r = io::ReadFtb(path_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 0u);
  EXPECT_EQ(r.value().TotalRecords(), 0u);
}

TEST_F(FtbTest, DuplicateLabelsRejected) {
  traj::TrajectoryDatabase db("dups");
  ASSERT_TRUE(db.Add(traj::Trajectory("aa", 1, {{{0, 0}, 0}})).ok());
  ASSERT_TRUE(db.Add(traj::Trajectory("ab", 2, {{{1, 1}, 1}})).ok());
  ASSERT_TRUE(io::WriteFtb(db, path_).ok());
  std::string bytes = ReadFileBytes(path_);
  SectionEntry pool = FindSection(bytes, 4);  // label pool: "aaab"
  ASSERT_EQ(pool.length, 4u);
  bytes[pool.offset + 3] = 'a';  // second label becomes "aa" too
  ResealFile(&bytes, 4);
  WriteFileBytes(path_, bytes);
  auto r = io::ReadFtb(path_);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("duplicate"), std::string::npos);
}

TEST_F(FtbTest, ReadFailpointInjectsError) {
  ASSERT_TRUE(io::WriteFtb(MakeDb(), path_).ok());
  failpoint::Arm("io.read_ftb", {failpoint::Action::kError, 0});
  EXPECT_FALSE(io::ReadFtb(path_).ok());
  failpoint::DisarmAll();
  EXPECT_TRUE(io::ReadFtb(path_).ok());
}

TEST_F(FtbTest, TornWriteIsDetectedOnRead) {
  // A partial-write fault at io.write_ftb must leave a file the reader
  // refuses — the whole point of the trailing footer + length check.
  failpoint::Arm("io.write_ftb", {failpoint::Action::kPartialWrite, 64});
  Status st = io::WriteFtb(MakeDb(), path_);
  EXPECT_FALSE(st.ok());
  failpoint::DisarmAll();
  auto r = io::ReadFtb(path_);
  EXPECT_FALSE(r.ok());
}

TEST_F(FtbTest, Crc32MatchesKnownVector) {
  EXPECT_EQ(io::Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(io::Crc32("", 0), 0u);
}

TEST_F(FtbTest, LooksLikeFtbChecksMagicOnly) {
  EXPECT_TRUE(io::LooksLikeFtb(io::kFtbMagic, sizeof(io::kFtbMagic)));
  EXPECT_FALSE(io::LooksLikeFtb("label,owner,t,x,y", 17));
  EXPECT_FALSE(io::LooksLikeFtb(io::kFtbMagic, 4));  // too short
}

}  // namespace
}  // namespace ftl
