#include <gtest/gtest.h>

#include <cmath>

#include "geo/point.h"
#include "geo/projection.h"

namespace ftl::geo {
namespace {

TEST(PointTest, Distance) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
}

TEST(PointTest, DistanceSquared) {
  EXPECT_DOUBLE_EQ(DistanceSquared({0, 0}, {3, 4}), 25.0);
}

TEST(PointTest, DistanceSymmetric) {
  Point a{12.5, -3.0}, b{-7.0, 44.0};
  EXPECT_DOUBLE_EQ(Distance(a, b), Distance(b, a));
}

TEST(PointTest, TriangleInequality) {
  Point a{0, 0}, b{10, 0}, c{5, 5};
  EXPECT_LE(Distance(a, b), Distance(a, c) + Distance(c, b) + 1e-12);
}

TEST(PointTest, ManhattanDominatesEuclidean) {
  Point a{1, 2}, b{4, 6};
  EXPECT_GE(ManhattanDistance(a, b), Distance(a, b));
  EXPECT_DOUBLE_EQ(ManhattanDistance(a, b), 7.0);
}

TEST(PointTest, Lerp) {
  Point a{0, 0}, b{10, 20};
  Point mid = Lerp(a, b, 0.5);
  EXPECT_DOUBLE_EQ(mid.x, 5.0);
  EXPECT_DOUBLE_EQ(mid.y, 10.0);
  EXPECT_EQ(Lerp(a, b, 0.0), a);
  EXPECT_EQ(Lerp(a, b, 1.0), b);
}

TEST(BoundingBoxTest, ContainsAndClamp) {
  BoundingBox box{0, 0, 100, 50};
  EXPECT_TRUE(box.Contains({50, 25}));
  EXPECT_TRUE(box.Contains({0, 0}));
  EXPECT_TRUE(box.Contains({100, 50}));
  EXPECT_FALSE(box.Contains({101, 25}));
  EXPECT_FALSE(box.Contains({50, -1}));
  Point c = box.Clamp({150, -20});
  EXPECT_DOUBLE_EQ(c.x, 100.0);
  EXPECT_DOUBLE_EQ(c.y, 0.0);
}

TEST(BoundingBoxTest, Dimensions) {
  BoundingBox box{0, 0, 30, 40};
  EXPECT_DOUBLE_EQ(box.Width(), 30.0);
  EXPECT_DOUBLE_EQ(box.Height(), 40.0);
  EXPECT_DOUBLE_EQ(box.Diagonal(), 50.0);
}

TEST(SpeedConversionTest, RoundTrip) {
  EXPECT_NEAR(KphToMps(120.0), 33.3333, 1e-3);
  EXPECT_NEAR(MpsToKph(KphToMps(88.0)), 88.0, 1e-9);
}

TEST(HaversineTest, ZeroForSamePoint) {
  LatLon a{1.3521, 103.8198};  // Singapore
  EXPECT_DOUBLE_EQ(HaversineDistance(a, a), 0.0);
}

TEST(HaversineTest, KnownDistance) {
  // Singapore -> Kuala Lumpur (city centers), ~309 km great-circle.
  LatLon sg{1.3521, 103.8198};
  LatLon kl{3.1390, 101.6869};
  double d = HaversineDistance(sg, kl);
  EXPECT_NEAR(d, 309250.0, 2000.0);
}

TEST(HaversineTest, OneDegreeLatitude) {
  LatLon a{0.0, 0.0}, b{1.0, 0.0};
  // 1 degree of latitude is ~111.2 km.
  EXPECT_NEAR(HaversineDistance(a, b), 111195.0, 200.0);
}

TEST(ProjectionTest, OriginMapsToZero) {
  LatLon origin{1.35, 103.82};
  LocalProjection proj(origin);
  Point p = proj.Forward(origin);
  EXPECT_NEAR(p.x, 0.0, 1e-9);
  EXPECT_NEAR(p.y, 0.0, 1e-9);
}

TEST(ProjectionTest, RoundTrip) {
  LocalProjection proj({1.35, 103.82});
  LatLon ll{1.41, 103.95};
  LatLon back = proj.Backward(proj.Forward(ll));
  EXPECT_NEAR(back.lat_deg, ll.lat_deg, 1e-9);
  EXPECT_NEAR(back.lon_deg, ll.lon_deg, 1e-9);
}

TEST(ProjectionTest, MatchesHaversineAtCityScale) {
  LocalProjection proj({39.9, 116.4});  // Beijing
  LatLon a{39.95, 116.30};
  LatLon b{39.85, 116.55};
  Point pa = proj.Forward(a);
  Point pb = proj.Forward(b);
  double planar = Distance(pa, pb);
  double sphere = HaversineDistance(a, b);
  // Better than 0.5% agreement across ~25 km.
  EXPECT_NEAR(planar / sphere, 1.0, 0.005);
}

TEST(ProjectionTest, NorthIsPositiveY) {
  LocalProjection proj({10.0, 20.0});
  Point north = proj.Forward({10.1, 20.0});
  EXPECT_GT(north.y, 0.0);
  EXPECT_NEAR(north.x, 0.0, 1e-9);
}

TEST(ProjectionTest, EastIsPositiveX) {
  LocalProjection proj({10.0, 20.0});
  Point east = proj.Forward({10.0, 20.1});
  EXPECT_GT(east.x, 0.0);
  EXPECT_NEAR(east.y, 0.0, 1e-9);
}

}  // namespace
}  // namespace ftl::geo
