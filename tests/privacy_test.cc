#include <gtest/gtest.h>

#include <cmath>

#include "privacy/attack_eval.h"
#include "privacy/defenses.h"
#include "sim/population_sim.h"

namespace ftl::privacy {
namespace {

using traj::Record;
using traj::Trajectory;
using traj::TrajectoryDatabase;

Record R(double x, double y, traj::Timestamp t) { return Record{{x, y}, t}; }

TrajectoryDatabase SmallDb() {
  TrajectoryDatabase db("d");
  (void)db.Add(Trajectory("a", 1, {R(123.4, 567.8, 100), R(2345.6, 7890.1,
                                                           200)}));
  (void)db.Add(Trajectory("b", 2, {R(-50.0, 1499.9, 150)}));
  return db;
}

// -------------------------------------------------------------- Defenses

TEST(DefensesTest, SpatialCloakingSnapsToCellCenters) {
  auto out = SpatialCloaking(SmallDb(), 1000.0);
  for (const auto& t : out) {
    for (const auto& r : t.records()) {
      double fx = r.location.x / 1000.0;
      double fy = r.location.y / 1000.0;
      EXPECT_NEAR(fx - std::floor(fx), 0.5, 1e-9);
      EXPECT_NEAR(fy - std::floor(fy), 0.5, 1e-9);
    }
  }
  // Structure preserved.
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].label(), "a");
  EXPECT_EQ(out[0].owner(), 1u);
  EXPECT_EQ(out.TotalRecords(), 3u);
}

TEST(DefensesTest, SpatialCloakingBoundedError) {
  auto out = SpatialCloaking(SmallDb(), 1000.0);
  auto in = SmallDb();
  for (size_t i = 0; i < in.size(); ++i) {
    for (size_t j = 0; j < in[i].size(); ++j) {
      double d = geo::Distance(in[i][j].location, out[i][j].location);
      EXPECT_LE(d, 1000.0 * std::sqrt(2.0) / 2.0 + 1e-9);
    }
  }
}

TEST(DefensesTest, TemporalCloakingFloorsTimestamps) {
  auto out = TemporalCloaking(SmallDb(), 60);
  EXPECT_EQ(out[0][0].t, 60);   // 100 -> 60
  EXPECT_EQ(out[0][1].t, 180);  // 200 -> 180
  EXPECT_EQ(out[1][0].t, 120);  // 150 -> 120
  // Time order preserved (monotone transform).
  for (const auto& t : out) EXPECT_TRUE(t.IsSorted());
}

TEST(DefensesTest, TemporalCloakingNegativeTimes) {
  TrajectoryDatabase db;
  (void)db.Add(Trajectory("n", 1, {R(0, 0, -100)}));
  auto out = TemporalCloaking(db, 60);
  EXPECT_EQ(out[0][0].t, -120);  // floor toward -inf
}

TEST(DefensesTest, GaussianPerturbationMovesPoints) {
  Rng rng(1);
  auto out = GaussianPerturbation(SmallDb(), 100.0, &rng);
  auto in = SmallDb();
  double total = 0;
  size_t n = 0;
  for (size_t i = 0; i < in.size(); ++i) {
    for (size_t j = 0; j < in[i].size(); ++j) {
      total += geo::Distance(in[i][j].location, out[i][j].location);
      ++n;
      EXPECT_EQ(in[i][j].t, out[i][j].t);
    }
  }
  EXPECT_GT(total / static_cast<double>(n), 10.0);
}

TEST(DefensesTest, GaussianPerturbationDeterministic) {
  Rng r1(7), r2(7);
  auto a = GaussianPerturbation(SmallDb(), 50.0, &r1);
  auto b = GaussianPerturbation(SmallDb(), 50.0, &r2);
  EXPECT_DOUBLE_EQ(a[0][0].location.x, b[0][0].location.x);
}

TEST(DefensesTest, RecordSuppressionKeepsFraction) {
  TrajectoryDatabase db("big");
  std::vector<Record> recs;
  for (int i = 0; i < 10000; ++i) recs.push_back(R(0, 0, i));
  (void)db.Add(Trajectory("t", 1, std::move(recs)));
  Rng rng(2);
  auto out = RecordSuppression(db, 0.3, &rng);
  EXPECT_NEAR(static_cast<double>(out.TotalRecords()), 3000.0, 250.0);
}

// ------------------------------------------------------------ Attack eval

AttackOptions QuickAttack() {
  AttackOptions o;
  o.engine.training.horizon_units = 30;
  o.engine.training.acceptance_pairs_per_db = 300;
  o.engine.naive_bayes.phi_r = 0.02;
  o.workload.num_queries = 25;
  o.workload.seed = 9;
  return o;
}

sim::PopulationData AttackData() {
  sim::PopulationOptions po;
  po.num_persons = 60;
  po.duration_days = 7;
  po.cdr_accesses_per_day = 15.0;
  po.transit_accesses_per_day = 12.0;
  po.seed = 777;
  return sim::SimulatePopulation(po);
}

TEST(AttackEvalTest, UndefendedReleaseIsHighRisk) {
  auto data = AttackData();
  auto report = EvaluateLinkageRisk(data.cdr_db, data.transit_db,
                                    QuickAttack());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report.value().perceptiveness, 0.7);
  EXPECT_GT(report.value().top1_accuracy, 0.5);
  EXPECT_EQ(report.value().num_queries, 25u);
}

TEST(AttackEvalTest, HeavySpatialCloakingReducesRisk) {
  auto data = AttackData();
  auto base = EvaluateLinkageRisk(data.cdr_db, data.transit_db,
                                  QuickAttack());
  ASSERT_TRUE(base.ok());
  // 20 km cells destroy almost all location signal.
  auto cloaked = SpatialCloaking(data.transit_db, 20000.0);
  auto defended =
      EvaluateLinkageRisk(data.cdr_db, cloaked, QuickAttack());
  ASSERT_TRUE(defended.ok());
  EXPECT_LT(defended.value().top1_accuracy,
            base.value().top1_accuracy + 1e-9);
}

TEST(AttackEvalTest, SuppressionReducesRisk) {
  auto data = AttackData();
  auto base = EvaluateLinkageRisk(data.cdr_db, data.transit_db,
                                  QuickAttack());
  ASSERT_TRUE(base.ok());
  Rng rng(3);
  auto suppressed = RecordSuppression(data.transit_db, 0.05, &rng);
  auto defended =
      EvaluateLinkageRisk(data.cdr_db, suppressed, QuickAttack());
  ASSERT_TRUE(defended.ok());
  EXPECT_LE(defended.value().top1_accuracy,
            base.value().top1_accuracy + 1e-9);
}

TEST(AttackEvalTest, FailsOnEmptyRelease) {
  auto data = AttackData();
  TrajectoryDatabase empty("empty");
  auto report =
      EvaluateLinkageRisk(data.cdr_db, empty, QuickAttack());
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace ftl::privacy
