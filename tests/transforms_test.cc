#include <gtest/gtest.h>

#include "traj/transforms.h"

namespace ftl::traj {
namespace {

Record R(Timestamp t) { return Record{{0, 0}, t}; }

Trajectory Dense(const std::string& label, OwnerId owner, size_t n) {
  std::vector<Record> recs;
  recs.reserve(n);
  for (size_t i = 0; i < n; ++i) recs.push_back(R(static_cast<Timestamp>(i)));
  return Trajectory(label, owner, std::move(recs));
}

TEST(DownSampleTest, RateOneKeepsEverything) {
  Rng rng(1);
  Trajectory t = Dense("a", 1, 100);
  Trajectory d = DownSample(t, 1.0, &rng);
  EXPECT_EQ(d.size(), 100u);
  EXPECT_EQ(d.label(), "a");
  EXPECT_EQ(d.owner(), 1u);
}

TEST(DownSampleTest, ApproximatesRate) {
  Rng rng(2);
  Trajectory t = Dense("a", 1, 20000);
  Trajectory d = DownSample(t, 0.1, &rng);
  EXPECT_NEAR(static_cast<double>(d.size()), 2000.0, 150.0);
  EXPECT_TRUE(d.IsSorted());
}

TEST(DownSampleTest, PreservesRelativeOrder) {
  Rng rng(3);
  Trajectory t = Dense("a", 1, 1000);
  Trajectory d = DownSample(t, 0.5, &rng);
  for (size_t i = 1; i < d.size(); ++i) {
    EXPECT_LT(d[i - 1].t, d[i].t);
  }
}

TEST(DownSampleTest, DatabaseVariant) {
  TrajectoryDatabase db("src");
  (void)db.Add(Dense("a", 1, 1000));
  (void)db.Add(Dense("b", 2, 1000));
  Rng rng(4);
  TrajectoryDatabase out = DownSample(db, 0.2, &rng);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(out.name(), "src");
  EXPECT_NEAR(static_cast<double>(out[0].size()), 200.0, 60.0);
  EXPECT_NEAR(static_cast<double>(out[1].size()), 200.0, 60.0);
}

TEST(DownSampleTest, DeterministicGivenSeed) {
  TrajectoryDatabase db("src");
  (void)db.Add(Dense("a", 1, 500));
  Rng r1(7), r2(7);
  auto a = DownSample(db, 0.3, &r1);
  auto b = DownSample(db, 0.3, &r2);
  ASSERT_EQ(a[0].size(), b[0].size());
  for (size_t i = 0; i < a[0].size(); ++i) {
    EXPECT_EQ(a[0][i].t, b[0][i].t);
  }
}

TEST(TrimDurationTest, RestrictsWindow) {
  TrajectoryDatabase db;
  (void)db.Add(Dense("a", 1, 100));  // t = 0..99
  TrajectoryDatabase out = TrimDuration(db, 10, 20);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), 20u);
  EXPECT_EQ(out[0].front().t, 10);
  EXPECT_EQ(out[0].back().t, 29);
}

TEST(TrimDurationTest, KeepsEmptyTrajectories) {
  TrajectoryDatabase db;
  (void)db.Add(Dense("a", 1, 10));
  TrajectoryDatabase out = TrimDuration(db, 1000, 100);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].empty());
}

TEST(SplitRecordsTest, PartitionIsExact) {
  Rng rng(5);
  Trajectory t = Dense("a", 3, 1000);
  auto [x, y] = SplitRecords(t, &rng);
  EXPECT_EQ(x.size() + y.size(), 1000u);
  EXPECT_EQ(x.label(), "a/a");
  EXPECT_EQ(y.label(), "a/b");
  EXPECT_EQ(x.owner(), 3u);
  EXPECT_EQ(y.owner(), 3u);
  // Roughly half in each.
  EXPECT_NEAR(static_cast<double>(x.size()), 500.0, 80.0);
  // No record lost or duplicated: timestamps 0..999 each appear once.
  std::vector<bool> seen(1000, false);
  for (const auto& r : x.records()) seen[static_cast<size_t>(r.t)] = true;
  for (const auto& r : y.records()) {
    EXPECT_FALSE(seen[static_cast<size_t>(r.t)]);
    seen[static_cast<size_t>(r.t)] = true;
  }
  for (bool b : seen) EXPECT_TRUE(b);
}

TEST(SplitDatabaseTest, SplitsEveryTrajectory) {
  TrajectoryDatabase db("td");
  (void)db.Add(Dense("a", 1, 200));
  (void)db.Add(Dense("b", 2, 200));
  Rng rng(6);
  auto [p, q] = SplitDatabase(db, &rng);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(p[0].owner(), q[0].owner());
  EXPECT_EQ(p[0].size() + q[0].size(), 200u);
}

// Property sweep over rates: downsampling is a subsequence with the
// right expected size.
class DownSampleRateTest : public ::testing::TestWithParam<double> {};

TEST_P(DownSampleRateTest, ExpectedSize) {
  double rate = GetParam();
  Rng rng(42);
  Trajectory t = Dense("a", 1, 10000);
  Trajectory d = DownSample(t, rate, &rng);
  double expected = 10000.0 * rate;
  // 5-sigma binomial bound.
  double sigma = std::sqrt(10000.0 * rate * (1 - rate));
  EXPECT_NEAR(static_cast<double>(d.size()), expected, 5 * sigma + 1);
}

INSTANTIATE_TEST_SUITE_P(Rates, DownSampleRateTest,
                         ::testing::Values(0.006, 0.01, 0.02, 0.08, 0.1,
                                           0.5, 0.9));

}  // namespace
}  // namespace ftl::traj
