#include <gtest/gtest.h>

#include "core/engine.h"
#include "obs/metrics.h"
#include "sim/population_sim.h"
#include "traj/alignment.h"

namespace ftl::core {
namespace {

/// Small but realistic population for engine tests: dense enough access
/// patterns that linking is reliable.
sim::PopulationData TestPopulation(size_t persons = 40, uint64_t seed = 3) {
  sim::PopulationOptions po;
  po.num_persons = persons;
  po.duration_days = 7;
  po.cdr_accesses_per_day = 25.0;
  po.transit_accesses_per_day = 25.0;
  po.seed = seed;
  return sim::SimulatePopulation(po);
}

EngineOptions TestOptions() {
  EngineOptions o;
  o.training.horizon_units = 30;
  o.training.acceptance_pairs_per_db = 400;
  o.alpha = {0.01, 0.2};
  o.naive_bayes.phi_r = 0.05;
  return o;
}

TEST(EngineTest, QueryBeforeTrainFails) {
  FtlEngine engine(TestOptions());
  auto data = TestPopulation(5);
  auto r = engine.Query(data.cdr_db[0], data.transit_db,
                        Matcher::kAlphaFilter);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineTest, TrainSucceedsOnPopulation) {
  FtlEngine engine(TestOptions());
  auto data = TestPopulation();
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());
  EXPECT_TRUE(engine.trained());
  EXPECT_TRUE(engine.models().rejection.Validate().ok());
  EXPECT_TRUE(engine.models().acceptance.Validate().ok());
}

TEST(EngineTest, EmptyCandidateDbRejected) {
  FtlEngine engine(TestOptions());
  auto data = TestPopulation();
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());
  traj::TrajectoryDatabase empty;
  auto r = engine.Query(data.cdr_db[0], empty, Matcher::kAlphaFilter);
  EXPECT_FALSE(r.ok());
}

TEST(EngineTest, FindsTrueMatchWithBothMatchers) {
  FtlEngine engine(TestOptions());
  auto data = TestPopulation();
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());
  size_t found_alpha = 0, found_nb = 0, tried = 0;
  for (size_t i = 0; i < 10; ++i) {
    const auto& query = data.cdr_db[i];
    if (query.size() < 2) continue;
    ++tried;
    for (auto matcher : {Matcher::kAlphaFilter, Matcher::kNaiveBayes}) {
      auto r = engine.Query(query, data.transit_db, matcher);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      bool hit = false;
      for (const auto& c : r.value().candidates) {
        if (data.transit_db[c.index].owner() == query.owner()) hit = true;
      }
      if (hit) {
        (matcher == Matcher::kAlphaFilter ? found_alpha : found_nb) += 1;
      }
    }
  }
  ASSERT_GT(tried, 5u);
  // Dense 7-day data: both matchers should find most true matches.
  EXPECT_GE(found_alpha, tried - 2);
  EXPECT_GE(found_nb, tried - 2);
}

TEST(EngineTest, CandidatesSortedByScore) {
  FtlEngine engine(TestOptions());
  auto data = TestPopulation();
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());
  auto r = engine.Query(data.cdr_db[0], data.transit_db,
                        Matcher::kAlphaFilter);
  ASSERT_TRUE(r.ok());
  const auto& cands = r.value().candidates;
  for (size_t i = 1; i < cands.size(); ++i) {
    EXPECT_GE(cands[i - 1].score, cands[i].score);
  }
}

TEST(EngineTest, SelectivenessIsFractionOfDb) {
  FtlEngine engine(TestOptions());
  auto data = TestPopulation();
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());
  auto r = engine.Query(data.cdr_db[0], data.transit_db,
                        Matcher::kNaiveBayes);
  ASSERT_TRUE(r.ok());
  double expect = static_cast<double>(r.value().candidates.size()) /
                  static_cast<double>(data.transit_db.size());
  EXPECT_DOUBLE_EQ(r.value().selectiveness, expect);
  EXPECT_LE(r.value().selectiveness, 1.0);
}

TEST(EngineTest, CandidateLabelsMatchDatabase) {
  FtlEngine engine(TestOptions());
  auto data = TestPopulation();
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());
  auto r = engine.Query(data.cdr_db[1], data.transit_db,
                        Matcher::kAlphaFilter);
  ASSERT_TRUE(r.ok());
  for (const auto& c : r.value().candidates) {
    EXPECT_EQ(c.label, data.transit_db[c.index].label());
  }
}

TEST(EngineTest, BatchMatchesSerialQueries) {
  FtlEngine engine(TestOptions());
  auto data = TestPopulation();
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());
  std::vector<traj::Trajectory> queries;
  for (size_t i = 0; i < 6; ++i) queries.push_back(data.cdr_db[i]);
  auto batch = engine.BatchQuery(queries, data.transit_db,
                                 Matcher::kNaiveBayes);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch.value().size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto single = engine.Query(queries[i], data.transit_db,
                               Matcher::kNaiveBayes);
    ASSERT_TRUE(single.ok());
    const auto& a = batch.value()[i].candidates;
    const auto& b = single.value().candidates;
    ASSERT_EQ(a.size(), b.size());
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].index, b[j].index);
      EXPECT_DOUBLE_EQ(a[j].score, b[j].score);
    }
  }
}

TEST(EngineTest, ParallelBatchMatchesSerialBatch) {
  auto data = TestPopulation();
  EngineOptions serial_opts = TestOptions();
  EngineOptions parallel_opts = TestOptions();
  parallel_opts.num_threads = 4;
  FtlEngine serial(serial_opts), parallel(parallel_opts);
  ASSERT_TRUE(serial.Train(data.cdr_db, data.transit_db).ok());
  ASSERT_TRUE(parallel.Train(data.cdr_db, data.transit_db).ok());
  std::vector<traj::Trajectory> queries;
  for (size_t i = 0; i < 10; ++i) queries.push_back(data.cdr_db[i]);
  auto rs = serial.BatchQuery(queries, data.transit_db,
                              Matcher::kAlphaFilter);
  auto rp = parallel.BatchQuery(queries, data.transit_db,
                                Matcher::kAlphaFilter);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rp.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto& a = rs.value()[i].candidates;
    const auto& b = rp.value()[i].candidates;
    ASSERT_EQ(a.size(), b.size());
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].index, b[j].index);
    }
  }
}

TEST(EngineTest, SetModelsSkipsTraining) {
  FtlEngine trained(TestOptions());
  auto data = TestPopulation();
  ASSERT_TRUE(trained.Train(data.cdr_db, data.transit_db).ok());
  FtlEngine preloaded(TestOptions());
  preloaded.SetModels(trained.models());
  EXPECT_TRUE(preloaded.trained());
  auto r1 = trained.Query(data.cdr_db[2], data.transit_db,
                          Matcher::kAlphaFilter);
  auto r2 = preloaded.Query(data.cdr_db[2], data.transit_db,
                            Matcher::kAlphaFilter);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().candidates.size(), r2.value().candidates.size());
}

TEST(EngineTest, LooserPhiRGivesMoreCandidates) {
  auto data = TestPopulation();
  EngineOptions strict_opts = TestOptions();
  strict_opts.naive_bayes.phi_r = 1e-6;
  EngineOptions loose_opts = TestOptions();
  loose_opts.naive_bayes.phi_r = 0.45;
  FtlEngine strict(strict_opts), loose(loose_opts);
  ASSERT_TRUE(strict.Train(data.cdr_db, data.transit_db).ok());
  ASSERT_TRUE(loose.Train(data.cdr_db, data.transit_db).ok());
  size_t n_strict = 0, n_loose = 0;
  for (size_t i = 0; i < 10; ++i) {
    auto rs = strict.Query(data.cdr_db[i], data.transit_db,
                           Matcher::kNaiveBayes);
    auto rl = loose.Query(data.cdr_db[i], data.transit_db,
                          Matcher::kNaiveBayes);
    ASSERT_TRUE(rs.ok());
    ASSERT_TRUE(rl.ok());
    n_strict += rs.value().candidates.size();
    n_loose += rl.value().candidates.size();
  }
  EXPECT_LE(n_strict, n_loose);
}

TEST(EngineTest, NonOverlapSkipOnlyRemovesDisjointCandidates) {
  auto data = TestPopulation(30, 44);
  EngineOptions all_opts = TestOptions();
  EngineOptions skip_opts = TestOptions();
  skip_opts.evaluate_non_overlapping = false;
  FtlEngine all_engine(all_opts), skip_engine(skip_opts);
  ASSERT_TRUE(all_engine.Train(data.cdr_db, data.transit_db).ok());
  ASSERT_TRUE(skip_engine.Train(data.cdr_db, data.transit_db).ok());
  for (size_t qi = 0; qi < 5; ++qi) {
    auto ra = all_engine.Query(data.cdr_db[qi], data.transit_db,
                               Matcher::kNaiveBayes);
    auto rs = skip_engine.Query(data.cdr_db[qi], data.transit_db,
                                Matcher::kNaiveBayes);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rs.ok());
    // Skipped-variant results are a subset of the full results, and any
    // dropped candidate has zero time-span overlap with the query.
    for (const auto& c : rs.value().candidates) {
      bool found = false;
      for (const auto& f : ra.value().candidates) {
        if (f.index == c.index) found = true;
      }
      EXPECT_TRUE(found);
    }
    for (const auto& f : ra.value().candidates) {
      bool kept = false;
      for (const auto& c : rs.value().candidates) {
        if (c.index == f.index) kept = true;
      }
      if (!kept) {
        EXPECT_EQ(traj::TimeSpanOverlapSeconds(
                      data.cdr_db[qi], data.transit_db[f.index]),
                  0);
      }
    }
  }
}

TEST(EngineTest, AlphaFilterSkipsP2WhenRejected) {
  // A rejected candidate must report p1 < alpha1 and the default p2
  // (never computed) — documents the lazy-evaluation contract.
  auto data = TestPopulation(30, 45);
  EngineOptions eo = TestOptions();
  eo.alpha = {0.5, 1e-9};  // strict both ways: almost nothing accepted
  FtlEngine engine(eo);
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());
  auto r = engine.Query(data.cdr_db[0], data.transit_db,
                        Matcher::kAlphaFilter);
  ASSERT_TRUE(r.ok());
  // With alpha2 = 1e-9 nearly nothing passes phase 2.
  EXPECT_LE(r.value().candidates.size(), 2u);
}

TEST(EngineTest, QueryAgainstSelfChannelFindsSelf) {
  // Degenerate but legal: query a database against itself. The query's
  // own trajectory has all-zero-gap alignment -> accepted with top
  // score.
  auto data = TestPopulation(20, 46);
  FtlEngine engine(TestOptions());
  ASSERT_TRUE(engine.Train(data.cdr_db, data.cdr_db).ok());
  auto r = engine.Query(data.cdr_db[3], data.cdr_db,
                        Matcher::kNaiveBayes);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r.value().candidates.empty());
  EXPECT_EQ(r.value().candidates[0].index, 3u);
}

TEST(EngineTest, ParallelQueryIdenticalToSerial) {
  // The staged parallel path must reproduce the serial loop exactly:
  // same candidates, same order, bitwise-equal p-values and scores.
  auto data = TestPopulation(40, 47);
  FtlEngine engine(TestOptions());
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());
  for (size_t qi = 0; qi < 5; ++qi) {
    auto serial = engine.Query(data.cdr_db[qi], data.transit_db,
                               Matcher::kAlphaFilter, 1);
    auto parallel = engine.Query(data.cdr_db[qi], data.transit_db,
                                 Matcher::kAlphaFilter, 4);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok());
    const auto& a = serial.value().candidates;
    const auto& b = parallel.value().candidates;
    ASSERT_EQ(a.size(), b.size()) << "query " << qi;
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].index, b[j].index) << "query " << qi;
      EXPECT_EQ(a[j].p1, b[j].p1) << "query " << qi;
      EXPECT_EQ(a[j].p2, b[j].p2) << "query " << qi;
      EXPECT_EQ(a[j].score, b[j].score) << "query " << qi;
      EXPECT_EQ(a[j].k_observed, b[j].k_observed) << "query " << qi;
    }
    EXPECT_EQ(serial.value().selectiveness, parallel.value().selectiveness);
  }
}

TEST(EngineTest, BatchQueryAggregatesAllFailures) {
  // Every failing query must be reported, not just the first.
  auto data = TestPopulation(10, 48);
  FtlEngine engine(TestOptions());
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());
  std::vector<traj::Trajectory> queries = {data.cdr_db[0], data.cdr_db[1],
                                           data.cdr_db[2]};
  traj::TrajectoryDatabase empty;
  auto r = engine.BatchQuery(queries, empty, Matcher::kAlphaFilter);
  ASSERT_FALSE(r.ok());
  const std::string& msg = r.status().message();
  EXPECT_NE(msg.find("3 of 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("query 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("query 2"), std::string::npos) << msg;
}

TEST(EngineTest, QueryBumpsObservabilityCounters) {
  // Counter deltas, not absolutes: the registry is process-global and
  // other queries in this test may already have run.
  auto data = TestPopulation(20, 49);
  FtlEngine engine(TestOptions());
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter& queries = reg.GetCounter("ftl_query_total");
  obs::Counter& cands = reg.GetCounter("ftl_query_candidates_total");
  obs::Counter& fast = reg.GetCounter("ftl_query_fast_reject_total");
  obs::Counter& exact = reg.GetCounter("ftl_query_tail_exact_total");
  obs::Counter& rna = reg.GetCounter("ftl_query_tail_rna_total");
  obs::Histogram& latency = reg.GetHistogram("ftl_query_latency_us");
  int64_t q0 = queries.Value(), c0 = cands.Value(), f0 = fast.Value();
  int64_t e0 = exact.Value(), r0 = rna.Value(), l0 = latency.Count();
  auto r = engine.Query(data.cdr_db[0], data.transit_db,
                        Matcher::kAlphaFilter, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(queries.Value() - q0, 1);
  // Every scored pair lands in exactly one of the three tail outcomes
  // (the non-overlap pre-filter may skip some candidates entirely, so
  // the total is bounded by, not equal to, the database size).
  int64_t dc = cands.Value() - c0;
  EXPECT_GT(dc, 0);
  EXPECT_LE(dc, static_cast<int64_t>(data.transit_db.size()));
  EXPECT_EQ((fast.Value() - f0) + (exact.Value() - e0) + (rna.Value() - r0),
            dc);
  EXPECT_EQ(latency.Count() - l0, 1);
}

TEST(EngineTest, QueryRecordsSampledStageTimers) {
  auto data = TestPopulation(20, 50);
  FtlEngine engine(TestOptions());
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());
  auto& reg = obs::MetricsRegistry::Global();
  obs::Histogram& align = reg.GetHistogram("ftl_stage_alignment_ns");
  int64_t a0 = align.Count();
  auto r = engine.Query(data.cdr_db[1], data.transit_db,
                        Matcher::kAlphaFilter, 1);
  ASSERT_TRUE(r.ok());
  // The first pair of every scratch is always sampled, so at least one
  // stage sample must land per query.
  EXPECT_GT(align.Count() - a0, 0);
}

TEST(EngineTest, InstrumentationDoesNotChangeResults) {
  // Two identical queries must return bitwise-identical candidates; the
  // second runs with counters already warm. Guards against any
  // instrumentation path feeding back into scoring.
  auto data = TestPopulation(20, 51);
  FtlEngine engine(TestOptions());
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());
  auto r1 = engine.Query(data.cdr_db[2], data.transit_db,
                         Matcher::kAlphaFilter, 1);
  auto r2 = engine.Query(data.cdr_db[2], data.transit_db,
                         Matcher::kAlphaFilter, 1);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  const auto& a = r1.value().candidates;
  const auto& b = r2.value().candidates;
  ASSERT_EQ(a.size(), b.size());
  for (size_t j = 0; j < a.size(); ++j) {
    EXPECT_EQ(a[j].index, b[j].index);
    EXPECT_EQ(a[j].p1, b[j].p1);
    EXPECT_EQ(a[j].p2, b[j].p2);
    EXPECT_EQ(a[j].score, b[j].score);
  }
}

TEST(EngineTest, EvidenceOptionsMirrorTraining) {
  EngineOptions o = TestOptions();
  o.training.vmax_mps = 42.0;
  o.training.time_unit_seconds = 30;
  o.training.horizon_units = 77;
  FtlEngine engine(o);
  auto ev = engine.evidence_options();
  EXPECT_DOUBLE_EQ(ev.vmax_mps, 42.0);
  EXPECT_EQ(ev.time_unit_seconds, 30);
  EXPECT_EQ(ev.horizon_units, 77);
}

}  // namespace
}  // namespace ftl::core
