#include <gtest/gtest.h>

#include "io/report_json.h"

namespace ftl::io {
namespace {

TEST(JsonWriterTest, FlatObject) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a");
  w.Value(int64_t{1});
  w.Key("b");
  w.Value("two");
  w.Key("c");
  w.Value(true);
  w.Key("d");
  w.Null();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":\"two\",\"c\":true,\"d\":null}");
}

TEST(JsonWriterTest, NestedContainers) {
  JsonWriter w;
  w.BeginObject();
  w.Key("xs");
  w.BeginArray();
  w.Value(int64_t{1});
  w.Value(int64_t{2});
  w.BeginObject();
  w.Key("y");
  w.Value(0.5);
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"xs\":[1,2,{\"y\":0.5}]}");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.BeginObject();
  w.Key("weird\"key");
  w.Value("line\nbreak\\slash\ttab");
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"weird\\\"key\":\"line\\nbreak\\\\slash\\ttab\"}");
}

TEST(JsonWriterTest, ControlCharactersEscaped) {
  JsonWriter w;
  w.Value(std::string("a\x01") + "b");
  EXPECT_EQ(w.str(), "\"a\\u0001b\"");
}

TEST(JsonWriterTest, DoublePrecision15Digits) {
  JsonWriter w;
  w.Value(0.12345678901234);  // 14 significant digits survive
  EXPECT_EQ(w.str(), "0.12345678901234");
}

TEST(ReportJsonTest, QueryResult) {
  core::QueryResult r;
  core::MatchCandidate c;
  c.label = "trip-7";
  c.index = 7;
  c.score = 0.75;
  c.p1 = 0.9;
  c.p2 = 1.0 / 6.0;
  c.k_observed = 2;
  c.n_segments = 31;
  r.candidates.push_back(c);
  r.selectiveness = 0.004;
  std::string json = QueryResultToJson("log-3", r);
  EXPECT_NE(json.find("\"query\":\"log-3\""), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"trip-7\""), std::string::npos);
  EXPECT_NE(json.find("\"score\":0.75"), std::string::npos);
  EXPECT_NE(json.find("\"segments\":31"), std::string::npos);
  EXPECT_NE(json.find("\"selectiveness\":0.004"), std::string::npos);
}

TEST(ReportJsonTest, EmptyResult) {
  core::QueryResult r;
  std::string json = QueryResultToJson("q", r);
  EXPECT_NE(json.find("\"candidates\":[]"), std::string::npos);
}

TEST(ReportJsonTest, Metrics) {
  eval::WorkloadMetrics m;
  m.num_queries = 3;
  m.perceptiveness = 2.0 / 3.0;
  m.selectiveness = 0.01;
  m.mean_candidates = 1.5;
  m.true_match_ranks = {0, -1, 4};
  std::string json = MetricsToJson(m);
  EXPECT_NE(json.find("\"num_queries\":3"), std::string::npos);
  EXPECT_NE(json.find("\"true_match_ranks\":[0,-1,4]"),
            std::string::npos);
}

TEST(ReportJsonTest, Clusters) {
  traj::TrajectoryDatabase a("a"), b("b");
  (void)a.Add(traj::Trajectory("phone-1", 1, {}));
  (void)b.Add(traj::Trajectory("card-1", 1, {}));
  std::vector<core::IdentityCluster> clusters(1);
  clusters[0].members = {{0, 0}, {1, 0}};
  std::string json = ClustersToJson(clusters, {&a, &b});
  EXPECT_NE(json.find("\"label\":\"phone-1\""), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"card-1\""), std::string::npos);
  EXPECT_NE(json.find("\"source\":1"), std::string::npos);
}

TEST(ReportJsonTest, ClusterWithMissingDbOmitsLabel) {
  std::vector<core::IdentityCluster> clusters(1);
  clusters[0].members = {{0, 5}, {1, 0}};
  traj::TrajectoryDatabase b("b");
  (void)b.Add(traj::Trajectory("card-9", 2, {}));
  // Source 0 db missing; index 5 out of range anyway.
  std::string json = ClustersToJson(clusters, {nullptr, &b});
  EXPECT_EQ(json.find("\"label\":\"phone"), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"card-9\""), std::string::npos);
}

}  // namespace
}  // namespace ftl::io
