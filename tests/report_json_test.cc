#include <gtest/gtest.h>

#include "io/json_parse.h"
#include "io/report_json.h"

namespace ftl::io {
namespace {

TEST(JsonWriterTest, FlatObject) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a");
  w.Value(int64_t{1});
  w.Key("b");
  w.Value("two");
  w.Key("c");
  w.Value(true);
  w.Key("d");
  w.Null();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":\"two\",\"c\":true,\"d\":null}");
}

TEST(JsonWriterTest, NestedContainers) {
  JsonWriter w;
  w.BeginObject();
  w.Key("xs");
  w.BeginArray();
  w.Value(int64_t{1});
  w.Value(int64_t{2});
  w.BeginObject();
  w.Key("y");
  w.Value(0.5);
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"xs\":[1,2,{\"y\":0.5}]}");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.BeginObject();
  w.Key("weird\"key");
  w.Value("line\nbreak\\slash\ttab");
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"weird\\\"key\":\"line\\nbreak\\\\slash\\ttab\"}");
}

TEST(JsonWriterTest, ControlCharactersEscaped) {
  JsonWriter w;
  w.Value(std::string("a\x01") + "b");
  EXPECT_EQ(w.str(), "\"a\\u0001b\"");
}

TEST(JsonWriterTest, DoublePrecision15Digits) {
  JsonWriter w;
  w.Value(0.12345678901234);  // 14 significant digits survive
  EXPECT_EQ(w.str(), "0.12345678901234");
}

TEST(ReportJsonTest, QueryResult) {
  core::QueryResult r;
  core::MatchCandidate c;
  c.label = "trip-7";
  c.index = 7;
  c.score = 0.75;
  c.p1 = 0.9;
  c.p2 = 1.0 / 6.0;
  c.k_observed = 2;
  c.n_segments = 31;
  r.candidates.push_back(c);
  r.selectiveness = 0.004;
  std::string json = QueryResultToJson("log-3", r);
  EXPECT_NE(json.find("\"query\":\"log-3\""), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"trip-7\""), std::string::npos);
  EXPECT_NE(json.find("\"score\":0.75"), std::string::npos);
  EXPECT_NE(json.find("\"segments\":31"), std::string::npos);
  EXPECT_NE(json.find("\"selectiveness\":0.004"), std::string::npos);
}

TEST(ReportJsonTest, EmptyResult) {
  core::QueryResult r;
  std::string json = QueryResultToJson("q", r);
  EXPECT_NE(json.find("\"candidates\":[]"), std::string::npos);
}

TEST(ReportJsonTest, Metrics) {
  eval::WorkloadMetrics m;
  m.num_queries = 3;
  m.perceptiveness = 2.0 / 3.0;
  m.selectiveness = 0.01;
  m.mean_candidates = 1.5;
  m.true_match_ranks = {0, -1, 4};
  std::string json = MetricsToJson(m);
  EXPECT_NE(json.find("\"num_queries\":3"), std::string::npos);
  EXPECT_NE(json.find("\"true_match_ranks\":[0,-1,4]"),
            std::string::npos);
}

TEST(ReportJsonTest, Clusters) {
  traj::TrajectoryDatabase a("a"), b("b");
  (void)a.Add(traj::Trajectory("phone-1", 1, {}));
  (void)b.Add(traj::Trajectory("card-1", 1, {}));
  std::vector<core::IdentityCluster> clusters(1);
  clusters[0].members = {{0, 0}, {1, 0}};
  std::string json = ClustersToJson(clusters, {&a, &b});
  EXPECT_NE(json.find("\"label\":\"phone-1\""), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"card-1\""), std::string::npos);
  EXPECT_NE(json.find("\"source\":1"), std::string::npos);
}

// ------------------------------------------------------- JSON parser
// io::ParseJson is the request-body parser for `ftl serve`; these
// round-trip it against the writer and poke the classic edge cases.

TEST(JsonParseTest, ParsesScalars) {
  auto null_v = ParseJson("null");
  ASSERT_TRUE(null_v.ok());
  EXPECT_TRUE(null_v.value().is_null());

  auto true_v = ParseJson(" true ");
  ASSERT_TRUE(true_v.ok());
  EXPECT_TRUE(true_v.value().AsBool());

  auto num = ParseJson("-12.5e2");
  ASSERT_TRUE(num.ok());
  EXPECT_DOUBLE_EQ(num.value().AsDouble(), -1250.0);

  auto str = ParseJson("\"hi\\n\\\"there\\\"\"");
  ASSERT_TRUE(str.ok());
  EXPECT_EQ(str.value().AsString(), "hi\n\"there\"");
}

TEST(JsonParseTest, ParsesContainersAndFind) {
  auto r = ParseJson(
      "{\"query\":\"log-3\",\"top\":5,\"candidates\":[\"a\",\"b\"],"
      "\"nested\":{\"x\":true}}");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const JsonValue& v = r.value();
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.Find("query")->AsString(), "log-3");
  auto top = v.Find("top")->AsInt64();
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top.value(), 5);
  ASSERT_TRUE(v.Find("candidates")->is_array());
  EXPECT_EQ(v.Find("candidates")->items().size(), 2u);
  EXPECT_EQ(v.Find("candidates")->items()[1].AsString(), "b");
  EXPECT_TRUE(v.Find("nested")->Find("x")->AsBool());
  EXPECT_EQ(v.Find("absent"), nullptr);
}

TEST(JsonParseTest, UnicodeEscapesIncludingSurrogatePairs) {
  auto bmp = ParseJson("\"\\u00e9\"");  // é
  ASSERT_TRUE(bmp.ok());
  EXPECT_EQ(bmp.value().AsString(), "\xc3\xa9");

  auto astral = ParseJson("\"\\ud83d\\ude00\"");  // 😀
  ASSERT_TRUE(astral.ok());
  EXPECT_EQ(astral.value().AsString(), "\xf0\x9f\x98\x80");

  // A lone high surrogate is malformed.
  EXPECT_FALSE(ParseJson("\"\\ud83d\"").ok());
}

TEST(JsonParseTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "{\"a\":}", "[1,]", "{\"a\" 1}", "tru", "\"unterminated",
        "01", "1.2.3", "{}extra", "{\"a\":1,}", "nan"}) {
    EXPECT_FALSE(ParseJson(bad).ok()) << "accepted: " << bad;
  }
}

TEST(JsonParseTest, ReportsByteOffsetInErrors) {
  auto r = ParseJson("{\"a\": nope}");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("byte 6"), std::string::npos)
      << r.status().message();
}

TEST(JsonParseTest, EnforcesDepthLimit) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  JsonParseOptions opts;
  opts.max_depth = 64;
  EXPECT_FALSE(ParseJson(deep, opts).ok());
  opts.max_depth = 128;
  EXPECT_TRUE(ParseJson(deep, opts).ok());
}

TEST(JsonParseTest, RoundTripsWriterOutput) {
  JsonWriter w;
  w.BeginObject();
  w.Key("query");
  w.Value("log-0");
  w.Key("score");
  w.Value(0.999959335156716);
  w.Key("truncated");
  w.Value(false);
  w.EndObject();
  auto r = ParseJson(w.str());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().Find("query")->AsString(), "log-0");
  EXPECT_DOUBLE_EQ(r.value().Find("score")->AsDouble(), 0.999959335156716);
  EXPECT_FALSE(r.value().Find("truncated")->AsBool());
}

TEST(ReportJsonTest, QueryResultCarriesTruncationMarkers) {
  core::QueryResult result;
  result.selectiveness = 0.25;
  result.truncated = true;
  result.evaluated = 7;
  std::string json = QueryResultToJson("log-1", result);
  EXPECT_NE(json.find("\"truncated\":true"), std::string::npos);
  EXPECT_NE(json.find("\"evaluated\":7"), std::string::npos);
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

TEST(ReportJsonTest, ClusterWithMissingDbOmitsLabel) {
  std::vector<core::IdentityCluster> clusters(1);
  clusters[0].members = {{0, 5}, {1, 0}};
  traj::TrajectoryDatabase b("b");
  (void)b.Add(traj::Trajectory("card-9", 2, {}));
  // Source 0 db missing; index 5 out of range anyway.
  std::string json = ClustersToJson(clusters, {nullptr, &b});
  EXPECT_EQ(json.find("\"label\":\"phone"), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"card-9\""), std::string::npos);
}

}  // namespace
}  // namespace ftl::io
