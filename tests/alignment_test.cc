#include <gtest/gtest.h>

#include "traj/alignment.h"
#include "util/rng.h"

namespace ftl::traj {
namespace {

Record R(double x, double y, Timestamp t) { return Record{{x, y}, t}; }

Trajectory T(const std::string& label, std::vector<Record> recs) {
  return Trajectory(label, 0, std::move(recs));
}

TEST(AlignmentTest, MergesInTimeOrder) {
  Trajectory p = T("p", {R(1, 0, 10), R(2, 0, 30)});
  Trajectory q = T("q", {R(3, 0, 20), R(4, 0, 40)});
  auto w = Align(p, q);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w[0].record.t, 10);
  EXPECT_EQ(w[1].record.t, 20);
  EXPECT_EQ(w[2].record.t, 30);
  EXPECT_EQ(w[3].record.t, 40);
  EXPECT_EQ(w[0].source, Source::kP);
  EXPECT_EQ(w[1].source, Source::kQ);
  EXPECT_EQ(w[2].source, Source::kP);
  EXPECT_EQ(w[3].source, Source::kQ);
}

TEST(AlignmentTest, PaperFigure3Pattern) {
  // P: p1 p2 p3 p4, Q: q1 q2 q3 q4 interleaved as
  // p1 q1 q2 p2 p3 q3 p4 q4 (Figure 3).
  Trajectory p = T("p", {R(0, 0, 1), R(0, 0, 4), R(0, 0, 5), R(0, 0, 7)});
  Trajectory q = T("q", {R(0, 0, 2), R(0, 0, 3), R(0, 0, 6), R(0, 0, 8)});
  auto w = Align(p, q);
  std::vector<Source> expect = {Source::kP, Source::kQ, Source::kQ,
                                Source::kP, Source::kP, Source::kQ,
                                Source::kP, Source::kQ};
  ASSERT_EQ(w.size(), expect.size());
  for (size_t i = 0; i < w.size(); ++i) EXPECT_EQ(w[i].source, expect[i]);
  // Mutual segments: (p1,q1),(q2,p2),(p3,q3),(q3,p4),(p4,q4) -> 5.
  EXPECT_EQ(CountMutualSegments(p, q), 5u);
}

TEST(AlignmentTest, TieBreaksPFirst) {
  Trajectory p = T("p", {R(0, 0, 10)});
  Trajectory q = T("q", {R(0, 0, 10)});
  auto w = Align(p, q);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].source, Source::kP);
  EXPECT_EQ(w[1].source, Source::kQ);
}

TEST(AlignmentTest, EmptyTrajectories) {
  Trajectory p = T("p", {});
  Trajectory q = T("q", {R(0, 0, 1)});
  EXPECT_EQ(Align(p, q).size(), 1u);
  EXPECT_EQ(CountMutualSegments(p, q), 0u);
  EXPECT_EQ(CountMutualSegments(p, p), 0u);
}

TEST(AlignmentTest, SegmentCountIsTotalMinusOne) {
  Trajectory p = T("p", {R(0, 0, 1), R(0, 0, 5), R(0, 0, 9)});
  Trajectory q = T("q", {R(0, 0, 3), R(0, 0, 7)});
  size_t segments = 0;
  ForEachSegment(p, q, [&segments](const Segment&) { ++segments; });
  EXPECT_EQ(segments, 4u);
}

TEST(AlignmentTest, SelfVsMutualClassification) {
  // P at t=1,2 then Q at t=3,4: segments (1,2)self (2,3)mutual (3,4)self.
  Trajectory p = T("p", {R(0, 0, 1), R(0, 0, 2)});
  Trajectory q = T("q", {R(0, 0, 3), R(0, 0, 4)});
  std::vector<bool> mutual;
  ForEachSegment(p, q, [&mutual](const Segment& s) {
    mutual.push_back(s.mutual);
  });
  ASSERT_EQ(mutual.size(), 3u);
  EXPECT_FALSE(mutual[0]);
  EXPECT_TRUE(mutual[1]);
  EXPECT_FALSE(mutual[2]);
}

TEST(AlignmentTest, PerfectInterleavingAllMutual) {
  Trajectory p = T("p", {R(0, 0, 1), R(0, 0, 3), R(0, 0, 5)});
  Trajectory q = T("q", {R(0, 0, 2), R(0, 0, 4), R(0, 0, 6)});
  EXPECT_EQ(CountMutualSegments(p, q), 5u);
}

TEST(AlignmentTest, DisjointSpansOneMutualSegment) {
  Trajectory p = T("p", {R(0, 0, 1), R(0, 0, 2)});
  Trajectory q = T("q", {R(0, 0, 100), R(0, 0, 200)});
  EXPECT_EQ(CountMutualSegments(p, q), 1u);
}

TEST(AlignmentTest, MutualSegmentsMatchForEach) {
  Trajectory p = T("p", {R(0, 0, 1), R(0, 0, 4)});
  Trajectory q = T("q", {R(0, 0, 2), R(0, 0, 6)});
  auto ms = MutualSegments(p, q);
  size_t counted = CountMutualSegments(p, q);
  EXPECT_EQ(ms.size(), counted);
  for (const auto& s : ms) EXPECT_TRUE(s.mutual);
}

TEST(AlignmentTest, SegmentTimeLength) {
  Trajectory p = T("p", {R(0, 0, 10)});
  Trajectory q = T("q", {R(0, 0, 70)});
  auto ms = MutualSegments(p, q);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(ms[0].TimeLengthSeconds(), 60);
}

TEST(AlignmentTest, StreamingMatchesMaterialized) {
  // Property: ForEachSegment yields exactly the adjacent pairs of Align.
  Trajectory p = T("p", {R(1, 1, 5), R(2, 2, 15), R(3, 3, 25), R(4, 4, 99)});
  Trajectory q = T("q", {R(5, 5, 10), R(6, 6, 20), R(7, 7, 50)});
  auto aligned = Align(p, q);
  std::vector<Segment> streamed;
  ForEachSegment(p, q, [&streamed](const Segment& s) {
    streamed.push_back(s);
  });
  ASSERT_EQ(streamed.size(), aligned.size() - 1);
  for (size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].first, aligned[i].record);
    EXPECT_EQ(streamed[i].second, aligned[i + 1].record);
    EXPECT_EQ(streamed[i].mutual,
              aligned[i].source != aligned[i + 1].source);
  }
}

TEST(AlignmentTest, VisitSegmentsMatchesForEach) {
  // The inlined template variant must yield the exact segment sequence
  // of the type-erased wrapper.
  Trajectory p = T("p", {R(1, 1, 5), R(2, 2, 15), R(3, 3, 25)});
  Trajectory q = T("q", {R(5, 5, 10), R(6, 6, 15), R(7, 7, 50)});
  std::vector<Segment> erased, inlined;
  ForEachSegment(p, q, [&erased](const Segment& s) { erased.push_back(s); });
  VisitSegments(p, q, [&inlined](const Segment& s) { inlined.push_back(s); });
  ASSERT_EQ(inlined.size(), erased.size());
  for (size_t i = 0; i < erased.size(); ++i) {
    EXPECT_EQ(inlined[i].first, erased[i].first);
    EXPECT_EQ(inlined[i].second, erased[i].second);
    EXPECT_EQ(inlined[i].mutual, erased[i].mutual);
  }
}

TEST(AlignmentTest, SegmentCursorMatchesVisit) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Record> pr, qr;
    size_t np = rng.Index(20);
    size_t nq = rng.Index(20);
    for (size_t i = 0; i < np; ++i) {
      pr.push_back(R(rng.Uniform(0, 100), rng.Uniform(0, 100),
                     rng.UniformInt(0, 1000)));
    }
    for (size_t i = 0; i < nq; ++i) {
      qr.push_back(R(rng.Uniform(0, 100), rng.Uniform(0, 100),
                     rng.UniformInt(0, 1000)));
    }
    Trajectory p("p", 0, std::move(pr));
    Trajectory q("q", 1, std::move(qr));
    std::vector<Segment> visited;
    VisitSegments(p, q,
                  [&visited](const Segment& s) { visited.push_back(s); });
    SegmentCursor cur(p, q);
    Segment s;
    size_t i = 0;
    while (cur.Next(&s)) {
      ASSERT_LT(i, visited.size()) << "trial " << trial;
      EXPECT_EQ(s.first, visited[i].first) << "trial " << trial;
      EXPECT_EQ(s.second, visited[i].second) << "trial " << trial;
      EXPECT_EQ(s.mutual, visited[i].mutual) << "trial " << trial;
      ++i;
    }
    EXPECT_EQ(i, visited.size()) << "trial " << trial;
  }
}

TEST(AlignmentTest, SegmentCursorEmptyAndSingleton) {
  Trajectory empty = T("e", {});
  Trajectory one = T("o", {R(0, 0, 5)});
  Segment s;
  SegmentCursor both_empty(empty, empty);
  EXPECT_FALSE(both_empty.Next(&s));
  SegmentCursor single(one, empty);
  EXPECT_FALSE(single.Next(&s));
  Trajectory two = T("t", {R(0, 0, 1), R(0, 0, 9)});
  SegmentCursor pair(two, empty);
  ASSERT_TRUE(pair.Next(&s));
  EXPECT_FALSE(s.mutual);
  EXPECT_EQ(s.TimeLengthSeconds(), 8);
  EXPECT_FALSE(pair.Next(&s));
}

TEST(AlignmentTest, TimeSpanOverlap) {
  Trajectory p = T("p", {R(0, 0, 10), R(0, 0, 50)});
  Trajectory q = T("q", {R(0, 0, 30), R(0, 0, 90)});
  EXPECT_EQ(TimeSpanOverlapSeconds(p, q), 20);
  Trajectory r = T("r", {R(0, 0, 100), R(0, 0, 200)});
  EXPECT_EQ(TimeSpanOverlapSeconds(p, r), 0);
  Trajectory e = T("e", {});
  EXPECT_EQ(TimeSpanOverlapSeconds(p, e), 0);
}

// Parameterized property sweep: mutual + self segments == total - 1 for
// random sizes.
class AlignmentPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AlignmentPropertyTest, SegmentPartition) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  std::vector<Record> pr, qr;
  size_t np = 1 + rng.Index(40);
  size_t nq = 1 + rng.Index(40);
  for (size_t i = 0; i < np; ++i) {
    pr.push_back(R(rng.Uniform(0, 1000), rng.Uniform(0, 1000),
                   rng.UniformInt(0, 100000)));
  }
  for (size_t i = 0; i < nq; ++i) {
    qr.push_back(R(rng.Uniform(0, 1000), rng.Uniform(0, 1000),
                   rng.UniformInt(0, 100000)));
  }
  Trajectory p("p", 0, std::move(pr));
  Trajectory q("q", 1, std::move(qr));
  size_t mutual = 0, self = 0;
  ForEachSegment(p, q, [&](const Segment& s) { s.mutual ? ++mutual : ++self; });
  EXPECT_EQ(mutual + self, np + nq - 1);
  EXPECT_EQ(mutual, CountMutualSegments(p, q));
  // Alignment is symmetric in segment counts.
  EXPECT_EQ(CountMutualSegments(q, p), mutual);
}

INSTANTIATE_TEST_SUITE_P(RandomTrajectories, AlignmentPropertyTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace ftl::traj
