// Chaos harness: sweeps every failpoint in the catalog across the full
// train -> save -> load -> query pipeline and asserts that each injected
// fault surfaces as a clean non-OK Status (no crash, no partial state
// escaping), and that results are byte-identical to the fault-free
// baseline once the fault is disarmed.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "ftl/ftl.h"

namespace ftl {
namespace {

sim::PopulationData ChaosPopulation() {
  sim::PopulationOptions po;
  po.num_persons = 12;
  po.duration_days = 3;
  po.cdr_accesses_per_day = 15.0;
  po.transit_accesses_per_day = 15.0;
  po.seed = 17;
  return sim::SimulatePopulation(po);
}

core::EngineOptions ChaosOptions() {
  core::EngineOptions o;
  o.training.horizon_units = 20;
  o.training.acceptance_pairs_per_db = 100;
  o.alpha = {0.01, 0.2};
  o.naive_bayes.phi_r = 0.05;
  return o;
}

std::string TempPath(const std::string& name) {
  // Per-process names: ctest runs each ChaosTest case as its own
  // parallel process, and the fault-sweep cases deliberately leave torn
  // files behind — a shared path would let one case corrupt another's
  // pipeline inputs.
  static const std::string suffix =
      "." + std::to_string(static_cast<long long>(::getpid()));
  return (std::filesystem::temp_directory_path() / (name + suffix)).string();
}

/// The outcome of one end-to-end pipeline run: either a failure detail
/// ("<step>: <status>") or a fingerprint of every query result, precise
/// enough that two runs agree only if their outputs are identical.
struct PipelineOutcome {
  bool ok = false;
  std::string detail;  // error: "<step>: <status>"; success: fingerprint
};

PipelineOutcome Fail(const std::string& step, const Status& st) {
  return {false, step + ": " + st.ToString()};
}

/// WriteCsv -> ReadCsv -> Train -> WriteModel x2 -> ReadModel x2 ->
/// SetModels -> Query + BatchQuery -> WriteFtb -> ReadFtb -> flat
/// Query, through every failpoint site.
PipelineOutcome RunPipeline(const sim::PopulationData& data) {
  std::string p_csv = TempPath("ftl_chaos_p.csv");
  std::string q_csv = TempPath("ftl_chaos_q.csv");
  std::string rej_path = TempPath("ftl_chaos_rej.model");
  std::string acc_path = TempPath("ftl_chaos_acc.model");
  std::string q_ftb = TempPath("ftl_chaos_q.ftb");

  Status st = io::WriteCsv(data.cdr_db, p_csv);
  if (!st.ok()) return Fail("write_csv", st);
  st = io::WriteCsv(data.transit_db, q_csv);
  if (!st.ok()) return Fail("write_csv", st);
  auto p = io::ReadCsv(p_csv, "p");
  if (!p.ok()) return Fail("read_csv", p.status());
  auto q = io::ReadCsv(q_csv, "q");
  if (!q.ok()) return Fail("read_csv", q.status());

  core::FtlEngine trainer(ChaosOptions());
  st = trainer.Train(p.value(), q.value());
  if (!st.ok()) return Fail("train", st);
  st = io::WriteModel(trainer.models().rejection, rej_path);
  if (!st.ok()) return Fail("write_model", st);
  st = io::WriteModel(trainer.models().acceptance, acc_path);
  if (!st.ok()) return Fail("write_model", st);
  auto rej = io::ReadModel(rej_path);
  if (!rej.ok()) return Fail("read_model", rej.status());
  auto acc = io::ReadModel(acc_path);
  if (!acc.ok()) return Fail("read_model", acc.status());

  core::FtlEngine engine(ChaosOptions());
  engine.SetModels({std::move(rej).value(), std::move(acc).value()});

  std::string fingerprint;
  auto single = engine.Query(p.value()[0], q.value(),
                             core::Matcher::kAlphaFilter);
  if (!single.ok()) return Fail("query", single.status());
  std::vector<traj::Trajectory> queries(p.value().begin(),
                                        p.value().begin() + 4);
  auto batch = engine.BatchQuery(queries, q.value(),
                                 core::Matcher::kNaiveBayes);
  if (!batch.ok()) return Fail("batch_query", batch.status());

  auto add = [&fingerprint](const core::QueryResult& r) {
    fingerprint += FormatDouble(r.selectiveness, 10) + "|";
    for (const auto& c : r.candidates) {
      fingerprint += c.label + ":" + FormatDouble(c.score, 12) + ":" +
                     FormatDouble(c.p1, 12) + ":" +
                     FormatDouble(c.p2, 12) + ";";
    }
    fingerprint += "\n";
  };
  add(single.value());
  for (const auto& r : batch.value()) add(r);

  // Columnar leg: the same query against Q stored as FTB must survive
  // the sweep too, and its candidates join the fingerprint (the flat
  // path promises byte-identical scores, so a divergence breaks the
  // baseline-equality assertions).
  st = io::WriteFtb(q.value(), q_ftb);
  if (!st.ok()) return Fail("write_ftb", st);
  auto flat_q = io::ReadFtb(q_ftb);
  if (!flat_q.ok()) return Fail("read_ftb", flat_q.status());
  traj::FlatDatabase flat_p = traj::FlatDatabase::FromDatabase(p.value());
  auto flat_single = engine.Query(flat_p[0], flat_q.value(),
                                  core::Matcher::kAlphaFilter);
  if (!flat_single.ok()) return Fail("flat_query", flat_single.status());
  add(flat_single.value());

  // Store leg: the store.* failpoint sites live off the query path, so
  // walk them explicitly — create/recover, append (wal.append +
  // wal.sync under kAlways), flush twice (flush.segment +
  // manifest.swap), compact the two segments (compact.write +
  // compact.swap), append again so the live WAL has a frame, then
  // reopen: the second Recover replays that frame (recovery.replay).
  // The materialized totals join the fingerprint.
  std::string store_dir = TempPath("ftl_chaos_store");
  std::error_code ec;
  std::filesystem::remove_all(store_dir, ec);
  store::StoreOptions so;
  so.wal_sync = store::WalSync::kAlways;
  so.flush_threshold_records = 1 << 20;  // flush only when asked
  {
    auto s = store::Store::Create(store_dir, so);
    st = s->Recover(nullptr);
    if (!st.ok()) return Fail("store_recover", st);
    store::IngestBatch flushed, flushed2, live;
    for (int i = 0; i < 4; ++i) {
      flushed.rows.push_back({"chaos-" + std::to_string(i), 0,
                              traj::Timestamp(100 + 10 * i), 1.0 * i, -1.0 * i});
      flushed2.rows.push_back({"chaos-" + std::to_string(i), 0,
                               traj::Timestamp(300 + 10 * i), 1.5 * i,
                               -1.5 * i});
      live.rows.push_back({"chaos-" + std::to_string(i), 0,
                           traj::Timestamp(500 + 10 * i), 2.0 * i, -2.0 * i});
    }
    st = s->Append(flushed);
    if (!st.ok()) return Fail("store_append", st);
    st = s->Flush();
    if (!st.ok()) return Fail("store_flush", st);
    st = s->Append(flushed2);
    if (!st.ok()) return Fail("store_append", st);
    st = s->Flush();
    if (!st.ok()) return Fail("store_flush", st);
    auto cst = s->CompactOnce(/*force=*/true);
    if (!cst.ok()) return Fail("store_compact", cst.status());
    if (cst.value().inputs != 2) {
      return Fail("store_compact",
                  Status::Internal("expected a 2-segment merge"));
    }
    st = s->Append(live);
    if (!st.ok()) return Fail("store_append", st);
  }
  auto reopened = store::Store::Open(store_dir, so);
  if (!reopened.ok()) return Fail("store_reopen", reopened.status());
  traj::TrajectoryDatabase recovered =
      reopened.value()->MaterializeAll("chaos");
  fingerprint += "store:" + std::to_string(recovered.size()) + ":" +
                 std::to_string(reopened.value()->total_records()) + ";\n";
  std::filesystem::remove_all(store_dir, ec);

  for (const auto& f : {p_csv, q_csv, rej_path, acc_path, q_ftb}) {
    std::remove(f.c_str());
  }
  return {true, fingerprint};
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(ChaosTest, BaselineIsDeterministic) {
  auto data = ChaosPopulation();
  auto first = RunPipeline(data);
  ASSERT_TRUE(first.ok) << first.detail;
  auto second = RunPipeline(data);
  ASSERT_TRUE(second.ok) << second.detail;
  EXPECT_EQ(first.detail, second.detail);
  EXPECT_NE(first.detail.find(":"), std::string::npos)
      << "fingerprint carries no candidates; the sweep below would "
         "vacuously pass";
}

// The acceptance gate: every site, armed one at a time with each hard
// fault, must produce a clean error — and full recovery after disarm.
TEST_F(ChaosTest, HardFaultSweepFailsCleanAndRecovers) {
  auto data = ChaosPopulation();
  auto baseline = RunPipeline(data);
  ASSERT_TRUE(baseline.ok) << baseline.detail;
  for (failpoint::Action action :
       {failpoint::Action::kError, failpoint::Action::kAllocFail}) {
    for (const std::string& site : failpoint::Catalog()) {
      failpoint::Arm(site, {action, 0});
      auto faulted = RunPipeline(data);
      EXPECT_FALSE(faulted.ok)
          << site << " armed but the pipeline still succeeded";
      EXPECT_NE(faulted.detail.find("failpoint"), std::string::npos)
          << site << ": unexpected failure detail: " << faulted.detail;
      failpoint::DisarmAll();
      auto recovered = RunPipeline(data);
      ASSERT_TRUE(recovered.ok) << site << ": " << recovered.detail;
      EXPECT_EQ(recovered.detail, baseline.detail)
          << site << ": results changed after fault recovery";
    }
  }
}

TEST_F(ChaosTest, PartialWriteTearsModelFileButReadFailsClean) {
  auto data = ChaosPopulation();
  core::FtlEngine trainer(ChaosOptions());
  ASSERT_TRUE(trainer.Train(data.cdr_db, data.transit_db).ok());
  std::string path = TempPath("ftl_chaos_torn.model");

  failpoint::Arm("io.write_model", {failpoint::Action::kPartialWrite, 10});
  Status st = io::WriteModel(trainer.models().rejection, path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_NE(st.message().find("partial write"), std::string::npos)
      << st.ToString();
  failpoint::DisarmAll();

  // The torn file exists but must be rejected cleanly on load.
  ASSERT_TRUE(std::filesystem::exists(path));
  auto torn = io::ReadModel(path);
  EXPECT_FALSE(torn.ok());
  std::remove(path.c_str());
}

TEST_F(ChaosTest, PartialWriteTearsCsvButReadFailsClean) {
  auto data = ChaosPopulation();
  std::string path = TempPath("ftl_chaos_torn.csv");
  failpoint::Arm("io.write_csv", {failpoint::Action::kPartialWrite, 8});
  Status st = io::WriteCsv(data.cdr_db, path);
  EXPECT_FALSE(st.ok());
  failpoint::DisarmAll();
  auto torn = io::ReadCsv(path, "torn");
  EXPECT_FALSE(torn.ok());  // torn mid-header
  std::remove(path.c_str());
}

TEST_F(ChaosTest, DelayEverywhereIsHarmless) {
  auto data = ChaosPopulation();
  auto baseline = RunPipeline(data);
  ASSERT_TRUE(baseline.ok) << baseline.detail;
  for (const std::string& site : failpoint::Catalog()) {
    if (site == "core.query.candidate") continue;  // per-candidate: slow
    failpoint::Arm(site, {failpoint::Action::kDelay, 1});
  }
  auto delayed = RunPipeline(data);
  ASSERT_TRUE(delayed.ok) << delayed.detail;
  EXPECT_EQ(delayed.detail, baseline.detail);
}

}  // namespace
}  // namespace ftl
