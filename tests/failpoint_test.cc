#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>

#include "util/status.h"

namespace ftl::failpoint {
namespace {

/// Every test leaves the global registry clean so suites can run in any
/// order (and so armed points never leak into other test binaries'
/// assumptions about the fast path).
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { DisarmAll(); }
  void TearDown() override {
    DisarmAll();
    unsetenv("FTL_FAILPOINTS");
  }
};

TEST_F(FailpointTest, NothingArmedByDefault) {
  EXPECT_FALSE(AnyArmed());
  EXPECT_TRUE(Armed().empty());
  EXPECT_TRUE(Check("io.read_csv").ok());
}

TEST_F(FailpointTest, ArmDisarmTogglesFastPath) {
  Arm("io.read_csv", {Action::kError, 0});
  EXPECT_TRUE(AnyArmed());
  ASSERT_EQ(Armed().size(), 1u);
  EXPECT_EQ(Armed()[0], "io.read_csv");
  EXPECT_TRUE(Disarm("io.read_csv"));
  EXPECT_FALSE(AnyArmed());
  EXPECT_FALSE(Disarm("io.read_csv"));  // already gone
}

TEST_F(FailpointTest, ErrorActionInjectsNonOkStatus) {
  Arm("core.train", {Action::kError, 0});
  Status st = Check("core.train");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  // Unarmed sites are unaffected.
  EXPECT_TRUE(Check("io.read_csv").ok());
}

TEST_F(FailpointTest, AllocActionMentionsAllocationFailure) {
  Arm("core.train", {Action::kAllocFail, 0});
  Status st = Check("core.train");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("alloc"), std::string::npos) << st.ToString();
}

TEST_F(FailpointTest, DelayActionSleepsThenSucceeds) {
  Arm("core.query.candidate", {Action::kDelay, 30});
  auto start = std::chrono::steady_clock::now();
  Status st = Check("core.query.candidate");
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_TRUE(st.ok());
  EXPECT_GE(elapsed.count(), 25);
}

TEST_F(FailpointTest, HitCountAccumulatesAcrossDisarm) {
  int64_t before = HitCount("core.train");
  Arm("core.train", {Action::kError, 0});
  (void)Check("core.train");
  (void)Check("core.train");
  DisarmAll();
  EXPECT_EQ(HitCount("core.train"), before + 2);
}

TEST_F(FailpointTest, CheckIoReportsPartialWrite) {
  Arm("io.write_model", {Action::kPartialWrite, 7});
  Hit hit = CheckIo("io.write_model");
  EXPECT_TRUE(hit.status.ok());
  EXPECT_TRUE(hit.partial_write);
  EXPECT_EQ(hit.arg, 7);
}

TEST_F(FailpointTest, ConfigureParsesClauseList) {
  ASSERT_TRUE(Configure("io.read_csv=error;core.query.candidate=delay:5")
                  .ok());
  auto armed = Armed();
  EXPECT_EQ(armed.size(), 2u);
  EXPECT_FALSE(Check("io.read_csv").ok());
  EXPECT_TRUE(Check("core.query.candidate").ok());  // delay, then OK
}

TEST_F(FailpointTest, ConfigureRejectsMalformedSpecs) {
  EXPECT_FALSE(Configure("io.read_csv").ok());           // no action
  EXPECT_FALSE(Configure("io.read_csv=explode").ok());   // unknown action
  EXPECT_FALSE(Configure("io.read_csv=delay:xy").ok());  // bad arg
  EXPECT_FALSE(Configure("io.read_csv=delay:-1").ok());  // negative arg
  EXPECT_FALSE(AnyArmed());
}

TEST_F(FailpointTest, ConfigureEmptyStringIsNoOp) {
  EXPECT_TRUE(Configure("").ok());
  EXPECT_FALSE(AnyArmed());
}

TEST_F(FailpointTest, InitFromEnvArmsFromVariable) {
  ASSERT_EQ(setenv("FTL_FAILPOINTS", "core.train=error", 1), 0);
  ASSERT_TRUE(InitFromEnv().ok());
  EXPECT_FALSE(Check("core.train").ok());
  unsetenv("FTL_FAILPOINTS");
  EXPECT_TRUE(InitFromEnv().ok());  // unset variable: no-op, still OK
}

TEST_F(FailpointTest, CatalogListsAllSites) {
  auto catalog = Catalog();
  EXPECT_GE(catalog.size(), 6u);
  for (const char* site : {"io.read_csv", "io.write_csv", "io.read_model",
                           "io.write_model", "core.train",
                           "core.query.candidate"}) {
    bool found = false;
    for (const auto& name : catalog) found = found || name == site;
    EXPECT_TRUE(found) << "catalog is missing " << site;
  }
}

}  // namespace
}  // namespace ftl::failpoint
