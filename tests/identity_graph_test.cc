#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/identity_graph.h"
#include "sim/city.h"
#include "sim/observation.h"
#include "sim/path.h"

namespace ftl::core {
namespace {

SourceRef S(uint32_t source, uint32_t index) { return {source, index}; }

TEST(IdentityGraphTest, RejectsInvalidLinks) {
  IdentityGraph g({3, 3, 3});
  EXPECT_FALSE(g.AddLink(S(0, 0), S(0, 1), 0.5).ok());  // same source
  EXPECT_FALSE(g.AddLink(S(0, 5), S(1, 0), 0.5).ok());  // index range
  EXPECT_FALSE(g.AddLink(S(3, 0), S(1, 0), 0.5).ok());  // source range
  EXPECT_TRUE(g.AddLink(S(0, 0), S(1, 0), 0.5).ok());
  EXPECT_EQ(g.num_links(), 1u);
}

TEST(IdentityGraphTest, SimplePairCluster) {
  IdentityGraph g({2, 2});
  ASSERT_TRUE(g.AddLink(S(0, 0), S(1, 1), 0.9).ok());
  auto clusters = g.Resolve();
  ASSERT_EQ(clusters.size(), 1u);
  ASSERT_EQ(clusters[0].members.size(), 2u);
  EXPECT_EQ(clusters[0].members[0], S(0, 0));
  EXPECT_EQ(clusters[0].members[1], S(1, 1));
}

TEST(IdentityGraphTest, TransitiveMergeAcrossThreeSources) {
  // A0 = B0 and B0 = C0 merge into one identity even without a direct
  // A0 = C0 link — the benefit of multi-source linking.
  IdentityGraph g({1, 1, 1});
  ASSERT_TRUE(g.AddLink(S(0, 0), S(1, 0), 0.9).ok());
  ASSERT_TRUE(g.AddLink(S(1, 0), S(2, 0), 0.8).ok());
  auto clusters = g.Resolve();
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].members.size(), 3u);
}

TEST(IdentityGraphTest, ConflictingLinkSkipped) {
  // Two candidates from source 1 both claim A0; the higher-scoring one
  // wins, the other is a conflict.
  IdentityGraph g({1, 2});
  ASSERT_TRUE(g.AddLink(S(0, 0), S(1, 0), 0.9).ok());
  ASSERT_TRUE(g.AddLink(S(0, 0), S(1, 1), 0.7).ok());
  auto clusters = g.Resolve();
  ASSERT_EQ(clusters.size(), 1u);
  ASSERT_EQ(clusters[0].members.size(), 2u);
  EXPECT_EQ(clusters[0].members[1], S(1, 0));  // higher score won
  EXPECT_EQ(g.last_conflicts(), 1u);
}

TEST(IdentityGraphTest, IndirectSourceConflictBlocked) {
  // A0=B0 (0.9), A1=B0? no — build: A0=B0, C0=B0 fine; then A1=C0 would
  // drag A1 into a cluster already containing A0 (same source) ->
  // conflict.
  IdentityGraph g({2, 1, 1});
  ASSERT_TRUE(g.AddLink(S(0, 0), S(1, 0), 0.9).ok());
  ASSERT_TRUE(g.AddLink(S(1, 0), S(2, 0), 0.8).ok());
  ASSERT_TRUE(g.AddLink(S(0, 1), S(2, 0), 0.7).ok());
  auto clusters = g.Resolve();
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].members.size(), 3u);
  EXPECT_EQ(g.last_conflicts(), 1u);
}

TEST(IdentityGraphTest, MinScoreCutsWeakLinks) {
  IdentityGraph g({1, 1, 1});
  ASSERT_TRUE(g.AddLink(S(0, 0), S(1, 0), 0.9).ok());
  ASSERT_TRUE(g.AddLink(S(1, 0), S(2, 0), 0.2).ok());
  auto clusters = g.Resolve(0.5);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].members.size(), 2u);  // weak link excluded
}

TEST(IdentityGraphTest, RepeatedConsistentLinkIsNotConflict) {
  IdentityGraph g({1, 1});
  ASSERT_TRUE(g.AddLink(S(0, 0), S(1, 0), 0.9).ok());
  ASSERT_TRUE(g.AddLink(S(0, 0), S(1, 0), 0.8).ok());
  auto clusters = g.Resolve();
  EXPECT_EQ(clusters.size(), 1u);
  EXPECT_EQ(g.last_conflicts(), 0u);
}

TEST(IdentityGraphTest, NoLinksNoClusters) {
  IdentityGraph g({5, 5});
  EXPECT_TRUE(g.Resolve().empty());
}

/// End-to-end three-source linking: one population observed by three
/// independent services; pairwise FTL links reconciled into identities.
TEST(IdentityGraphTest, ThreeSourceEndToEnd) {
  using traj::TrajectoryDatabase;
  sim::CityModel city = sim::SingaporeLike();
  Rng master(4242);
  const size_t kPersons = 25;
  int64_t span = 7 * 86400;
  std::vector<TrajectoryDatabase> dbs(3);
  dbs[0].set_name("cdr");
  dbs[1].set_name("transit");
  dbs[2].set_name("payments");
  double rates_per_day[3] = {20.0, 15.0, 10.0};
  sim::NoiseModel noises[3] = {{0.0, 500.0, 0}, {20.0, 0.0, 0},
                               {30.0, 0.0, 0}};
  for (size_t i = 0; i < kPersons; ++i) {
    Rng rng = master.Fork();
    auto path = sim::GenerateWaypointPath(&rng, city, 0, span,
                                          {3.5 * 3600.0, 6000.0, 0.1});
    for (int s = 0; s < 3; ++s) {
      auto recs = sim::SamplePoisson(&rng, path,
                                     rates_per_day[s] / 86400.0,
                                     noises[s]);
      (void)dbs[s].Add(traj::Trajectory(
          "s" + std::to_string(s) + "-" + std::to_string(i),
          static_cast<traj::OwnerId>(i), std::move(recs)));
    }
  }

  EngineOptions eo;
  eo.training.horizon_units = 30;
  eo.naive_bayes.phi_r = 0.02;
  IdentityGraph graph({kPersons, kPersons, kPersons});
  for (uint32_t a = 0; a < 3; ++a) {
    for (uint32_t b = a + 1; b < 3; ++b) {
      FtlEngine engine(eo);
      ASSERT_TRUE(engine.Train(dbs[a], dbs[b]).ok());
      for (uint32_t qi = 0; qi < kPersons; ++qi) {
        auto r = engine.Query(dbs[a][qi], dbs[b], Matcher::kNaiveBayes);
        ASSERT_TRUE(r.ok());
        for (const auto& c : r.value().candidates) {
          ASSERT_TRUE(graph
                          .AddLink(S(a, qi),
                                   S(b, static_cast<uint32_t>(c.index)),
                                   c.score)
                          .ok());
        }
      }
    }
  }
  auto clusters = graph.Resolve(0.01);
  // Most clusters should be complete (3 members) and pure (one owner).
  size_t complete = 0, pure = 0;
  for (const auto& cluster : clusters) {
    if (cluster.members.size() == 3) ++complete;
    traj::OwnerId owner =
        dbs[cluster.members[0].source][cluster.members[0].index].owner();
    bool all_same = true;
    for (const auto& m : cluster.members) {
      if (dbs[m.source][m.index].owner() != owner) all_same = false;
    }
    if (all_same) ++pure;
  }
  ASSERT_GE(clusters.size(), kPersons * 7 / 10);
  EXPECT_GE(pure, clusters.size() * 8 / 10);
  EXPECT_GE(complete, clusters.size() / 2);
}

}  // namespace
}  // namespace ftl::core
