#include <gtest/gtest.h>

#include <cmath>

#include "traj/validation.h"

namespace ftl::traj {
namespace {

Record R(double x, double y, Timestamp t) { return Record{{x, y}, t}; }

TEST(ValidationTest, CleanDatabase) {
  TrajectoryDatabase db;
  (void)db.Add(Trajectory("a", 1, {R(0, 0, 0), R(10, 0, 60)}));
  auto r = ValidateDatabase(db);
  EXPECT_TRUE(r.clean);
  EXPECT_EQ(r.trajectories, 1u);
  EXPECT_EQ(r.records, 2u);
  EXPECT_EQ(r.speed_violations, 0u);
  EXPECT_NE(r.ToString().find("[clean]"), std::string::npos);
}

TEST(ValidationTest, CountsEmptyAndSingleton) {
  TrajectoryDatabase db;
  (void)db.Add(Trajectory("empty", 1, {}));
  (void)db.Add(Trajectory("one", 2, {R(0, 0, 0)}));
  auto r = ValidateDatabase(db);
  EXPECT_EQ(r.empty_trajectories, 1u);
  EXPECT_EQ(r.singleton_trajectories, 1u);
  EXPECT_FALSE(r.clean);
}

TEST(ValidationTest, DetectsNonFinite) {
  TrajectoryDatabase db;
  double nan = std::nan("");
  (void)db.Add(Trajectory("bad", 1, {R(nan, 0, 0), R(0, 0, 60)}));
  auto r = ValidateDatabase(db);
  EXPECT_EQ(r.non_finite_records, 1u);
  EXPECT_FALSE(r.clean);
}

TEST(ValidationTest, DetectsDuplicates) {
  TrajectoryDatabase db;
  (void)db.Add(Trajectory("dup", 1, {R(5, 5, 10), R(5, 5, 10), R(6, 6, 20)}));
  auto r = ValidateDatabase(db);
  EXPECT_EQ(r.duplicate_records, 1u);
}

TEST(ValidationTest, DetectsSpeedViolations) {
  TrajectoryDatabase db;
  // 100 km in 60 s.
  (void)db.Add(Trajectory("fast", 1, {R(0, 0, 0), R(100000, 0, 60)}));
  auto r = ValidateDatabase(db);
  EXPECT_EQ(r.speed_violations, 1u);
  EXPECT_GT(r.max_observed_speed_mps, 1000.0);
}

TEST(ValidationTest, SimultaneousApartIsViolation) {
  TrajectoryDatabase db;
  (void)db.Add(Trajectory("tele", 1, {R(0, 0, 5), R(1000, 0, 5)}));
  auto r = ValidateDatabase(db);
  EXPECT_EQ(r.speed_violations, 1u);
}

TEST(ValidationTest, CustomSpeedThreshold) {
  TrajectoryDatabase db;
  // 1 km in 60 s = 60 kph.
  (void)db.Add(Trajectory("car", 1, {R(0, 0, 0), R(1000, 0, 60)}));
  ValidationOptions strict;
  strict.max_speed_mps = 10.0;
  EXPECT_EQ(ValidateDatabase(db, strict).speed_violations, 1u);
  ValidationOptions loose;
  loose.max_speed_mps = 100.0;
  EXPECT_EQ(ValidateDatabase(db, loose).speed_violations, 0u);
}

TEST(SanitizeTest, DropsNonFiniteAndDuplicates) {
  TrajectoryDatabase db;
  double inf = std::numeric_limits<double>::infinity();
  (void)db.Add(Trajectory(
      "messy", 1, {R(0, 0, 0), R(0, 0, 0), R(inf, 0, 30), R(5, 5, 60)}));
  auto out = Sanitize(db);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), 2u);
  EXPECT_TRUE(ValidateDatabase(out).clean);
}

TEST(SanitizeTest, DropsEmptyTrajectories) {
  TrajectoryDatabase db;
  double nan = std::nan("");
  (void)db.Add(Trajectory("all-bad", 1, {R(nan, nan, 0)}));
  (void)db.Add(Trajectory("good", 2, {R(0, 0, 0), R(1, 1, 10)}));
  auto out = Sanitize(db);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].label(), "good");
}

TEST(SanitizeTest, PreservesCleanData) {
  TrajectoryDatabase db;
  (void)db.Add(Trajectory("a", 7, {R(0, 0, 0), R(1, 2, 10), R(3, 4, 20)}));
  auto out = Sanitize(db);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), 3u);
  EXPECT_EQ(out[0].owner(), 7u);
}

}  // namespace
}  // namespace ftl::traj
