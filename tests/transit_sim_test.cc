#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "eval/metrics.h"
#include "eval/workload.h"
#include "sim/transit_sim.h"

namespace ftl::sim {
namespace {

TEST(TransitSimTest, NearestStopSnapsToGrid) {
  geo::Point s = NearestStop({1234.0, 5678.0}, 800.0);
  EXPECT_DOUBLE_EQ(std::fmod(s.x, 800.0), 0.0);
  EXPECT_DOUBLE_EQ(std::fmod(s.y, 800.0), 0.0);
  EXPECT_LE(geo::Distance({1234.0, 5678.0}, s), 800.0 * std::sqrt(2.0) / 2);
  // Exact stop maps to itself.
  geo::Point exact{1600.0, 2400.0};
  EXPECT_EQ(NearestStop(exact, 800.0), exact);
}

TEST(TransitSimTest, CommuterPathCoversHorizon) {
  CommuterOptions o;
  o.duration_days = 5;
  Rng rng(1);
  auto person = BuildCommuter(&rng, o);
  ASSERT_FALSE(person.path.empty());
  EXPECT_EQ(person.path.start_time(), 0);
  EXPECT_EQ(person.path.end_time(), 5 * 86400);
}

TEST(TransitSimTest, TwoCommutesPerDayProduceTaps) {
  CommuterOptions o;
  o.duration_days = 5;
  Rng rng(2);
  auto person = BuildCommuter(&rng, o);
  // >= 2 boarding taps per day (plus transfers), <= 4 per commute.
  EXPECT_GE(person.taps.size(), 2u * 5u);
  EXPECT_LE(person.taps.size(), 8u * 5u);
  // Taps are time-ordered.
  for (size_t i = 1; i < person.taps.size(); ++i) {
    EXPECT_LE(person.taps[i - 1].t, person.taps[i].t);
  }
}

TEST(TransitSimTest, TapsPinnedToStops) {
  CommuterOptions o;
  o.duration_days = 3;
  Rng rng(3);
  auto person = BuildCommuter(&rng, o);
  for (const auto& tap : person.taps) {
    geo::Point stop = NearestStop(tap.location, o.stop_pitch);
    EXPECT_LE(geo::Distance(tap.location, stop), 1e-6);
  }
}

TEST(TransitSimTest, PathSpeedBounded) {
  CommuterOptions o;
  o.duration_days = 4;
  Rng rng(4);
  auto person = BuildCommuter(&rng, o);
  // No knot-to-knot leg exceeds the bus speed.
  EXPECT_LE(person.path.MaxKnotSpeed(), o.bus_speed + 1e-6);
}

TEST(TransitSimTest, DatabasesAlignedByOwner) {
  CommuterOptions o;
  o.num_persons = 20;
  o.duration_days = 3;
  o.seed = 5;
  auto data = SimulateCommuters(o);
  ASSERT_EQ(data.cdr_db.size(), 20u);
  ASSERT_EQ(data.transit_db.size(), 20u);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(data.cdr_db[i].owner(), data.transit_db[i].owner());
  }
  // CDR snapped to the cell grid.
  for (const auto& r : data.cdr_db[0].records()) {
    EXPECT_DOUBLE_EQ(std::fmod(r.location.x, 500.0), 0.0);
  }
}

TEST(TransitSimTest, Deterministic) {
  CommuterOptions o;
  o.num_persons = 5;
  o.duration_days = 2;
  o.seed = 6;
  auto a = SimulateCommuters(o);
  auto b = SimulateCommuters(o);
  ASSERT_EQ(a.transit_db.TotalRecords(), b.transit_db.TotalRecords());
  EXPECT_EQ(a.cdr_db.TotalRecords(), b.cdr_db.TotalRecords());
}

TEST(TransitSimTest, EndToEndLinkingWorksOnStructuredData) {
  // The paper's motivating scenario: link anonymous cards to phones.
  CommuterOptions o;
  o.num_persons = 60;
  o.duration_days = 10;
  o.cdr_events_per_day = 14.0;
  o.seed = 7;
  auto data = SimulateCommuters(o);

  core::EngineOptions eo;
  eo.training.horizon_units = 40;
  eo.naive_bayes.phi_r = 0.02;
  core::FtlEngine engine(eo);
  ASSERT_TRUE(engine.Train(data.cdr_db, data.transit_db).ok());

  eval::WorkloadOptions wo;
  wo.num_queries = 30;
  wo.seed = 8;
  // Query with cards (anonymous side) against phones.
  auto workload = eval::MakeWorkload(data.transit_db, data.cdr_db, wo);
  auto results = engine.BatchQuery(workload.queries, data.cdr_db,
                                   core::Matcher::kNaiveBayes);
  ASSERT_TRUE(results.ok());
  auto m = eval::ComputeMetrics(results.value(), workload.owners,
                                data.cdr_db);
  EXPECT_GT(m.perceptiveness, 0.6);
  EXPECT_LT(m.selectiveness, 0.4);
}

}  // namespace
}  // namespace ftl::sim
