#include <gtest/gtest.h>

#include <cmath>

#include "analysis/feasibility.h"
#include "analysis/mutual_segment_analysis.h"

namespace ftl::analysis {
namespace {

TEST(FeasibilityTest, ComponentsAreConsistent) {
  auto r = EstimateFeasibility(2.0, 3.0, 0.5, 50.0);
  EXPECT_NEAR(r.expected_mutual_per_unit, ExpectedMutualSegments(2.0, 3.0),
              1e-12);
  EXPECT_NEAR(r.informative_fraction, 1.0 - std::exp(-5.0 * 0.5), 1e-12);
  EXPECT_NEAR(r.informative_per_unit,
              r.expected_mutual_per_unit * r.informative_fraction, 1e-12);
  EXPECT_NEAR(r.units_for_target, 50.0 / r.informative_per_unit, 1e-9);
  EXPECT_TRUE(r.feasible);
}

TEST(FeasibilityTest, ZeroRateIsInfeasible) {
  auto r = EstimateFeasibility(0.0, 5.0, 1.0, 10.0);
  EXPECT_FALSE(r.feasible);
  EXPECT_TRUE(std::isinf(r.units_for_target));
  EXPECT_DOUBLE_EQ(r.informative_per_unit, 0.0);
}

TEST(FeasibilityTest, ZeroHorizonIsInfeasible) {
  auto r = EstimateFeasibility(2.0, 2.0, 0.0, 10.0);
  EXPECT_FALSE(r.feasible);
}

TEST(FeasibilityTest, MoreAccessesShortenTheWait) {
  double d1 = EstimateFeasibility(1.0, 1.0, 0.1, 30.0).units_for_target;
  double d2 = EstimateFeasibility(4.0, 4.0, 0.1, 30.0).units_for_target;
  double d3 = EstimateFeasibility(16.0, 16.0, 0.1, 30.0).units_for_target;
  EXPECT_GT(d1, d2);
  EXPECT_GT(d2, d3);
}

TEST(FeasibilityTest, WiderHorizonShortensTheWait) {
  double narrow = EstimateFeasibility(2.0, 2.0, 0.05, 30.0).units_for_target;
  double wide = EstimateFeasibility(2.0, 2.0, 0.5, 30.0).units_for_target;
  EXPECT_GT(narrow, wide);
}

TEST(FeasibilityTest, DailyConvenienceMatchesRaw) {
  // 12 and 4 events/day, 60-minute horizon, 40 segments.
  auto daily = EstimateFeasibilityDaily(12.0, 4.0, 60.0, 40.0);
  auto raw = EstimateFeasibility(12.0, 4.0, 60.0 / 1440.0, 40.0);
  EXPECT_NEAR(daily.informative_per_day, raw.informative_per_unit, 1e-12);
  EXPECT_NEAR(daily.days_for_target, raw.units_for_target, 1e-9);
  EXPECT_TRUE(daily.feasible);
}

TEST(FeasibilityTest, RealisticScenarioMagnitudes) {
  // Phone (12/day) x transit card (4/day), 1 h horizon: a person
  // produces a couple of informative segments per week, so tens of
  // segments need weeks-to-months of data — matching the paper's use of
  // month-long datasets.
  auto daily = EstimateFeasibilityDaily(12.0, 4.0, 60.0, 30.0);
  EXPECT_GT(daily.days_for_target, 7.0);
  EXPECT_LT(daily.days_for_target, 400.0);
}

TEST(FeasibilityTest, SymmetricInRates) {
  auto a = EstimateFeasibility(3.0, 7.0, 0.2, 25.0);
  auto b = EstimateFeasibility(7.0, 3.0, 0.2, 25.0);
  EXPECT_NEAR(a.units_for_target, b.units_for_target, 1e-9);
}

}  // namespace
}  // namespace ftl::analysis
