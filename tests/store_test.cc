// Unit tests for the crash-safe store layer (src/store): WAL framing
// and replay (including truncation at every byte boundary of the last
// record), the shared torn-tail repair helper, manifest encode/swap,
// memtable merge rules, flush/reopen equivalence, multi-segment query
// byte-identity, and admission control.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "ftl/ftl.h"

namespace ftl {
namespace {

std::string TempPath(const std::string& name) {
  static const std::string suffix =
      "." + std::to_string(static_cast<long long>(::getpid()));
  return (std::filesystem::temp_directory_path() / (name + suffix)).string();
}

/// A fresh (removed + recreated) store directory for one test.
std::string FreshDir(const std::string& name) {
  std::string dir = TempPath(name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string ReadAll(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f), {});
}

void WriteAll(const std::string& path, const std::string& data) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(data.data(), static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(f.good());
}

store::IngestBatch MakeBatch(const std::string& label, int64_t t0, size_t n,
                             traj::OwnerId owner = traj::kUnknownOwner) {
  store::IngestBatch b;
  for (size_t i = 0; i < n; ++i) {
    store::IngestRow row;
    row.label = label;
    row.owner = owner;
    row.t = t0 + static_cast<int64_t>(i) * 60;
    row.x = 100.0 * static_cast<double>(i) + 0.25;
    row.y = -50.0 * static_cast<double>(i) + 0.75;
    b.rows.push_back(std::move(row));
  }
  return b;
}

// --------------------------------------------------------------------------
// WAL framing

TEST(WalTest, EncodeDecodeRoundtrip) {
  store::IngestBatch b = MakeBatch("veh-7", 1000, 3, 42);
  b.rows[1].x = -0.0;
  b.rows[2].y = 1e-300;
  auto decoded = store::DecodeBatch(store::EncodeBatch(b));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().rows.size(), b.rows.size());
  for (size_t i = 0; i < b.rows.size(); ++i) {
    EXPECT_EQ(decoded.value().rows[i].label, b.rows[i].label);
    EXPECT_EQ(decoded.value().rows[i].owner, b.rows[i].owner);
    EXPECT_EQ(decoded.value().rows[i].t, b.rows[i].t);
    EXPECT_EQ(decoded.value().rows[i].x, b.rows[i].x);
    EXPECT_EQ(decoded.value().rows[i].y, b.rows[i].y);
  }
}

TEST(WalTest, DecodeBatchRejectsMalformedPayloads) {
  std::string good = store::EncodeBatch(MakeBatch("a", 0, 2));
  // Truncation anywhere inside the payload must fail cleanly.
  for (size_t len = 0; len < good.size(); ++len) {
    auto r = store::DecodeBatch(std::string_view(good.data(), len));
    EXPECT_FALSE(r.ok()) << "prefix of " << len << " bytes decoded";
  }
  // Trailing garbage is rejected too (the frame length is exact).
  EXPECT_FALSE(store::DecodeBatch(good + "x").ok());
  // Absurd row count (bounded by the 36-byte minimum row encoding).
  std::string bogus(4, '\0');
  bogus[0] = static_cast<char>(0xff);
  bogus[1] = static_cast<char>(0xff);
  bogus[2] = static_cast<char>(0xff);
  bogus[3] = static_cast<char>(0x7f);
  EXPECT_FALSE(store::DecodeBatch(bogus).ok());
}

TEST(WalTest, AppendReplayRoundtrip) {
  std::string path = TempPath("wal_roundtrip.log");
  std::filesystem::remove(path);
  store::WalWriterOptions wo;
  wo.sync = store::WalSync::kAlways;
  auto w = store::WalWriter::Open(path, wo, 1);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  std::vector<store::IngestBatch> batches = {
      MakeBatch("a", 0, 2), MakeBatch("b", 100, 3), MakeBatch("a", 200, 1)};
  for (const auto& b : batches) {
    ASSERT_TRUE(w.value().Append(store::EncodeBatch(b)).ok());
  }
  EXPECT_EQ(w.value().next_seqno(), 4u);
  EXPECT_GE(w.value().syncs(), 3u);
  w.value().Close();

  std::vector<std::pair<uint64_t, store::IngestBatch>> replayed;
  store::WalReplayStats stats;
  Status st = store::ReplayWal(
      path,
      [&](uint64_t seqno, std::string_view payload) {
        auto b = store::DecodeBatch(payload);
        EXPECT_TRUE(b.ok());
        replayed.emplace_back(seqno, std::move(b).value());
        return Status::OK();
      },
      &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(replayed.size(), 3u);
  EXPECT_EQ(stats.frames, 3u);
  EXPECT_EQ(stats.last_seqno, 3u);
  EXPECT_EQ(stats.torn_bytes_dropped, 0u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(replayed[i].first, i + 1);
    EXPECT_EQ(replayed[i].second.rows.size(), batches[i].rows.size());
    EXPECT_EQ(replayed[i].second.rows[0].label, batches[i].rows[0].label);
  }
}

TEST(WalTest, MissingFileReplaysEmpty) {
  store::WalReplayStats stats;
  Status st = store::ReplayWal(
      TempPath("wal_never_written.log"),
      [&](uint64_t, std::string_view) { return Status::OK(); }, &stats);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(stats.frames, 0u);
}

/// Satellite 3: a WAL truncated at EVERY byte boundary of the last
/// record either restores the full batch (only at the exact frame end)
/// or cleanly drops it — never a partial-record ghost — and the repair
/// truncates the file back to its valid prefix.
TEST(WalTest, TruncationAtEveryByteBoundaryOfLastRecord) {
  std::string orig = TempPath("wal_everybyte_orig.log");
  std::string path = TempPath("wal_everybyte.log");
  std::filesystem::remove(orig);
  std::vector<store::IngestBatch> batches = {
      MakeBatch("keep-1", 0, 2), MakeBatch("keep-2", 100, 1),
      MakeBatch("tail", 200, 3)};
  size_t keep_bytes = 0;  // bytes of the first two (surviving) frames
  {
    store::WalWriterOptions wo;
    wo.sync = store::WalSync::kNever;
    auto w = store::WalWriter::Open(orig, wo, 1);
    ASSERT_TRUE(w.ok());
    for (size_t i = 0; i < batches.size(); ++i) {
      ASSERT_TRUE(w.value().Append(store::EncodeBatch(batches[i])).ok());
      if (i == 1) keep_bytes = static_cast<size_t>(w.value().bytes());
    }
    w.value().Close();
  }
  const std::string image = ReadAll(orig);
  ASSERT_GT(image.size(), keep_bytes);

  for (size_t cut = keep_bytes; cut <= image.size(); ++cut) {
    WriteAll(path, image.substr(0, cut));
    size_t replayed = 0;
    size_t total_rows = 0;
    store::WalReplayStats stats;
    Status st = store::ReplayWal(
        path,
        [&](uint64_t, std::string_view payload) {
          auto b = store::DecodeBatch(payload);
          EXPECT_TRUE(b.ok()) << "ghost frame at cut " << cut;
          ++replayed;
          total_rows += b.value().rows.size();
          return Status::OK();
        },
        &stats);
    ASSERT_TRUE(st.ok()) << "cut " << cut << ": " << st.ToString();
    if (cut == image.size()) {
      EXPECT_EQ(replayed, 3u) << "cut " << cut;
      EXPECT_EQ(total_rows, 6u) << "cut " << cut;
      EXPECT_EQ(stats.torn_bytes_dropped, 0u);
    } else {
      // Any cut inside the last frame drops exactly that frame: the
      // first two batches survive whole, nothing partial appears.
      EXPECT_EQ(replayed, 2u) << "cut " << cut;
      EXPECT_EQ(total_rows, 3u) << "cut " << cut;
      EXPECT_EQ(stats.torn_bytes_dropped, cut - keep_bytes) << "cut " << cut;
      // The repair shrank the file back to the valid prefix, so a
      // writer reopened for append starts at a frame boundary.
      EXPECT_EQ(std::filesystem::file_size(path), keep_bytes)
          << "cut " << cut;
    }
  }

  // Bit corruption inside the last frame behaves like a torn tail.
  std::string corrupted = image;
  corrupted[keep_bytes + 20] ^= 0x40;
  WriteAll(path, corrupted);
  size_t replayed = 0;
  Status st = store::ReplayWal(
      path,
      [&](uint64_t, std::string_view) {
        ++replayed;
        return Status::OK();
      },
      nullptr);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(replayed, 2u);
}

// --------------------------------------------------------------------------
// Shared torn-tail repair helper (satellite 2)

TEST(FileUtilTest, TruncateToLastValidRecordLines) {
  std::string path = TempPath("truncate_lines.txt");
  WriteAll(path, "row1\nrow2\nrow3 torn");
  auto r = io::TruncateToLastValidRecord(path, io::LastCompleteLinePrefix);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), std::string("row3 torn").size());
  EXPECT_EQ(ReadAll(path), "row1\nrow2\n");

  // Already-clean file: no bytes dropped.
  auto r2 = io::TruncateToLastValidRecord(path, io::LastCompleteLinePrefix);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value(), 0u);

  // Missing file is NotFound, not a crash.
  EXPECT_EQ(io::TruncateToLastValidRecord(TempPath("truncate_absent.txt"),
                                          io::LastCompleteLinePrefix)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(FileUtilTest, LastCompleteLinePrefix) {
  EXPECT_EQ(io::LastCompleteLinePrefix(""), 0u);
  EXPECT_EQ(io::LastCompleteLinePrefix("abc"), 0u);
  EXPECT_EQ(io::LastCompleteLinePrefix("abc\n"), 4u);
  EXPECT_EQ(io::LastCompleteLinePrefix("abc\ndef"), 4u);
  EXPECT_EQ(io::LastCompleteLinePrefix("abc\ndef\n"), 8u);
}

// --------------------------------------------------------------------------
// Manifest

TEST(ManifestTest, RoundtripAndAtomicSwap) {
  store::Manifest m;
  m.generation = 7;
  m.segments = {store::SegmentFileName(3), store::SegmentFileName(7)};
  m.wal = store::WalFileName(7);
  auto decoded = store::DecodeManifest(store::EncodeManifest(m));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().generation, 7u);
  EXPECT_EQ(decoded.value().segments, m.segments);
  EXPECT_EQ(decoded.value().wal, m.wal);

  std::string dir = FreshDir("manifest_swap");
  ASSERT_TRUE(store::WriteManifest(dir, m).ok());
  auto read = store::ReadManifest(dir);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().generation, 7u);
  // The swap leaves no temp debris behind.
  EXPECT_FALSE(std::filesystem::exists(dir + "/MANIFEST.tmp"));
}

TEST(ManifestTest, CorruptionIsDetected) {
  store::Manifest m;
  m.generation = 1;
  m.wal = store::WalFileName(1);
  std::string text = store::EncodeManifest(m);
  for (size_t i = 0; i < text.size(); ++i) {
    std::string bad = text;
    bad[i] ^= 0x01;
    auto r = store::DecodeManifest(bad);
    // Every single-bit flip must be rejected (CRC or structure).
    EXPECT_FALSE(r.ok()) << "flip at byte " << i << " accepted";
  }
  EXPECT_FALSE(store::DecodeManifest("").ok());
  EXPECT_FALSE(store::DecodeManifest(text.substr(0, text.size() - 1)).ok());
  EXPECT_EQ(store::ReadManifest(FreshDir("manifest_absent")).status().code(),
            StatusCode::kNotFound);
}

// --------------------------------------------------------------------------
// Memtable

TEST(MemtableTest, MergeRules) {
  store::MutableSegment mt;
  mt.Apply(MakeBatch("b", 100, 2));
  mt.Apply(MakeBatch("a", 0, 1));
  // Same label again: records merge into the existing entry, and the
  // first non-unknown owner is adopted exactly once.
  mt.Apply(MakeBatch("b", 50, 1, 9));
  mt.Apply(MakeBatch("b", 500, 1, 12));
  EXPECT_EQ(mt.num_trajectories(), 2u);
  EXPECT_EQ(mt.num_records(), 5u);

  traj::TrajectoryDatabase db = mt.ToDatabase("mt");
  ASSERT_EQ(db.size(), 2u);
  // First-appearance order: b before a.
  EXPECT_EQ(db[0].label(), "b");
  EXPECT_EQ(db[1].label(), "a");
  EXPECT_EQ(db[0].owner(), 9u);
  // Records are time-sorted by the Trajectory constructor.
  ASSERT_EQ(db[0].size(), 4u);
  EXPECT_EQ(db[0].records()[0].t, 50);
  EXPECT_EQ(db[0].records()[1].t, 100);
  EXPECT_EQ(db[0].records()[3].t, 500);

  mt.Clear();
  EXPECT_TRUE(mt.empty());
  EXPECT_EQ(mt.num_records(), 0u);
}

// --------------------------------------------------------------------------
// Store

store::StoreOptions SmallStoreOptions(size_t flush_threshold = 1u << 30) {
  store::StoreOptions so;
  so.wal_sync = store::WalSync::kNever;  // fast tests; durability covered
                                         // by the chaos suite
  so.flush_threshold_records = flush_threshold;
  return so;
}

/// Databases must agree exactly: labels, owners, and every record.
void ExpectSameDatabase(const traj::TrajectoryDatabase& a,
                        const traj::TrajectoryDatabase& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label(), b[i].label()) << "trajectory " << i;
    EXPECT_EQ(a[i].owner(), b[i].owner()) << "trajectory " << i;
    ASSERT_EQ(a[i].size(), b[i].size()) << "trajectory " << i;
    for (size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(a[i].records()[j], b[i].records()[j])
          << "trajectory " << i << " record " << j;
      EXPECT_EQ(a[i].records()[j].t, b[i].records()[j].t);
    }
  }
}

TEST(StoreTest, TwoPhaseOpenRefusesBeforeRecover) {
  auto s = store::Store::Create(FreshDir("store_twophase"),
                                SmallStoreOptions());
  EXPECT_EQ(s->Append(MakeBatch("a", 0, 1)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(s->Flush().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(s->Recover().ok());
  EXPECT_TRUE(s->recovered());
  EXPECT_TRUE(s->Append(MakeBatch("a", 0, 1)).ok());
  // Recover is one-shot.
  EXPECT_EQ(s->Recover().code(), StatusCode::kFailedPrecondition);
}

TEST(StoreTest, AppendValidation) {
  auto s = store::Store::Open(FreshDir("store_validate"),
                              SmallStoreOptions());
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value()->Append({}).code(), StatusCode::kInvalidArgument);
  store::IngestBatch empty_label = MakeBatch("", 0, 1);
  EXPECT_EQ(s.value()->Append(empty_label).code(),
            StatusCode::kInvalidArgument);
}

TEST(StoreTest, FlushReopenEquivalence) {
  std::string dir = FreshDir("store_reopen");
  std::vector<store::IngestBatch> batches;
  for (int i = 0; i < 12; ++i) {
    batches.push_back(
        MakeBatch("veh-" + std::to_string(i % 5), i * 1000, 4,
                  i % 3 == 0 ? static_cast<traj::OwnerId>(i + 1)
                             : traj::kUnknownOwner));
  }

  // Flushing store: threshold 10 records => several segments, labels
  // spanning segments and the memtable.
  {
    auto s = store::Store::Open(dir, SmallStoreOptions(10));
    ASSERT_TRUE(s.ok());
    for (const auto& b : batches) ASSERT_TRUE(s.value()->Append(b).ok());
    EXPECT_GE(s.value()->num_segments(), 2u);
  }

  // Oracle: the same appends with no flushing at all.
  auto oracle = store::Store::Open(FreshDir("store_reopen_oracle"),
                                   SmallStoreOptions());
  ASSERT_TRUE(oracle.ok());
  for (const auto& b : batches) ASSERT_TRUE(oracle.value()->Append(b).ok());

  // Reopen after "crash" (destructor without explicit flush): WAL
  // replay + segment loading restore exactly the oracle's database.
  store::RecoveryInfo info;
  auto reopened = store::Store::Open(dir, SmallStoreOptions(10), &info);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_GT(info.segments, 0u);
  ExpectSameDatabase(reopened.value()->MaterializeAll("recovered"),
                     oracle.value()->MaterializeAll("recovered"));
}

TEST(StoreTest, SnapshotCachesByVersion) {
  auto s = store::Store::Open(FreshDir("store_snapver"),
                              SmallStoreOptions());
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(s.value()->Append(MakeBatch("a", 0, 2)).ok());
  auto snap1 = s.value()->Snapshot();
  auto snap2 = s.value()->Snapshot();
  EXPECT_EQ(snap1.get(), snap2.get());  // unchanged store: cached
  ASSERT_TRUE(s.value()->Append(MakeBatch("b", 0, 2)).ok());
  auto snap3 = s.value()->Snapshot();
  EXPECT_NE(snap1.get(), snap3.get());
  EXPECT_EQ(snap1->size(), 1u);  // old snapshot is immutable
  EXPECT_EQ(snap3->size(), 2u);
  EXPECT_EQ(snap3->Find("b"), 1u);
  EXPECT_EQ(snap3->Find("zzz"), store::StoreSnapshot::npos);
}

TEST(StoreTest, SyncPolicyCounters) {
  store::StoreOptions always = SmallStoreOptions();
  always.wal_sync = store::WalSync::kAlways;
  auto sa = store::Store::Open(FreshDir("store_sync_always"), always);
  ASSERT_TRUE(sa.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(sa.value()->Append(MakeBatch("a", i * 100, 1)).ok());
  }
  EXPECT_GT(sa.value()->wal_bytes(), 0u);

  store::StoreOptions never = SmallStoreOptions();
  auto sn = store::Store::Open(FreshDir("store_sync_never"), never);
  ASSERT_TRUE(sn.ok());
  ASSERT_TRUE(sn.value()->Append(MakeBatch("a", 0, 1)).ok());
}

TEST(StoreTest, BackpressureUnderFlushFailure) {
  failpoint::DisarmAll();
  store::StoreOptions so = SmallStoreOptions(4);
  so.backpressure_factor = 2.0;  // cap = 8 records
  auto s = store::Store::Open(FreshDir("store_backpressure"), so);
  ASSERT_TRUE(s.ok());

  failpoint::Arm("store.flush.segment", {failpoint::Action::kError, 0});
  // Appends keep succeeding in degraded mode until the memtable hits
  // backpressure_factor x threshold; then OutOfRange.
  Status st;
  size_t accepted = 0;
  for (int i = 0; i < 32; ++i) {
    st = s.value()->Append(MakeBatch("x", i * 100, 2));
    if (!st.ok()) break;
    ++accepted;
  }
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange) << st.ToString();
  EXPECT_GE(accepted, 2u);
  EXPECT_GE(s.value()->memtable_records(), 8u);

  // Clearing the fault unblocks: the triggered flush drains the
  // memtable and the append lands.
  failpoint::DisarmAll();
  EXPECT_TRUE(s.value()->Append(MakeBatch("x", 9999, 1)).ok());
  EXPECT_GE(s.value()->num_segments(), 1u);
  EXPECT_FALSE(s.value()->broken());
}

TEST(StoreTest, OrphanCleanupOnRecovery) {
  std::string dir = FreshDir("store_orphans");
  {
    auto s = store::Store::Open(dir, SmallStoreOptions(4));
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(s.value()->Append(MakeBatch("a", 0, 5)).ok());
    ASSERT_TRUE(s.value()->Flush().ok());
  }
  // Debris an interrupted flush could leave: a segment and WAL never
  // named by the manifest, plus a torn manifest temp file. A foreign
  // file must survive untouched.
  WriteAll(dir + "/" + store::SegmentFileName(999999), "junk");
  WriteAll(dir + "/" + store::WalFileName(424242), "junk");
  WriteAll(dir + "/MANIFEST.tmp", "junk");
  WriteAll(dir + "/notes.txt", "keep me");

  store::RecoveryInfo info;
  auto s = store::Store::Open(dir, SmallStoreOptions(4), &info);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(info.orphans_removed, 3u);
  EXPECT_FALSE(
      std::filesystem::exists(dir + "/" + store::SegmentFileName(999999)));
  EXPECT_FALSE(
      std::filesystem::exists(dir + "/" + store::WalFileName(424242)));
  EXPECT_FALSE(std::filesystem::exists(dir + "/MANIFEST.tmp"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/notes.txt"));
  EXPECT_EQ(ReadAll(dir + "/notes.txt"), "keep me");
}

// --------------------------------------------------------------------------
// Multi-segment query byte-identity

class StoreQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::DatasetConfig config = sim::FindConfig("SD");
    ASSERT_FALSE(config.name.empty());
    sim::DatasetPair pair = sim::BuildDataset(config, 20, 11);
    p_ = std::move(pair.p);
    q_ = std::move(pair.q);

    // Feed Q through a store with a small flush threshold, splitting
    // every trajectory across two rounds so most labels span a segment
    // boundary (the hard case for byte-identity).
    std::string dir = FreshDir("store_query");
    auto opened = store::Store::Open(dir, SmallStoreOptions(120));
    ASSERT_TRUE(opened.ok());
    store_ = std::move(opened).value();
    for (int round = 0; round < 2; ++round) {
      for (const traj::Trajectory& t : q_) {
        store::IngestBatch b;
        size_t half = t.size() / 2;
        size_t begin = round == 0 ? 0 : half;
        size_t end = round == 0 ? half : t.size();
        for (size_t i = begin; i < end; ++i) {
          const traj::Record& r = t.records()[i];
          b.rows.push_back(store::IngestRow{t.label(), t.owner(), r.t,
                                            r.location.x, r.location.y});
        }
        if (!b.rows.empty()) ASSERT_TRUE(store_->Append(b).ok());
      }
    }
    ASSERT_GE(store_->num_segments(), 2u) << "test needs multiple segments";
    ASSERT_GT(store_->memtable_records(), 0u) << "test needs a live memtable";

    merged_ = store_->MaterializeAll("merged");
    core::EngineOptions eo;
    eo.training.horizon_units = 20;
    eo.training.acceptance_pairs_per_db = 100;
    engine_ = std::make_unique<core::FtlEngine>(eo);
    ASSERT_TRUE(engine_->Train(p_, merged_).ok());
  }

  traj::TrajectoryDatabase p_;
  traj::TrajectoryDatabase q_;
  std::unique_ptr<store::Store> store_;
  traj::TrajectoryDatabase merged_;
  std::unique_ptr<core::FtlEngine> engine_;
};

TEST_F(StoreQueryTest, MaterializeAllEqualsDirectIngest) {
  // The canonical merged database equals the same rows pushed through
  // a never-flushing store (the memtable-only oracle).
  auto oracle = store::Store::Open(FreshDir("store_query_oracle"),
                                   SmallStoreOptions());
  ASSERT_TRUE(oracle.ok());
  for (const traj::Trajectory& t : q_) {
    store::IngestBatch b;
    for (const traj::Record& r : t.records()) {
      b.rows.push_back(store::IngestRow{t.label(), t.owner(), r.t,
                                        r.location.x, r.location.y});
    }
    ASSERT_TRUE(oracle.value()->Append(b).ok());
  }
  ExpectSameDatabase(merged_, oracle.value()->MaterializeAll("merged"));
}

TEST_F(StoreQueryTest, SnapshotQueryByteIdenticalToMergedDatabase) {
  auto snap = store_->Snapshot();
  ASSERT_EQ(snap->size(), merged_.size());
  for (core::Matcher matcher :
       {core::Matcher::kNaiveBayes, core::Matcher::kAlphaFilter}) {
    for (size_t qi = 0; qi < p_.size(); ++qi) {
      auto want = engine_->Query(p_[qi], merged_, matcher);
      auto got = snap->Query(*engine_, p_[qi], matcher, nullptr);
      ASSERT_EQ(want.ok(), got.ok()) << p_[qi].label();
      if (!want.ok()) continue;
      // Byte-identity via the serve wire format: one string compare
      // covers every score, p-value, index, and label exactly.
      EXPECT_EQ(io::QueryResultToJson(p_[qi].label(), got.value()),
                io::QueryResultToJson(p_[qi].label(), want.value()))
          << "query " << p_[qi].label() << " matcher "
          << (matcher == core::Matcher::kNaiveBayes ? "nb" : "alpha");
      EXPECT_EQ(got.value().evaluated, want.value().evaluated);
      EXPECT_EQ(got.value().selectiveness, want.value().selectiveness);
    }
  }
}

TEST_F(StoreQueryTest, BlockedSnapshotQueryByteIdenticalToMergedDatabase) {
  // Same rows through a store with per-segment blocking indices
  // (guaranteed mode): snapshot queries must still be byte-identical
  // to exhaustive engine queries over the merged database.
  store::StoreOptions so = SmallStoreOptions(120);
  so.blocking_mode = core::BlockingMode::kGuaranteed;
  auto opened = store::Store::Open(FreshDir("store_query_blocked"), so);
  ASSERT_TRUE(opened.ok());
  store::Store& blocked_store = *opened.value();
  for (int round = 0; round < 2; ++round) {
    for (const traj::Trajectory& t : q_) {
      store::IngestBatch b;
      size_t half = t.size() / 2;
      size_t begin = round == 0 ? 0 : half;
      size_t end = round == 0 ? half : t.size();
      for (size_t i = begin; i < end; ++i) {
        const traj::Record& r = t.records()[i];
        b.rows.push_back(store::IngestRow{t.label(), t.owner(), r.t,
                                          r.location.x, r.location.y});
      }
      if (!b.rows.empty()) ASSERT_TRUE(blocked_store.Append(b).ok());
    }
  }
  ASSERT_GE(blocked_store.num_segments(), 2u);
  auto snap = blocked_store.Snapshot();
  ASSERT_EQ(snap->size(), merged_.size());
  for (core::Matcher matcher :
       {core::Matcher::kNaiveBayes, core::Matcher::kAlphaFilter}) {
    for (size_t qi = 0; qi < p_.size(); ++qi) {
      auto want = engine_->Query(p_[qi], merged_, matcher);
      auto got = snap->Query(*engine_, p_[qi], matcher, nullptr);
      ASSERT_EQ(want.ok(), got.ok()) << p_[qi].label();
      if (!want.ok()) continue;
      EXPECT_EQ(io::QueryResultToJson(p_[qi].label(), got.value()),
                io::QueryResultToJson(p_[qi].label(), want.value()))
          << "query " << p_[qi].label() << " matcher "
          << (matcher == core::Matcher::kNaiveBayes ? "nb" : "alpha");
      // Fewer pairs scored, same accept set.
      EXPECT_LE(got.value().evaluated, want.value().evaluated);
    }
  }
}

TEST_F(StoreQueryTest, BlockedIndicesSurviveRecovery) {
  // Indices are rebuilt at recovery: reopening the blocked store keeps
  // queries byte-identical and still prunes.
  store::StoreOptions so = SmallStoreOptions(120);
  so.blocking_mode = core::BlockingMode::kGuaranteed;
  std::string dir = FreshDir("store_query_blocked_recover");
  {
    auto opened = store::Store::Open(dir, so);
    ASSERT_TRUE(opened.ok());
    for (const traj::Trajectory& t : q_) {
      store::IngestBatch b;
      for (const traj::Record& r : t.records()) {
        b.rows.push_back(store::IngestRow{t.label(), t.owner(), r.t,
                                          r.location.x, r.location.y});
      }
      ASSERT_TRUE(opened.value()->Append(b).ok());
    }
    ASSERT_TRUE(opened.value()->Flush().ok());
    ASSERT_GE(opened.value()->num_segments(), 1u);
  }
  auto reopened = store::Store::Open(dir, so);
  ASSERT_TRUE(reopened.ok());
  auto snap = reopened.value()->Snapshot();
  auto want = engine_->Query(p_[0], merged_, core::Matcher::kNaiveBayes);
  auto got = snap->Query(*engine_, p_[0], core::Matcher::kNaiveBayes,
                         nullptr);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(io::QueryResultToJson(p_[0].label(), got.value()),
            io::QueryResultToJson(p_[0].label(), want.value()));
}

TEST_F(StoreQueryTest, RankMatchesMergedDatabaseSubset) {
  auto snap = store_->Snapshot();
  std::vector<std::string> labels;
  std::vector<size_t> indices;
  for (size_t i = 0; i < merged_.size() && labels.size() < 5; i += 2) {
    labels.push_back(merged_[i].label());
    indices.push_back(i);
  }
  auto want =
      engine_->QueryWithCandidates(p_[0], merged_, indices,
                                   core::Matcher::kNaiveBayes);
  auto got = snap->Rank(*engine_, p_[0], labels, core::Matcher::kNaiveBayes);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(io::QueryResultToJson(p_[0].label(), got.value()),
            io::QueryResultToJson(p_[0].label(), want.value()));

  EXPECT_EQ(snap->Rank(*engine_, p_[0], {"no-such-label"},
                       core::Matcher::kNaiveBayes)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(StoreQueryTest, QueryRequiresEvaluateNonOverlapping) {
  core::EngineOptions eo = engine_->options();
  eo.evaluate_non_overlapping = false;
  core::FtlEngine other(eo);
  ASSERT_TRUE(other.Train(p_, merged_).ok());
  auto snap = store_->Snapshot();
  EXPECT_EQ(snap->Query(other, p_[0], core::Matcher::kNaiveBayes, nullptr)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

// --------------------------------------------------------------------------
// Parallel snapshot queries (ISSUE 10): sharding the segment walk over
// threads must not change a byte of any complete response.

TEST_F(StoreQueryTest, ParallelQueryByteIdenticalToSerial) {
  auto snap = store_->Snapshot();
  for (size_t num_threads : {size_t{2}, size_t{4}}) {
    for (core::Matcher matcher :
         {core::Matcher::kNaiveBayes, core::Matcher::kAlphaFilter}) {
      for (size_t qi = 0; qi < p_.size(); ++qi) {
        auto want = engine_->Query(p_[qi], merged_, matcher);
        auto got = snap->Query(*engine_, p_[qi], matcher, nullptr,
                               num_threads);
        ASSERT_EQ(want.ok(), got.ok()) << p_[qi].label();
        if (!want.ok()) continue;
        EXPECT_EQ(io::QueryResultToJson(p_[qi].label(), got.value()),
                  io::QueryResultToJson(p_[qi].label(), want.value()))
            << "query " << p_[qi].label() << " threads " << num_threads;
        EXPECT_EQ(got.value().evaluated, want.value().evaluated);
        EXPECT_EQ(got.value().selectiveness, want.value().selectiveness);
      }
    }
  }
}

TEST_F(StoreQueryTest, ParallelBlockedQueryByteIdenticalToSerial) {
  store::StoreOptions so = SmallStoreOptions(120);
  so.blocking_mode = core::BlockingMode::kGuaranteed;
  auto opened = store::Store::Open(FreshDir("store_query_par_blocked"), so);
  ASSERT_TRUE(opened.ok());
  for (int round = 0; round < 2; ++round) {
    for (const traj::Trajectory& t : q_) {
      store::IngestBatch b;
      size_t half = t.size() / 2;
      size_t begin = round == 0 ? 0 : half;
      size_t end = round == 0 ? half : t.size();
      for (size_t i = begin; i < end; ++i) {
        const traj::Record& r = t.records()[i];
        b.rows.push_back(store::IngestRow{t.label(), t.owner(), r.t,
                                          r.location.x, r.location.y});
      }
      if (!b.rows.empty()) ASSERT_TRUE(opened.value()->Append(b).ok());
    }
  }
  ASSERT_GE(opened.value()->num_segments(), 2u);
  auto snap = opened.value()->Snapshot();
  for (size_t qi = 0; qi < p_.size(); ++qi) {
    auto want = snap->Query(*engine_, p_[qi], core::Matcher::kNaiveBayes,
                            nullptr);
    auto got = snap->Query(*engine_, p_[qi], core::Matcher::kNaiveBayes,
                           nullptr, 4);
    ASSERT_EQ(want.ok(), got.ok()) << p_[qi].label();
    if (!want.ok()) continue;
    EXPECT_EQ(io::QueryResultToJson(p_[qi].label(), got.value()),
              io::QueryResultToJson(p_[qi].label(), want.value()))
        << "query " << p_[qi].label();
    EXPECT_EQ(got.value().evaluated, want.value().evaluated);
  }
}

TEST_F(StoreQueryTest, ParallelQueryDeadlineTruncatesPrefixConsistently) {
  auto snap = store_->Snapshot();
  core::QueryOptions qopts;
  qopts.deadline = Deadline::AfterMillis(0);  // already expired
  qopts.check_every = 1;
  for (size_t num_threads : {size_t{1}, size_t{4}}) {
    auto got = snap->Query(*engine_, p_[0], core::Matcher::kNaiveBayes,
                           &qopts, num_threads);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(got.value().truncated) << "threads " << num_threads;
    EXPECT_EQ(got.value().status.code(), StatusCode::kDeadlineExceeded)
        << "threads " << num_threads;
    // Whatever prefix was scored carries exactly the scores of the full
    // run: every truncated candidate appears in the complete result
    // with an identical score triple.
    auto full = engine_->Query(p_[0], merged_, core::Matcher::kNaiveBayes);
    ASSERT_TRUE(full.ok());
    for (const auto& c : got.value().candidates) {
      bool found = false;
      for (const auto& f : full.value().candidates) {
        if (f.label == c.label) {
          found = true;
          EXPECT_EQ(f.score, c.score) << c.label;
          EXPECT_EQ(f.p1, c.p1) << c.label;
          EXPECT_EQ(f.p2, c.p2) << c.label;
        }
      }
      EXPECT_TRUE(found) << c.label << " not in the complete result";
    }
  }
}

// --------------------------------------------------------------------------
// Compaction (ISSUE 10 tentpole): merging manifest-adjacent segments
// must never change a byte of the canonical database or any query.

TEST(StoreTest, CompactionDueRespectsTrigger) {
  store::StoreOptions so = SmallStoreOptions(4);
  so.compact_trigger = 3;
  auto s = store::Store::Open(FreshDir("store_compact_due"), so);
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(s.value()->CompactionDue());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(s.value()->Append(MakeBatch("c", i * 1000, 5)).ok());
    ASSERT_TRUE(s.value()->Flush().ok());
  }
  ASSERT_GE(s.value()->num_segments(), 3u);
  EXPECT_TRUE(s.value()->CompactionDue());
  auto cst = s.value()->CompactOnce();
  ASSERT_TRUE(cst.ok()) << cst.status().ToString();
  EXPECT_GE(cst.value().inputs, 2u);
  EXPECT_LT(s.value()->num_segments(), 3u);
  EXPECT_FALSE(s.value()->CompactionDue());

  // Trigger 0 disables the policy entirely (CompactOnce(force) still
  // works for explicit callers).
  store::StoreOptions off = SmallStoreOptions(4);
  auto s2 = store::Store::Open(FreshDir("store_compact_off"), off);
  ASSERT_TRUE(s2.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(s2.value()->Append(MakeBatch("c", i * 1000, 5)).ok());
  }
  EXPECT_FALSE(s2.value()->CompactionDue());
  auto noop = s2.value()->CompactOnce();
  ASSERT_TRUE(noop.ok());
  EXPECT_EQ(noop.value().inputs, 0u);  // not due, not forced
}

TEST(StoreTest, CompactOnceMergesWindowAndSurvivesReopen) {
  std::string dir = FreshDir("store_compact_merge");
  store::StoreOptions so = SmallStoreOptions(4);
  so.compact_max_segments = 2;
  auto s = store::Store::Open(dir, so);
  ASSERT_TRUE(s.ok());
  std::vector<store::IngestBatch> batches;
  for (int i = 0; i < 6; ++i) {
    batches.push_back(MakeBatch("m-" + std::to_string(i % 4), i * 1000, 5,
                                i % 2 == 0 ? static_cast<traj::OwnerId>(i + 1)
                                           : traj::kUnknownOwner));
    ASSERT_TRUE(s.value()->Append(batches.back()).ok());
  }
  ASSERT_TRUE(s.value()->Append(MakeBatch("m-live", 99000, 2)).ok());
  const size_t before = s.value()->num_segments();
  ASSERT_GE(before, 3u);

  // Oracle: the same rows through a never-flushing store.
  auto oracle = store::Store::Open(FreshDir("store_compact_oracle"),
                                   SmallStoreOptions());
  ASSERT_TRUE(oracle.ok());
  for (const auto& b : batches) ASSERT_TRUE(oracle.value()->Append(b).ok());
  ASSERT_TRUE(oracle.value()->Append(MakeBatch("m-live", 99000, 2)).ok());
  traj::TrajectoryDatabase want = oracle.value()->MaterializeAll("db");

  auto cst = s.value()->CompactOnce(/*force=*/true);
  ASSERT_TRUE(cst.ok()) << cst.status().ToString();
  EXPECT_EQ(cst.value().inputs, 2u);  // compact_max_segments caps the window
  EXPECT_GT(cst.value().input_records, 0u);
  EXPECT_EQ(s.value()->num_segments(), before - 1);
  ExpectSameDatabase(s.value()->MaterializeAll("db"), want);

  // Drain the rest of the segments; each round stays byte-identical.
  while (s.value()->num_segments() > 1) {
    auto round = s.value()->CompactOnce(/*force=*/true);
    ASSERT_TRUE(round.ok()) << round.status().ToString();
    ASSERT_GT(round.value().inputs, 0u);
  }
  ExpectSameDatabase(s.value()->MaterializeAll("db"), want);

  // No compaction debris: no temp files, no unreferenced segments.
  size_t ftb_files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    EXPECT_EQ(name.find("compact-"), std::string::npos) << name;
    if (name.find(".ftb") != std::string::npos) ++ftb_files;
  }
  EXPECT_EQ(ftb_files, 1u);

  // Reopen: the compacted manifest recovers to the same database, and
  // the live memtable rows come back through WAL replay.
  s.value().reset();
  auto reopened = store::Store::Open(dir, so);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->num_segments(), 1u);
  ExpectSameDatabase(reopened.value()->MaterializeAll("db"), want);
}

TEST(StoreTest, CompactOnceNoOpWithoutEnoughSegments) {
  auto s = store::Store::Open(FreshDir("store_compact_noop"),
                              SmallStoreOptions(4));
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(s.value()->Append(MakeBatch("one", 0, 5)).ok());
  ASSERT_TRUE(s.value()->Flush().ok());
  ASSERT_EQ(s.value()->num_segments(), 1u);
  auto cst = s.value()->CompactOnce(/*force=*/true);
  ASSERT_TRUE(cst.ok()) << cst.status().ToString();
  EXPECT_EQ(cst.value().inputs, 0u);  // nothing to merge, clean no-op
  EXPECT_EQ(s.value()->num_segments(), 1u);
}

TEST(StoreTest, OrphanCompactTmpCleanedOnRecovery) {
  std::string dir = FreshDir("store_compact_orphan");
  {
    auto s = store::Store::Open(dir, SmallStoreOptions(4));
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(s.value()->Append(MakeBatch("a", 0, 5)).ok());
    ASSERT_TRUE(s.value()->Flush().ok());
  }
  // The debris an interrupted compaction leaves: a temp output never
  // renamed, or a renamed segment whose manifest swap never landed.
  WriteAll(dir + "/" + store::CompactTempFileName(31337), "junk");
  WriteAll(dir + "/" + store::SegmentFileName(31337), "junk");
  store::RecoveryInfo info;
  auto s = store::Store::Open(dir, SmallStoreOptions(4), &info);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(info.orphans_removed, 2u);
  EXPECT_FALSE(std::filesystem::exists(
      dir + "/" + store::CompactTempFileName(31337)));
  EXPECT_FALSE(
      std::filesystem::exists(dir + "/" + store::SegmentFileName(31337)));
}

TEST(StoreTest, CompactorBackgroundThreadDrainsSegments) {
  store::StoreOptions so = SmallStoreOptions(4);
  so.compact_trigger = 2;
  auto s = store::Store::Open(FreshDir("store_compactor_bg"), so);
  ASSERT_TRUE(s.ok());
  std::vector<store::IngestBatch> batches;
  for (int i = 0; i < 4; ++i) {
    batches.push_back(MakeBatch("bg-" + std::to_string(i % 3), i * 1000, 5));
    ASSERT_TRUE(s.value()->Append(batches.back()).ok());
  }
  ASSERT_GE(s.value()->num_segments(), 2u);

  store::Compactor compactor(s.value().get(), {/*poll_interval_ms=*/10});
  compactor.Start();
  compactor.Notify();
  // The thread drains rounds until the segment count drops below the
  // trigger; give it (generous) wall time, then verify.
  for (int spins = 0; spins < 500 && s.value()->CompactionDue(); ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  compactor.Stop();
  EXPECT_FALSE(s.value()->CompactionDue());
  EXPECT_LT(s.value()->num_segments(), 2u);
  EXPECT_GE(compactor.rounds(), 1u);
  EXPECT_EQ(compactor.failures(), 0u);

  auto oracle = store::Store::Open(FreshDir("store_compactor_bg_oracle"),
                                   SmallStoreOptions());
  ASSERT_TRUE(oracle.ok());
  for (const auto& b : batches) ASSERT_TRUE(oracle.value()->Append(b).ok());
  ExpectSameDatabase(s.value()->MaterializeAll("db"),
                     oracle.value()->MaterializeAll("db"));
}

TEST_F(StoreQueryTest, CompactedSnapshotQueryByteIdenticalToUncompacted) {
  // The acceptance gate: fully compact the fixture store (which holds
  // several segments plus a live memtable) and re-run every query —
  // each response must serialize byte-identically to both the
  // uncompacted snapshot and the merged-database oracle.
  auto before = store_->Snapshot();
  while (store_->num_segments() > 1) {
    auto cst = store_->CompactOnce(/*force=*/true);
    ASSERT_TRUE(cst.ok()) << cst.status().ToString();
    ASSERT_GT(cst.value().inputs, 0u);
  }
  auto after = store_->Snapshot();
  ASSERT_NE(before.get(), after.get());
  ExpectSameDatabase(store_->MaterializeAll("merged"), merged_);
  for (core::Matcher matcher :
       {core::Matcher::kNaiveBayes, core::Matcher::kAlphaFilter}) {
    for (size_t qi = 0; qi < p_.size(); ++qi) {
      auto want = engine_->Query(p_[qi], merged_, matcher);
      auto uncompacted = before->Query(*engine_, p_[qi], matcher, nullptr);
      auto got = after->Query(*engine_, p_[qi], matcher, nullptr);
      ASSERT_EQ(want.ok(), got.ok()) << p_[qi].label();
      if (!want.ok()) continue;
      ASSERT_TRUE(uncompacted.ok());
      const std::string want_json =
          io::QueryResultToJson(p_[qi].label(), want.value());
      EXPECT_EQ(io::QueryResultToJson(p_[qi].label(), got.value()), want_json)
          << "query " << p_[qi].label();
      EXPECT_EQ(io::QueryResultToJson(p_[qi].label(), uncompacted.value()),
                want_json)
          << "query " << p_[qi].label();
    }
  }
}

}  // namespace
}  // namespace ftl
