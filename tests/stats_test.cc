#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "stats/descriptive.h"
#include "stats/distributions.h"
#include "stats/goodness_of_fit.h"
#include "stats/poisson_binomial.h"
#include "util/rng.h"

namespace ftl::stats {
namespace {

double SumVec(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) s += x;
  return s;
}

// ----------------------------------------------------- Poisson-Binomial

TEST(PoissonBinomialTest, SingleTrial) {
  PoissonBinomial pb({0.3});
  EXPECT_NEAR(pb.Pmf(0), 0.7, 1e-12);
  EXPECT_NEAR(pb.Pmf(1), 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(pb.Pmf(2), 0.0);
  EXPECT_DOUBLE_EQ(pb.Pmf(-1), 0.0);
}

TEST(PoissonBinomialTest, MatchesBinomialWhenHomogeneous) {
  // Equal probabilities reduce to Binomial(n, p).
  const int n = 12;
  const double p = 0.25;
  PoissonBinomial pb(std::vector<double>(n, p));
  for (int k = 0; k <= n; ++k) {
    double expect = BinomialCoefficient(n, k) * std::pow(p, k) *
                    std::pow(1 - p, n - k);
    EXPECT_NEAR(pb.Pmf(k), expect, 1e-12) << "k=" << k;
  }
}

TEST(PoissonBinomialTest, PmfSumsToOne) {
  PoissonBinomial pb({0.1, 0.9, 0.5, 0.33, 0.77});
  EXPECT_NEAR(SumVec(pb.PmfVector()), 1.0, 1e-12);
}

TEST(PoissonBinomialTest, MeanAndVariance) {
  std::vector<double> ps = {0.2, 0.4, 0.9};
  PoissonBinomial pb(ps);
  EXPECT_NEAR(pb.Mean(), 1.5, 1e-12);
  EXPECT_NEAR(pb.Variance(), 0.2 * 0.8 + 0.4 * 0.6 + 0.9 * 0.1, 1e-12);
  // Moments from the pmf agree.
  double m = 0, v = 0;
  const auto& pmf = pb.PmfVector();
  for (size_t k = 0; k < pmf.size(); ++k) m += static_cast<double>(k) * pmf[k];
  for (size_t k = 0; k < pmf.size(); ++k) {
    v += (static_cast<double>(k) - m) * (static_cast<double>(k) - m) * pmf[k];
  }
  EXPECT_NEAR(m, pb.Mean(), 1e-10);
  EXPECT_NEAR(v, pb.Variance(), 1e-10);
}

TEST(PoissonBinomialTest, DegenerateAllZero) {
  PoissonBinomial pb({0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(pb.Pmf(0), 1.0);
  EXPECT_DOUBLE_EQ(pb.Cdf(0), 1.0);
  EXPECT_DOUBLE_EQ(pb.UpperTailPValue(0), 1.0);
  EXPECT_DOUBLE_EQ(pb.UpperTailPValue(1), 0.0);
}

TEST(PoissonBinomialTest, DegenerateAllOne) {
  PoissonBinomial pb({1.0, 1.0});
  EXPECT_DOUBLE_EQ(pb.Pmf(2), 1.0);
  EXPECT_DOUBLE_EQ(pb.Pmf(0), 0.0);
  EXPECT_DOUBLE_EQ(pb.LowerTailPValue(1), 0.0);
  EXPECT_DOUBLE_EQ(pb.LowerTailPValue(2), 1.0);
}

TEST(PoissonBinomialTest, EmptyTrials) {
  PoissonBinomial pb({});
  EXPECT_DOUBLE_EQ(pb.Pmf(0), 1.0);
  EXPECT_DOUBLE_EQ(pb.UpperTailPValue(0), 1.0);
  EXPECT_DOUBLE_EQ(pb.LowerTailPValue(0), 1.0);
}

TEST(PoissonBinomialTest, ClampsOutOfRangeProbs) {
  PoissonBinomial pb({-0.5, 1.5});
  EXPECT_DOUBLE_EQ(pb.probs()[0], 0.0);
  EXPECT_DOUBLE_EQ(pb.probs()[1], 1.0);
  EXPECT_NEAR(SumVec(pb.PmfVector()), 1.0, 1e-12);
}

TEST(PoissonBinomialTest, CdfMonotone) {
  PoissonBinomial pb({0.2, 0.5, 0.7, 0.1});
  double prev = 0.0;
  for (int k = 0; k <= 4; ++k) {
    double c = pb.Cdf(k);
    EXPECT_GE(c, prev - 1e-15);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(pb.Cdf(4), 1.0);
  EXPECT_DOUBLE_EQ(pb.Cdf(-1), 0.0);
}

TEST(PoissonBinomialTest, TailIdentity) {
  // Upper(k) + Lower(k-1) == 1.
  PoissonBinomial pb({0.3, 0.6, 0.2, 0.8});
  for (int k = 1; k <= 4; ++k) {
    EXPECT_NEAR(pb.UpperTailPValue(k) + pb.LowerTailPValue(k - 1), 1.0,
                1e-12);
  }
}

TEST(PoissonBinomialTest, RecursiveMatchesDpInStableRegime) {
  // The Eq. 1 recursion is an alternating series that is numerically
  // stable while every odds ratio p/(1-p) <= 1, i.e. p <= 0.5 (why the
  // DP is the production path). In that regime it matches the DP to
  // near machine precision.
  Rng rng(101);
  for (int trial = 0; trial < 30; ++trial) {
    size_t n = 1 + rng.Index(30);
    std::vector<double> ps;
    for (size_t i = 0; i < n; ++i) ps.push_back(rng.Uniform(0.01, 0.5));
    auto dp = PoissonBinomialPmfDp(ps);
    auto rec = PoissonBinomialPmfRecursive(ps);
    ASSERT_EQ(dp.size(), rec.size());
    for (size_t k = 0; k < dp.size(); ++k) {
      EXPECT_NEAR(dp[k], rec[k], 1e-9) << "trial=" << trial << " k=" << k;
    }
  }
}

TEST(PoissonBinomialTest, RecursiveExactForSmallN) {
  // For small trial counts with moderate odds the recursion is
  // essentially exact even above p = 0.5.
  Rng rng(102);
  for (int trial = 0; trial < 50; ++trial) {
    size_t n = 1 + rng.Index(8);
    std::vector<double> ps;
    for (size_t i = 0; i < n; ++i) ps.push_back(rng.Uniform(0.01, 0.9));
    auto dp = PoissonBinomialPmfDp(ps);
    auto rec = PoissonBinomialPmfRecursive(ps);
    for (size_t k = 0; k < dp.size(); ++k) {
      EXPECT_NEAR(dp[k], rec[k], 1e-6);
    }
  }
}

TEST(PoissonBinomialTest, RecursiveStillNormalizesOutsideStableRegime) {
  // Outside the stable regime individual tail entries lose digits, but
  // the clamped result must remain a (near-)distribution — this test
  // documents the known limitation rather than hiding it.
  std::vector<double> ps(20, 0.9);
  auto rec = PoissonBinomialPmfRecursive(ps);
  double sum = SumVec(rec);
  EXPECT_NEAR(sum, 1.0, 0.05);
  // The bulk (around k = 18) is still accurate.
  auto dp = PoissonBinomialPmfDp(ps);
  EXPECT_NEAR(rec[18], dp[18], 1e-3);
}

TEST(PoissonBinomialTest, RecursiveHandlesDeterministicTrials) {
  std::vector<double> ps = {0.0, 1.0, 0.5, 0.0, 1.0};
  auto dp = PoissonBinomialPmfDp(ps);
  auto rec = PoissonBinomialPmfRecursive(ps);
  ASSERT_EQ(dp.size(), rec.size());
  for (size_t k = 0; k < dp.size(); ++k) {
    EXPECT_NEAR(dp[k], rec[k], 1e-12);
  }
}

TEST(PoissonBinomialTest, AgreesWithMonteCarlo) {
  std::vector<double> ps = {0.05, 0.2, 0.5, 0.8, 0.33, 0.66};
  PoissonBinomial pb(ps);
  Rng rng(77);
  const int trials = 200000;
  std::vector<int64_t> counts;
  counts.reserve(trials);
  for (int t = 0; t < trials; ++t) {
    int64_t k = 0;
    for (double p : ps) k += rng.Bernoulli(p) ? 1 : 0;
    counts.push_back(k);
  }
  auto emp = EmpiricalPmf(counts);
  EXPECT_LT(TotalVariationDistance(emp, pb.PmfVector()), 0.01);
}

TEST(PoissonBinomialTest, RnaMatchesExactCdf) {
  // Refined normal approximation: within ~1e-2 of the exact cdf for
  // moderate n.
  Rng rng(103);
  for (int trial = 0; trial < 10; ++trial) {
    size_t n = 50 + rng.Index(200);
    std::vector<double> ps;
    for (size_t i = 0; i < n; ++i) ps.push_back(rng.Uniform(0.02, 0.6));
    PoissonBinomial pb(ps);
    for (int64_t k : {static_cast<int64_t>(pb.Mean() * 0.5),
                      static_cast<int64_t>(pb.Mean()),
                      static_cast<int64_t>(pb.Mean() * 1.5)}) {
      EXPECT_NEAR(PoissonBinomialCdfRna(ps, k), pb.Cdf(k), 0.015)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(PoissonBinomialTest, RnaBoundaries) {
  std::vector<double> ps = {0.2, 0.5, 0.8};
  EXPECT_DOUBLE_EQ(PoissonBinomialCdfRna(ps, -1), 0.0);
  EXPECT_DOUBLE_EQ(PoissonBinomialCdfRna(ps, 3), 1.0);
  EXPECT_DOUBLE_EQ(PoissonBinomialUpperPValueRna(ps, 0), 1.0);
  EXPECT_GE(PoissonBinomialUpperPValueRna(ps, 3), 0.0);
}

TEST(PoissonBinomialTest, RnaDegenerateVariance) {
  // All-0 and all-1 trial vectors have zero variance.
  std::vector<double> zeros(5, 0.0);
  EXPECT_DOUBLE_EQ(PoissonBinomialCdfRna(zeros, 0), 1.0);
  std::vector<double> ones(5, 1.0);
  EXPECT_DOUBLE_EQ(PoissonBinomialCdfRna(ones, 4), 0.0);
  EXPECT_DOUBLE_EQ(PoissonBinomialCdfRna(ones, 5), 1.0);
}

TEST(PoissonBinomialTest, RnaUpperTailMonotoneInK) {
  std::vector<double> ps(100, 0.3);
  double prev = 1.0;
  for (int64_t k = 0; k <= 100; k += 10) {
    double p = PoissonBinomialUpperPValueRna(ps, k);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

// ---------------------------------------------------------- Poisson etc

TEST(DistributionsTest, LogFactorial) {
  EXPECT_DOUBLE_EQ(LogFactorial(0), 0.0);
  EXPECT_DOUBLE_EQ(LogFactorial(1), 0.0);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-10);
  EXPECT_NEAR(LogFactorial(20), std::log(2432902008176640000.0), 1e-8);
}

TEST(DistributionsTest, BinomialCoefficient) {
  EXPECT_NEAR(BinomialCoefficient(5, 2), 10.0, 1e-9);
  EXPECT_NEAR(BinomialCoefficient(10, 0), 1.0, 1e-9);
  EXPECT_NEAR(BinomialCoefficient(10, 10), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 6), 0.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, -1), 0.0);
}

TEST(DistributionsTest, PoissonPmfBasics) {
  EXPECT_NEAR(PoissonPmf(0, 2.0), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(PoissonPmf(1, 2.0), 2.0 * std::exp(-2.0), 1e-12);
  EXPECT_DOUBLE_EQ(PoissonPmf(-1, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(PoissonPmf(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(PoissonPmf(3, 0.0), 0.0);
}

TEST(DistributionsTest, PoissonPmfNormalizes) {
  double s = 0;
  for (int k = 0; k <= 100; ++k) s += PoissonPmf(k, 7.5);
  EXPECT_NEAR(s, 1.0, 1e-10);
}

TEST(DistributionsTest, PoissonCdf) {
  EXPECT_NEAR(PoissonCdf(2, 1.0),
              std::exp(-1.0) * (1.0 + 1.0 + 0.5), 1e-12);
  EXPECT_DOUBLE_EQ(PoissonCdf(-1, 1.0), 0.0);
}

TEST(DistributionsTest, PoissonPmfVector) {
  auto v = PoissonPmfVector(3.0, 10);
  ASSERT_EQ(v.size(), 11u);
  for (int k = 0; k <= 10; ++k) EXPECT_DOUBLE_EQ(v[k], PoissonPmf(k, 3.0));
}

TEST(DistributionsTest, Exponential) {
  EXPECT_NEAR(ExponentialPdf(0.0, 2.0), 2.0, 1e-12);
  EXPECT_NEAR(ExponentialPdf(1.0, 2.0), 2.0 * std::exp(-2.0), 1e-12);
  EXPECT_DOUBLE_EQ(ExponentialPdf(-1.0, 2.0), 0.0);
  EXPECT_NEAR(ExponentialCdf(std::log(2.0) / 2.0, 2.0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(ExponentialCdf(-1.0, 2.0), 0.0);
}

TEST(DistributionsTest, NormalCdf) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
}

// ------------------------------------------------------------ Descriptive

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.Add(x);
  EXPECT_EQ(rs.Count(), 8u);
  EXPECT_DOUBLE_EQ(rs.Mean(), 5.0);
  EXPECT_NEAR(rs.Variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.Min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.Max(), 9.0);
}

TEST(RunningStatsTest, Empty) {
  RunningStats rs;
  EXPECT_DOUBLE_EQ(rs.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.Min(), 0.0);
}

TEST(DescriptiveTest, MeanStdv) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(xs), 3.0);
  EXPECT_NEAR(Stdv(xs), std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Stdv({1.0}), 0.0);
}

TEST(DescriptiveTest, Quantile) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 2.0);
}

TEST(DescriptiveTest, EmpiricalPmf) {
  auto pmf = EmpiricalPmf({0, 1, 1, 3});
  ASSERT_EQ(pmf.size(), 4u);
  EXPECT_DOUBLE_EQ(pmf[0], 0.25);
  EXPECT_DOUBLE_EQ(pmf[1], 0.5);
  EXPECT_DOUBLE_EQ(pmf[2], 0.0);
  EXPECT_DOUBLE_EQ(pmf[3], 0.25);
  EXPECT_TRUE(EmpiricalPmf({}).empty());
}

TEST(DescriptiveTest, EmpiricalPmfNormalizesOverNonNegatives) {
  // Regression: negative values are excluded from the support, so they
  // must be excluded from the denominator too. With {-1, -1, 0, 2} only
  // 2 of 4 observations are counted; the PMF must sum to 1 over those.
  auto pmf = EmpiricalPmf({-1, -1, 0, 2});
  ASSERT_EQ(pmf.size(), 3u);
  EXPECT_DOUBLE_EQ(pmf[0], 0.5);
  EXPECT_DOUBLE_EQ(pmf[1], 0.0);
  EXPECT_DOUBLE_EQ(pmf[2], 0.5);
}

TEST(DescriptiveTest, EmpiricalPmfSumsToOneOverSignedInputs) {
  // Property check over a deterministic sweep of signed inputs.
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int64_t> xs;
    bool any_nonneg = false;
    size_t n = 1 + static_cast<size_t>(rng.Uniform(0, 40));
    for (size_t i = 0; i < n; ++i) {
      int64_t x = static_cast<int64_t>(rng.Uniform(-10, 20));
      xs.push_back(x);
      any_nonneg = any_nonneg || x >= 0;
    }
    auto pmf = EmpiricalPmf(xs);
    if (!any_nonneg) {
      EXPECT_TRUE(pmf.empty());
      continue;
    }
    double sum = 0.0;
    for (double p : pmf) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(DescriptiveTest, EmpiricalPmfAllNegativeIsEmpty) {
  EXPECT_TRUE(EmpiricalPmf({-5, -1, -3}).empty());
}

TEST(DescriptiveTest, MeanStdvPropagateNan) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(Mean({1.0, nan, 3.0})));
  EXPECT_TRUE(std::isnan(Stdv({1.0, nan, 3.0})));
}

TEST(DescriptiveTest, QuantilePropagatesNan) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // Regression: NaN used to reach std::sort, which requires a strict
  // weak order NaN cannot provide (undefined behavior). Now every
  // quantile of a NaN-bearing sample is NaN.
  EXPECT_TRUE(std::isnan(Quantile({nan}, 0.5)));
  EXPECT_TRUE(std::isnan(Quantile({1.0, nan, 3.0}, 0.0)));
  EXPECT_TRUE(std::isnan(Quantile({1.0, 2.0, nan}, 1.0)));
  // NaN-free input is unaffected.
  EXPECT_DOUBLE_EQ(Quantile({1.0, 2.0, 3.0}, 0.5), 2.0);
}

TEST(RunningStatsTest, NanPoisonsMinMax) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  RunningStats rs;
  rs.Add(2.0);
  rs.Add(nan);
  rs.Add(1.0);
  EXPECT_TRUE(std::isnan(rs.Mean()));
  EXPECT_TRUE(std::isnan(rs.Min()));
  EXPECT_TRUE(std::isnan(rs.Max()));
  EXPECT_EQ(rs.Count(), 3u);
}

// -------------------------------------------------------- Goodness of fit

TEST(GofTest, TotalVariationDistance) {
  EXPECT_DOUBLE_EQ(TotalVariationDistance({1.0}, {1.0}), 0.0);
  EXPECT_DOUBLE_EQ(TotalVariationDistance({1.0, 0.0}, {0.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(TotalVariationDistance({0.5, 0.5}, {1.0}), 0.5);
}

TEST(GofTest, KsUniformSamplesFitUniform) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.Uniform(0, 1));
  double d = KsStatistic(xs, [](double x) {
    return std::min(1.0, std::max(0.0, x));
  });
  EXPECT_GT(KsPValue(d, xs.size()), 0.01);
}

TEST(GofTest, KsRejectsWrongDistribution) {
  Rng rng(4);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.Exponential(1.0));
  // Test exponential samples against a uniform cdf: must reject.
  double d = KsStatistic(xs, [](double x) {
    return std::min(1.0, std::max(0.0, x));
  });
  EXPECT_LT(KsPValue(d, xs.size()), 1e-6);
}

TEST(GofTest, ChiSquareZeroForPerfectFit) {
  std::vector<double> obs = {10, 20, 30};
  EXPECT_DOUBLE_EQ(ChiSquareStatistic(obs, obs), 0.0);
}

TEST(GofTest, ChiSquarePoolsSmallBins) {
  std::vector<double> obs = {100, 1, 2};
  std::vector<double> exp = {100, 1.5, 1.5};
  // Small expected bins pool: (3-3)^2/3 = 0.
  EXPECT_DOUBLE_EQ(ChiSquareStatistic(obs, exp, 5.0), 0.0);
}

}  // namespace
}  // namespace ftl::stats
