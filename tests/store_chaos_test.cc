// Chaos harness for the crash-safe store (ISSUE 8 tentpole): sweeps
// fault injection over every store failpoint site during ingest,
// crash-drops the store without flushing, recovers, and asserts the
// recovered state equals an oracle fed exactly the acknowledged
// batches — then proves post-recovery query responses are
// byte-identical to querying one merged database. The second half
// exercises the full ingest-while-serving path: /readyz gating during
// warm-up, concurrent POST /v1/ingest + /v1/query traffic, graceful
// drain, and reopen.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "ftl/ftl.h"
#include "serve/http.h"
#include "serve/server.h"

namespace ftl {
namespace {

std::string TempPath(const std::string& name) {
  static const std::string suffix =
      "." + std::to_string(static_cast<long long>(::getpid()));
  return (std::filesystem::temp_directory_path() / (name + suffix)).string();
}

std::string FreshDir(const std::string& name) {
  std::string dir = TempPath(name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

store::IngestBatch MakeBatch(const std::string& label, int64_t t0, size_t n) {
  store::IngestBatch b;
  for (size_t i = 0; i < n; ++i) {
    store::IngestRow row;
    row.label = label;
    row.t = t0 + static_cast<int64_t>(i) * 30;
    row.x = 7.0 * static_cast<double>(i) + 0.5;
    row.y = -3.0 * static_cast<double>(i) + 0.25;
    b.rows.push_back(std::move(row));
  }
  return b;
}

/// The recovery oracle: the canonical merged database is by definition
/// what a never-flushed memtable fed the same batches would hold
/// (first-appearance order, first non-unknown owner, time-sorted).
traj::TrajectoryDatabase OracleDb(
    const std::vector<store::IngestBatch>& batches) {
  store::MutableSegment mt;
  for (const auto& b : batches) mt.Apply(b);
  return mt.ToDatabase("recovered");
}

void ExpectSameDatabase(const traj::TrajectoryDatabase& got,
                        const traj::TrajectoryDatabase& want,
                        const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].label(), want[i].label()) << context << " traj " << i;
    EXPECT_EQ(got[i].owner(), want[i].owner()) << context << " traj " << i;
    ASSERT_EQ(got[i].size(), want[i].size())
        << context << " traj " << i << " (" << got[i].label() << ")";
    for (size_t j = 0; j < got[i].size(); ++j) {
      ASSERT_EQ(got[i].records()[j], want[i].records()[j])
          << context << " traj " << i << " record " << j;
    }
  }
}

class StoreChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }
};

// --------------------------------------------------------------------------
// Failpoint sweep: fault in the middle of an ingest stream, crash, recover.

TEST_F(StoreChaosTest, FaultSweepRecoversExactlyTheAckedBatches) {
  struct FaultCase {
    const char* site;
    failpoint::Action action;
  };
  const std::vector<FaultCase> cases = {
      {"store.wal.append", failpoint::Action::kError},
      {"store.wal.append", failpoint::Action::kPartialWrite},
      {"store.wal.sync", failpoint::Action::kError},
      {"store.flush.segment", failpoint::Action::kError},
      {"store.manifest.swap", failpoint::Action::kError},
      {"store.manifest.swap", failpoint::Action::kPartialWrite},
  };

  for (size_t ci = 0; ci < cases.size(); ++ci) {
    const FaultCase& fc = cases[ci];
    SCOPED_TRACE(std::string(fc.site) + "/" +
                 (fc.action == failpoint::Action::kError ? "error"
                                                         : "partial"));
    std::string dir = FreshDir("chaos_sweep_" + std::to_string(ci));
    store::StoreOptions so;
    so.wal_sync = store::WalSync::kAlways;  // acked must survive any crash
    so.flush_threshold_records = 6;
    so.backpressure_factor = 4.0;
    auto opened = store::Store::Open(dir, so);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<store::Store> s = std::move(opened).value();

    std::vector<store::IngestBatch> acked;
    for (int i = 0; i < 20; ++i) {
      if (i == 8) failpoint::Arm(fc.site, {fc.action, 0});
      if (i == 14) failpoint::DisarmAll();
      store::IngestBatch b =
          MakeBatch("obj-" + std::to_string(i % 7), i * 1000, 3);
      Status st = s->Append(b);
      if (st.ok()) {
        acked.push_back(b);
      } else if (s->broken()) {
        break;  // refusal mode: nothing further can be acked
      }
    }
    failpoint::DisarmAll();
    EXPECT_GE(acked.size(), 8u);  // the pre-fault stream always lands

    // Crash: drop the store with no flush, no clean shutdown.
    s.reset();

    store::RecoveryInfo info;
    auto reopened = store::Store::Open(dir, so, &info);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    ExpectSameDatabase(reopened.value()->MaterializeAll("recovered"),
                       OracleDb(acked), "post-crash");
  }
}

TEST_F(StoreChaosTest, ReplayFaultFailsRecoveryThenSucceeds) {
  std::string dir = FreshDir("chaos_replay_fault");
  store::StoreOptions so;
  so.wal_sync = store::WalSync::kAlways;
  std::vector<store::IngestBatch> acked;
  {
    auto s = store::Store::Open(dir, so);
    ASSERT_TRUE(s.ok());
    for (int i = 0; i < 5; ++i) {
      store::IngestBatch b = MakeBatch("r-" + std::to_string(i), i * 100, 2);
      ASSERT_TRUE(s.value()->Append(b).ok());
      acked.push_back(b);
    }
  }
  failpoint::Arm("store.recovery.replay",
                 {failpoint::Action::kError, 0});
  auto fail = store::Store::Open(dir, so);
  EXPECT_FALSE(fail.ok());
  failpoint::DisarmAll();
  // The failed recovery attempt must not have eaten the WAL.
  auto s = store::Store::Open(dir, so);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  ExpectSameDatabase(s.value()->MaterializeAll("recovered"), OracleDb(acked),
                     "after failed recovery attempt");
}

TEST_F(StoreChaosTest, RepeatedCrashReopenCyclesAccumulateState) {
  std::string dir = FreshDir("chaos_cycles");
  store::StoreOptions so;
  so.wal_sync = store::WalSync::kAlways;
  so.flush_threshold_records = 8;
  std::vector<store::IngestBatch> acked;
  uint64_t last_generation = 0;
  for (int cycle = 0; cycle < 5; ++cycle) {
    store::RecoveryInfo info;
    auto s = store::Store::Open(dir, so, &info);
    ASSERT_TRUE(s.ok()) << "cycle " << cycle << ": "
                        << s.status().ToString();
    EXPECT_GE(s.value()->generation(), last_generation) << "cycle " << cycle;
    last_generation = s.value()->generation();
    ExpectSameDatabase(s.value()->MaterializeAll("recovered"),
                       OracleDb(acked), "cycle " + std::to_string(cycle));
    for (int i = 0; i < 4; ++i) {
      store::IngestBatch b = MakeBatch(
          "cyc-" + std::to_string((cycle * 4 + i) % 6), cycle * 10000 + i, 3);
      ASSERT_TRUE(s.value()->Append(b).ok());
      acked.push_back(b);
    }
    // Crash (no flush, no clean close).
    s.value().reset();
  }
  auto final_open = store::Store::Open(dir, so);
  ASSERT_TRUE(final_open.ok());
  EXPECT_GE(final_open.value()->num_segments(), 1u);
  ExpectSameDatabase(final_open.value()->MaterializeAll("recovered"),
                     OracleDb(acked), "final");
}

// --------------------------------------------------------------------------
// Compaction crash sweep (ISSUE 10): a fault at either compaction
// failpoint must abort the round cleanly — store still usable, no temp
// debris — and a crash + reopen must recover exactly the acked batches
// with queries byte-identical to the uncompacted snapshot.

TEST_F(StoreChaosTest, CompactionFaultSweepRecoversAndStaysByteIdentical) {
  struct FaultCase {
    const char* site;
    failpoint::Action action;
  };
  const std::vector<FaultCase> cases = {
      {"store.compact.write", failpoint::Action::kError},
      {"store.compact.write", failpoint::Action::kAllocFail},
      {"store.compact.swap", failpoint::Action::kError},
      {"store.compact.swap", failpoint::Action::kAllocFail},
  };
  for (size_t ci = 0; ci < cases.size(); ++ci) {
    const FaultCase& fc = cases[ci];
    SCOPED_TRACE(std::string(fc.site) + "/" +
                 (fc.action == failpoint::Action::kError ? "error"
                                                        : "alloc"));
    std::string dir = FreshDir("chaos_compact_" + std::to_string(ci));
    store::StoreOptions so;
    so.wal_sync = store::WalSync::kAlways;
    so.flush_threshold_records = 6;
    auto opened = store::Store::Open(dir, so);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<store::Store> s = std::move(opened).value();

    std::vector<store::IngestBatch> acked;
    for (int i = 0; i < 10; ++i) {
      store::IngestBatch b =
          MakeBatch("cmp-" + std::to_string(i % 4), i * 1000, 3);
      ASSERT_TRUE(s->Append(b).ok());
      acked.push_back(b);
    }
    ASSERT_GE(s->num_segments(), 2u);
    const size_t segments_before = s->num_segments();

    // Faulted round: clean non-OK, store NOT broken, segment set and
    // database untouched, no compaction temp files left behind.
    failpoint::Arm(fc.site, {fc.action, 0});
    auto faulted = s->CompactOnce(/*force=*/true);
    failpoint::DisarmAll();
    EXPECT_FALSE(faulted.ok()) << fc.site;
    EXPECT_FALSE(s->broken());
    EXPECT_EQ(s->num_segments(), segments_before);
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
      EXPECT_EQ(e.path().filename().string().find("compact-"),
                std::string::npos)
          << "temp debris: " << e.path().filename().string();
    }
    ExpectSameDatabase(s->MaterializeAll("db"), OracleDb(acked),
                       "after faulted round");

    // The store stays fully operational: the next round succeeds and
    // appends still land.
    auto retried = s->CompactOnce(/*force=*/true);
    ASSERT_TRUE(retried.ok()) << retried.status().ToString();
    EXPECT_GT(retried.value().inputs, 0u);
    store::IngestBatch live = MakeBatch("cmp-live", 999000, 2);
    ASSERT_TRUE(s->Append(live).ok());
    acked.push_back(live);

    // Crash, reopen: acked state exactly, no orphans surviving GC.
    s.reset();
    store::RecoveryInfo info;
    auto reopened = store::Store::Open(dir, so, &info);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    ExpectSameDatabase(reopened.value()->MaterializeAll("db"),
                       OracleDb(acked), "post-crash");
  }
}

TEST_F(StoreChaosTest, CompactedQueriesByteIdenticalToUncompactedSnapshot) {
  sim::DatasetPair pair = sim::BuildDataset(sim::FindConfig("SD"), 14, 23);
  std::string dir = FreshDir("chaos_compact_identity");
  store::StoreOptions so;
  so.wal_sync = store::WalSync::kNever;
  so.flush_threshold_records = 60;
  auto opened = store::Store::Open(dir, so);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<store::Store> s = std::move(opened).value();
  for (int round = 0; round < 2; ++round) {
    for (const traj::Trajectory& t : pair.q) {
      store::IngestBatch b;
      size_t half = t.size() / 2;
      for (size_t i = round == 0 ? 0 : half;
           i < (round == 0 ? half : t.size()); ++i) {
        const traj::Record& r = t.records()[i];
        b.rows.push_back(store::IngestRow{t.label(), t.owner(), r.t,
                                          r.location.x, r.location.y});
      }
      if (!b.rows.empty()) ASSERT_TRUE(s->Append(b).ok());
    }
  }
  ASSERT_GE(s->num_segments(), 2u);

  core::EngineOptions eo;
  eo.training.horizon_units = 20;
  eo.training.acceptance_pairs_per_db = 100;
  core::FtlEngine engine(eo);
  ASSERT_TRUE(engine.Train(pair.p, s->MaterializeAll("merged")).ok());

  // Uncompacted responses are the oracle bytes.
  auto before = s->Snapshot();
  std::vector<std::string> want;
  for (size_t qi = 0; qi < pair.p.size(); ++qi) {
    auto r = before->Query(engine, pair.p[qi], core::Matcher::kNaiveBayes,
                           nullptr);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    want.push_back(io::QueryResultToJson(pair.p[qi].label(), r.value()));
  }

  // Compact to one segment (the snapshot pinned above keeps reading the
  // merged-away files through its shared_ptrs), then crash + reopen so
  // the post-recovery snapshot is rebuilt from the compacted manifest.
  while (s->num_segments() > 1) {
    auto cst = s->CompactOnce(/*force=*/true);
    ASSERT_TRUE(cst.ok()) << cst.status().ToString();
    ASSERT_GT(cst.value().inputs, 0u);
  }
  before.reset();
  s.reset();
  auto reopened = store::Store::Open(dir, so);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->num_segments(), 1u);
  auto after = reopened.value()->Snapshot();
  for (size_t qi = 0; qi < pair.p.size(); ++qi) {
    auto r = after->Query(engine, pair.p[qi], core::Matcher::kNaiveBayes,
                          nullptr);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(io::QueryResultToJson(pair.p[qi].label(), r.value()), want[qi])
        << "query " << pair.p[qi].label();
    // And the parallel walk over the compacted snapshot agrees too.
    auto par = after->Query(engine, pair.p[qi], core::Matcher::kNaiveBayes,
                            nullptr, 4);
    ASSERT_TRUE(par.ok()) << par.status().ToString();
    EXPECT_EQ(io::QueryResultToJson(pair.p[qi].label(), par.value()),
              want[qi])
        << "query " << pair.p[qi].label();
  }
}

// --------------------------------------------------------------------------
// Post-recovery query byte-identity: the acceptance gate of the issue.

TEST_F(StoreChaosTest, PostRecoveryQueriesByteIdenticalToMergedDatabase) {
  sim::DatasetPair pair = sim::BuildDataset(sim::FindConfig("SD"), 16, 42);

  // Ingest Q in per-trajectory halves with a small flush threshold so
  // labels span segments, then tear the WAL tail by hand (the
  // bytes-on-disk shape of a kill -9 mid-append).
  std::string dir = FreshDir("chaos_identity");
  store::StoreOptions so;
  so.wal_sync = store::WalSync::kNever;
  so.flush_threshold_records = 60;
  {
    auto s = store::Store::Open(dir, so);
    ASSERT_TRUE(s.ok());
    for (int round = 0; round < 2; ++round) {
      for (const traj::Trajectory& t : pair.q) {
        store::IngestBatch b;
        size_t half = t.size() / 2;
        for (size_t i = round == 0 ? 0 : half;
             i < (round == 0 ? half : t.size()); ++i) {
          const traj::Record& r = t.records()[i];
          b.rows.push_back(store::IngestRow{t.label(), t.owner(), r.t,
                                            r.location.x, r.location.y});
        }
        if (!b.rows.empty()) {
          ASSERT_TRUE(s.value()->Append(b).ok());
        }
      }
    }
    ASSERT_GE(s.value()->num_segments(), 2u);
    s.value().reset();  // crash
  }
  // Tear the live WAL: append half a valid-looking frame of garbage.
  {
    auto manifest = store::ReadManifest(dir);
    ASSERT_TRUE(manifest.ok());
    std::ofstream wal(dir + "/" + manifest.value().wal,
                      std::ios::binary | std::ios::app);
    const char torn[] = "\x40\x00\x00\x00\xde\xad\xbe\xef torn frame";
    wal.write(torn, sizeof(torn) - 1);
    ASSERT_TRUE(wal.good());
  }

  store::RecoveryInfo info;
  auto reopened = store::Store::Open(dir, so, &info);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_GT(info.torn_bytes_dropped, 0u);
  EXPECT_GT(info.replayed_batches, 0u);

  // Train on the recovered canonical database; every query response
  // must serialize byte-identically to querying that one merged
  // database directly.
  traj::TrajectoryDatabase merged =
      reopened.value()->MaterializeAll("merged");
  core::EngineOptions eo;
  eo.training.horizon_units = 20;
  eo.training.acceptance_pairs_per_db = 100;
  core::FtlEngine engine(eo);
  ASSERT_TRUE(engine.Train(pair.p, merged).ok());
  auto snap = reopened.value()->Snapshot();
  for (size_t qi = 0; qi < pair.p.size(); ++qi) {
    auto want = engine.Query(pair.p[qi], merged, core::Matcher::kNaiveBayes);
    auto got =
        snap->Query(engine, pair.p[qi], core::Matcher::kNaiveBayes, nullptr);
    ASSERT_EQ(want.ok(), got.ok()) << pair.p[qi].label();
    if (!want.ok()) continue;
    EXPECT_EQ(io::QueryResultToJson(pair.p[qi].label(), got.value()),
              io::QueryResultToJson(pair.p[qi].label(), want.value()))
        << "query " << pair.p[qi].label();
  }
}

// --------------------------------------------------------------------------
// Ingest while serving: /readyz gating, live appends, drain, reopen.

TEST_F(StoreChaosTest, IngestWhileServing) {
  sim::DatasetPair pair = sim::BuildDataset(sim::FindConfig("SD"), 12, 7);
  std::string dir = FreshDir("chaos_serve");
  store::StoreOptions so;
  so.wal_sync = store::WalSync::kNever;
  so.flush_threshold_records = 200;
  std::unique_ptr<store::Store> s = store::Store::Create(dir, so);

  core::EngineOptions eo;
  eo.training.horizon_units = 20;
  eo.training.acceptance_pairs_per_db = 100;
  core::FtlEngine engine(eo);

  serve::ServeOptions opts;
  opts.port = 0;
  opts.num_threads = 2;
  opts.start_ready = false;
  serve::FtlServer server(opts, &engine, &pair.p, s.get());
  ASSERT_TRUE(server.Start().ok());
  int port = server.port();

  // Warming up: probes split — alive but not ready, ingest gated.
  auto readyz = serve::HttpRequestOnce("127.0.0.1", port, "GET", "/readyz",
                                       "");
  ASSERT_TRUE(readyz.ok()) << readyz.status().ToString();
  EXPECT_EQ(readyz.value().status, 503);
  EXPECT_NE(readyz.value().body.find("\"ready\":false"), std::string::npos);
  auto healthz =
      serve::HttpRequestOnce("127.0.0.1", port, "GET", "/healthz", "");
  ASSERT_TRUE(healthz.ok());
  EXPECT_EQ(healthz.value().status, 200);
  auto early = serve::HttpRequestOnce(
      "127.0.0.1", port, "POST", "/v1/ingest",
      R"({"records":[{"label":"early","t":1,"x":0,"y":0}]})");
  ASSERT_TRUE(early.ok());
  EXPECT_EQ(early.value().status, 503);

  // Warm up: recover, seed with Q, train, mark ready.
  ASSERT_TRUE(s->Recover().ok());
  for (const traj::Trajectory& t : pair.q) {
    store::IngestBatch b;
    for (const traj::Record& r : t.records()) {
      b.rows.push_back(store::IngestRow{t.label(), t.owner(), r.t,
                                        r.location.x, r.location.y});
    }
    ASSERT_TRUE(s->Append(b).ok());
  }
  ASSERT_TRUE(engine.Train(pair.p, s->MaterializeAll("store")).ok());
  server.MarkReady();
  const size_t seeded = s->total_records();

  readyz = serve::HttpRequestOnce("127.0.0.1", port, "GET", "/readyz", "");
  ASSERT_TRUE(readyz.ok());
  EXPECT_EQ(readyz.value().status, 200);

  // Concurrent chaos: one thread streams ingest posts, the main thread
  // queries throughout; every response must be well-formed.
  constexpr int kPosts = 30;
  std::atomic<int> ingest_ok{0};
  std::thread ingester([&] {
    for (int i = 0; i < kPosts; ++i) {
      std::string body =
          R"({"records":[{"label":"live-)" + std::to_string(i % 5) +
          R"(","t":)" + std::to_string(1000000 + i * 60) +
          R"(,"x":)" + std::to_string(100.0 + i) + R"(,"y":-42.5}]})";
      auto r = serve::HttpRequestOnce("127.0.0.1", port, "POST",
                                      "/v1/ingest", body);
      if (r.ok() && r.value().status == 200) ingest_ok.fetch_add(1);
    }
  });
  int query_ok = 0;
  for (int i = 0; i < 15; ++i) {
    std::string body =
        "{\"query\":\"" + std::string(pair.p[i % pair.p.size()].label()) +
        "\"}";
    auto r =
        serve::HttpRequestOnce("127.0.0.1", port, "POST", "/v1/query", body);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().status, 200) << r.value().body;
    auto parsed = io::ParseJson(r.value().body);
    EXPECT_TRUE(parsed.ok()) << r.value().body;
    if (r.value().status == 200 && parsed.ok()) ++query_ok;
  }
  ingester.join();
  EXPECT_EQ(ingest_ok.load(), kPosts);
  EXPECT_EQ(query_ok, 15);

  // Live-ingested labels are query-visible immediately (no flush, no
  // restart): /v1/rank on the memtable-resident label returns 200 —
  // an unknown label would be 404 — even though the far-away candidate
  // is filtered out of the match list.
  auto rank = serve::HttpRequestOnce(
      "127.0.0.1", port, "POST", "/v1/rank",
      "{\"query\":\"" + std::string(pair.p[0].label()) +
          R"(","candidates":["live-0"]})");
  ASSERT_TRUE(rank.ok());
  EXPECT_EQ(rank.value().status, 200) << rank.value().body;
  auto rank_unknown = serve::HttpRequestOnce(
      "127.0.0.1", port, "POST", "/v1/rank",
      "{\"query\":\"" + std::string(pair.p[0].label()) +
          R"(","candidates":["never-ingested"]})");
  ASSERT_TRUE(rank_unknown.ok());
  EXPECT_EQ(rank_unknown.value().status, 404) << rank_unknown.value().body;

  // Healthz exposes the store block with the post-ingest totals.
  healthz = serve::HttpRequestOnce("127.0.0.1", port, "GET", "/healthz", "");
  ASSERT_TRUE(healthz.ok());
  auto h = io::ParseJson(healthz.value().body);
  ASSERT_TRUE(h.ok()) << healthz.value().body;
  const io::JsonValue* st = h.value().Find("store");
  ASSERT_NE(st, nullptr) << healthz.value().body;
  EXPECT_EQ(static_cast<size_t>(st->Find("total_records")->AsDouble()),
            seeded + kPosts);

  // Graceful drain, then reopen the directory: every acked ingest
  // survives the restart via WAL replay.
  server.Shutdown();
  server.Wait();
  s.reset();
  store::RecoveryInfo info;
  auto reopened = store::Store::Open(dir, so, &info);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->total_records(), seeded + kPosts);
  EXPECT_EQ(reopened.value()->Snapshot()->Find("live-0") !=
                store::StoreSnapshot::npos,
            true);
}

}  // namespace
}  // namespace ftl
