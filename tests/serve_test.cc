// `ftl serve` daemon coverage: HTTP framing, the status-mapping
// contract, byte-identity between the serve path and direct engine
// calls, admission control under a full queue, per-request deadlines
// (408 + prefix-consistent partial), and graceful drain on Shutdown(),
// /admin/shutdown, and SIGTERM.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "io/json_parse.h"
#include "io/report_json.h"
#include "serve/http.h"
#include "sim/population_sim.h"
#include "store/store.h"
#include "util/failpoint.h"

namespace ftl {
namespace {

using core::EngineOptions;
using core::FtlEngine;
using core::Matcher;
using serve::FtlServer;
using serve::HttpRequestOnce;
using serve::HttpResponse;
using serve::ServeOptions;

// ------------------------------------------------------ status mapping

TEST(HttpStatusForStatusTest, CoversTheSharedTable) {
  EXPECT_EQ(serve::HttpStatusForStatus(Status::OK()), 200);
  EXPECT_EQ(serve::HttpStatusForStatus(Status::InvalidArgument("x")), 400);
  EXPECT_EQ(serve::HttpStatusForStatus(Status::NotFound("x")), 404);
  EXPECT_EQ(serve::HttpStatusForStatus(Status::DeadlineExceeded("x")), 408);
  EXPECT_EQ(serve::HttpStatusForStatus(Status::Cancelled("x")), 499);
  EXPECT_EQ(serve::HttpStatusForStatus(Status::FailedPrecondition("x")), 503);
  EXPECT_EQ(serve::HttpStatusForStatus(Status::OutOfRange("x")), 503);
  EXPECT_EQ(serve::HttpStatusForStatus(Status::IOError("x")), 500);
  EXPECT_EQ(serve::HttpStatusForStatus(Status::Internal("x")), 500);
}

TEST(HttpFramingTest, SerializeResponseFramesContentLength) {
  HttpResponse resp;
  resp.status = 503;
  resp.extra_headers.emplace_back("Retry-After", "1");
  resp.body = "{}";
  std::string wire = serve::SerializeResponse(resp);
  EXPECT_NE(wire.find("HTTP/1.1 503 Service Unavailable\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 2), "{}");
}

// --------------------------------------------------------- the daemon

EngineOptions ServeEngineOptions() {
  EngineOptions o;
  o.training.horizon_units = 20;
  o.training.acceptance_pairs_per_db = 100;
  o.alpha = {0.01, 0.2};
  o.naive_bayes.phi_r = 0.05;
  o.num_threads = 1;  // request-level parallelism only
  return o;
}

// One trained engine + population for the whole suite (training per
// test would dominate runtime).
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::PopulationOptions po;
    po.num_persons = 20;
    po.duration_days = 3;
    po.cdr_accesses_per_day = 15.0;
    po.transit_accesses_per_day = 15.0;
    po.seed = 23;
    data_ = new sim::PopulationData(sim::SimulatePopulation(po));
    engine_ = new FtlEngine(ServeEngineOptions());
    ASSERT_TRUE(engine_->Train(data_->cdr_db, data_->transit_db).ok());
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete data_;
    engine_ = nullptr;
    data_ = nullptr;
  }
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }

  // Starts a daemon on an ephemeral port.
  ServeOptions EphemeralOptions() {
    ServeOptions so;
    so.port = 0;
    so.num_threads = 4;
    return so;
  }

  static sim::PopulationData* data_;
  static FtlEngine* engine_;
};

sim::PopulationData* ServeTest::data_ = nullptr;
FtlEngine* ServeTest::engine_ = nullptr;

TEST_F(ServeTest, StartRejectsBadConfig) {
  ServeOptions so = EphemeralOptions();
  so.max_queue = 0;
  FtlServer bad_queue(so, engine_, &data_->cdr_db, &data_->transit_db);
  EXPECT_EQ(bad_queue.Start().code(), StatusCode::kInvalidArgument);

  FtlEngine untrained(ServeEngineOptions());
  FtlServer bad_engine(EphemeralOptions(), &untrained, &data_->cdr_db,
                       &data_->transit_db);
  EXPECT_EQ(bad_engine.Start().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServeTest, HealthzReportsReadiness) {
  FtlServer server(EphemeralOptions(), engine_, &data_->cdr_db,
                   &data_->transit_db);
  ASSERT_TRUE(server.Start().ok());
  auto r = HttpRequestOnce("127.0.0.1", server.port(), "GET", "/healthz", "");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().status, 200);
  auto parsed = io::ParseJson(r.value().body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const io::JsonValue& h = parsed.value();
  EXPECT_EQ(h.Find("status")->AsString(), "ok");
  EXPECT_EQ(h.Find("p_trajectories")->AsDouble(), data_->cdr_db.size());
  EXPECT_EQ(h.Find("q_trajectories")->AsDouble(), data_->transit_db.size());
  server.Shutdown();
  server.Wait();
}

TEST_F(ServeTest, BadRequestsMapToTheContract) {
  FtlServer server(EphemeralOptions(), engine_, &data_->cdr_db,
                   &data_->transit_db);
  ASSERT_TRUE(server.Start().ok());
  int port = server.port();

  // Unknown path → 404 with a JSON error envelope.
  auto not_found = HttpRequestOnce("127.0.0.1", port, "GET", "/nope", "");
  ASSERT_TRUE(not_found.ok());
  EXPECT_EQ(not_found.value().status, 404);
  EXPECT_NE(not_found.value().body.find("\"NotFound\""), std::string::npos);

  // Wrong method → 405 with Allow.
  auto bad_method = HttpRequestOnce("127.0.0.1", port, "GET", "/v1/query", "");
  ASSERT_TRUE(bad_method.ok());
  EXPECT_EQ(bad_method.value().status, 405);

  // Malformed JSON body → 400.
  auto bad_json =
      HttpRequestOnce("127.0.0.1", port, "POST", "/v1/query", "{nope");
  ASSERT_TRUE(bad_json.ok());
  EXPECT_EQ(bad_json.value().status, 400);

  // Valid JSON, missing required field → 400.
  auto no_field =
      HttpRequestOnce("127.0.0.1", port, "POST", "/v1/query", "{}");
  ASSERT_TRUE(no_field.ok());
  EXPECT_EQ(no_field.value().status, 400);

  // Unknown query label → 404.
  auto no_label = HttpRequestOnce("127.0.0.1", port, "POST", "/v1/query",
                                  "{\"query\":\"no-such-label\"}");
  ASSERT_TRUE(no_label.ok());
  EXPECT_EQ(no_label.value().status, 404);

  server.Shutdown();
  server.Wait();
}

TEST_F(ServeTest, OversizedBodyReturns413) {
  ServeOptions so = EphemeralOptions();
  so.max_body_bytes = 64;
  FtlServer server(so, engine_, &data_->cdr_db, &data_->transit_db);
  ASSERT_TRUE(server.Start().ok());
  std::string big = "{\"query\":\"" + std::string(200, 'x') + "\"}";
  auto r = HttpRequestOnce("127.0.0.1", server.port(), "POST", "/v1/query",
                           big);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().status, 413);
  server.Shutdown();
  server.Wait();
}

// The core contract: N concurrent clients each get a response that is
// byte-identical to calling FtlEngine directly and serializing with
// the same writer — the serve layer adds no numeric or ordering drift.
TEST_F(ServeTest, ConcurrentClientsGetByteIdenticalResults) {
  FtlServer server(EphemeralOptions(), engine_, &data_->cdr_db,
                   &data_->transit_db);
  ASSERT_TRUE(server.Start().ok());
  int port = server.port();

  constexpr size_t kClients = 8;
  std::vector<std::string> got(kClients), want(kClients);
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (size_t i = 0; i < kClients; ++i) {
    const std::string label = data_->cdr_db[i].label();
    auto direct = engine_->Query(data_->cdr_db[i], data_->transit_db,
                                 Matcher::kNaiveBayes);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    want[i] = io::QueryResultToJson(label, direct.value());
    clients.emplace_back([&, i, label] {
      auto r = HttpRequestOnce("127.0.0.1", port, "POST", "/v1/query",
                               "{\"query\":\"" + label + "\"}");
      if (!r.ok() || r.value().status != 200) {
        failures.fetch_add(1);
        return;
      }
      got[i] = r.value().body;
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (size_t i = 0; i < kClients; ++i) {
    EXPECT_EQ(got[i], want[i]) << "client " << i << " diverged";
  }
  server.Shutdown();
  server.Wait();
}

TEST_F(ServeTest, BlockedQueriesByteIdenticalInGuaranteedMode) {
  // Engine mode with --blocking guaranteed: the server builds the
  // index over Q at Start() and every /v1/query response must stay
  // byte-identical to direct exhaustive engine calls.
  ServeOptions so = EphemeralOptions();
  so.blocking_mode = core::BlockingMode::kGuaranteed;
  FtlServer server(so, engine_, &data_->cdr_db, &data_->transit_db);
  ASSERT_TRUE(server.Start().ok());
  int port = server.port();
  for (size_t i = 0; i < 6; ++i) {
    const std::string label = data_->cdr_db[i].label();
    auto direct = engine_->Query(data_->cdr_db[i], data_->transit_db,
                                 Matcher::kNaiveBayes);
    ASSERT_TRUE(direct.ok());
    auto r = HttpRequestOnce("127.0.0.1", port, "POST", "/v1/query",
                             "{\"query\":\"" + label + "\"}");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r.value().status, 200);
    EXPECT_EQ(r.value().body, io::QueryResultToJson(label, direct.value()))
        << "query " << label;
  }
  server.Shutdown();
  server.Wait();
}

TEST_F(ServeTest, StartRejectsInvalidBlockingOptions) {
  ServeOptions so = EphemeralOptions();
  so.blocking_mode = core::BlockingMode::kAggressive;
  so.blocking.cell_size_meters = -1.0;
  FtlServer server(so, engine_, &data_->cdr_db, &data_->transit_db);
  EXPECT_EQ(server.Start().code(), StatusCode::kInvalidArgument);
}

TEST_F(ServeTest, RankMatchesQueryWithCandidates) {
  FtlServer server(EphemeralOptions(), engine_, &data_->cdr_db,
                   &data_->transit_db);
  ASSERT_TRUE(server.Start().ok());

  const std::string query = data_->cdr_db[0].label();
  const std::string c0 = data_->transit_db[0].label();
  const std::string c3 = data_->transit_db[3].label();
  auto direct = engine_->QueryWithCandidates(
      data_->cdr_db[0], data_->transit_db, {0, 3}, Matcher::kNaiveBayes);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  auto r = HttpRequestOnce("127.0.0.1", server.port(), "POST", "/v1/rank",
                           "{\"query\":\"" + query + "\",\"candidates\":[\"" +
                               c0 + "\",\"" + c3 + "\"]}");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().status, 200);
  EXPECT_EQ(r.value().body, io::QueryResultToJson(query, direct.value()));

  // Unknown candidate label → 404.
  auto bad = HttpRequestOnce("127.0.0.1", server.port(), "POST", "/v1/rank",
                             "{\"query\":\"" + query +
                                 "\",\"candidates\":[\"no-such\"]}");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad.value().status, 404);

  server.Shutdown();
  server.Wait();
}

// Admission control: one worker, a queue of one, and slow queries. A
// burst of clients must see a mix of 200s and fast 503s — and every
// client must get SOME answer (no deadlock, no hung connection).
TEST_F(ServeTest, FullQueueRejectsWith503WithoutDeadlock) {
  ServeOptions so = EphemeralOptions();
  so.num_threads = 1;
  so.max_queue = 1;
  FtlServer server(so, engine_, &data_->cdr_db, &data_->transit_db);
  ASSERT_TRUE(server.Start().ok());
  int port = server.port();

  // ~5 ms per candidate x 20 candidates ≈ 100 ms per query: long
  // enough that a burst of 8 overflows worker+queue capacity.
  failpoint::Arm("core.query.candidate", {failpoint::Action::kDelay, 5});
  const std::string label = data_->cdr_db[0].label();

  constexpr size_t kClients = 8;
  std::vector<int> statuses(kClients, -1);
  std::vector<bool> saw_retry_after(kClients, false);
  std::vector<std::thread> clients;
  for (size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      auto r = HttpRequestOnce("127.0.0.1", port, "POST", "/v1/query",
                               "{\"query\":\"" + label + "\"}",
                               /*timeout_ms=*/10000);
      if (!r.ok()) return;
      statuses[i] = r.value().status;
      for (const auto& [name, value] : r.value().extra_headers) {
        if (name == "retry-after" && value == "1") saw_retry_after[i] = true;
      }
    });
  }
  for (auto& t : clients) t.join();
  failpoint::DisarmAll();

  size_t ok = 0, rejected = 0;
  for (size_t i = 0; i < kClients; ++i) {
    ASSERT_NE(statuses[i], -1) << "client " << i << " got no response";
    if (statuses[i] == 200) ++ok;
    if (statuses[i] == 503) {
      ++rejected;
      EXPECT_TRUE(saw_retry_after[i])
          << "503 without Retry-After (client " << i << ")";
    }
  }
  EXPECT_EQ(ok + rejected, kClients);
  EXPECT_GE(ok, 1u) << "admission control rejected everything";
  EXPECT_GE(rejected, 1u) << "burst of 8 never overflowed queue of 1";

  // The daemon must still be healthy after the burst.
  auto h = HttpRequestOnce("127.0.0.1", port, "GET", "/healthz", "");
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  EXPECT_EQ(h.value().status, 200);

  server.Shutdown();
  server.Wait();
}

// Deadline handling: an expired request answers 408, and the partial
// result it carries is the full run truncated to the evaluated prefix
// (same contract as the engine-level deadline tests).
TEST_F(ServeTest, DeadlineExceededReturns408WithPrefixPartial) {
  FtlServer server(EphemeralOptions(), engine_, &data_->cdr_db,
                   &data_->transit_db);
  ASSERT_TRUE(server.Start().ok());

  const std::string label = data_->cdr_db[0].label();
  auto full = engine_->Query(data_->cdr_db[0], data_->transit_db,
                             Matcher::kNaiveBayes);
  ASSERT_TRUE(full.ok()) << full.status().ToString();

  failpoint::Arm("core.query.candidate", {failpoint::Action::kDelay, 5});
  auto r = HttpRequestOnce("127.0.0.1", server.port(), "POST", "/v1/query",
                           "{\"query\":\"" + label + "\",\"deadline_ms\":20}");
  failpoint::DisarmAll();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().status, 408);

  auto parsed = io::ParseJson(r.value().body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const io::JsonValue& body = parsed.value();
  EXPECT_TRUE(body.Find("truncated")->AsBool());
  auto evaluated = body.Find("evaluated")->AsInt64();
  ASSERT_TRUE(evaluated.ok());
  ASSERT_LT(static_cast<size_t>(evaluated.value()),
            data_->transit_db.size());

  // Prefix consistency: every returned candidate appears in the full
  // run with the same label at the same index, and candidates are
  // exactly the full run filtered to index < evaluated.
  std::vector<std::string> want;
  for (const auto& c : full.value().candidates) {
    if (c.index < static_cast<size_t>(evaluated.value())) {
      want.push_back(c.label);
    }
  }
  std::vector<std::string> got;
  for (const auto& c : body.Find("candidates")->items()) {
    got.push_back(c.Find("label")->AsString());
  }
  EXPECT_EQ(got, want);

  server.Shutdown();
  server.Wait();
}

// A server-wide default deadline applies when the request names none.
TEST_F(ServeTest, ServerDefaultDeadlineApplies) {
  ServeOptions so = EphemeralOptions();
  so.request_deadline_ms = 20;
  FtlServer server(so, engine_, &data_->cdr_db, &data_->transit_db);
  ASSERT_TRUE(server.Start().ok());

  failpoint::Arm("core.query.candidate", {failpoint::Action::kDelay, 5});
  auto r = HttpRequestOnce("127.0.0.1", server.port(), "POST", "/v1/query",
                           "{\"query\":\"" + data_->cdr_db[0].label() + "\"}");
  failpoint::DisarmAll();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().status, 408);

  server.Shutdown();
  server.Wait();
}

TEST_F(ServeTest, MetricsEndpointExposesServeCounters) {
  FtlServer server(EphemeralOptions(), engine_, &data_->cdr_db,
                   &data_->transit_db);
  ASSERT_TRUE(server.Start().ok());
  int port = server.port();

  auto q = HttpRequestOnce("127.0.0.1", port, "POST", "/v1/query",
                           "{\"query\":\"" + data_->cdr_db[0].label() + "\"}");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q.value().status, 200);

  auto m = HttpRequestOnce("127.0.0.1", port, "GET", "/metrics", "");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m.value().status, 200);
  EXPECT_NE(m.value().content_type.find("text/plain"), std::string::npos);
  const std::string& text = m.value().body;
  EXPECT_NE(
      text.find(
          "ftl_serve_requests_total{endpoint=\"/v1/query\",code=\"200\"}"),
      std::string::npos);
  EXPECT_NE(text.find("ftl_serve_connections_total"), std::string::npos);
  EXPECT_NE(text.find("ftl_serve_queue_depth"), std::string::npos);
  EXPECT_NE(text.find("ftl_serve_request_latency_us"), std::string::npos);

  server.Shutdown();
  server.Wait();
}

TEST_F(ServeTest, AdminShutdownDrains) {
  FtlServer server(EphemeralOptions(), engine_, &data_->cdr_db,
                   &data_->transit_db);
  ASSERT_TRUE(server.Start().ok());
  int port = server.port();

  auto r = HttpRequestOnce("127.0.0.1", port, "POST", "/admin/shutdown", "");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().status, 200);
  EXPECT_NE(r.value().body.find("\"draining\""), std::string::npos);
  server.Wait();
  EXPECT_TRUE(server.draining());

  // New connections are refused after the drain completes.
  auto after = HttpRequestOnce("127.0.0.1", port, "GET", "/healthz", "",
                               /*timeout_ms=*/500);
  EXPECT_FALSE(after.ok());
}

// Graceful drain: Shutdown() while a slow request is in flight must
// let it finish with a 200, not kill it.
TEST_F(ServeTest, ShutdownDrainsInFlightRequests) {
  ServeOptions so = EphemeralOptions();
  so.num_threads = 2;
  FtlServer server(so, engine_, &data_->cdr_db, &data_->transit_db);
  ASSERT_TRUE(server.Start().ok());
  int port = server.port();

  failpoint::Arm("core.query.candidate", {failpoint::Action::kDelay, 5});
  std::atomic<int> status{-1};
  std::thread client([&] {
    auto r = HttpRequestOnce("127.0.0.1", port, "POST", "/v1/query",
                             "{\"query\":\"" + data_->cdr_db[0].label() +
                                 "\"}",
                             /*timeout_ms=*/10000);
    if (r.ok()) status.store(r.value().status);
  });
  // Let the request get in flight, then start the drain under it.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.Shutdown();
  server.Wait();
  client.join();
  failpoint::DisarmAll();

  EXPECT_EQ(status.load(), 200) << "in-flight request was not drained";
  EXPECT_GE(server.requests_handled(), 1);
}

// SIGTERM → stop_flag → drain, end to end through the real handler.
TEST_F(ServeTest, SigtermTriggersGracefulDrain) {
  static std::atomic<int> stop_flag{0};
  stop_flag.store(0);
  serve::InstallShutdownSignalHandlers(&stop_flag);

  ServeOptions so = EphemeralOptions();
  so.stop_flag = &stop_flag;
  so.poll_interval_ms = 10;
  FtlServer server(so, engine_, &data_->cdr_db, &data_->transit_db);
  ASSERT_TRUE(server.Start().ok());
  int port = server.port();

  auto before = HttpRequestOnce("127.0.0.1", port, "GET", "/healthz", "");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().status, 200);

  ASSERT_EQ(::raise(SIGTERM), 0);
  EXPECT_EQ(stop_flag.load(), 1) << "signal handler did not set the flag";
  server.Wait();
  EXPECT_TRUE(server.draining());

  // Restore default disposition so a stray later SIGTERM isn't eaten.
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
}

// Store mode with --query-threads > 1: the per-request parallel segment
// walk must keep every response byte-identical to a direct engine query
// over the materialized merged database.
TEST_F(ServeTest, StoreQueryThreadsByteIdentical) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("ftl_serve_qthreads." +
                      std::to_string(static_cast<long long>(::getpid()))))
                        .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  store::StoreOptions sto;
  sto.wal_sync = store::WalSync::kNever;
  sto.flush_threshold_records = 60;
  std::unique_ptr<store::Store> store = store::Store::Create(dir, sto);

  ServeOptions so = EphemeralOptions();
  so.num_threads = 2;
  so.store_query_threads = 3;
  so.start_ready = false;
  FtlEngine engine(ServeEngineOptions());
  FtlServer server(so, &engine, &data_->cdr_db, store.get());
  ASSERT_TRUE(server.Start().ok());
  int port = server.port();

  ASSERT_TRUE(store->Recover().ok());
  // Seed Q in per-trajectory halves so labels span segment boundaries.
  for (int round = 0; round < 2; ++round) {
    for (const traj::Trajectory& t : data_->transit_db) {
      store::IngestBatch b;
      size_t half = t.size() / 2;
      for (size_t i = round == 0 ? 0 : half;
           i < (round == 0 ? half : t.size()); ++i) {
        const traj::Record& r = t.records()[i];
        b.rows.push_back(store::IngestRow{t.label(), t.owner(), r.t,
                                          r.location.x, r.location.y});
      }
      if (!b.rows.empty()) ASSERT_TRUE(store->Append(b).ok());
    }
  }
  ASSERT_GE(store->num_segments(), 2u);
  traj::TrajectoryDatabase merged = store->MaterializeAll("store");
  ASSERT_TRUE(engine.Train(data_->cdr_db, merged).ok());
  server.MarkReady();

  for (size_t i = 0; i < 6 && i < data_->cdr_db.size(); ++i) {
    const std::string label = data_->cdr_db[i].label();
    auto direct = engine.Query(data_->cdr_db[i], merged,
                               Matcher::kNaiveBayes);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    auto r = HttpRequestOnce("127.0.0.1", port, "POST", "/v1/query",
                             "{\"query\":\"" + label + "\"}");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r.value().status, 200) << r.value().body;
    EXPECT_EQ(r.value().body, io::QueryResultToJson(label, direct.value()))
        << "query " << label;
  }

  server.Shutdown();
  server.Wait();
  store.reset();
  std::filesystem::remove_all(dir);
}

TEST_F(ServeTest, StartRejectsZeroStoreQueryThreads) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("ftl_serve_qthreads0." +
                      std::to_string(static_cast<long long>(::getpid()))))
                        .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::unique_ptr<store::Store> store =
      store::Store::Create(dir, store::StoreOptions{});
  ServeOptions so = EphemeralOptions();
  so.store_query_threads = 0;
  so.start_ready = false;
  FtlEngine engine(ServeEngineOptions());
  FtlServer server(so, &engine, &data_->cdr_db, store.get());
  EXPECT_EQ(server.Start().code(), StatusCode::kInvalidArgument);
  store.reset();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ftl
