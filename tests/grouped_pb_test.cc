#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/alpha_filter.h"
#include "core/evidence.h"
#include "core/model_builders.h"
#include "stats/grouped_poisson_binomial.h"
#include "stats/poisson_binomial.h"
#include "util/rng.h"

namespace ftl::stats {
namespace {

// Expands trial groups into the flat per-trial probability vector the
// O(n^2) DP consumes.
std::vector<double> Expand(const std::vector<TrialGroup>& groups) {
  std::vector<double> probs;
  for (const TrialGroup& g : groups) {
    for (int64_t i = 0; i < g.count; ++i) probs.push_back(g.p);
  }
  return probs;
}

// ------------------------------------------------------ Binomial pmf

TEST(GroupedPbTest, BinomialPmfMatchesDp) {
  std::vector<double> pmf;
  for (double p : {0.0, 1e-8, 0.03, 0.5, 0.97, 1.0}) {
    for (int64_t n : {1, 2, 7, 40, 200}) {
      BinomialPmf(n, p, &pmf);
      ASSERT_EQ(pmf.size(), static_cast<size_t>(n) + 1);
      auto dp = PoissonBinomialPmfDp(
          std::vector<double>(static_cast<size_t>(n), p));
      for (size_t k = 0; k < pmf.size(); ++k) {
        EXPECT_NEAR(pmf[k], dp[k], 1e-13) << "n=" << n << " p=" << p
                                          << " k=" << k;
      }
    }
  }
}

TEST(GroupedPbTest, BinomialPmfTinyPUnderflowRegime) {
  // n log1p(-p) far below the exp underflow threshold exercises the
  // mode-anchored fallback; the pmf must still normalize.
  std::vector<double> pmf;
  BinomialPmf(2000, 0.9, &pmf);
  double sum = 0;
  for (double x : pmf) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-10);
  EXPECT_NEAR(pmf[1800], PoissonBinomialPmfDp(
                             std::vector<double>(2000, 0.9))[1800],
              1e-13);
}

// ------------------------------------------- grouped pmf vs O(n^2) DP

TEST(GroupedPbTest, PmfMatchesDpOnRandomHistograms) {
  Rng rng(20160501);
  GroupedPbWorkspace ws;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<TrialGroup> groups;
    size_t num_groups = 1 + rng.Index(12);
    for (size_t g = 0; g < num_groups; ++g) {
      groups.push_back({rng.Uniform(0, 1), 1 + rng.UniformInt(0, 14)});
    }
    GroupedPoissonBinomialPmf(groups, &ws);
    auto dp = PoissonBinomialPmfDp(Expand(groups));
    ASSERT_EQ(ws.pmf.size(), dp.size()) << "trial " << trial;
    for (size_t k = 0; k < dp.size(); ++k) {
      EXPECT_NEAR(ws.pmf[k], dp[k], 1e-12)
          << "trial " << trial << " k=" << k;
    }
  }
}

TEST(GroupedPbTest, PmfDegenerateGroups) {
  GroupedPbWorkspace ws;
  // p = 0 groups contribute nothing but trials.
  GroupedPoissonBinomialPmf({{0.0, 5}}, &ws);
  ASSERT_EQ(ws.pmf.size(), 6u);
  EXPECT_DOUBLE_EQ(ws.pmf[0], 1.0);
  // p = 1 groups are a deterministic shift.
  GroupedPoissonBinomialPmf({{1.0, 3}, {0.0, 2}}, &ws);
  ASSERT_EQ(ws.pmf.size(), 6u);
  EXPECT_DOUBLE_EQ(ws.pmf[3], 1.0);
  EXPECT_DOUBLE_EQ(ws.pmf[0], 0.0);
  // Empty group list: K = 0 surely.
  GroupedPoissonBinomialPmf({}, &ws);
  ASSERT_EQ(ws.pmf.size(), 1u);
  EXPECT_DOUBLE_EQ(ws.pmf[0], 1.0);
}

TEST(GroupedPbTest, PmfSingleBucketIsBinomial) {
  GroupedPbWorkspace ws;
  GroupedPoissonBinomialPmf({{0.3, 25}}, &ws);
  std::vector<double> expect;
  BinomialPmf(25, 0.3, &expect);
  ASSERT_EQ(ws.pmf.size(), expect.size());
  for (size_t k = 0; k < expect.size(); ++k) {
    EXPECT_NEAR(ws.pmf[k], expect[k], 1e-14);
  }
}

TEST(GroupedPbTest, PmfMixedDegenerateAndStochastic) {
  GroupedPbWorkspace ws;
  std::vector<TrialGroup> groups = {{1.0, 2}, {0.25, 4}, {0.0, 3}};
  GroupedPoissonBinomialPmf(groups, &ws);
  auto dp = PoissonBinomialPmfDp(Expand(groups));
  ASSERT_EQ(ws.pmf.size(), dp.size());
  for (size_t k = 0; k < dp.size(); ++k) {
    EXPECT_NEAR(ws.pmf[k], dp[k], 1e-13) << "k=" << k;
  }
}

// -------------------------------------------------- tails vs exact DP

TEST(GroupedPbTest, TailsMatchDpAtEveryK) {
  Rng rng(7);
  GroupedPbWorkspace ws;
  GroupedTailParams exact;
  exact.rna_min_trials = static_cast<size_t>(-1);  // never use the RNA
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<TrialGroup> groups;
    size_t num_groups = 1 + rng.Index(8);
    for (size_t g = 0; g < num_groups; ++g) {
      double p = rng.Bernoulli(0.2) ? (rng.Bernoulli(0.5) ? 0.0 : 1.0)
                                    : rng.Uniform(0, 1);
      groups.push_back({p, 1 + rng.UniformInt(0, 9)});
    }
    PoissonBinomial pb(Expand(groups));
    int64_t n = GroupedTrialCount(groups);
    for (int64_t k = -1; k <= n + 1; ++k) {
      GroupedTails t = GroupedPoissonBinomialTails(groups, k, exact, &ws);
      EXPECT_TRUE(t.exact);
      EXPECT_NEAR(t.upper, pb.UpperTailPValue(k), 1e-12)
          << "trial " << trial << " k=" << k;
      EXPECT_NEAR(t.lower, pb.LowerTailPValue(k), 1e-12)
          << "trial " << trial << " k=" << k;
    }
  }
}

TEST(GroupedPbTest, RnaEngagesOnLongAlignments) {
  GroupedPbWorkspace ws;
  GroupedTailParams params;
  params.rna_min_trials = 0;
  params.rna_max_abs_error = 1.0;  // always certified
  std::vector<TrialGroup> groups = {{0.1, 5000}, {0.4, 5000}};
  GroupedTails t =
      GroupedPoissonBinomialTails(groups, 2400, params, &ws);
  EXPECT_FALSE(t.exact);
  // The approximation must still be close to the exact tail: mean 2500,
  // k slightly below it, both tails are O(1).
  PoissonBinomial pb(Expand(groups));
  EXPECT_NEAR(t.upper, pb.UpperTailPValue(2400), 5e-3);
  EXPECT_NEAR(t.lower, pb.LowerTailPValue(2400), 5e-3);
}

TEST(GroupedPbTest, RnaGuardFallsBackToExactWhenUncertified) {
  GroupedPbWorkspace ws;
  GroupedTailParams params;
  params.rna_min_trials = 0;
  params.rna_max_abs_error = 0.0;  // Berry-Esseen can never certify
  std::vector<TrialGroup> groups = {{0.3, 50}};
  GroupedTails t = GroupedPoissonBinomialTails(groups, 20, params, &ws);
  EXPECT_TRUE(t.exact);
  PoissonBinomial pb(Expand(groups));
  EXPECT_NEAR(t.upper, pb.UpperTailPValue(20), 1e-12);
}

}  // namespace
}  // namespace ftl::stats

namespace ftl::core {
namespace {

traj::Record R(double x, double y, traj::Timestamp t) {
  return traj::Record{{x, y}, t};
}

// ----------------------------- bucket evidence vs per-segment evidence

TEST(BucketEvidenceTest, MatchesPerSegmentCollectionOnRandomPairs) {
  Rng rng(11);
  EvidenceOptions options;
  options.vmax_mps = 20.0;
  options.time_unit_seconds = 60;
  options.horizon_units = 12;
  BucketEvidence fast;
  BucketEvidence reference;
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<traj::Record> pr, qr;
    size_t np = rng.Index(30);
    size_t nq = rng.Index(30);
    int64_t tp = 0, tq = 0;
    for (size_t i = 0; i < np; ++i) {
      tp += rng.UniformInt(0, 400);
      pr.push_back(R(rng.Uniform(0, 5000), rng.Uniform(0, 5000), tp));
    }
    for (size_t i = 0; i < nq; ++i) {
      tq += rng.UniformInt(0, 400);
      qr.push_back(R(rng.Uniform(0, 5000), rng.Uniform(0, 5000), tq));
    }
    traj::Trajectory p("p", 0, std::move(pr));
    traj::Trajectory q("q", 1, std::move(qr));
    CollectEvidence(p, q, options, &fast);
    CompactEvidence(CollectEvidence(p, q, options),
                    static_cast<size_t>(options.horizon_units), &reference);
    EXPECT_EQ(fast.informative, reference.informative) << "trial " << trial;
    EXPECT_EQ(fast.k_observed, reference.k_observed) << "trial " << trial;
    EXPECT_EQ(fast.total_mutual, reference.total_mutual) << "trial " << trial;
    EXPECT_EQ(fast.beyond_horizon_incompatible,
              reference.beyond_horizon_incompatible)
        << "trial " << trial;
    ASSERT_EQ(fast.horizon_units(), reference.horizon_units());
    for (size_t u = 0; u < fast.horizon_units(); ++u) {
      EXPECT_EQ(fast.count[u], reference.count[u])
          << "trial " << trial << " unit " << u;
      EXPECT_EQ(fast.incompatible[u], reference.incompatible[u])
          << "trial " << trial << " unit " << u;
    }
  }
}

TEST(BucketEvidenceTest, GroupsUnderSkipsEmptyUnits) {
  BucketEvidence ev;
  ev.Reset(6);
  ev.count[1] = 4;
  ev.count[5] = 2;
  ev.informative = 6;
  CompatibilityModel model(60, {0.9, 0.8, 0.7, 0.6, 0.5, 0.4});
  std::vector<stats::TrialGroup> groups;
  ev.GroupsUnder(model, &groups);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_DOUBLE_EQ(groups[0].p, 0.8);
  EXPECT_EQ(groups[0].count, 4);
  EXPECT_DOUBLE_EQ(groups[1].p, 0.4);
  EXPECT_EQ(groups[1].count, 2);
}

// -------------------------------------- fast-reject decision identity

TEST(AlphaFilterFastRejectTest, DecisionsMatchExactPath) {
  // The Chernoff-KL bound may only fire when it proves p1 < alpha1, so
  // accept/reject decisions with fast_reject on and off must be
  // identical on any evidence.
  Rng rng(23);
  ModelPair models;
  models.rejection = CompatibilityModel(
      60, {0.02, 0.03, 0.05, 0.08, 0.10, 0.12, 0.15, 0.20});
  models.acceptance = CompatibilityModel(
      60, {0.60, 0.62, 0.65, 0.70, 0.72, 0.75, 0.80, 0.85});
  AlphaFilterParams fast_params;
  AlphaFilterParams exact_params;
  exact_params.fast_reject = false;
  AlphaFilter fast(models, fast_params);
  AlphaFilter exact(models, exact_params);
  stats::GroupedPbWorkspace ws;
  BucketEvidence ev;
  for (int trial = 0; trial < 200; ++trial) {
    ev.Reset(8);
    for (size_t u = 0; u < 8; ++u) {
      int32_t n = static_cast<int32_t>(rng.UniformInt(0, 15));
      ev.count[u] = n;
      ev.incompatible[u] =
          static_cast<int32_t>(rng.UniformInt(0, n));
      ev.informative += n;
      ev.k_observed += ev.incompatible[u];
    }
    AlphaFilterDecision a = fast.Classify(ev, &ws);
    AlphaFilterDecision b = exact.Classify(ev, &ws);
    EXPECT_EQ(a.survived_rejection, b.survived_rejection)
        << "trial " << trial << " k=" << ev.k_observed;
    EXPECT_EQ(a.accepted, b.accepted) << "trial " << trial;
    if (a.survived_rejection) {
      // Survivors take the exact path in both configurations.
      EXPECT_DOUBLE_EQ(a.p1, b.p1);
      EXPECT_DOUBLE_EQ(a.p2, b.p2);
    } else {
      // A fast-rejected candidate reports the bound, which upper-bounds
      // the exact p1.
      EXPECT_GE(a.p1 + 1e-15, b.p1) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace ftl::core
