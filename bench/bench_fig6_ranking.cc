// Reproduces Figure 6: ranking effectiveness. With intentionally loose
// acceptance settings ((a1,a2) = (0.001, 0.08), phi_r = 0.4) the
// algorithms return many candidates; ranking them by the Eq. 2 score
// v = p1 (1 - p2) should concentrate the true matches at the top:
// the number of queries whose true match appears within the top-k grows
// steeply for small k and flattens.
//
// Panels: (a) the SF configuration, (b) the TF configuration.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "ftl/ftl.h"

namespace {

using namespace ftl;

void RunPanel(const char* title, const std::string& config_name) {
  sim::DatasetConfig cfg = sim::FindConfig(config_name);
  sim::DatasetPair pair =
      sim::BuildDataset(cfg, bench::NumObjects(), bench::BenchSeed());

  core::EngineOptions eo;
  eo.training.vmax_mps = geo::KphToMps(120.0);
  eo.training.horizon_units = 60;
  eo.num_threads = 4;
  core::FtlEngine engine(eo);
  Status st = engine.Train(pair.p, pair.q);
  if (!st.ok()) {
    std::printf("%s: training failed: %s\n", config_name.c_str(),
                st.ToString().c_str());
    return;
  }

  eval::WorkloadOptions wo;
  // Paper uses 500 queries here.
  wo.num_queries = bench::PaperScale() ? 500 : 120;
  wo.seed = bench::BenchSeed() + 2;
  auto workload = eval::MakeWorkload(pair.p, pair.q, wo);
  auto scores = eval::ComputePairScores(engine, workload.queries, pair.q);

  std::printf("=== %s (%s, %zu queries) ===\n", title, config_name.c_str(),
              workload.queries.size());
  struct Curve {
    const char* name;
    eval::WorkloadMetrics metrics;
  };
  std::vector<Curve> curves = {
      {"alpha-filtering (0.001,0.08)",
       eval::MetricsForAlpha(scores, workload.owners, pair.q, 0.001, 0.08)},
      {"naive-bayes phi_r=0.4",
       eval::MetricsForPhi(scores, workload.owners, pair.q, 0.4)},
  };
  size_t max_k = 30;
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"k"});
  for (const auto& c : curves) rows[0].push_back(c.name);
  for (size_t k : {1u, 2u, 3u, 5u, 8u, 10u, 15u, 20u, 30u}) {
    std::vector<std::string> row = {std::to_string(k)};
    for (const auto& c : curves) {
      auto curve = eval::TopKCurve(c.metrics, max_k);
      row.push_back(std::to_string(curve[k - 1]));
    }
    rows.push_back(row);
  }
  std::printf("%s", RenderTable(rows).c_str());
  for (const auto& c : curves) {
    std::printf("  %-28s mean candidates %.1f, perceptiveness %.3f\n",
                c.name, c.metrics.mean_candidates,
                c.metrics.perceptiveness);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Figure 6 reproduction: candidate-ranking effectiveness\n\n");
  RunPanel("Figure 6(a): S-data", "SF");
  RunPanel("Figure 6(b): T-data", "TF");
  std::printf(
      "Shape checks vs paper Figure 6: the top-k hit counts grow\n"
      "quickly for small k and the growth rate slows as k rises —\n"
      "true matches concentrate among the highest-ranked candidates.\n");
  return 0;
}
