// Reproduces Table I: statistics of the 12 derived experiment datasets
// (SA-SF from the Singapore-taxi-style simulator, TA-TF from the
// T-Drive-style simulator).
//
// Columns mirror the paper: sampling rates, duration, mean/stdv of |P|,
// mean/stdv of consecutive-record time gaps (hours), and the same for Q.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "ftl/ftl.h"

int main() {
  using namespace ftl;
  size_t n = bench::NumObjects();
  std::printf("Table I reproduction: %zu objects per dataset "
              "(paper: ~15k taxis)\n\n",
              n);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"cfg", "rate_P", "rate_Q", "days", "mean|P|", "stdv|P|",
                  "gapP_h", "sd_gapP", "mean|Q|", "stdv|Q|", "gapQ_h",
                  "sd_gapQ"});
  auto add_family = [&rows, n](const std::vector<sim::DatasetConfig>& cfgs) {
    for (const auto& cfg : cfgs) {
      sim::DatasetPair pair = sim::BuildDataset(cfg, n, bench::BenchSeed());
      auto sp = traj::Summarize(pair.p);
      auto sq = traj::Summarize(pair.q);
      rows.push_back({cfg.name, FormatDouble(cfg.rate_p, 3),
                      FormatDouble(cfg.rate_q, 3),
                      std::to_string(cfg.duration_days),
                      FormatDouble(sp.mean_size, 2),
                      FormatDouble(sp.stdv_size, 2),
                      FormatDouble(sp.mean_gap_hours, 2),
                      FormatDouble(sp.stdv_gap_hours, 2),
                      FormatDouble(sq.mean_size, 2),
                      FormatDouble(sq.stdv_size, 2),
                      FormatDouble(sq.mean_gap_hours, 2),
                      FormatDouble(sq.stdv_gap_hours, 2)});
    }
  };
  add_family(sim::SingaporeConfigs());
  add_family(sim::TDriveConfigs());
  std::printf("%s\n", RenderTable(rows).c_str());

  std::printf(
      "Shape checks vs paper Table I:\n"
      "  * |P| grows with sampling rate (SA < SB < SC) and duration\n"
      "    (SD < SE < SF); mean gap shrinks as rate rises.\n"
      "  * T-configs have symmetric P/Q stats (same split stream).\n");
  return 0;
}
