// SIMD kernel benchmark: scalar reference vs the vectorized kernel
// tables, at two granularities, on the same SC config BENCH_ftb uses.
//
//   * engine: soa_serial   — FtlEngine::Query over SoA columns, kernel
//                            dispatch pinned to scalar (the oracle).
//   * engine: simd         — the same queries under the best ISA level
//                            this binary + CPU support.
//   * kernel: evidence     — evidence_histogram alone on the workload's
//                            (query, candidate) column shapes.
//   * kernel: convolve / bernoulli — the truncated Poisson-Binomial
//                            prefix-build kernels on synthetic inputs.
//
// Every SIMD row is validated against the scalar oracle before it is
// timed (accept sets, p-values and histograms must match bit for bit),
// so a speedup can never come from computing something else. The
// engine-level speedup is reported against a stated 2.0x target; the
// kernel rows attribute where vector time actually goes. Emits
// BENCH_simd.json (path overridable via argv[1]).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ftl/ftl.h"
#include "simd/dispatch.h"
#include "util/stopwatch.h"

namespace {

using namespace ftl;

bool SameBits(double a, double b) {
  uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

constexpr int kReps = 5;
constexpr double kSpeedupTarget = 2.0;

struct EngineRow {
  std::string name;
  std::string isa;
  int64_t pairs = 0;
  double seconds = 0.0;
  double pairs_per_sec = 0.0;
  size_t accepted = 0;
};

struct KernelRow {
  std::string name;  // e.g. "evidence", "convolve_prefix_512_4"
  std::string isa;
  double ns_per_op = 0.0;
  double speedup_vs_scalar = 1.0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_simd.json";
  const std::string config = "SC";
  const size_t num_objects = bench::PaperScale() ? 1000 : 200;
  const size_t num_queries = bench::PaperScale() ? 64 : 24;

  const simd::IsaLevel best_level = simd::BestSupportedLevel();
  const std::string best_isa = simd::IsaLevelName(best_level);
  std::vector<simd::IsaLevel> levels;  // non-scalar levels present
  for (simd::IsaLevel l : {simd::IsaLevel::kSimd128, simd::IsaLevel::kAvx2}) {
    if (simd::KernelsFor(l) != nullptr) levels.push_back(l);
  }
  std::printf("config=%s objects=%zu best_isa=%s\n", config.c_str(),
              num_objects, best_isa.c_str());

  // ------------------------------------------------------------ setup
  sim::DatasetPair pair = sim::BuildDataset(sim::FindConfig(config),
                                            num_objects, bench::BenchSeed());
  traj::FlatDatabase soa_db = traj::FlatDatabase::FromDatabase(pair.q);

  core::EngineOptions eo;
  eo.training.vmax_mps = geo::KphToMps(120.0);
  eo.training.horizon_units = 60;
  eo.alpha.alpha1 = 0.01;
  eo.alpha.alpha2 = 0.1;
  core::FtlEngine engine(eo);
  if (!engine.Train(pair.p, pair.q).ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }
  eval::WorkloadOptions wo;
  wo.num_queries = num_queries;
  wo.seed = bench::BenchSeed() + 7;
  eval::Workload workload = eval::MakeWorkload(pair.p, pair.q, wo);
  traj::TrajectoryDatabase query_db("queries");
  for (size_t i = 0; i < workload.queries.size(); ++i) {
    const auto& q = workload.queries[i];
    if (!query_db
             .Add(traj::Trajectory("query-" + std::to_string(i), q.owner(),
                                   q.records()))
             .ok()) {
      std::fprintf(stderr, "query db build failed\n");
      return 1;
    }
  }
  traj::FlatDatabase flat_queries = traj::FlatDatabase::FromDatabase(query_db);

  // ----------------------------------------------------- oracle parity
  // Accept sets and every p-value must match the scalar kernels bit
  // for bit at every compiled-in ISA level before anything is timed.
  size_t mismatches = 0;
  {
    std::vector<core::QueryResult> oracle;
    simd::SetDispatchForTest(simd::IsaLevel::kScalar);
    for (size_t i = 0; i < flat_queries.size(); ++i) {
      auto r = engine.Query(flat_queries[i], soa_db,
                            core::Matcher::kAlphaFilter);
      if (!r.ok()) return 1;
      oracle.push_back(std::move(r).value());
    }
    for (simd::IsaLevel level : levels) {
      simd::SetDispatchForTest(level);
      for (size_t i = 0; i < flat_queries.size(); ++i) {
        auto r = engine.Query(flat_queries[i], soa_db,
                              core::Matcher::kAlphaFilter);
        if (!r.ok()) return 1;
        const auto& a = oracle[i].candidates;
        const auto& b = r.value().candidates;
        if (a.size() != b.size()) {
          ++mismatches;
          continue;
        }
        for (size_t j = 0; j < a.size(); ++j) {
          if (a[j].index != b[j].index || !SameBits(a[j].p1, b[j].p1) ||
              !SameBits(a[j].p2, b[j].p2) ||
              !SameBits(a[j].score, b[j].score)) {
            ++mismatches;
            break;
          }
        }
      }
    }
  }
  const bool identical = mismatches == 0;
  std::printf("oracle parity: %s (%zu mismatching query results)\n\n",
              identical ? "OK" : "FAIL", mismatches);

  // ------------------------------------------------- engine throughput
  std::vector<EngineRow> engine_rows;
  auto run_engine = [&](const std::string& name, simd::IsaLevel level) {
    const simd::Kernels& active = simd::SetDispatchForTest(level);
    EngineRow best;
    for (int rep = 0; rep < kReps; ++rep) {
      EngineRow m;
      m.name = name;
      Stopwatch sw;
      for (size_t i = 0; i < flat_queries.size(); ++i) {
        auto r = engine.Query(flat_queries[i], soa_db,
                              core::Matcher::kAlphaFilter);
        if (!r.ok()) std::exit(1);
        m.accepted += r.value().candidates.size();
        m.pairs += static_cast<int64_t>(soa_db.size());
      }
      m.seconds = sw.ElapsedSeconds();
      m.pairs_per_sec = static_cast<double>(m.pairs) / m.seconds;
      if (rep == 0 || m.seconds < best.seconds) best = m;
    }
    best.isa = simd::IsaLevelName(active.level);
    std::printf("%-12s [%-6s] %10.0f pairs/s  accepted=%zu\n",
                best.name.c_str(), best.isa.c_str(), best.pairs_per_sec,
                best.accepted);
    engine_rows.push_back(best);
  };
  run_engine("soa_serial", simd::IsaLevel::kScalar);
  run_engine("simd", best_level);
  const double engine_speedup =
      engine_rows[1].pairs_per_sec / engine_rows[0].pairs_per_sec;
  std::printf("\nsimd (%s) vs soa_serial: %.3fx (target %.1fx)\n\n",
              engine_rows[1].isa.c_str(), engine_speedup, kSpeedupTarget);

  // --------------------------------------------------- kernel micros
  std::vector<KernelRow> kernel_rows;
  auto time_ns = [&](auto&& fn, int64_t ops) {
    double best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      Stopwatch sw;
      fn();
      double s = sw.ElapsedSeconds();
      if (rep == 0 || s < best) best = s;
    }
    return best * 1e9 / static_cast<double>(ops);
  };
  auto push_kernel = [&](const std::string& name, simd::IsaLevel level,
                         double ns, double scalar_ns) {
    KernelRow r;
    r.name = name;
    r.isa = simd::IsaLevelName(level);
    r.ns_per_op = ns;
    r.speedup_vs_scalar = scalar_ns / ns;
    std::printf("%-24s [%-6s] %9.1f ns/op  %5.2fx\n", r.name.c_str(),
                r.isa.c_str(), r.ns_per_op, r.speedup_vs_scalar);
    kernel_rows.push_back(r);
  };

  // evidence_histogram over the workload's first query against every
  // candidate: the alignment-merge + bucketing hot loop in isolation.
  {
    simd::EvidenceParams params;
    params.time_unit_seconds = eo.training.time_unit_seconds;
    params.horizon_units = eo.training.horizon_units;
    params.vmax_mps = eo.training.vmax_mps;
    const size_t slots = static_cast<size_t>(params.horizon_units) + 1;
    std::vector<int32_t> cnt(slots), inc(slots);
    simd::EvidenceScratch scratch;
    auto qv = flat_queries[0];
    double scalar_ns = 0.0;
    std::vector<simd::IsaLevel> all = {simd::IsaLevel::kScalar};
    all.insert(all.end(), levels.begin(), levels.end());
    for (simd::IsaLevel level : all) {
      const simd::Kernels* k = simd::KernelsFor(level);
      double ns = time_ns(
          [&] {
            for (size_t i = 0; i < soa_db.size(); ++i) {
              auto cv = soa_db[i];
              std::fill(cnt.begin(), cnt.end(), 0);
              std::fill(inc.begin(), inc.end(), 0);
              k->evidence_histogram(qv.ts(), qv.xs(), qv.ys(), qv.size(),
                                    cv.ts(), cv.xs(), cv.ys(), cv.size(),
                                    params, cnt.data(), inc.data(), &scratch);
            }
          },
          static_cast<int64_t>(soa_db.size()));
      if (level == simd::IsaLevel::kScalar) scalar_ns = ns;
      push_kernel("evidence_histogram", level, ns, scalar_ns);
    }
  }

  // Convolution kernels of the truncated Poisson-Binomial prefix
  // build, at a short and a long prefix length (m = 4 matches the
  // grouped model's typical distinct-probability count).
  {
    std::mt19937 rng(20160501);
    std::uniform_real_distribution<double> u(0.0, 1.0);
    for (size_t flen : {size_t{32}, size_t{512}}) {
      std::vector<double> f0(flen);
      for (double& v : f0) v = u(rng);
      const double b[5] = {0.35, 0.3, 0.2, 0.1, 0.05};
      std::vector<double> f(flen);
      const int iters = 2000;
      double scalar_ns = 0.0;
      std::vector<simd::IsaLevel> all = {simd::IsaLevel::kScalar};
      all.insert(all.end(), levels.begin(), levels.end());
      for (simd::IsaLevel level : all) {
        const simd::Kernels* k = simd::KernelsFor(level);
        double ns = time_ns(
            [&] {
              for (int it = 0; it < iters; ++it) {
                std::memcpy(f.data(), f0.data(), flen * sizeof(double));
                k->convolve_prefix(f.data(), flen, b, 4);
              }
            },
            iters);
        if (level == simd::IsaLevel::kScalar) scalar_ns = ns;
        push_kernel("convolve_prefix_" + std::to_string(flen) + "_4", level,
                    ns, scalar_ns);
      }
      scalar_ns = 0.0;
      for (simd::IsaLevel level : all) {
        const simd::Kernels* k = simd::KernelsFor(level);
        double ns = time_ns(
            [&] {
              for (int it = 0; it < iters; ++it) {
                std::memcpy(f.data(), f0.data(), flen * sizeof(double));
                k->bernoulli_step(f.data(), flen, 0.25, 0.75);
              }
            },
            iters);
        if (level == simd::IsaLevel::kScalar) scalar_ns = ns;
        push_kernel("bernoulli_step_" + std::to_string(flen), level, ns,
                    scalar_ns);
      }
    }
  }
  simd::SetDispatchForTest(best_level);

  // -------------------------------------------------------------- JSON
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"simd\",\n"
               "  \"config\": \"%s\",\n"
               "  \"num_objects\": %zu,\n"
               "  \"num_queries\": %zu,\n"
               "  \"best_isa\": \"%s\",\n"
               "  \"speedup_target\": %.1f,\n"
               "  \"simd_vs_soa_serial_pairs_per_sec\": %.4f,\n"
               "  \"target_met\": %s,\n"
               "  \"results_byte_identical\": %s,\n"
               "  \"engine\": {\n",
               config.c_str(), num_objects, query_db.size(), best_isa.c_str(),
               kSpeedupTarget, engine_speedup,
               engine_speedup >= kSpeedupTarget ? "true" : "false",
               identical ? "true" : "false");
  for (size_t i = 0; i < engine_rows.size(); ++i) {
    const EngineRow& m = engine_rows[i];
    std::fprintf(f,
                 "    \"%s\": { \"isa\": \"%s\", \"pairs\": %lld, "
                 "\"seconds\": %.6f, \"pairs_per_sec\": %.1f, "
                 "\"accepted\": %zu }%s\n",
                 m.name.c_str(), m.isa.c_str(),
                 static_cast<long long>(m.pairs), m.seconds, m.pairs_per_sec,
                 m.accepted, i + 1 < engine_rows.size() ? "," : "");
  }
  std::fprintf(f, "  },\n  \"kernels\": [\n");
  for (size_t i = 0; i < kernel_rows.size(); ++i) {
    const KernelRow& r = kernel_rows[i];
    std::fprintf(f,
                 "    { \"kernel\": \"%s\", \"isa\": \"%s\", "
                 "\"ns_per_op\": %.1f, \"speedup_vs_scalar\": %.3f }%s\n",
                 r.name.c_str(), r.isa.c_str(), r.ns_per_op,
                 r.speedup_vs_scalar, i + 1 < kernel_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return identical ? 0 : 2;
}
