// `ftl serve` throughput benchmark: an in-process FtlServer on an
// ephemeral loopback port, hammered by N concurrent HTTP clients
// issuing POST /v1/query round-robin over the P labels. Reports
// queries/sec plus p50/p99 end-to-end latency (connect + request +
// engine + response), and re-checks the byte-identity contract: every
// response body must equal the direct FtlEngine call serialized with
// the same writer.
//
// Emits BENCH_serve.json (path overridable via argv[1]). Acceptance
// floor (ISSUE 7): >= 1000 queries/sec with 8 loopback clients.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "ftl/ftl.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace {

using namespace ftl;

core::EngineOptions ServeBenchOptions() {
  core::EngineOptions eo;
  eo.training.horizon_units = 60;
  eo.alpha.alpha1 = 0.01;
  eo.alpha.alpha2 = 0.1;
  eo.naive_bayes.phi_r = 0.005;
  eo.num_threads = 1;  // parallelism comes from the serve worker pool
  return eo;
}

struct Percentiles {
  double p50_us = 0.0;
  double p99_us = 0.0;
};

Percentiles ComputePercentiles(std::vector<double>* us) {
  Percentiles p;
  if (us->empty()) return p;
  std::sort(us->begin(), us->end());
  auto at = [&](double q) {
    size_t i = static_cast<size_t>(q * static_cast<double>(us->size() - 1));
    return (*us)[i];
  };
  p.p50_us = at(0.50);
  p.p99_us = at(0.99);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serve.json";
  const std::string config = "SD";
  const size_t num_objects = bench::PaperScale() ? 500 : 100;
  const size_t kClients = 8;
  const size_t requests_per_client = bench::PaperScale() ? 1000 : 400;
  const size_t total_requests = kClients * requests_per_client;
  const size_t workers = std::max(1u, std::thread::hardware_concurrency());

  sim::DatasetPair pair = sim::BuildDataset(sim::FindConfig(config),
                                            num_objects, bench::BenchSeed());
  core::FtlEngine engine(ServeBenchOptions());
  if (!engine.Train(pair.p, pair.q).ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }

  serve::ServeOptions so;
  so.port = 0;  // ephemeral
  so.num_threads = workers;
  so.max_queue = 256;
  serve::FtlServer server(so, &engine, &pair.p, &pair.q);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const int port = server.port();
  std::printf(
      "config=%s |P|=%zu |Q|=%zu workers=%zu clients=%zu requests=%zu "
      "port=%d\n\n",
      config.c_str(), pair.p.size(), pair.q.size(), workers, kClients,
      total_requests, port);

  // Expected bodies for the byte-identity check, computed up front so
  // the comparison costs the timed loop nothing but a string compare.
  std::vector<std::string> labels, expected;
  labels.reserve(pair.p.size());
  expected.reserve(pair.p.size());
  for (size_t i = 0; i < pair.p.size(); ++i) {
    labels.push_back(pair.p[i].label());
    auto direct = engine.Query(pair.p[i], pair.q, core::Matcher::kNaiveBayes);
    if (!direct.ok()) {
      std::fprintf(stderr, "direct query failed: %s\n",
                   direct.status().ToString().c_str());
      return 1;
    }
    expected.push_back(io::QueryResultToJson(labels[i], direct.value()));
  }

  std::vector<std::vector<double>> latencies(kClients);
  std::atomic<size_t> errors{0};
  std::atomic<size_t> mismatches{0};
  Stopwatch wall;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    latencies[c].reserve(requests_per_client);
    clients.emplace_back([&, c] {
      for (size_t i = 0; i < requests_per_client; ++i) {
        size_t li = (c * requests_per_client + i) % labels.size();
        std::string body = "{\"query\":\"" + labels[li] + "\"}";
        Stopwatch sw;
        auto r = serve::HttpRequestOnce("127.0.0.1", port, "POST",
                                        "/v1/query", body,
                                        /*timeout_ms=*/30000);
        double us = sw.ElapsedSeconds() * 1e6;
        if (!r.ok() || r.value().status != 200) {
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (r.value().body != expected[li]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        latencies[c].push_back(us);
      }
    });
  }
  for (auto& t : clients) t.join();
  const double seconds = wall.ElapsedSeconds();

  server.Shutdown();
  server.Wait();

  std::vector<double> all;
  all.reserve(total_requests);
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  const size_t ok = all.size();
  const double qps = static_cast<double>(ok) / seconds;
  Percentiles pct = ComputePercentiles(&all);
  const bool byte_identical = mismatches.load() == 0 && ok > 0;

  std::printf(
      "completed %zu/%zu requests in %.3fs\n"
      "  %10.0f queries/sec  (acceptance floor 1000)\n"
      "  p50=%8.0fus  p99=%8.0fus  errors=%zu  mismatches=%zu\n"
      "  results_byte_identical=%s\n",
      ok, total_requests, seconds, qps, pct.p50_us, pct.p99_us,
      errors.load(), mismatches.load(), byte_identical ? "true" : "false");

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"serve\",\n"
               "  \"config\": \"%s\",\n"
               "  \"p_size\": %zu,\n"
               "  \"q_size\": %zu,\n"
               "  \"workers\": %zu,\n"
               "  \"clients\": %zu,\n"
               "  \"requests\": %zu,\n"
               "  \"completed\": %zu,\n"
               "  \"errors\": %zu,\n"
               "  \"seconds\": %.6f,\n"
               "  \"queries_per_sec\": %.1f,\n"
               "  \"p50_us\": %.1f,\n"
               "  \"p99_us\": %.1f,\n"
               "  \"results_byte_identical\": %s,\n"
               "  \"metrics\": %s\n"
               "}\n",
               config.c_str(), pair.p.size(), pair.q.size(), workers,
               kClients, total_requests, ok, errors.load(), seconds, qps,
               pct.p50_us, pct.p99_us, byte_identical ? "true" : "false",
               ftl::obs::DumpJson().c_str());
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (!byte_identical) return 2;
  if (errors.load() > 0) return 2;
  return 0;
}
