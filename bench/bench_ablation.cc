// Ablation studies over FTL's design knobs (beyond the paper's own
// figures; DESIGN.md motivates each):
//   1. Vmax sensitivity — the only physical assumption FTL makes.
//   2. Time-unit granularity of the compatibility models.
//   3. Model horizon (beyond which segments are assumed compatible).
//   4. Parallel query scaling (the paper's stated future work).
//   5. Non-overlap pre-filter (skip candidates with disjoint time span).

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "ftl/ftl.h"

namespace {

using namespace ftl;

struct Fixture {
  sim::DatasetPair pair;
  eval::Workload workload;
};

Fixture MakeFixture() {
  Fixture f;
  f.pair = sim::BuildDataset(sim::FindConfig("SF"), bench::NumObjects(),
                             bench::BenchSeed());
  eval::WorkloadOptions wo;
  wo.num_queries = bench::NumQueries();
  wo.seed = bench::BenchSeed() + 5;
  f.workload = eval::MakeWorkload(f.pair.p, f.pair.q, wo);
  return f;
}

struct RunOutcome {
  double perceptiveness;
  double selectiveness;
  double seconds;
};

RunOutcome Run(const Fixture& f, core::EngineOptions eo) {
  core::FtlEngine engine(eo);
  Status st = engine.Train(f.pair.p, f.pair.q);
  if (!st.ok()) {
    std::printf("  (training failed: %s)\n", st.ToString().c_str());
    return {0, 0, 0};
  }
  Stopwatch sw;
  auto results = engine.BatchQuery(f.workload.queries, f.pair.q,
                                   core::Matcher::kNaiveBayes);
  double secs = sw.ElapsedSeconds();
  if (!results.ok()) return {0, 0, 0};
  auto m = eval::ComputeMetrics(results.value(), f.workload.owners,
                                f.pair.q);
  return {m.perceptiveness, m.selectiveness, secs};
}

core::EngineOptions BaseOptions() {
  core::EngineOptions eo;
  eo.training.vmax_mps = geo::KphToMps(120.0);
  eo.training.horizon_units = 60;
  eo.naive_bayes.phi_r = 0.01;
  eo.num_threads = 1;
  return eo;
}

void Header(const char* title) { std::printf("=== %s ===\n", title); }

void PrintRow(const std::string& setting, const RunOutcome& o) {
  std::printf("  %-24s perceptiveness %.3f  selectiveness %.5f  "
              "%.2fs\n",
              setting.c_str(), o.perceptiveness, o.selectiveness,
              o.seconds);
}

}  // namespace

int main() {
  std::printf("FTL ablation studies on the SF configuration "
              "(%zu objects, %zu queries)\n\n",
              bench::NumObjects(), bench::NumQueries());
  Fixture f = MakeFixture();

  Header("Ablation 1: Vmax sensitivity");
  for (double kph : {15.0, 30.0, 60.0, 90.0, 120.0, 140.0, 200.0, 400.0}) {
    auto eo = BaseOptions();
    eo.training.vmax_mps = geo::KphToMps(kph);
    PrintRow("Vmax=" + FormatDouble(kph, 0) + "kph", Run(f, eo));
  }
  std::printf("  expectation: too-tight Vmax rejects true matches; "
              "too-loose loses discrimination.\n\n");

  Header("Ablation 2: time-unit granularity");
  for (int64_t unit : {15, 30, 60, 120, 300}) {
    auto eo = BaseOptions();
    eo.training.time_unit_seconds = unit;
    // Keep the absolute horizon (1 h) fixed while the unit varies.
    eo.training.horizon_units = 3600 / unit;
    PrintRow("unit=" + std::to_string(unit) + "s", Run(f, eo));
  }
  std::printf("  expectation: very coarse units blur the gap-dependent "
              "signal.\n\n");

  Header("Ablation 3: model horizon");
  for (int64_t horizon : {5, 15, 30, 60, 120}) {
    auto eo = BaseOptions();
    eo.training.horizon_units = horizon;
    PrintRow("horizon=" + std::to_string(horizon) + "min", Run(f, eo));
  }
  std::printf("  expectation: tiny horizons discard most informative "
              "segments; past the city transit time extra buckets add "
              "nothing.\n\n");

  Header("Ablation 4: parallel query scaling (paper future work)");
  std::printf("  (hardware concurrency on this machine: %u)\n",
              std::thread::hardware_concurrency());
  double base_secs = 0.0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    auto eo = BaseOptions();
    eo.num_threads = threads;
    auto o = Run(f, eo);
    if (threads == 1) base_secs = o.seconds;
    std::printf("  threads=%zu  %.2fs  speedup %.2fx\n", threads,
                o.seconds, o.seconds > 0 ? base_secs / o.seconds : 0.0);
  }
  std::printf("\n");

  Header("Ablation 5: non-overlap pre-filter");
  for (bool evaluate_all : {true, false}) {
    auto eo = BaseOptions();
    eo.evaluate_non_overlapping = evaluate_all;
    PrintRow(evaluate_all ? "evaluate all pairs" : "skip non-overlapping",
             Run(f, eo));
  }
  std::printf("  expectation: skipping candidates with disjoint time "
              "spans changes results only marginally while saving "
              "work.\n");
  return 0;
}
