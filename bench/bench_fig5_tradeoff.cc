// Reproduces Figure 5: the perceptiveness-selectiveness trade-off of
// (a1,a2)-filtering vs Naive-Bayes-matching across the 12 dataset
// configurations:
//   (a) Singapore, varying sampling rate   (SA, SB, SC)
//   (b) Singapore, varying duration        (SD, SE, SF)
//   (c) T-Drive,  varying sampling rate    (TA, TB, TC)
//   (d) T-Drive,  varying duration         (TD, TE, TF)
//
// For each configuration, pair scores are computed once and the
// parameter sweeps ((a1,a2) pairs for filtering, phi_r values for NB)
// are applied afterwards — exactly the protocol of Section VII-B with
// Vmax = 120 kph.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "ftl/ftl.h"

namespace {

using namespace ftl;

// The sweep grids (the paper labels a1/a2 pairs and phi_r values along
// the SB curves; exact values are calibrated to produce comparable
// strictness coverage).
const std::vector<std::pair<double, double>> kAlphaGrid = {
    {0.2, 0.001},  {0.1, 0.005}, {0.05, 0.01}, {0.02, 0.05},
    {0.01, 0.1},   {0.005, 0.2}, {0.001, 0.4}, {0.0005, 0.6},
};
const std::vector<double> kPhiGrid = {1e-5, 1e-4, 5e-4, 0.002, 0.005,
                                      0.02, 0.08,  0.2,  0.4};

void RunConfig(const sim::DatasetConfig& cfg) {
  sim::DatasetPair pair =
      sim::BuildDataset(cfg, bench::NumObjects(), bench::BenchSeed());

  core::EngineOptions eo;
  eo.training.vmax_mps = geo::KphToMps(120.0);
  eo.training.horizon_units = 60;
  eo.training.acceptance_pairs_per_db = 1500;
  eo.num_threads = 4;
  core::FtlEngine engine(eo);
  Status st = engine.Train(pair.p, pair.q);
  if (!st.ok()) {
    std::printf("%s: training failed: %s\n", cfg.name.c_str(),
                st.ToString().c_str());
    return;
  }

  eval::WorkloadOptions wo;
  wo.num_queries = bench::NumQueries();
  wo.seed = bench::BenchSeed() + 1;
  auto workload = eval::MakeWorkload(pair.p, pair.q, wo);
  auto scores = eval::ComputePairScores(engine, workload.queries, pair.q);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"algorithm", "setting", "perceptiveness",
                  "selectiveness", "mean|QP|"});
  for (auto [a1, a2] : kAlphaGrid) {
    auto m = eval::MetricsForAlpha(scores, workload.owners, pair.q, a1, a2);
    rows.push_back({"alpha-" + cfg.name,
                    "(" + FormatDouble(a1, 4) + "," + FormatDouble(a2, 3) +
                        ")",
                    FormatDouble(m.perceptiveness, 3),
                    FormatDouble(m.selectiveness, 5),
                    FormatDouble(m.mean_candidates, 1)});
  }
  for (double phi : kPhiGrid) {
    auto m = eval::MetricsForPhi(scores, workload.owners, pair.q, phi);
    rows.push_back({"n-" + cfg.name, "phi_r=" + FormatDouble(phi, 5),
                    FormatDouble(m.perceptiveness, 3),
                    FormatDouble(m.selectiveness, 5),
                    FormatDouble(m.mean_candidates, 1)});
  }
  std::printf("%s", RenderTable(rows).c_str());
  std::printf("\n");
}

void RunPanel(const char* title, const std::vector<std::string>& names) {
  std::printf("=== %s ===\n", title);
  for (const auto& name : names) RunConfig(sim::FindConfig(name));
}

}  // namespace

int main() {
  std::printf("Figure 5 reproduction: perceptiveness-selectiveness "
              "trade-off (%zu objects, %zu queries, Vmax=120kph)\n\n",
              bench::NumObjects(), bench::NumQueries());
  RunPanel("Figure 5(a): Singapore, varying sampling rate",
           {"SA", "SB", "SC"});
  RunPanel("Figure 5(b): Singapore, varying duration", {"SD", "SE", "SF"});
  RunPanel("Figure 5(c): T-Drive, varying sampling rate",
           {"TA", "TB", "TC"});
  RunPanel("Figure 5(d): T-Drive, varying duration", {"TD", "TE", "TF"});
  std::printf(
      "Shape checks vs paper Figure 5:\n"
      "  * at equal selectiveness, perceptiveness orders SC>SB>SA\n"
      "    (higher update frequency helps) and SF>SE>SD (longer\n"
      "    duration helps);\n"
      "  * Naive-Bayes traces a trade-off at least as good as\n"
      "    (a1,a2)-filtering, with a wider edge on T-configs;\n"
      "  * the worst cell is the 2-day TD config.\n");
  return 0;
}
