// Micro-benchmarks of FTL's hot kernels:
//   * Poisson-Binomial pmf: DP convolution vs the paper's Eq. 1
//     recursion, across trial counts;
//   * trajectory alignment / mutual-segment streaming;
//   * evidence collection (the per-pair query kernel).

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.h"
#include "ftl/ftl.h"

namespace {

using namespace ftl;

std::vector<double> RandomProbs(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> ps;
  ps.reserve(n);
  for (size_t i = 0; i < n; ++i) ps.push_back(rng.Uniform(0.01, 0.9));
  return ps;
}

void BM_PoissonBinomialDp(benchmark::State& state) {
  auto ps = RandomProbs(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    auto pmf = stats::PoissonBinomialPmfDp(ps);
    benchmark::DoNotOptimize(pmf.data());
  }
}
BENCHMARK(BM_PoissonBinomialDp)->RangeMultiplier(4)->Range(8, 512);

void BM_PoissonBinomialRecursive(benchmark::State& state) {
  auto ps = RandomProbs(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    auto pmf = stats::PoissonBinomialPmfRecursive(ps);
    benchmark::DoNotOptimize(pmf.data());
  }
}
BENCHMARK(BM_PoissonBinomialRecursive)->RangeMultiplier(4)->Range(8, 128);

traj::Trajectory RandomTrajectory(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<traj::Record> recs;
  recs.reserve(n);
  int64_t t = 0;
  for (size_t i = 0; i < n; ++i) {
    t += rng.UniformInt(10, 600);
    recs.push_back(traj::Record{
        {rng.Uniform(0, 40000), rng.Uniform(0, 25000)}, t});
  }
  return traj::Trajectory("t", 0, std::move(recs));
}

void BM_AlignmentStreaming(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto p = RandomTrajectory(n, 2);
  auto q = RandomTrajectory(n, 3);
  for (auto _ : state) {
    size_t mutual = traj::CountMutualSegments(p, q);
    benchmark::DoNotOptimize(mutual);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * n));
}
BENCHMARK(BM_AlignmentStreaming)->RangeMultiplier(4)->Range(64, 16384);

void BM_CollectEvidence(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto p = RandomTrajectory(n, 4);
  auto q = RandomTrajectory(n, 5);
  core::EvidenceOptions opts;
  for (auto _ : state) {
    auto ev = core::CollectEvidence(p, q, opts);
    benchmark::DoNotOptimize(ev.units.data());
  }
}
BENCHMARK(BM_CollectEvidence)->RangeMultiplier(4)->Range(64, 4096);

void BM_DtwDistance(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto p = RandomTrajectory(n, 6);
  auto q = RandomTrajectory(n, 7);
  baselines::DtwDistance dtw;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw.Distance(p, q));
  }
}
BENCHMARK(BM_DtwDistance)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace

BENCHMARK_MAIN();
