// Reproduces Figure 7: per-query runtime of (a1,a2)-filtering vs
// Naive-Bayes-matching on every dataset configuration, via
// google-benchmark (one benchmark per config x matcher; the reported
// time is the mean wall-clock to answer one query against the whole
// candidate database).

#include <benchmark/benchmark.h>

#include <memory>
#include <unordered_map>

#include "bench_common.h"
#include "ftl/ftl.h"

namespace {

using namespace ftl;

struct PreparedDataset {
  sim::DatasetPair pair;
  core::FtlEngine engine;
  eval::Workload workload;
};

/// Datasets/models are built once per configuration and shared across
/// the benchmarks touching them.
PreparedDataset* Prepare(const std::string& name) {
  static std::unordered_map<std::string, std::unique_ptr<PreparedDataset>>
      cache;
  auto it = cache.find(name);
  if (it != cache.end()) return it->second.get();

  auto prep = std::make_unique<PreparedDataset>();
  prep->pair = sim::BuildDataset(sim::FindConfig(name),
                                 bench::NumObjects(), bench::BenchSeed());
  core::EngineOptions eo;
  eo.training.vmax_mps = geo::KphToMps(120.0);
  eo.training.horizon_units = 60;
  eo.alpha = {0.01, 0.1};
  eo.naive_bayes.phi_r = 0.005;
  prep->engine = core::FtlEngine(eo);
  Status st = prep->engine.Train(prep->pair.p, prep->pair.q);
  if (!st.ok()) std::abort();
  eval::WorkloadOptions wo;
  wo.num_queries = 32;  // cycled through by the benchmark loop
  wo.seed = bench::BenchSeed() + 3;
  prep->workload = eval::MakeWorkload(prep->pair.p, prep->pair.q, wo);
  return cache.emplace(name, std::move(prep)).first->second.get();
}

void BM_Query(benchmark::State& state, const std::string& config,
              core::Matcher matcher) {
  PreparedDataset* prep = Prepare(config);
  if (prep->workload.queries.empty()) {
    state.SkipWithError("empty workload");
    return;
  }
  size_t qi = 0;
  size_t candidates = 0;
  for (auto _ : state) {
    auto r = prep->engine.Query(
        prep->workload.queries[qi % prep->workload.queries.size()],
        prep->pair.q, matcher);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    candidates += r.value().candidates.size();
    benchmark::DoNotOptimize(candidates);
    ++qi;
  }
  state.counters["candidates/query"] = benchmark::Counter(
      static_cast<double>(candidates) /
      static_cast<double>(state.iterations()));
  state.counters["db_size"] =
      static_cast<double>(prep->pair.q.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> configs = {"SA", "SB", "SC", "SD", "SE", "SF",
                                      "TA", "TB", "TC", "TD", "TE", "TF"};
  for (const auto& cfg : configs) {
    benchmark::RegisterBenchmark(
        ("Fig7/alpha_filter/" + cfg).c_str(),
        [cfg](benchmark::State& s) {
          BM_Query(s, cfg, ftl::core::Matcher::kAlphaFilter);
        })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("Fig7/naive_bayes/" + cfg).c_str(),
        [cfg](benchmark::State& s) {
          BM_Query(s, cfg, ftl::core::Matcher::kNaiveBayes);
        })
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf(
      "\nShape checks vs paper Figure 7: Naive-Bayes answers queries\n"
      "faster than (a1,a2)-filtering (no Poisson-Binomial tail\n"
      "evaluation on the accept path is the paper's explanation; here\n"
      "both compute p-values for ranking, so the gap is smaller but\n"
      "present); runtime grows with trajectory duration and update\n"
      "frequency (SA<SB<SC, SD<SE<SF).\n");
  return 0;
}
