// Reproduces Figure 8: precision of Naive-Bayes-matching vs the
// similarity-search baselines (P2T, DTW, LCSS, EDR) as trajectories get
// sparser.
//
// Protocol (Section VII-E): queries from the log database are matched
// against trip-database candidates (the query taxis included). For the
// baselines, a query counts as answered when the true taxi is among the
// top-10 most-similar candidates; for Naive-Bayes, when it is among the
// positive results (typically 1-3 of them).
//   Panel (a): sampling rates 1.0 down to 0.1.
//   Panel (b): sampling rates 0.08 down to 0.02.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "ftl/ftl.h"

namespace {

using namespace ftl;

struct Panel {
  const char* title;
  std::vector<double> rates;
};

/// Full-rate base data: a compact Singapore-style fleet whose log
/// channel is dense enough that rate=1.0 is meaningful but small enough
/// that the quadratic baselines finish quickly.
sim::TaxiFleetData BaseFleet(size_t num_taxis) {
  sim::TaxiFleetOptions opts;
  opts.num_taxis = num_taxis;
  opts.duration_days = bench::PaperScale() ? 7 : 2;
  opts.log_sampler.interval_seconds = 300.0;  // dense channel
  opts.trip_sampler.interval_seconds = 1800.0;
  opts.seed = bench::BenchSeed();
  return sim::SimulateTaxiFleet(opts);
}

void RunPanel(const Panel& panel, const sim::TaxiFleetData& base,
              size_t num_queries) {
  std::printf("=== %s ===\n", panel.title);
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"rate", "FTL(NB)", "P2T", "DTW", "EDR", "LCSS"});

  for (double rate : panel.rates) {
    Rng rng(bench::BenchSeed() + static_cast<uint64_t>(rate * 1e6));
    traj::TrajectoryDatabase p = traj::DownSample(base.log_db, rate, &rng);
    const traj::TrajectoryDatabase& q = base.trip_db;

    // Queries: log trajectories with a true match among candidates.
    eval::WorkloadOptions wo;
    wo.num_queries = num_queries;
    wo.seed = bench::BenchSeed() + 4;
    auto workload = eval::MakeWorkload(p, q, wo);
    if (workload.queries.empty()) {
      std::printf("rate %.2f: no eligible queries (too sparse)\n", rate);
      continue;
    }

    // --- FTL / Naive-Bayes: positive results only. ---
    core::EngineOptions eo;
    eo.training.vmax_mps = geo::KphToMps(120.0);
    eo.training.horizon_units = 60;
    eo.naive_bayes.phi_r = 0.005;
    eo.num_threads = 4;
    core::FtlEngine engine(eo);
    double ftl_precision = 0.0;
    Status st = engine.Train(p, q);
    if (st.ok()) {
      auto results = engine.BatchQuery(workload.queries, q,
                                       core::Matcher::kNaiveBayes);
      if (results.ok()) {
        auto m = eval::ComputeMetrics(results.value(), workload.owners, q);
        ftl_precision = m.perceptiveness;
      }
    }

    // --- Baselines: top-10 by similarity. ---
    baselines::P2TDistance p2t;
    baselines::DtwDistance dtw;
    baselines::LcssDistance lcss(1000.0);
    baselines::EdrDistance edr(1000.0);
    const baselines::SimilarityMeasure* measures[] = {&p2t, &dtw, &edr,
                                                      &lcss};
    double precision[4] = {0, 0, 0, 0};
    for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
      for (int mi = 0; mi < 4; ++mi) {
        auto hits = baselines::TopK(workload.queries[qi], q,
                                    *measures[mi], 10);
        if (baselines::ContainsOwner(hits, q, workload.owners[qi])) {
          precision[mi] += 1.0;
        }
      }
    }
    double nq = static_cast<double>(workload.queries.size());
    rows.push_back({FormatDouble(rate, 2),
                    FormatDouble(ftl_precision, 2),
                    FormatDouble(precision[0] / nq, 2),
                    FormatDouble(precision[1] / nq, 2),
                    FormatDouble(precision[2] / nq, 2),
                    FormatDouble(precision[3] / nq, 2)});
  }
  std::printf("%s\n", RenderTable(rows).c_str());
}

}  // namespace

int main() {
  size_t num_taxis = bench::PaperScale() ? 1000 : 150;
  size_t num_queries = bench::PaperScale() ? 100 : 40;
  std::printf("Figure 8 reproduction: FTL vs similarity baselines "
              "(%zu taxis, %zu queries, top-10 for baselines)\n\n",
              num_taxis, num_queries);
  sim::TaxiFleetData base = BaseFleet(num_taxis);

  RunPanel({"Figure 8(a): high sampling rates",
            {1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1}},
           base, num_queries);
  RunPanel({"Figure 8(b): low sampling rates",
            {0.08, 0.06, 0.04, 0.02}},
           base, num_queries);
  std::printf(
      "Shape checks vs paper Figure 8: FTL stays near-perfect across\n"
      "panel (a) and degrades only at the very sparse end of panel\n"
      "(b); P2T and DTW fall off quickly as rates drop; EDR and LCSS\n"
      "hold up longer but collapse below rate ~0.1.\n");
  return 0;
}
