// FTB columnar-store benchmark: cold-load cost of the binary store vs
// CSV parsing, and scoring throughput of the SoA FlatDatabase path vs
// the AoS Trajectory path, on the same data.
//
//   * load: csv_parse      — ReadCsv (strict), the historical loader.
//   * load: ftb_mmap       — ReadFtb, zero-copy mmap, checksums on
//                            (the default posture; CRC touches every
//                            page, so this is an honest full read).
//   * load: ftb_mmap_nocrc — ReadFtb, mmap, checksums off (structural
//                            validation only; pages fault lazily).
//   * load: ftb_heap       — ReadFtb, heap fallback (one read + CRC).
//   * score: aos / soa     — alpha-filter full-database queries through
//                            FtlEngine::Query on TrajectoryDatabase vs
//                            FlatDatabase backends, both pinned to the
//                            scalar kernels.
//   * score: simd          — the SoA backend again, under the best
//                            SIMD dispatch level this binary + CPU
//                            support (what production runs by default).
//
// All scoring backends are loaded from disk artifacts derived from the
// same CSV, and the bench asserts their QueryResults are byte-identical
// (bit-pattern compare of p1/p2/score) — across storage layouts AND
// across kernel ISA levels. Each backend row also reports p50/p90/p99
// of the engine's sampled per-stage timers (alignment / bucketing /
// tail), read from the ftl_stage_* histograms, so a speedup can be
// attributed to a stage instead of guessed at from aggregate pairs/sec.
// Emits BENCH_ftb.json (path overridable via argv[1]).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ftl/ftl.h"
#include "obs/metrics.h"
#include "simd/dispatch.h"
#include "util/stopwatch.h"

namespace {

using namespace ftl;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

bool SameBits(double a, double b) {
  uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

struct LoadResult {
  std::string name;
  double seconds = 0.0;  // fastest repetition
  size_t bytes = 0;      // on-disk artifact size
  bool mmapped = false;
};

struct StageQuantiles {
  int64_t samples = 0;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;
};

struct ScoreResult {
  std::string name;
  std::string isa;  // kernel table the row ran on
  int64_t pairs = 0;
  double seconds = 0.0;
  double pairs_per_sec = 0.0;
  size_t accepted = 0;
  StageQuantiles alignment, bucketing, tail;
};

constexpr int kReps = 5;

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_ftb.json";
  const std::string config = "SC";
  const size_t num_objects = bench::PaperScale() ? 1000 : 200;
  const size_t num_queries = bench::PaperScale() ? 64 : 24;
  const std::string csv_path = TempPath("ftl_bench_ftb.csv");
  const std::string ftb_path = TempPath("ftl_bench_ftb.ftb");

  sim::DatasetPair pair = sim::BuildDataset(sim::FindConfig(config),
                                            num_objects, bench::BenchSeed());

  // Disk artifacts: the FTB file is converted from the CSV-loaded
  // database (exactly what `ftl convert` does), so both backends carry
  // the same post-roundtrip doubles and results can be byte-compared.
  if (!io::WriteCsv(pair.q, csv_path).ok()) {
    std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
    return 1;
  }
  auto csv_loaded = io::ReadCsv(csv_path, "q");
  if (!csv_loaded.ok()) {
    std::fprintf(stderr, "csv load: %s\n",
                 csv_loaded.status().ToString().c_str());
    return 1;
  }
  const traj::TrajectoryDatabase& aos_db = csv_loaded.value();
  if (!io::WriteFtb(aos_db, ftb_path).ok()) {
    std::fprintf(stderr, "cannot write %s\n", ftb_path.c_str());
    return 1;
  }
  auto ftb_loaded = io::ReadFtb(ftb_path);
  if (!ftb_loaded.ok()) {
    std::fprintf(stderr, "ftb load: %s\n",
                 ftb_loaded.status().ToString().c_str());
    return 1;
  }
  const traj::FlatDatabase& soa_db = ftb_loaded.value();

  std::printf("config=%s objects=%zu db=%zu records=%zu queries=%zu\n",
              config.c_str(), num_objects, aos_db.size(),
              soa_db.TotalRecords(), num_queries);
  std::printf("csv=%zu bytes  ftb=%zu bytes\n\n",
              static_cast<size_t>(std::filesystem::file_size(csv_path)),
              static_cast<size_t>(std::filesystem::file_size(ftb_path)));

  // ------------------------------------------------------- cold loads
  // Min-of-kReps; both formats go through the page cache equally, so
  // this measures parse/validation cost, not disk spin-up.
  std::vector<LoadResult> loads;
  auto run_load = [&loads](const std::string& name, size_t bytes, bool mmapped,
                           auto&& fn) {
    LoadResult r;
    r.name = name;
    r.bytes = bytes;
    r.mmapped = mmapped;
    for (int rep = 0; rep < kReps; ++rep) {
      Stopwatch sw;
      if (!fn()) {
        std::fprintf(stderr, "%s: load failed\n", name.c_str());
        std::exit(1);
      }
      double s = sw.ElapsedSeconds();
      if (rep == 0 || s < r.seconds) r.seconds = s;
    }
    std::printf("%-16s %10.3f ms  (%zu bytes)%s\n", r.name.c_str(),
                r.seconds * 1e3, r.bytes, r.mmapped ? "  [mmap]" : "");
    loads.push_back(r);
  };
  const size_t csv_bytes =
      static_cast<size_t>(std::filesystem::file_size(csv_path));
  const size_t ftb_bytes =
      static_cast<size_t>(std::filesystem::file_size(ftb_path));
  io::FtbLoadInfo info;
  run_load("csv_parse", csv_bytes, false,
           [&] { return io::ReadCsv(csv_path, "q").ok(); });
  run_load("ftb_mmap", ftb_bytes, true, [&] {
    io::FtbReadOptions o;
    return io::ReadFtb(ftb_path, o, &info).ok() && info.mmapped;
  });
  const bool mmap_available = info.mmapped;
  run_load("ftb_mmap_nocrc", ftb_bytes, true, [&] {
    io::FtbReadOptions o;
    o.verify_checksums = false;
    return io::ReadFtb(ftb_path, o).ok();
  });
  run_load("ftb_heap", ftb_bytes, false, [&] {
    io::FtbReadOptions o;
    o.prefer_mmap = false;
    return io::ReadFtb(ftb_path, o, &info).ok() && !info.mmapped;
  });
  double csv_s = loads[0].seconds, ftb_mmap_s = loads[1].seconds;
  double cold_speedup = csv_s / ftb_mmap_s;
  std::printf("\ncold-load speedup ftb_mmap vs csv: %.1fx "
              "(acceptance floor 10x)\n\n",
              cold_speedup);

  // -------------------------------------------------------- train once
  core::EngineOptions eo;
  eo.training.vmax_mps = geo::KphToMps(120.0);
  eo.training.horizon_units = 60;
  eo.alpha.alpha1 = 0.01;
  eo.alpha.alpha2 = 0.1;
  core::FtlEngine engine(eo);
  if (!engine.Train(pair.p, aos_db).ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }
  eval::WorkloadOptions wo;
  wo.num_queries = num_queries;
  wo.seed = bench::BenchSeed() + 7;
  eval::Workload workload = eval::MakeWorkload(pair.p, aos_db, wo);

  // Query set, relabeled uniquely and mirrored into a FlatDatabase so
  // the SoA path streams both sides from columns.
  traj::TrajectoryDatabase query_db("queries");
  for (size_t i = 0; i < workload.queries.size(); ++i) {
    const auto& q = workload.queries[i];
    Status st = query_db.Add(traj::Trajectory(
        "query-" + std::to_string(i), q.owner(), q.records()));
    if (!st.ok()) {
      std::fprintf(stderr, "query db: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  traj::FlatDatabase flat_queries =
      traj::FlatDatabase::FromDatabase(query_db);

  // ------------------------------------------------------ parity check
  // The acceptance contract: the SoA path and the SIMD kernels are
  // optimizations, not new algorithms, so every p-value and score must
  // match the scalar AoS reference to the bit.
  const simd::IsaLevel best_level = simd::BestSupportedLevel();
  const std::string best_isa = simd::IsaLevelName(best_level);
  auto same_candidates = [](const std::vector<core::MatchCandidate>& a,
                            const std::vector<core::MatchCandidate>& b) {
    if (a.size() != b.size()) return false;
    for (size_t j = 0; j < a.size(); ++j) {
      if (a[j].index != b[j].index || a[j].label != b[j].label ||
          !SameBits(a[j].p1, b[j].p1) || !SameBits(a[j].p2, b[j].p2) ||
          !SameBits(a[j].score, b[j].score)) {
        return false;
      }
    }
    return true;
  };
  size_t mismatches = 0;       // soa (scalar) vs aos (scalar)
  size_t simd_mismatches = 0;  // soa (best SIMD level) vs aos (scalar)
  for (size_t i = 0; i < query_db.size(); ++i) {
    simd::SetDispatchForTest(simd::IsaLevel::kScalar);
    auto aos = engine.Query(query_db[i], aos_db, core::Matcher::kAlphaFilter);
    auto soa = engine.Query(flat_queries[i], soa_db,
                            core::Matcher::kAlphaFilter);
    simd::SetDispatchForTest(best_level);
    auto vec = engine.Query(flat_queries[i], soa_db,
                            core::Matcher::kAlphaFilter);
    if (!aos.ok() || !soa.ok() || !vec.ok()) {
      std::fprintf(stderr, "parity query %zu failed\n", i);
      return 1;
    }
    if (!same_candidates(aos.value().candidates, soa.value().candidates)) {
      ++mismatches;
    }
    if (!same_candidates(aos.value().candidates, vec.value().candidates)) {
      ++simd_mismatches;
    }
  }
  const bool identical = mismatches == 0;
  const bool simd_identical = simd_mismatches == 0;
  std::printf("parity soa/aos:  %zu/%zu queries byte-identical %s\n",
              query_db.size() - mismatches, query_db.size(),
              identical ? "(OK)" : "(FAIL)");
  std::printf("parity %s/aos: %zu/%zu queries byte-identical %s\n\n",
              best_isa.c_str(), query_db.size() - simd_mismatches,
              query_db.size(), simd_identical ? "(OK)" : "(FAIL)");

  // ------------------------------------------------- scoring throughput
  // Each backend row pins the kernel dispatch level, zeroes the
  // engine's sampled per-stage histograms, runs kReps timed passes
  // (keeping the fastest for throughput), then reads the stage
  // quantiles accumulated across all passes.
  obs::Histogram* stage_hists[3] = {
      &obs::MetricsRegistry::Global().GetHistogram("ftl_stage_alignment_ns"),
      &obs::MetricsRegistry::Global().GetHistogram("ftl_stage_bucketing_ns"),
      &obs::MetricsRegistry::Global().GetHistogram("ftl_stage_tail_ns"),
  };
  std::vector<ScoreResult> scores;
  auto run_score = [&](const std::string& name, simd::IsaLevel level,
                       auto&& one_pass) {
    const simd::Kernels& active = simd::SetDispatchForTest(level);
    for (obs::Histogram* h : stage_hists) h->Reset();
    ScoreResult best;
    for (int rep = 0; rep < kReps; ++rep) {
      ScoreResult m;
      m.name = name;
      Stopwatch sw;
      one_pass(&m);
      m.seconds = sw.ElapsedSeconds();
      m.pairs_per_sec = static_cast<double>(m.pairs) / m.seconds;
      if (rep == 0 || m.seconds < best.seconds) best = m;
    }
    best.isa = simd::IsaLevelName(active.level);
    StageQuantiles* stages[3] = {&best.alignment, &best.bucketing,
                                 &best.tail};
    for (int s = 0; s < 3; ++s) {
      stages[s]->samples = stage_hists[s]->Count();
      stages[s]->p50 = stage_hists[s]->Quantile(0.50);
      stages[s]->p90 = stage_hists[s]->Quantile(0.90);
      stages[s]->p99 = stage_hists[s]->Quantile(0.99);
    }
    std::printf("%-12s [%-6s] pairs=%-8lld %10.0f pairs/s  accepted=%zu\n",
                best.name.c_str(), best.isa.c_str(),
                static_cast<long long>(best.pairs), best.pairs_per_sec,
                best.accepted);
    std::printf("    stage ns (p50/p90/p99): align %.0f/%.0f/%.0f   "
                "bucket %.0f/%.0f/%.0f   tail %.0f/%.0f/%.0f\n",
                best.alignment.p50, best.alignment.p90, best.alignment.p99,
                best.bucketing.p50, best.bucketing.p90, best.bucketing.p99,
                best.tail.p50, best.tail.p90, best.tail.p99);
    scores.push_back(best);
  };
  run_score("aos_serial", simd::IsaLevel::kScalar, [&](ScoreResult* m) {
    for (size_t i = 0; i < query_db.size(); ++i) {
      auto r = engine.Query(query_db[i], aos_db, core::Matcher::kAlphaFilter);
      if (!r.ok()) std::exit(1);
      m->accepted += r.value().candidates.size();
      m->pairs += static_cast<int64_t>(aos_db.size());
    }
  });
  run_score("soa_serial", simd::IsaLevel::kScalar, [&](ScoreResult* m) {
    for (size_t i = 0; i < flat_queries.size(); ++i) {
      auto r = engine.Query(flat_queries[i], soa_db,
                            core::Matcher::kAlphaFilter);
      if (!r.ok()) std::exit(1);
      m->accepted += r.value().candidates.size();
      m->pairs += static_cast<int64_t>(soa_db.size());
    }
  });
  run_score("simd", best_level, [&](ScoreResult* m) {
    for (size_t i = 0; i < flat_queries.size(); ++i) {
      auto r = engine.Query(flat_queries[i], soa_db,
                            core::Matcher::kAlphaFilter);
      if (!r.ok()) std::exit(1);
      m->accepted += r.value().candidates.size();
      m->pairs += static_cast<int64_t>(soa_db.size());
    }
  });
  double soa_vs_aos = scores[1].pairs_per_sec / scores[0].pairs_per_sec;
  double simd_vs_soa = scores[2].pairs_per_sec / scores[1].pairs_per_sec;
  std::printf("\nsoa vs aos pairs/sec: %.3fx (acceptance floor 1.0x)\n",
              soa_vs_aos);
  std::printf("simd (%s) vs soa_serial pairs/sec: %.3fx\n",
              scores[2].isa.c_str(), simd_vs_soa);

  // -------------------------------------------------------------- JSON
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"ftb\",\n"
               "  \"config\": \"%s\",\n"
               "  \"num_objects\": %zu,\n"
               "  \"db_size\": %zu,\n"
               "  \"num_records\": %zu,\n"
               "  \"num_queries\": %zu,\n"
               "  \"csv_bytes\": %zu,\n"
               "  \"ftb_bytes\": %zu,\n"
               "  \"mmap_available\": %s,\n"
               "  \"cold_load_speedup_ftb_mmap_vs_csv\": %.2f,\n"
               "  \"soa_vs_aos_pairs_per_sec\": %.4f,\n"
               "  \"simd_vs_soa_serial_pairs_per_sec\": %.4f,\n"
               "  \"simd_isa\": \"%s\",\n"
               "  \"results_byte_identical\": %s,\n"
               "  \"simd_results_byte_identical\": %s,\n"
               "  \"loads\": {\n",
               config.c_str(), num_objects, aos_db.size(),
               soa_db.TotalRecords(), query_db.size(), csv_bytes, ftb_bytes,
               mmap_available ? "true" : "false", cold_speedup, soa_vs_aos,
               simd_vs_soa, scores[2].isa.c_str(),
               identical ? "true" : "false",
               simd_identical ? "true" : "false");
  for (size_t i = 0; i < loads.size(); ++i) {
    const LoadResult& r = loads[i];
    std::fprintf(f,
                 "    \"%s\": { \"seconds\": %.6f, \"bytes\": %zu, "
                 "\"mmapped\": %s }%s\n",
                 r.name.c_str(), r.seconds, r.bytes,
                 r.mmapped ? "true" : "false",
                 i + 1 < loads.size() ? "," : "");
  }
  std::fprintf(f, "  },\n  \"scoring\": {\n");
  for (size_t i = 0; i < scores.size(); ++i) {
    const ScoreResult& m = scores[i];
    std::fprintf(f,
                 "    \"%s\": {\n"
                 "      \"isa\": \"%s\", \"pairs\": %lld, "
                 "\"seconds\": %.6f, \"pairs_per_sec\": %.1f, "
                 "\"accepted\": %zu,\n",
                 m.name.c_str(), m.isa.c_str(),
                 static_cast<long long>(m.pairs), m.seconds, m.pairs_per_sec,
                 m.accepted);
    const StageQuantiles* stages[3] = {&m.alignment, &m.bucketing, &m.tail};
    const char* stage_names[3] = {"alignment", "bucketing", "tail"};
    std::fprintf(f, "      \"stages_ns\": {\n");
    for (int s = 0; s < 3; ++s) {
      std::fprintf(f,
                   "        \"%s\": { \"samples\": %lld, \"p50\": %.0f, "
                   "\"p90\": %.0f, \"p99\": %.0f }%s\n",
                   stage_names[s], static_cast<long long>(stages[s]->samples),
                   stages[s]->p50, stages[s]->p90, stages[s]->p99,
                   s + 1 < 3 ? "," : "");
    }
    std::fprintf(f, "      }\n    }%s\n", i + 1 < scores.size() ? "," : "");
  }
  std::fprintf(f, "  },\n  \"metrics\": %s\n}\n", obs::DumpJson().c_str());
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  std::filesystem::remove(csv_path);
  std::filesystem::remove(ftb_path);
  return identical && simd_identical ? 0 : 2;
}
