// Blocking / scalability extension (the paper's "efficient large-scale
// fuzzy linking" future work): measures the candidate-reduction vs
// recall trade-off of the BlockingIndex, and end-to-end speedup when
// FTL queries only evaluate blocking survivors.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "ftl/ftl.h"

namespace {

using namespace ftl;

struct BlockedRun {
  double recall = 0.0;        // true match survives blocking
  double reduction = 0.0;     // surviving fraction of candidates
  double perceptiveness = 0.0;
  double seconds = 0.0;
};

BlockedRun RunBlocked(const sim::DatasetPair& pair,
                      const eval::Workload& workload,
                      const core::FtlEngine& engine,
                      const core::BlockingOptions* blocking) {
  BlockedRun out;
  std::unique_ptr<core::BlockingIndex> index;
  if (blocking != nullptr) {
    index = std::make_unique<core::BlockingIndex>(pair.q, *blocking);
  }
  Stopwatch sw;
  size_t survivors_total = 0, recall_hits = 0, percept_hits = 0;
  std::vector<size_t> survivors;  // reused across queries (scratch API)
  for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
    const auto& query = workload.queries[qi];
    if (index) {
      index->Candidates(query, &survivors);
    } else {
      survivors.resize(pair.q.size());
      for (size_t i = 0; i < pair.q.size(); ++i) survivors[i] = i;
    }
    survivors_total += survivors.size();
    for (size_t ci : survivors) {
      if (pair.q[ci].owner() == workload.owners[qi]) {
        ++recall_hits;
        break;
      }
    }
    auto r = engine.QueryWithCandidates(query, pair.q, survivors,
                                        core::Matcher::kNaiveBayes);
    if (!r.ok()) continue;
    for (const auto& c : r.value().candidates) {
      if (pair.q[c.index].owner() == workload.owners[qi]) {
        ++percept_hits;
        break;
      }
    }
  }
  out.seconds = sw.ElapsedSeconds();
  double nq = static_cast<double>(workload.queries.size());
  out.recall = static_cast<double>(recall_hits) / nq;
  out.reduction = static_cast<double>(survivors_total) /
                  (nq * static_cast<double>(pair.q.size()));
  out.perceptiveness = static_cast<double>(percept_hits) / nq;
  return out;
}

}  // namespace

void RunScenario(const char* title, const sim::DatasetPair& pair) {
  core::EngineOptions eo;
  eo.training.horizon_units = 60;
  eo.naive_bayes.phi_r = 0.01;
  core::FtlEngine engine(eo);
  Status st = engine.Train(pair.p, pair.q);
  if (!st.ok()) {
    std::printf("%s: training failed: %s\n", title,
                st.ToString().c_str());
    return;
  }
  eval::WorkloadOptions wo;
  wo.num_queries = bench::NumQueries();
  wo.seed = bench::BenchSeed() + 9;
  auto workload = eval::MakeWorkload(pair.p, pair.q, wo);

  std::printf("=== %s ===\n", title);
  std::printf("%-32s %-8s %-10s %-14s %-8s\n", "configuration", "recall",
              "kept-frac", "perceptiveness", "seconds");
  auto none = RunBlocked(pair, workload, engine, nullptr);
  std::printf("%-32s %-8s %-10.3f %-14.3f %-8.2f\n", "no blocking", "1.000",
              none.reduction, none.perceptiveness, none.seconds);

  struct Config {
    const char* name;
    core::BlockingOptions opts;
  };
  std::vector<Config> configs;
  {
    core::BlockingOptions t;
    t.use_spatial = false;
    configs.push_back({"temporal only (6h slack)", t});
    core::BlockingOptions s;
    s.use_temporal = false;
    configs.push_back({"spatial only (3km, nb=1)", s});
    core::BlockingOptions both;
    configs.push_back({"temporal + spatial", both});
    core::BlockingOptions tight;
    tight.cell_size_meters = 1500.0;
    tight.neighborhood = 0;
    tight.min_shared_cells = 2;
    tight.temporal_slack_seconds = 0;
    configs.push_back({"aggressive (1.5km, nb=0, >=2)", tight});
  }
  for (const auto& cfg : configs) {
    auto r = RunBlocked(pair, workload, engine, &cfg.opts);
    std::printf("%-32s %-8.3f %-10.3f %-14.3f %-8.2f\n", cfg.name,
                r.recall, r.reduction, r.perceptiveness, r.seconds);
  }
  std::printf("\n");
}

/// Residents with neighbourhood-scale mobility in a large city: the
/// realistic regime for population-scale linking, where spatial
/// blocking genuinely discriminates.
sim::DatasetPair LocalizedPopulationPair() {
  sim::PopulationOptions po;
  po.num_persons = bench::NumObjects();
  po.duration_days = 10;
  po.cdr_accesses_per_day = 14.0;
  po.transit_accesses_per_day = 8.0;
  po.city = sim::BeijingLike();
  po.city.hotspots.clear();
  po.waypoints.hotspot_prob = 0.0;
  po.waypoints.trip_scale_meters = 2500.0;
  po.waypoints.long_trip_prob = 0.02;
  po.seed = bench::BenchSeed() + 10;
  auto data = sim::SimulatePopulation(po);
  sim::DatasetPair pair;
  pair.name = "localized-population";
  pair.p = std::move(data.cdr_db);
  pair.q = std::move(data.transit_db);
  return pair;
}

int main() {
  std::printf("Blocking study: candidate pruning for large-scale FTL "
              "(%zu objects, %zu queries)\n\n",
              bench::NumObjects(), bench::NumQueries());

  RunScenario("Localized residents (neighbourhood mobility)",
              LocalizedPopulationPair());

  sim::DatasetPair taxis = sim::BuildDataset(
      sim::FindConfig("SF"), bench::NumObjects(), bench::BenchSeed());
  RunScenario("City-roaming taxi fleet (SF config)", taxis);

  std::printf(
      "Reading: for localized residents the spatial blocker keeps\n"
      "nearly all true matches while evaluating a fraction of the\n"
      "database. For taxis that sweep the whole city over weeks,\n"
      "spatial footprints overlap universally and blocking cannot\n"
      "prune — an honest negative result matching intuition.\n");
  return 0;
}
