// Candidate-generation study (DESIGN.md §13): measures the
// BlockingIndex's pairs-examined reduction and recall against
// exhaustive scoring at 10k / 100k / 1M candidate trajectories, and
// verifies that guaranteed mode keeps engine results byte-identical.
//
// Emits BENCH_index.json (path overridable via argv[1]); CI runs a
// small configuration and asserts the guaranteed gates:
//   FTL_BENCH_BLOCKING_SCALES   comma list of db sizes
//                               (default "10000,100000,1000000")
//   FTL_BENCH_BLOCKING_QUERIES  queries per scale (default 16)
//
// The fleet model is deliberately lightweight so the 1M scale builds
// in seconds: each candidate is active for one multi-day session at a
// random offset inside a long epoch (people appear in a sensor feed
// for days, not months), so most candidate pairs are temporally
// disjoint and a temporal index genuinely discriminates.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ftl/ftl.h"
#include "obs/metrics.h"

namespace {

using namespace ftl;

struct Rng {
  uint64_t s;
  explicit Rng(uint64_t seed) : s(seed * 6364136223846793005ull + 1ull) {}
  uint64_t Next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  double U() {  // [0, 1)
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }
};

constexpr int64_t kEpochSeconds = 120ll * 86400;    // observation window
constexpr int64_t kSessionSeconds = 3ll * 86400;    // per-object activity
constexpr double kCityMeters = 40000.0;
constexpr double kStepMeters = 600.0;

/// Owned column storage for a generated FlatDatabase.
struct FleetColumns {
  std::vector<uint64_t> record_offsets;
  std::vector<uint64_t> owners;
  std::vector<uint64_t> label_offsets;
  std::string label_pool;
  std::vector<int64_t> ts;
  std::vector<double> xs;
  std::vector<double> ys;
};

/// One session walk appended to `cols`; phase/jitter distinguish the
/// two channels observing the same underlying object.
void AppendWalk(FleetColumns* cols, Rng* rng, int64_t session_start,
                double hx, double hy, int64_t phase, double jitter) {
  int64_t t = session_start + phase;
  double x = hx;
  double y = hy;
  const int64_t session_end = session_start + kSessionSeconds;
  while (t < session_end) {
    cols->ts.push_back(t);
    cols->xs.push_back(x + (rng->U() - 0.5) * jitter);
    cols->ys.push_back(y + (rng->U() - 0.5) * jitter);
    t += 1800 + static_cast<int64_t>(rng->U() * 3600.0);
    x += (rng->U() - 0.5) * 2.0 * kStepMeters;
    y += (rng->U() - 0.5) * 2.0 * kStepMeters;
    if (x < 0) x = 0;
    if (x > kCityMeters) x = kCityMeters;
    if (y < 0) y = 0;
    if (y > kCityMeters) y = kCityMeters;
  }
}

/// Candidate side: n objects, each one session. The first `nq`
/// objects also get a second-channel trajectory appended to `queries`
/// (same session and home, offset phase) — the true matches.
traj::FlatDatabase MakeFleet(size_t n, size_t nq, uint64_t seed,
                             traj::TrajectoryDatabase* queries) {
  auto cols = std::make_shared<FleetColumns>();
  cols->record_offsets.push_back(0);
  cols->label_offsets.push_back(0);
  for (size_t i = 0; i < n; ++i) {
    Rng rng(seed + i * 2654435761ull);
    const int64_t session_start = static_cast<int64_t>(
        rng.U() * static_cast<double>(kEpochSeconds - kSessionSeconds));
    const double hx = rng.U() * kCityMeters;
    const double hy = rng.U() * kCityMeters;
    AppendWalk(cols.get(), &rng, session_start, hx, hy, /*phase=*/0,
               /*jitter=*/100.0);
    cols->record_offsets.push_back(cols->ts.size());
    cols->owners.push_back(i);
    cols->label_pool += "c" + std::to_string(i);
    cols->label_offsets.push_back(cols->label_pool.size());
    if (i < nq && queries != nullptr) {
      FleetColumns qc;
      qc.record_offsets.push_back(0);
      AppendWalk(&qc, &rng, session_start, hx, hy, /*phase=*/900,
                 /*jitter=*/400.0);
      std::vector<traj::Record> recs;
      recs.reserve(qc.ts.size());
      for (size_t k = 0; k < qc.ts.size(); ++k) {
        recs.push_back(traj::Record{{qc.xs[k], qc.ys[k]}, qc.ts[k]});
      }
      (void)queries->Add(traj::Trajectory("p" + std::to_string(i),
                                          static_cast<traj::OwnerId>(i),
                                          std::move(recs)));
    }
  }
  traj::FlatDatabase::Columns c;
  c.record_offsets = cols->record_offsets.data();
  c.owners = cols->owners.data();
  c.label_offsets = cols->label_offsets.data();
  c.label_pool = cols->label_pool.data();
  c.ts = cols->ts.data();
  c.xs = cols->xs.data();
  c.ys = cols->ys.data();
  c.num_trajectories = n;
  c.num_records = cols->ts.size();
  c.label_pool_size = cols->label_pool.size();
  return traj::FlatDatabase::FromColumns(c, cols, "fleet");
}

bool SameResults(const core::QueryResult& a, const core::QueryResult& b) {
  if (a.candidates.size() != b.candidates.size()) return false;
  for (size_t i = 0; i < a.candidates.size(); ++i) {
    if (a.candidates[i].index != b.candidates[i].index) return false;
    if (std::memcmp(&a.candidates[i].score, &b.candidates[i].score,
                    sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

struct ModeStats {
  uint64_t pairs = 0;
  uint64_t accepted = 0;
  double seconds = 0.0;
  uint64_t recall_hits = 0;  // exhaustive-accepted pairs also found here
  bool byte_identical = true;
};

std::vector<size_t> ParseScales(const char* env, size_t nq) {
  std::vector<size_t> scales;
  std::string spec = env != nullptr ? env : "10000,100000,1000000";
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    long v = std::atol(spec.substr(pos, comma - pos).c_str());
    if (v > 0 && static_cast<size_t>(v) >= nq) {
      scales.push_back(static_cast<size_t>(v));
    }
    pos = comma + 1;
  }
  if (scales.empty()) scales.push_back(10000);
  return scales;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_index.json";
  size_t nq = 16;
  if (const char* e = std::getenv("FTL_BENCH_BLOCKING_QUERIES")) {
    long v = std::atol(e);
    if (v > 0) nq = static_cast<size_t>(v);
  }
  std::vector<size_t> scales =
      ParseScales(std::getenv("FTL_BENCH_BLOCKING_SCALES"), nq);

  // Train once on a small slice: models depend on the mobility regime,
  // not the candidate count, and one engine keeps the guarantee
  // identical across scales.
  traj::TrajectoryDatabase p_small;
  traj::FlatDatabase train_flat =
      MakeFleet(std::max<size_t>(nq, 256), nq, bench::BenchSeed(), &p_small);
  traj::TrajectoryDatabase q_small = train_flat.ToDatabase();
  core::EngineOptions eo;
  core::FtlEngine engine(eo);
  Status st = engine.Train(p_small, q_small);
  if (!st.ok()) {
    std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const core::BlockingGuarantee guarantee =
      engine.DeriveBlockingGuarantee(core::Matcher::kNaiveBayes);
  std::printf(
      "Blocking study: guaranteed pruning bound = %llu segment(s) within "
      "%lld s horizon; %zu queries; scales:",
      static_cast<unsigned long long>(guarantee.min_segments),
      static_cast<long long>(guarantee.horizon_seconds), nq);
  for (size_t n : scales) std::printf(" %zu", n);
  std::printf("\n\n");

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"blocking_index\",\n"
               "  \"num_queries\": %zu,\n"
               "  \"guarantee\": {\"horizon_seconds\": %lld, "
               "\"min_segments\": %llu},\n  \"scales\": [\n",
               nq, static_cast<long long>(guarantee.horizon_seconds),
               static_cast<unsigned long long>(guarantee.min_segments));

  bool all_identical = true;
  double min_guaranteed_recall = 1.0;
  double worst_guaranteed_reduction = 1e300;
  for (size_t si = 0; si < scales.size(); ++si) {
    const size_t n = scales[si];
    traj::TrajectoryDatabase p_db;
    Stopwatch gen_sw;
    traj::FlatDatabase fleet = MakeFleet(n, nq, bench::BenchSeed(), &p_db);
    const double gen_seconds = gen_sw.ElapsedSeconds();
    traj::FlatDatabase p_flat = traj::FlatDatabase::FromDatabase(p_db);

    Stopwatch build_sw;
    core::BlockingIndex index(fleet, core::BlockingOptions{});
    const double build_seconds = build_sw.ElapsedSeconds();

    ModeStats ex, gu, ag;
    core::BlockingScratch scratch;
    for (size_t qi = 0; qi < nq; ++qi) {
      traj::FlatTrajectoryView qv = p_flat[qi];
      Stopwatch sw;
      auto re = engine.Query(qv, fleet, core::Matcher::kNaiveBayes);
      ex.seconds += sw.ElapsedSeconds();
      if (!re.ok()) {
        std::fprintf(stderr, "exhaustive query failed: %s\n",
                     re.status().ToString().c_str());
        return 1;
      }
      ex.pairs += re.value().evaluated;
      ex.accepted += re.value().candidates.size();
      ex.recall_hits += re.value().candidates.size();

      sw = Stopwatch();
      auto rg = engine.QueryBlocked(qv, fleet, index,
                                    core::BlockingMode::kGuaranteed,
                                    core::Matcher::kNaiveBayes, &scratch);
      gu.seconds += sw.ElapsedSeconds();
      if (!rg.ok()) {
        std::fprintf(stderr, "guaranteed query failed: %s\n",
                     rg.status().ToString().c_str());
        return 1;
      }
      gu.pairs += rg.value().evaluated;
      gu.accepted += rg.value().candidates.size();
      gu.byte_identical =
          gu.byte_identical && SameResults(re.value(), rg.value());

      sw = Stopwatch();
      auto ra = engine.QueryBlocked(qv, fleet, index,
                                    core::BlockingMode::kAggressive,
                                    core::Matcher::kNaiveBayes, &scratch);
      ag.seconds += sw.ElapsedSeconds();
      if (!ra.ok()) {
        std::fprintf(stderr, "aggressive query failed: %s\n",
                     ra.status().ToString().c_str());
        return 1;
      }
      ag.pairs += ra.value().evaluated;
      ag.accepted += ra.value().candidates.size();
      for (const auto& c : re.value().candidates) {
        for (const auto& d : rg.value().candidates) {
          if (d.index == c.index) {
            ++gu.recall_hits;
            break;
          }
        }
        for (const auto& d : ra.value().candidates) {
          if (d.index == c.index) {
            ++ag.recall_hits;
            break;
          }
        }
      }
    }
    auto recall = [&](const ModeStats& m) {
      return ex.accepted == 0 ? 1.0
                              : static_cast<double>(m.recall_hits) /
                                    static_cast<double>(ex.accepted);
    };
    auto reduction = [&](const ModeStats& m) {
      return m.pairs == 0 ? static_cast<double>(ex.pairs)
                          : static_cast<double>(ex.pairs) /
                                static_cast<double>(m.pairs);
    };
    all_identical = all_identical && gu.byte_identical;
    if (recall(gu) < min_guaranteed_recall) {
      min_guaranteed_recall = recall(gu);
    }
    if (reduction(gu) < worst_guaranteed_reduction) {
      worst_guaranteed_reduction = reduction(gu);
    }

    std::printf("=== %zu candidates (%zu records, built in %.2fs) ===\n", n,
                fleet.TotalRecords(), gen_seconds);
    std::printf("index build: %.3fs (%.2f us/trajectory)\n", build_seconds,
                1e6 * build_seconds / static_cast<double>(n));
    std::printf("%-12s %-14s %-12s %-10s %-8s %-10s %s\n", "mode", "pairs",
                "reduction-x", "accepted", "recall", "seconds", "identical");
    std::printf("%-12s %-14llu %-12s %-10llu %-8s %-10.2f %s\n", "exhaustive",
                static_cast<unsigned long long>(ex.pairs), "1.0",
                static_cast<unsigned long long>(ex.accepted), "1.000",
                ex.seconds, "-");
    std::printf("%-12s %-14llu %-12.1f %-10llu %-8.3f %-10.2f %s\n",
                "guaranteed", static_cast<unsigned long long>(gu.pairs),
                reduction(gu), static_cast<unsigned long long>(gu.accepted),
                recall(gu), gu.seconds, gu.byte_identical ? "yes" : "NO");
    std::printf("%-12s %-14llu %-12.1f %-10llu %-8.3f %-10.2f %s\n\n",
                "aggressive", static_cast<unsigned long long>(ag.pairs),
                reduction(ag), static_cast<unsigned long long>(ag.accepted),
                recall(ag), ag.seconds, "-");

    auto mode_json = [&](const char* name, const ModeStats& m, bool last) {
      std::fprintf(f,
                   "      \"%s\": {\"pairs\": %llu, \"seconds\": %.6f, "
                   "\"accepted\": %llu, \"reduction_x\": %.3f, "
                   "\"recall\": %.6f}%s\n",
                   name, static_cast<unsigned long long>(m.pairs), m.seconds,
                   static_cast<unsigned long long>(m.accepted), reduction(m),
                   recall(m), last ? "" : ",");
    };
    std::fprintf(f,
                 "    {\n      \"db_size\": %zu,\n"
                 "      \"num_records\": %zu,\n"
                 "      \"index_build_seconds\": %.6f,\n"
                 "      \"guaranteed_byte_identical\": %s,\n",
                 n, fleet.TotalRecords(), build_seconds,
                 gu.byte_identical ? "true" : "false");
    mode_json("exhaustive", ex, false);
    mode_json("guaranteed", gu, false);
    mode_json("aggressive", ag, true);
    std::fprintf(f, "    }%s\n", si + 1 == scales.size() ? "" : ",");
  }
  std::fprintf(f,
               "  ],\n  \"guaranteed_byte_identical\": %s,\n"
               "  \"guaranteed_recall_min\": %.6f,\n"
               "  \"guaranteed_reduction_min_x\": %.3f,\n"
               "  \"metrics\": %s\n}\n",
               all_identical ? "true" : "false", min_guaranteed_recall,
               worst_guaranteed_reduction, ftl::obs::DumpJson().c_str());
  std::fclose(f);

  std::printf(
      "Reading: guaranteed mode prunes temporally disjoint candidates\n"
      "without touching the accept set (identical column must say yes at\n"
      "every scale); aggressive mode adds the span + co-visitation\n"
      "heuristics for a further reduction at some recall cost.\n"
      "Wrote %s\n",
      out_path);
  return all_identical && min_guaranteed_recall == 1.0 ? 0 : 1;
}
