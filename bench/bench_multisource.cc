// Multi-source identity fusion study (the paper's future-work vision of
// linking "among several sources of trajectory data").
//
// One population observed by K services; all pairwise FTL links are
// reconciled into identity clusters. Reported per K: cluster purity,
// completeness (identities spanning all K sources), and the transitive
// gain — identities recovered across a *sparse* source pair only via a
// pivot source, which a two-source system would miss.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ftl/ftl.h"

namespace {

using namespace ftl;

struct World {
  std::vector<traj::TrajectoryDatabase> dbs;
  size_t persons;
};

World MakeWorld(size_t num_sources, size_t persons, uint64_t seed) {
  World w;
  w.persons = persons;
  w.dbs.resize(num_sources);
  sim::CityModel city = sim::SingaporeLike();
  Rng master(seed);
  // First two sources are dense; later ones progressively sparser.
  std::vector<double> rates;
  for (size_t s = 0; s < num_sources; ++s) {
    rates.push_back(s < 2 ? 14.0 - 4.0 * static_cast<double>(s)
                          : 4.0 / static_cast<double>(s));
  }
  for (size_t s = 0; s < num_sources; ++s) {
    w.dbs[s].set_name("src" + std::to_string(s));
  }
  int64_t span = 10 * 86400;
  for (size_t i = 0; i < persons; ++i) {
    Rng rng = master.Fork();
    auto path = sim::GenerateWaypointPath(&rng, city, 0, span,
                                          {3.5 * 3600.0, 6000.0, 0.1});
    for (size_t s = 0; s < num_sources; ++s) {
      sim::NoiseModel noise{30.0 + 10.0 * static_cast<double>(s), 0.0, 0};
      auto recs =
          sim::SamplePoisson(&rng, path, rates[s] / 86400.0, noise);
      (void)w.dbs[s].Add(traj::Trajectory(
          "s" + std::to_string(s) + "-" + std::to_string(i),
          static_cast<traj::OwnerId>(i), std::move(recs)));
    }
  }
  return w;
}

void RunFusion(size_t num_sources) {
  size_t persons = bench::NumObjects() / 3;
  World w = MakeWorld(num_sources, persons, bench::BenchSeed() + 11);

  core::EngineOptions eo;
  eo.training.horizon_units = 40;
  eo.naive_bayes.phi_r = 0.02;
  std::vector<size_t> sizes(num_sources, persons);
  core::IdentityGraph graph(sizes);
  size_t direct_sparse_hits = 0;  // true links found on the sparsest pair
  for (uint32_t a = 0; a < num_sources; ++a) {
    for (uint32_t b = a + 1; b < num_sources; ++b) {
      core::FtlEngine engine(eo);
      if (!engine.Train(w.dbs[a], w.dbs[b]).ok()) continue;
      for (uint32_t qi = 0; qi < persons; ++qi) {
        auto r = engine.Query(w.dbs[a][qi], w.dbs[b],
                              core::Matcher::kNaiveBayes);
        if (!r.ok()) continue;
        for (const auto& c : r.value().candidates) {
          (void)graph.AddLink({a, qi},
                              {b, static_cast<uint32_t>(c.index)},
                              c.score);
          if (a == 0 && b == num_sources - 1 &&
              w.dbs[b][c.index].owner() == w.dbs[a][qi].owner()) {
            ++direct_sparse_hits;
          }
        }
      }
    }
  }
  auto clusters = graph.Resolve(0.01);
  size_t pure = 0, complete = 0, transitive_sparse = 0;
  for (const auto& cluster : clusters) {
    traj::OwnerId owner =
        w.dbs[cluster.members[0].source][cluster.members[0].index].owner();
    bool all_same = true;
    bool has_first = false, has_last = false;
    for (const auto& m : cluster.members) {
      if (w.dbs[m.source][m.index].owner() != owner) all_same = false;
      if (m.source == 0) has_first = true;
      if (m.source == num_sources - 1) has_last = true;
    }
    if (all_same) ++pure;
    if (cluster.members.size() == num_sources) ++complete;
    if (all_same && has_first && has_last) ++transitive_sparse;
  }
  std::printf(
      "%zu sources: %3zu identities  purity %.2f  complete %.2f  "
      "src0<->src%zu linked %.2f (direct-only %.2f)  conflicts %zu\n",
      num_sources, clusters.size(),
      clusters.empty() ? 0.0
                       : static_cast<double>(pure) /
                             static_cast<double>(clusters.size()),
      clusters.empty() ? 0.0
                       : static_cast<double>(complete) /
                             static_cast<double>(clusters.size()),
      num_sources - 1,
      static_cast<double>(transitive_sparse) /
          static_cast<double>(persons),
      static_cast<double>(direct_sparse_hits) /
          static_cast<double>(persons),
      graph.last_conflicts());
}

}  // namespace

int main() {
  std::printf("Multi-source fusion study (%zu persons per world)\n\n",
              bench::NumObjects() / 3);
  for (size_t k : {2u, 3u, 4u, 5u}) RunFusion(k);
  std::printf(
      "\nReading: purity stays high as sources are added; the sparsest\n"
      "pair (src0 <-> last) is linked more completely through pivot\n"
      "sources than by its direct links alone — the transitive payoff\n"
      "of multi-source fuzzy linking.\n");
  return 0;
}
