// Query hot-path benchmark: pairs/sec and per-pair latency of the
// alpha-filter scoring path, serial vs parallel, across kernels:
//
//   * legacy_exact   — the pre-overhaul per-pair path, reconstructed
//                      from the retained components (std::function
//                      segment streaming, per-segment evidence vectors,
//                      per-trial O(n^2) Poisson-Binomial DP, fresh
//                      allocations per pair). This is the baseline the
//                      acceptance criterion compares against.
//   * grouped_exact  — bucket-compacted evidence + grouped Binomial
//                      convolution, scratch reuse, no fast-reject.
//   * grouped_fast   — the engine default: grouped kernel plus the
//                      Hoeffding fast-reject bound.
//   * rna            — grouped moments + refined normal approximation
//                      (forced; the engine default only engages it for
//                      very long alignments under an error guard).
//   * parallel       — grouped_fast with intra-query candidate
//                      parallelism across all hardware threads.
//
// Emits BENCH_query_hotpath.json (path overridable via argv[1]) so the
// perf trajectory is tracked from PR 1 onward.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "ftl/ftl.h"
#include "obs/metrics.h"
#include "stats/grouped_poisson_binomial.h"
#include "util/stopwatch.h"

namespace {

using namespace ftl;

core::EngineOptions BaseOptions() {
  core::EngineOptions eo;
  eo.training.vmax_mps = geo::KphToMps(120.0);
  eo.training.horizon_units = 60;
  eo.alpha.alpha1 = 0.01;
  eo.alpha.alpha2 = 0.1;
  eo.naive_bayes.phi_r = 0.005;
  return eo;
}

/// The pre-change IsCompatible: sqrt-based distance, out of line in its
/// own translation unit (noinline reproduces the cross-TU call).
[[gnu::noinline]] bool LegacyIsCompatible(const traj::Record& a,
                                          const traj::Record& b,
                                          double vmax_mps) {
  double d = geo::Distance(a.location, b.location);
  int64_t dt = traj::TimeDiff(a, b);
  return d <= vmax_mps * static_cast<double>(dt);
}

/// The seed repo's ScorePair, verbatim semantics: type-erased segment
/// streaming, per-segment evidence, per-trial DP tails, lazy p2.
bool LegacyScorePair(const traj::Trajectory& query,
                     const traj::Trajectory& cand,
                     const core::ModelPair& models,
                     const core::EvidenceOptions& ev_opts,
                     const core::AlphaFilterParams& alpha,
                     double* p1_out, double* p2_out) {
  core::MutualSegmentEvidence ev;
  traj::ForEachMutualSegment(query, cand, [&](const traj::Segment& s) {
    ++ev.total_mutual;
    int64_t dt = s.TimeLengthSeconds();
    int64_t unit =
        (dt + ev_opts.time_unit_seconds / 2) / ev_opts.time_unit_seconds;
    bool compatible = LegacyIsCompatible(s.first, s.second, ev_opts.vmax_mps);
    if (unit >= ev_opts.horizon_units) {
      if (!compatible) ++ev.beyond_horizon_incompatible;
      return;
    }
    ev.units.push_back(static_cast<int32_t>(unit));
    ev.incompatible.push_back(compatible ? 0 : 1);
  });
  int64_t k = ev.ObservedIncompatible();
  stats::PoissonBinomial reject_dist(ev.ProbsUnder(models.rejection));
  *p1_out = reject_dist.UpperTailPValue(k);
  if (*p1_out < alpha.alpha1) return false;
  stats::PoissonBinomial accept_dist(ev.ProbsUnder(models.acceptance));
  *p2_out = accept_dist.LowerTailPValue(k);
  return *p2_out < alpha.alpha2;
}

struct LatencyStats {
  double p50_us = 0.0;
  double p99_us = 0.0;
};

LatencyStats Percentiles(std::vector<double>* samples_us) {
  LatencyStats s;
  if (samples_us->empty()) return s;
  std::sort(samples_us->begin(), samples_us->end());
  auto at = [&](double q) {
    size_t i = static_cast<size_t>(q * static_cast<double>(
                                           samples_us->size() - 1));
    return (*samples_us)[i];
  };
  s.p50_us = at(0.50);
  s.p99_us = at(0.99);
  return s;
}

struct ModeResult {
  std::string name;
  int64_t pairs = 0;
  double seconds = 0.0;
  double pairs_per_sec = 0.0;
  LatencyStats pair_latency;   // per-pair, serial modes
  LatencyStats query_latency;  // per-query (ms), all modes
  size_t threads = 1;
  size_t accepted = 0;
};

void PrintMode(const ModeResult& m) {
  std::printf(
      "%-22s pairs=%-8lld  %8.0f pairs/s  pair p50=%7.2fus p99=%8.2fus  "
      "query p50=%7.2fms p99=%7.2fms  accepted=%zu\n",
      m.name.c_str(), static_cast<long long>(m.pairs), m.pairs_per_sec,
      m.pair_latency.p50_us, m.pair_latency.p99_us, m.query_latency.p50_us,
      m.query_latency.p99_us, m.accepted);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_query_hotpath.json";
  const std::string config = "SC";
  const size_t num_objects = bench::PaperScale() ? 1000 : 200;
  const size_t num_queries = bench::PaperScale() ? 64 : 24;
  const size_t hw_threads = std::max(1u, std::thread::hardware_concurrency());

  sim::DatasetPair pair =
      sim::BuildDataset(sim::FindConfig(config), num_objects,
                        bench::BenchSeed());
  core::EngineOptions eo = BaseOptions();
  core::FtlEngine engine(eo);
  if (!engine.Train(pair.p, pair.q).ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }
  eval::WorkloadOptions wo;
  wo.num_queries = num_queries;
  wo.seed = bench::BenchSeed() + 7;
  eval::Workload workload = eval::MakeWorkload(pair.p, pair.q, wo);
  const auto& queries = workload.queries;
  const traj::TrajectoryDatabase& db = pair.q;
  const core::ModelPair& models = engine.models();
  const core::EvidenceOptions ev_opts = engine.evidence_options();
  std::printf("config=%s objects=%zu db=%zu queries=%zu hw_threads=%zu\n\n",
              config.c_str(), num_objects, db.size(), queries.size(),
              hw_threads);

  // ------------------------------------------------------- parity check
  // Grouped-kernel p-values must match the per-trial DP to <= 1e-12.
  double max_pvalue_diff = 0.0;
  {
    stats::GroupedTailParams exact_tail;
    exact_tail.rna_min_trials = static_cast<size_t>(-1);
    stats::GroupedPbWorkspace ws;
    core::BucketEvidence buckets;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      for (size_t ci = 0; ci < db.size(); ci += 17) {
        core::MutualSegmentEvidence ev =
            core::CollectEvidence(queries[qi], db[ci], ev_opts);
        int64_t k = ev.ObservedIncompatible();
        stats::PoissonBinomial rej(ev.ProbsUnder(models.rejection));
        stats::PoissonBinomial acc(ev.ProbsUnder(models.acceptance));
        core::CollectEvidence(queries[qi], db[ci], ev_opts, &buckets);
        buckets.GroupsUnder(models.rejection, &ws.groups);
        double p1 =
            stats::GroupedPoissonBinomialTails(ws.groups, k, exact_tail, &ws)
                .upper;
        buckets.GroupsUnder(models.acceptance, &ws.groups);
        double p2 =
            stats::GroupedPoissonBinomialTails(ws.groups, k, exact_tail, &ws)
                .lower;
        max_pvalue_diff =
            std::max(max_pvalue_diff, std::fabs(p1 - rej.UpperTailPValue(k)));
        max_pvalue_diff =
            std::max(max_pvalue_diff, std::fabs(p2 - acc.LowerTailPValue(k)));
      }
    }
    std::printf("parity: max |grouped - DP| p-value diff = %.3e %s\n\n",
                max_pvalue_diff,
                max_pvalue_diff <= 1e-12 ? "(OK)" : "(FAIL)");
  }

  std::vector<ModeResult> modes;

  // Each mode runs kReps times and reports its fastest repetition:
  // min-time is the standard noise-robust estimator of true cost, and
  // using it for baseline and overhaul alike keeps the speedup ratio
  // stable on a loaded machine.
  constexpr int kReps = 3;

  // --------------------------------------------------- legacy baseline
  {
    ModeResult best;
    for (int rep = 0; rep < kReps; ++rep) {
      ModeResult m;
      m.name = "legacy_exact_serial";
      std::vector<double> pair_us, query_ms;
      Stopwatch total;
      for (const auto& q : queries) {
        Stopwatch qsw;
        for (size_t ci = 0; ci < db.size(); ++ci) {
          Stopwatch psw;
          double p1 = 0.0, p2 = 1.0;
          if (LegacyScorePair(q, db[ci], models, ev_opts, eo.alpha, &p1,
                              &p2)) {
            ++m.accepted;
          }
          pair_us.push_back(psw.ElapsedSeconds() * 1e6);
          ++m.pairs;
        }
        query_ms.push_back(qsw.ElapsedMillis());
      }
      m.seconds = total.ElapsedSeconds();
      m.pairs_per_sec = static_cast<double>(m.pairs) / m.seconds;
      m.pair_latency = Percentiles(&pair_us);
      m.query_latency = Percentiles(&query_ms);
      if (rep == 0 || m.seconds < best.seconds) best = std::move(m);
    }
    PrintMode(best);
    modes.push_back(best);
  }

  // ------------------------------------------- engine-variant harness
  auto run_engine_mode = [&](const std::string& name,
                             const core::EngineOptions& opts,
                             size_t threads) {
    core::FtlEngine e(opts);
    e.SetModels(models);
    ModeResult m;
    for (int rep = 0; rep < kReps; ++rep) {
      ModeResult r_m;
      r_m.name = name;
      r_m.threads = threads;
      std::vector<double> query_ms;
      Stopwatch total;
      for (const auto& q : queries) {
        Stopwatch qsw;
        auto r = e.Query(q, db, core::Matcher::kAlphaFilter, threads);
        if (!r.ok()) {
          std::fprintf(stderr, "%s: %s\n", name.c_str(),
                       r.status().ToString().c_str());
          std::exit(1);
        }
        r_m.accepted += r.value().candidates.size();
        r_m.pairs += static_cast<int64_t>(db.size());
        query_ms.push_back(qsw.ElapsedMillis());
      }
      r_m.seconds = total.ElapsedSeconds();
      r_m.pairs_per_sec = static_cast<double>(r_m.pairs) / r_m.seconds;
      r_m.query_latency = Percentiles(&query_ms);
      if (rep == 0 || r_m.seconds < m.seconds) m = std::move(r_m);
    }
    // Per-pair latency (serial modes): the classifier-level hot path —
    // bucket evidence collection plus grouped classification — timed
    // pair by pair with reused scratch.
    if (threads == 1) {
      core::AlphaFilter filter(models, opts.alpha);
      stats::GroupedPbWorkspace ws;
      core::BucketEvidence buckets;
      std::vector<double> pair_us;
      pair_us.reserve(static_cast<size_t>(m.pairs));
      for (const auto& q : queries) {
        for (size_t ci = 0; ci < db.size(); ++ci) {
          Stopwatch psw;
          core::CollectEvidence(q, db[ci], ev_opts, &buckets);
          core::AlphaFilterDecision d = filter.Classify(buckets, &ws);
          (void)d;
          pair_us.push_back(psw.ElapsedSeconds() * 1e6);
        }
      }
      m.pair_latency = Percentiles(&pair_us);
    }
    PrintMode(m);
    modes.push_back(m);
  };

  {
    core::EngineOptions opts = eo;
    opts.alpha.fast_reject = false;
    opts.alpha.tail.rna_min_trials = static_cast<size_t>(-1);
    run_engine_mode("grouped_exact_serial", opts, 1);
  }
  {
    core::EngineOptions opts = eo;  // engine defaults: fast-reject on
    opts.alpha.tail.rna_min_trials = static_cast<size_t>(-1);
    run_engine_mode("grouped_fast_serial", opts, 1);
  }
  {
    core::EngineOptions opts = eo;
    opts.alpha.fast_reject = false;
    opts.alpha.tail.rna_min_trials = 0;
    opts.alpha.tail.rna_max_abs_error = 1e9;  // force the RNA path
    run_engine_mode("rna_serial", opts, 1);
  }
  {
    core::EngineOptions opts = eo;
    opts.alpha.tail.rna_min_trials = static_cast<size_t>(-1);
    run_engine_mode("grouped_fast_parallel", opts, hw_threads);
  }

  const ModeResult& legacy = modes[0];
  auto find_mode = [&](const std::string& name) -> const ModeResult& {
    for (const auto& m : modes) {
      if (m.name == name) return m;
    }
    return modes[0];
  };
  double speedup_exact =
      find_mode("grouped_fast_serial").pairs_per_sec / legacy.pairs_per_sec;
  double speedup_parallel = find_mode("grouped_fast_parallel").pairs_per_sec /
                            find_mode("grouped_fast_serial").pairs_per_sec;
  std::printf(
      "\nserial exact speedup vs legacy: %.2fx (acceptance floor 3x)\n"
      "parallel speedup vs serial:      %.2fx on %zu threads\n",
      speedup_exact, speedup_parallel, hw_threads);

  // ------------------------------------------------- metrics snapshot
  // The engine modes above ran fully instrumented; report what the obs
  // layer saw (sampled stage timers, fast-reject counters) so the bench
  // doubles as an end-to-end check of the observability data.
  {
    auto& reg = ftl::obs::MetricsRegistry::Global();
    auto stage = [&reg](const char* name) {
      const ftl::obs::Histogram& h = reg.GetHistogram(name);
      std::printf("  %-28s n=%-8lld p50=%8.0fns p99=%10.0fns\n", name,
                  static_cast<long long>(h.Count()), h.Quantile(0.5),
                  h.Quantile(0.99));
    };
    std::printf("\nobs stage timers (sampled 1/64 pairs):\n");
    stage("ftl_stage_alignment_ns");
    stage("ftl_stage_bucketing_ns");
    stage("ftl_stage_tail_ns");
    stage("ftl_stage_decision_ns");
    std::printf(
        "obs counters: candidates=%lld fast_reject=%lld exact_tail=%lld "
        "rna_tail=%lld\n",
        static_cast<long long>(
            reg.GetCounter("ftl_query_candidates_total").Value()),
        static_cast<long long>(
            reg.GetCounter("ftl_query_fast_reject_total").Value()),
        static_cast<long long>(
            reg.GetCounter("ftl_query_tail_exact_total").Value()),
        static_cast<long long>(
            reg.GetCounter("ftl_query_tail_rna_total").Value()));
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"query_hotpath\",\n"
               "  \"config\": \"%s\",\n"
               "  \"num_objects\": %zu,\n"
               "  \"db_size\": %zu,\n"
               "  \"num_queries\": %zu,\n"
               "  \"hardware_threads\": %zu,\n"
               "  \"max_pvalue_diff_vs_dp\": %.6e,\n"
               "  \"speedup_serial_exact_vs_legacy\": %.4f,\n"
               "  \"speedup_parallel_vs_serial\": %.4f,\n"
               "  \"modes\": {\n",
               config.c_str(), num_objects, db.size(), queries.size(),
               hw_threads, max_pvalue_diff, speedup_exact, speedup_parallel);
  for (size_t i = 0; i < modes.size(); ++i) {
    const ModeResult& m = modes[i];
    std::fprintf(f,
                 "    \"%s\": {\n"
                 "      \"pairs\": %lld,\n"
                 "      \"seconds\": %.6f,\n"
                 "      \"pairs_per_sec\": %.1f,\n"
                 "      \"pair_p50_us\": %.3f,\n"
                 "      \"pair_p99_us\": %.3f,\n"
                 "      \"query_p50_ms\": %.3f,\n"
                 "      \"query_p99_ms\": %.3f,\n"
                 "      \"threads\": %zu,\n"
                 "      \"accepted\": %zu\n"
                 "    }%s\n",
                 m.name.c_str(), static_cast<long long>(m.pairs), m.seconds,
                 m.pairs_per_sec, m.pair_latency.p50_us, m.pair_latency.p99_us,
                 m.query_latency.p50_us, m.query_latency.p99_us, m.threads,
                 m.accepted, i + 1 < modes.size() ? "," : "");
  }
  std::fprintf(f, "  },\n  \"metrics\": %s\n}\n",
               ftl::obs::DumpJson().c_str());
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return max_pvalue_diff <= 1e-12 ? 0 : 2;
}
