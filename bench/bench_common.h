#ifndef FTL_BENCH_BENCH_COMMON_H_
#define FTL_BENCH_BENCH_COMMON_H_

/// \file bench_common.h
/// Shared knobs for the paper-reproduction harnesses.
///
/// The paper's experiments ran against ~15k-taxi databases; these
/// harnesses default to a few hundred objects so the full suite
/// completes in minutes while preserving every qualitative shape.
/// Set FTL_BENCH_SCALE=paper for larger runs.

#include <cstdlib>
#include <cstring>
#include <string>

namespace ftl::bench {

/// True when FTL_BENCH_SCALE=paper.
inline bool PaperScale() {
  const char* s = std::getenv("FTL_BENCH_SCALE");
  return s != nullptr && std::strcmp(s, "paper") == 0;
}

/// Number of moving objects per simulated database.
inline size_t NumObjects() { return PaperScale() ? 2000 : 250; }

/// Number of queries per workload (paper: 200).
inline size_t NumQueries() { return PaperScale() ? 200 : 80; }

/// Global seed so every harness is reproducible.
inline uint64_t BenchSeed() { return 20160501; }

}  // namespace ftl::bench

#endif  // FTL_BENCH_BENCH_COMMON_H_
