// Reproduces Figure 4: the exact pmf f_X(x) of the number of mutual
// segments per unit time vs (i) a Poisson with the same mean and (ii)
// the Poisson approximation with mean E^(X) = 2*lP*lQ/(lP+lQ), for
// (lP, lQ) = (0.5, 2) and (4, 10). A Monte-Carlo column validates the
// closed forms.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "ftl/ftl.h"

namespace {

void RunPanel(double lp, double lq, int64_t max_x) {
  using namespace ftl;
  std::printf("--- Figure 4 panel: lambda_P=%.1f lambda_Q=%.1f ---\n", lp,
              lq);
  auto exact = analysis::MutualSegmentCountPmf(lp, lq, max_x);
  double mean = 0;
  for (size_t x = 0; x < exact.size(); ++x) {
    mean += static_cast<double>(x) * exact[x];
  }
  auto pois_same_mean = stats::PoissonPmfVector(mean, max_x);
  double e_hat = analysis::ApproxExpectedMutualSegments(lp, lq);
  auto pois_ehat = stats::PoissonPmfVector(e_hat, max_x);

  Rng rng(bench::BenchSeed());
  auto sim = analysis::SimulateMutualSegmentCounts(&rng, lp, lq, 200000);
  auto emp = stats::EmpiricalPmf(sim);

  std::printf("E(X) closed form = %.4f   E^(X) approx = %.4f   "
              "bound 2*min(l) = %.1f\n",
              analysis::ExpectedMutualSegments(lp, lq), e_hat,
              analysis::MutualSegmentCountUpperBound(lp, lq));
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"x", "f_X(x)", "Pois(mean)", "Pois(E^)", "simulated"});
  for (int64_t x = 0; x <= max_x; ++x) {
    size_t xi = static_cast<size_t>(x);
    rows.push_back({std::to_string(x), FormatDouble(exact[xi], 4),
                    FormatDouble(pois_same_mean[xi], 4),
                    FormatDouble(pois_ehat[xi], 4),
                    FormatDouble(xi < emp.size() ? emp[xi] : 0.0, 4)});
  }
  std::printf("%s", RenderTable(rows).c_str());
  std::printf("TV(exact, Pois(mean)) = %.4f   TV(exact, Pois(E^)) = %.4f   "
              "TV(exact, simulated) = %.4f\n\n",
              stats::TotalVariationDistance(exact, pois_same_mean),
              stats::TotalVariationDistance(exact, pois_ehat),
              stats::TotalVariationDistance(exact, emp));
}

}  // namespace

int main() {
  std::printf("Figure 4 reproduction: f_X(x) vs Poisson approximations\n\n");
  RunPanel(0.5, 2.0, 5);    // Figure 4(a)
  RunPanel(4.0, 10.0, 16);  // Figure 4(b)
  std::printf(
      "Shape checks vs paper Figure 4: the three curves track each\n"
      "other; Pois(E^) is biased slightly right; the bias shrinks from\n"
      "panel (a) to panel (b) as the rates grow.\n");
  return 0;
}
