// Privacy extension study (the paper's closing future-work item):
// FTL run as a re-identification attack against a defended database
// release. For each defense family we sweep the defense strength and
// report the residual linkage risk.
//
// Attack model: the adversary holds the CDR-style database P and obtains
// a (defended) release of the transit-card database Q. Risk metrics:
// perceptiveness (true owner somewhere in the candidate set), top-1
// accuracy, and mean candidate-set size (residual uncertainty).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "ftl/ftl.h"

namespace {

using namespace ftl;

privacy::AttackOptions Attack() {
  privacy::AttackOptions o;
  o.engine.training.horizon_units = 40;
  o.engine.training.acceptance_pairs_per_db = 800;
  o.engine.naive_bayes.phi_r = 0.02;
  o.engine.num_threads = 4;
  o.workload.num_queries = bench::NumQueries();
  o.workload.seed = bench::BenchSeed() + 6;
  return o;
}

void Report(const char* setting, const Result<privacy::RiskReport>& r) {
  if (!r.ok()) {
    std::printf("  %-26s (failed: %s)\n", setting,
                r.status().ToString().c_str());
    return;
  }
  std::printf("  %-26s perceptiveness %.3f  top1 %.3f  mean|QP| %.1f\n",
              setting, r.value().perceptiveness, r.value().top1_accuracy,
              r.value().mean_candidates);
}

}  // namespace

int main() {
  std::printf("Privacy study: FTL as a re-identification attack vs "
              "data-release defenses (%zu persons, %zu queries)\n\n",
              bench::NumObjects(), bench::NumQueries());

  sim::PopulationOptions po;
  po.num_persons = bench::NumObjects();
  po.duration_days = 10;
  po.cdr_accesses_per_day = 14.0;
  po.transit_accesses_per_day = 8.0;
  po.seed = bench::BenchSeed() + 7;
  auto data = sim::SimulatePopulation(po);
  Rng rng(bench::BenchSeed() + 8);

  std::printf("=== Baseline (no defense) ===\n");
  Report("undefended",
         privacy::EvaluateLinkageRisk(data.cdr_db, data.transit_db,
                                      Attack()));

  std::printf("\n=== Defense 1: spatial cloaking (grid size) ===\n");
  for (double grid : {500.0, 2000.0, 5000.0, 10000.0, 20000.0}) {
    auto released = privacy::SpatialCloaking(data.transit_db, grid);
    Report(("grid=" + FormatDouble(grid / 1000.0, 1) + "km").c_str(),
           privacy::EvaluateLinkageRisk(data.cdr_db, released, Attack()));
  }

  std::printf("\n=== Defense 2: temporal cloaking (window) ===\n");
  for (int64_t window : {300, 1800, 3600, 4 * 3600, 24 * 3600}) {
    auto released = privacy::TemporalCloaking(data.transit_db, window);
    Report(("window=" + std::to_string(window / 60) + "min").c_str(),
           privacy::EvaluateLinkageRisk(data.cdr_db, released, Attack()));
  }

  std::printf("\n=== Defense 3: Gaussian perturbation (sigma) ===\n");
  for (double sigma : {100.0, 500.0, 2000.0, 5000.0, 15000.0}) {
    Rng sub = rng.Fork();
    auto released =
        privacy::GaussianPerturbation(data.transit_db, sigma, &sub);
    Report(("sigma=" + FormatDouble(sigma / 1000.0, 1) + "km").c_str(),
           privacy::EvaluateLinkageRisk(data.cdr_db, released, Attack()));
  }

  std::printf("\n=== Defense 4: record suppression (keep fraction) ===\n");
  for (double keep : {0.8, 0.5, 0.25, 0.1, 0.05}) {
    Rng sub = rng.Fork();
    auto released =
        privacy::RecordSuppression(data.transit_db, keep, &sub);
    Report(("keep=" + FormatDouble(keep, 2)).c_str(),
           privacy::EvaluateLinkageRisk(data.cdr_db, released, Attack()));
  }

  std::printf(
      "\nReading: risk degrades gracefully — moderate defenses leave\n"
      "FTL largely intact (confirming the paper's concern that sparsity\n"
      "and noise alone are weak protection); only city-scale cloaking /\n"
      "perturbation or aggressive suppression push top-1 risk toward\n"
      "the random-guess floor.\n");
  return 0;
}
