// Compaction + sharded-parallel-query benchmark for the store
// (DESIGN.md §14):
//
//   * For each target segment count (1 / 8 / 64): ingest the candidate
//     database into that many immutable segments, then measure the
//     snapshot query path — per-query p50/p99 latency and scored
//     pairs/sec — serial (num_threads=1) and parallel (the sharded
//     segment walk on the PR 1 ThreadPool).
//   * Compact the store down to one segment (Store::CompactOnce rounds,
//     the same code the background Compactor drives) and measure again:
//     the before/after delta is what compaction buys query latency.
//   * The identity gate: every response in every mode — serial,
//     parallel, before and after compaction — must serialize
//     byte-identically to querying one merged database. The process
//     exits non-zero when any byte diverges, so CI fails loudly rather
//     than recording a lie.
//
// Parallel speedup is reported honestly: on a single-hardware-thread
// host the sharded walk cannot beat serial (the JSON records
// hardware_concurrency so readers can judge).
//
// Emits BENCH_compaction.json (path overridable via argv[1]).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "ftl/ftl.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace {

using namespace ftl;

std::string TempDir(const std::string& name) {
  std::string dir = (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<store::IngestBatch> ToBatches(const traj::TrajectoryDatabase& db) {
  std::vector<store::IngestBatch> batches;
  batches.reserve(db.size());
  for (const traj::Trajectory& t : db) {
    store::IngestBatch b;
    b.rows.reserve(t.size());
    for (const traj::Record& r : t.records()) {
      b.rows.push_back(store::IngestRow{t.label(), t.owner(), r.t,
                                        r.location.x, r.location.y});
    }
    batches.push_back(std::move(b));
  }
  return batches;
}

struct QueryStats {
  double seconds = 0.0;        // total wall time over all executions
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double pairs_per_sec = 0.0;
  uint64_t pairs = 0;          // candidate pairs scored
};

double QuantileMs(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t idx = static_cast<size_t>(q * static_cast<double>(samples.size()));
  if (idx >= samples.size()) idx = samples.size() - 1;
  return samples[idx] * 1000.0;
}

/// Runs `reps` passes of every query against the snapshot, checking
/// each response against the oracle bytes. Returns false on any
/// divergence (after printing the offending query).
bool MeasureQueries(const store::StoreSnapshot& snap,
                    const core::FtlEngine& engine,
                    const traj::TrajectoryDatabase& p, size_t num_queries,
                    size_t num_threads, int reps,
                    const std::vector<std::string>& oracle, QueryStats* out) {
  std::vector<double> latencies;
  latencies.reserve(num_queries * static_cast<size_t>(reps));
  Stopwatch total;
  uint64_t pairs = 0;
  for (int rep = 0; rep < reps; ++rep) {
    for (size_t qi = 0; qi < num_queries; ++qi) {
      Stopwatch sw;
      auto got = snap.Query(engine, p[qi], core::Matcher::kNaiveBayes,
                            nullptr, num_threads);
      latencies.push_back(sw.ElapsedSeconds());
      if (!got.ok()) {
        std::fprintf(stderr, "query %s: %s\n",
                     std::string(p[qi].label()).c_str(),
                     got.status().ToString().c_str());
        return false;
      }
      pairs += got.value().evaluated;
      if (rep == 0 &&
          io::QueryResultToJson(p[qi].label(), got.value()) != oracle[qi]) {
        std::fprintf(stderr,
                     "identity violated for query %s (num_threads=%zu)\n",
                     std::string(p[qi].label()).c_str(), num_threads);
        return false;
      }
    }
  }
  out->seconds = total.ElapsedSeconds();
  out->pairs = pairs;
  out->pairs_per_sec = static_cast<double>(pairs) / out->seconds;
  out->p50_ms = QuantileMs(latencies, 0.5);
  out->p99_ms = QuantileMs(latencies, 0.99);
  return true;
}

void PrintStats(const char* tag, const QueryStats& s) {
  std::printf("  %-16s p50=%7.3fms p99=%7.3fms  %10.0f pairs/sec\n", tag,
              s.p50_ms, s.p99_ms, s.pairs_per_sec);
}

void StatsJson(FILE* f, const char* name, const QueryStats& s,
               const char* trailer) {
  std::fprintf(f,
               "        \"%s\": { \"p50_ms\": %.6f, \"p99_ms\": %.6f, "
               "\"pairs_per_sec\": %.1f, \"pairs\": %llu, "
               "\"seconds\": %.6f }%s\n",
               name, s.p50_ms, s.p99_ms, s.pairs_per_sec,
               static_cast<unsigned long long>(s.pairs), s.seconds, trailer);
}

struct Scenario {
  size_t target_segments = 0;
  size_t actual_segments = 0;
  size_t compacted_segments = 0;
  size_t compaction_rounds = 0;
  double compaction_seconds = 0.0;
  uint64_t compaction_input_records = 0;
  QueryStats before_serial, before_parallel, after_serial, after_parallel;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_compaction.json";
  const std::string config = "SC";
  const size_t num_objects = bench::PaperScale() ? 1000 : 200;
  const size_t num_queries = bench::PaperScale() ? 48 : 16;
  const int reps = bench::PaperScale() ? 5 : 3;
  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  // Exercise the sharded walk even on small hosts; the JSON records the
  // real hardware so a <1x speedup there is read as expected, not a bug.
  const size_t parallel_workers = std::max<size_t>(4, hw);

  sim::DatasetPair pair = sim::BuildDataset(sim::FindConfig(config),
                                            num_objects, bench::BenchSeed());
  std::vector<store::IngestBatch> batches = ToBatches(pair.q);
  size_t total_records = 0;
  for (const auto& b : batches) total_records += b.rows.size();
  const size_t queries = std::min(num_queries, pair.p.size());
  std::printf(
      "config=%s objects=%zu records=%zu queries=%zu reps=%d "
      "hardware_concurrency=%zu parallel_workers=%zu\n",
      config.c_str(), num_objects, total_records, queries, reps, hw,
      parallel_workers);

  // One engine serves every scenario: the canonical merged database is
  // the same rows in the same first-appearance order no matter how many
  // segments hold them, so the oracle bytes are computed once.
  core::FtlEngine engine{core::EngineOptions{}};
  std::vector<std::string> oracle;
  traj::TrajectoryDatabase merged("merged");
  {
    auto s = store::Store::Open(TempDir("ftl_bench_compaction_oracle"),
                                store::StoreOptions{});
    if (!s.ok()) return 1;
    for (const auto& b : batches) {
      if (!s.value()->Append(b).ok()) return 1;
    }
    merged = s.value()->MaterializeAll("merged");
    Status ts = engine.Train(pair.p, merged);
    if (!ts.ok()) {
      std::fprintf(stderr, "train: %s\n", ts.ToString().c_str());
      return 1;
    }
    for (size_t qi = 0; qi < queries; ++qi) {
      auto want =
          engine.Query(pair.p[qi], merged, core::Matcher::kNaiveBayes);
      if (!want.ok()) {
        std::fprintf(stderr, "oracle query: %s\n",
                     want.status().ToString().c_str());
        return 1;
      }
      oracle.push_back(io::QueryResultToJson(pair.p[qi].label(),
                                             want.value()));
    }
  }

  const size_t targets[] = {1, 8, 64};
  std::vector<Scenario> scenarios;
  bool identical = true;
  for (size_t target : targets) {
    Scenario sc;
    sc.target_segments = target;
    std::string dir =
        TempDir("ftl_bench_compaction_" + std::to_string(target));
    store::StoreOptions so;
    so.wal_sync = store::WalSync::kNever;
    so.flush_threshold_records = total_records + 1;  // flush only on demand
    auto s = store::Store::Open(dir, so);
    if (!s.ok()) return 1;
    // Split the ingest stream into `target` explicit flush rounds.
    const size_t chunk = (batches.size() + target - 1) / target;
    for (size_t i = 0; i < batches.size(); ++i) {
      if (!s.value()->Append(batches[i]).ok()) return 1;
      if ((i + 1) % chunk == 0 || i + 1 == batches.size()) {
        if (!s.value()->Flush().ok()) return 1;
      }
    }
    sc.actual_segments = s.value()->num_segments();
    std::printf("=== %zu segment(s) (target %zu) ===\n", sc.actual_segments,
                target);

    auto snap = s.value()->Snapshot();
    if (!MeasureQueries(*snap, engine, pair.p, queries, 1, reps, oracle,
                        &sc.before_serial)) {
      identical = false;
    }
    PrintStats("serial", sc.before_serial);
    if (!MeasureQueries(*snap, engine, pair.p, queries, parallel_workers,
                        reps, oracle, &sc.before_parallel)) {
      identical = false;
    }
    PrintStats("parallel", sc.before_parallel);

    // Compact to one segment: the same rounds the background Compactor
    // would run, timed.
    Stopwatch csw;
    while (s.value()->num_segments() > 1) {
      auto cst = s.value()->CompactOnce(/*force=*/true);
      if (!cst.ok()) {
        std::fprintf(stderr, "compact: %s\n",
                     cst.status().ToString().c_str());
        return 1;
      }
      if (cst.value().inputs == 0) break;
      ++sc.compaction_rounds;
      sc.compaction_input_records += cst.value().input_records;
    }
    sc.compaction_seconds = csw.ElapsedSeconds();
    sc.compacted_segments = s.value()->num_segments();
    std::printf("  compacted to %zu segment(s) in %zu round(s), %.3fs\n",
                sc.compacted_segments, sc.compaction_rounds,
                sc.compaction_seconds);

    auto after = s.value()->Snapshot();
    if (!MeasureQueries(*after, engine, pair.p, queries, 1, reps, oracle,
                        &sc.after_serial)) {
      identical = false;
    }
    PrintStats("serial/compact", sc.after_serial);
    if (!MeasureQueries(*after, engine, pair.p, queries, parallel_workers,
                        reps, oracle, &sc.after_parallel)) {
      identical = false;
    }
    PrintStats("parallel/compact", sc.after_parallel);

    scenarios.push_back(sc);
    snap.reset();
    after.reset();
    s.value().reset();
    std::filesystem::remove_all(dir);
  }

  std::printf("identity: responses %s across every mode\n",
              identical ? "byte-identical to the merged database"
                        : "DIVERGED");

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"config\": \"%s\",\n"
               "  \"num_objects\": %zu,\n"
               "  \"num_records\": %zu,\n"
               "  \"num_queries\": %zu,\n"
               "  \"reps\": %d,\n"
               "  \"hardware_concurrency\": %zu,\n"
               "  \"parallel_workers\": %zu,\n"
               "  \"scenarios\": [\n",
               config.c_str(), num_objects, total_records, queries, reps, hw,
               parallel_workers);
  for (size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& sc = scenarios[i];
    std::fprintf(f,
                 "    {\n"
                 "      \"target_segments\": %zu,\n"
                 "      \"actual_segments\": %zu,\n"
                 "      \"before_compaction\": {\n",
                 sc.target_segments, sc.actual_segments);
    StatsJson(f, "serial", sc.before_serial, ",");
    StatsJson(f, "parallel", sc.before_parallel, "");
    std::fprintf(f,
                 "      },\n"
                 "      \"parallel_speedup_x\": %.3f,\n"
                 "      \"compaction\": { \"rounds\": %zu, "
                 "\"seconds\": %.6f, \"input_records\": %llu, "
                 "\"segments_after\": %zu },\n"
                 "      \"after_compaction\": {\n",
                 sc.before_serial.seconds / sc.before_parallel.seconds,
                 sc.compaction_rounds, sc.compaction_seconds,
                 static_cast<unsigned long long>(sc.compaction_input_records),
                 sc.compacted_segments);
    StatsJson(f, "serial", sc.after_serial, ",");
    StatsJson(f, "parallel", sc.after_parallel, "");
    std::fprintf(f, "      }\n    }%s\n",
                 i + 1 < scenarios.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"byte_identical\": %s,\n"
               "  \"metrics\": %s\n"
               "}\n",
               identical ? "true" : "false", obs::DumpJson().c_str());
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return identical ? 0 : 2;
}
