// Ingest-path benchmark for the crash-safe store (DESIGN.md §12):
//
//   * ingest: always / interval / never — append the whole candidate
//     database one batch per trajectory under each WAL sync policy,
//     reporting records/sec and the flush/segment counts. This is the
//     durability dial quantified: `always` pays one fsync per ack,
//     `interval` amortizes it, `never` is the upper bound.
//   * recovery — crash-drop a store whose WAL holds every record (no
//     flush), reopen, and report WAL replay records/sec plus the
//     recovery wall time (the serve-daemon warm-up cost).
//   * identity — the acceptance gate: on a recovered multi-segment
//     store, every query response must serialize byte-identically to
//     querying one merged database. The process exits non-zero when it
//     does not, so CI fails loudly rather than recording a lie.
//
// Emits BENCH_ingest.json (path overridable via argv[1]).

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ftl/ftl.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace {

using namespace ftl;

std::string TempDir(const std::string& name) {
  std::string dir = (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<store::IngestBatch> ToBatches(const traj::TrajectoryDatabase& db) {
  std::vector<store::IngestBatch> batches;
  batches.reserve(db.size());
  for (const traj::Trajectory& t : db) {
    store::IngestBatch b;
    b.rows.reserve(t.size());
    for (const traj::Record& r : t.records()) {
      b.rows.push_back(store::IngestRow{t.label(), t.owner(), r.t,
                                        r.location.x, r.location.y});
    }
    batches.push_back(std::move(b));
  }
  return batches;
}

struct IngestResult {
  std::string policy;
  double seconds = 0.0;
  double records_per_sec = 0.0;
  uint64_t segments = 0;
  uint64_t wal_bytes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_ingest.json";
  const std::string config = "SC";
  const size_t num_objects = bench::PaperScale() ? 1000 : 200;
  const size_t num_queries = bench::PaperScale() ? 64 : 24;

  sim::DatasetPair pair = sim::BuildDataset(sim::FindConfig(config),
                                            num_objects, bench::BenchSeed());
  std::vector<store::IngestBatch> batches = ToBatches(pair.q);
  size_t total_records = 0;
  for (const auto& b : batches) total_records += b.rows.size();
  std::printf("config=%s objects=%zu batches=%zu records=%zu\n", config.c_str(),
              num_objects, batches.size(), total_records);

  // ---------------------------------------------------- ingest throughput
  const store::WalSync policies[] = {
      store::WalSync::kAlways, store::WalSync::kInterval,
      store::WalSync::kNever};
  std::vector<IngestResult> ingest;
  for (store::WalSync sync : policies) {
    std::string dir = TempDir(std::string("ftl_bench_ingest_") +
                              store::WalSyncName(sync));
    store::StoreOptions so;
    so.wal_sync = sync;
    so.flush_threshold_records = total_records / 4 + 1;  // a few flushes
    auto s = store::Store::Open(dir, so);
    if (!s.ok()) {
      std::fprintf(stderr, "open: %s\n", s.status().ToString().c_str());
      return 1;
    }
    Stopwatch sw;
    for (const auto& b : batches) {
      Status st = s.value()->Append(b);
      if (!st.ok()) {
        std::fprintf(stderr, "append: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    IngestResult r;
    r.policy = store::WalSyncName(sync);
    r.seconds = sw.ElapsedSeconds();
    r.records_per_sec = static_cast<double>(total_records) / r.seconds;
    r.segments = s.value()->num_segments();
    r.wal_bytes = s.value()->wal_bytes();
    std::printf("ingest %-8s %8.0f records/sec  (%.3fs, %llu segments)\n",
                r.policy.c_str(), r.records_per_sec, r.seconds,
                static_cast<unsigned long long>(r.segments));
    ingest.push_back(r);
    std::filesystem::remove_all(dir);
  }

  // ---------------------------------------------------- recovery replay
  std::string rec_dir = TempDir("ftl_bench_ingest_recovery");
  {
    store::StoreOptions so;
    so.wal_sync = store::WalSync::kNever;  // everything stays in the WAL
    auto s = store::Store::Open(rec_dir, so);
    if (!s.ok()) return 1;
    for (const auto& b : batches) {
      if (!s.value()->Append(b).ok()) return 1;
    }
    // Crash: the unique_ptr drops with no flush and no clean close.
  }
  store::RecoveryInfo rec;
  double recovery_seconds = 0.0;
  {
    store::StoreOptions so;
    so.wal_sync = store::WalSync::kNever;
    Stopwatch sw;
    auto s = store::Store::Open(rec_dir, so, &rec);
    recovery_seconds = sw.ElapsedSeconds();
    if (!s.ok()) {
      std::fprintf(stderr, "recover: %s\n", s.status().ToString().c_str());
      return 1;
    }
    if (s.value()->total_records() != total_records) {
      std::fprintf(stderr, "recovery lost records: %zu != %zu\n",
                   s.value()->total_records(), total_records);
      return 2;
    }
  }
  double replay_rps =
      static_cast<double>(rec.replayed_records) / recovery_seconds;
  std::printf("recovery %.3fs: replayed %llu batches / %llu records "
              "(%8.0f records/sec)\n",
              recovery_seconds,
              static_cast<unsigned long long>(rec.replayed_batches),
              static_cast<unsigned long long>(rec.replayed_records),
              replay_rps);
  std::filesystem::remove_all(rec_dir);

  // ---------------------------------------------------- identity gate
  std::string id_dir = TempDir("ftl_bench_ingest_identity");
  bool identical = true;
  size_t checked = 0;
  {
    store::StoreOptions so;
    so.wal_sync = store::WalSync::kNever;
    so.flush_threshold_records = total_records / 6 + 1;  // multi-segment
    auto s = store::Store::Open(id_dir, so);
    if (!s.ok()) return 1;
    for (const auto& b : batches) {
      if (!s.value()->Append(b).ok()) return 1;
    }
    traj::TrajectoryDatabase merged = s.value()->MaterializeAll("merged");
    core::FtlEngine engine{core::EngineOptions{}};
    Status ts = engine.Train(pair.p, merged);
    if (!ts.ok()) {
      std::fprintf(stderr, "train: %s\n", ts.ToString().c_str());
      return 1;
    }
    auto snap = s.value()->Snapshot();
    for (size_t qi = 0; qi < pair.p.size() && checked < num_queries; ++qi) {
      auto want =
          engine.Query(pair.p[qi], merged, core::Matcher::kNaiveBayes);
      auto got = snap->Query(engine, pair.p[qi], core::Matcher::kNaiveBayes,
                             nullptr);
      if (want.ok() != got.ok()) {
        identical = false;
        break;
      }
      if (!want.ok()) continue;
      ++checked;
      if (io::QueryResultToJson(pair.p[qi].label(), got.value()) !=
          io::QueryResultToJson(pair.p[qi].label(), want.value())) {
        std::fprintf(stderr, "identity violated for query %s\n",
                     std::string(pair.p[qi].label()).c_str());
        identical = false;
        break;
      }
    }
    std::printf("identity: %zu multi-segment query responses %s\n", checked,
                identical ? "byte-identical to the merged database"
                          : "DIVERGED");
  }
  std::filesystem::remove_all(id_dir);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"config\": \"%s\",\n"
               "  \"num_objects\": %zu,\n"
               "  \"num_batches\": %zu,\n"
               "  \"num_records\": %zu,\n"
               "  \"ingest\": {\n",
               config.c_str(), num_objects, batches.size(), total_records);
  for (size_t i = 0; i < ingest.size(); ++i) {
    const IngestResult& r = ingest[i];
    std::fprintf(f,
                 "    \"%s\": { \"seconds\": %.6f, "
                 "\"records_per_sec\": %.1f, \"segments\": %llu, "
                 "\"wal_bytes\": %llu }%s\n",
                 r.policy.c_str(), r.seconds, r.records_per_sec,
                 static_cast<unsigned long long>(r.segments),
                 static_cast<unsigned long long>(r.wal_bytes),
                 i + 1 < ingest.size() ? "," : "");
  }
  std::fprintf(f,
               "  },\n"
               "  \"recovery\": {\n"
               "    \"seconds\": %.6f,\n"
               "    \"replayed_batches\": %llu,\n"
               "    \"replayed_records\": %llu,\n"
               "    \"replay_records_per_sec\": %.1f\n"
               "  },\n"
               "  \"identity\": { \"queries\": %zu, "
               "\"byte_identical\": %s },\n"
               "  \"metrics\": %s\n"
               "}\n",
               recovery_seconds,
               static_cast<unsigned long long>(rec.replayed_batches),
               static_cast<unsigned long long>(rec.replayed_records),
               replay_rps, checked, identical ? "true" : "false",
               obs::DumpJson().c_str());
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return identical ? 0 : 2;
}
