#ifndef FTL_BASELINES_SIMILARITY_H_
#define FTL_BASELINES_SIMILARITY_H_

/// \file similarity.h
/// Classical trajectory similarity measures used as comparison baselines
/// in the paper's Section VII-E: Point-to-Trajectory (P2T), Dynamic Time
/// Warping (DTW), Longest Common Sub-Sequence (LCSS), and Edit Distance
/// on Real sequence (EDR).
///
/// All measures implement a common *distance* interface: smaller values
/// mean more similar. Similarity-flavoured measures (LCSS) are converted
/// to a normalized distance.

#include <memory>
#include <string>

#include "traj/trajectory.h"

namespace ftl::baselines {

/// Abstract trajectory distance.
class SimilarityMeasure {
 public:
  virtual ~SimilarityMeasure() = default;

  /// Distance between two trajectories; >= 0; smaller = more similar.
  virtual double Distance(const traj::Trajectory& a,
                          const traj::Trajectory& b) const = 0;

  /// Short display name ("DTW", "LCSS", ...).
  virtual std::string Name() const = 0;
};

/// Point-to-Trajectory distance: mean over records of `a` of the nearest
/// spatial distance to any record of `b`. Directed (query -> candidate),
/// matching its use as a query-scoring baseline.
class P2TDistance : public SimilarityMeasure {
 public:
  double Distance(const traj::Trajectory& a,
                  const traj::Trajectory& b) const override;
  std::string Name() const override { return "P2T"; }
};

/// Dynamic Time Warping with squared-Euclidean ground cost
/// (Yi, Jagadish & Faloutsos, ICDE 1998). Optional Sakoe-Chiba band:
/// `band` < 0 disables the constraint.
class DtwDistance : public SimilarityMeasure {
 public:
  explicit DtwDistance(int band = -1) : band_(band) {}
  double Distance(const traj::Trajectory& a,
                  const traj::Trajectory& b) const override;
  std::string Name() const override { return "DTW"; }

 private:
  int band_;
};

/// Longest Common Sub-Sequence similarity (Vlachos, Gunopulos & Kollios,
/// ICDE 2002), converted to distance 1 − LCSS/min(|a|, |b|).
/// Two records match when their spatial distance <= epsilon and their
/// index offset <= delta (delta < 0 disables the index constraint).
class LcssDistance : public SimilarityMeasure {
 public:
  LcssDistance(double epsilon_meters, int delta = -1)
      : epsilon_(epsilon_meters), delta_(delta) {}
  double Distance(const traj::Trajectory& a,
                  const traj::Trajectory& b) const override;
  std::string Name() const override { return "LCSS"; }

 private:
  double epsilon_;
  int delta_;
};

/// Edit Distance on Real sequence (Chen, Özsu & Oria, SIGMOD 2005),
/// normalized by max(|a|, |b|). Records match when their spatial
/// distance <= epsilon.
class EdrDistance : public SimilarityMeasure {
 public:
  explicit EdrDistance(double epsilon_meters) : epsilon_(epsilon_meters) {}
  double Distance(const traj::Trajectory& a,
                  const traj::Trajectory& b) const override;
  std::string Name() const override { return "EDR"; }

 private:
  double epsilon_;
};

}  // namespace ftl::baselines

#endif  // FTL_BASELINES_SIMILARITY_H_
