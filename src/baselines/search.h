#ifndef FTL_BASELINES_SEARCH_H_
#define FTL_BASELINES_SEARCH_H_

/// \file search.h
/// Top-k similarity search over a trajectory database — how the paper
/// turns each similarity measure into an FTL-style candidate retriever
/// (Section VII-E: "outputs for each query are ranked by similarity
/// values ... we consider the top 10 candidates").

#include <cstddef>
#include <vector>

#include "baselines/similarity.h"
#include "traj/database.h"

namespace ftl::baselines {

/// One search hit.
struct SearchHit {
  size_t index = 0;      ///< position in the database
  double distance = 0.0; ///< measure value (smaller = more similar)
};

/// Returns the k nearest database trajectories to `query` under
/// `measure`, ascending by distance (ties by index).
std::vector<SearchHit> TopK(const traj::Trajectory& query,
                            const traj::TrajectoryDatabase& db,
                            const SimilarityMeasure& measure, size_t k);

/// True iff any of `hits` is owned by the same person as `query`
/// (ground-truth check used by the precision experiments).
bool ContainsOwner(const std::vector<SearchHit>& hits,
                   const traj::TrajectoryDatabase& db,
                   traj::OwnerId owner);

}  // namespace ftl::baselines

#endif  // FTL_BASELINES_SEARCH_H_
