#include "baselines/search.h"

#include <algorithm>

namespace ftl::baselines {

std::vector<SearchHit> TopK(const traj::Trajectory& query,
                            const traj::TrajectoryDatabase& db,
                            const SimilarityMeasure& measure, size_t k) {
  std::vector<SearchHit> hits;
  hits.reserve(db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    hits.push_back(SearchHit{i, measure.Distance(query, db[i])});
  }
  size_t keep = std::min(k, hits.size());
  std::partial_sort(hits.begin(), hits.begin() + static_cast<long>(keep),
                    hits.end(), [](const SearchHit& a, const SearchHit& b) {
                      if (a.distance != b.distance) {
                        return a.distance < b.distance;
                      }
                      return a.index < b.index;
                    });
  hits.resize(keep);
  return hits;
}

bool ContainsOwner(const std::vector<SearchHit>& hits,
                   const traj::TrajectoryDatabase& db,
                   traj::OwnerId owner) {
  for (const auto& h : hits) {
    if (db[h.index].owner() == owner) return true;
  }
  return false;
}

}  // namespace ftl::baselines
