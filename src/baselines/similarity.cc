#include "baselines/similarity.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace ftl::baselines {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double SpatialDistance(const traj::Record& a, const traj::Record& b) {
  return geo::Distance(a.location, b.location);
}

}  // namespace

double P2TDistance::Distance(const traj::Trajectory& a,
                             const traj::Trajectory& b) const {
  if (a.empty() || b.empty()) return kInf;
  double acc = 0.0;
  for (const auto& ra : a.records()) {
    double best = kInf;
    for (const auto& rb : b.records()) {
      best = std::min(best, geo::DistanceSquared(ra.location, rb.location));
    }
    acc += std::sqrt(best);
  }
  return acc / static_cast<double>(a.size());
}

double DtwDistance::Distance(const traj::Trajectory& a,
                             const traj::Trajectory& b) const {
  size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return kInf;
  // Two-row DP over squared ground costs; result is the square root of
  // the accumulated cost (classical DTW on point sequences).
  std::vector<double> prev(m + 1, kInf), cur(m + 1, kInf);
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    cur.assign(m + 1, kInf);
    size_t lo = 1, hi = m;
    if (band_ >= 0) {
      // Sakoe-Chiba band scaled to the rectangular case.
      double ratio = static_cast<double>(m) / static_cast<double>(n);
      auto center = static_cast<int64_t>(std::llround(ratio * i));
      lo = static_cast<size_t>(std::max<int64_t>(1, center - band_));
      hi = static_cast<size_t>(
          std::min<int64_t>(static_cast<int64_t>(m), center + band_));
    }
    for (size_t j = lo; j <= hi; ++j) {
      double cost = geo::DistanceSquared(a[i - 1].location, b[j - 1].location);
      double best = std::min({prev[j], cur[j - 1], prev[j - 1]});
      cur[j] = cost + best;
    }
    std::swap(prev, cur);
  }
  return std::sqrt(prev[m]);
}

double LcssDistance::Distance(const traj::Trajectory& a,
                              const traj::Trajectory& b) const {
  size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return 1.0;
  std::vector<int> prev(m + 1, 0), cur(m + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    cur.assign(m + 1, 0);
    for (size_t j = 1; j <= m; ++j) {
      bool index_ok =
          delta_ < 0 ||
          std::llabs(static_cast<long long>(i) - static_cast<long long>(j)) <=
              delta_;
      if (index_ok && SpatialDistance(a[i - 1], b[j - 1]) <= epsilon_) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  double lcss = static_cast<double>(prev[m]);
  return 1.0 - lcss / static_cast<double>(std::min(n, m));
}

double EdrDistance::Distance(const traj::Trajectory& a,
                             const traj::Trajectory& b) const {
  size_t n = a.size(), m = b.size();
  if (n == 0 && m == 0) return 0.0;
  if (n == 0 || m == 0) return 1.0;
  std::vector<int> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      int sub =
          SpatialDistance(a[i - 1], b[j - 1]) <= epsilon_ ? 0 : 1;
      cur[j] = std::min({prev[j - 1] + sub, prev[j] + 1, cur[j - 1] + 1});
    }
    std::swap(prev, cur);
  }
  return static_cast<double>(prev[m]) /
         static_cast<double>(std::max(n, m));
}

}  // namespace ftl::baselines
