#ifndef FTL_STORE_STORE_H_
#define FTL_STORE_STORE_H_

/// \file store.h
/// The LSM-flavored multi-segment trajectory store: crash-safe
/// incremental ingest for the candidate side of the linkage engine.
///
/// Write path: Append() frames the batch into the write-ahead log
/// (store/wal.h, fsync policy WalSync), then applies it to the
/// in-memory MutableSegment, where queries see it immediately. When the
/// memtable crosses a size/age threshold it is flushed to an immutable
/// FTB segment (io/ftb.h) and the MANIFEST is atomically swapped
/// (store/manifest.h) to name the new segment and a fresh WAL; the old
/// WAL is then deleted.
///
/// Recovery: Recover() loads the manifest, mmaps the live segments,
/// truncates any torn WAL tail, replays the surviving frames into the
/// memtable, and deletes orphan files from interrupted flushes. The
/// recovered state is always a *prefix* of the appended batches — a
/// batch is either fully restored or fully dropped, never partially —
/// and with WalSync::kAlways every acknowledged Append survives.
///
/// Read path: Snapshot() returns an immutable StoreSnapshot that
/// answers queries by fanning out over every segment plus the memtable
/// and merging, **byte-identically** to querying one merged database
/// (docs: DESIGN.md §12 has the argument; tests/store_chaos_test.cc
/// enforces it at every failpoint).
///
/// Thread-safety: all public Store methods are safe to call
/// concurrently; writes serialize on an internal mutex and snapshots
/// are immutable.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/blocking.h"
#include "core/engine.h"
#include "store/manifest.h"
#include "store/memtable.h"
#include "store/wal.h"
#include "traj/database.h"
#include "traj/flat_database.h"
#include "util/status.h"

namespace ftl::store {

struct StoreOptions {
  /// WAL durability policy (`--wal-sync`), see store/wal.h.
  WalSync wal_sync = WalSync::kInterval;
  int64_t wal_sync_interval_ms = 50;

  /// Flush the memtable to an immutable FTB segment once it holds this
  /// many records.
  size_t flush_threshold_records = 100000;

  /// Also flush when the oldest memtable record is older than this
  /// (seconds; 0 disables the age trigger). Checked on Append.
  double flush_max_age_seconds = 0.0;

  /// Admission control: when flushing fails (e.g. disk fault) the
  /// memtable keeps absorbing appends until it reaches
  /// backpressure_factor × flush_threshold_records, after which
  /// Append returns OutOfRange (HTTP 503 / exit code 5) until a flush
  /// succeeds.
  double backpressure_factor = 4.0;

  /// Background compaction trigger (`--compact-trigger`): once the
  /// store holds at least this many immutable segments, CompactionDue()
  /// reports true and a store::Compactor (or an explicit CompactOnce
  /// call) merges a window of them. 0 disables compaction entirely —
  /// the store then behaves exactly like the pre-compaction store.
  size_t compact_trigger = 0;

  /// Most segments merged per compaction round
  /// (`--compact-max-segments`). Each round replaces one contiguous
  /// window of up to this many manifest-adjacent segments with a
  /// single merged segment; clamped to at least 2.
  size_t compact_max_segments = 8;

  /// Candidate generation for snapshot queries (`--blocking`). When
  /// not kOff, every immutable segment gets a BlockingIndex built at
  /// flush/recovery time and snapshot queries score only the segment
  /// survivors (kGuaranteed preserves accept sets byte-identically;
  /// kAggressive applies the heuristic span/co-visitation blockers).
  /// The memtable and the cross-segment overlay are always scored
  /// exhaustively — they are small and churn too fast to index.
  core::BlockingMode blocking_mode = core::BlockingMode::kOff;
  core::BlockingOptions blocking;
};

/// What Recover() did, for operator output and tests.
struct RecoveryInfo {
  uint64_t generation = 0;         ///< manifest generation after recovery
  uint64_t segments = 0;           ///< live immutable segments loaded
  uint64_t replayed_batches = 0;   ///< WAL batches replayed
  uint64_t replayed_records = 0;   ///< rows restored into the memtable
  uint64_t torn_bytes_dropped = 0; ///< torn-tail bytes truncated from the WAL
  uint64_t orphans_removed = 0;    ///< unreferenced files deleted
  double seconds = 0.0;            ///< wall time of the whole recovery
};

/// What one CompactOnce() round did, for operator output, metrics and
/// tests. inputs == 0 means no round ran (nothing was due).
struct CompactionStats {
  uint64_t generation = 0;   ///< manifest generation after the commit
  size_t inputs = 0;         ///< segments merged away this round
  size_t input_records = 0;  ///< records across the merged inputs
  size_t output_records = 0; ///< records in the merged output segment
  size_t output_labels = 0;  ///< canonical labels in the output segment
  double seconds = 0.0;      ///< wall time of the round
};

/// An immutable, consistent view of the store at one version: the
/// segment set, a copy of the memtable, and the query plan that makes
/// multi-segment results byte-identical to a single merged database.
///
/// The canonical merged database is defined as: every label in
/// first-appearance order (segments oldest-first, then the memtable),
/// with a label's records merged across all the segments it spans,
/// time-sorted with ingest order breaking ties, and its owner the
/// first non-unknown owner in ingest order. MaterializeAll() *is* that
/// database; Query() reproduces querying it byte-for-byte without
/// materializing anything.
class StoreSnapshot {
 public:
  static constexpr size_t npos = static_cast<size_t>(-1);

  /// Canonical trajectory count (the merged |Q|).
  size_t size() const { return canon_.size(); }
  bool empty() const { return canon_.empty(); }

  /// Total records across all canonical trajectories.
  size_t total_records() const { return total_records_; }

  /// Manifest generation and store version this snapshot reflects.
  uint64_t generation() const { return generation_; }
  uint64_t version() const { return version_; }

  size_t num_segments() const { return segments_.size(); }

  /// Global index of `label` in the canonical order, or npos.
  size_t Find(std::string_view label) const;

  /// Label of canonical trajectory `g`.
  std::string_view label(size_t g) const;

  /// AoS copy of canonical trajectory `g` (records merged across
  /// segments as defined above).
  traj::Trajectory Materialize(size_t g) const;

  /// The full canonical merged database. This is the oracle the chaos
  /// tests compare against, and what `ftl serve` trains the engine on.
  traj::TrajectoryDatabase MaterializeAll(const std::string& name) const;

  /// Scores `query` against the whole canonical database: fans out one
  /// engine sub-query per segment run (SoA, zero-copy over the mmap)
  /// plus the memtable and the cross-segment overlay, concatenates in
  /// canonical order, and re-applies the engine's stable score sort.
  /// Byte-identical to engine.Query(query, MaterializeAll(), matcher)
  /// — candidate indices are canonical global indices. Requires
  /// engine.options().evaluate_non_overlapping (the default);
  /// FailedPrecondition otherwise. `qopts` may be null; a fired
  /// deadline yields a truncated prefix of the canonical order.
  ///
  /// `num_threads > 1` shards the fan-out: the plan is cut into
  /// per-segment candidate chunks that score in parallel on that many
  /// workers (each with its own core::QueryScratch), and the merge
  /// re-assembles chunk results in canonical order — complete results
  /// are byte-identical to the serial walk for any thread count, and
  /// truncated results are still a canonical-order prefix (DESIGN.md
  /// §14). Callers already parallel at a coarser grain (serve workers)
  /// should keep workers × num_threads within the machine.
  Result<core::QueryResult> Query(const core::FtlEngine& engine,
                                  const traj::Trajectory& query,
                                  core::Matcher matcher,
                                  const core::QueryOptions* qopts,
                                  size_t num_threads = 1) const;

  /// Scores `query` against the named candidates only (the /v1/rank
  /// path). Evaluation order is the request order; returned indices
  /// are canonical global indices. NotFound for an unknown label.
  Result<core::QueryResult> Rank(const core::FtlEngine& engine,
                                 const traj::Trajectory& query,
                                 const std::vector<std::string>& candidates,
                                 core::Matcher matcher) const;

 private:
  friend class Store;

  /// Where one canonical trajectory's rows live. Sources are numbered
  /// segments-first (0..num_segments-1), then the memtable.
  struct SourceRef {
    uint32_t source = 0;
    uint32_t local = 0;
  };

  /// One canonical trajectory: every (source, local) contribution in
  /// ingest order. Single-element for labels that never span a flush.
  struct CanonEntry {
    std::vector<SourceRef> contribs;
  };

  /// One step of a source's query plan: either a list of plain local
  /// indices (single-home labels, queried straight off the source), or
  /// a list of overlay-database indices (labels whose rows span
  /// sources, queried off the pre-merged overlay at their canonical
  /// first-appearance position).
  struct Run {
    bool overlay = false;
    std::vector<size_t> indices;
  };

  static std::shared_ptr<const StoreSnapshot> Build(
      const std::vector<std::shared_ptr<const traj::FlatDatabase>>& segments,
      const MutableSegment& memtable, uint64_t generation, uint64_t version,
      std::vector<std::shared_ptr<const core::BlockingIndex>> segment_indices =
          {},
      core::BlockingMode blocking_mode = core::BlockingMode::kOff);

  StoreSnapshot() = default;

  std::vector<std::shared_ptr<const traj::FlatDatabase>> segments_;
  /// Per-segment candidate-generation indices (parallel to segments_;
  /// empty when blocking_mode_ == kOff). Query() intersects each plain
  /// segment run with the index survivors; overlay and memtable runs
  /// stay exhaustive.
  std::vector<std::shared_ptr<const core::BlockingIndex>> segment_indices_;
  core::BlockingMode blocking_mode_ = core::BlockingMode::kOff;
  traj::TrajectoryDatabase memtable_db_;  ///< snapshot copy of the memtable
  traj::TrajectoryDatabase overlay_db_;   ///< pre-merged multi-home labels

  std::vector<CanonEntry> canon_;                    ///< canonical order
  std::unordered_map<std::string, size_t> by_label_; ///< label -> global
  std::vector<std::vector<size_t>> global_of_;       ///< [source][local] -> g
  std::vector<size_t> overlay_global_;               ///< overlay idx -> g
  std::vector<std::vector<Run>> plans_;              ///< [source] -> steps

  size_t total_records_ = 0;
  uint64_t generation_ = 0;
  uint64_t version_ = 0;
};

/// The store. Construction is two-phase so a server can bind its
/// listen socket (and answer /readyz 503) before the possibly-long
/// recovery runs:
///
///   auto store = Store::Create(dir, options);   // no IO yet
///   ... start serving 503s ...
///   RecoveryInfo info;
///   FTL_RETURN_NOT_OK(store->Recover(&info));   // WAL replay etc.
///   ... mark ready ...
///
/// Store::Open() is the one-shot convenience doing both.
class Store {
 public:
  static std::unique_ptr<Store> Create(std::string dir, StoreOptions options);

  /// Create + Recover.
  static Result<std::unique_ptr<Store>> Open(const std::string& dir,
                                             const StoreOptions& options,
                                             RecoveryInfo* info = nullptr);

  /// Loads the manifest (creating a fresh one for an empty directory),
  /// mmaps live segments, repairs + replays the WAL into the memtable,
  /// and removes orphan files. Until this succeeds every other method
  /// returns FailedPrecondition.
  Status Recover(RecoveryInfo* info = nullptr);

  /// Durably appends one batch, then makes it visible to queries.
  /// Atomic per batch. May flush inline first (size/age trigger);
  /// OutOfRange under backpressure (memtable over the cap with flushes
  /// failing). On any error the batch is not applied — but its WAL
  /// frame may already be (partially or fully) on disk, so a retried
  /// append is at-least-once across a crash.
  Status Append(const IngestBatch& batch);

  /// Forces a memtable flush to an immutable segment now (no-op when
  /// the memtable is empty).
  Status Flush();

  /// True when the segment count has reached options().compact_trigger
  /// (and compaction is enabled). The store::Compactor polls this.
  bool CompactionDue() const;

  /// Runs one compaction round: picks the cheapest *contiguous* window
  /// of up to compact_max_segments manifest-adjacent segments
  /// (contiguity keeps the canonical first-appearance order — and so
  /// query bytes — unchanged; DESIGN.md §14), merges them into one
  /// segment via the snapshot merge semantics, writes it behind a
  /// compact-NNNNNN.tmp temp name (failpoint "store.compact.write"),
  /// validates it end-to-end, then commits by renaming it into place
  /// and atomically swapping a manifest that splices the window
  /// (failpoint "store.compact.swap"). The WAL and memtable are
  /// untouched. A crash anywhere leaves either the old or the new
  /// segment set live; recovery GCs any orphaned output. Returns
  /// inputs == 0 when nothing was due. `force` compacts even when the
  /// trigger is unmet/disabled (tests, `ftl ingest` final packing), as
  /// long as at least two segments exist.
  Result<CompactionStats> CompactOnce(bool force = false);

  /// An immutable view of the current state (cached; rebuilt only
  /// after mutations).
  std::shared_ptr<const StoreSnapshot> Snapshot() const;

  /// Snapshot()->MaterializeAll(name).
  traj::TrajectoryDatabase MaterializeAll(const std::string& name) const;

  const std::string& dir() const { return dir_; }
  const StoreOptions& options() const { return options_; }

  bool recovered() const;
  /// True after a flush committed its manifest on disk but failed to
  /// switch in memory: appends are refused (reopen to recover).
  bool broken() const;
  uint64_t generation() const;
  size_t num_segments() const;
  size_t memtable_records() const;
  size_t total_records() const;
  uint64_t wal_bytes() const;

 private:
  Store(std::string dir, StoreOptions options);

  Status FlushLocked();
  Status RecoverLocked(RecoveryInfo* info);

  const std::string dir_;
  const StoreOptions options_;

  mutable std::mutex mu_;
  bool recovered_ = false;
  bool broken_ = false;
  Manifest manifest_;
  std::vector<std::shared_ptr<const traj::FlatDatabase>> segments_;
  /// Parallel to segments_ when options_.blocking_mode != kOff (empty
  /// otherwise): the BlockingIndex built for each segment at
  /// flush/recovery time.
  std::vector<std::shared_ptr<const core::BlockingIndex>> segment_indices_;
  MutableSegment memtable_;
  WalWriter wal_;
  uint64_t version_ = 0;  ///< bumps on every visible mutation

  mutable std::shared_ptr<const StoreSnapshot> snapshot_;  // cache
  mutable uint64_t snapshot_version_ = ~0ull;
};

}  // namespace ftl::store

#endif  // FTL_STORE_STORE_H_
