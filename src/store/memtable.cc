#include "store/memtable.h"

namespace ftl::store {

void MutableSegment::Apply(const IngestBatch& batch) {
  if (entries_.empty() && !batch.rows.empty()) age_.Reset();
  for (const IngestRow& row : batch.rows) {
    auto [it, inserted] = by_label_.emplace(row.label, entries_.size());
    if (inserted) {
      Entry e;
      e.label = row.label;
      entries_.push_back(std::move(e));
    }
    Entry& entry = entries_[it->second];
    if (entry.owner == traj::kUnknownOwner) entry.owner = row.owner;
    entry.records.push_back(traj::Record{{row.x, row.y}, row.t});
    ++num_records_;
  }
}

traj::TrajectoryDatabase MutableSegment::ToDatabase(
    const std::string& name) const {
  traj::TrajectoryDatabase db(name);
  for (const Entry& e : entries_) {
    // Labels are unique by construction, so Add cannot fail.
    (void)db.Add(traj::Trajectory(e.label, e.owner, e.records));
  }
  return db;
}

void MutableSegment::Clear() {
  entries_.clear();
  by_label_.clear();
  num_records_ = 0;
}

}  // namespace ftl::store
