#include "store/manifest.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>

#include "io/file_util.h"
#include "io/ftb.h"
#include "util/string_util.h"

namespace ftl::store {

namespace {

constexpr char kHeaderLine[] = "FTLMANIFEST v1";

Status Corrupt(const std::string& detail) {
  return Status::IOError("corrupt manifest: " + detail);
}

}  // namespace

std::string SegmentFileName(uint64_t gen) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06" PRIu64 ".ftb", gen);
  return buf;
}

std::string WalFileName(uint64_t gen) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06" PRIu64 ".log", gen);
  return buf;
}

std::string CompactTempFileName(uint64_t gen) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "compact-%06" PRIu64 ".tmp", gen);
  return buf;
}

std::string ManifestPath(const std::string& dir) { return dir + "/MANIFEST"; }

std::string EncodeManifest(const Manifest& m) {
  std::string out = kHeaderLine;
  out += '\n';
  out += "generation " + std::to_string(m.generation) + '\n';
  out += "wal " + m.wal + '\n';
  for (const std::string& seg : m.segments) {
    out += "segment " + seg + '\n';
  }
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x",
                io::Crc32(out.data(), out.size()));
  out += "crc ";
  out += crc;
  out += '\n';
  return out;
}

Result<Manifest> DecodeManifest(std::string_view text) {
  std::vector<std::string> lines = Split(text, '\n');
  // A well-formed file ends in '\n', so Split leaves one trailing
  // empty field.
  if (lines.empty() || !lines.back().empty()) {
    return Corrupt("missing trailing newline");
  }
  lines.pop_back();
  if (lines.size() < 4) return Corrupt("too few lines");
  if (lines[0] != kHeaderLine) return Corrupt("bad header line");
  const std::string& crc_line = lines.back();
  if (!StartsWith(crc_line, "crc ")) return Corrupt("missing crc line");
  size_t crc_pos = text.rfind("crc ");
  uint32_t want_crc = 0;
  {
    const std::string hex = crc_line.substr(4);
    if (hex.size() != 8) return Corrupt("bad crc field");
    char* end = nullptr;
    unsigned long v = std::strtoul(hex.c_str(), &end, 16);
    if (end == nullptr || *end != '\0') return Corrupt("bad crc field");
    want_crc = static_cast<uint32_t>(v);
  }
  if (io::Crc32(text.data(), crc_pos) != want_crc) {
    return Corrupt("crc mismatch");
  }
  Manifest m;
  bool saw_generation = false;
  bool saw_wal = false;
  for (size_t i = 1; i + 1 < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (StartsWith(line, "generation ")) {
      if (saw_generation) return Corrupt("duplicate generation line");
      int64_t v = 0;
      if (!ParseInt64(line.substr(11), &v) || v < 0) {
        return Corrupt("bad generation");
      }
      m.generation = static_cast<uint64_t>(v);
      saw_generation = true;
    } else if (StartsWith(line, "wal ")) {
      if (saw_wal) return Corrupt("duplicate wal line");
      m.wal = line.substr(4);
      if (m.wal.empty()) return Corrupt("empty wal name");
      saw_wal = true;
    } else if (StartsWith(line, "segment ")) {
      std::string seg = line.substr(8);
      if (seg.empty()) return Corrupt("empty segment name");
      m.segments.push_back(std::move(seg));
    } else {
      return Corrupt("unknown line '" + line + "'");
    }
  }
  if (!saw_generation) return Corrupt("missing generation");
  if (!saw_wal) return Corrupt("missing wal");
  return m;
}

Result<Manifest> ReadManifest(const std::string& dir) {
  const std::string path = ManifestPath(dir);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    return Status::NotFound("no manifest in " + dir);
  }
  auto text = io::ReadTextFile(path, "store.manifest.swap");
  if (!text.ok()) return text.status();
  return DecodeManifest(text.value());
}

Status WriteManifest(const std::string& dir, const Manifest& m) {
  const std::string path = ManifestPath(dir);
  const std::string tmp = path + ".tmp";
  Status st = io::WriteTextFile(tmp, EncodeManifest(m), "store.manifest.swap");
  if (!st.ok()) {
    // A failed or torn temp write must not leave debris: the swap
    // either completes or the directory looks exactly as before.
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return st;
  }
  FTL_RETURN_NOT_OK(io::SyncFile(tmp));
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ec2;
    std::filesystem::remove(tmp, ec2);
    return Status::IOError("rename " + tmp + " -> " + path + ": " +
                           ec.message());
  }
  return io::SyncDir(dir);
}

}  // namespace ftl::store
