#include "store/compactor.h"

#include <chrono>

namespace ftl::store {

Compactor::Compactor(Store* store, CompactorOptions options)
    : store_(store), options_(options) {}

Compactor::~Compactor() { Stop(); }

void Compactor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  thread_ = std::thread([this]() { Loop(); });
}

void Compactor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

void Compactor::Notify() { cv_.notify_all(); }

void Compactor::Loop() {
  const auto interval = std::chrono::milliseconds(
      options_.poll_interval_ms > 0 ? options_.poll_interval_ms : 1);
  for (;;) {
    // Drain: keep merging while the trigger holds. A failed round
    // (e.g. transient disk fault) backs off to the next poll instead
    // of spinning against the same error.
    while (store_->CompactionDue()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_) return;
      }
      auto r = store_->CompactOnce();
      if (!r.ok()) {
        failures_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      if (r.value().inputs == 0) break;
      rounds_.fetch_add(1, std::memory_order_relaxed);
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (cv_.wait_for(lock, interval, [this]() { return stop_; })) return;
  }
}

}  // namespace ftl::store
