#include "store/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "io/file_util.h"
#include "io/ftb.h"
#include "util/failpoint.h"

namespace ftl::store {

namespace {

constexpr size_t kFrameHeaderBytes = 16;  // len(4) + crc(4) + seqno(8)

/// Sanity cap on one frame's payload; anything larger is treated as a
/// torn/corrupt length field rather than an allocation request.
constexpr uint32_t kMaxPayloadBytes = 1u << 30;

/// Per-row label length cap in the batch encoding.
constexpr uint32_t kMaxLabelBytes = 1u << 16;

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xffffffffu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

int64_t NowSteadyMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// CRC over seqno (little-endian) || payload, via the FTB slicing-by-8
/// kernel.
uint32_t FrameCrc(uint64_t seqno, std::string_view payload) {
  std::string head;
  head.reserve(8 + payload.size());
  PutU64(&head, seqno);
  head.append(payload.data(), payload.size());
  return io::Crc32(head.data(), head.size());
}

/// Parses one frame at data[pos...]. Returns false when the bytes from
/// `pos` do not form a whole valid frame (torn tail).
bool ParseFrame(std::string_view data, size_t pos, uint64_t* seqno,
                std::string_view* payload, size_t* frame_bytes) {
  if (data.size() - pos < kFrameHeaderBytes) return false;
  const char* p = data.data() + pos;
  uint32_t len = GetU32(p);
  if (len > kMaxPayloadBytes) return false;
  uint32_t crc = GetU32(p + 4);
  uint64_t sq = GetU64(p + 8);
  if (data.size() - pos - kFrameHeaderBytes < len) return false;
  std::string_view body(p + kFrameHeaderBytes, len);
  if (FrameCrc(sq, body) != crc) return false;
  *seqno = sq;
  *payload = body;
  *frame_bytes = kFrameHeaderBytes + len;
  return true;
}

}  // namespace

std::string EncodeBatch(const IngestBatch& batch) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(batch.rows.size()));
  for (const IngestRow& r : batch.rows) {
    PutU32(&out, static_cast<uint32_t>(r.label.size()));
    out.append(r.label);
    PutU64(&out, static_cast<uint64_t>(r.owner));
    PutU64(&out, static_cast<uint64_t>(r.t));
    PutU64(&out, std::bit_cast<uint64_t>(r.x));
    PutU64(&out, std::bit_cast<uint64_t>(r.y));
  }
  return out;
}

Result<IngestBatch> DecodeBatch(std::string_view payload) {
  size_t pos = 0;
  auto need = [&](size_t n) { return payload.size() - pos >= n; };
  if (!need(4)) return Status::InvalidArgument("batch: truncated row count");
  uint32_t nrows = GetU32(payload.data() + pos);
  pos += 4;
  // Each row is at least 36 bytes (empty label); reject impossible
  // counts before reserving anything.
  if (static_cast<uint64_t>(nrows) * 36 > payload.size() - pos) {
    return Status::InvalidArgument("batch: row count " +
                                   std::to_string(nrows) +
                                   " exceeds payload size");
  }
  IngestBatch batch;
  batch.rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    if (!need(4)) return Status::InvalidArgument("batch: truncated label len");
    uint32_t label_len = GetU32(payload.data() + pos);
    pos += 4;
    if (label_len > kMaxLabelBytes) {
      return Status::InvalidArgument("batch: label length " +
                                     std::to_string(label_len) +
                                     " exceeds limit");
    }
    if (!need(static_cast<size_t>(label_len) + 32)) {
      return Status::InvalidArgument("batch: truncated row body");
    }
    IngestRow row;
    row.label.assign(payload.data() + pos, label_len);
    pos += label_len;
    row.owner = static_cast<traj::OwnerId>(GetU64(payload.data() + pos));
    pos += 8;
    row.t = static_cast<traj::Timestamp>(GetU64(payload.data() + pos));
    pos += 8;
    row.x = std::bit_cast<double>(GetU64(payload.data() + pos));
    pos += 8;
    row.y = std::bit_cast<double>(GetU64(payload.data() + pos));
    pos += 8;
    batch.rows.push_back(std::move(row));
  }
  if (pos != payload.size()) {
    return Status::InvalidArgument("batch: " +
                                   std::to_string(payload.size() - pos) +
                                   " trailing bytes");
  }
  return batch;
}

Result<WalSync> ParseWalSync(std::string_view s) {
  if (s == "always") return WalSync::kAlways;
  if (s == "interval") return WalSync::kInterval;
  if (s == "never") return WalSync::kNever;
  return Status::InvalidArgument("bad --wal-sync '" + std::string(s) +
                                 "' (expected always|interval|never)");
}

const char* WalSyncName(WalSync s) {
  switch (s) {
    case WalSync::kAlways: return "always";
    case WalSync::kInterval: return "interval";
    case WalSync::kNever: return "never";
  }
  return "?";
}

WalWriter::~WalWriter() { Close(); }

WalWriter::WalWriter(WalWriter&& other) noexcept { *this = std::move(other); }

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    options_ = other.options_;
    next_seqno_ = other.next_seqno_;
    bytes_ = other.bytes_;
    syncs_ = other.syncs_;
    last_sync_ms_ = other.last_sync_ms_;
    other.fd_ = -1;
  }
  return *this;
}

Result<WalWriter> WalWriter::Open(const std::string& path,
                                  const WalWriterOptions& options,
                                  uint64_t next_seqno) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::IOError("open WAL " + path + ": " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    int saved = errno;
    ::close(fd);
    return Status::IOError("lseek WAL " + path + ": " +
                           std::strerror(saved));
  }
  WalWriter w;
  w.fd_ = fd;
  w.path_ = path;
  w.options_ = options;
  w.next_seqno_ = next_seqno;
  w.bytes_ = static_cast<uint64_t>(size);
  w.last_sync_ms_ = NowSteadyMs();
  return w;
}

Status WalWriter::Append(std::string_view payload) {
  if (fd_ < 0) return Status::FailedPrecondition("WAL is closed");
  if (payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("WAL payload too large: " +
                                   std::to_string(payload.size()) + " bytes");
  }
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, FrameCrc(next_seqno_, payload));
  PutU64(&frame, next_seqno_);
  frame.append(payload.data(), payload.size());

  size_t keep = frame.size();
  if (failpoint::AnyArmed()) {
    failpoint::Hit hit = failpoint::CheckIo("store.wal.append");
    if (!hit.status.ok()) return hit.status;
    if (hit.partial_write) {
      // arg == 0 tears mid-frame (half the bytes): the canonical
      // crash-during-append shape recovery must truncate away.
      size_t budget =
          hit.arg > 0 ? static_cast<size_t>(hit.arg) : frame.size() / 2;
      keep = std::min(keep, budget);
    }
  }
  size_t off = 0;
  while (off < keep) {
    ssize_t n = ::write(fd_, frame.data() + off, keep - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("WAL append " + path_ + ": " +
                             std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  bytes_ += off;
  if (keep < frame.size()) {
    return Status::IOError(
        "failpoint 'store.wal.append': partial write (" +
        std::to_string(keep) + " of " + std::to_string(frame.size()) +
        " bytes) to " + path_);
  }
  ++next_seqno_;
  switch (options_.sync) {
    case WalSync::kAlways:
      return Sync();
    case WalSync::kInterval: {
      int64_t now = NowSteadyMs();
      if (now - last_sync_ms_ >= options_.sync_interval_ms) return Sync();
      return Status::OK();
    }
    case WalSync::kNever:
      return Status::OK();
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("WAL is closed");
  FTL_FAILPOINT("store.wal.sync");
  if (::fsync(fd_) != 0) {
    return Status::IOError("WAL fsync " + path_ + ": " +
                           std::strerror(errno));
  }
  ++syncs_;
  last_sync_ms_ = NowSteadyMs();
  return Status::OK();
}

Status WalWriter::TruncateTo(uint64_t target_bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("WAL is closed");
  if (target_bytes > bytes_) {
    return Status::InvalidArgument("WAL truncate target " +
                                   std::to_string(target_bytes) +
                                   " past end " + std::to_string(bytes_));
  }
  if (::ftruncate(fd_, static_cast<off_t>(target_bytes)) != 0) {
    return Status::IOError("WAL truncate " + path_ + ": " +
                           std::strerror(errno));
  }
  bytes_ = target_bytes;
  return Status::OK();
}

void WalWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

size_t WalValidPrefix(std::string_view data) {
  size_t pos = 0;
  uint64_t prev_seqno = 0;
  while (pos < data.size()) {
    uint64_t seqno = 0;
    std::string_view payload;
    size_t frame_bytes = 0;
    if (!ParseFrame(data, pos, &seqno, &payload, &frame_bytes)) break;
    if (prev_seqno != 0 && seqno <= prev_seqno) break;
    prev_seqno = seqno;
    pos += frame_bytes;
  }
  return pos;
}

Status ScanWal(std::string_view data,
               const std::function<Status(uint64_t, std::string_view)>& fn,
               WalReplayStats* stats) {
  size_t pos = 0;
  uint64_t prev_seqno = 0;
  while (pos < data.size()) {
    uint64_t seqno = 0;
    std::string_view payload;
    size_t frame_bytes = 0;
    if (!ParseFrame(data, pos, &seqno, &payload, &frame_bytes)) break;
    if (prev_seqno != 0 && seqno <= prev_seqno) break;
    prev_seqno = seqno;
    FTL_RETURN_NOT_OK(fn(seqno, payload));
    pos += frame_bytes;
    if (stats != nullptr) {
      ++stats->frames;
      stats->bytes += frame_bytes;
      stats->last_seqno = seqno;
    }
  }
  if (stats != nullptr) {
    stats->torn_bytes_dropped += data.size() - pos;
  }
  return Status::OK();
}

Status ReplayWal(const std::string& path,
                 const std::function<Status(uint64_t, std::string_view)>& fn,
                 WalReplayStats* stats) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return Status::OK();
  // Repair first: physically truncate a torn tail so the file on disk
  // is clean before any frame is applied — the recovered file is then
  // byte-identical to one that never crashed mid-append.
  auto dropped = io::TruncateToLastValidRecord(path, WalValidPrefix);
  if (!dropped.ok()) return dropped.status();
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open WAL for replay: " + path);
  std::stringstream buf;
  buf << f.rdbuf();
  if (f.bad()) return Status::IOError("WAL read failed: " + path);
  const std::string data = buf.str();
  if (stats != nullptr) stats->torn_bytes_dropped += dropped.value();
  return ScanWal(
      data,
      [&](uint64_t seqno, std::string_view payload) -> Status {
        FTL_FAILPOINT("store.recovery.replay");
        return fn(seqno, payload);
      },
      stats);
}

}  // namespace ftl::store
