#include "store/store.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "io/ftb.h"
#include "io/file_util.h"
#include "obs/metrics.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"

namespace ftl::store {

namespace {

/// Metric handles resolved once (DESIGN.md §8 discipline): the append
/// hot path touches pre-resolved counters only. Stores share the
/// process-global registry, so counters aggregate across instances and
/// gauges reflect the most recent writer.
struct StoreMetrics {
  obs::Counter* wal_bytes;
  obs::Counter* wal_appends;
  obs::Counter* wal_syncs;
  obs::Counter* wal_torn_bytes;
  obs::Counter* ingest_records;
  obs::Counter* replay_batches;
  obs::Counter* replay_records;
  obs::Counter* flushes;
  obs::Gauge* segments_live;
  obs::Gauge* memtable_records;
  obs::Gauge* generation;
  obs::Histogram* flush_latency_us;

  StoreMetrics() {
    auto& reg = obs::MetricsRegistry::Global();
    wal_bytes = &reg.GetCounter("ftl_store_wal_bytes_total");
    wal_appends = &reg.GetCounter("ftl_store_wal_appends_total");
    wal_syncs = &reg.GetCounter("ftl_store_wal_syncs_total");
    wal_torn_bytes = &reg.GetCounter("ftl_store_wal_torn_bytes_total");
    ingest_records = &reg.GetCounter("ftl_store_ingest_records_total");
    replay_batches = &reg.GetCounter("ftl_store_replay_batches_total");
    replay_records = &reg.GetCounter("ftl_store_replay_records_total");
    flushes = &reg.GetCounter("ftl_store_flush_total");
    segments_live = &reg.GetGauge("ftl_store_segments_live");
    memtable_records = &reg.GetGauge("ftl_store_memtable_records");
    generation = &reg.GetGauge("ftl_store_generation");
    flush_latency_us = &reg.GetHistogram("ftl_store_flush_latency_us");
  }
};

StoreMetrics& Metrics() {
  static StoreMetrics* m = new StoreMetrics();  // leaked: shutdown-safe
  return *m;
}

/// A filename this store layout could have produced. Orphan cleanup
/// only ever deletes names matching these shapes, so foreign files in
/// the directory are never touched.
bool IsStoreFileName(const std::string& name) {
  auto shaped = [&](const char* prefix, const char* suffix) {
    const std::string p(prefix), s(suffix);
    return name.size() == p.size() + 6 + s.size() &&
           name.compare(0, p.size(), p) == 0 &&
           name.compare(name.size() - s.size(), s.size(), s) == 0 &&
           std::all_of(name.begin() + static_cast<long>(p.size()),
                       name.begin() + static_cast<long>(p.size()) + 6,
                       [](char c) { return c >= '0' && c <= '9'; });
  };
  return shaped("seg-", ".ftb") || shaped("wal-", ".log") ||
         name == "MANIFEST.tmp";
}

}  // namespace

// ---------------------------------------------------------------------------
// StoreSnapshot

std::shared_ptr<const StoreSnapshot> StoreSnapshot::Build(
    const std::vector<std::shared_ptr<const traj::FlatDatabase>>& segments,
    const MutableSegment& memtable, uint64_t generation, uint64_t version,
    std::vector<std::shared_ptr<const core::BlockingIndex>> segment_indices,
    core::BlockingMode blocking_mode) {
  auto snap = std::shared_ptr<StoreSnapshot>(new StoreSnapshot());
  snap->segments_ = segments;
  snap->segment_indices_ = std::move(segment_indices);
  snap->blocking_mode_ = blocking_mode;
  snap->memtable_db_ = memtable.ToDatabase("memtable");
  snap->generation_ = generation;
  snap->version_ = version;

  const size_t nseg = segments.size();
  const size_t nsources = nseg + 1;
  snap->global_of_.resize(nsources);

  // Pass 1: canonical order = first-appearance walk over sources in
  // ingest order (segments oldest-first, then the memtable).
  auto visit = [&](size_t source, size_t local, std::string label,
                   size_t records) {
    auto [it, inserted] = snap->by_label_.emplace(std::move(label),
                                                 snap->canon_.size());
    if (inserted) {
      CanonEntry e;
      e.contribs.push_back({static_cast<uint32_t>(source),
                            static_cast<uint32_t>(local)});
      snap->canon_.push_back(std::move(e));
    } else {
      snap->canon_[it->second].contribs.push_back(
          {static_cast<uint32_t>(source), static_cast<uint32_t>(local)});
    }
    snap->global_of_[source].push_back(it->second);
    snap->total_records_ += records;
  };
  for (size_t s = 0; s < nseg; ++s) {
    const traj::FlatDatabase& seg = *segments[s];
    snap->global_of_[s].reserve(seg.size());
    for (size_t i = 0; i < seg.size(); ++i) {
      visit(s, i, std::string(seg.label(i)), seg[i].size());
    }
  }
  {
    const traj::TrajectoryDatabase& mt = snap->memtable_db_;
    snap->global_of_[nseg].reserve(mt.size());
    for (size_t i = 0; i < mt.size(); ++i) {
      visit(nseg, i, mt[i].label(), mt[i].size());
    }
  }

  // Pass 2: pre-merge every label that spans sources into the overlay
  // database, at its canonical first-appearance position.
  std::vector<size_t> overlay_of_global(snap->canon_.size(), npos);
  for (size_t g = 0; g < snap->canon_.size(); ++g) {
    if (snap->canon_[g].contribs.size() <= 1) continue;
    overlay_of_global[g] = snap->overlay_global_.size();
    snap->overlay_global_.push_back(g);
    (void)snap->overlay_db_.Add(snap->Materialize(g));
  }

  // Pass 3: per-source query plans. Walking locals in order, shadowed
  // entries (later homes of a multi-source label) are omitted, overlay
  // entries break the plain run so evaluation order stays canonical.
  snap->plans_.resize(nsources);
  for (size_t s = 0; s < nsources; ++s) {
    std::vector<Run>& plan = snap->plans_[s];
    Run plain;
    auto flush_plain = [&]() {
      if (!plain.indices.empty()) {
        plan.push_back(std::move(plain));
        plain = Run{};
      }
    };
    const std::vector<size_t>& globals = snap->global_of_[s];
    for (size_t local = 0; local < globals.size(); ++local) {
      const CanonEntry& e = snap->canon_[globals[local]];
      if (e.contribs.size() == 1) {
        plain.indices.push_back(local);
        continue;
      }
      const SourceRef& first = e.contribs.front();
      if (first.source == s && first.local == local) {
        flush_plain();
        Run ov;
        ov.overlay = true;
        ov.indices.push_back(overlay_of_global[globals[local]]);
        plan.push_back(std::move(ov));
      }
      // Later homes: shadowed, not evaluated from this source.
    }
    flush_plain();
  }
  return snap;
}

size_t StoreSnapshot::Find(std::string_view label) const {
  auto it = by_label_.find(std::string(label));
  return it == by_label_.end() ? npos : it->second;
}

std::string_view StoreSnapshot::label(size_t g) const {
  const SourceRef& first = canon_[g].contribs.front();
  if (first.source < segments_.size()) {
    return segments_[first.source]->label(first.local);
  }
  return memtable_db_[first.local].label();
}

traj::Trajectory StoreSnapshot::Materialize(size_t g) const {
  const CanonEntry& e = canon_[g];
  std::string lbl(label(g));
  traj::OwnerId owner = traj::kUnknownOwner;
  std::vector<traj::Record> records;
  for (const SourceRef& ref : e.contribs) {
    if (ref.source < segments_.size()) {
      traj::FlatTrajectoryView v = (*segments_[ref.source])[ref.local];
      for (size_t i = 0; i < v.size(); ++i) records.push_back(v[i]);
      if (owner == traj::kUnknownOwner) owner = v.owner();
    } else {
      const traj::Trajectory& t = memtable_db_[ref.local];
      records.insert(records.end(), t.records().begin(), t.records().end());
      if (owner == traj::kUnknownOwner) owner = t.owner();
    }
  }
  // The Trajectory constructor stable-sorts by time; because each
  // contribution is itself time-sorted and contributions are
  // concatenated in ingest order, the result equals stable-sorting the
  // full ingest-order row sequence — the never-flushed oracle.
  return traj::Trajectory(std::move(lbl), owner, std::move(records));
}

traj::TrajectoryDatabase StoreSnapshot::MaterializeAll(
    const std::string& name) const {
  traj::TrajectoryDatabase db(name);
  for (size_t g = 0; g < canon_.size(); ++g) {
    (void)db.Add(Materialize(g));
  }
  return db;
}

Result<core::QueryResult> StoreSnapshot::Query(
    const core::FtlEngine& engine, const traj::Trajectory& query,
    core::Matcher matcher, const core::QueryOptions* qopts) const {
  if (!engine.options().evaluate_non_overlapping) {
    return Status::FailedPrecondition(
        "store snapshot queries require evaluate_non_overlapping (the "
        "multi-segment fan-out would diverge from a merged database "
        "otherwise)");
  }
  if (empty()) {
    // Match the engine's wording for an empty merged database.
    return Status::InvalidArgument("candidate database is empty");
  }

  // SoA copy of the query, built once and shared by every segment
  // sub-query (segments score zero-copy off their mmap'd columns).
  traj::TrajectoryDatabase qwrap;
  (void)qwrap.Add(query);
  traj::FlatDatabase qflat = traj::FlatDatabase::FromDatabase(qwrap);
  traj::FlatTrajectoryView qview = qflat[0];

  // Candidate generation: when the snapshot carries per-segment
  // BlockingIndexes, each plain segment run is intersected with the
  // index survivors before scoring (guaranteed mode keeps the result
  // byte-identical — see DESIGN.md §13; aggressive mode trades recall).
  // Overlay and memtable runs are always scored exhaustively.
  const bool blocked = blocking_mode_ != core::BlockingMode::kOff &&
                       !segment_indices_.empty() && engine.trained();
  core::BlockingGuarantee guarantee;
  if (blocked && blocking_mode_ == core::BlockingMode::kGuaranteed) {
    guarantee = engine.DeriveBlockingGuarantee(matcher);
  }
  core::BlockingScratch bscratch;
  std::vector<size_t> survivors;  // per-segment, ascending
  std::vector<size_t> filtered;   // run ∩ survivors, ascending

  core::QueryResult out;
  const size_t nseg = segments_.size();
  for (size_t s = 0; s < plans_.size() && !out.truncated; ++s) {
    const core::BlockingIndex* index =
        blocked && s < nseg && s < segment_indices_.size()
            ? segment_indices_[s].get()
            : nullptr;
    if (index != nullptr) {
      if (blocking_mode_ == core::BlockingMode::kGuaranteed) {
        index->GuaranteedCandidates(qview, guarantee, &bscratch, &survivors);
      } else {
        index->Candidates(qview, &bscratch, &survivors);
      }
    }
    for (const Run& run : plans_[s]) {
      if (run.indices.empty()) continue;
      const std::vector<size_t>* run_indices = &run.indices;
      if (index != nullptr && !run.overlay) {
        // Plain-run locals are ascending within a run (Build pushes
        // them in local order), as are the survivors, so a sorted
        // intersection preserves canonical evaluation order.
        filtered.clear();
        std::set_intersection(run.indices.begin(), run.indices.end(),
                              survivors.begin(), survivors.end(),
                              std::back_inserter(filtered));
        if (filtered.empty()) continue;
        run_indices = &filtered;
      }
      Result<core::QueryResult> r = [&]() {
        if (run.overlay) {
          return qopts != nullptr
                     ? engine.QueryWithCandidates(query, overlay_db_,
                                                  run.indices, matcher, *qopts)
                     : engine.QueryWithCandidates(query, overlay_db_,
                                                  run.indices, matcher);
        }
        if (s < nseg) {
          return qopts != nullptr
                     ? engine.QueryWithCandidates(qview, *segments_[s],
                                                  *run_indices, matcher, *qopts)
                     : engine.QueryWithCandidates(qview, *segments_[s],
                                                  *run_indices, matcher);
        }
        return qopts != nullptr
                   ? engine.QueryWithCandidates(query, memtable_db_,
                                                run.indices, matcher, *qopts)
                   : engine.QueryWithCandidates(query, memtable_db_,
                                                run.indices, matcher);
      }();
      if (!r.ok()) return r.status();
      core::QueryResult sub = std::move(r).value();
      for (core::MatchCandidate& c : sub.candidates) {
        c.index = run.overlay ? overlay_global_[c.index]
                              : global_of_[s][c.index];
        out.candidates.push_back(std::move(c));
      }
      out.evaluated += sub.evaluated;
      if (sub.truncated) {
        out.truncated = true;
        out.status = sub.status;
        break;
      }
    }
  }
  // Each sub-result is already stable-sorted by score with candidates
  // collected in canonical order, so one more pass of the engine's
  // exact comparator reproduces the merged-database sort byte-for-byte
  // (ties keep canonical order).
  std::stable_sort(out.candidates.begin(), out.candidates.end(),
                   [](const core::MatchCandidate& a,
                      const core::MatchCandidate& b) {
                     return a.score > b.score;
                   });
  out.selectiveness = static_cast<double>(out.candidates.size()) /
                      static_cast<double>(size());
  return out;
}

Result<core::QueryResult> StoreSnapshot::Rank(
    const core::FtlEngine& engine, const traj::Trajectory& query,
    const std::vector<std::string>& candidates, core::Matcher matcher) const {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidates to rank");
  }
  // Materialize the named candidates once into a scratch database and
  // rank there; scoring depends only on the record data, so the result
  // needs just an index remap to match the canonical database.
  traj::TrajectoryDatabase scratch;
  std::vector<size_t> scratch_global;   // scratch idx -> global
  std::vector<size_t> indices;          // request order, scratch indices
  indices.reserve(candidates.size());
  for (const std::string& label : candidates) {
    size_t g = Find(label);
    if (g == npos) {
      return Status::NotFound("candidate label '" + label + "' not in Q");
    }
    size_t si = scratch.Find(label);
    if (si == traj::TrajectoryDatabase::npos) {
      si = scratch.size();
      FTL_RETURN_NOT_OK(scratch.Add(Materialize(g)));
      scratch_global.push_back(g);
    }
    indices.push_back(si);
  }
  auto r = engine.QueryWithCandidates(query, scratch, indices, matcher);
  if (!r.ok()) return r.status();
  core::QueryResult result = std::move(r).value();
  for (core::MatchCandidate& c : result.candidates) {
    c.index = scratch_global[c.index];
  }
  result.selectiveness = static_cast<double>(result.candidates.size()) /
                         static_cast<double>(size());
  return result;
}

// ---------------------------------------------------------------------------
// Store

Store::Store(std::string dir, StoreOptions options)
    : dir_(std::move(dir)), options_(options) {}

std::unique_ptr<Store> Store::Create(std::string dir, StoreOptions options) {
  return std::unique_ptr<Store>(new Store(std::move(dir), options));
}

Result<std::unique_ptr<Store>> Store::Open(const std::string& dir,
                                           const StoreOptions& options,
                                           RecoveryInfo* info) {
  std::unique_ptr<Store> store = Create(dir, options);
  FTL_RETURN_NOT_OK(store->Recover(info));
  return store;
}

Status Store::Recover(RecoveryInfo* info) {
  std::lock_guard<std::mutex> lock(mu_);
  return RecoverLocked(info);
}

Status Store::RecoverLocked(RecoveryInfo* info) {
  if (recovered_) return Status::FailedPrecondition("store already recovered");
  Stopwatch sw;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return Status::IOError("create store dir " + dir_ + ": " + ec.message());
  }

  auto mr = ReadManifest(dir_);
  if (mr.ok()) {
    manifest_ = std::move(mr).value();
  } else if (mr.status().code() == StatusCode::kNotFound) {
    // Fresh store: install generation 0 with an empty segment list so
    // the directory is always manifest-rooted from the first open.
    manifest_ = Manifest{0, {}, WalFileName(0)};
    FTL_RETURN_NOT_OK(WriteManifest(dir_, manifest_));
  } else {
    return mr.status();
  }

  segments_.clear();
  segment_indices_.clear();
  for (const std::string& seg : manifest_.segments) {
    auto r = io::ReadFtb(dir_ + "/" + seg);
    if (!r.ok()) {
      return Status::IOError("segment " + seg + ": " +
                             r.status().ToString());
    }
    segments_.push_back(
        std::make_shared<traj::FlatDatabase>(std::move(r).value()));
    if (options_.blocking_mode != core::BlockingMode::kOff) {
      segment_indices_.push_back(std::make_shared<const core::BlockingIndex>(
          *segments_.back(), options_.blocking));
    }
  }

  // WAL replay: repair the torn tail in place, then apply every
  // surviving batch to the memtable — rebuilding exactly the mutable
  // state the pre-crash process had at its last complete frame.
  memtable_.Clear();
  WalReplayStats stats;
  const std::string wal_path = dir_ + "/" + manifest_.wal;
  uint64_t replayed_batches = 0;
  uint64_t replayed_records = 0;
  Status rst = ReplayWal(
      wal_path,
      [&](uint64_t seqno, std::string_view payload) -> Status {
        auto batch = DecodeBatch(payload);
        if (!batch.ok()) {
          return Status::IOError("WAL frame " + std::to_string(seqno) +
                                 " undecodable: " + batch.status().message());
        }
        replayed_records += batch.value().rows.size();
        ++replayed_batches;
        memtable_.Apply(batch.value());
        return Status::OK();
      },
      &stats);
  if (!rst.ok()) return rst;

  WalWriterOptions wopts;
  wopts.sync = options_.wal_sync;
  wopts.sync_interval_ms = options_.wal_sync_interval_ms;
  auto w = WalWriter::Open(wal_path, wopts, stats.last_seqno + 1);
  if (!w.ok()) return w.status();
  wal_ = std::move(w).value();

  // Orphan cleanup: an interrupted flush can leave a segment or WAL
  // file that never made it into the manifest; recovery removes them
  // so the directory always equals the manifest's view.
  uint64_t orphans = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (!IsStoreFileName(name)) continue;
    bool live = name == manifest_.wal;
    for (const std::string& seg : manifest_.segments) {
      live = live || name == seg;
    }
    if (live) continue;
    std::error_code rec;
    if (std::filesystem::remove(entry.path(), rec)) ++orphans;
  }

  recovered_ = true;
  version_ = 1;

  StoreMetrics& m = Metrics();
  m.replay_batches->Add(static_cast<int64_t>(replayed_batches));
  m.replay_records->Add(static_cast<int64_t>(replayed_records));
  m.wal_torn_bytes->Add(static_cast<int64_t>(stats.torn_bytes_dropped));
  m.segments_live->Set(static_cast<int64_t>(segments_.size()));
  m.memtable_records->Set(static_cast<int64_t>(memtable_.num_records()));
  m.generation->Set(static_cast<int64_t>(manifest_.generation));

  if (info != nullptr) {
    info->generation = manifest_.generation;
    info->segments = segments_.size();
    info->replayed_batches = replayed_batches;
    info->replayed_records = replayed_records;
    info->torn_bytes_dropped = stats.torn_bytes_dropped;
    info->orphans_removed = orphans;
    info->seconds = sw.ElapsedSeconds();
  }
  return Status::OK();
}

Status Store::Append(const IngestBatch& batch) {
  if (batch.rows.empty()) {
    return Status::InvalidArgument("empty ingest batch");
  }
  for (const IngestRow& row : batch.rows) {
    if (row.label.empty()) {
      return Status::InvalidArgument("ingest row with empty label");
    }
    if (row.label.size() > 65536) {
      return Status::InvalidArgument("ingest label longer than 65536 bytes");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!recovered_) return Status::FailedPrecondition("store not recovered");
  if (broken_) {
    return Status::FailedPrecondition(
        "store is broken after a failed flush commit; reopen to recover");
  }

  const size_t cap = static_cast<size_t>(
      static_cast<double>(options_.flush_threshold_records) *
      options_.backpressure_factor);
  bool flush_due =
      memtable_.num_records() >= options_.flush_threshold_records ||
      (options_.flush_max_age_seconds > 0 && !memtable_.empty() &&
       memtable_.age_seconds() >= options_.flush_max_age_seconds);
  if (flush_due) {
    Status fst = FlushLocked();
    if (!fst.ok() && memtable_.num_records() >= cap) {
      // Admission control: flushes are failing and the memtable is at
      // the cap — shed load with a retryable rejection instead of
      // growing without bound.
      return Status::OutOfRange("store backpressure: memtable at " +
                                std::to_string(memtable_.num_records()) +
                                " records with flush failing: " +
                                fst.message());
    }
    if (broken_) {
      return Status::FailedPrecondition(
          "store is broken after a failed flush commit; reopen to recover");
    }
  }

  const uint64_t before = wal_.bytes();
  Status st = wal_.Append(EncodeBatch(batch));
  StoreMetrics& m = Metrics();
  if (!st.ok()) {
    // Not acked, not visible — but the frame may be partially on disk,
    // and replay truncates at the first invalid frame, which would
    // strand any *later* acked frames behind the tear. Repair in place
    // by cutting the file back to the pre-append length; if even that
    // fails the WAL can no longer be trusted for further appends.
    if (wal_.bytes() > before) {
      m.wal_torn_bytes->Add(static_cast<int64_t>(wal_.bytes() - before));
      Status trunc = wal_.TruncateTo(before);
      if (!trunc.ok()) {
        broken_ = true;
        return Status::Internal("WAL append failed (" + st.message() +
                                ") and torn-tail repair failed: " +
                                trunc.message());
      }
    }
    return st;
  }
  m.wal_bytes->Add(static_cast<int64_t>(wal_.bytes() - before));
  memtable_.Apply(batch);
  ++version_;
  m.wal_appends->Add(1);
  m.ingest_records->Add(static_cast<int64_t>(batch.rows.size()));
  m.memtable_records->Set(static_cast<int64_t>(memtable_.num_records()));
  return Status::OK();
}

Status Store::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!recovered_) return Status::FailedPrecondition("store not recovered");
  if (broken_) {
    return Status::FailedPrecondition(
        "store is broken after a failed flush commit; reopen to recover");
  }
  return FlushLocked();
}

Status Store::FlushLocked() {
  if (memtable_.empty()) return Status::OK();
  FTL_FAILPOINT("store.flush.segment");
  Stopwatch sw;
  const uint64_t gen = manifest_.generation + 1;
  const std::string seg_name = SegmentFileName(gen);
  const std::string seg_path = dir_ + "/" + seg_name;

  traj::FlatDatabase flat =
      traj::FlatDatabase::FromDatabase(memtable_.ToDatabase(seg_name));
  Status wst = io::WriteFtb(flat, seg_path);
  if (!wst.ok()) {
    std::error_code ec;
    std::filesystem::remove(seg_path, ec);
    return wst;
  }
  FTL_RETURN_NOT_OK(io::SyncFile(seg_path));
  // Validate the segment end-to-end (CRCs, invariants) *before* the
  // manifest names it: a bad segment must never become live.
  auto reread = io::ReadFtb(seg_path);
  if (!reread.ok()) {
    std::error_code ec;
    std::filesystem::remove(seg_path, ec);
    return Status::IOError("flush validation failed for " + seg_name + ": " +
                           reread.status().ToString());
  }

  Manifest next;
  next.generation = gen;
  next.segments = manifest_.segments;
  next.segments.push_back(seg_name);
  next.wal = WalFileName(gen);
  Status mst = WriteManifest(dir_, next);
  if (!mst.ok()) {
    std::error_code ec;
    std::filesystem::remove(seg_path, ec);
    return mst;
  }

  // The swap is the commit point: the new manifest is durable. Any
  // in-memory failure past here leaves disk ahead of memory, so the
  // store marks itself broken rather than risk appending to a WAL the
  // manifest no longer references.
  WalWriterOptions wopts;
  wopts.sync = options_.wal_sync;
  wopts.sync_interval_ms = options_.wal_sync_interval_ms;
  auto w = WalWriter::Open(dir_ + "/" + next.wal, wopts, 1);
  if (!w.ok()) {
    broken_ = true;
    return Status::Internal("flush committed but new WAL failed to open (" +
                            w.status().message() + "); reopen the store");
  }
  const std::string old_wal_path = dir_ + "/" + manifest_.wal;
  wal_.Close();
  wal_ = std::move(w).value();
  segments_.push_back(
      std::make_shared<traj::FlatDatabase>(std::move(reread).value()));
  if (options_.blocking_mode != core::BlockingMode::kOff) {
    segment_indices_.push_back(std::make_shared<const core::BlockingIndex>(
        *segments_.back(), options_.blocking));
  }
  memtable_.Clear();
  manifest_ = std::move(next);
  ++version_;
  {
    std::error_code ec;
    std::filesystem::remove(old_wal_path, ec);
  }

  StoreMetrics& m = Metrics();
  m.flushes->Add(1);
  m.flush_latency_us->Record(
      static_cast<int64_t>(sw.ElapsedSeconds() * 1e6));
  m.segments_live->Set(static_cast<int64_t>(segments_.size()));
  m.memtable_records->Set(0);
  m.generation->Set(static_cast<int64_t>(manifest_.generation));
  return Status::OK();
}

std::shared_ptr<const StoreSnapshot> Store::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (snapshot_ == nullptr || snapshot_version_ != version_) {
    snapshot_ = StoreSnapshot::Build(segments_, memtable_,
                                     manifest_.generation, version_,
                                     segment_indices_,
                                     options_.blocking_mode);
    snapshot_version_ = version_;
  }
  return snapshot_;
}

traj::TrajectoryDatabase Store::MaterializeAll(const std::string& name) const {
  return Snapshot()->MaterializeAll(name);
}

bool Store::recovered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recovered_;
}

bool Store::broken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return broken_;
}

uint64_t Store::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return manifest_.generation;
}

size_t Store::num_segments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.size();
}

size_t Store::memtable_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memtable_.num_records();
}

size_t Store::total_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = memtable_.num_records();
  for (const auto& seg : segments_) n += seg->TotalRecords();
  return n;
}

uint64_t Store::wal_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_.bytes();
}

}  // namespace ftl::store
