#include "store/store.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <filesystem>
#include <utility>

#include "io/ftb.h"
#include "io/file_util.h"
#include "obs/metrics.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace ftl::store {

namespace {

/// Metric handles resolved once (DESIGN.md §8 discipline): the append
/// hot path touches pre-resolved counters only. Stores share the
/// process-global registry, so counters aggregate across instances and
/// gauges reflect the most recent writer.
struct StoreMetrics {
  obs::Counter* wal_bytes;
  obs::Counter* wal_appends;
  obs::Counter* wal_syncs;
  obs::Counter* wal_torn_bytes;
  obs::Counter* ingest_records;
  obs::Counter* replay_batches;
  obs::Counter* replay_records;
  obs::Counter* flushes;
  obs::Counter* compactions;
  obs::Counter* compaction_input_segments;
  obs::Counter* compaction_output_records;
  obs::Counter* query_units;
  obs::Counter* parallel_queries;
  obs::Gauge* segments_live;
  obs::Gauge* memtable_records;
  obs::Gauge* generation;
  obs::Histogram* flush_latency_us;
  obs::Histogram* compaction_latency_us;

  StoreMetrics() {
    auto& reg = obs::MetricsRegistry::Global();
    wal_bytes = &reg.GetCounter("ftl_store_wal_bytes_total");
    wal_appends = &reg.GetCounter("ftl_store_wal_appends_total");
    wal_syncs = &reg.GetCounter("ftl_store_wal_syncs_total");
    wal_torn_bytes = &reg.GetCounter("ftl_store_wal_torn_bytes_total");
    ingest_records = &reg.GetCounter("ftl_store_ingest_records_total");
    replay_batches = &reg.GetCounter("ftl_store_replay_batches_total");
    replay_records = &reg.GetCounter("ftl_store_replay_records_total");
    flushes = &reg.GetCounter("ftl_store_flush_total");
    compactions = &reg.GetCounter("ftl_store_compactions_total");
    compaction_input_segments =
        &reg.GetCounter("ftl_store_compaction_input_segments_total");
    compaction_output_records =
        &reg.GetCounter("ftl_store_compaction_output_records_total");
    query_units = &reg.GetCounter("ftl_store_query_units_total");
    parallel_queries = &reg.GetCounter("ftl_store_parallel_queries_total");
    segments_live = &reg.GetGauge("ftl_store_segments_live");
    memtable_records = &reg.GetGauge("ftl_store_memtable_records");
    generation = &reg.GetGauge("ftl_store_generation");
    flush_latency_us = &reg.GetHistogram("ftl_store_flush_latency_us");
    compaction_latency_us =
        &reg.GetHistogram("ftl_store_compaction_latency_us");
  }
};

StoreMetrics& Metrics() {
  static StoreMetrics* m = new StoreMetrics();  // leaked: shutdown-safe
  return *m;
}

/// A filename this store layout could have produced. Orphan cleanup
/// only ever deletes names matching these shapes, so foreign files in
/// the directory are never touched.
bool IsStoreFileName(const std::string& name) {
  auto shaped = [&](const char* prefix, const char* suffix) {
    const std::string p(prefix), s(suffix);
    return name.size() == p.size() + 6 + s.size() &&
           name.compare(0, p.size(), p) == 0 &&
           name.compare(name.size() - s.size(), s.size(), s) == 0 &&
           std::all_of(name.begin() + static_cast<long>(p.size()),
                       name.begin() + static_cast<long>(p.size()) + 6,
                       [](char c) { return c >= '0' && c <= '9'; });
  };
  return shaped("seg-", ".ftb") || shaped("wal-", ".log") ||
         shaped("compact-", ".tmp") || name == "MANIFEST.tmp";
}

}  // namespace

// ---------------------------------------------------------------------------
// StoreSnapshot

std::shared_ptr<const StoreSnapshot> StoreSnapshot::Build(
    const std::vector<std::shared_ptr<const traj::FlatDatabase>>& segments,
    const MutableSegment& memtable, uint64_t generation, uint64_t version,
    std::vector<std::shared_ptr<const core::BlockingIndex>> segment_indices,
    core::BlockingMode blocking_mode) {
  auto snap = std::shared_ptr<StoreSnapshot>(new StoreSnapshot());
  snap->segments_ = segments;
  snap->segment_indices_ = std::move(segment_indices);
  snap->blocking_mode_ = blocking_mode;
  snap->memtable_db_ = memtable.ToDatabase("memtable");
  snap->generation_ = generation;
  snap->version_ = version;

  const size_t nseg = segments.size();
  const size_t nsources = nseg + 1;
  snap->global_of_.resize(nsources);

  // Pass 1: canonical order = first-appearance walk over sources in
  // ingest order (segments oldest-first, then the memtable).
  auto visit = [&](size_t source, size_t local, std::string label,
                   size_t records) {
    auto [it, inserted] = snap->by_label_.emplace(std::move(label),
                                                 snap->canon_.size());
    if (inserted) {
      CanonEntry e;
      e.contribs.push_back({static_cast<uint32_t>(source),
                            static_cast<uint32_t>(local)});
      snap->canon_.push_back(std::move(e));
    } else {
      snap->canon_[it->second].contribs.push_back(
          {static_cast<uint32_t>(source), static_cast<uint32_t>(local)});
    }
    snap->global_of_[source].push_back(it->second);
    snap->total_records_ += records;
  };
  for (size_t s = 0; s < nseg; ++s) {
    const traj::FlatDatabase& seg = *segments[s];
    snap->global_of_[s].reserve(seg.size());
    for (size_t i = 0; i < seg.size(); ++i) {
      visit(s, i, std::string(seg.label(i)), seg[i].size());
    }
  }
  {
    const traj::TrajectoryDatabase& mt = snap->memtable_db_;
    snap->global_of_[nseg].reserve(mt.size());
    for (size_t i = 0; i < mt.size(); ++i) {
      visit(nseg, i, mt[i].label(), mt[i].size());
    }
  }

  // Pass 2: pre-merge every label that spans sources into the overlay
  // database, at its canonical first-appearance position.
  std::vector<size_t> overlay_of_global(snap->canon_.size(), npos);
  for (size_t g = 0; g < snap->canon_.size(); ++g) {
    if (snap->canon_[g].contribs.size() <= 1) continue;
    overlay_of_global[g] = snap->overlay_global_.size();
    snap->overlay_global_.push_back(g);
    (void)snap->overlay_db_.Add(snap->Materialize(g));
  }

  // Pass 3: per-source query plans. Walking locals in order, shadowed
  // entries (later homes of a multi-source label) are omitted, overlay
  // entries break the plain run so evaluation order stays canonical.
  snap->plans_.resize(nsources);
  for (size_t s = 0; s < nsources; ++s) {
    std::vector<Run>& plan = snap->plans_[s];
    Run plain;
    auto flush_plain = [&]() {
      if (!plain.indices.empty()) {
        plan.push_back(std::move(plain));
        plain = Run{};
      }
    };
    const std::vector<size_t>& globals = snap->global_of_[s];
    for (size_t local = 0; local < globals.size(); ++local) {
      const CanonEntry& e = snap->canon_[globals[local]];
      if (e.contribs.size() == 1) {
        plain.indices.push_back(local);
        continue;
      }
      const SourceRef& first = e.contribs.front();
      if (first.source == s && first.local == local) {
        flush_plain();
        Run ov;
        ov.overlay = true;
        ov.indices.push_back(overlay_of_global[globals[local]]);
        plan.push_back(std::move(ov));
      }
      // Later homes: shadowed, not evaluated from this source.
    }
    flush_plain();
  }
  return snap;
}

size_t StoreSnapshot::Find(std::string_view label) const {
  auto it = by_label_.find(std::string(label));
  return it == by_label_.end() ? npos : it->second;
}

std::string_view StoreSnapshot::label(size_t g) const {
  const SourceRef& first = canon_[g].contribs.front();
  if (first.source < segments_.size()) {
    return segments_[first.source]->label(first.local);
  }
  return memtable_db_[first.local].label();
}

traj::Trajectory StoreSnapshot::Materialize(size_t g) const {
  const CanonEntry& e = canon_[g];
  std::string lbl(label(g));
  traj::OwnerId owner = traj::kUnknownOwner;
  std::vector<traj::Record> records;
  for (const SourceRef& ref : e.contribs) {
    if (ref.source < segments_.size()) {
      traj::FlatTrajectoryView v = (*segments_[ref.source])[ref.local];
      for (size_t i = 0; i < v.size(); ++i) records.push_back(v[i]);
      if (owner == traj::kUnknownOwner) owner = v.owner();
    } else {
      const traj::Trajectory& t = memtable_db_[ref.local];
      records.insert(records.end(), t.records().begin(), t.records().end());
      if (owner == traj::kUnknownOwner) owner = t.owner();
    }
  }
  // The Trajectory constructor stable-sorts by time; because each
  // contribution is itself time-sorted and contributions are
  // concatenated in ingest order, the result equals stable-sorting the
  // full ingest-order row sequence — the never-flushed oracle.
  return traj::Trajectory(std::move(lbl), owner, std::move(records));
}

traj::TrajectoryDatabase StoreSnapshot::MaterializeAll(
    const std::string& name) const {
  traj::TrajectoryDatabase db(name);
  for (size_t g = 0; g < canon_.size(); ++g) {
    (void)db.Add(Materialize(g));
  }
  return db;
}

Result<core::QueryResult> StoreSnapshot::Query(
    const core::FtlEngine& engine, const traj::Trajectory& query,
    core::Matcher matcher, const core::QueryOptions* qopts,
    size_t num_threads) const {
  if (!engine.options().evaluate_non_overlapping) {
    return Status::FailedPrecondition(
        "store snapshot queries require evaluate_non_overlapping (the "
        "multi-segment fan-out would diverge from a merged database "
        "otherwise)");
  }
  if (empty()) {
    // Match the engine's wording for an empty merged database.
    return Status::InvalidArgument("candidate database is empty");
  }

  // SoA copy of the query, built once and shared by every segment
  // sub-query (segments score zero-copy off their mmap'd columns).
  traj::TrajectoryDatabase qwrap;
  (void)qwrap.Add(query);
  traj::FlatDatabase qflat = traj::FlatDatabase::FromDatabase(qwrap);
  traj::FlatTrajectoryView qview = qflat[0];

  // Candidate generation: when the snapshot carries per-segment
  // BlockingIndexes, each plain segment run is intersected with the
  // index survivors before scoring (guaranteed mode keeps the result
  // byte-identical — see DESIGN.md §13; aggressive mode trades recall).
  // Overlay and memtable runs are always scored exhaustively.
  const bool blocked = blocking_mode_ != core::BlockingMode::kOff &&
                       !segment_indices_.empty() && engine.trained();
  core::BlockingGuarantee guarantee;
  if (blocked && blocking_mode_ == core::BlockingMode::kGuaranteed) {
    guarantee = engine.DeriveBlockingGuarantee(matcher);
  }

  // The fan-out, flattened into an ordered list of work units — unit
  // order IS canonical evaluation order, each unit one span of one
  // run's candidate list. Serial execution keeps one unit per run
  // (zero copies, exactly the pre-sharding walk); with num_threads > 1
  // runs are also split into ~kUnitCandidates spans so one fat segment
  // cannot serialize the tail. Because every unit's sub-result is
  // stable-sorted by score with ties in canonical order, concatenating
  // units in order and re-running the final stable sort yields the
  // same bytes for any unit decomposition (DESIGN.md §14).
  struct Unit {
    uint32_t source = 0;
    bool overlay = false;
    const std::vector<size_t>* base = nullptr;  ///< whole-run candidates
    size_t begin = 0, end = 0;                  ///< span of *base
  };
  constexpr size_t kUnitCandidates = 256;
  const size_t workers_hint = num_threads < 1 ? 1 : num_threads;
  const size_t nseg = segments_.size();

  std::deque<std::vector<size_t>> filtered_keep;  // stable addresses
  std::vector<Unit> units;
  {
    core::BlockingScratch bscratch;
    std::vector<size_t> survivors;  // per-segment, ascending
    for (size_t s = 0; s < plans_.size(); ++s) {
      const core::BlockingIndex* index =
          blocked && s < nseg && s < segment_indices_.size()
              ? segment_indices_[s].get()
              : nullptr;
      if (index != nullptr) {
        if (blocking_mode_ == core::BlockingMode::kGuaranteed) {
          index->GuaranteedCandidates(qview, guarantee, &bscratch,
                                      &survivors);
        } else {
          index->Candidates(qview, &bscratch, &survivors);
        }
      }
      for (const Run& run : plans_[s]) {
        if (run.indices.empty()) continue;
        const std::vector<size_t>* run_indices = &run.indices;
        if (index != nullptr && !run.overlay) {
          // Plain-run locals are ascending within a run (Build pushes
          // them in local order), as are the survivors, so a sorted
          // intersection preserves canonical evaluation order.
          std::vector<size_t> filtered;
          std::set_intersection(run.indices.begin(), run.indices.end(),
                                survivors.begin(), survivors.end(),
                                std::back_inserter(filtered));
          if (filtered.empty()) continue;
          filtered_keep.push_back(std::move(filtered));
          run_indices = &filtered_keep.back();
        }
        const size_t n = run_indices->size();
        const size_t step = workers_hint > 1 ? kUnitCandidates : n;
        for (size_t b = 0; b < n; b += step) {
          Unit u;
          u.source = static_cast<uint32_t>(s);
          u.overlay = run.overlay;
          u.base = run_indices;
          u.begin = b;
          u.end = std::min(n, b + step);
          units.push_back(u);
        }
      }
    }
  }

  const size_t nunits = units.size();
  const size_t workers = ParallelWorkerCount(nunits, workers_hint);
  {
    StoreMetrics& m = Metrics();
    m.query_units->Add(static_cast<int64_t>(nunits));
    if (workers > 1) m.parallel_queries->Add(1);
  }

  // Per-unit results land in `ustate`; `first_stop` tracks the lowest
  // unit that truncated or hard-errored. Units beyond it are skipped
  // (their results would be discarded), and because the chunked
  // scheduler claims units in increasing order and runs every claimed
  // chunk, units [0, first_stop] are guaranteed to have run — the
  // returned candidates always form a prefix of the canonical
  // evaluation order, exactly like the serial walk.
  struct UnitState {
    core::QueryResult result;
    Status error;
  };
  std::vector<UnitState> ustate(nunits);
  std::vector<core::QueryScratch> scratches(workers);
  std::vector<std::vector<size_t>> span_buf(workers);  // reused chunk copy
  std::atomic<size_t> first_stop{nunits};

  auto bump_stop = [&first_stop](size_t u) {
    size_t cur = first_stop.load(std::memory_order_relaxed);
    while (u < cur && !first_stop.compare_exchange_weak(
                          cur, u, std::memory_order_relaxed)) {
    }
  };
  auto run_unit = [&](size_t worker, size_t u) {
    const Unit& unit = units[u];
    const std::vector<size_t>* idx = unit.base;
    if (unit.begin != 0 || unit.end != idx->size()) {
      std::vector<size_t>& buf = span_buf[worker];
      buf.assign(idx->begin() + static_cast<long>(unit.begin),
                 idx->begin() + static_cast<long>(unit.end));
      idx = &buf;
    }
    core::QueryScratch* scratch = &scratches[worker];
    Result<core::QueryResult> r =
        unit.overlay
            ? engine.QueryWithCandidates(query, overlay_db_, *idx, matcher,
                                         qopts, scratch)
            : unit.source < nseg
                  ? engine.QueryWithCandidates(qview, *segments_[unit.source],
                                               *idx, matcher, qopts, scratch)
                  : engine.QueryWithCandidates(query, memtable_db_, *idx,
                                               matcher, qopts, scratch);
    UnitState& st = ustate[u];
    if (!r.ok()) {
      st.error = r.status();
      bump_stop(u);
      return;
    }
    st.result = std::move(r).value();
    for (core::MatchCandidate& c : st.result.candidates) {
      c.index = unit.overlay ? overlay_global_[c.index]
                             : global_of_[unit.source][c.index];
    }
    if (st.result.truncated) bump_stop(u);
  };

  const size_t processed = ParallelForWorkers(
      nunits, workers_hint,
      [&]() {
        return first_stop.load(std::memory_order_relaxed) != nunits ||
               (qopts != nullptr && !qopts->Check().ok());
      },
      [&](size_t worker, size_t b, size_t e) {
        for (size_t u = b; u < e; ++u) {
          if (u > first_stop.load(std::memory_order_relaxed)) break;
          run_unit(worker, u);
        }
      });

  // Every unit below first_stop ran cleanly (a skipped unit is always
  // above the final first_stop), so the unit at first_stop is exactly
  // where the serial walk would have stopped: a hard error there fails
  // the query, a truncation there ends the prefix.
  const size_t stop_unit = first_stop.load(std::memory_order_relaxed);
  if (stop_unit != nunits && !ustate[stop_unit].error.ok()) {
    return ustate[stop_unit].error;
  }

  core::QueryResult out;
  const size_t last =
      stop_unit == nunits ? processed : std::min(processed, stop_unit + 1);
  for (size_t u = 0; u < last; ++u) {
    core::QueryResult& sub = ustate[u].result;
    for (core::MatchCandidate& c : sub.candidates) {
      out.candidates.push_back(std::move(c));
    }
    out.evaluated += sub.evaluated;
  }
  if (stop_unit != nunits) {
    out.truncated = true;
    out.status = ustate[stop_unit].result.status;
  } else if (processed < nunits) {
    // The limit fired between units: every included unit is complete
    // and they form a canonical-order prefix.
    out.truncated = true;
    out.status = qopts != nullptr ? qopts->Check() : Status::OK();
  }
  // Each sub-result is already stable-sorted by score with candidates
  // collected in canonical order, so one more pass of the engine's
  // exact comparator reproduces the merged-database sort byte-for-byte
  // (ties keep canonical order).
  std::stable_sort(out.candidates.begin(), out.candidates.end(),
                   [](const core::MatchCandidate& a,
                      const core::MatchCandidate& b) {
                     return a.score > b.score;
                   });
  out.selectiveness = static_cast<double>(out.candidates.size()) /
                      static_cast<double>(size());
  return out;
}

Result<core::QueryResult> StoreSnapshot::Rank(
    const core::FtlEngine& engine, const traj::Trajectory& query,
    const std::vector<std::string>& candidates, core::Matcher matcher) const {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidates to rank");
  }
  // Materialize the named candidates once into a scratch database and
  // rank there; scoring depends only on the record data, so the result
  // needs just an index remap to match the canonical database.
  traj::TrajectoryDatabase scratch;
  std::vector<size_t> scratch_global;   // scratch idx -> global
  std::vector<size_t> indices;          // request order, scratch indices
  indices.reserve(candidates.size());
  for (const std::string& label : candidates) {
    size_t g = Find(label);
    if (g == npos) {
      return Status::NotFound("candidate label '" + label + "' not in Q");
    }
    size_t si = scratch.Find(label);
    if (si == traj::TrajectoryDatabase::npos) {
      si = scratch.size();
      FTL_RETURN_NOT_OK(scratch.Add(Materialize(g)));
      scratch_global.push_back(g);
    }
    indices.push_back(si);
  }
  auto r = engine.QueryWithCandidates(query, scratch, indices, matcher);
  if (!r.ok()) return r.status();
  core::QueryResult result = std::move(r).value();
  for (core::MatchCandidate& c : result.candidates) {
    c.index = scratch_global[c.index];
  }
  result.selectiveness = static_cast<double>(result.candidates.size()) /
                         static_cast<double>(size());
  return result;
}

// ---------------------------------------------------------------------------
// Store

Store::Store(std::string dir, StoreOptions options)
    : dir_(std::move(dir)), options_(options) {}

std::unique_ptr<Store> Store::Create(std::string dir, StoreOptions options) {
  return std::unique_ptr<Store>(new Store(std::move(dir), options));
}

Result<std::unique_ptr<Store>> Store::Open(const std::string& dir,
                                           const StoreOptions& options,
                                           RecoveryInfo* info) {
  std::unique_ptr<Store> store = Create(dir, options);
  FTL_RETURN_NOT_OK(store->Recover(info));
  return store;
}

Status Store::Recover(RecoveryInfo* info) {
  std::lock_guard<std::mutex> lock(mu_);
  return RecoverLocked(info);
}

Status Store::RecoverLocked(RecoveryInfo* info) {
  if (recovered_) return Status::FailedPrecondition("store already recovered");
  Stopwatch sw;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return Status::IOError("create store dir " + dir_ + ": " + ec.message());
  }

  auto mr = ReadManifest(dir_);
  if (mr.ok()) {
    manifest_ = std::move(mr).value();
  } else if (mr.status().code() == StatusCode::kNotFound) {
    // Fresh store: install generation 0 with an empty segment list so
    // the directory is always manifest-rooted from the first open.
    manifest_ = Manifest{0, {}, WalFileName(0)};
    FTL_RETURN_NOT_OK(WriteManifest(dir_, manifest_));
  } else {
    return mr.status();
  }

  segments_.clear();
  segment_indices_.clear();
  for (const std::string& seg : manifest_.segments) {
    auto r = io::ReadFtb(dir_ + "/" + seg);
    if (!r.ok()) {
      return Status::IOError("segment " + seg + ": " +
                             r.status().ToString());
    }
    segments_.push_back(
        std::make_shared<traj::FlatDatabase>(std::move(r).value()));
    if (options_.blocking_mode != core::BlockingMode::kOff) {
      segment_indices_.push_back(std::make_shared<const core::BlockingIndex>(
          *segments_.back(), options_.blocking));
    }
  }

  // WAL replay: repair the torn tail in place, then apply every
  // surviving batch to the memtable — rebuilding exactly the mutable
  // state the pre-crash process had at its last complete frame.
  memtable_.Clear();
  WalReplayStats stats;
  const std::string wal_path = dir_ + "/" + manifest_.wal;
  uint64_t replayed_batches = 0;
  uint64_t replayed_records = 0;
  Status rst = ReplayWal(
      wal_path,
      [&](uint64_t seqno, std::string_view payload) -> Status {
        auto batch = DecodeBatch(payload);
        if (!batch.ok()) {
          return Status::IOError("WAL frame " + std::to_string(seqno) +
                                 " undecodable: " + batch.status().message());
        }
        replayed_records += batch.value().rows.size();
        ++replayed_batches;
        memtable_.Apply(batch.value());
        return Status::OK();
      },
      &stats);
  if (!rst.ok()) return rst;

  WalWriterOptions wopts;
  wopts.sync = options_.wal_sync;
  wopts.sync_interval_ms = options_.wal_sync_interval_ms;
  auto w = WalWriter::Open(wal_path, wopts, stats.last_seqno + 1);
  if (!w.ok()) return w.status();
  wal_ = std::move(w).value();

  // Orphan cleanup: an interrupted flush can leave a segment or WAL
  // file that never made it into the manifest; recovery removes them
  // so the directory always equals the manifest's view.
  uint64_t orphans = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (!IsStoreFileName(name)) continue;
    bool live = name == manifest_.wal;
    for (const std::string& seg : manifest_.segments) {
      live = live || name == seg;
    }
    if (live) continue;
    std::error_code rec;
    if (std::filesystem::remove(entry.path(), rec)) ++orphans;
  }

  recovered_ = true;
  version_ = 1;

  StoreMetrics& m = Metrics();
  m.replay_batches->Add(static_cast<int64_t>(replayed_batches));
  m.replay_records->Add(static_cast<int64_t>(replayed_records));
  m.wal_torn_bytes->Add(static_cast<int64_t>(stats.torn_bytes_dropped));
  m.segments_live->Set(static_cast<int64_t>(segments_.size()));
  m.memtable_records->Set(static_cast<int64_t>(memtable_.num_records()));
  m.generation->Set(static_cast<int64_t>(manifest_.generation));

  if (info != nullptr) {
    info->generation = manifest_.generation;
    info->segments = segments_.size();
    info->replayed_batches = replayed_batches;
    info->replayed_records = replayed_records;
    info->torn_bytes_dropped = stats.torn_bytes_dropped;
    info->orphans_removed = orphans;
    info->seconds = sw.ElapsedSeconds();
  }
  return Status::OK();
}

Status Store::Append(const IngestBatch& batch) {
  if (batch.rows.empty()) {
    return Status::InvalidArgument("empty ingest batch");
  }
  for (const IngestRow& row : batch.rows) {
    if (row.label.empty()) {
      return Status::InvalidArgument("ingest row with empty label");
    }
    if (row.label.size() > 65536) {
      return Status::InvalidArgument("ingest label longer than 65536 bytes");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!recovered_) return Status::FailedPrecondition("store not recovered");
  if (broken_) {
    return Status::FailedPrecondition(
        "store is broken after a failed flush commit; reopen to recover");
  }

  const size_t cap = static_cast<size_t>(
      static_cast<double>(options_.flush_threshold_records) *
      options_.backpressure_factor);
  bool flush_due =
      memtable_.num_records() >= options_.flush_threshold_records ||
      (options_.flush_max_age_seconds > 0 && !memtable_.empty() &&
       memtable_.age_seconds() >= options_.flush_max_age_seconds);
  if (flush_due) {
    Status fst = FlushLocked();
    if (!fst.ok() && memtable_.num_records() >= cap) {
      // Admission control: flushes are failing and the memtable is at
      // the cap — shed load with a retryable rejection instead of
      // growing without bound.
      return Status::OutOfRange("store backpressure: memtable at " +
                                std::to_string(memtable_.num_records()) +
                                " records with flush failing: " +
                                fst.message());
    }
    if (broken_) {
      return Status::FailedPrecondition(
          "store is broken after a failed flush commit; reopen to recover");
    }
  }

  const uint64_t before = wal_.bytes();
  Status st = wal_.Append(EncodeBatch(batch));
  StoreMetrics& m = Metrics();
  if (!st.ok()) {
    // Not acked, not visible — but the frame may be partially on disk,
    // and replay truncates at the first invalid frame, which would
    // strand any *later* acked frames behind the tear. Repair in place
    // by cutting the file back to the pre-append length; if even that
    // fails the WAL can no longer be trusted for further appends.
    if (wal_.bytes() > before) {
      m.wal_torn_bytes->Add(static_cast<int64_t>(wal_.bytes() - before));
      Status trunc = wal_.TruncateTo(before);
      if (!trunc.ok()) {
        broken_ = true;
        return Status::Internal("WAL append failed (" + st.message() +
                                ") and torn-tail repair failed: " +
                                trunc.message());
      }
    }
    return st;
  }
  m.wal_bytes->Add(static_cast<int64_t>(wal_.bytes() - before));
  memtable_.Apply(batch);
  ++version_;
  m.wal_appends->Add(1);
  m.ingest_records->Add(static_cast<int64_t>(batch.rows.size()));
  m.memtable_records->Set(static_cast<int64_t>(memtable_.num_records()));
  return Status::OK();
}

Status Store::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!recovered_) return Status::FailedPrecondition("store not recovered");
  if (broken_) {
    return Status::FailedPrecondition(
        "store is broken after a failed flush commit; reopen to recover");
  }
  return FlushLocked();
}

Status Store::FlushLocked() {
  if (memtable_.empty()) return Status::OK();
  FTL_FAILPOINT("store.flush.segment");
  Stopwatch sw;
  const uint64_t gen = manifest_.generation + 1;
  const std::string seg_name = SegmentFileName(gen);
  const std::string seg_path = dir_ + "/" + seg_name;

  traj::FlatDatabase flat =
      traj::FlatDatabase::FromDatabase(memtable_.ToDatabase(seg_name));
  Status wst = io::WriteFtb(flat, seg_path);
  if (!wst.ok()) {
    std::error_code ec;
    std::filesystem::remove(seg_path, ec);
    return wst;
  }
  FTL_RETURN_NOT_OK(io::SyncFile(seg_path));
  // Validate the segment end-to-end (CRCs, invariants) *before* the
  // manifest names it: a bad segment must never become live.
  auto reread = io::ReadFtb(seg_path);
  if (!reread.ok()) {
    std::error_code ec;
    std::filesystem::remove(seg_path, ec);
    return Status::IOError("flush validation failed for " + seg_name + ": " +
                           reread.status().ToString());
  }

  Manifest next;
  next.generation = gen;
  next.segments = manifest_.segments;
  next.segments.push_back(seg_name);
  next.wal = WalFileName(gen);
  Status mst = WriteManifest(dir_, next);
  if (!mst.ok()) {
    std::error_code ec;
    std::filesystem::remove(seg_path, ec);
    return mst;
  }

  // The swap is the commit point: the new manifest is durable. Any
  // in-memory failure past here leaves disk ahead of memory, so the
  // store marks itself broken rather than risk appending to a WAL the
  // manifest no longer references.
  WalWriterOptions wopts;
  wopts.sync = options_.wal_sync;
  wopts.sync_interval_ms = options_.wal_sync_interval_ms;
  auto w = WalWriter::Open(dir_ + "/" + next.wal, wopts, 1);
  if (!w.ok()) {
    broken_ = true;
    return Status::Internal("flush committed but new WAL failed to open (" +
                            w.status().message() + "); reopen the store");
  }
  const std::string old_wal_path = dir_ + "/" + manifest_.wal;
  wal_.Close();
  wal_ = std::move(w).value();
  segments_.push_back(
      std::make_shared<traj::FlatDatabase>(std::move(reread).value()));
  if (options_.blocking_mode != core::BlockingMode::kOff) {
    segment_indices_.push_back(std::make_shared<const core::BlockingIndex>(
        *segments_.back(), options_.blocking));
  }
  memtable_.Clear();
  manifest_ = std::move(next);
  ++version_;
  {
    std::error_code ec;
    std::filesystem::remove(old_wal_path, ec);
  }

  StoreMetrics& m = Metrics();
  m.flushes->Add(1);
  m.flush_latency_us->Record(
      static_cast<int64_t>(sw.ElapsedSeconds() * 1e6));
  m.segments_live->Set(static_cast<int64_t>(segments_.size()));
  m.memtable_records->Set(0);
  m.generation->Set(static_cast<int64_t>(manifest_.generation));
  return Status::OK();
}

bool Store::CompactionDue() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recovered_ && !broken_ && options_.compact_trigger > 0 &&
         segments_.size() >= options_.compact_trigger;
}

Result<CompactionStats> Store::CompactOnce(bool force) {
  Stopwatch sw;

  // Phase 1 (locked): pick the input window and pin the inputs. Only a
  // *contiguous* run of manifest-adjacent segments may merge — a
  // non-contiguous merge would reorder the canonical first-appearance
  // walk and change query bytes. Size-tiered pick: the contiguous
  // window of compact_max_segments segments with the fewest total
  // records, so small flush-sized segments coalesce first and big
  // merged segments are not rewritten every round.
  size_t window_begin = 0;
  uint64_t gen_hint = 0;
  std::vector<std::string> input_names;
  std::vector<std::shared_ptr<const traj::FlatDatabase>> inputs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!recovered_) return Status::FailedPrecondition("store not recovered");
    if (broken_) {
      return Status::FailedPrecondition(
          "store is broken after a failed flush commit; reopen to recover");
    }
    const bool due = options_.compact_trigger > 0 &&
                     segments_.size() >= options_.compact_trigger;
    if ((!due && !force) || segments_.size() < 2) return CompactionStats{};
    const size_t width = std::min(
        std::max<size_t>(2, options_.compact_max_segments), segments_.size());
    size_t best = 0;
    uint64_t best_cost = ~uint64_t{0};
    for (size_t b = 0; b + width <= segments_.size(); ++b) {
      uint64_t cost = 0;
      for (size_t i = b; i < b + width; ++i) {
        cost += segments_[i]->TotalRecords();
      }
      if (cost < best_cost) {
        best_cost = cost;
        best = b;
      }
    }
    window_begin = best;
    gen_hint = manifest_.generation + 1;
    for (size_t i = best; i < best + width; ++i) {
      input_names.push_back(manifest_.segments[i]);
      inputs.push_back(segments_[i]);
    }
  }

  // Phase 2 (unlocked — appends and flushes proceed concurrently): the
  // merged segment is the snapshot merge semantics restricted to the
  // window (first-appearance label order, per-label records time-sorted
  // with ingest order breaking ties, first non-unknown owner), written
  // under a temp name no manifest ever references, then validated
  // end-to-end before it can become live. A crash past any of this
  // leaves an orphan that recovery GCs.
  CompactionStats stats;
  stats.inputs = inputs.size();
  for (const auto& seg : inputs) {
    stats.input_records += seg->TotalRecords();
  }
  const std::string out_name_hint = SegmentFileName(gen_hint);
  const std::string tmp_name = CompactTempFileName(gen_hint);
  const std::string tmp_path = dir_ + "/" + tmp_name;
  auto drop_tmp = [&tmp_path]() {
    std::error_code ec;
    std::filesystem::remove(tmp_path, ec);
  };

  FTL_FAILPOINT("store.compact.write");
  traj::FlatDatabase merged = [&]() {
    MutableSegment no_memtable;
    auto mini = StoreSnapshot::Build(inputs, no_memtable, 0, 0);
    return traj::FlatDatabase::FromDatabase(
        mini->MaterializeAll(out_name_hint));
  }();
  stats.output_records = merged.TotalRecords();
  stats.output_labels = merged.size();

  Status wst = io::WriteFtb(merged, tmp_path);
  if (!wst.ok()) {
    drop_tmp();
    return wst;
  }
  {
    Status sst = io::SyncFile(tmp_path);
    if (!sst.ok()) {
      drop_tmp();
      return sst;
    }
  }
  // Validate end-to-end (CRCs, invariants) *before* the manifest can
  // name it: a bad merged segment must never become live.
  auto reread = io::ReadFtb(tmp_path);
  if (!reread.ok()) {
    drop_tmp();
    return Status::IOError("compaction validation failed for " + tmp_name +
                           ": " + reread.status().ToString());
  }
  auto seg_db =
      std::make_shared<traj::FlatDatabase>(std::move(reread).value());
  std::shared_ptr<const core::BlockingIndex> seg_index;
  if (options_.blocking_mode != core::BlockingMode::kOff) {
    seg_index = std::make_shared<const core::BlockingIndex>(
        *seg_db, options_.blocking);
  }

  // Phase 3 (locked): commit. Rename the output into place, swap a
  // manifest that splices the window, then splice memory. Nothing
  // fallible happens after the manifest swap, so compaction never
  // leaves the store broken: any failure before the swap aborts with
  // the old segment set fully live.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (broken_) {
      drop_tmp();
      return Status::FailedPrecondition(
          "store is broken after a failed flush commit; reopen to recover");
    }
    // Re-validate the window. Concurrent flushes only append, and a
    // store runs at most one compactor, so the names must still sit at
    // the same positions; anything else means a caller raced two
    // compactions — abort rather than guess.
    bool window_intact =
        window_begin + input_names.size() <= manifest_.segments.size();
    for (size_t i = 0; window_intact && i < input_names.size(); ++i) {
      window_intact = manifest_.segments[window_begin + i] == input_names[i];
    }
    if (!window_intact) {
      drop_tmp();
      return Status::FailedPrecondition(
          "compaction window changed during merge");
    }

    {
      Status fst = [&]() -> Status {
        FTL_FAILPOINT("store.compact.swap");
        return Status::OK();
      }();
      if (!fst.ok()) {
        drop_tmp();
        return fst;
      }
    }

    const uint64_t gen = manifest_.generation + 1;
    const std::string seg_name = SegmentFileName(gen);
    const std::string seg_path = dir_ + "/" + seg_name;
    std::error_code ec;
    std::filesystem::rename(tmp_path, seg_path, ec);
    if (ec) {
      drop_tmp();
      return Status::IOError("rename " + tmp_name + " -> " + seg_name + ": " +
                             ec.message());
    }
    // The directory fsync inside WriteManifest makes the rename and the
    // manifest durable together; a crash in between leaves the renamed
    // file as an orphan the next recovery GCs.
    Manifest next;
    next.generation = gen;
    next.wal = manifest_.wal;  // compaction never touches WAL/memtable
    next.segments.assign(manifest_.segments.begin(),
                         manifest_.segments.begin() +
                             static_cast<long>(window_begin));
    next.segments.push_back(seg_name);
    next.segments.insert(next.segments.end(),
                         manifest_.segments.begin() +
                             static_cast<long>(window_begin +
                                               input_names.size()),
                         manifest_.segments.end());
    Status mst = WriteManifest(dir_, next);
    if (!mst.ok()) {
      std::error_code rec;
      std::filesystem::remove(seg_path, rec);
      return mst;
    }

    // Committed on disk; switch memory (infallible).
    segments_.erase(segments_.begin() + static_cast<long>(window_begin),
                    segments_.begin() +
                        static_cast<long>(window_begin + inputs.size()));
    segments_.insert(segments_.begin() + static_cast<long>(window_begin),
                     seg_db);
    if (options_.blocking_mode != core::BlockingMode::kOff &&
        segment_indices_.size() >= window_begin + inputs.size()) {
      segment_indices_.erase(
          segment_indices_.begin() + static_cast<long>(window_begin),
          segment_indices_.begin() +
              static_cast<long>(window_begin + inputs.size()));
      segment_indices_.insert(
          segment_indices_.begin() + static_cast<long>(window_begin),
          seg_index);
    }
    manifest_ = std::move(next);
    ++version_;
    stats.generation = manifest_.generation;

    // The merged-away inputs are immutable and unreferenced by the new
    // manifest: unlink best-effort (live snapshots keep reading through
    // their shared_ptr mmaps; a crash before the unlinks leaves orphans
    // for recovery GC).
    for (const std::string& name : input_names) {
      std::error_code rec;
      std::filesystem::remove(dir_ + "/" + name, rec);
    }

    StoreMetrics& m = Metrics();
    m.compactions->Add(1);
    m.compaction_input_segments->Add(static_cast<int64_t>(stats.inputs));
    m.compaction_output_records->Add(
        static_cast<int64_t>(stats.output_records));
    m.segments_live->Set(static_cast<int64_t>(segments_.size()));
    m.generation->Set(static_cast<int64_t>(manifest_.generation));
  }

  stats.seconds = sw.ElapsedSeconds();
  Metrics().compaction_latency_us->Record(
      static_cast<int64_t>(stats.seconds * 1e6));
  return stats;
}

std::shared_ptr<const StoreSnapshot> Store::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (snapshot_ == nullptr || snapshot_version_ != version_) {
    snapshot_ = StoreSnapshot::Build(segments_, memtable_,
                                     manifest_.generation, version_,
                                     segment_indices_,
                                     options_.blocking_mode);
    snapshot_version_ = version_;
  }
  return snapshot_;
}

traj::TrajectoryDatabase Store::MaterializeAll(const std::string& name) const {
  return Snapshot()->MaterializeAll(name);
}

bool Store::recovered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recovered_;
}

bool Store::broken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return broken_;
}

uint64_t Store::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return manifest_.generation;
}

size_t Store::num_segments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.size();
}

size_t Store::memtable_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memtable_.num_records();
}

size_t Store::total_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = memtable_.num_records();
  for (const auto& seg : segments_) n += seg->TotalRecords();
  return n;
}

uint64_t Store::wal_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_.bytes();
}

}  // namespace ftl::store
