#ifndef FTL_STORE_WAL_H_
#define FTL_STORE_WAL_H_

/// \file wal.h
/// The store's write-ahead log: an append-only file of CRC-framed
/// ingest batches, the durability root of the LSM-flavored store
/// (DESIGN.md §12).
///
/// Frame layout (little-endian, 16-byte header):
///
///   u32 payload_len | u32 crc32(seqno || payload) | u64 seqno | payload
///
/// The CRC covers the sequence number and the payload, so a frame torn
/// anywhere — header, seqno, or payload — fails validation. Sequence
/// numbers are strictly increasing within one WAL file; replay treats
/// the first invalid or out-of-order frame as the torn tail and
/// truncates the file there via io::TruncateToLastValidRecord, so a
/// crash mid-append can only drop the batches past the last complete
/// frame (no partial-record ghosts).
///
/// The payload is an encoded IngestBatch: the unit of atomicity for
/// ingest. A batch is either fully replayed or fully dropped.
///
/// Failpoint sites: "store.wal.append" (frame write; supports
/// `partial` to tear the frame), "store.wal.sync" (fsync barrier),
/// "store.recovery.replay" (per replayed frame).

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "traj/record.h"
#include "traj/trajectory.h"
#include "util/status.h"

namespace ftl::store {

/// One ingested observation row, the wire unit of POST /v1/ingest and
/// `ftl ingest`.
struct IngestRow {
  std::string label;                          ///< trajectory label
  traj::OwnerId owner = traj::kUnknownOwner;  ///< ground-truth owner
  traj::Timestamp t = 0;                      ///< observation time
  double x = 0.0;                             ///< projected x, meters
  double y = 0.0;                             ///< projected y, meters
};

/// The WAL payload unit and the store's atomic write unit: all rows of
/// a batch become visible (and durable) together.
struct IngestBatch {
  std::vector<IngestRow> rows;
};

/// Serializes a batch into the WAL payload encoding:
///   u32 nrows; per row: u32 label_len, label bytes, u64 owner,
///   i64 t, f64 x, f64 y.
std::string EncodeBatch(const IngestBatch& batch);

/// Parses a WAL payload. Defensive against arbitrary bytes (the WAL
/// frame CRC normally guarantees integrity, but the decoder is also a
/// fuzz target): any bounds or length violation is InvalidArgument,
/// never UB.
Result<IngestBatch> DecodeBatch(std::string_view payload);

/// WAL fsync policy (`--wal-sync`): the durability / throughput dial.
enum class WalSync {
  kAlways,    ///< fsync after every append; an acked append survives any crash
  kInterval,  ///< fsync at most every sync_interval_ms; bounded loss window
  kNever,     ///< never fsync; crash durability = whatever the OS flushed
};

/// Parses "always" | "interval" | "never".
Result<WalSync> ParseWalSync(std::string_view s);
const char* WalSyncName(WalSync s);

struct WalWriterOptions {
  WalSync sync = WalSync::kInterval;
  int64_t sync_interval_ms = 50;
};

/// Appends CRC-framed payloads to one WAL file. Not thread-safe: the
/// owning Store serializes all writes under its mutex.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens (creating if absent) `path` for appending. `next_seqno` is
  /// the sequence number of the next frame (recovery passes
  /// last_replayed + 1; a fresh WAL starts at 1).
  static Result<WalWriter> Open(const std::string& path,
                                const WalWriterOptions& options,
                                uint64_t next_seqno);

  /// Frames and appends one payload, then applies the sync policy.
  /// On error nothing is acked: the frame may still be partially on
  /// disk (a torn tail), which replay truncates.
  Status Append(std::string_view payload);

  /// Explicit fsync barrier (failpoint "store.wal.sync").
  Status Sync();

  /// Cuts the file back to `target_bytes` — the in-place repair after a
  /// torn append, so later frames land on a valid prefix instead of
  /// behind unreadable garbage. `target_bytes` must not exceed bytes().
  Status TruncateTo(uint64_t target_bytes);

  /// Closes the descriptor; further Appends fail. Idempotent.
  void Close();

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  uint64_t next_seqno() const { return next_seqno_; }

  /// Bytes in the file (pre-existing + appended here).
  uint64_t bytes() const { return bytes_; }

  /// Successful fsync barriers issued by this writer.
  uint64_t syncs() const { return syncs_; }

 private:
  int fd_ = -1;
  std::string path_;
  WalWriterOptions options_;
  uint64_t next_seqno_ = 1;
  uint64_t bytes_ = 0;
  uint64_t syncs_ = 0;
  int64_t last_sync_ms_ = 0;  ///< steady-clock ms of the last fsync
};

/// Replay statistics, surfaced through RecoveryInfo and the
/// ftl_store_replay_* metrics.
struct WalReplayStats {
  uint64_t frames = 0;              ///< valid frames visited
  uint64_t bytes = 0;               ///< bytes of valid frames
  uint64_t torn_bytes_dropped = 0;  ///< torn-tail bytes truncated away
  uint64_t last_seqno = 0;          ///< seqno of the last valid frame
};

/// Length in bytes of the longest prefix of `data` consisting of whole
/// valid frames with strictly increasing sequence numbers — the WAL's
/// io::ValidPrefixFn rule.
size_t WalValidPrefix(std::string_view data);

/// Scans an in-memory WAL image, invoking `fn(seqno, payload)` for
/// every valid frame; stops at the first invalid frame (torn tail). A
/// non-OK visitor status aborts and propagates.
Status ScanWal(std::string_view data,
               const std::function<Status(uint64_t, std::string_view)>& fn,
               WalReplayStats* stats);

/// Replays the WAL at `path`: repairs a torn tail in place (truncating
/// the file to its valid prefix), then visits every frame. A missing
/// file is OK (empty WAL). Each visited frame evaluates failpoint
/// "store.recovery.replay" first.
Status ReplayWal(const std::string& path,
                 const std::function<Status(uint64_t, std::string_view)>& fn,
                 WalReplayStats* stats);

}  // namespace ftl::store

#endif  // FTL_STORE_WAL_H_
