#ifndef FTL_STORE_MANIFEST_H_
#define FTL_STORE_MANIFEST_H_

/// \file manifest.h
/// The store MANIFEST: the single source of truth for which files are
/// live. A store directory contains immutable FTB segments
/// (`seg-NNNNNN.ftb`), the active WAL (`wal-NNNNNN.log`), and one
/// MANIFEST naming them plus a generation number. The manifest is
/// swapped atomically — write MANIFEST.tmp, fsync it, rename(2) over
/// MANIFEST, fsync the directory — so a crash at any point leaves
/// either the old or the new manifest intact, never a mix
/// (DESIGN.md §12). Files not named by the manifest are orphans from
/// interrupted flushes; recovery deletes them.
///
/// Format (text, CRC-sealed):
///
///   FTLMANIFEST v1
///   generation <N>
///   wal <wal file name>
///   segment <ftb file name>      (0+ lines, oldest first)
///   crc <hex crc32 of all preceding bytes>

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace ftl::store {

struct Manifest {
  uint64_t generation = 0;
  std::vector<std::string> segments;  ///< live segment file names, oldest first
  std::string wal;                    ///< active WAL file name
};

/// "seg-%06u.ftb" / "wal-%06u.log" for generation `gen`.
std::string SegmentFileName(uint64_t gen);
std::string WalFileName(uint64_t gen);

/// "compact-%06u.tmp": the temp name a compaction round writes its
/// merged segment under before the commit rename. Never named by a
/// manifest, so any survivor is an orphan and recovery deletes it.
std::string CompactTempFileName(uint64_t gen);

/// dir + "/MANIFEST".
std::string ManifestPath(const std::string& dir);

/// Serializes / parses the manifest format above. Parsing is strict:
/// any structural anomaly or CRC mismatch is an IOError (a corrupt
/// manifest means the swap protocol was violated — fail loudly rather
/// than guess).
std::string EncodeManifest(const Manifest& m);
Result<Manifest> DecodeManifest(std::string_view text);

/// Reads dir/MANIFEST; NotFound when absent (fresh store).
Result<Manifest> ReadManifest(const std::string& dir);

/// Atomically installs `m` as dir/MANIFEST via the temp-file + rename
/// protocol. Failpoint "store.manifest.swap" guards the temp write (an
/// injected error or torn write leaves the old manifest untouched).
Status WriteManifest(const std::string& dir, const Manifest& m);

}  // namespace ftl::store

#endif  // FTL_STORE_MANIFEST_H_
