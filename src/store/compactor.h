#ifndef FTL_STORE_COMPACTOR_H_
#define FTL_STORE_COMPACTOR_H_

/// \file compactor.h
/// Background segment compaction for the store.
///
/// A long-lived store accumulates one immutable segment per flush, and
/// every snapshot query pays the per-segment fan-out. The Compactor is
/// a single background thread that polls Store::CompactionDue() and
/// runs Store::CompactOnce() rounds until the segment count drops
/// below the trigger, merging small manifest-adjacent segments into
/// larger ones (size-tiered; DESIGN.md §14). All crash-safety lives in
/// CompactOnce — the thread here is a thin scheduler.
///
/// At most one Compactor may run per Store: CompactOnce assumes no
/// concurrent compaction (concurrent flushes/appends are fine).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "store/store.h"

namespace ftl::store {

struct CompactorOptions {
  /// How often the idle thread re-checks CompactionDue().
  int64_t poll_interval_ms = 250;
};

class Compactor {
 public:
  /// `store` must outlive the Compactor. Call Start() to begin.
  explicit Compactor(Store* store, CompactorOptions options = {});

  /// Stops and joins the thread.
  ~Compactor();

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  /// Spawns the background thread (idempotent).
  void Start();

  /// Signals the thread to exit and joins it (idempotent). Any
  /// in-flight compaction round finishes first — rounds are never
  /// interrupted midway (they are crash-safe anyway, but a clean stop
  /// should not leave temp files behind).
  void Stop();

  /// Wakes the thread now instead of waiting out the poll interval
  /// (e.g. right after an explicit Flush()).
  void Notify();

  /// Compaction rounds completed / failed since Start().
  uint64_t rounds() const { return rounds_.load(std::memory_order_relaxed); }
  uint64_t failures() const {
    return failures_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  Store* const store_;
  const CompactorOptions options_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;

  std::atomic<uint64_t> rounds_{0};
  std::atomic<uint64_t> failures_{0};
};

}  // namespace ftl::store

#endif  // FTL_STORE_COMPACTOR_H_
