#ifndef FTL_STORE_MEMTABLE_H_
#define FTL_STORE_MEMTABLE_H_

/// \file memtable.h
/// MutableSegment: the in-memory mutable segment fed by the WAL.
///
/// Rows are grouped by label in first-appearance order; within a label,
/// records keep ingest order (time sorting happens once, in the
/// Trajectory constructor, when the segment is materialized or
/// flushed). The structure is deterministic in the applied-batch
/// sequence, which is what makes crash recovery byte-exact: replaying
/// the WAL rebuilds precisely this state.
///
/// Not thread-safe; the owning Store serializes access.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/wal.h"
#include "traj/database.h"
#include "traj/record.h"
#include "traj/trajectory.h"
#include "util/stopwatch.h"

namespace ftl::store {

class MutableSegment {
 public:
  /// One label's accumulated rows, in ingest order.
  struct Entry {
    std::string label;
    traj::OwnerId owner = traj::kUnknownOwner;
    std::vector<traj::Record> records;
  };

  /// Applies every row of `batch`. The owner of a label is the first
  /// non-unknown owner seen for it (later conflicting owners are
  /// ignored) — the same rule the snapshot merge uses across segments,
  /// so flushing never changes a label's resolved owner.
  void Apply(const IngestBatch& batch);

  size_t num_records() const { return num_records_; }
  size_t num_trajectories() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Seconds since the first Apply after the last Clear (0 when empty);
  /// drives the age-based flush trigger.
  double age_seconds() const {
    return entries_.empty() ? 0.0 : age_.ElapsedSeconds();
  }

  /// Entries in first-appearance order.
  const std::vector<Entry>& entries() const { return entries_; }

  /// Materializes as an AoS database: entries in first-appearance
  /// order, each Trajectory time-sorted by its constructor.
  traj::TrajectoryDatabase ToDatabase(const std::string& name) const;

  void Clear();

 private:
  std::vector<Entry> entries_;
  std::unordered_map<std::string, size_t> by_label_;
  size_t num_records_ = 0;
  Stopwatch age_;
};

}  // namespace ftl::store

#endif  // FTL_STORE_MEMTABLE_H_
