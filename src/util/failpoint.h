#ifndef FTL_UTIL_FAILPOINT_H_
#define FTL_UTIL_FAILPOINT_H_

/// \file failpoint.h
/// Named fault-injection points for exercising failure paths.
///
/// A failpoint is a named site in fallible code where a fault can be
/// injected at runtime: an error return, a latency spike, a simulated
/// allocation failure, or a torn (partial) write. Sites are declared
/// inline:
///
///   Status ReadThing(...) {
///     FTL_FAILPOINT("io.read_thing");   // may return an injected error
///     ...
///   }
///
/// When nothing is armed, every site costs a single relaxed atomic
/// load — safe to leave in hot loops. Arming happens programmatically
/// (Arm / Configure), through the environment variable `FTL_FAILPOINTS`
/// (read by InitFromEnv, which the CLI calls on every invocation), or
/// through the CLI flag `--failpoints`. The activation string is a
/// `;`-separated list of `site=action[:arg]` clauses:
///
///   FTL_FAILPOINTS="io.read_csv=error;core.query.candidate=delay:5"
///
/// Actions:
///   error          return Status::Internal from the site
///   alloc          return Status::Internal marked as an allocation
///                  failure (simulates OOM without aborting)
///   delay:<ms>     sleep <ms> milliseconds, then continue normally
///   partial[:n]    IO write sites only: write the first n bytes
///                  (payload/2 when n is omitted) and return IOError
///
/// The official site catalog lives in failpoint.cc; Catalog() exposes
/// it so chaos tests can sweep every site one at a time.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace ftl::failpoint {

/// What an armed failpoint does when its site executes.
enum class Action {
  kError,         ///< return an injected Status::Internal
  kAllocFail,     ///< return a simulated allocation-failure Status
  kDelay,         ///< sleep `arg` milliseconds, then proceed
  kPartialWrite,  ///< IO sites: truncate the write to `arg` bytes
};

/// An armed failpoint configuration.
struct Spec {
  Action action = Action::kError;
  int64_t arg = 0;  ///< kDelay: milliseconds; kPartialWrite: bytes kept
};

/// Slow-path evaluation result for IO sites (see CheckIo).
struct Hit {
  Status status;               ///< non-OK for kError / kAllocFail
  bool partial_write = false;  ///< the site should truncate its write
  int64_t arg = 0;             ///< byte budget for a partial write
};

namespace internal {
extern std::atomic<int> g_armed_count;
}  // namespace internal

/// True when at least one failpoint is armed anywhere in the process.
/// One relaxed atomic load; the inactive fast path of every site.
inline bool AnyArmed() {
  return internal::g_armed_count.load(std::memory_order_relaxed) != 0;
}

/// Arms `name` with `spec` (re-arming replaces the previous spec).
void Arm(const std::string& name, const Spec& spec);

/// Disarms `name`; returns false when it was not armed.
bool Disarm(const std::string& name);

/// Disarms everything (does not reset hit counters).
void DisarmAll();

/// Parses and arms a `site=action[:arg];...` activation string.
Status Configure(const std::string& config);

/// Arms from the FTL_FAILPOINTS environment variable (no-op when the
/// variable is unset or empty). Idempotent; safe to call repeatedly.
Status InitFromEnv();

/// Times the failpoint `name` has fired (any action) since process
/// start. Counts survive DisarmAll.
int64_t HitCount(const std::string& name);

/// The official failpoint site names compiled into the library, for
/// exhaustive chaos sweeps.
std::vector<std::string> Catalog();

/// Names currently armed.
std::vector<std::string> Armed();

/// Slow-path evaluation of the site `name`: applies a delay inline and
/// returns the injected Status for error/alloc actions (OK otherwise).
/// Only call when AnyArmed() — use the FTL_FAILPOINT macro.
Status Check(const char* name);

/// Like Check, but additionally reports partial-write requests so IO
/// sites can tear their output. Only call when AnyArmed().
Hit CheckIo(const char* name);

}  // namespace ftl::failpoint

/// Declares a failpoint site; returns the injected Status from the
/// enclosing function when the site is armed with a fault. Compiles to
/// one relaxed atomic load when nothing is armed.
#define FTL_FAILPOINT(name)                                   \
  do {                                                        \
    if (::ftl::failpoint::AnyArmed()) {                       \
      ::ftl::Status _ftl_fp = ::ftl::failpoint::Check(name);  \
      if (!_ftl_fp.ok()) return _ftl_fp;                      \
    }                                                         \
  } while (0)

#endif  // FTL_UTIL_FAILPOINT_H_
