#include "util/string_util.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace ftl {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (;;) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  // std::from_chars<double> is available in libstdc++ >= 11.
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string RenderTable(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return "";
  size_t cols = 0;
  for (const auto& r : rows) cols = std::max(cols, r.size());
  std::vector<size_t> width(cols, 0);
  for (const auto& r : rows) {
    for (size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::string out;
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    for (size_t c = 0; c < cols; ++c) {
      std::string cell = c < r.size() ? r[c] : "";
      cell.resize(width[c], ' ');
      out += cell;
      if (c + 1 < cols) out += "  ";
    }
    out += '\n';
    if (i == 0) {
      for (size_t c = 0; c < cols; ++c) {
        out += std::string(width[c], '-');
        if (c + 1 < cols) out += "  ";
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace ftl
