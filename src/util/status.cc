#include "util/status.h"

namespace ftl {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace ftl
