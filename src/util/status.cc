#include "util/status.h"

namespace ftl {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

int ExitCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 2;
    case StatusCode::kNotFound:
      return 3;
    case StatusCode::kIOError:
      return 4;
    case StatusCode::kOutOfRange:
      return 5;
    case StatusCode::kFailedPrecondition:
      return 6;
    case StatusCode::kInternal:
      return 7;
    case StatusCode::kDeadlineExceeded:
      return 8;
    case StatusCode::kCancelled:
      return 9;
  }
  return 1;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace ftl
