#include "util/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "util/string_util.h"

namespace ftl::failpoint {

namespace internal {
std::atomic<int> g_armed_count{0};
}  // namespace internal

namespace {

/// Every FTL_FAILPOINT site compiled into the library. Chaos tests
/// sweep this list; keep it in sync when adding sites.
constexpr const char* kCatalog[] = {
    "io.read_csv",           // io::ReadCsv, before parsing
    "io.write_csv",          // io::WriteCsv payload write
    "io.read_model",         // io::ReadModel, before parsing
    "io.write_model",        // io::WriteModel payload write
    "io.read_ftb",           // io::ReadFtb, before mapping
    "io.write_ftb",          // io::WriteFtb payload write
    "core.train",            // FtlEngine::Train entry
    "core.query.candidate",  // FtlEngine::QueryImpl, per candidate
    "store.wal.append",      // store::WalWriter::Append frame write
    "store.wal.sync",        // store::WalWriter::Sync fsync barrier
    "store.flush.segment",   // store::Store flush, before segment write
    "store.manifest.swap",   // store::WriteManifest temp-file write
    "store.recovery.replay", // store::ReplayWal, per recovered frame
    "store.compact.write",   // store::Store compaction, before merged write
    "store.compact.swap",    // store::Store compaction, before manifest swap
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Spec> armed;
  std::map<std::string, int64_t> hits;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // leaked: usable during shutdown
  return *r;
}

/// Looks up the armed spec for `name` and bumps its hit counter.
bool Lookup(const char* name, Spec* out) {
  {
    Registry& r = GetRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.armed.find(name);
    if (it == r.armed.end()) return false;
    ++r.hits[name];
    *out = it->second;
  }
  // Trips are exported as obs counters too (aggregate + per site).
  // Only armed sites reach this slow path, so the registry lookup per
  // trip is fine; the registry mutex is released first to keep the
  // obs and failpoint locks unordered.
  auto& reg = obs::MetricsRegistry::Global();
  static obs::Counter& trips =
      reg.GetCounter("ftl_failpoint_trips_total");
  trips.Add(1);
  reg.GetCounter(std::string("ftl_failpoint_trips_total{site=\"") + name +
                 "\"}")
      .Add(1);
  return true;
}

Status InjectedStatus(const char* name, const Spec& spec) {
  switch (spec.action) {
    case Action::kError:
      return Status::Internal(std::string("failpoint '") + name +
                              "': injected error");
    case Action::kAllocFail:
      return Status::Internal(std::string("failpoint '") + name +
                              "': simulated allocation failure");
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.arg));
      return Status::OK();
    case Action::kPartialWrite:
      // Non-IO sites cannot tear a write; treat as a plain pass so a
      // broad sweep of `partial` stays harmless outside IO paths.
      return Status::OK();
  }
  return Status::OK();
}

Result<Spec> ParseSpec(std::string_view action_str) {
  std::string_view action = action_str;
  std::string_view arg;
  size_t colon = action_str.find(':');
  if (colon != std::string_view::npos) {
    action = action_str.substr(0, colon);
    arg = action_str.substr(colon + 1);
  }
  Spec spec;
  if (action == "error") {
    spec.action = Action::kError;
  } else if (action == "alloc") {
    spec.action = Action::kAllocFail;
  } else if (action == "delay") {
    spec.action = Action::kDelay;
  } else if (action == "partial") {
    spec.action = Action::kPartialWrite;
  } else {
    return Status::InvalidArgument("unknown failpoint action '" +
                                   std::string(action) +
                                   "' (expected error|alloc|delay|partial)");
  }
  if (!arg.empty()) {
    int64_t v = 0;
    if (!ParseInt64(arg, &v) || v < 0) {
      return Status::InvalidArgument("bad failpoint argument '" +
                                     std::string(arg) + "'");
    }
    spec.arg = v;
  }
  return spec;
}

}  // namespace

void Arm(const std::string& name, const Spec& spec) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto [it, inserted] = r.armed.insert_or_assign(name, spec);
  (void)it;
  if (inserted) {
    internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
}

bool Disarm(const std::string& name) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.armed.erase(name) == 0) return false;
  internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void DisarmAll() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  internal::g_armed_count.fetch_sub(static_cast<int>(r.armed.size()),
                                    std::memory_order_relaxed);
  r.armed.clear();
}

Status Configure(const std::string& config) {
  for (std::string_view clause_raw :
       Split(config, ';')) {
    std::string_view clause = Trim(clause_raw);
    if (clause.empty()) continue;
    size_t eq = clause.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument(
          "bad failpoint clause '" + std::string(clause) +
          "' (expected site=action[:arg])");
    }
    auto spec = ParseSpec(Trim(clause.substr(eq + 1)));
    if (!spec.ok()) return spec.status();
    Arm(std::string(Trim(clause.substr(0, eq))), spec.value());
  }
  return Status::OK();
}

Status InitFromEnv() {
  const char* env = std::getenv("FTL_FAILPOINTS");
  if (env == nullptr || *env == '\0') return Status::OK();
  return Configure(env);
}

int64_t HitCount(const std::string& name) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.hits.find(name);
  return it == r.hits.end() ? 0 : it->second;
}

std::vector<std::string> Catalog() {
  return {std::begin(kCatalog), std::end(kCatalog)};
}

std::vector<std::string> Armed() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> names;
  names.reserve(r.armed.size());
  for (const auto& [name, spec] : r.armed) names.push_back(name);
  return names;
}

Status Check(const char* name) {
  Spec spec;
  if (!Lookup(name, &spec)) return Status::OK();
  return InjectedStatus(name, spec);
}

Hit CheckIo(const char* name) {
  Hit hit;
  Spec spec;
  if (!Lookup(name, &spec)) return hit;
  if (spec.action == Action::kPartialWrite) {
    hit.partial_write = true;
    hit.arg = spec.arg;
    return hit;
  }
  hit.status = InjectedStatus(name, spec);
  return hit;
}

}  // namespace ftl::failpoint
