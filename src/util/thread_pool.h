#ifndef FTL_UTIL_THREAD_POOL_H_
#define FTL_UTIL_THREAD_POOL_H_

/// \file thread_pool.h
/// A small fixed-size thread pool plus a ParallelFor helper.
///
/// Used by FtlEngine to answer independent queries in parallel — the
/// "parallel implementation" the paper lists as future work.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ftl {

/// Fixed-size worker pool executing void() tasks FIFO.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (min 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Number of workers ParallelFor / ParallelForWorkers will actually
/// use for `n` items on `num_threads` threads: min(num_threads, n),
/// at least 1. Callers sizing per-worker state must use this.
size_t ParallelWorkerCount(size_t n, size_t num_threads);

/// Runs fn(worker, begin, end) over chunked subranges of [0, n).
///
/// Workers pull chunks from a shared atomic counter (dynamic
/// scheduling), so skewed per-item cost — e.g. wildly different
/// trajectory lengths — cannot strand the tail of the range on one
/// thread the way static block partitioning does. `worker` is in
/// [0, ParallelWorkerCount(n, num_threads)) and is stable for the
/// lifetime of the call, enabling per-thread scratch state indexed by
/// it. With n <= 1 or one worker, runs inline on the calling thread.
/// The calling thread participates as worker 0.
void ParallelForWorkers(
    size_t n, size_t num_threads,
    const std::function<void(size_t worker, size_t begin, size_t end)>& fn);

/// Cancellable variant: `stop` (may be null) is polled once per chunk
/// claim; once it returns true no further chunks are claimed, and
/// workers wind down after finishing their in-flight chunk.
///
/// Because chunks are claimed in increasing order and every claimed
/// chunk runs to completion, the processed items always form a
/// contiguous prefix [0, processed) of the range. Returns `processed`
/// (== n when the range completed). Deadline/cancellation plumbing in
/// FtlEngine relies on this prefix guarantee for reproducible partial
/// results.
size_t ParallelForWorkers(
    size_t n, size_t num_threads, const std::function<bool()>& stop,
    const std::function<void(size_t worker, size_t begin, size_t end)>& fn);

/// Runs fn(i) for i in [0, n) across `num_threads` threads via the
/// chunked scheduler above. With n <= 1 or num_threads <= 1, runs
/// inline on the calling thread.
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn);

}  // namespace ftl

#endif  // FTL_UTIL_THREAD_POOL_H_
