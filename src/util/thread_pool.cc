#include "util/thread_pool.h"

#include <algorithm>

namespace ftl {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  num_threads = std::max<size_t>(1, std::min(num_threads, n));
  if (num_threads == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  size_t chunk = (n + num_threads - 1) / num_threads;
  for (size_t t = 0; t < num_threads; ++t) {
    size_t lo = t * chunk;
    size_t hi = std::min(n, lo + chunk);
    if (lo >= hi) break;
    threads.emplace_back([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace ftl
