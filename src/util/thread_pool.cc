#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace ftl {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

size_t ParallelWorkerCount(size_t n, size_t num_threads) {
  return std::max<size_t>(1, std::min(num_threads, n));
}

void ParallelForWorkers(
    size_t n, size_t num_threads,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  ParallelForWorkers(n, num_threads, nullptr, fn);
}

size_t ParallelForWorkers(
    size_t n, size_t num_threads, const std::function<bool()>& stop,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return 0;
  size_t workers = ParallelWorkerCount(n, num_threads);
  if (n <= 1 || workers == 1) {
    if (!stop) {
      fn(0, 0, n);
      return n;
    }
    // Serial cancellable path: same chunk granularity as the parallel
    // one, so cancellation latency does not depend on the worker count.
    size_t chunk = std::max<size_t>(1, n / 8);
    size_t begin = 0;
    while (begin < n) {
      if (stop()) return begin;
      size_t end = std::min(n, begin + chunk);
      fn(0, begin, end);
      begin = end;
    }
    return n;
  }
  // Chunks several times smaller than a fair share keep all workers
  // busy under skewed per-item cost without contending on the counter.
  size_t chunk = std::max<size_t>(1, n / (workers * 8));
  std::atomic<size_t> next{0};
  std::atomic<bool> stopped{false};
  auto run = [n, chunk, &next, &stopped, &stop, &fn](size_t worker) {
    for (;;) {
      if (stop) {
        if (stopped.load(std::memory_order_relaxed)) return;
        if (stop()) {
          stopped.store(true, std::memory_order_relaxed);
          return;
        }
      }
      size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      fn(worker, begin, std::min(n, begin + chunk));
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (size_t t = 1; t < workers; ++t) threads.emplace_back(run, t);
  run(0);  // the calling thread is worker 0
  for (auto& th : threads) th.join();
  // Claims are monotone and every claimed chunk completes, so the
  // processed items are exactly the prefix [0, min(next, n)).
  return std::min(n, next.load(std::memory_order_relaxed));
}

void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn) {
  ParallelForWorkers(n, num_threads,
                     [&fn](size_t /*worker*/, size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) fn(i);
                     });
}

}  // namespace ftl
