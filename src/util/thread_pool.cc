#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "obs/metrics.h"

namespace ftl {

namespace {

/// Pool/scheduler metrics, resolved once. Queue depth and busy-worker
/// gauges are bumped per task (pool tasks are coarse); the chunked
/// scheduler counts regions and chunk claims per region, and tracks
/// active workers so utilization is observable while a query runs.
struct PoolMetrics {
  obs::Counter* tasks;
  obs::Gauge* queue_depth;
  obs::Gauge* busy_workers;
  obs::Counter* parallel_regions;
  obs::Counter* parallel_chunks;
  obs::Gauge* parallel_workers;
};

const PoolMetrics& Metrics() {
  static const PoolMetrics m = [] {
    auto& r = obs::MetricsRegistry::Global();
    PoolMetrics pm;
    pm.tasks = &r.GetCounter("ftl_threadpool_tasks_total");
    pm.queue_depth = &r.GetGauge("ftl_threadpool_queue_depth");
    pm.busy_workers = &r.GetGauge("ftl_threadpool_busy_workers");
    pm.parallel_regions = &r.GetCounter("ftl_parallel_regions_total");
    pm.parallel_chunks = &r.GetCounter("ftl_parallel_chunks_total");
    pm.parallel_workers = &r.GetGauge("ftl_parallel_active_workers");
    return pm;
  }();
  return m;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  const PoolMetrics& pm = Metrics();
  pm.tasks->Add(1);
  pm.queue_depth->Add(1);
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    const PoolMetrics& pm = Metrics();
    pm.queue_depth->Sub(1);
    pm.busy_workers->Add(1);
    task();
    pm.busy_workers->Sub(1);
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

size_t ParallelWorkerCount(size_t n, size_t num_threads) {
  return std::max<size_t>(1, std::min(num_threads, n));
}

void ParallelForWorkers(
    size_t n, size_t num_threads,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  ParallelForWorkers(n, num_threads, nullptr, fn);
}

size_t ParallelForWorkers(
    size_t n, size_t num_threads, const std::function<bool()>& stop,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return 0;
  size_t workers = ParallelWorkerCount(n, num_threads);
  if (n <= 1 || workers == 1) {
    if (!stop) {
      fn(0, 0, n);
      return n;
    }
    // Serial cancellable path: same chunk granularity as the parallel
    // one, so cancellation latency does not depend on the worker count.
    size_t chunk = std::max<size_t>(1, n / 8);
    size_t begin = 0;
    while (begin < n) {
      if (stop()) return begin;
      size_t end = std::min(n, begin + chunk);
      fn(0, begin, end);
      begin = end;
    }
    return n;
  }
  // Chunks several times smaller than a fair share keep all workers
  // busy under skewed per-item cost without contending on the counter.
  size_t chunk = std::max<size_t>(1, n / (workers * 8));
  std::atomic<size_t> next{0};
  std::atomic<bool> stopped{false};
  const PoolMetrics& pm = Metrics();
  pm.parallel_regions->Add(1);
  auto run = [n, chunk, &next, &stopped, &stop, &fn, &pm](size_t worker) {
    pm.parallel_workers->Add(1);
    for (;;) {
      if (stop) {
        if (stopped.load(std::memory_order_relaxed)) break;
        if (stop()) {
          stopped.store(true, std::memory_order_relaxed);
          break;
        }
      }
      size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      pm.parallel_chunks->Add(1);
      fn(worker, begin, std::min(n, begin + chunk));
    }
    pm.parallel_workers->Sub(1);
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (size_t t = 1; t < workers; ++t) threads.emplace_back(run, t);
  run(0);  // the calling thread is worker 0
  for (auto& th : threads) th.join();
  // Claims are monotone and every claimed chunk completes, so the
  // processed items are exactly the prefix [0, min(next, n)).
  return std::min(n, next.load(std::memory_order_relaxed));
}

void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn) {
  ParallelForWorkers(n, num_threads,
                     [&fn](size_t /*worker*/, size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) fn(i);
                     });
}

}  // namespace ftl
