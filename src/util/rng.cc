#include "util/rng.h"

#include <algorithm>
#include <numeric>

namespace ftl {

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  std::vector<size_t> all(n);
  std::iota(all.begin(), all.end(), size_t{0});
  if (k >= n) {
    Shuffle(&all);
    return all;
  }
  // Partial Fisher–Yates: the first k slots become the sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + Index(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

std::vector<double> PoissonProcess(Rng* rng, double rate, double t0,
                                   double t1) {
  std::vector<double> times;
  if (rate <= 0 || t1 <= t0) return times;
  double t = t0;
  for (;;) {
    t += rng->Exponential(rate);
    if (t >= t1) break;
    times.push_back(t);
  }
  return times;
}

}  // namespace ftl
