#ifndef FTL_UTIL_STATUS_H_
#define FTL_UTIL_STATUS_H_

/// \file status.h
/// Lightweight Status / Result error-handling primitives.
///
/// The FTL public API does not throw across module boundaries: fallible
/// operations return `Status` (or `Result<T>` when they also produce a
/// value). This mirrors the error-handling idiom of production database
/// engines (RocksDB, Arrow).

#include <optional>
#include <string>
#include <utility>

namespace ftl {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kDeadlineExceeded,  ///< an operation ran past its deadline
  kCancelled,         ///< the caller requested cancellation
};

/// Returns a human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// The result of an operation that can fail.
///
/// A default-constructed Status is OK. Failed statuses carry a code and a
/// message. Status is cheap to copy for the OK case and small otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// The result of an operation that produces a T or fails with a Status.
///
/// Usage:
///   Result<Foo> r = MakeFoo();
///   if (!r.ok()) return r.status();
///   Foo& foo = r.value();
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  /// Constructs a failed result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  /// The contained value; must only be called when ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Returns the value or `fallback` when failed.
  T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present
};

/// Maps a Status to a process exit code, one distinct code per error
/// category so scripts can branch on the failure kind:
///   0 OK; 2 InvalidArgument; 3 NotFound; 4 IOError; 5 OutOfRange;
///   6 FailedPrecondition; 7 Internal; 8 DeadlineExceeded; 9 Cancelled.
/// (1 is reserved for usage errors: unknown command / malformed flags.)
/// This is THE status→exit-code table: the one-shot CLI and the
/// `ftl serve` daemon both use it, and the serve layer's HTTP mapping
/// (serve::HttpStatusForStatus) derives from the same StatusCode enum,
/// so the two surfaces cannot drift apart. Documented in
/// docs/OPERATIONS.md.
int ExitCodeForStatus(const Status& status);

/// Propagates a non-OK status out of the current function.
#define FTL_RETURN_NOT_OK(expr)              \
  do {                                       \
    ::ftl::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace ftl

#endif  // FTL_UTIL_STATUS_H_
