#ifndef FTL_UTIL_DEADLINE_H_
#define FTL_UTIL_DEADLINE_H_

/// \file deadline.h
/// Cooperative deadline and cancellation primitives.
///
/// Long-running operations (FtlEngine::Query / BatchQuery) accept a
/// Deadline and a CancelToken and poll them at chunk granularity,
/// returning the work completed so far instead of hanging. Both types
/// are cheap values: copying a token shares the underlying flag, and
/// an unset Deadline / default CancelToken never trips and never reads
/// the clock.

#include <atomic>
#include <chrono>
#include <memory>

namespace ftl {

/// A shared cancellation flag. Default-constructed tokens are inert
/// (never cancelled); Create() makes a real token whose copies all
/// observe the same RequestCancel().
class CancelToken {
 public:
  CancelToken() = default;

  /// Makes a cancellable token.
  static CancelToken Create() {
    CancelToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  /// Requests cancellation; visible to every copy of this token.
  /// No-op on an inert token.
  void RequestCancel() {
    if (flag_) flag_->store(true, std::memory_order_release);
  }

  /// True when cancellation has been requested.
  bool cancel_requested() const {
    return flag_ && flag_->load(std::memory_order_acquire);
  }

  /// True for tokens made by Create() (i.e. cancellation is possible).
  bool can_cancel() const { return flag_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// A point in time after which cooperative work should stop. The
/// default Deadline is unset and never expires.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  /// A deadline `timeout` from now.
  static Deadline After(std::chrono::nanoseconds timeout) {
    return At(Clock::now() + timeout);
  }

  /// Convenience: a deadline `ms` milliseconds from now.
  static Deadline AfterMillis(int64_t ms) {
    return After(std::chrono::milliseconds(ms));
  }

  /// A deadline at an absolute steady-clock instant.
  static Deadline At(Clock::time_point tp) {
    Deadline d;
    d.has_ = true;
    d.tp_ = tp;
    return d;
  }

  /// True when a deadline is set.
  bool has_deadline() const { return has_; }

  /// True when the deadline has passed (always false when unset).
  bool expired() const { return has_ && Clock::now() >= tp_; }

  /// The instant; only meaningful when has_deadline().
  Clock::time_point time() const { return tp_; }

 private:
  bool has_ = false;
  Clock::time_point tp_{};
};

}  // namespace ftl

#endif  // FTL_UTIL_DEADLINE_H_
