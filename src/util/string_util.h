#ifndef FTL_UTIL_STRING_UTIL_H_
#define FTL_UTIL_STRING_UTIL_H_

/// \file string_util.h
/// Small string helpers used by the CSV codec and the table printers.

#include <string>
#include <string_view>
#include <vector>

namespace ftl {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a double; returns false on any trailing garbage.
bool ParseDouble(std::string_view s, double* out);

/// Parses a signed 64-bit integer; returns false on any trailing garbage.
bool ParseInt64(std::string_view s, int64_t* out);

/// Formats `v` with `digits` decimal places.
std::string FormatDouble(double v, int digits);

/// Renders an aligned plain-text table; `rows` includes the header row.
std::string RenderTable(const std::vector<std::vector<std::string>>& rows);

}  // namespace ftl

#endif  // FTL_UTIL_STRING_UTIL_H_
