#ifndef FTL_UTIL_RNG_H_
#define FTL_UTIL_RNG_H_

/// \file rng.h
/// Deterministic random-number utilities.
///
/// Every stochastic component in the library (simulators, samplers,
/// experiment harnesses) takes an explicit seed so that all results —
/// including the paper-figure reproductions — are bit-reproducible.

#include <cstdint>
#include <random>
#include <vector>

namespace ftl {

/// A seeded random engine with convenience samplers.
///
/// Wraps std::mt19937_64. Not thread-safe; create one engine per thread
/// (see Fork()).
class Rng {
 public:
  /// Constructs an engine from a 64-bit seed.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : engine_(seed) {}

  /// Underlying engine access (for std:: distributions).
  std::mt19937_64& engine() { return engine_; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Normal sample with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Exponential sample with the given rate (mean 1/rate).
  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Poisson sample with the given mean.
  int64_t Poisson(double mean) {
    return std::poisson_distribution<int64_t>(mean)(engine_);
  }

  /// Returns a uniformly random index in [0, n). n must be > 0.
  size_t Index(size_t n) {
    return static_cast<size_t>(
        std::uniform_int_distribution<size_t>(0, n - 1)(engine_));
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Index(i)]);
    }
  }

  /// Samples k distinct indices from [0, n) without replacement.
  /// If k >= n, returns all indices 0..n-1 (shuffled).
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  /// Derives an independent child engine; deterministic given the parent
  /// state. Useful for handing per-thread/per-entity streams out of one
  /// master seed.
  Rng Fork() { return Rng(engine_()); }

 private:
  std::mt19937_64 engine_;
};

/// Event times of a homogeneous Poisson process with rate `rate` (events
/// per second) on [t0, t1), in increasing order.
std::vector<double> PoissonProcess(Rng* rng, double rate, double t0,
                                   double t1);

}  // namespace ftl

#endif  // FTL_UTIL_RNG_H_
