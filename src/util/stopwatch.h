#ifndef FTL_UTIL_STOPWATCH_H_
#define FTL_UTIL_STOPWATCH_H_

/// \file stopwatch.h
/// Wall-clock timing helper for the runtime-efficiency experiments.

#include <chrono>

namespace ftl {

/// Measures elapsed wall-clock time from construction or the last Reset().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction / last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ftl

#endif  // FTL_UTIL_STOPWATCH_H_
