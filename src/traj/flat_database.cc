#include "traj/flat_database.h"

#include <utility>

namespace ftl::traj {

namespace {

/// Heap backing for a FlatDatabase built from an AoS database: the
/// columns live in ordinary vectors owned by a shared_ptr so that
/// copies of the database share one allocation.
struct OwnedColumns {
  std::vector<uint64_t> record_offsets;
  std::vector<uint64_t> owners;
  std::vector<uint64_t> label_offsets;
  std::string label_pool;
  std::vector<int64_t> ts;
  std::vector<double> xs;
  std::vector<double> ys;
};

}  // namespace

Trajectory FlatTrajectoryView::Materialize() const {
  std::vector<Record> records;
  records.reserve(n_);
  for (size_t i = 0; i < n_; ++i) records.push_back((*this)[i]);
  return Trajectory(std::string(label_), owner_, std::move(records));
}

FlatDatabase FlatDatabase::FromDatabase(const TrajectoryDatabase& db) {
  auto owned = std::make_shared<OwnedColumns>();
  size_t total_records = 0;
  size_t total_labels = 0;
  for (size_t i = 0; i < db.size(); ++i) {
    total_records += db[i].size();
    total_labels += db[i].label().size();
  }

  owned->record_offsets.reserve(db.size() + 1);
  owned->owners.reserve(db.size());
  owned->label_offsets.reserve(db.size() + 1);
  owned->label_pool.reserve(total_labels);
  owned->ts.reserve(total_records);
  owned->xs.reserve(total_records);
  owned->ys.reserve(total_records);

  owned->record_offsets.push_back(0);
  owned->label_offsets.push_back(0);
  for (size_t i = 0; i < db.size(); ++i) {
    const Trajectory& t = db[i];
    for (const Record& r : t.records()) {
      owned->ts.push_back(r.t);
      owned->xs.push_back(r.location.x);
      owned->ys.push_back(r.location.y);
    }
    owned->label_pool.append(t.label());
    owned->owners.push_back(static_cast<uint64_t>(t.owner()));
    owned->record_offsets.push_back(owned->ts.size());
    owned->label_offsets.push_back(owned->label_pool.size());
  }

  Columns cols;
  cols.record_offsets = owned->record_offsets.data();
  cols.owners = owned->owners.data();
  cols.label_offsets = owned->label_offsets.data();
  cols.label_pool = owned->label_pool.data();
  cols.ts = owned->ts.data();
  cols.xs = owned->xs.data();
  cols.ys = owned->ys.data();
  cols.num_trajectories = db.size();
  cols.num_records = total_records;
  cols.label_pool_size = owned->label_pool.size();

  return FromColumns(cols, std::move(owned), db.name());
}

FlatDatabase FlatDatabase::FromColumns(const Columns& cols,
                                       std::shared_ptr<const void> storage,
                                       std::string name) {
  FlatDatabase out;
  out.cols_ = cols;
  out.storage_ = std::move(storage);
  out.name_ = std::move(name);
  out.BuildLabelIndex();
  return out;
}

TrajectoryDatabase FlatDatabase::ToDatabase() const {
  TrajectoryDatabase db(name_);
  for (size_t i = 0; i < size(); ++i) {
    // Labels are validated unique at construction (FTB load) or come
    // from a TrajectoryDatabase, so Add cannot reject here.
    (void)db.Add((*this)[i].Materialize());
  }
  return db;
}

size_t FlatDatabase::Find(std::string_view label) const {
  auto it = by_label_.find(label);
  return it == by_label_.end() ? npos : it->second;
}

void FlatDatabase::BuildLabelIndex() {
  by_label_.clear();
  by_label_.reserve(size());
  for (size_t i = 0; i < size(); ++i) {
    by_label_.emplace(label(i), i);
  }
}

}  // namespace ftl::traj
