#include "traj/record.h"

#include <limits>

namespace ftl::traj {

double RequiredSpeed(const Record& a, const Record& b) {
  double d = Dist(a, b);
  int64_t dt = TimeDiff(a, b);
  if (dt == 0) {
    if (d == 0.0) return 0.0;
    return std::numeric_limits<double>::infinity();
  }
  return d / static_cast<double>(dt);
}

}  // namespace ftl::traj
