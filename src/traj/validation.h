#ifndef FTL_TRAJ_VALIDATION_H_
#define FTL_TRAJ_VALIDATION_H_

/// \file validation.h
/// Ingest-time data quality checks.
///
/// Real trajectory dumps are dirty: shuffled rows, duplicate points,
/// NaN coordinates, impossible jumps. ValidateDatabase audits a loaded
/// database and reports everything a linking run would silently suffer
/// from; Sanitize applies the safe fixes.

#include <string>
#include <vector>

#include "traj/database.h"

namespace ftl::traj {

/// Audit results for one database.
struct ValidationReport {
  size_t trajectories = 0;
  size_t records = 0;
  size_t empty_trajectories = 0;
  size_t singleton_trajectories = 0;   ///< 1 record: unusable as query
  size_t non_finite_records = 0;       ///< NaN/inf coordinates
  size_t duplicate_records = 0;        ///< same (t, x, y) repeated
  size_t speed_violations = 0;         ///< consecutive pair above vmax
  double max_observed_speed_mps = 0.0;

  /// True when nothing above the configured tolerances was found.
  bool clean = false;

  /// Human-readable one-line-per-issue summary.
  std::string ToString() const;
};

/// Validation thresholds.
struct ValidationOptions {
  /// Speed above which a consecutive same-trajectory pair is counted as
  /// a violation (default: generous 200 kph — data errors, not fast
  /// driving).
  double max_speed_mps = 200.0 * 1000.0 / 3600.0;
};

/// Audits `db` (read-only).
ValidationReport ValidateDatabase(const TrajectoryDatabase& db,
                                  const ValidationOptions& options = {});

/// Returns a cleaned copy: drops non-finite records, collapses exact
/// duplicate records, drops empty trajectories. Does NOT touch speed
/// violations (they may be genuine noise the models should learn).
TrajectoryDatabase Sanitize(const TrajectoryDatabase& db);

}  // namespace ftl::traj

#endif  // FTL_TRAJ_VALIDATION_H_
