#include "traj/transforms.h"

namespace ftl::traj {

Trajectory DownSample(const Trajectory& t, double rate, Rng* rng) {
  std::vector<Record> kept;
  kept.reserve(static_cast<size_t>(static_cast<double>(t.size()) * rate) + 1);
  for (const Record& r : t.records()) {
    if (rng->Bernoulli(rate)) kept.push_back(r);
  }
  return Trajectory(t.label(), t.owner(), std::move(kept));
}

TrajectoryDatabase DownSample(const TrajectoryDatabase& db, double rate,
                              Rng* rng) {
  TrajectoryDatabase out(db.name());
  for (const auto& t : db) {
    Rng sub = rng->Fork();
    // Add cannot fail: labels are unique in the source database.
    (void)out.Add(DownSample(t, rate, &sub));
  }
  return out;
}

TrajectoryDatabase TrimDuration(const TrajectoryDatabase& db, Timestamp t0,
                                int64_t duration_seconds) {
  TrajectoryDatabase out(db.name());
  for (const auto& t : db) {
    (void)out.Add(t.SliceTime(t0, t0 + duration_seconds));
  }
  return out;
}

std::pair<Trajectory, Trajectory> SplitRecords(const Trajectory& t,
                                               Rng* rng) {
  std::vector<Record> a, b;
  a.reserve(t.size() / 2 + 1);
  b.reserve(t.size() / 2 + 1);
  for (const Record& r : t.records()) {
    (rng->Bernoulli(0.5) ? a : b).push_back(r);
  }
  return {Trajectory(t.label() + "/a", t.owner(), std::move(a)),
          Trajectory(t.label() + "/b", t.owner(), std::move(b))};
}

std::pair<TrajectoryDatabase, TrajectoryDatabase> SplitDatabase(
    const TrajectoryDatabase& db, Rng* rng) {
  TrajectoryDatabase p(db.name() + "/a");
  TrajectoryDatabase q(db.name() + "/b");
  for (const auto& t : db) {
    Rng sub = rng->Fork();
    auto [a, b] = SplitRecords(t, &sub);
    (void)p.Add(std::move(a));
    (void)q.Add(std::move(b));
  }
  return {std::move(p), std::move(q)};
}

}  // namespace ftl::traj
