#include "traj/summary.h"

#include <cmath>

#include "util/string_util.h"

namespace ftl::traj {

namespace {

struct Welford {
  size_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;

  void Add(double x) {
    ++n;
    double d = x - mean;
    mean += d / static_cast<double>(n);
    m2 += d * (x - mean);
  }
  double Stdv() const {
    return n > 1 ? std::sqrt(m2 / static_cast<double>(n - 1)) : 0.0;
  }
};

}  // namespace

DatabaseSummary Summarize(const TrajectoryDatabase& db) {
  DatabaseSummary s;
  s.num_trajectories = db.size();
  Welford size_acc, gap_acc;
  int64_t min_t = 0, max_t = 0;
  bool any = false;
  for (const auto& t : db) {
    s.total_records += t.size();
    size_acc.Add(static_cast<double>(t.size()));
    const auto& recs = t.records();
    for (size_t i = 1; i < recs.size(); ++i) {
      double gap_h =
          static_cast<double>(recs[i].t - recs[i - 1].t) / 3600.0;
      gap_acc.Add(gap_h);
    }
    if (!t.empty()) {
      if (!any) {
        min_t = t.front().t;
        max_t = t.back().t;
        any = true;
      } else {
        min_t = std::min(min_t, t.front().t);
        max_t = std::max(max_t, t.back().t);
      }
    }
  }
  s.mean_size = size_acc.mean;
  s.stdv_size = size_acc.Stdv();
  s.mean_gap_hours = gap_acc.mean;
  s.stdv_gap_hours = gap_acc.Stdv();
  s.duration_days =
      any ? static_cast<double>(max_t - min_t) / 86400.0 : 0.0;
  return s;
}

std::string ToString(const DatabaseSummary& s) {
  std::string out;
  out += "trajectories=" + std::to_string(s.num_trajectories);
  out += " records=" + std::to_string(s.total_records);
  out += " mean|P|=" + FormatDouble(s.mean_size, 2);
  out += " stdv|P|=" + FormatDouble(s.stdv_size, 2);
  out += " mean_gap_h=" + FormatDouble(s.mean_gap_hours, 2);
  out += " stdv_gap_h=" + FormatDouble(s.stdv_gap_hours, 2);
  out += " duration_d=" + FormatDouble(s.duration_days, 1);
  return out;
}

}  // namespace ftl::traj
