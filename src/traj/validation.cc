#include "traj/validation.h"

#include <cmath>

namespace ftl::traj {

std::string ValidationReport::ToString() const {
  std::string out;
  out += "trajectories=" + std::to_string(trajectories);
  out += " records=" + std::to_string(records);
  if (empty_trajectories) {
    out += " empty=" + std::to_string(empty_trajectories);
  }
  if (singleton_trajectories) {
    out += " singletons=" + std::to_string(singleton_trajectories);
  }
  if (non_finite_records) {
    out += " non_finite=" + std::to_string(non_finite_records);
  }
  if (duplicate_records) {
    out += " duplicates=" + std::to_string(duplicate_records);
  }
  if (speed_violations) {
    out += " speed_violations=" + std::to_string(speed_violations);
  }
  out += clean ? " [clean]" : " [issues found]";
  return out;
}

ValidationReport ValidateDatabase(const TrajectoryDatabase& db,
                                  const ValidationOptions& options) {
  ValidationReport r;
  r.trajectories = db.size();
  for (const auto& t : db) {
    r.records += t.size();
    if (t.empty()) {
      ++r.empty_trajectories;
      continue;
    }
    if (t.size() == 1) ++r.singleton_trajectories;
    const auto& recs = t.records();
    for (size_t i = 0; i < recs.size(); ++i) {
      if (!std::isfinite(recs[i].location.x) ||
          !std::isfinite(recs[i].location.y)) {
        ++r.non_finite_records;
        continue;
      }
      if (i == 0) continue;
      if (recs[i] == recs[i - 1]) ++r.duplicate_records;
      int64_t dt = recs[i].t - recs[i - 1].t;
      if (dt > 0) {
        double v = Dist(recs[i - 1], recs[i]) / static_cast<double>(dt);
        r.max_observed_speed_mps = std::max(r.max_observed_speed_mps, v);
        if (v > options.max_speed_mps) ++r.speed_violations;
      } else if (Dist(recs[i - 1], recs[i]) > 0.0) {
        // Simultaneous records at different places: infinite speed.
        ++r.speed_violations;
      }
    }
  }
  r.clean = r.empty_trajectories == 0 && r.non_finite_records == 0 &&
            r.duplicate_records == 0 && r.speed_violations == 0;
  return r;
}

TrajectoryDatabase Sanitize(const TrajectoryDatabase& db) {
  TrajectoryDatabase out(db.name());
  for (const auto& t : db) {
    std::vector<Record> recs;
    recs.reserve(t.size());
    for (const auto& rec : t.records()) {
      if (!std::isfinite(rec.location.x) || !std::isfinite(rec.location.y)) {
        continue;
      }
      if (!recs.empty() && rec == recs.back()) continue;
      recs.push_back(rec);
    }
    if (recs.empty()) continue;
    (void)out.Add(Trajectory(t.label(), t.owner(), std::move(recs)));
  }
  return out;
}

}  // namespace ftl::traj
