#ifndef FTL_TRAJ_TRANSFORMS_H_
#define FTL_TRAJ_TRANSFORMS_H_

/// \file transforms.h
/// Dataset derivation operators: down-sampling, time trimming, random
/// splitting. These reproduce how the paper derives its 12 experiment
/// configurations (Table I) and the T-Drive two-way split.

#include "traj/database.h"
#include "util/rng.h"

namespace ftl::traj {

/// Keeps each record independently with probability `rate` in (0, 1].
/// This is the paper's "down-sampling with sampling rate r".
Trajectory DownSample(const Trajectory& t, double rate, Rng* rng);

/// Down-samples every trajectory of a database (fresh sub-stream of
/// `rng` per trajectory; deterministic given the seed).
TrajectoryDatabase DownSample(const TrajectoryDatabase& db, double rate,
                              Rng* rng);

/// Restricts every trajectory to the window [t0, t0 + duration_seconds).
/// This is the paper's duration trimming (31d -> 7/14/21d etc.).
TrajectoryDatabase TrimDuration(const TrajectoryDatabase& db, Timestamp t0,
                                int64_t duration_seconds);

/// Randomly routes each record of `t` into one of two output trajectories
/// with probability 1/2 each — the paper's T-Drive split procedure.
/// Output labels get suffixes "/a" and "/b"; owners are preserved.
std::pair<Trajectory, Trajectory> SplitRecords(const Trajectory& t,
                                               Rng* rng);

/// Applies SplitRecords to a whole database, producing the (P, Q) pair.
std::pair<TrajectoryDatabase, TrajectoryDatabase> SplitDatabase(
    const TrajectoryDatabase& db, Rng* rng);

}  // namespace ftl::traj

#endif  // FTL_TRAJ_TRANSFORMS_H_
