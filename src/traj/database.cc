#include "traj/database.h"

#include <algorithm>

namespace ftl::traj {

Status TrajectoryDatabase::Add(Trajectory t) {
  auto [it, inserted] = by_label_.emplace(t.label(), trajectories_.size());
  if (!inserted) {
    return Status::InvalidArgument("duplicate trajectory label '" +
                                   t.label() + "' in database '" + name_ +
                                   "'");
  }
  trajectories_.push_back(std::move(t));
  return Status::OK();
}

size_t TrajectoryDatabase::Find(const std::string& label) const {
  auto it = by_label_.find(label);
  return it == by_label_.end() ? npos : it->second;
}

size_t TrajectoryDatabase::FindByOwner(OwnerId owner) const {
  for (size_t i = 0; i < trajectories_.size(); ++i) {
    if (trajectories_[i].owner() == owner) return i;
  }
  return npos;
}

size_t TrajectoryDatabase::TotalRecords() const {
  size_t n = 0;
  for (const auto& t : trajectories_) n += t.size();
  return n;
}

size_t TrajectoryDatabase::PruneShort(size_t min_records) {
  size_t before = trajectories_.size();
  std::vector<Trajectory> kept;
  kept.reserve(before);
  for (auto& t : trajectories_) {
    if (t.size() >= min_records) kept.push_back(std::move(t));
  }
  trajectories_ = std::move(kept);
  by_label_.clear();
  for (size_t i = 0; i < trajectories_.size(); ++i) {
    by_label_.emplace(trajectories_[i].label(), i);
  }
  return before - trajectories_.size();
}

}  // namespace ftl::traj
