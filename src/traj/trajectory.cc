#include "traj/trajectory.h"

#include <algorithm>

namespace ftl::traj {

Trajectory::Trajectory(std::string label, OwnerId owner,
                       std::vector<Record> records)
    : label_(std::move(label)), owner_(owner), records_(std::move(records)) {
  SortByTime();
}

Status Trajectory::Append(const Record& r) {
  if (!records_.empty() && r.t < records_.back().t) {
    return Status::InvalidArgument(
        "Append would break time order for trajectory '" + label_ + "'");
  }
  records_.push_back(r);
  return Status::OK();
}

void Trajectory::SortByTime() {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const Record& a, const Record& b) { return a.t < b.t; });
  maybe_unsorted_ = false;
}

int64_t Trajectory::DurationSeconds() const {
  if (records_.size() < 2) return 0;
  return records_.back().t - records_.front().t;
}

double Trajectory::MeanGapSeconds() const {
  if (records_.size() < 2) return 0.0;
  return static_cast<double>(DurationSeconds()) /
         static_cast<double>(records_.size() - 1);
}

size_t Trajectory::LowerBound(Timestamp t0) const {
  assert(!maybe_unsorted_ && "Trajectory::LowerBound after AppendUnchecked "
                             "without SortByTime()");
  auto it = std::lower_bound(
      records_.begin(), records_.end(), t0,
      [](const Record& r, Timestamp t) { return r.t < t; });
  return static_cast<size_t>(it - records_.begin());
}

Trajectory Trajectory::SliceTime(Timestamp t0, Timestamp t1) const {
  Trajectory out;
  out.label_ = label_;
  out.owner_ = owner_;
  size_t b = LowerBound(t0);
  size_t e = LowerBound(t1);
  out.records_.assign(records_.begin() + b, records_.begin() + e);
  return out;
}

bool Trajectory::IsSorted() const {
  return std::is_sorted(
      records_.begin(), records_.end(),
      [](const Record& a, const Record& b) { return a.t < b.t; });
}

}  // namespace ftl::traj
