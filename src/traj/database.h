#ifndef FTL_TRAJ_DATABASE_H_
#define FTL_TRAJ_DATABASE_H_

/// \file database.h
/// A trajectory database: the paper's P / Q collections.

#include <string>
#include <unordered_map>
#include <vector>

#include "traj/trajectory.h"
#include "util/status.h"

namespace ftl::traj {

/// An in-memory collection of trajectories with label lookup.
///
/// One entry per moving object per source (a user "rarely has more than
/// one trajectory in the same database" — paper Section IV-C); duplicate
/// labels are rejected.
class TrajectoryDatabase {
 public:
  TrajectoryDatabase() = default;

  /// Constructs a named database (name used in reports only).
  explicit TrajectoryDatabase(std::string name) : name_(std::move(name)) {}

  /// Database display name.
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Adds a trajectory; InvalidArgument on duplicate label.
  Status Add(Trajectory t);

  /// Number of trajectories (the paper's |Q|).
  size_t size() const { return trajectories_.size(); }
  bool empty() const { return trajectories_.empty(); }

  /// Access by position.
  const Trajectory& operator[](size_t i) const { return trajectories_[i]; }

  /// All trajectories.
  const std::vector<Trajectory>& trajectories() const { return trajectories_; }

  /// Index of the trajectory with `label`, or npos.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t Find(const std::string& label) const;

  /// Index of the first trajectory owned by `owner`, or npos. Linear scan;
  /// intended for ground-truth evaluation code only.
  size_t FindByOwner(OwnerId owner) const;

  /// Total number of records across all trajectories.
  size_t TotalRecords() const;

  /// Removes trajectories with fewer than `min_records` records.
  /// Returns the number removed.
  size_t PruneShort(size_t min_records);

  /// Iterators (range-for support).
  auto begin() const { return trajectories_.begin(); }
  auto end() const { return trajectories_.end(); }

 private:
  std::string name_;
  std::vector<Trajectory> trajectories_;
  std::unordered_map<std::string, size_t> by_label_;
};

}  // namespace ftl::traj

#endif  // FTL_TRAJ_DATABASE_H_
