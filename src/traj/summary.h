#ifndef FTL_TRAJ_SUMMARY_H_
#define FTL_TRAJ_SUMMARY_H_

/// \file summary.h
/// Descriptive statistics over a trajectory database — the columns of
/// the paper's Table I (mean/stdv of |P|, mean/stdv of timediff).

#include <string>

#include "traj/database.h"

namespace ftl::traj {

/// Table-I style summary for one database.
struct DatabaseSummary {
  size_t num_trajectories = 0;
  size_t total_records = 0;
  double mean_size = 0.0;      ///< mean |P|
  double stdv_size = 0.0;      ///< stdv |P|
  double mean_gap_hours = 0.0; ///< mean timediff between consecutive records
  double stdv_gap_hours = 0.0; ///< stdv of those gaps
  double duration_days = 0.0;  ///< max span across trajectories, days
};

/// Computes the summary. Gap statistics pool every consecutive-record gap
/// across all trajectories (matching how the paper reports "mean of
/// timediff in P").
DatabaseSummary Summarize(const TrajectoryDatabase& db);

/// Renders the summary as "k=v" lines for logs.
std::string ToString(const DatabaseSummary& s);

}  // namespace ftl::traj

#endif  // FTL_TRAJ_SUMMARY_H_
