#ifndef FTL_TRAJ_RESAMPLE_H_
#define FTL_TRAJ_RESAMPLE_H_

/// \file resample.h
/// Resampling and structure-extraction utilities.
///
/// Classical similarity measures (DTW/LCSS/EDR) behave best on evenly
/// sampled sequences; ResampleUniform regularizes an irregular
/// trajectory by linear interpolation. StayPoints extracts dwell
/// locations (Li et al., GIS'08 style), useful for analysis and for
/// interpreting links found by FTL.

#include <cstdint>
#include <vector>

#include "traj/trajectory.h"

namespace ftl::traj {

/// Linearly interpolates `t` at a fixed `interval_seconds` cadence from
/// its first to its last record (inclusive of the first; the last is
/// included when it falls on the grid). Empty/singleton trajectories are
/// returned unchanged.
Trajectory ResampleUniform(const Trajectory& t, int64_t interval_seconds);

/// A detected dwell: the object stayed within `radius` of the centroid
/// for at least `min_duration`.
struct StayPoint {
  geo::Point centroid;
  Timestamp arrive = 0;
  Timestamp depart = 0;

  int64_t DurationSeconds() const { return depart - arrive; }
};

/// Detects stay points: maximal record runs whose pairwise anchor
/// distance stays within `radius_meters` and whose time span is at
/// least `min_duration_seconds`.
std::vector<StayPoint> StayPoints(const Trajectory& t, double radius_meters,
                                  int64_t min_duration_seconds);

}  // namespace ftl::traj

#endif  // FTL_TRAJ_RESAMPLE_H_
