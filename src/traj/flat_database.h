#ifndef FTL_TRAJ_FLAT_DATABASE_H_
#define FTL_TRAJ_FLAT_DATABASE_H_

/// \file flat_database.h
/// Columnar (SoA) trajectory storage: the zero-copy counterpart of
/// TrajectoryDatabase.
///
/// A FlatDatabase holds every record of every trajectory in three
/// contiguous columns (timestamps, x, y) plus a per-trajectory offset
/// table, an interned label pool, and an owner column. The layout is
/// exactly the payload of an FTB file (see io/ftb.h), so a database
/// can be backed either by owned heap columns (converted from an
/// in-memory TrajectoryDatabase) or by an mmap of an FTB file with no
/// per-record work at load time.
///
/// FlatTrajectoryView is the per-trajectory window into the columns:
/// it satisfies the trajectory-like concept of traj/alignment.h
/// (`size()`, `operator[]`, `front()`, `back()`, `empty()`, `label()`),
/// so SegmentCursor / VisitSegments and the engine's scoring hot path
/// stream segments straight out of the columns.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "traj/database.h"
#include "traj/trajectory.h"

namespace ftl::traj {

/// A non-owning SoA view of one trajectory: three column pointers plus
/// the record count. Copying is cheap (it copies pointers only); the
/// backing FlatDatabase must outlive every view taken from it.
class FlatTrajectoryView {
 public:
  FlatTrajectoryView() = default;
  FlatTrajectoryView(const int64_t* ts, const double* xs, const double* ys,
                     size_t n, std::string_view label, OwnerId owner)
      : ts_(ts), xs_(xs), ys_(ys), n_(n), label_(label), owner_(owner) {}

  size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Raw column access (records are in non-decreasing timestamp order,
  /// the same invariant as Trajectory).
  const int64_t* ts() const { return ts_; }
  const double* xs() const { return xs_; }
  const double* ys() const { return ys_; }

  /// Record access, 0-based. Returns by value: a Record is gathered
  /// from the three columns (24 bytes; the columns themselves are
  /// never rewritten into AoS form).
  Record operator[](size_t i) const {
    return Record{{xs_[i], ys_[i]}, ts_[i]};
  }
  Record front() const { return (*this)[0]; }
  Record back() const { return (*this)[n_ - 1]; }

  /// Source-local label (a view into the database's label pool).
  std::string_view label() const { return label_; }

  /// Ground-truth owner identity; kUnknownOwner when anonymous.
  OwnerId owner() const { return owner_; }

  /// AoS copy for call sites that need a Trajectory (training,
  /// diagnostics); not for hot paths.
  Trajectory Materialize() const;

 private:
  const int64_t* ts_ = nullptr;
  const double* xs_ = nullptr;
  const double* ys_ = nullptr;
  size_t n_ = 0;
  std::string_view label_;
  OwnerId owner_ = kUnknownOwner;
};

/// An immutable columnar trajectory database.
///
/// Construction is one of:
///  * FromDatabase — one-shot conversion of an in-memory
///    TrajectoryDatabase into owned columns;
///  * FromColumns — adoption of externally owned columns (the FTB
///    reader passes pointers into an mmap or heap buffer, with a
///    keep-alive handle).
///
/// The object is cheap to move and copy (copies share the backing
/// storage). Views and label string_views remain valid as long as any
/// copy of the database is alive.
class FlatDatabase {
 public:
  /// The raw column layout. `record_offsets` and `label_offsets` have
  /// num_trajectories + 1 entries (prefix sums; first entry 0, last
  /// entry num_records / label_pool_size respectively).
  struct Columns {
    const uint64_t* record_offsets = nullptr;
    const uint64_t* owners = nullptr;
    const uint64_t* label_offsets = nullptr;
    const char* label_pool = nullptr;
    const int64_t* ts = nullptr;
    const double* xs = nullptr;
    const double* ys = nullptr;
    size_t num_trajectories = 0;
    size_t num_records = 0;
    size_t label_pool_size = 0;
  };

  FlatDatabase() = default;

  /// Converts an AoS database into owned columns. Record order within
  /// each trajectory and trajectory order are preserved exactly.
  static FlatDatabase FromDatabase(const TrajectoryDatabase& db);

  /// Adopts externally owned columns; `storage` keeps the backing
  /// memory alive for the lifetime of the database (and of all copies).
  static FlatDatabase FromColumns(const Columns& cols,
                                  std::shared_ptr<const void> storage,
                                  std::string name);

  /// AoS copy (per-trajectory record vectors); the inverse of
  /// FromDatabase. Used by CLI paths that feed FTB inputs into
  /// AoS-only consumers.
  TrajectoryDatabase ToDatabase() const;

  /// Database display name.
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t size() const { return cols_.num_trajectories; }
  bool empty() const { return cols_.num_trajectories == 0; }

  /// Total records across all trajectories.
  size_t TotalRecords() const { return cols_.num_records; }

  /// View of trajectory `i`.
  FlatTrajectoryView operator[](size_t i) const {
    uint64_t b = cols_.record_offsets[i];
    uint64_t e = cols_.record_offsets[i + 1];
    return FlatTrajectoryView(cols_.ts + b, cols_.xs + b, cols_.ys + b,
                              static_cast<size_t>(e - b), label(i),
                              static_cast<OwnerId>(cols_.owners[i]));
  }

  /// Label of trajectory `i` (view into the interned pool).
  std::string_view label(size_t i) const {
    uint64_t b = cols_.label_offsets[i];
    uint64_t e = cols_.label_offsets[i + 1];
    return std::string_view(cols_.label_pool + b,
                            static_cast<size_t>(e - b));
  }

  /// Index of the trajectory with `label`, or npos.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t Find(std::string_view label) const;

  /// True when every trajectory label is distinct (the
  /// TrajectoryDatabase invariant; FTB readers validate this).
  bool HasUniqueLabels() const { return by_label_.size() == size(); }

  /// The raw columns (FTB writer, benches).
  const Columns& columns() const { return cols_; }

 private:
  void BuildLabelIndex();

  Columns cols_;
  std::shared_ptr<const void> storage_;  // keep-alive: heap or mmap
  std::string name_;
  // Views point into the label pool, which outlives the map via
  // storage_; safe across moves/copies because the pool is heap/mmap
  // memory, never inline in this object.
  std::unordered_map<std::string_view, size_t> by_label_;
};

}  // namespace ftl::traj

#endif  // FTL_TRAJ_FLAT_DATABASE_H_
