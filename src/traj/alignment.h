#ifndef FTL_TRAJ_ALIGNMENT_H_
#define FTL_TRAJ_ALIGNMENT_H_

/// \file alignment.h
/// Trajectory alignment and self/mutual segments (paper Section IV-A).
///
/// The alignment W_PQ of trajectories P and Q is the time-ordered merge
/// of their records. Consecutive pairs (w_i, w_{i+1}) are *segments*:
/// a **self-segment** when both records come from the same trajectory,
/// a **mutual segment** when they straddle P and Q. Mutual segments carry
/// the discriminating signal FTL is built on.

#include <cstdint>
#include <functional>
#include <vector>

#include "traj/trajectory.h"

namespace ftl::traj {

/// Which source trajectory an aligned record came from.
enum class Source : uint8_t { kP = 0, kQ = 1 };

/// One record of an aligned trajectory, tagged with its source.
struct AlignedRecord {
  Record record;
  Source source;
};

/// A segment of the alignment: two time-consecutive records.
struct Segment {
  Record first;
  Record second;
  bool mutual;  ///< True when the two records come from different sources.

  /// Segment time length, seconds.
  int64_t TimeLengthSeconds() const { return TimeDiff(first, second); }
};

/// Materializes the full alignment W_PQ (the paper's align(P, Q)).
///
/// Ties (equal timestamps) are broken P-first; tie order does not affect
/// any model statistic because a zero-length mutual segment's
/// compatibility is symmetric.
std::vector<AlignedRecord> Align(const Trajectory& p, const Trajectory& q);

/// Allocation-free forward cursor over the segments of W_PQ, merging
/// the two record sequences on the fly. The iterator-style counterpart
/// of VisitSegments for call sites where a callback is awkward.
///
///   SegmentCursor cur(p, q);
///   Segment s;
///   while (cur.Next(&s)) { ... }
///
/// Both trajectories must outlive the cursor.
class SegmentCursor {
 public:
  SegmentCursor(const Trajectory& p, const Trajectory& q)
      : p_(&p), q_(&q) {}

  /// Advances to the next segment of the alignment; returns false when
  /// the alignment is exhausted (fewer than two records overall).
  bool Next(Segment* out) {
    const Trajectory& p = *p_;
    const Trajectory& q = *q_;
    while (i_ < p.size() || j_ < q.size()) {
      const Record* cur;
      Source cur_src;
      if (i_ < p.size() && (j_ >= q.size() || p[i_].t <= q[j_].t)) {
        cur = &p[i_++];
        cur_src = Source::kP;
      } else {
        cur = &q[j_++];
        cur_src = Source::kQ;
      }
      if (prev_ != nullptr) {
        out->first = *prev_;
        out->second = *cur;
        out->mutual = prev_src_ != cur_src;
        prev_ = cur;
        prev_src_ = cur_src;
        return true;
      }
      prev_ = cur;
      prev_src_ = cur_src;
    }
    return false;
  }

 private:
  const Trajectory* p_;
  const Trajectory* q_;
  size_t i_ = 0, j_ = 0;
  const Record* prev_ = nullptr;
  Source prev_src_ = Source::kP;
};

/// Streams every segment of W_PQ to `fn` in time order without
/// materializing the merge. Template variant: the callback is inlined
/// into the merge loop, with no std::function indirection. This is the
/// innermost loop of model training and query evaluation.
template <typename Fn>
void VisitSegments(const Trajectory& p, const Trajectory& q, Fn&& fn) {
  size_t i = 0, j = 0;
  const Record* prev = nullptr;
  Source prev_src = Source::kP;
  while (i < p.size() || j < q.size()) {
    const Record* cur;
    Source cur_src;
    if (i < p.size() && (j >= q.size() || p[i].t <= q[j].t)) {
      cur = &p[i++];
      cur_src = Source::kP;
    } else {
      cur = &q[j++];
      cur_src = Source::kQ;
    }
    if (prev != nullptr) {
      fn(Segment{*prev, *cur, prev_src != cur_src});
    }
    prev = cur;
    prev_src = cur_src;
  }
}

/// Streams only the mutual segments of W_PQ to `fn` (template variant,
/// callback inlined).
template <typename Fn>
void VisitMutualSegments(const Trajectory& p, const Trajectory& q,
                         Fn&& fn) {
  VisitSegments(p, q, [&fn](const Segment& s) {
    if (s.mutual) fn(s);
  });
}

/// Streams every segment of W_PQ to `fn` in time order. Type-erased
/// convenience wrapper over VisitSegments; prefer the template (or
/// SegmentCursor) on hot paths.
void ForEachSegment(const Trajectory& p, const Trajectory& q,
                    const std::function<void(const Segment&)>& fn);

/// Streams only the mutual segments of W_PQ to `fn`.
void ForEachMutualSegment(const Trajectory& p, const Trajectory& q,
                          const std::function<void(const Segment&)>& fn);

/// Materializes all mutual segments of W_PQ.
std::vector<Segment> MutualSegments(const Trajectory& p, const Trajectory& q);

/// Number of mutual segments in W_PQ.
size_t CountMutualSegments(const Trajectory& p, const Trajectory& q);

/// Overlap of the two trajectories' time spans, seconds (0 when
/// disjoint). Candidates with no overlap produce at most one
/// informative mutual segment; engines may use this as a pre-filter
/// signal.
int64_t TimeSpanOverlapSeconds(const Trajectory& p, const Trajectory& q);

}  // namespace ftl::traj

#endif  // FTL_TRAJ_ALIGNMENT_H_
