#ifndef FTL_TRAJ_ALIGNMENT_H_
#define FTL_TRAJ_ALIGNMENT_H_

/// \file alignment.h
/// Trajectory alignment and self/mutual segments (paper Section IV-A).
///
/// The alignment W_PQ of trajectories P and Q is the time-ordered merge
/// of their records. Consecutive pairs (w_i, w_{i+1}) are *segments*:
/// a **self-segment** when both records come from the same trajectory,
/// a **mutual segment** when they straddle P and Q. Mutual segments carry
/// the discriminating signal FTL is built on.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "traj/trajectory.h"

namespace ftl::traj {

/// Which source trajectory an aligned record came from.
enum class Source : uint8_t { kP = 0, kQ = 1 };

/// One record of an aligned trajectory, tagged with its source.
struct AlignedRecord {
  Record record;
  Source source;
};

/// A segment of the alignment: two time-consecutive records.
struct Segment {
  Record first;
  Record second;
  bool mutual;  ///< True when the two records come from different sources.

  /// Segment time length, seconds.
  int64_t TimeLengthSeconds() const { return TimeDiff(first, second); }
};

/// Materializes the full alignment W_PQ (the paper's align(P, Q)).
///
/// Ties (equal timestamps) are broken P-first; tie order does not affect
/// any model statistic because a zero-length mutual segment's
/// compatibility is symmetric.
std::vector<AlignedRecord> Align(const Trajectory& p, const Trajectory& q);

/// Allocation-free forward cursor over the segments of W_PQ, merging
/// the two record sequences on the fly. The iterator-style counterpart
/// of VisitSegments for call sites where a callback is awkward.
///
///   SegmentCursor cur(p, q);
///   Segment s;
///   while (cur.Next(&s)) { ... }
///
/// Works over any trajectory-like type (`size()` plus `operator[]`
/// yielding a Record, by reference or by value): the AoS Trajectory and
/// the SoA FlatTrajectoryView both qualify, so the same merge streams
/// records out of heap vectors or straight out of mmap'd columns. Both
/// trajectories must outlive the cursor. Records are held by value
/// between steps (24 bytes), which keeps the cursor valid for by-value
/// accessors.
template <typename TP, typename TQ = TP>
class SegmentCursor {
 public:
  SegmentCursor(const TP& p, const TQ& q) : p_(&p), q_(&q) {}

  /// Advances to the next segment of the alignment; returns false when
  /// the alignment is exhausted (fewer than two records overall).
  bool Next(Segment* out) {
    const TP& p = *p_;
    const TQ& q = *q_;
    while (i_ < p.size() || j_ < q.size()) {
      Record cur;
      Source cur_src;
      if (i_ < p.size() && (j_ >= q.size() || p[i_].t <= q[j_].t)) {
        cur = p[i_++];
        cur_src = Source::kP;
      } else {
        cur = q[j_++];
        cur_src = Source::kQ;
      }
      if (have_prev_) {
        out->first = prev_;
        out->second = cur;
        out->mutual = prev_src_ != cur_src;
        prev_ = cur;
        prev_src_ = cur_src;
        return true;
      }
      have_prev_ = true;
      prev_ = cur;
      prev_src_ = cur_src;
    }
    return false;
  }

 private:
  const TP* p_;
  const TQ* q_;
  size_t i_ = 0, j_ = 0;
  Record prev_{};
  bool have_prev_ = false;
  Source prev_src_ = Source::kP;
};

/// Streams every segment of W_PQ to `fn` in time order without
/// materializing the merge. Template variant: the callback is inlined
/// into the merge loop, with no std::function indirection. This is the
/// innermost loop of model training and query evaluation. Like
/// SegmentCursor, TP/TQ may be any trajectory-like type (Trajectory or
/// FlatTrajectoryView).
template <typename TP, typename TQ, typename Fn>
void VisitSegments(const TP& p, const TQ& q, Fn&& fn) {
  size_t i = 0, j = 0;
  Record prev{};
  bool have_prev = false;
  Source prev_src = Source::kP;
  while (i < p.size() || j < q.size()) {
    Record cur;
    Source cur_src;
    if (i < p.size() && (j >= q.size() || p[i].t <= q[j].t)) {
      cur = p[i++];
      cur_src = Source::kP;
    } else {
      cur = q[j++];
      cur_src = Source::kQ;
    }
    if (have_prev) {
      fn(Segment{prev, cur, prev_src != cur_src});
    }
    have_prev = true;
    prev = cur;
    prev_src = cur_src;
  }
}

/// Streams only the mutual segments of W_PQ to `fn` (template variant,
/// callback inlined).
template <typename TP, typename TQ, typename Fn>
void VisitMutualSegments(const TP& p, const TQ& q, Fn&& fn) {
  VisitSegments(p, q, [&fn](const Segment& s) {
    if (s.mutual) fn(s);
  });
}

/// Streams every segment of W_PQ to `fn` in time order. Type-erased
/// convenience wrapper over VisitSegments; prefer the template (or
/// SegmentCursor) on hot paths.
void ForEachSegment(const Trajectory& p, const Trajectory& q,
                    const std::function<void(const Segment&)>& fn);

/// Streams only the mutual segments of W_PQ to `fn`.
void ForEachMutualSegment(const Trajectory& p, const Trajectory& q,
                          const std::function<void(const Segment&)>& fn);

/// Materializes all mutual segments of W_PQ.
std::vector<Segment> MutualSegments(const Trajectory& p, const Trajectory& q);

/// Number of mutual segments in W_PQ.
size_t CountMutualSegments(const Trajectory& p, const Trajectory& q);

/// Overlap of the two trajectories' time spans, seconds (0 when
/// disjoint). Candidates with no overlap produce at most one
/// informative mutual segment; engines may use this as a pre-filter
/// signal. Template over trajectory-like types (see SegmentCursor).
template <typename TP, typename TQ>
int64_t TimeSpanOverlapSeconds(const TP& p, const TQ& q) {
  if (p.empty() || q.empty()) return 0;
  int64_t lo = std::max<int64_t>(p.front().t, q.front().t);
  int64_t hi = std::min<int64_t>(p.back().t, q.back().t);
  return hi > lo ? hi - lo : 0;
}

}  // namespace ftl::traj

#endif  // FTL_TRAJ_ALIGNMENT_H_
