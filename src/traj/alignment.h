#ifndef FTL_TRAJ_ALIGNMENT_H_
#define FTL_TRAJ_ALIGNMENT_H_

/// \file alignment.h
/// Trajectory alignment and self/mutual segments (paper Section IV-A).
///
/// The alignment W_PQ of trajectories P and Q is the time-ordered merge
/// of their records. Consecutive pairs (w_i, w_{i+1}) are *segments*:
/// a **self-segment** when both records come from the same trajectory,
/// a **mutual segment** when they straddle P and Q. Mutual segments carry
/// the discriminating signal FTL is built on.

#include <cstdint>
#include <functional>
#include <vector>

#include "traj/trajectory.h"

namespace ftl::traj {

/// Which source trajectory an aligned record came from.
enum class Source : uint8_t { kP = 0, kQ = 1 };

/// One record of an aligned trajectory, tagged with its source.
struct AlignedRecord {
  Record record;
  Source source;
};

/// A segment of the alignment: two time-consecutive records.
struct Segment {
  Record first;
  Record second;
  bool mutual;  ///< True when the two records come from different sources.

  /// Segment time length, seconds.
  int64_t TimeLengthSeconds() const { return TimeDiff(first, second); }
};

/// Materializes the full alignment W_PQ (the paper's align(P, Q)).
///
/// Ties (equal timestamps) are broken P-first; tie order does not affect
/// any model statistic because a zero-length mutual segment's
/// compatibility is symmetric.
std::vector<AlignedRecord> Align(const Trajectory& p, const Trajectory& q);

/// Streams every segment of W_PQ to `fn` in time order without
/// materializing the merge. This is the hot path used by model training
/// and query evaluation.
void ForEachSegment(const Trajectory& p, const Trajectory& q,
                    const std::function<void(const Segment&)>& fn);

/// Streams only the mutual segments of W_PQ to `fn`.
void ForEachMutualSegment(const Trajectory& p, const Trajectory& q,
                          const std::function<void(const Segment&)>& fn);

/// Materializes all mutual segments of W_PQ.
std::vector<Segment> MutualSegments(const Trajectory& p, const Trajectory& q);

/// Number of mutual segments in W_PQ.
size_t CountMutualSegments(const Trajectory& p, const Trajectory& q);

/// Overlap of the two trajectories' time spans, seconds (0 when
/// disjoint). Candidates with no overlap produce at most one
/// informative mutual segment; engines may use this as a pre-filter
/// signal.
int64_t TimeSpanOverlapSeconds(const Trajectory& p, const Trajectory& q);

}  // namespace ftl::traj

#endif  // FTL_TRAJ_ALIGNMENT_H_
