#include "traj/alignment.h"

#include <algorithm>

namespace ftl::traj {

std::vector<AlignedRecord> Align(const Trajectory& p, const Trajectory& q) {
  std::vector<AlignedRecord> out;
  out.reserve(p.size() + q.size());
  size_t i = 0, j = 0;
  while (i < p.size() || j < q.size()) {
    bool take_p;
    if (i >= p.size()) {
      take_p = false;
    } else if (j >= q.size()) {
      take_p = true;
    } else {
      take_p = p[i].t <= q[j].t;  // tie-break: P first
    }
    if (take_p) {
      out.push_back({p[i++], Source::kP});
    } else {
      out.push_back({q[j++], Source::kQ});
    }
  }
  return out;
}

void ForEachSegment(const Trajectory& p, const Trajectory& q,
                    const std::function<void(const Segment&)>& fn) {
  VisitSegments(p, q, [&fn](const Segment& s) { fn(s); });
}

void ForEachMutualSegment(const Trajectory& p, const Trajectory& q,
                          const std::function<void(const Segment&)>& fn) {
  VisitMutualSegments(p, q, [&fn](const Segment& s) { fn(s); });
}

std::vector<Segment> MutualSegments(const Trajectory& p,
                                    const Trajectory& q) {
  std::vector<Segment> out;
  VisitMutualSegments(p, q, [&out](const Segment& s) { out.push_back(s); });
  return out;
}

size_t CountMutualSegments(const Trajectory& p, const Trajectory& q) {
  size_t n = 0;
  VisitMutualSegments(p, q, [&n](const Segment&) { ++n; });
  return n;
}

}  // namespace ftl::traj
