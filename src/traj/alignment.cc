#include "traj/alignment.h"

#include <algorithm>

namespace ftl::traj {

std::vector<AlignedRecord> Align(const Trajectory& p, const Trajectory& q) {
  std::vector<AlignedRecord> out;
  out.reserve(p.size() + q.size());
  size_t i = 0, j = 0;
  while (i < p.size() || j < q.size()) {
    bool take_p;
    if (i >= p.size()) {
      take_p = false;
    } else if (j >= q.size()) {
      take_p = true;
    } else {
      take_p = p[i].t <= q[j].t;  // tie-break: P first
    }
    if (take_p) {
      out.push_back({p[i++], Source::kP});
    } else {
      out.push_back({q[j++], Source::kQ});
    }
  }
  return out;
}

void ForEachSegment(const Trajectory& p, const Trajectory& q,
                    const std::function<void(const Segment&)>& fn) {
  size_t i = 0, j = 0;
  const Record* prev = nullptr;
  Source prev_src = Source::kP;
  while (i < p.size() || j < q.size()) {
    const Record* cur;
    Source cur_src;
    if (i < p.size() && (j >= q.size() || p[i].t <= q[j].t)) {
      cur = &p[i++];
      cur_src = Source::kP;
    } else {
      cur = &q[j++];
      cur_src = Source::kQ;
    }
    if (prev != nullptr) {
      fn(Segment{*prev, *cur, prev_src != cur_src});
    }
    prev = cur;
    prev_src = cur_src;
  }
}

void ForEachMutualSegment(const Trajectory& p, const Trajectory& q,
                          const std::function<void(const Segment&)>& fn) {
  ForEachSegment(p, q, [&fn](const Segment& s) {
    if (s.mutual) fn(s);
  });
}

std::vector<Segment> MutualSegments(const Trajectory& p,
                                    const Trajectory& q) {
  std::vector<Segment> out;
  ForEachMutualSegment(p, q, [&out](const Segment& s) { out.push_back(s); });
  return out;
}

size_t CountMutualSegments(const Trajectory& p, const Trajectory& q) {
  size_t n = 0;
  ForEachMutualSegment(p, q, [&n](const Segment&) { ++n; });
  return n;
}

int64_t TimeSpanOverlapSeconds(const Trajectory& p, const Trajectory& q) {
  if (p.empty() || q.empty()) return 0;
  int64_t lo = std::max(p.front().t, q.front().t);
  int64_t hi = std::min(p.back().t, q.back().t);
  return hi > lo ? hi - lo : 0;
}

}  // namespace ftl::traj
