#ifndef FTL_TRAJ_TRAJECTORY_H_
#define FTL_TRAJ_TRAJECTORY_H_

/// \file trajectory.h
/// A trajectory: the time-ordered record sequence of one moving object.

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "traj/record.h"
#include "util/status.h"

namespace ftl::traj {

/// Opaque owner identity (the paper's id(P)); used only for ground-truth
/// evaluation, never by the linking algorithms themselves.
using OwnerId = uint64_t;

/// Sentinel for "owner unknown" (anonymous source).
inline constexpr OwnerId kUnknownOwner = static_cast<OwnerId>(-1);

/// A time-sorted sequence of location–timestamp records for one object.
class Trajectory {
 public:
  Trajectory() = default;

  /// Constructs a trajectory. `records` need not be sorted; they are
  /// sorted by timestamp on construction (stable for equal timestamps).
  Trajectory(std::string label, OwnerId owner, std::vector<Record> records);

  /// The source-local label (e.g. card ID, taxi ID, phone number).
  const std::string& label() const { return label_; }

  /// Ground-truth owner identity; kUnknownOwner when anonymous.
  OwnerId owner() const { return owner_; }

  /// Sets the ground-truth owner (used by simulators and loaders).
  void set_owner(OwnerId owner) { owner_ = owner; }

  /// Records in non-decreasing timestamp order.
  const std::vector<Record>& records() const {
    assert(!maybe_unsorted_ && "Trajectory read after AppendUnchecked "
                               "without SortByTime()");
    return records_;
  }

  /// Number of records (the paper's |P|).
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Record access, 0-based.
  const Record& operator[](size_t i) const {
    assert(!maybe_unsorted_ && "Trajectory read after AppendUnchecked "
                               "without SortByTime()");
    return records_[i];
  }
  const Record& front() const { return (*this)[0]; }
  const Record& back() const { return (*this)[records_.size() - 1]; }

  /// Appends a record, keeping time order; returns InvalidArgument if the
  /// record would violate the ordering.
  Status Append(const Record& r);

  /// Appends a record unconditionally, then marks the sequence dirty; call
  /// SortByTime() before reading. Fast path for bulk generation. While
  /// dirty, debug builds assert in the record readers (IsSorted stays
  /// usable — it is the check itself).
  void AppendUnchecked(const Record& r) {
    records_.push_back(r);
    maybe_unsorted_ = true;
  }

  /// Restores the time-order invariant after AppendUnchecked calls.
  void SortByTime();

  /// Duration covered, seconds (0 for <2 records).
  int64_t DurationSeconds() const;

  /// Mean gap between consecutive records, seconds (0 for <2 records).
  double MeanGapSeconds() const;

  /// Index of the first record with t >= `t0`; size() when none.
  size_t LowerBound(Timestamp t0) const;

  /// A new trajectory holding only records with t in [t0, t1).
  Trajectory SliceTime(Timestamp t0, Timestamp t1) const;

  /// Invariant check: records sorted by time. (Cheap; used by tests and
  /// debug assertions.)
  bool IsSorted() const;

 private:
  std::string label_;
  OwnerId owner_ = kUnknownOwner;
  std::vector<Record> records_;
  /// Set by AppendUnchecked, cleared by SortByTime: the sequence may
  /// violate the time-order invariant and must not be read.
  bool maybe_unsorted_ = false;
};

}  // namespace ftl::traj

#endif  // FTL_TRAJ_TRAJECTORY_H_
