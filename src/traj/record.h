#ifndef FTL_TRAJ_RECORD_H_
#define FTL_TRAJ_RECORD_H_

/// \file record.h
/// The atomic unit of a trajectory: a location–timestamp record.

#include <cstdint>

#include "geo/point.h"

namespace ftl::traj {

/// Timestamps are seconds since an arbitrary epoch.
using Timestamp = int64_t;

/// One location–timestamp observation of a moving object.
struct Record {
  geo::Point location;  ///< Position in the local planar frame, meters.
  Timestamp t = 0;      ///< Observation time, seconds.

  friend bool operator==(const Record& a, const Record& b) {
    return a.location == b.location && a.t == b.t;
  }
};

/// Geographical distance between two records' locations, meters
/// (the paper's dist(p, q)).
inline double Dist(const Record& a, const Record& b) {
  return geo::Distance(a.location, b.location);
}

/// Absolute time difference between two records, seconds
/// (the paper's timediff(p, q)).
inline int64_t TimeDiff(const Record& a, const Record& b) {
  return a.t >= b.t ? a.t - b.t : b.t - a.t;
}

/// Minimum speed (m/s) needed to traverse the segment (a, b); +inf when
/// the records are simultaneous but spatially apart, 0 when co-located.
double RequiredSpeed(const Record& a, const Record& b);

/// True iff a person could travel from `a` to `b` without exceeding
/// `vmax_mps` (the paper's mutual-segment compatibility, Definition 3).
/// dist <= vmax * timediff, compared in squared form so the innermost
/// query loop pays no sqrt; both sides are non-negative so the
/// comparison is unchanged.
inline bool IsCompatible(const Record& a, const Record& b, double vmax_mps) {
  double limit = vmax_mps * static_cast<double>(TimeDiff(a, b));
  return geo::DistanceSquared(a.location, b.location) <= limit * limit;
}

}  // namespace ftl::traj

#endif  // FTL_TRAJ_RECORD_H_
