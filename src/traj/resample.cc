#include "traj/resample.h"

namespace ftl::traj {

Trajectory ResampleUniform(const Trajectory& t, int64_t interval_seconds) {
  if (t.size() < 2 || interval_seconds <= 0) return t;
  const auto& recs = t.records();
  std::vector<Record> out;
  out.reserve(static_cast<size_t>(t.DurationSeconds() / interval_seconds) +
              2);
  size_t hi = 1;
  for (Timestamp ts = recs.front().t; ts <= recs.back().t;
       ts += interval_seconds) {
    while (hi + 1 < recs.size() && recs[hi].t < ts) ++hi;
    const Record& b = recs[hi];
    const Record& a = recs[hi - 1];
    geo::Point p;
    if (b.t == a.t) {
      p = b.location;
    } else {
      double frac = static_cast<double>(ts - a.t) /
                    static_cast<double>(b.t - a.t);
      frac = std::min(1.0, std::max(0.0, frac));
      p = geo::Lerp(a.location, b.location, frac);
    }
    out.push_back(Record{p, ts});
  }
  return Trajectory(t.label(), t.owner(), std::move(out));
}

std::vector<StayPoint> StayPoints(const Trajectory& t, double radius_meters,
                                  int64_t min_duration_seconds) {
  std::vector<StayPoint> out;
  const auto& recs = t.records();
  size_t i = 0;
  while (i < recs.size()) {
    size_t j = i + 1;
    // Extend the run while every record stays within radius of the
    // anchor record i.
    while (j < recs.size() &&
           geo::Distance(recs[i].location, recs[j].location) <=
               radius_meters) {
      ++j;
    }
    int64_t span = j > i + 1 ? recs[j - 1].t - recs[i].t : 0;
    if (span >= min_duration_seconds) {
      StayPoint sp;
      double sx = 0, sy = 0;
      for (size_t k = i; k < j; ++k) {
        sx += recs[k].location.x;
        sy += recs[k].location.y;
      }
      double n = static_cast<double>(j - i);
      sp.centroid = geo::Point{sx / n, sy / n};
      sp.arrive = recs[i].t;
      sp.depart = recs[j - 1].t;
      out.push_back(sp);
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

}  // namespace ftl::traj
