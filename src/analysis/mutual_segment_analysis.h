#ifndef FTL_ANALYSIS_MUTUAL_SEGMENT_ANALYSIS_H_
#define FTL_ANALYSIS_MUTUAL_SEGMENT_ANALYSIS_H_

/// \file mutual_segment_analysis.h
/// Section VI of the paper: distribution of the number and time-length
/// of mutual segments when service accesses follow two independent
/// Poisson processes N_P, N_Q with rates λP, λQ per unit time.
///
/// * Problem 1 — pmf f_X(x) of the number X of mutual segments in one
///   unit of time. We compute it exactly: condition on the per-process
///   event counts (a, b); given counts, the arrival order is a uniformly
///   random interleaving, and X equals the number of source alternations
///   (runs − 1) whose distribution has a classical closed form.
/// * Problem 2 — E(X) closed form and the Poisson approximation with
///   mean Ê(X) = 2λPλQ/(λP+λQ).
/// * Problem 3 — the mutual-segment time length Y is exponential with
///   rate λP + λQ (Corollary 6.2).
///
/// Monte-Carlo counterparts are provided so tests and the Figure 4 bench
/// can validate every closed form by simulation.

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace ftl::analysis {

/// Probability that a uniformly random binary sequence with `a` ones and
/// `b` zeros has exactly `x` alternations (adjacent unequal pairs).
/// Returns 0 outside the feasible range. a, b >= 0.
double AlternationProbability(int64_t a, int64_t b, int64_t x);

/// Exact pmf f_X(x) for x = 0..max_x. The infinite sums over event
/// counts are truncated once the joint Poisson tail mass drops below
/// `tail_eps`.
std::vector<double> MutualSegmentCountPmf(double lambda_p, double lambda_q,
                                          int64_t max_x,
                                          double tail_eps = 1e-12);

/// Closed-form E(X) (paper Problem 2):
///   E(X) = 2λPλQ/(λP+λQ) − 2λPλQ/(λP+λQ)² · (1 − e^−(λP+λQ)).
double ExpectedMutualSegments(double lambda_p, double lambda_q);

/// First-order approximation Ê(X) = 2λPλQ/(λP+λQ); the omitted term is
/// always in (0, 0.5).
double ApproxExpectedMutualSegments(double lambda_p, double lambda_q);

/// Corollary 6.1 bound: E(X) < 2·min(λP, λQ).
double MutualSegmentCountUpperBound(double lambda_p, double lambda_q);

/// Poisson approximation f̂_X with mean Ê(X), values for x = 0..max_x.
std::vector<double> MutualSegmentCountPoissonApprox(double lambda_p,
                                                    double lambda_q,
                                                    int64_t max_x);

/// Corollary 6.2: pdf of the mutual-segment time length,
/// g_Y(y) = (λP+λQ) e^{−(λP+λQ) y}.
double MutualSegmentGapPdf(double lambda_p, double lambda_q, double y);

/// Corollary 6.2 cdf.
double MutualSegmentGapCdf(double lambda_p, double lambda_q, double y);

/// Simulates `trials` unit-time windows of the two Poisson processes and
/// returns the mutual-segment count of each window.
std::vector<int64_t> SimulateMutualSegmentCounts(Rng* rng, double lambda_p,
                                                 double lambda_q,
                                                 size_t trials);

/// Simulates mutual-segment time lengths: runs the two processes over
/// `horizon` time units and collects the gap of every mutual segment.
std::vector<double> SimulateMutualSegmentGaps(Rng* rng, double lambda_p,
                                              double lambda_q,
                                              double horizon);

}  // namespace ftl::analysis

#endif  // FTL_ANALYSIS_MUTUAL_SEGMENT_ANALYSIS_H_
