#include "analysis/feasibility.h"

#include <cmath>
#include <limits>

#include "analysis/mutual_segment_analysis.h"

namespace ftl::analysis {

FeasibilityReport EstimateFeasibility(double lambda_p, double lambda_q,
                                      double horizon_units,
                                      double target_informative_segments) {
  FeasibilityReport r;
  r.expected_mutual_per_unit = ExpectedMutualSegments(lambda_p, lambda_q);
  double rate_sum = lambda_p + lambda_q;
  if (rate_sum > 0.0 && horizon_units > 0.0) {
    r.informative_fraction = 1.0 - std::exp(-rate_sum * horizon_units);
  }
  r.informative_per_unit =
      r.expected_mutual_per_unit * r.informative_fraction;
  if (r.informative_per_unit > 0.0) {
    r.units_for_target =
        target_informative_segments / r.informative_per_unit;
    r.feasible = true;
  } else {
    r.units_for_target = std::numeric_limits<double>::infinity();
    r.feasible = false;
  }
  return r;
}

DailyFeasibility EstimateFeasibilityDaily(
    double events_per_day_p, double events_per_day_q,
    double horizon_minutes, double target_informative_segments) {
  // Unit time = one day; horizon converted to days.
  FeasibilityReport r = EstimateFeasibility(
      events_per_day_p, events_per_day_q, horizon_minutes / (24.0 * 60.0),
      target_informative_segments);
  DailyFeasibility d;
  d.informative_per_day = r.informative_per_unit;
  d.days_for_target = r.units_for_target;
  d.feasible = r.feasible;
  return d;
}

}  // namespace ftl::analysis
