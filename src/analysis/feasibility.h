#ifndef FTL_ANALYSIS_FEASIBILITY_H_
#define FTL_ANALYSIS_FEASIBILITY_H_

/// \file feasibility.h
/// FTL feasibility estimation from service access rates.
///
/// Section VI closes with: "Our analysis ... is useful in evaluating the
/// feasibility of FTL when real values for λP and λQ are known." This
/// header makes that concrete. Only mutual segments shorter than the
/// model horizon carry signal; since the mutual-segment gap is
/// Exp(λP + λQ) (Corollary 6.2), the informative fraction is
/// 1 − e^{−(λP+λQ) h}, so
///
///   informative rate = E(X) · (1 − e^{−(λP+λQ) h})   per unit time,
///
/// and the observation duration needed for a target number of
/// informative segments follows directly.

#include <cstdint>

namespace ftl::analysis {

/// Feasibility estimate for one (λP, λQ, horizon) configuration.
/// Rates are per *unit time*; `horizon` is in the same unit.
struct FeasibilityReport {
  double expected_mutual_per_unit = 0.0;       ///< E(X)
  double informative_fraction = 0.0;           ///< Pr(gap <= horizon)
  double informative_per_unit = 0.0;           ///< product of the above
  double units_for_target = 0.0;               ///< duration for target
  bool feasible = false;                       ///< target reachable
};

/// Computes the report. `target_informative_segments` is the number of
/// informative mutual segments the classifier should see (a few tens
/// give the hypothesis tests real power). Infeasible (units_for_target
/// = inf, feasible = false) when either rate is 0.
FeasibilityReport EstimateFeasibility(double lambda_p, double lambda_q,
                                      double horizon_units,
                                      double target_informative_segments);

/// Convenience for real-world units: rates in events/day, horizon in
/// minutes, result duration in days.
struct DailyFeasibility {
  double informative_per_day = 0.0;
  double days_for_target = 0.0;
  bool feasible = false;
};
DailyFeasibility EstimateFeasibilityDaily(double events_per_day_p,
                                          double events_per_day_q,
                                          double horizon_minutes,
                                          double target_informative_segments);

}  // namespace ftl::analysis

#endif  // FTL_ANALYSIS_FEASIBILITY_H_
