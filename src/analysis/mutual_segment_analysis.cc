#include "analysis/mutual_segment_analysis.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/distributions.h"

namespace ftl::analysis {

namespace {

using stats::LogFactorial;

/// log C(n, k); -inf out of range.
double LogChoose(int64_t n, int64_t k) {
  if (k < 0 || n < 0 || k > n) {
    return -std::numeric_limits<double>::infinity();
  }
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

/// exp(a) + exp(b) combined safely in log space.
double LogAddExp(double a, double b) {
  if (std::isinf(a) && a < 0) return b;
  if (std::isinf(b) && b < 0) return a;
  double m = std::max(a, b);
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

}  // namespace

double AlternationProbability(int64_t a, int64_t b, int64_t x) {
  if (a < 0 || b < 0 || x < 0) return 0.0;
  if (a == 0 || b == 0) return x == 0 ? 1.0 : 0.0;
  // x alternations <=> r = x + 1 runs; feasible r in [2, a + b], and the
  // run counts per symbol must fit: ceil(r/2) <= max(a,b) etc. The
  // classical run-count formula handles feasibility via LogChoose.
  int64_t r = x + 1;
  if (r < 2 || r > a + b) return 0.0;
  double log_total = LogChoose(a + b, a);
  double log_count;
  if (r % 2 == 0) {
    // r = 2m runs: m runs of each symbol, either symbol may start.
    int64_t m = r / 2;
    double c = LogChoose(a - 1, m - 1) + LogChoose(b - 1, m - 1);
    log_count = c + std::log(2.0);
    if (std::isinf(c)) log_count = c;
  } else {
    // r = 2m+1 runs: (m+1, m) split; the majority-run symbol starts.
    int64_t m = r / 2;
    double c1 = LogChoose(a - 1, m) + LogChoose(b - 1, m - 1);
    double c2 = LogChoose(a - 1, m - 1) + LogChoose(b - 1, m);
    log_count = LogAddExp(c1, c2);
  }
  if (std::isinf(log_count)) return 0.0;
  return std::exp(log_count - log_total);
}

std::vector<double> MutualSegmentCountPmf(double lambda_p, double lambda_q,
                                          int64_t max_x, double tail_eps) {
  std::vector<double> pmf(static_cast<size_t>(max_x) + 1, 0.0);
  // Truncate each Poisson at a count whose upper tail is < tail_eps.
  auto truncation = [tail_eps](double lambda) {
    int64_t n = static_cast<int64_t>(lambda) + 1;
    while (1.0 - stats::PoissonCdf(n, lambda) > tail_eps && n < 4000) ++n;
    return n;
  };
  int64_t max_a = truncation(lambda_p);
  int64_t max_b = truncation(lambda_q);
  for (int64_t a = 0; a <= max_a; ++a) {
    double wa = stats::PoissonPmf(a, lambda_p);
    if (wa <= 0.0) continue;
    for (int64_t b = 0; b <= max_b; ++b) {
      double w = wa * stats::PoissonPmf(b, lambda_q);
      if (w <= 0.0) continue;
      int64_t hi = std::min<int64_t>(max_x, a + b - 1);
      if (a == 0 || b == 0) {
        pmf[0] += w;
        continue;
      }
      for (int64_t x = 0; x <= hi; ++x) {
        pmf[static_cast<size_t>(x)] += w * AlternationProbability(a, b, x);
      }
    }
  }
  return pmf;
}

double ExpectedMutualSegments(double lambda_p, double lambda_q) {
  double s = lambda_p + lambda_q;
  if (s <= 0.0) return 0.0;
  double t1 = 2.0 * lambda_p * lambda_q / s;
  double t2 = 2.0 * lambda_p * lambda_q / (s * s) * (1.0 - std::exp(-s));
  return t1 - t2;
}

double ApproxExpectedMutualSegments(double lambda_p, double lambda_q) {
  double s = lambda_p + lambda_q;
  if (s <= 0.0) return 0.0;
  return 2.0 * lambda_p * lambda_q / s;
}

double MutualSegmentCountUpperBound(double lambda_p, double lambda_q) {
  return 2.0 * std::min(lambda_p, lambda_q);
}

std::vector<double> MutualSegmentCountPoissonApprox(double lambda_p,
                                                    double lambda_q,
                                                    int64_t max_x) {
  return stats::PoissonPmfVector(
      ApproxExpectedMutualSegments(lambda_p, lambda_q), max_x);
}

double MutualSegmentGapPdf(double lambda_p, double lambda_q, double y) {
  return stats::ExponentialPdf(y, lambda_p + lambda_q);
}

double MutualSegmentGapCdf(double lambda_p, double lambda_q, double y) {
  return stats::ExponentialCdf(y, lambda_p + lambda_q);
}

std::vector<int64_t> SimulateMutualSegmentCounts(Rng* rng, double lambda_p,
                                                 double lambda_q,
                                                 size_t trials) {
  std::vector<int64_t> counts;
  counts.reserve(trials);
  for (size_t t = 0; t < trials; ++t) {
    auto tp = PoissonProcess(rng, lambda_p, 0.0, 1.0);
    auto tq = PoissonProcess(rng, lambda_q, 0.0, 1.0);
    // Merge and count alternations.
    size_t i = 0, j = 0;
    int last = -1;  // -1 none, 0 P, 1 Q
    int64_t x = 0;
    while (i < tp.size() || j < tq.size()) {
      int cur;
      if (i < tp.size() && (j >= tq.size() || tp[i] <= tq[j])) {
        cur = 0;
        ++i;
      } else {
        cur = 1;
        ++j;
      }
      if (last != -1 && last != cur) ++x;
      last = cur;
    }
    counts.push_back(x);
  }
  return counts;
}

std::vector<double> SimulateMutualSegmentGaps(Rng* rng, double lambda_p,
                                              double lambda_q,
                                              double horizon) {
  auto tp = PoissonProcess(rng, lambda_p, 0.0, horizon);
  auto tq = PoissonProcess(rng, lambda_q, 0.0, horizon);
  std::vector<double> gaps;
  size_t i = 0, j = 0;
  int last = -1;
  double last_t = 0.0;
  while (i < tp.size() || j < tq.size()) {
    int cur;
    double t;
    if (i < tp.size() && (j >= tq.size() || tp[i] <= tq[j])) {
      cur = 0;
      t = tp[i++];
    } else {
      cur = 1;
      t = tq[j++];
    }
    if (last != -1 && last != cur) gaps.push_back(t - last_t);
    last = cur;
    last_t = t;
  }
  return gaps;
}

}  // namespace ftl::analysis
