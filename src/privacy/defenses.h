#ifndef FTL_PRIVACY_DEFENSES_H_
#define FTL_PRIVACY_DEFENSES_H_

/// \file defenses.h
/// Location-privacy defenses against fuzzy trajectory linking.
///
/// The paper closes by flagging FTL's privacy implications as future
/// work. This module implements the standard data-release defenses a
/// service provider can apply before sharing a trajectory database, so
/// that bench_privacy can quantify how each degrades the FTL attack:
///  * spatial cloaking   — generalize locations to a coarse grid,
///  * temporal cloaking  — round timestamps to coarse windows,
///  * Gaussian perturbation — add planar noise to each location,
///  * record suppression — publish only a subsample of records.
///
/// Every defense is a pure database->database transform; all randomness
/// is seeded.

#include "traj/database.h"
#include "util/rng.h"

namespace ftl::privacy {

/// Snaps every location to the center of a `grid_meters` cell.
traj::TrajectoryDatabase SpatialCloaking(const traj::TrajectoryDatabase& db,
                                         double grid_meters);

/// Rounds every timestamp down to a multiple of `window_seconds`.
traj::TrajectoryDatabase TemporalCloaking(const traj::TrajectoryDatabase& db,
                                          int64_t window_seconds);

/// Adds independent N(0, sigma^2) noise to each coordinate.
traj::TrajectoryDatabase GaussianPerturbation(
    const traj::TrajectoryDatabase& db, double sigma_meters, Rng* rng);

/// Keeps each record independently with probability `keep_prob`.
traj::TrajectoryDatabase RecordSuppression(const traj::TrajectoryDatabase& db,
                                           double keep_prob, Rng* rng);

}  // namespace ftl::privacy

#endif  // FTL_PRIVACY_DEFENSES_H_
