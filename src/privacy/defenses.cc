#include "privacy/defenses.h"

#include <cmath>

namespace ftl::privacy {

namespace {

template <typename Fn>
traj::TrajectoryDatabase TransformRecords(const traj::TrajectoryDatabase& db,
                                          Fn&& fn) {
  traj::TrajectoryDatabase out(db.name());
  for (const auto& t : db) {
    std::vector<traj::Record> recs;
    recs.reserve(t.size());
    for (const auto& r : t.records()) {
      traj::Record nr = r;
      fn(&nr);
      recs.push_back(nr);
    }
    (void)out.Add(traj::Trajectory(t.label(), t.owner(), std::move(recs)));
  }
  return out;
}

}  // namespace

traj::TrajectoryDatabase SpatialCloaking(const traj::TrajectoryDatabase& db,
                                         double grid_meters) {
  return TransformRecords(db, [grid_meters](traj::Record* r) {
    r->location.x =
        (std::floor(r->location.x / grid_meters) + 0.5) * grid_meters;
    r->location.y =
        (std::floor(r->location.y / grid_meters) + 0.5) * grid_meters;
  });
}

traj::TrajectoryDatabase TemporalCloaking(const traj::TrajectoryDatabase& db,
                                          int64_t window_seconds) {
  return TransformRecords(db, [window_seconds](traj::Record* r) {
    // Floor toward -inf so the transform is monotone (keeps sorting).
    int64_t t = r->t;
    int64_t w = window_seconds;
    r->t = (t >= 0 ? t / w : (t - w + 1) / w) * w;
  });
}

traj::TrajectoryDatabase GaussianPerturbation(
    const traj::TrajectoryDatabase& db, double sigma_meters, Rng* rng) {
  traj::TrajectoryDatabase out(db.name());
  for (const auto& t : db) {
    Rng sub = rng->Fork();
    std::vector<traj::Record> recs;
    recs.reserve(t.size());
    for (const auto& r : t.records()) {
      traj::Record nr = r;
      nr.location.x += sub.Normal(0.0, sigma_meters);
      nr.location.y += sub.Normal(0.0, sigma_meters);
      recs.push_back(nr);
    }
    (void)out.Add(traj::Trajectory(t.label(), t.owner(), std::move(recs)));
  }
  return out;
}

traj::TrajectoryDatabase RecordSuppression(const traj::TrajectoryDatabase& db,
                                           double keep_prob, Rng* rng) {
  traj::TrajectoryDatabase out(db.name());
  for (const auto& t : db) {
    Rng sub = rng->Fork();
    std::vector<traj::Record> recs;
    for (const auto& r : t.records()) {
      if (sub.Bernoulli(keep_prob)) recs.push_back(r);
    }
    (void)out.Add(traj::Trajectory(t.label(), t.owner(), std::move(recs)));
  }
  return out;
}

}  // namespace ftl::privacy
