#ifndef FTL_PRIVACY_ATTACK_EVAL_H_
#define FTL_PRIVACY_ATTACK_EVAL_H_

/// \file attack_eval.h
/// Quantifies re-identification risk: FTL run as an adversary against a
/// (possibly defended) database release.
///
/// Risk model: the adversary holds database P (their own service's
/// data) and obtains a release of database Q. For each P-trajectory they
/// run FTL and attempt re-identification. Reported risk:
///  * perceptiveness — the true owner is somewhere in the candidate set,
///  * top1_accuracy  — the highest-ranked candidate is the true owner,
///  * mean candidate-set size — the adversary's residual uncertainty.

#include "core/engine.h"
#include "eval/workload.h"
#include "traj/database.h"
#include "util/status.h"

namespace ftl::privacy {

/// Attack outcome on one database release.
struct RiskReport {
  double perceptiveness = 0.0;   ///< true owner within candidate set
  double top1_accuracy = 0.0;    ///< true owner ranked first
  double mean_candidates = 0.0;  ///< residual uncertainty
  size_t num_queries = 0;
};

/// Attack configuration.
struct AttackOptions {
  core::EngineOptions engine;       ///< adversary's FTL configuration
  eval::WorkloadOptions workload;   ///< which P-trajectories attack
  core::Matcher matcher = core::Matcher::kNaiveBayes;
};

/// Trains FTL on (p, q_release) — the adversary can always self-train on
/// the released data — and measures re-identification risk.
Result<RiskReport> EvaluateLinkageRisk(const traj::TrajectoryDatabase& p,
                                       const traj::TrajectoryDatabase& q_release,
                                       const AttackOptions& options);

}  // namespace ftl::privacy

#endif  // FTL_PRIVACY_ATTACK_EVAL_H_
