#include "privacy/attack_eval.h"

#include "eval/metrics.h"

namespace ftl::privacy {

Result<RiskReport> EvaluateLinkageRisk(
    const traj::TrajectoryDatabase& p,
    const traj::TrajectoryDatabase& q_release,
    const AttackOptions& options) {
  core::FtlEngine engine(options.engine);
  FTL_RETURN_NOT_OK(engine.Train(p, q_release));

  eval::Workload workload = eval::MakeWorkload(p, q_release,
                                               options.workload);
  if (workload.queries.empty()) {
    return Status::FailedPrecondition(
        "no eligible attack queries (release too heavily defended?)");
  }
  auto results =
      engine.BatchQuery(workload.queries, q_release, options.matcher);
  if (!results.ok()) return results.status();

  eval::WorkloadMetrics m =
      eval::ComputeMetrics(results.value(), workload.owners, q_release);
  RiskReport report;
  report.perceptiveness = m.perceptiveness;
  report.top1_accuracy = eval::PrecisionAtK(m.true_match_ranks, 1);
  report.mean_candidates = m.mean_candidates;
  report.num_queries = m.num_queries;
  return report;
}

}  // namespace ftl::privacy
