/// \file kernels_avx2.cc
/// 256-bit AVX2 kernel instantiations. This TU (alone) is compiled
/// with -mavx2 — but deliberately NOT -mfma, so mul/add sequences stay
/// separate instructions and results remain bit-identical to scalar.
/// Nothing here may run before the dispatcher's runtime CPUID check;
/// the only baseline-safe entry point is the table getter.

#include "simd/kernels_internal.h"

#if defined(FTL_SIMD_HAVE_AVX2)

#include "simd/kernels_vec_impl.h"
#include "simd/vec_avx2.h"

namespace ftl::simd::internal {

const Kernels* GetAvx2Kernels() {
  static const Kernels k = {IsaLevel::kAvx2, "avx2",
                            &EvidenceHistogramVec<Avx2Traits>,
                            &ConvolvePrefixVec<Avx2Traits>,
                            &BernoulliStepVec<Avx2Traits>};
  return &k;
}

}  // namespace ftl::simd::internal

#endif  // FTL_SIMD_HAVE_AVX2
