/// \file kernels_scalar.cc
/// Scalar reference kernels: the byte-identity oracle every vector
/// kernel is tested against, and the active table under
/// FTL_SIMD=scalar or on targets with no vector backend. The evidence
/// merge here is the same run-skipping alternation walk as
/// core/evidence.cc's layout-generic kernel, operating on raw column
/// pointers.

#include "simd/kernels_internal.h"

namespace ftl::simd::internal {

int64_t EvidenceHistogramScalar(const int64_t* pt, const double* px,
                                const double* py, size_t np,
                                const int64_t* qt, const double* qx,
                                const double* qy, size_t nq,
                                const EvidenceParams& params, int32_t* cnt,
                                int32_t* inc, EvidenceScratch* /*scratch*/) {
  const EvidenceConsts c = MakeEvidenceConsts(params);
  int64_t total_mutual = 0;
  // Mutual segments are the source alternations of the merged order
  // (ties P-first): per Q record, the run of P records at or before it
  // contributes at most two — its first record closes a Q->P
  // alternation, its last opens the P->Q alternation closed by q[j].
  size_t i = 0;
  for (size_t j = 0; j < nq; ++j) {
    const int64_t tj = qt[j];
    if (i < np && pt[i] <= tj) {
      if (j > 0) {
        ++total_mutual;
        SegmentUpdate(c, pt[i] - qt[j - 1], px[i] - qx[j - 1],
                      py[i] - qy[j - 1], cnt, inc);
      }
      while (i + 1 < np && pt[i + 1] <= tj) ++i;
      ++total_mutual;
      SegmentUpdate(c, qt[j] - pt[i], qx[j] - px[i], qy[j] - py[i], cnt, inc);
      ++i;
    }
  }
  // P records after the last Q record: only the first closes an
  // alternation; the rest are self-segments.
  if (i < np && nq > 0) {
    ++total_mutual;
    SegmentUpdate(c, pt[i] - qt[nq - 1], px[i] - qx[nq - 1], py[i] - qy[nq - 1],
                  cnt, inc);
  }
  return total_mutual;
}

void ConvolvePrefixScalar(double* f, size_t new_len, const double* b,
                          size_t m) {
  for (size_t t = new_len; t-- > 0;) {
    size_t jmax = std::min(t, m);
    double acc = 0.0;
    for (size_t j = 0; j <= jmax; ++j) acc += f[t - j] * b[j];
    f[t] = acc;
  }
}

void BernoulliStepScalar(double* f, size_t new_len, double p, double q) {
  for (size_t t = new_len; t-- > 1;) f[t] = f[t] * q + f[t - 1] * p;
  f[0] *= q;
}

const Kernels* GetScalarKernels() {
  static const Kernels k = {IsaLevel::kScalar, "scalar",
                            &EvidenceHistogramScalar, &ConvolvePrefixScalar,
                            &BernoulliStepScalar};
  return &k;
}

}  // namespace ftl::simd::internal
