#ifndef FTL_SIMD_VEC_AVX2_H_
#define FTL_SIMD_VEC_AVX2_H_

/// \file vec_avx2.h
/// 256-bit AVX2 trait for kernels_vec_impl.h. Only included from the
/// TU compiled with -mavx2 (kernels_avx2.cc); the dispatcher gates
/// execution behind a runtime CPUID check. Explicit mul/add intrinsics
/// throughout — never FMA — to keep results bit-identical to scalar.
/// The bucket math runs on a 128-bit vector of 4 int32 lanes paired
/// with the 256-bit vector of 4 doubles, so every integer op and both
/// int<->double conversions are single native instructions.

#include <cstdint>
#include <immintrin.h>

namespace ftl::simd::internal {

struct Avx2Traits {
  static constexpr size_t kLanes = 4;
  using F = __m256d;
  using I = __m256i;    ///< kLanes x int64 (timestamp gallop)
  using I32 = __m128i;  ///< kLanes x int32 (bucket math)

  static F loadu_f64(const double* p) { return _mm256_loadu_pd(p); }
  static void storeu_f64(double* p, F v) { _mm256_storeu_pd(p, v); }
  static I loadu_i64(const int64_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static F set1_f64(double v) { return _mm256_set1_pd(v); }
  static I set1_i64(int64_t v) { return _mm256_set1_epi64x(v); }

  static F add_f64(F a, F b) { return _mm256_add_pd(a, b); }
  static F sub_f64(F a, F b) { return _mm256_sub_pd(a, b); }
  static F mul_f64(F a, F b) { return _mm256_mul_pd(a, b); }

  /// Ordered quiet compares (_OQ): false on NaN, matching scalar `>`.
  static F cmpgt_f64(F a, F b) { return _mm256_cmp_pd(a, b, _CMP_GT_OQ); }
  static F cmpge_f64(F a, F b) { return _mm256_cmp_pd(a, b, _CMP_GE_OQ); }

  static I cmpgt_i64(I a, I b) { return _mm256_cmpgt_epi64(a, b); }

  static int movemask_f64(F m) { return _mm256_movemask_pd(m); }
  static int movemask_i64(I m) {
    return _mm256_movemask_pd(_mm256_castsi256_pd(m));
  }

  // ------------------------------------------------ int32 lane ops
  static I32 loadu_i32(const int32_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void storeu_i32(int32_t* p, I32 v) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  static I32 set1_i32(int32_t v) { return _mm_set1_epi32(v); }
  static I32 add_i32(I32 a, I32 b) { return _mm_add_epi32(a, b); }
  static I32 sub_i32(I32 a, I32 b) { return _mm_sub_epi32(a, b); }
  static I32 cmpgt_i32(I32 a, I32 b) { return _mm_cmpgt_epi32(a, b); }
  static I32 cmpeq_i32(I32 a, I32 b) { return _mm_cmpeq_epi32(a, b); }
  static I32 or_i32(I32 a, I32 b) { return _mm_or_si128(a, b); }
  static I32 broadcast0_i32(I32 v) {
    return _mm_shuffle_epi32(v, _MM_SHUFFLE(0, 0, 0, 0));
  }
  static int32_t extract0_i32(I32 v) { return _mm_cvtsi128_si32(v); }
  static int movemask_i32(I32 m) {
    return _mm_movemask_ps(_mm_castsi128_ps(m));
  }
  static I32 blendv_i32(I32 a, I32 b, I32 m) {
    // Lane masks are all-ones/all-zeros, so the per-byte blend is a
    // per-lane blend.
    return _mm_blendv_epi8(a, b, m);
  }
  static I32 mullo_i32(I32 a, I32 b) { return _mm_mullo_epi32(a, b); }

  /// Exact int32 -> double (every int32 is representable).
  static F i32_to_f64(I32 v) { return _mm256_cvtepi32_pd(v); }

  /// Truncate toward zero into int32 lanes; defined for |d| < 2^31
  /// (guarded by the caller), out-of-range lanes produce the sentinel
  /// 0x80000000 and must be blended away.
  static I32 f64_to_i32_trunc(F d) { return _mm256_cvttpd_epi32(d); }

  /// Narrows a f64 compare mask to int32 lanes: gather the even dwords
  /// of the four 64-bit lane masks into the low 128 bits.
  static I32 castf_i32(F m) {
    const __m256i idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
    return _mm256_castsi256_si128(
        _mm256_permutevar8x32_epi32(_mm256_castpd_si256(m), idx));
  }
};

}  // namespace ftl::simd::internal

#endif  // FTL_SIMD_VEC_AVX2_H_
