#ifndef FTL_SIMD_VEC_NEON_H_
#define FTL_SIMD_VEC_NEON_H_

/// \file vec_neon.h
/// 128-bit aarch64 NEON trait for kernels_vec_impl.h (ASIMD is
/// baseline on aarch64, so like SSE2 it needs no runtime check).
/// aarch64 has native f64x2/i64x2 lanes and 64-bit compares; the
/// bucket math runs on 64-bit int32x2 vectors, where every op —
/// including the low-multiply x86 has to emulate — is native. The
/// movemask has no hardware equivalent and is assembled from lane
/// sign bits.

#include <arm_neon.h>

#include <cstdint>

namespace ftl::simd::internal {

struct NeonTraits {
  static constexpr size_t kLanes = 2;
  using F = float64x2_t;
  using I = int64x2_t;    ///< kLanes x int64 (timestamp gallop)
  using I32 = int32x2_t;  ///< kLanes x int32 (bucket math)

  static F loadu_f64(const double* p) { return vld1q_f64(p); }
  static void storeu_f64(double* p, F v) { vst1q_f64(p, v); }
  static I loadu_i64(const int64_t* p) { return vld1q_s64(p); }
  static F set1_f64(double v) { return vdupq_n_f64(v); }
  static I set1_i64(int64_t v) { return vdupq_n_s64(v); }

  static F add_f64(F a, F b) { return vaddq_f64(a, b); }
  static F sub_f64(F a, F b) { return vsubq_f64(a, b); }
  static F mul_f64(F a, F b) { return vmulq_f64(a, b); }

  /// NEON compares return false on NaN, matching scalar `>` / `>=`.
  /// Masks are carried in the f64 type via reinterpret for trait-API
  /// symmetry with the x86 wrappers.
  static F cmpgt_f64(F a, F b) {
    return vreinterpretq_f64_u64(vcgtq_f64(a, b));
  }
  static F cmpge_f64(F a, F b) {
    return vreinterpretq_f64_u64(vcgeq_f64(a, b));
  }

  static I cmpgt_i64(I a, I b) {
    return vreinterpretq_s64_u64(vcgtq_s64(a, b));
  }

  static int movemask_f64(F m) {
    uint64x2_t u = vreinterpretq_u64_f64(m);
    return static_cast<int>((vgetq_lane_u64(u, 0) >> 63) |
                            ((vgetq_lane_u64(u, 1) >> 63) << 1));
  }
  static int movemask_i64(I m) {
    uint64x2_t u = vreinterpretq_u64_s64(m);
    return static_cast<int>((vgetq_lane_u64(u, 0) >> 63) |
                            ((vgetq_lane_u64(u, 1) >> 63) << 1));
  }

  // ------------------------------------------------ int32 lane ops
  static I32 loadu_i32(const int32_t* p) { return vld1_s32(p); }
  static void storeu_i32(int32_t* p, I32 v) { vst1_s32(p, v); }
  static I32 set1_i32(int32_t v) { return vdup_n_s32(v); }
  static I32 add_i32(I32 a, I32 b) { return vadd_s32(a, b); }
  static I32 sub_i32(I32 a, I32 b) { return vsub_s32(a, b); }
  static I32 cmpgt_i32(I32 a, I32 b) {
    return vreinterpret_s32_u32(vcgt_s32(a, b));
  }
  static I32 cmpeq_i32(I32 a, I32 b) {
    return vreinterpret_s32_u32(vceq_s32(a, b));
  }
  static I32 or_i32(I32 a, I32 b) { return vorr_s32(a, b); }
  static I32 broadcast0_i32(I32 v) { return vdup_lane_s32(v, 0); }
  static int32_t extract0_i32(I32 v) { return vget_lane_s32(v, 0); }
  static int movemask_i32(I32 m) {
    uint32x2_t u = vreinterpret_u32_s32(m);
    return static_cast<int>((vget_lane_u32(u, 0) >> 31) |
                            ((vget_lane_u32(u, 1) >> 31) << 1));
  }
  static I32 blendv_i32(I32 a, I32 b, I32 m) {
    return vbsl_s32(vreinterpret_u32_s32(m), b, a);
  }
  static I32 mullo_i32(I32 a, I32 b) { return vmul_s32(a, b); }

  /// Exact int32 -> double: widen, then scvtf (exact for any int32).
  static F i32_to_f64(I32 v) { return vcvtq_f64_s64(vmovl_s32(v)); }

  /// fcvtzs truncates toward zero; the narrowing keeps the low 32
  /// bits, valid under the caller's |d| < 2^31 guard.
  static I32 f64_to_i32_trunc(F d) { return vmovn_s64(vcvtq_s64_f64(d)); }

  /// Narrows a f64 compare mask to int32 lanes.
  static I32 castf_i32(F m) {
    return vreinterpret_s32_u32(vmovn_u64(vreinterpretq_u64_f64(m)));
  }
};

}  // namespace ftl::simd::internal

#endif  // FTL_SIMD_VEC_NEON_H_
