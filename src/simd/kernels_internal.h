#ifndef FTL_SIMD_KERNELS_INTERNAL_H_
#define FTL_SIMD_KERNELS_INTERNAL_H_

/// \file kernels_internal.h
/// Library-internal declarations shared by the per-ISA kernel TUs and
/// the dispatcher: the scalar reference kernels (also the fallback the
/// vector kernels defer to for degenerate parameters) and the per-ISA
/// table getters. Not installed; include only from src/simd.

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "simd/kernels.h"

namespace ftl::simd::internal {

/// Hoisted per-call constants of the evidence segment math.
struct EvidenceConsts {
  int64_t tu;       ///< time unit, seconds (>= 1 on the vector paths)
  int64_t half;     ///< tu / 2 (rounding offset)
  int64_t horizon;  ///< horizon_units; histogram overflow slot index
  double inv_tu;    ///< 1.0 / tu
  double vmax;      ///< speed threshold, m/s
};

inline EvidenceConsts MakeEvidenceConsts(const EvidenceParams& p) {
  return EvidenceConsts{p.time_unit_seconds, p.time_unit_seconds / 2,
                        p.horizon_units,
                        1.0 / static_cast<double>(p.time_unit_seconds),
                        p.vmax_mps};
}

/// One mutual segment's histogram update — THE scalar reference math.
/// `dt` is the segment's non-negative time difference; dx/dy may be
/// any sign (only their squares are used) or NaN (NaN compares false,
/// so a NaN coordinate counts as compatible, matching the scalar
/// engine). The unit bucket is (dt + tu/2) / tu computed by
/// reciprocal multiply with a one-off fixup, clamped into the
/// beyond-horizon overflow slot.
inline void SegmentUpdate(const EvidenceConsts& c, int64_t dt, double dx,
                          double dy, int32_t* cnt, int32_t* inc) {
  double limit = c.vmax * static_cast<double>(dt);
  int32_t incompat = dx * dx + dy * dy > limit * limit ? 1 : 0;
  int64_t x = dt + c.half;
  int64_t unit = static_cast<int64_t>(static_cast<double>(x) * c.inv_tu);
  int64_t r = x - unit * c.tu;
  unit += (r >= c.tu) - (r < 0);
  size_t u = static_cast<size_t>(std::min(unit, c.horizon));
  ++cnt[u];
  inc[u] += incompat;
}

/// Scalar reference kernels (always compiled in).
int64_t EvidenceHistogramScalar(const int64_t* pt, const double* px,
                                const double* py, size_t np,
                                const int64_t* qt, const double* qx,
                                const double* qy, size_t nq,
                                const EvidenceParams& params, int32_t* cnt,
                                int32_t* inc, EvidenceScratch* scratch);
void ConvolvePrefixScalar(double* f, size_t new_len, const double* b,
                          size_t m);
void BernoulliStepScalar(double* f, size_t new_len, double p, double q);

/// True when the vector evidence kernels can run on these parameters;
/// degenerate corners (non-positive time unit, horizons past the
/// int32-truncation guard, missing scratch) defer to the scalar kernel
/// instead of widening the vector paths for cases that never occur in
/// practice.
inline bool VectorEvidenceSupported(const EvidenceParams& params,
                                    const EvidenceScratch* scratch) {
  return scratch != nullptr && params.time_unit_seconds >= 1 &&
         params.horizon_units >= 0 &&
         params.horizon_units <= (int64_t{1} << 30);
}

/// Per-ISA tables. The scalar table always exists; the 128/256-bit
/// getters are compiled only when the target supports them (guarded by
/// FTL_SIMD_HAVE_* definitions from src/simd/CMakeLists.txt).
const Kernels* GetScalarKernels();
#if defined(FTL_SIMD_HAVE_128)
const Kernels* Get128Kernels();
#endif
#if defined(FTL_SIMD_HAVE_AVX2)
const Kernels* GetAvx2Kernels();
#endif

}  // namespace ftl::simd::internal

#endif  // FTL_SIMD_KERNELS_INTERNAL_H_
