#include "simd/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <string_view>

#include "obs/metrics.h"
#include "simd/kernels_internal.h"

namespace ftl::simd {

namespace {

using internal::GetScalarKernels;

/// Runtime CPU capability for the AVX2 tier. SSE2/NEON are baseline
/// for their platforms, so kSimd128 needs only a compile-time check.
bool CpuHasAvx2() {
#if defined(FTL_SIMD_HAVE_AVX2) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const Kernels* TableFor(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return GetScalarKernels();
    case IsaLevel::kSimd128:
#if defined(FTL_SIMD_HAVE_128)
      return internal::Get128Kernels();
#else
      return nullptr;
#endif
    case IsaLevel::kAvx2:
#if defined(FTL_SIMD_HAVE_AVX2)
      return CpuHasAvx2() ? internal::GetAvx2Kernels() : nullptr;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

/// Highest supported level at or below `want` (never clamps up, so an
/// explicit override can not select instructions the CPU lacks).
const Kernels* ClampDown(IsaLevel want) {
  for (int l = static_cast<int>(want); l >= 0; --l) {
    if (const Kernels* k = TableFor(static_cast<IsaLevel>(l))) return k;
  }
  return GetScalarKernels();
}

IsaLevel ParseOverride(std::string_view v, IsaLevel best) {
  if (v == "scalar") return IsaLevel::kScalar;
  if (v == "sse2" || v == "neon" || v == "simd128") return IsaLevel::kSimd128;
  if (v == "avx2") return IsaLevel::kAvx2;
  return best;  // "auto", empty, or unrecognized
}

/// Publishes which table serves traffic: a numeric level gauge plus a
/// 0/1 gauge per level name, updated on every (re)selection so test
/// overrides stay visible too.
void PublishDispatchGauges(const Kernels& active) {
  auto& r = obs::MetricsRegistry::Global();
  r.GetGauge("ftl_simd_dispatch").Set(static_cast<int64_t>(active.level));
  for (int l = 0; l <= static_cast<int>(IsaLevel::kAvx2); ++l) {
    IsaLevel level = static_cast<IsaLevel>(l);
    r.GetGauge(std::string("ftl_simd_dispatch_active{isa=\"") +
               IsaLevelName(level) + "\"}")
        .Set(level == active.level ? 1 : 0);
  }
}

const Kernels* ResolveFromEnvironment() {
  IsaLevel want = BestSupportedLevel();
  if (const char* env = std::getenv("FTL_SIMD")) {
    want = ParseOverride(env, want);
  }
  return ClampDown(want);
}

std::atomic<const Kernels*> g_active{nullptr};

}  // namespace

const Kernels& Dispatch() {
  const Kernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    const Kernels* resolved = ResolveFromEnvironment();
    const Kernels* expected = nullptr;
    if (g_active.compare_exchange_strong(expected, resolved,
                                         std::memory_order_acq_rel)) {
      k = resolved;
      PublishDispatchGauges(*k);
    } else {
      k = expected;  // another thread won the race
    }
  }
  return *k;
}

IsaLevel BestSupportedLevel() { return ClampDown(IsaLevel::kAvx2)->level; }

const Kernels* KernelsFor(IsaLevel level) { return TableFor(level); }

const Kernels& SetDispatchForTest(IsaLevel level) {
  const Kernels* k = ClampDown(level);
  g_active.store(k, std::memory_order_release);
  PublishDispatchGauges(*k);
  return *k;
}

const char* IsaLevelName(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return "scalar";
    case IsaLevel::kSimd128:
#if defined(__aarch64__)
      return "neon";
#else
      return "sse2";
#endif
    case IsaLevel::kAvx2:
      return "avx2";
  }
  return "scalar";
}

}  // namespace ftl::simd
