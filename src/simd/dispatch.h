#ifndef FTL_SIMD_DISPATCH_H_
#define FTL_SIMD_DISPATCH_H_

/// \file dispatch.h
/// Runtime ISA dispatch for the SIMD kernel table.
///
/// The active table is resolved once, on first use, from (a) what this
/// binary was compiled with, (b) what the CPU reports at runtime
/// (CPUID on x86-64), and (c) the `FTL_SIMD` environment override:
///
///   FTL_SIMD=scalar   force the scalar reference kernels
///   FTL_SIMD=sse2     force the 128-bit kernels (x86-64 spelling)
///   FTL_SIMD=neon     force the 128-bit kernels (aarch64 spelling)
///   FTL_SIMD=simd128  force the 128-bit kernels (either platform)
///   FTL_SIMD=avx2     force the 256-bit kernels
///   FTL_SIMD=auto     best supported level (same as unset)
///
/// An override naming a level the build or CPU cannot run clamps down
/// to the best supported level at or below the request (never up), so
/// setting FTL_SIMD=avx2 on a non-AVX2 host degrades gracefully
/// instead of executing illegal instructions. Unrecognized values
/// behave like `auto`.
///
/// Resolution publishes the `ftl_simd_dispatch` gauge (numeric
/// IsaLevel) plus one `ftl_simd_dispatch_active{isa="..."}` 0/1 gauge
/// per compiled-in level, so /metrics consumers can see which kernels
/// serve traffic.

#include "simd/kernels.h"

namespace ftl::simd {

/// The active kernel table (resolved once; later calls are one atomic
/// load). Thread safe.
const Kernels& Dispatch();

/// Best ISA level this binary + CPU can run.
IsaLevel BestSupportedLevel();

/// The kernel table for `level`, or null when that level is not
/// compiled in or not runnable on this CPU. Benches and the property
/// tests use this to pit levels against each other explicitly.
const Kernels* KernelsFor(IsaLevel level);

/// Forces the active table to `level` (clamped to supported), bypassing
/// the environment override. Returns the now-active table. Test and
/// bench support; not for concurrent use with in-flight queries.
const Kernels& SetDispatchForTest(IsaLevel level);

/// Human-readable level name ("scalar", "sse2"/"neon", "avx2").
const char* IsaLevelName(IsaLevel level);

}  // namespace ftl::simd

#endif  // FTL_SIMD_DISPATCH_H_
