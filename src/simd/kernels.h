#ifndef FTL_SIMD_KERNELS_H_
#define FTL_SIMD_KERNELS_H_

/// \file kernels.h
/// The vectorized hot-loop kernel table.
///
/// Three loops dominate per-pair scoring (see DESIGN.md §10): the
/// alignment merge's segment math over SoA columns, the bucket
/// histogram accumulation it feeds, and the truncated Poisson-Binomial
/// convolution of the exact tail. Each is exposed here as a C-style
/// function pointer over raw column pointers — no core/traj types — so
/// the SIMD layer stays at the bottom of the dependency graph and one
/// table can be swapped wholesale by the runtime dispatcher
/// (simd/dispatch.h).
///
/// Bit-identity contract: every implementation of a kernel, at every
/// ISA level, produces byte-identical output to the scalar
/// implementation for all inputs (including NaN coordinates). Integer
/// histogram work is order-free; floating-point work is either
/// element-wise (identical operations per element) or accumulates in
/// the exact scalar order per output element (the convolutions
/// vectorize ACROSS outputs, never across a single output's summation
/// order). No FMA contraction is permitted in any kernel TU.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ftl::simd {

/// Parameters of the evidence-histogram kernel, mirroring
/// core::EvidenceOptions without depending on it.
struct EvidenceParams {
  int64_t time_unit_seconds = 60;
  int64_t horizon_units = 60;
  double vmax_mps = 0.0;
};

/// Reusable staging buffers for the vector evidence kernel: the merge
/// phase emits each mutual segment's deltas (non-negative dt, signed
/// dx/dy) into these contiguous arrays, and the math phase consumes
/// them in vector-width blocks with plain sequential loads — no
/// gathers. dt is staged as int32 so the bucket math runs on native
/// int32 lanes; pairs whose time span could overflow it fall back to
/// the scalar kernel (see kernels_vec_impl.h). Grows on demand; keep
/// one per scoring thread so steady state is allocation free. The
/// scalar kernel ignores it (and tolerates null).
struct EvidenceScratch {
  std::vector<int32_t> dt;
  std::vector<double> dx;
  std::vector<double> dy;
};

/// Builds the per-unit evidence histogram of the mutual segments of the
/// time-ordered merge of P (pt/px/py, np records) and Q (qt/qx/qy, nq
/// records), both sorted by non-decreasing timestamp. `cnt` and `inc`
/// have horizon_units + 1 slots each and MUST be zeroed by the caller;
/// slot horizon_units is the beyond-horizon overflow slot. Returns the
/// total number of mutual segments. Semantics (merge order, P-first
/// ties, speed-threshold compare, reciprocal-multiply unit bucketing)
/// match core::CollectEvidence exactly, bit for bit.
using EvidenceHistogramFn = int64_t (*)(
    const int64_t* pt, const double* px, const double* py, size_t np,
    const int64_t* qt, const double* qx, const double* qy, size_t nq,
    const EvidenceParams& params, int32_t* cnt, int32_t* inc,
    EvidenceScratch* scratch);

/// One in-place backward convolution round of the truncated
/// Poisson-Binomial prefix build (stats/grouped_poisson_binomial.cc):
///   f[t] = sum_{j=0..min(t,m)} f[t-j] * b[j]   for t = new_len-1 .. 0,
/// each output's sum accumulated in ascending-j order from 0.0.
using ConvolvePrefixFn = void (*)(double* f, size_t new_len,
                                  const double* b, size_t m);

/// One in-place backward Bernoulli DP update of the same build:
///   f[t] = f[t] * q + f[t-1] * p   for t = new_len-1 .. 1;  f[0] *= q.
using BernoulliStepFn = void (*)(double* f, size_t new_len, double p,
                                 double q);

/// ISA tiers the dispatcher selects between. kSimd128 is SSE2 on
/// x86-64 and NEON on aarch64 (both baseline for their platform);
/// kAvx2 exists only on x86-64 and is gated on runtime CPUID.
enum class IsaLevel : int {
  kScalar = 0,
  kSimd128 = 1,
  kAvx2 = 2,
};

/// One ISA level's kernel set. Tables are immutable process-lifetime
/// statics; the dispatcher hands out pointers to them.
struct Kernels {
  IsaLevel level = IsaLevel::kScalar;
  const char* name = "scalar";  ///< "scalar" | "sse2" | "neon" | "avx2"
  EvidenceHistogramFn evidence_histogram = nullptr;
  ConvolvePrefixFn convolve_prefix = nullptr;
  BernoulliStepFn bernoulli_step = nullptr;
};

}  // namespace ftl::simd

#endif  // FTL_SIMD_KERNELS_H_
