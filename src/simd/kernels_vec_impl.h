#ifndef FTL_SIMD_KERNELS_VEC_IMPL_H_
#define FTL_SIMD_KERNELS_VEC_IMPL_H_

/// \file kernels_vec_impl.h
/// The vector kernels, templated over a lane-width trait type (see
/// vec_sse2.h / vec_avx2.h / vec_neon.h). One implementation serves
/// 128-bit and 256-bit targets; each per-ISA TU instantiates it with
/// its trait and registers the resulting table.
///
/// A trait `T` provides `kLanes` plus static wrappers:
///   F / I / I32                 — kLanes of f64 / i64 / i32
///   loadu_f64/storeu_f64/set1_f64; add/sub/mul f64
///   loadu_i64 / set1_i64 / cmpgt_i64 (signed, all-ones lane masks)
///   cmpgt_f64 (ordered, quiet: NaN -> false), cmpge_f64
///   movemask_f64 / movemask_i64 — lane sign bits, lane 0 = bit 0
///   loadu_i32/storeu_i32/set1_i32; add/sub/or/cmpgt/cmpeq i32
///   broadcast0_i32 / extract0_i32 — splat / read lane 0
///   movemask_i32                — int32 lane sign bits (mask with
///                                 kFullMask; upper bits undefined)
///   blendv_i32(a, b, m)         — lanes with m set take b
///   mullo_i32                   — low 32 bits of the lane product
///   i32_to_f64                  — exact, bit-identical to static_cast
///   f64_to_i32_trunc            — truncate toward zero; defined for
///                                 |d| < 2^31 (guarded by the callers)
///   castf_i32                   — narrow an F compare mask to I32 lanes
///
/// Bit-identity design (kernels.h): the evidence histogram is integer
/// accumulation over element-wise math, so lanes can be computed in any
/// order; the convolutions vectorize across OUTPUT slots, each lane
/// accumulating its own sum in the exact ascending-j scalar order. No
/// trait op may contract mul+add into an FMA (the TUs are compiled
/// without FMA code generation, and the wrappers emit explicit mul/add
/// intrinsics which compilers do not fuse).

#include <cstddef>
#include <cstdint>

#include "simd/kernels_internal.h"

namespace ftl::simd::internal {

template <typename T>
int64_t EvidenceHistogramVec(const int64_t* pt, const double* px,
                             const double* py, size_t np, const int64_t* qt,
                             const double* qx, const double* qy, size_t nq,
                             const EvidenceParams& params, int32_t* cnt,
                             int32_t* inc, EvidenceScratch* scratch) {
  if (!VectorEvidenceSupported(params, scratch)) {
    return EvidenceHistogramScalar(pt, px, py, np, qt, qx, qy, nq, params,
                                   cnt, inc, scratch);
  }
  if (np == 0 || nq == 0) return 0;  // no alternations, nothing to count
  // int32 staging guard: every segment's dt is at most the combined
  // time span, and the bucket math needs x = dt + tu/2 (and the fixup
  // remainder arithmetic around it) to stay clear of int32 overflow.
  // Realistic data is decades below the 2^31-second span; the rare
  // violator takes the scalar kernel.
  {
    const int64_t lo = pt[0] < qt[0] ? pt[0] : qt[0];
    const int64_t hi = pt[np - 1] > qt[nq - 1] ? pt[np - 1] : qt[nq - 1];
    const uint64_t span =
        static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
    if (params.time_unit_seconds > (int64_t{1} << 29) ||
        span > static_cast<uint64_t>(INT32_MAX) -
                   static_cast<uint64_t>(params.time_unit_seconds / 2) - 1) {
      return EvidenceHistogramScalar(pt, px, py, np, qt, qx, qy, nq, params,
                                     cnt, inc, scratch);
    }
  }
  constexpr size_t W = T::kLanes;
  using F = typename T::F;
  using I = typename T::I;
  using I32 = typename T::I32;
  constexpr int kFullMask = (1 << W) - 1;

  // Phase A: walk the merge and stage each mutual segment's deltas
  // (dt = later - earlier timestamp, so non-negative; dx/dy signed)
  // into contiguous scratch columns. The walk visits exactly the
  // states of the scalar reference loop, but the two data-dependent
  // scans — skipping a run of P records at or before q[j], and
  // skipping Q records strictly before p[i] — gallop W timestamps per
  // vector compare once a scalar probe shows the run extends, so
  // barely-overlapping pairs (the common case under a full-database
  // query) cost ~(np + nq) / W compares while densely interleaved
  // pairs (runs of length 1) pay only the probe. Emission happens only
  // at run boundaries: at most 2 per consumed Q record, plus one tail
  // segment.
  const size_t max_segments = 2 * nq + 1;
  if (scratch->dt.size() < max_segments) {
    scratch->dt.resize(max_segments);
    scratch->dx.resize(max_segments);
    scratch->dy.resize(max_segments);
  }
  int32_t* sdt = scratch->dt.data();
  double* sdx = scratch->dx.data();
  double* sdy = scratch->dy.data();
  size_t ns = 0;
  {
    size_t i = 0, j = 0;
    while (j < nq && i < np) {
      if (pt[i] > qt[j]) {
        // No P record enters the merge at or before q[j]; the scalar
        // loop does nothing for such j. Skip the whole run of Q
        // records strictly before p[i] (timestamps are sorted, so the
        // run is a prefix of the remainder).
        ++j;
        // Probe a few records scalar before committing to the vector
        // gallop: realistic merges mix run lengths of 1-4, where the
        // splat + compare + movemask round trip costs more than the
        // well-predicted scalar steps it replaces. Only runs that
        // survive three probes — the sparse-overlap regime the gallop
        // exists for — pay the vector setup.
        if (j < nq && pt[i] > qt[j]) ++j;
        if (j < nq && pt[i] > qt[j]) ++j;
        if (j < nq && pt[i] > qt[j]) {
          ++j;
          const I tiv = T::set1_i64(pt[i]);
          for (;;) {
            if (j + W <= nq) {
              int lt =
                  T::movemask_i64(T::cmpgt_i64(tiv, T::loadu_i64(qt + j)));
              if (lt == kFullMask) {
                j += W;
                continue;
              }
              j += static_cast<size_t>(
                  __builtin_ctz(static_cast<unsigned>(~lt & kFullMask)));
              break;
            }
            while (j < nq && pt[i] > qt[j]) ++j;
            break;
          }
        }
        if (j >= nq) break;
      }
      // pt[i] <= qt[j]: a run of P records enters before q[j]. Its
      // first record closes a Q->P alternation (except before the
      // first Q record); its last record opens the P->Q alternation
      // closed by q[j].
      const int64_t tj = qt[j];
      if (j > 0) {
        sdt[ns] = static_cast<int32_t>(pt[i] - qt[j - 1]);
        sdx[ns] = px[i] - qx[j - 1];
        sdy[ns] = py[i] - qy[j - 1];
        ++ns;
      }
      // Advance i to the last P record at or before tj, with the same
      // probe-then-gallop structure as the Q skip above.
      if (i + 1 < np && pt[i + 1] <= tj) {
        ++i;
        if (i + 1 < np && pt[i + 1] <= tj) ++i;
        if (i + 1 < np && pt[i + 1] <= tj) ++i;
        if (i + 1 < np && pt[i + 1] <= tj) {
          ++i;
          const I tjv = T::set1_i64(tj);
          for (;;) {
            if (i + 1 + W <= np) {
              int gt = T::movemask_i64(T::cmpgt_i64(T::loadu_i64(pt + i + 1),
                                                    tjv));
              if (gt == 0) {
                i += W;
                continue;
              }
              i += static_cast<size_t>(
                  __builtin_ctz(static_cast<unsigned>(gt)));
              break;
            }
            while (i + 1 < np && pt[i + 1] <= tj) ++i;
            break;
          }
        }
      }
      sdt[ns] = static_cast<int32_t>(tj - pt[i]);
      sdx[ns] = qx[j] - px[i];
      sdy[ns] = qy[j] - py[i];
      ++ns;
      ++i;
      ++j;
    }
    if (i < np) {
      sdt[ns] = static_cast<int32_t>(pt[i] - qt[nq - 1]);
      sdx[ns] = px[i] - qx[nq - 1];
      sdy[ns] = py[i] - qy[nq - 1];
      ++ns;
    }
  }

  // Phase B: W segments per iteration, straight-line math over the
  // staged columns (sequential loads, no gathers). All integer work
  // runs on native int32 lanes under the span guard above.
  const EvidenceConsts c = MakeEvidenceConsts(params);
  const F vmaxv = T::set1_f64(c.vmax);
  const F inv_tuv = T::set1_f64(c.inv_tu);
  // Lanes whose (dt + half) * inv_tu lands at or past horizon + 2 are
  // clamped straight into the overflow slot: the reciprocal multiply is
  // within 1 unit of the exact quotient, so such lanes' true unit is
  // > horizon, and the int32 truncation window is never exceeded for
  // the lanes that do get truncated (x < 2^31 and tu >= 1 bound the
  // quotient; horizon itself is guarded to 2^30).
  const F bigv = T::set1_f64(static_cast<double>(c.horizon) + 2.0);
  const I32 halfv = T::set1_i32(static_cast<int32_t>(c.half));
  const I32 tuv = T::set1_i32(static_cast<int32_t>(c.tu));
  const I32 tum1v = T::set1_i32(static_cast<int32_t>(c.tu - 1));
  const I32 horizonv = T::set1_i32(static_cast<int32_t>(c.horizon));
  const I32 zerov = T::set1_i32(0);
  alignas(32) int32_t ubuf[W];
  size_t s = 0;
  for (; s + W <= ns; s += W) {
    I32 dt = T::loadu_i32(sdt + s);
    F dx = T::loadu_f64(sdx + s);
    F dy = T::loadu_f64(sdy + s);
    F dtd = T::i32_to_f64(dt);
    F limit = T::mul_f64(vmaxv, dtd);
    F lhs = T::add_f64(T::mul_f64(dx, dx), T::mul_f64(dy, dy));
    int incmask = T::movemask_f64(
        T::cmpgt_f64(lhs, T::mul_f64(limit, limit)));
    I32 x = T::add_i32(dt, halfv);
    F dq = T::mul_f64(T::i32_to_f64(x), inv_tuv);
    I32 unit = T::f64_to_i32_trunc(dq);
    I32 r = T::sub_i32(x, T::mullo_i32(unit, tuv));
    // unit += (r >= tu) - (r < 0): masks are -1, so subtract/add them.
    unit = T::sub_i32(unit, T::cmpgt_i32(r, tum1v));
    unit = T::add_i32(unit, T::cmpgt_i32(zerov, r));
    I32 clampm = T::cmpgt_i32(unit, horizonv);
    // Far-beyond-horizon lanes (quotient at or past horizon + 2) sit
    // outside the int32 truncation window the fixup math assumes, so
    // their `unit` lanes are garbage — but such lanes' true unit is
    // provably > horizon, and the horizon compare may still miss them
    // (garbage can be negative). Checking the f64 compare's movemask
    // keeps the common all-in-window iteration free of the mask-narrow
    // shuffle and extra blend; segments never exceed the staged span,
    // so the branch is essentially never taken and predicts perfectly.
    int bigmask = T::movemask_f64(T::cmpge_f64(dq, bigv));
    if (bigmask != 0) {
      clampm = T::or_i32(clampm, T::castf_i32(T::cmpge_f64(dq, bigv)));
    }
    unit = T::blendv_i32(unit, horizonv, clampm);
    // Consecutive segments overwhelmingly land in the same bucket
    // (inter-record gaps cluster well under one time unit), which makes
    // the naive per-lane scatter a serial chain of load-add-store
    // updates to one slot. When all lanes agree — the common case —
    // fold the whole vector into a single update per array. The
    // agreement test stays in vector registers: bouncing `unit`
    // through memory for scalar compares would stall on
    // store-to-load forwarding every iteration.
    const int eq = T::movemask_i32(
        T::cmpeq_i32(unit, T::broadcast0_i32(unit)));
    if ((eq & kFullMask) == kFullMask) {
      size_t u = static_cast<size_t>(
          static_cast<uint32_t>(T::extract0_i32(unit)));
      cnt[u] += static_cast<int32_t>(W);
      inc[u] += __builtin_popcount(static_cast<unsigned>(incmask));
    } else {
      T::storeu_i32(ubuf, unit);
      for (size_t l = 0; l < W; ++l) {
        size_t u = static_cast<size_t>(static_cast<uint32_t>(ubuf[l]));
        ++cnt[u];
        inc[u] += (incmask >> l) & 1;
      }
    }
  }
  for (; s < ns; ++s) {
    SegmentUpdate(c, sdt[s], sdx[s], sdy[s], cnt, inc);
  }
  return static_cast<int64_t>(ns);
}

template <typename T>
void ConvolvePrefixVec(double* f, size_t new_len, const double* b, size_t m) {
  constexpr size_t W = T::kLanes;
  using F = typename T::F;
  // Vector blocks cover outputs [t-W, t-1], highest first; a block is
  // eligible when its lowest output t-W has the full kernel in range
  // (t-W >= m), so every lane sums the same j = 0..m. In-place safety:
  // a block reads f[t-W-m .. t-1], all below or inside itself, and
  // blocks descend, so every read still sees pre-round values — the
  // same old-value reads as the scalar backward loop.
  size_t t = new_len;
  while (t >= W && t - W >= m) {
    double* base = f + (t - W);
    F acc = T::set1_f64(0.0);
    for (size_t j = 0; j <= m; ++j) {
      acc = T::add_f64(acc, T::mul_f64(T::loadu_f64(base - j),
                                       T::set1_f64(b[j])));
    }
    T::storeu_f64(base, acc);
    t -= W;
  }
  for (size_t tt = t; tt-- > 0;) {
    size_t jmax = tt < m ? tt : m;
    double acc = 0.0;
    for (size_t j = 0; j <= jmax; ++j) acc += f[tt - j] * b[j];
    f[tt] = acc;
  }
}

template <typename T>
void BernoulliStepVec(double* f, size_t new_len, double p, double q) {
  constexpr size_t W = T::kLanes;
  using F = typename T::F;
  const F pv = T::set1_f64(p);
  const F qv = T::set1_f64(q);
  // Outputs [t-W, t-1], all >= 1; reads f[t-W-1 .. t-1] are below or
  // inside the block, untouched by the (higher) blocks already done.
  size_t t = new_len;
  while (t >= W + 1) {
    double* base = f + (t - W);
    F cur = T::loadu_f64(base);
    F below = T::loadu_f64(base - 1);
    T::storeu_f64(base, T::add_f64(T::mul_f64(cur, qv), T::mul_f64(below, pv)));
    t -= W;
  }
  for (size_t tt = t; tt-- > 1;) f[tt] = f[tt] * q + f[tt - 1] * p;
  f[0] *= q;
}

}  // namespace ftl::simd::internal

#endif  // FTL_SIMD_KERNELS_VEC_IMPL_H_
