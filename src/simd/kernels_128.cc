/// \file kernels_128.cc
/// 128-bit kernel instantiations: SSE2 on x86-64, NEON on aarch64.
/// Both ISAs are baseline for their platform, so this TU needs no
/// special compile flags and no runtime feature gate.

#include "simd/kernels_internal.h"

#if defined(FTL_SIMD_HAVE_128)

#if defined(__aarch64__)
#include "simd/vec_neon.h"
#else
#include "simd/vec_sse2.h"
#endif

#include "simd/kernels_vec_impl.h"

namespace ftl::simd::internal {

namespace {
#if defined(__aarch64__)
using Traits = NeonTraits;
constexpr const char* kName = "neon";
#else
using Traits = Sse2Traits;
constexpr const char* kName = "sse2";
#endif
}  // namespace

const Kernels* Get128Kernels() {
  static const Kernels k = {IsaLevel::kSimd128, kName,
                            &EvidenceHistogramVec<Traits>,
                            &ConvolvePrefixVec<Traits>,
                            &BernoulliStepVec<Traits>};
  return &k;
}

}  // namespace ftl::simd::internal

#endif  // FTL_SIMD_HAVE_128
