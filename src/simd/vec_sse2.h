#ifndef FTL_SIMD_VEC_SSE2_H_
#define FTL_SIMD_VEC_SSE2_H_

/// \file vec_sse2.h
/// 128-bit x86-64 trait for kernels_vec_impl.h, restricted to the
/// SSE2 baseline (guaranteed on every x86-64 CPU, so the 128-bit table
/// needs no runtime feature check). The signed 64-bit compare of the
/// merge gallop is emulated; the bucket math runs on int32 lanes
/// (kernels_vec_impl.h guards the value range), where SSE2 is native
/// except for the low-multiply, assembled from pmuludq.

#include <cstdint>
#include <emmintrin.h>

namespace ftl::simd::internal {

struct Sse2Traits {
  static constexpr size_t kLanes = 2;
  using F = __m128d;
  using I = __m128i;    ///< kLanes x int64 (timestamp gallop)
  using I32 = __m128i;  ///< kLanes x int32 in the low half (bucket math)

  static F loadu_f64(const double* p) { return _mm_loadu_pd(p); }
  static void storeu_f64(double* p, F v) { _mm_storeu_pd(p, v); }
  static I loadu_i64(const int64_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static F set1_f64(double v) { return _mm_set1_pd(v); }
  static I set1_i64(int64_t v) { return _mm_set1_epi64x(v); }

  static F add_f64(F a, F b) { return _mm_add_pd(a, b); }
  static F sub_f64(F a, F b) { return _mm_sub_pd(a, b); }
  static F mul_f64(F a, F b) { return _mm_mul_pd(a, b); }

  /// SSE2 quiet ordered compares: cmpgt/cmpge are false on NaN, the
  /// same outcome as the scalar `>` the kernels mirror.
  static F cmpgt_f64(F a, F b) { return _mm_cmpgt_pd(a, b); }
  static F cmpge_f64(F a, F b) { return _mm_cmpge_pd(a, b); }

  /// Signed 64-bit a > b without SSE4.2's pcmpgtq:
  /// a > b  <=>  a_hi > b_hi  ||  (a_hi == b_hi && a_lo >u b_lo),
  /// assembled from 32-bit compares (the unsigned low compare biases
  /// both operands by 2^31), then the high dword's verdict is smeared
  /// across its 64-bit lane.
  static I cmpgt_i64(I a, I b) {
    const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
    __m128i hi_gt = _mm_cmpgt_epi32(a, b);
    __m128i eq = _mm_cmpeq_epi32(a, b);
    __m128i lo_gt =
        _mm_cmpgt_epi32(_mm_xor_si128(a, bias), _mm_xor_si128(b, bias));
    // Move each lane's low-dword verdict into its high-dword position.
    __m128i lo_gt_hi = _mm_shuffle_epi32(lo_gt, _MM_SHUFFLE(2, 2, 0, 0));
    __m128i r = _mm_or_si128(hi_gt, _mm_and_si128(eq, lo_gt_hi));
    // Smear the high dword's sign across the lane.
    return _mm_shuffle_epi32(_mm_srai_epi32(r, 31), _MM_SHUFFLE(3, 3, 1, 1));
  }

  static int movemask_f64(F m) { return _mm_movemask_pd(m); }
  static int movemask_i64(I m) {
    return _mm_movemask_pd(_mm_castsi128_pd(m));
  }

  // ------------------------------------------------ int32 lane ops
  static I32 loadu_i32(const int32_t* p) {
    return _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  }
  static void storeu_i32(int32_t* p, I32 v) {
    _mm_storel_epi64(reinterpret_cast<__m128i*>(p), v);
  }
  static I32 set1_i32(int32_t v) { return _mm_set1_epi32(v); }
  static I32 add_i32(I32 a, I32 b) { return _mm_add_epi32(a, b); }
  static I32 sub_i32(I32 a, I32 b) { return _mm_sub_epi32(a, b); }
  static I32 cmpgt_i32(I32 a, I32 b) { return _mm_cmpgt_epi32(a, b); }
  static I32 cmpeq_i32(I32 a, I32 b) { return _mm_cmpeq_epi32(a, b); }
  static I32 or_i32(I32 a, I32 b) { return _mm_or_si128(a, b); }
  static I32 broadcast0_i32(I32 v) {
    return _mm_shuffle_epi32(v, _MM_SHUFFLE(0, 0, 0, 0));
  }
  static int32_t extract0_i32(I32 v) { return _mm_cvtsi128_si32(v); }
  /// Lane sign bits of the kLanes int32 lanes (upper dwords of the
  /// register are unused here and their bits must be masked by the
  /// caller via kFullMask).
  static int movemask_i32(I32 m) {
    return _mm_movemask_ps(_mm_castsi128_ps(m));
  }
  static I32 blendv_i32(I32 a, I32 b, I32 m) {
    return _mm_or_si128(_mm_andnot_si128(m, a), _mm_and_si128(m, b));
  }

  /// Elementwise low 32 bits of the product (no pmulld before SSE4.1):
  /// spread both operands' lanes to the even dword positions pmuludq
  /// reads, multiply, and compress the 64-bit products' low dwords
  /// back. Low 32 bits are sign-agnostic.
  static I32 mullo_i32(I32 a, I32 b) {
    __m128i av = _mm_shuffle_epi32(a, _MM_SHUFFLE(1, 1, 0, 0));
    __m128i bv = _mm_shuffle_epi32(b, _MM_SHUFFLE(1, 1, 0, 0));
    __m128i p = _mm_mul_epu32(av, bv);
    return _mm_shuffle_epi32(p, _MM_SHUFFLE(3, 3, 2, 0));
  }

  /// Exact int32 -> double (every int32 is representable).
  static F i32_to_f64(I32 v) { return _mm_cvtepi32_pd(v); }

  /// Truncate toward zero into int32 lanes; defined for |d| < 2^31
  /// (guarded by the caller), out-of-range lanes produce the sentinel
  /// 0x80000000 and must be blended away.
  static I32 f64_to_i32_trunc(F d) { return _mm_cvttpd_epi32(d); }

  /// Narrows a f64 compare mask to int32 lanes (dwords 0 and 2 of the
  /// 64-bit lane masks are already all-ones / all-zeros).
  static I32 castf_i32(F m) {
    return _mm_shuffle_epi32(_mm_castpd_si128(m), _MM_SHUFFLE(3, 3, 2, 0));
  }
};

}  // namespace ftl::simd::internal

#endif  // FTL_SIMD_VEC_SSE2_H_
