#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

namespace ftl::obs {

double Histogram::Mean() const {
  int64_t n = Count();
  return n > 0 ? static_cast<double>(Sum()) / static_cast<double>(n) : 0.0;
}

int64_t Histogram::BucketUpperBound(size_t b) {
  if (b == 0) return 0;
  if (b >= 63) return INT64_MAX;
  return (static_cast<int64_t>(1) << b) - 1;
}

double Histogram::Quantile(double q) const {
  q = std::min(1.0, std::max(0.0, q));
  // Snapshot the buckets once; concurrent writers can skew a live
  // two-pass read, and exporters want one consistent-enough view.
  std::array<int64_t, kBuckets> snap;
  int64_t total = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    snap[b] = buckets_[b].load(std::memory_order_relaxed);
    total += snap[b];
  }
  if (total == 0) return 0.0;
  double rank = q * static_cast<double>(total - 1);
  int64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    if (snap[b] == 0) continue;
    if (rank < static_cast<double>(seen + snap[b])) {
      // Linear interpolation across the bucket's value range by the
      // fractional position of `rank` among its samples.
      double lo = b == 0 ? 0.0
                         : static_cast<double>(static_cast<int64_t>(1)
                                               << (b - 1));
      double hi = b == 0 ? 0.0 : lo * 2.0;
      double frac = (rank - static_cast<double>(seen)) /
                    static_cast<double>(snap[b]);
      return lo + (hi - lo) * frac;
    }
    seen += snap[b];
  }
  // Numeric edge (rank == total - 1 with rounding): top occupied bucket.
  for (size_t b = kBuckets; b-- > 0;) {
    if (snap[b] != 0) {
      return static_cast<double>(BucketUpperBound(b));
    }
  }
  return 0.0;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

namespace {

/// Splits `name` into the metric name proper and an optional
/// `{label="value",...}` suffix so exporters can splice in their own
/// labels (histogram `le`) and type lines can use the bare name.
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  *labels = name.substr(brace);  // includes the braces
}

/// `base{existing,extra}` — merges an extra label into a (possibly
/// empty) label set.
std::string WithExtraLabel(const std::string& base, const std::string& labels,
                           const std::string& extra) {
  if (labels.empty()) return base + "{" + extra + "}";
  // labels == "{...}"; splice before the closing brace.
  return base + labels.substr(0, labels.size() - 1) + "," + extra + "}";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string FormatNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  // std::map: deterministic (sorted) export order. unique_ptr values:
  // handles stay stable across inserts. Entries are never erased.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* impl = new Impl();  // leaked: usable during shutdown
  return *impl;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::DumpPrometheus() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::string out;
  // One TYPE line per metric family: labeled variants of the same base
  // name sort adjacently in the map, so tracking the previous base is
  // enough to emit it exactly once.
  std::string prev_base;
  for (const auto& [name, c] : im.counters) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    if (base != prev_base) {
      out += "# TYPE " + base + " counter\n";
      prev_base = base;
    }
    out += name + " " + std::to_string(c->Value()) + "\n";
  }
  prev_base.clear();
  for (const auto& [name, g] : im.gauges) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    if (base != prev_base) {
      out += "# TYPE " + base + " gauge\n";
      prev_base = base;
    }
    out += name + " " + std::to_string(g->Value()) + "\n";
  }
  prev_base.clear();
  for (const auto& [name, h] : im.histograms) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    if (base != prev_base) {
      out += "# TYPE " + base + " histogram\n";
      prev_base = base;
    }
    int64_t cumulative = 0;
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      int64_t n = h->BucketCount(b);
      if (n == 0) continue;  // sparse exposition: skip empty buckets
      cumulative += n;
      out += WithExtraLabel(
                 base + "_bucket", labels,
                 "le=\"" +
                     std::to_string(Histogram::BucketUpperBound(b)) +
                     "\"") +
             " " + std::to_string(cumulative) + "\n";
    }
    out += WithExtraLabel(base + "_bucket", labels, "le=\"+Inf\"") + " " +
           std::to_string(h->Count()) + "\n";
    out += base + "_sum" + labels + " " + std::to_string(h->Sum()) + "\n";
    out += base + "_count" + labels + " " + std::to_string(h->Count()) +
           "\n";
  }
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : im.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) +
           "\": " + std::to_string(c->Value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : im.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) +
           "\": " + std::to_string(g->Value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : im.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) + "\": {\"count\": " +
           std::to_string(h->Count()) + ", \"sum\": " +
           std::to_string(h->Sum()) + ", \"mean\": " +
           FormatNumber(h->Mean()) + ", \"p50\": " +
           FormatNumber(h->Quantile(0.50)) + ", \"p90\": " +
           FormatNumber(h->Quantile(0.90)) + ", \"p99\": " +
           FormatNumber(h->Quantile(0.99)) + "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void MetricsRegistry::ResetAllForTest() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (auto& [name, c] : im.counters) c->Reset();
  for (auto& [name, g] : im.gauges) g->Reset();
  for (auto& [name, h] : im.histograms) h->Reset();
}

std::string DumpPrometheus() {
  return MetricsRegistry::Global().DumpPrometheus();
}

std::string DumpJson() { return MetricsRegistry::Global().DumpJson(); }

}  // namespace ftl::obs
