#ifndef FTL_OBS_METRICS_H_
#define FTL_OBS_METRICS_H_

/// \file metrics.h
/// Low-overhead process-wide metrics: counters, gauges, and latency
/// histograms behind a named registry, with Prometheus-text and JSON
/// exporters.
///
/// Design discipline (mirrors the failpoint idle-cost rule):
///  * the hot path pays one relaxed atomic add per event — no locks,
///    no strings, no clock reads;
///  * names are resolved ONCE at setup into stable handles
///    (`MetricsRegistry::Global().GetCounter("...")`); per-event code
///    never touches the registry;
///  * handles are never invalidated: the registry only ever adds
///    entries, and `ResetAllForTest` zeroes values without removing
///    them, so a handle cached in a function-local static stays valid
///    for the process lifetime.
///
/// Naming scheme (see DESIGN.md §8): `ftl_<layer>_<what>[_<unit>]`,
/// with `_total` for monotonic counters and an explicit unit suffix
/// (`_ns`, `_us`) for histograms. A name may carry a Prometheus label
/// set verbatim, e.g. `ftl_failpoint_trips_total{site="core.train"}`;
/// the registry treats the full string as the key and the exporters
/// pass it through (the text exposition format allows exactly this).

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace ftl::obs {

/// Monotonic counter, sharded across cache lines so concurrent writers
/// (e.g. the per-worker tally flushes of a parallel query) do not
/// contend. `Add` is one relaxed atomic add; `Value` sums the shards
/// (reads are rare: exporters and tests only).
class Counter {
 public:
  static constexpr size_t kShards = 16;  // power of two

  void Add(int64_t n = 1) {
    shards_[ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }

  int64_t Value() const {
    int64_t sum = 0;
    for (const Shard& s : shards_) {
      sum += s.v.load(std::memory_order_relaxed);
    }
    return sum;
  }

  /// Zeroes every shard (test support; not atomic across shards).
  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> v{0};
  };

  /// Stable per-thread shard assignment: threads round-robin over the
  /// shards at first use, so any fixed worker set spreads evenly.
  static size_t ShardIndex() {
    static std::atomic<size_t> next{0};
    thread_local const size_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id & (kShards - 1);
  }

  std::array<Shard, kShards> shards_;
};

/// Point-in-time value (queue depth, active workers). Single relaxed
/// atomic; gauges are low-frequency by construction.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n = 1) { v_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed-bucket log2 histogram of non-negative integer samples
/// (durations in ns/us, sizes, counts). Bucket b holds samples in
/// [2^(b-1), 2^b); bucket 0 holds zeros. 64 buckets cover all of
/// int64, so `Record` never branches on range: one bit-scan plus one
/// relaxed add (plus count/sum bookkeeping), lock free.
///
/// Quantile readout interpolates linearly inside the selected bucket —
/// exact to within a factor-2 bucket width, which is what a log-scale
/// latency histogram promises.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(int64_t value) {
    if (value < 0) value = 0;
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Mean sample (0 when empty).
  double Mean() const;

  /// Interpolated q-quantile (q clamped to [0, 1]; 0 when empty).
  double Quantile(double q) const;

  /// Bucket count at index b (exporters).
  int64_t BucketCount(size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Inclusive upper bound of bucket b (2^b - 1; 0 for b = 0).
  static int64_t BucketUpperBound(size_t b);

  void Reset();

 private:
  static size_t BucketOf(int64_t value) {
    // floor(log2(value)) + 1 for value >= 1; 0 for value == 0.
    size_t bits = 0;
    uint64_t v = static_cast<uint64_t>(value);
    while (v != 0) {
      ++bits;
      v >>= 1;
    }
    return bits;
  }

  std::array<std::atomic<int64_t>, kBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// Process-wide registry of named metrics. Lookups take a mutex and
/// are meant for setup only; the returned references are stable for
/// the process lifetime (entries are never removed). A given name must
/// always be used with the same metric kind.
class MetricsRegistry {
 public:
  /// The process-wide instance (leaked; usable during shutdown).
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Prometheus text exposition: counters and gauges as single
  /// samples, histograms as cumulative `_bucket{le=...}` series plus
  /// `_sum` / `_count`. Series are emitted in name order.
  std::string DumpPrometheus() const;

  /// JSON object {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {count, sum, mean, p50, p90, p99}}}. Keys in name order.
  std::string DumpJson() const;

  /// Zeroes every registered metric without invalidating handles.
  void ResetAllForTest();

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Convenience dumps of the global registry.
std::string DumpPrometheus();
std::string DumpJson();

}  // namespace ftl::obs

#endif  // FTL_OBS_METRICS_H_
