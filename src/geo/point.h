#ifndef FTL_GEO_POINT_H_
#define FTL_GEO_POINT_H_

/// \file point.h
/// Planar geometry primitives.
///
/// All internal computation uses a local planar frame in meters. Real
/// lat/lon data is projected into this frame on ingest (see projection.h);
/// the simulators generate planar coordinates directly.

#include <cmath>

namespace ftl::geo {

/// A point in the local planar frame, meters.
struct Point {
  double x = 0.0;  ///< East offset, meters.
  double y = 0.0;  ///< North offset, meters.

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Euclidean distance between two planar points, meters.
inline double Distance(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Squared Euclidean distance (cheap pre-filter).
inline double DistanceSquared(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// L1 (Manhattan) distance — a better proxy for on-road travel length in
/// grid-like cities; used by the mobility simulator.
inline double ManhattanDistance(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Linear interpolation from `a` to `b` at fraction `t` in [0,1].
inline Point Lerp(const Point& a, const Point& b, double t) {
  return Point{a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

/// Axis-aligned bounding box in the planar frame.
struct BoundingBox {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  /// Width (east-west extent), meters.
  double Width() const { return max_x - min_x; }
  /// Height (north-south extent), meters.
  double Height() const { return max_y - min_y; }
  /// True iff `p` lies inside (inclusive).
  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }
  /// Clamps `p` into the box.
  Point Clamp(const Point& p) const {
    Point q = p;
    if (q.x < min_x) q.x = min_x;
    if (q.x > max_x) q.x = max_x;
    if (q.y < min_y) q.y = min_y;
    if (q.y > max_y) q.y = max_y;
    return q;
  }
  /// Diagonal length, meters.
  double Diagonal() const {
    double w = Width(), h = Height();
    return std::sqrt(w * w + h * h);
  }
};

/// Converts kilometers-per-hour to meters-per-second.
constexpr double KphToMps(double kph) { return kph * (1000.0 / 3600.0); }

/// Converts meters-per-second to kilometers-per-hour.
constexpr double MpsToKph(double mps) { return mps * 3.6; }

}  // namespace ftl::geo

#endif  // FTL_GEO_POINT_H_
