#ifndef FTL_GEO_PROJECTION_H_
#define FTL_GEO_PROJECTION_H_

/// \file projection.h
/// Geodetic distance and a local planar projection.
///
/// Real datasets (e.g. T-Drive) store WGS-84 lat/lon. FTL needs only
/// *distances* between nearby points inside one metropolitan area, so an
/// equirectangular projection anchored at a reference point is accurate to
/// well under the GPS noise floor at city scale.

#include "geo/point.h"

namespace ftl::geo {

/// A WGS-84 coordinate in degrees.
struct LatLon {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

/// Mean Earth radius, meters (IUGG).
inline constexpr double kEarthRadiusMeters = 6371008.8;

/// Great-circle (haversine) distance between two coordinates, meters.
double HaversineDistance(const LatLon& a, const LatLon& b);

/// Equirectangular projection anchored at a reference coordinate.
///
/// Maps lat/lon to meters east/north of the anchor. Exact along the
/// anchor's parallel; error grows quadratically with distance but stays
/// below ~0.1% across a 100 km city.
class LocalProjection {
 public:
  /// Creates a projection anchored at `origin`.
  explicit LocalProjection(const LatLon& origin);

  /// Projects a coordinate into the planar frame.
  Point Forward(const LatLon& ll) const;

  /// Inverse projection back to lat/lon.
  LatLon Backward(const Point& p) const;

  /// The anchor coordinate.
  const LatLon& origin() const { return origin_; }

 private:
  LatLon origin_;
  double cos_lat0_;
};

}  // namespace ftl::geo

#endif  // FTL_GEO_PROJECTION_H_
