#include "geo/projection.h"

#include <cmath>

namespace ftl::geo {

namespace {
constexpr double kDegToRad = M_PI / 180.0;
}  // namespace

double HaversineDistance(const LatLon& a, const LatLon& b) {
  double lat1 = a.lat_deg * kDegToRad;
  double lat2 = b.lat_deg * kDegToRad;
  double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  double s1 = std::sin(dlat / 2);
  double s2 = std::sin(dlon / 2);
  double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  h = std::min(1.0, h);
  return 2.0 * kEarthRadiusMeters * std::asin(std::sqrt(h));
}

LocalProjection::LocalProjection(const LatLon& origin)
    : origin_(origin), cos_lat0_(std::cos(origin.lat_deg * kDegToRad)) {}

Point LocalProjection::Forward(const LatLon& ll) const {
  double dx =
      (ll.lon_deg - origin_.lon_deg) * kDegToRad * cos_lat0_ *
      kEarthRadiusMeters;
  double dy = (ll.lat_deg - origin_.lat_deg) * kDegToRad * kEarthRadiusMeters;
  return Point{dx, dy};
}

LatLon LocalProjection::Backward(const Point& p) const {
  LatLon ll;
  ll.lat_deg = origin_.lat_deg + p.y / kEarthRadiusMeters / kDegToRad;
  ll.lon_deg =
      origin_.lon_deg + p.x / (kEarthRadiusMeters * cos_lat0_) / kDegToRad;
  return ll;
}

}  // namespace ftl::geo
