#include "serve/http.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "util/string_util.h"

namespace ftl::serve {

namespace {

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

std::string TrimWs(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

/// Parses the header block `head` (request line / status line excluded)
/// into lower-cased name/value pairs.
Status ParseHeaderLines(const std::string& head, size_t start,
                        std::vector<std::pair<std::string, std::string>>* out) {
  size_t pos = start;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) break;
    size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("malformed header line");
    }
    out->emplace_back(ToLower(TrimWs(line.substr(0, colon))),
                      TrimWs(line.substr(colon + 1)));
  }
  return Status::OK();
}

/// Reads from `fd` until the CRLFCRLF head terminator, then exactly
/// Content-Length body bytes. Shared by the server (requests) and the
/// loopback client (responses): both sides use identical framing.
Status ReadHead(int fd, size_t max_head_bytes, std::string* buf,
                size_t* head_end) {
  char chunk[4096];
  while (true) {
    size_t scan_from = buf->size() >= 3 ? buf->size() - 3 : 0;
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::IOError(buf->empty() ? "connection closed before request"
                                          : "connection closed mid-head");
    }
    buf->append(chunk, static_cast<size_t>(n));
    size_t found = buf->find("\r\n\r\n", scan_from);
    if (found != std::string::npos) {
      *head_end = found + 4;
      return Status::OK();
    }
    if (buf->size() > max_head_bytes) {
      return Status::OutOfRange("request head exceeds " +
                                std::to_string(max_head_bytes) + " bytes");
    }
  }
}

Status ReadBody(int fd, size_t content_length, size_t max_body_bytes,
                std::string* buf, size_t body_start) {
  if (content_length > max_body_bytes) {
    return Status::OutOfRange("body of " + std::to_string(content_length) +
                              " bytes exceeds limit of " +
                              std::to_string(max_body_bytes));
  }
  size_t have = buf->size() - body_start;
  char chunk[4096];
  while (have < content_length) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) return Status::IOError("connection closed mid-body");
    buf->append(chunk, static_cast<size_t>(n));
    have += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> ParseContentLength(
    const std::vector<std::pair<std::string, std::string>>& headers) {
  for (const auto& [name, value] : headers) {
    if (name != "content-length") continue;
    int64_t len = 0;
    if (!ParseInt64(value, &len) || len < 0) {
      return Status::InvalidArgument("bad Content-Length '" + value + "'");
    }
    return static_cast<size_t>(len);
  }
  return static_cast<size_t>(0);
}

}  // namespace

std::string HttpRequest::Header(const std::string& name) const {
  for (const auto& [n, v] : headers) {
    if (n == name) return v;
  }
  return "";
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 499:
      return "Client Closed Request";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

int HttpStatusForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kDeadlineExceeded:
      return 408;
    case StatusCode::kCancelled:
      return 499;
    case StatusCode::kFailedPrecondition:
    case StatusCode::kOutOfRange:
      return 503;
    case StatusCode::kIOError:
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

std::string SerializeResponse(const HttpResponse& resp) {
  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    HttpReasonPhrase(resp.status) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  for (const auto& [name, value] : resp.extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  out += resp.body;
  return out;
}

Result<HttpRequest> ReadHttpRequest(int fd, const HttpLimits& limits) {
  std::string buf;
  size_t head_end = 0;
  FTL_RETURN_NOT_OK(ReadHead(fd, limits.max_head_bytes, &buf, &head_end));

  size_t line_end = buf.find("\r\n");
  std::string request_line = buf.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    return Status::InvalidArgument("malformed request line '" + request_line +
                                   "'");
  }
  HttpRequest req;
  req.method = request_line.substr(0, sp1);
  req.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string version = request_line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Status::InvalidArgument("unsupported protocol '" + version + "'");
  }
  if (req.method.empty() || req.target.empty() || req.target[0] != '/') {
    return Status::InvalidArgument("malformed request line '" + request_line +
                                   "'");
  }
  FTL_RETURN_NOT_OK(ParseHeaderLines(buf, line_end + 2, &req.headers));

  auto content_length = ParseContentLength(req.headers);
  if (!content_length.ok()) return content_length.status();
  FTL_RETURN_NOT_OK(ReadBody(fd, content_length.value(),
                             limits.max_body_bytes, &buf, head_end));
  req.body = buf.substr(head_end, content_length.value());
  return req;
}

Status WriteFull(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<HttpResponse> HttpRequestOnce(const std::string& host, int port,
                                     const std::string& method,
                                     const std::string& target,
                                     const std::string& body,
                                     int64_t timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  struct FdCloser {
    int fd;
    ~FdCloser() { ::close(fd); }
  } closer{fd};

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address '" + host + "'");
  }

  // Non-blocking connect with a poll timeout, then back to blocking
  // with socket-level IO timeouts.
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      return Status::IOError(std::string("connect: ") + std::strerror(errno));
    }
    pollfd pfd{fd, POLLOUT, 0};
    int pr = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (pr <= 0) {
      return Status::IOError(pr == 0 ? "connect timed out"
                                     : std::string("poll: ") +
                                           std::strerror(errno));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      return Status::IOError(std::string("connect: ") + std::strerror(err));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string req = method + " " + target + " HTTP/1.1\r\n";
  req += "Host: " + host + ":" + std::to_string(port) + "\r\n";
  if (!body.empty() || method == "POST") {
    req += "Content-Type: application/json\r\n";
    req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  req += "Connection: close\r\n\r\n";
  req += body;
  FTL_RETURN_NOT_OK(WriteFull(fd, req));

  std::string buf;
  size_t head_end = 0;
  HttpLimits limits;
  limits.max_body_bytes = 64 * 1024 * 1024;  // trust our own server
  FTL_RETURN_NOT_OK(ReadHead(fd, limits.max_head_bytes, &buf, &head_end));

  size_t line_end = buf.find("\r\n");
  std::string status_line = buf.substr(0, line_end);
  size_t sp1 = status_line.find(' ');
  if (sp1 == std::string::npos || status_line.rfind("HTTP/", 0) != 0) {
    return Status::IOError("malformed status line '" + status_line + "'");
  }
  HttpResponse resp;
  int64_t code = 0;
  if (!ParseInt64(TrimWs(status_line.substr(sp1 + 1, 3)), &code)) {
    return Status::IOError("malformed status line '" + status_line + "'");
  }
  resp.status = static_cast<int>(code);

  std::vector<std::pair<std::string, std::string>> headers;
  FTL_RETURN_NOT_OK(ParseHeaderLines(buf, line_end + 2, &headers));
  for (const auto& [name, value] : headers) {
    if (name == "content-type") {
      resp.content_type = value;
    } else {
      resp.extra_headers.emplace_back(name, value);
    }
  }
  auto content_length = ParseContentLength(headers);
  if (!content_length.ok()) return content_length.status();
  FTL_RETURN_NOT_OK(ReadBody(fd, content_length.value(),
                             limits.max_body_bytes, &buf, head_end));
  resp.body = buf.substr(head_end, content_length.value());
  return resp;
}

}  // namespace ftl::serve
