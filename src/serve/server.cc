#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <csignal>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "io/json_parse.h"
#include "io/report_json.h"
#include "obs/metrics.h"
#include "store/store.h"
#include "util/deadline.h"

namespace ftl::serve {

namespace {

/// Metric label order; "other" collects unrouted paths, "admission"
/// collects 503s rejected before routing (queue full).
constexpr const char* kEndpointNames[] = {
    "/v1/query", "/v1/rank",        "/v1/ingest", "/metrics", "/healthz",
    "/readyz",   "/admin/shutdown", "other",      "admission"};
constexpr size_t kNumEndpoints = sizeof(kEndpointNames) / sizeof(char*);
constexpr size_t kEndpointOther = 7;
constexpr size_t kEndpointAdmission = 8;

/// Statuses with pre-resolved counters; anything else resolves through
/// the registry mutex on first sight (rare by construction).
constexpr int kCodes[] = {200, 400, 404, 405, 408, 413, 499, 500, 503};
constexpr size_t kNumCodes = sizeof(kCodes) / sizeof(int);

std::string RequestsCounterName(size_t endpoint_idx, int code) {
  return std::string("ftl_serve_requests_total{endpoint=\"") +
         kEndpointNames[endpoint_idx] + "\",code=\"" + std::to_string(code) +
         "\"}";
}

void SetSocketTimeouts(int fd, int64_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// JSON error payload: {"error":{"code":"NotFound","message":"..."}}.
/// The code string is the StatusCode name, so API clients and CLI
/// scripts branch on the same vocabulary (docs/API.md).
HttpResponse ErrorResponse(const Status& status) {
  io::JsonWriter w;
  w.BeginObject();
  w.Key("error");
  w.BeginObject();
  w.Key("code");
  w.Value(StatusCodeName(status.code()));
  w.Key("message");
  w.Value(status.message());
  w.EndObject();
  w.EndObject();
  HttpResponse resp;
  resp.status = HttpStatusForStatus(status);
  resp.body = w.str();
  return resp;
}

HttpResponse MethodNotAllowed(const std::string& allow) {
  HttpResponse resp = ErrorResponse(
      Status::InvalidArgument("method not allowed; use " + allow));
  resp.status = 405;
  resp.extra_headers.emplace_back("Allow", allow);
  return resp;
}

/// Reads the optional shared request fields ("matcher", "top",
/// "deadline_ms") of a /v1/query or /v1/rank body.
Status ParseCommonFields(const io::JsonValue& root,
                         core::Matcher default_matcher,
                         core::Matcher* matcher, int64_t* top,
                         int64_t* deadline_ms) {
  *matcher = default_matcher;
  if (const io::JsonValue* m = root.Find("matcher")) {
    if (!m->is_string()) {
      return Status::InvalidArgument("'matcher' must be a string");
    }
    if (m->AsString() == "nb") {
      *matcher = core::Matcher::kNaiveBayes;
    } else if (m->AsString() == "alpha") {
      *matcher = core::Matcher::kAlphaFilter;
    } else {
      return Status::InvalidArgument("'matcher' must be \"nb\" or \"alpha\"");
    }
  }
  if (const io::JsonValue* t = root.Find("top")) {
    auto v = t->AsInt64();
    if (!v.ok() || v.value() < 0) {
      return Status::InvalidArgument("'top' must be a non-negative integer");
    }
    *top = v.value();
  }
  if (const io::JsonValue* d = root.Find("deadline_ms")) {
    auto v = d->AsInt64();
    if (!v.ok() || v.value() <= 0) {
      return Status::InvalidArgument("'deadline_ms' must be a positive "
                                     "integer");
    }
    *deadline_ms = v.value();
  }
  return Status::OK();
}

/// Parses the body of a POST endpoint into its JSON object root.
Result<io::JsonValue> ParseBodyObject(const HttpRequest& req) {
  auto parsed = io::ParseJson(req.body);
  if (!parsed.ok()) return parsed.status();
  if (!parsed.value().is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  return parsed;
}

}  // namespace

struct FtlServer::MetricHandles {
  obs::Counter* requests[kNumEndpoints][kNumCodes];
  obs::Counter* rejected;
  obs::Counter* connections;
  obs::Gauge* queue_depth;
  obs::Gauge* inflight;
  obs::Gauge* draining;
  obs::Histogram* latency_us;

  MetricHandles() {
    auto& reg = obs::MetricsRegistry::Global();
    for (size_t e = 0; e < kNumEndpoints; ++e) {
      for (size_t c = 0; c < kNumCodes; ++c) {
        requests[e][c] = &reg.GetCounter(RequestsCounterName(e, kCodes[c]));
      }
    }
    rejected = &reg.GetCounter("ftl_serve_rejected_total");
    connections = &reg.GetCounter("ftl_serve_connections_total");
    queue_depth = &reg.GetGauge("ftl_serve_queue_depth");
    inflight = &reg.GetGauge("ftl_serve_inflight");
    draining = &reg.GetGauge("ftl_serve_draining");
    latency_us = &reg.GetHistogram("ftl_serve_request_latency_us");
  }
};

FtlServer::FtlServer(ServeOptions options, const core::FtlEngine* engine,
                     const traj::TrajectoryDatabase* p,
                     const traj::TrajectoryDatabase* q)
    : options_(std::move(options)), engine_(engine), p_(p), q_(q) {
  ready_.store(options_.start_ready, std::memory_order_release);
}

FtlServer::FtlServer(ServeOptions options, const core::FtlEngine* engine,
                     const traj::TrajectoryDatabase* p, store::Store* store)
    : options_(std::move(options)),
      engine_(engine),
      p_(p),
      q_(nullptr),
      store_(store) {
  ready_.store(options_.start_ready, std::memory_order_release);
}

FtlServer::~FtlServer() {
  Shutdown();
  Wait();
}

Status FtlServer::Start() {
  if (started_.load()) {
    return Status::FailedPrecondition("server already started");
  }
  if (engine_ == nullptr || p_ == nullptr ||
      (q_ == nullptr) == (store_ == nullptr)) {
    return Status::InvalidArgument(
        "engine, P, and exactly one candidate side (Q or store) are "
        "required");
  }
  // With start_ready=false training happens behind the readiness gate
  // (store mode: bind, recover, train, MarkReady), so the trained
  // check moves to the first gated request.
  if (options_.start_ready && !engine_->trained()) {
    return Status::FailedPrecondition("engine must be trained before serving");
  }
  if (options_.max_queue == 0) {
    return Status::InvalidArgument("--max-queue must be at least 1");
  }
  if (options_.store_query_threads == 0) {
    return Status::InvalidArgument("--query-threads must be at least 1");
  }
  if (options_.blocking_mode != core::BlockingMode::kOff && q_ != nullptr) {
    FTL_RETURN_NOT_OK(options_.blocking.Validate());
    blocking_index_ = std::make_unique<const core::BlockingIndex>(
        *q_, options_.blocking);
  }
  if (options_.port < 0 || options_.port > 65535) {
    return Status::InvalidArgument("port must be in [0, 65535]");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad IPv4 listen address '" +
                                   options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Status::IOError("bind " + options_.host + ":" +
                                std::to_string(options_.port) + ": " +
                                std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 128) != 0) {
    Status st =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  metrics_ = std::make_unique<MetricHandles>();
  metrics_->draining->Set(0);
  uptime_.Reset();

  size_t workers = options_.num_threads;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 4;
  }
  pool_ = std::make_unique<ThreadPool>(workers);
  for (size_t i = 0; i < workers; ++i) {
    pool_->Submit([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_.store(true);
  return Status::OK();
}

void FtlServer::Shutdown() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  if (metrics_) metrics_->draining->Set(1);
  queue_cv_.notify_all();
}

void FtlServer::Wait() {
  std::lock_guard<std::mutex> lk(wait_mu_);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (pool_) pool_->Wait();
}

void FtlServer::AcceptLoop() {
  // Canned admission rejection; Retry-After tells well-behaved clients
  // to back off for a beat instead of hammering the full queue.
  HttpResponse reject =
      ErrorResponse(Status::OutOfRange("request queue is full"));
  reject.status = 503;
  reject.extra_headers.emplace_back("Retry-After", "1");
  const std::string reject_bytes = SerializeResponse(reject);

  while (true) {
    if (draining_.load(std::memory_order_acquire)) break;
    if (options_.stop_flag != nullptr &&
        options_.stop_flag->load(std::memory_order_acquire) != 0) {
      break;
    }
    pollfd pfd{listen_fd_, POLLIN, 0};
    int pr = ::poll(&pfd, 1, static_cast<int>(options_.poll_interval_ms));
    if (pr < 0 && errno != EINTR) break;
    if (pr <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN) {
        continue;
      }
      break;
    }
    metrics_->connections->Add(1);
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!draining_.load(std::memory_order_relaxed) &&
          queue_.size() < options_.max_queue) {
        queue_.push_back(fd);
        metrics_->queue_depth->Set(static_cast<int64_t>(queue_.size()));
        admitted = true;
      }
    }
    if (admitted) {
      queue_cv_.notify_one();
      continue;
    }
    metrics_->rejected->Add(1);
    SetSocketTimeouts(fd, 1000);
    (void)WriteFull(fd, reject_bytes);
    ::close(fd);
    RecordRequest(kEndpointAdmission, 503, 0);
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Reached via Shutdown(), stop_flag, or a hard accept error: in all
  // cases the drain contract is the same — workers finish what was
  // already admitted, then exit.
  Shutdown();
}

void FtlServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lk(mu_);
      queue_cv_.wait(lk, [&] {
        return !queue_.empty() || draining_.load(std::memory_order_relaxed);
      });
      if (queue_.empty()) break;  // draining and nothing left: exit
      fd = queue_.front();
      queue_.pop_front();
      metrics_->queue_depth->Set(static_cast<int64_t>(queue_.size()));
    }
    HandleConnection(fd);
  }
}

void FtlServer::HandleConnection(int fd) {
  Stopwatch sw;
  metrics_->inflight->Add(1);
  SetSocketTimeouts(fd, options_.io_timeout_ms);
  HttpLimits limits;
  limits.max_body_bytes = options_.max_body_bytes;
  auto req = ReadHttpRequest(fd, limits);
  size_t endpoint_idx = kEndpointOther;
  if (!req.ok()) {
    if (req.status().code() == StatusCode::kIOError) {
      // Timeout / peer reset / close before a full request: nothing to
      // answer, and no request to account for.
      ::close(fd);
      metrics_->inflight->Sub(1);
      return;
    }
    HttpResponse resp = ErrorResponse(req.status());
    // Size-limit violations are 413, not the generic retryable 503.
    if (req.status().code() == StatusCode::kOutOfRange) resp.status = 413;
    (void)WriteFull(fd, SerializeResponse(resp));
    ::close(fd);
    RecordRequest(endpoint_idx, resp.status,
                  static_cast<int64_t>(sw.ElapsedSeconds() * 1e6));
    metrics_->inflight->Sub(1);
    return;
  }
  HttpResponse resp = Dispatch(req.value(), &endpoint_idx);
  (void)WriteFull(fd, SerializeResponse(resp));
  ::close(fd);
  RecordRequest(endpoint_idx, resp.status,
                static_cast<int64_t>(sw.ElapsedSeconds() * 1e6));
  metrics_->inflight->Sub(1);
}

HttpResponse FtlServer::Dispatch(const HttpRequest& req,
                                 size_t* endpoint_idx) {
  std::string path = req.target.substr(0, req.target.find('?'));
  // The /v1/* endpoints sit behind the readiness gate: before
  // MarkReady() the engine may not be trained (store mode trains after
  // recovery), so they answer a retryable 503. Probes and /metrics
  // stay open throughout.
  auto gated = [&](size_t idx, const char* method,
                   HttpResponse (FtlServer::*handler)(const HttpRequest&))
      -> HttpResponse {
    *endpoint_idx = idx;
    if (req.method != method) return MethodNotAllowed(method);
    if (!ready_.load(std::memory_order_acquire)) {
      HttpResponse resp = ErrorResponse(Status::FailedPrecondition(
          "server is warming up (recovery/training in progress)"));
      resp.extra_headers.emplace_back("Retry-After", "1");
      return resp;
    }
    return (this->*handler)(req);
  };
  if (path == "/v1/query") return gated(0, "POST", &FtlServer::HandleQuery);
  if (path == "/v1/rank") return gated(1, "POST", &FtlServer::HandleRank);
  if (path == "/v1/ingest") return gated(2, "POST", &FtlServer::HandleIngest);
  if (path == "/metrics") {
    *endpoint_idx = 3;
    if (req.method != "GET") return MethodNotAllowed("GET");
    return HandleMetrics();
  }
  if (path == "/healthz") {
    *endpoint_idx = 4;
    if (req.method != "GET") return MethodNotAllowed("GET");
    return HandleHealthz();
  }
  if (path == "/readyz") {
    *endpoint_idx = 5;
    if (req.method != "GET") return MethodNotAllowed("GET");
    return HandleReadyz();
  }
  if (path == "/admin/shutdown") {
    *endpoint_idx = 6;
    if (req.method != "POST") return MethodNotAllowed("POST");
    return HandleShutdown();
  }
  *endpoint_idx = kEndpointOther;
  return ErrorResponse(Status::NotFound("no such endpoint: " + path));
}

HttpResponse FtlServer::HandleQuery(const HttpRequest& req) {
  auto parsed = ParseBodyObject(req);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  const io::JsonValue& root = parsed.value();
  const io::JsonValue* label_v = root.Find("query");
  if (label_v == nullptr || !label_v->is_string()) {
    return ErrorResponse(
        Status::InvalidArgument("missing string field 'query'"));
  }
  core::Matcher matcher;
  int64_t top = -1;
  int64_t deadline_ms = options_.request_deadline_ms;
  Status st = ParseCommonFields(root, options_.default_matcher, &matcher,
                                &top, &deadline_ms);
  if (!st.ok()) return ErrorResponse(st);

  const std::string& label = label_v->AsString();
  size_t idx = p_->Find(label);
  if (idx == traj::TrajectoryDatabase::npos) {
    return ErrorResponse(
        Status::NotFound("query label '" + label + "' not in P"));
  }
  core::QueryOptions qopts;
  if (deadline_ms > 0) qopts.deadline = Deadline::AfterMillis(deadline_ms);
  auto r = [&]() {
    if (store_ != nullptr) {
      return store_->Snapshot()->Query(*engine_, (*p_)[idx], matcher, &qopts,
                                       options_.store_query_threads);
    }
    if (blocking_index_ != nullptr) {
      return engine_->QueryBlocked((*p_)[idx], *q_, *blocking_index_,
                                   options_.blocking_mode, matcher, nullptr,
                                   &qopts);
    }
    return engine_->Query((*p_)[idx], *q_, matcher, qopts);
  }();
  if (!r.ok()) return ErrorResponse(r.status());
  core::QueryResult result = std::move(r).value();
  if (top >= 0 && result.candidates.size() > static_cast<size_t>(top)) {
    result.candidates.resize(static_cast<size_t>(top));
  }
  HttpResponse resp;
  // A fired deadline still carries its (prefix-consistent) partial
  // result; the 408 tells the client it is partial.
  resp.status = result.truncated ? HttpStatusForStatus(result.status) : 200;
  resp.body = io::QueryResultToJson(label, result);
  return resp;
}

HttpResponse FtlServer::HandleRank(const HttpRequest& req) {
  auto parsed = ParseBodyObject(req);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  const io::JsonValue& root = parsed.value();
  const io::JsonValue* label_v = root.Find("query");
  if (label_v == nullptr || !label_v->is_string()) {
    return ErrorResponse(
        Status::InvalidArgument("missing string field 'query'"));
  }
  const io::JsonValue* cands_v = root.Find("candidates");
  if (cands_v == nullptr || !cands_v->is_array() ||
      cands_v->items().empty()) {
    return ErrorResponse(Status::InvalidArgument(
        "missing non-empty array field 'candidates'"));
  }
  core::Matcher matcher;
  int64_t top = -1;
  int64_t deadline_ms = 0;  // rank sets are small; deadlines not applied
  Status st = ParseCommonFields(root, options_.default_matcher, &matcher,
                                &top, &deadline_ms);
  if (!st.ok()) return ErrorResponse(st);

  const std::string& label = label_v->AsString();
  size_t qidx = p_->Find(label);
  if (qidx == traj::TrajectoryDatabase::npos) {
    return ErrorResponse(
        Status::NotFound("query label '" + label + "' not in P"));
  }
  std::vector<std::string> labels;
  labels.reserve(cands_v->items().size());
  for (const io::JsonValue& c : cands_v->items()) {
    if (!c.is_string()) {
      return ErrorResponse(
          Status::InvalidArgument("'candidates' entries must be strings"));
    }
    labels.push_back(c.AsString());
  }
  auto run = [&]() -> Result<core::QueryResult> {
    if (store_ != nullptr) {
      return store_->Snapshot()->Rank(*engine_, (*p_)[qidx], labels, matcher);
    }
    std::vector<size_t> indices;
    indices.reserve(labels.size());
    for (const std::string& c : labels) {
      size_t ci = q_->Find(c);
      if (ci == traj::TrajectoryDatabase::npos) {
        return Status::NotFound("candidate label '" + c + "' not in Q");
      }
      indices.push_back(ci);
    }
    return engine_->QueryWithCandidates((*p_)[qidx], *q_, indices, matcher);
  };
  auto r = run();
  if (!r.ok()) return ErrorResponse(r.status());
  core::QueryResult result = std::move(r).value();
  if (top >= 0 && result.candidates.size() > static_cast<size_t>(top)) {
    result.candidates.resize(static_cast<size_t>(top));
  }
  HttpResponse resp;
  resp.body = io::QueryResultToJson(label, result);
  return resp;
}

HttpResponse FtlServer::HandleIngest(const HttpRequest& req) {
  if (store_ == nullptr) {
    return ErrorResponse(Status::InvalidArgument(
        "ingest requires store mode (`ftl serve --store`)"));
  }
  auto parsed = ParseBodyObject(req);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  const io::JsonValue& root = parsed.value();
  const io::JsonValue* records_v = root.Find("records");
  if (records_v == nullptr || !records_v->is_array() ||
      records_v->items().empty()) {
    return ErrorResponse(Status::InvalidArgument(
        "missing non-empty array field 'records'"));
  }
  store::IngestBatch batch;
  batch.rows.reserve(records_v->items().size());
  for (const io::JsonValue& rec : records_v->items()) {
    if (!rec.is_object()) {
      return ErrorResponse(
          Status::InvalidArgument("'records' entries must be objects"));
    }
    store::IngestRow row;
    const io::JsonValue* label_v = rec.Find("label");
    if (label_v == nullptr || !label_v->is_string() ||
        label_v->AsString().empty()) {
      return ErrorResponse(Status::InvalidArgument(
          "record missing non-empty string field 'label'"));
    }
    row.label = label_v->AsString();
    const io::JsonValue* t_v = rec.Find("t");
    if (t_v == nullptr || !t_v->is_number()) {
      return ErrorResponse(
          Status::InvalidArgument("record missing number field 't'"));
    }
    auto t = t_v->AsInt64();
    if (!t.ok()) {
      return ErrorResponse(
          Status::InvalidArgument("record field 't' must be an integer"));
    }
    row.t = t.value();
    const io::JsonValue* x_v = rec.Find("x");
    const io::JsonValue* y_v = rec.Find("y");
    if (x_v == nullptr || !x_v->is_number() || y_v == nullptr ||
        !y_v->is_number()) {
      return ErrorResponse(
          Status::InvalidArgument("record missing number fields 'x'/'y'"));
    }
    row.x = x_v->AsDouble();
    row.y = y_v->AsDouble();
    if (const io::JsonValue* o = rec.Find("owner")) {
      auto v = o->AsInt64();
      if (!v.ok() || v.value() < 0) {
        return ErrorResponse(Status::InvalidArgument(
            "record field 'owner' must be a non-negative integer"));
      }
      row.owner = static_cast<traj::OwnerId>(v.value());
    }
    batch.rows.push_back(std::move(row));
  }
  Status st = store_->Append(batch);
  if (!st.ok()) {
    HttpResponse resp = ErrorResponse(st);
    // Backpressure (OutOfRange -> 503) is retryable; say so.
    if (st.code() == StatusCode::kOutOfRange) {
      resp.extra_headers.emplace_back("Retry-After", "1");
    }
    return resp;
  }
  io::JsonWriter w;
  w.BeginObject();
  w.Key("appended");
  w.Value(static_cast<uint64_t>(batch.rows.size()));
  w.Key("generation");
  w.Value(store_->generation());
  w.Key("memtable_records");
  w.Value(static_cast<uint64_t>(store_->memtable_records()));
  w.Key("total_records");
  w.Value(static_cast<uint64_t>(store_->total_records()));
  w.EndObject();
  HttpResponse resp;
  resp.body = w.str();
  return resp;
}

HttpResponse FtlServer::HandleHealthz() const {
  io::JsonWriter w;
  w.BeginObject();
  w.Key("status");
  w.Value(draining_.load(std::memory_order_acquire)
              ? "draining"
              : (ready_.load(std::memory_order_acquire) ? "ok"
                                                        : "starting"));
  w.Key("uptime_seconds");
  w.Value(uptime_.ElapsedSeconds());
  w.Key("p_trajectories");
  w.Value(static_cast<uint64_t>(p_->size()));
  if (q_ != nullptr) {
    w.Key("q_trajectories");
    w.Value(static_cast<uint64_t>(q_->size()));
  }
  if (store_ != nullptr) {
    w.Key("store");
    w.BeginObject();
    w.Key("recovered");
    w.Value(store_->recovered());
    w.Key("generation");
    w.Value(store_->generation());
    w.Key("segments");
    w.Value(static_cast<uint64_t>(store_->num_segments()));
    w.Key("memtable_records");
    w.Value(static_cast<uint64_t>(store_->memtable_records()));
    w.Key("total_records");
    w.Value(static_cast<uint64_t>(store_->total_records()));
    w.EndObject();
  }
  w.Key("queue_depth");
  w.Value(metrics_->queue_depth->Value());
  w.Key("requests_handled");
  w.Value(requests_handled_.load(std::memory_order_relaxed));
  w.EndObject();
  HttpResponse resp;
  resp.body = w.str();
  return resp;
}

HttpResponse FtlServer::HandleReadyz() const {
  const bool draining = draining_.load(std::memory_order_acquire);
  const bool is_ready = ready_.load(std::memory_order_acquire) && !draining;
  io::JsonWriter w;
  w.BeginObject();
  w.Key("ready");
  w.Value(is_ready);
  if (!is_ready) {
    w.Key("reason");
    w.Value(draining ? "draining" : "recovery/training in progress");
  }
  w.EndObject();
  HttpResponse resp;
  resp.status = is_ready ? 200 : 503;
  resp.body = w.str();
  if (!is_ready && !draining) {
    resp.extra_headers.emplace_back("Retry-After", "1");
  }
  return resp;
}

HttpResponse FtlServer::HandleMetrics() const {
  HttpResponse resp;
  resp.content_type = "text/plain; version=0.0.4";
  resp.body = obs::DumpPrometheus();
  return resp;
}

HttpResponse FtlServer::HandleShutdown() {
  Shutdown();
  HttpResponse resp;
  resp.body = "{\"status\":\"draining\"}";
  return resp;
}

void FtlServer::RecordRequest(size_t endpoint_idx, int status,
                              int64_t latency_us) {
  requests_handled_.fetch_add(1, std::memory_order_relaxed);
  metrics_->latency_us->Record(latency_us);
  for (size_t c = 0; c < kNumCodes; ++c) {
    if (kCodes[c] == status) {
      metrics_->requests[endpoint_idx][c]->Add(1);
      return;
    }
  }
  // Unlisted status (should not happen): resolve through the registry.
  obs::MetricsRegistry::Global()
      .GetCounter(RequestsCounterName(endpoint_idx, status))
      .Add(1);
}

namespace {

std::atomic<std::atomic<int>*> g_shutdown_flag{nullptr};

void OnShutdownSignal(int) {
  std::atomic<int>* flag = g_shutdown_flag.load(std::memory_order_relaxed);
  if (flag != nullptr) flag->store(1, std::memory_order_relaxed);
}

}  // namespace

void InstallShutdownSignalHandlers(std::atomic<int>* flag) {
  g_shutdown_flag.store(flag, std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = OnShutdownSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

}  // namespace ftl::serve
