#ifndef FTL_SERVE_SERVER_H_
#define FTL_SERVE_SERVER_H_

/// \file server.h
/// FtlServer: the `ftl serve` long-lived query daemon. A resident
/// process loads the databases once (FTB shards mmap through the
/// normal loaders), trains the engine once, and then answers many
/// concurrent queries over a small HTTP/1.1 JSON API:
///
///   POST /v1/query       score one query label against all of Q
///   POST /v1/rank        score one query label against named candidates
///   POST /v1/ingest      append trajectory records (store mode only)
///   GET  /metrics        Prometheus text exposition of the process
///                        metrics registry (src/obs)
///   GET  /healthz        liveness snapshot (always 200 while the
///                        process can answer)
///   GET  /readyz         readiness probe: 503 until recovery/training
///                        completes and again once draining begins
///   POST /admin/shutdown begin a graceful drain
///
/// The candidate side Q is either a static database (the original
/// engine mode) or a store::Store (store mode): queries then fan out
/// over the store's immutable snapshot — byte-identical to the merged
/// database — and POST /v1/ingest appends through the WAL, visible to
/// the next query immediately.
///
/// Threading model (DESIGN.md §11): one accept thread owns the listen
/// socket and performs admission control — when the bounded request
/// queue is full it answers 503 with Retry-After instead of queueing —
/// and N worker tasks on the PR 1 ThreadPool pop connections and run
/// the engine. Per-request deadlines reuse core::QueryOptions /
/// Deadline (PR 2): an expired request returns HTTP 408 carrying the
/// prefix-consistent partial result. Results are byte-identical to
/// one-shot `ftl link --json` runs because both paths call the same
/// FtlEngine entry points and the same JSON serializer.
///
/// Graceful drain: Shutdown() (or SIGTERM via
/// InstallShutdownSignalHandlers, or POST /admin/shutdown) stops the
/// accept loop; already-accepted requests — queued and in-flight —
/// still complete before Wait() returns.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <condition_variable>

#include "core/engine.h"
#include "serve/http.h"
#include "traj/database.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace ftl::store {
class Store;
}  // namespace ftl::store

namespace ftl::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace ftl::obs

namespace ftl::serve {

/// Daemon configuration. The defaults match `ftl serve` flag defaults
/// documented in docs/OPERATIONS.md.
struct ServeOptions {
  /// IPv4 address and port to bind. Port 0 binds an ephemeral port;
  /// FtlServer::port() reports the resolved one (tests/bench).
  std::string host = "127.0.0.1";
  int port = 8080;

  /// Worker tasks popping the request queue; 0 = hardware concurrency.
  size_t num_threads = 0;

  /// Bounded request-queue capacity. An accepted connection beyond
  /// this is answered 503 + `Retry-After: 1` and closed (admission
  /// control), so overload degrades with fast rejections instead of
  /// unbounded queueing.
  size_t max_queue = 128;

  /// Default per-request deadline in ms (0 = none). A request body may
  /// set its own `deadline_ms`; the server default applies otherwise.
  /// Expired requests answer 408 with the partial result.
  int64_t request_deadline_ms = 0;

  /// Matcher when a request does not name one.
  core::Matcher default_matcher = core::Matcher::kNaiveBayes;

  /// Socket read/write timeout per connection (slowloris guard).
  int64_t io_timeout_ms = 5000;

  /// Accept-loop poll tick: the latency bound on noticing Shutdown()
  /// or `stop_flag`.
  int64_t poll_interval_ms = 50;

  /// Request-body size cap (413 beyond it).
  size_t max_body_bytes = 1024 * 1024;

  /// Optional external drain trigger, polled by the accept loop every
  /// `poll_interval_ms`: when non-null and *stop_flag becomes non-zero
  /// the server begins the same graceful drain as Shutdown(). Wired to
  /// SIGTERM/SIGINT by InstallShutdownSignalHandlers.
  const std::atomic<int>* stop_flag = nullptr;

  /// Candidate generation (`--blocking`). In engine mode (static Q) a
  /// BlockingIndex over Q is built once at Start() and every /v1/query
  /// scores only the survivors (kGuaranteed: byte-identical results;
  /// kAggressive: heuristic blockers, recall < 1). In store mode set
  /// StoreOptions::blocking_mode instead — the store's snapshots carry
  /// per-segment indices and these fields are ignored. /v1/rank is
  /// never blocked (the client already chose the candidates).
  core::BlockingMode blocking_mode = core::BlockingMode::kOff;
  core::BlockingOptions blocking;

  /// Store mode: per-request parallel fan-out (`--query-threads`).
  /// Each /v1/query shards the snapshot's segment walk onto this many
  /// threads (StoreSnapshot::Query num_threads) — results stay
  /// byte-identical to the serial walk. Total concurrency is
  /// num_threads × store_query_threads; keep the product within the
  /// machine or set `--threads` down to compensate (CmdServe's
  /// auto-sizing does this when `--threads` is unset). Ignored in
  /// engine mode.
  size_t store_query_threads = 1;

  /// When false the server starts NOT ready: /readyz answers 503 and
  /// the /v1/* endpoints reject with 503 + Retry-After until
  /// MarkReady() is called. This lets `ftl serve --store` bind its
  /// port (so probes see the process) before the possibly-long store
  /// recovery + engine training run. With true (the default) the
  /// engine must already be trained at Start().
  bool start_ready = true;
};

/// The daemon. The engine and both databases must outlive the server
/// and are never mutated by it; `engine` must already be trained with
/// `num_threads == 1` (request-level parallelism comes from the worker
/// pool, not intra-query threads).
class FtlServer {
 public:
  FtlServer(ServeOptions options, const core::FtlEngine* engine,
            const traj::TrajectoryDatabase* p,
            const traj::TrajectoryDatabase* q);

  /// Store mode: the candidate side is a mutable store::Store instead
  /// of a static Q. /v1/query and /v1/rank evaluate against the
  /// store's current snapshot and /v1/ingest appends to it. The store
  /// must outlive the server; it need not be recovered yet when
  /// `options.start_ready` is false (recover, train, then MarkReady()).
  FtlServer(ServeOptions options, const core::FtlEngine* engine,
            const traj::TrajectoryDatabase* p, store::Store* store);

  /// Shutdown() + Wait().
  ~FtlServer();

  FtlServer(const FtlServer&) = delete;
  FtlServer& operator=(const FtlServer&) = delete;

  /// Binds, listens, and spawns the accept thread + worker tasks.
  /// InvalidArgument / FailedPrecondition on bad config or an
  /// untrained engine; IOError when the bind fails.
  Status Start();

  /// The bound port (after Start); useful with options.port == 0.
  int port() const { return port_; }

  /// Begins a graceful drain: stop accepting, finish queued and
  /// in-flight requests. Non-blocking and idempotent; safe to call
  /// from a worker (the /admin/shutdown handler does).
  void Shutdown();

  /// Blocks until the drain completes and all threads have exited.
  void Wait();

  /// True once Shutdown() / stop_flag / /admin/shutdown triggered.
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Flips the readiness gate open (no-op when already ready). In
  /// store mode call this only after Recover() and engine training
  /// have completed; until then /v1/* answer 503.
  void MarkReady() { ready_.store(true, std::memory_order_release); }

  /// True when /readyz would answer 200 (ready and not draining).
  bool ready() const {
    return ready_.load(std::memory_order_acquire) &&
           !draining_.load(std::memory_order_acquire);
  }

  /// Requests answered so far (any status), for tests.
  int64_t requests_handled() const {
    return requests_handled_.load(std::memory_order_relaxed);
  }

 private:
  struct MetricHandles;

  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(int fd);

  /// Routes one parsed request; returns the response plus the endpoint
  /// index used for metric labels.
  HttpResponse Dispatch(const HttpRequest& req, size_t* endpoint_idx);

  HttpResponse HandleQuery(const HttpRequest& req);
  HttpResponse HandleRank(const HttpRequest& req);
  HttpResponse HandleIngest(const HttpRequest& req);
  HttpResponse HandleHealthz() const;
  HttpResponse HandleReadyz() const;
  HttpResponse HandleMetrics() const;
  HttpResponse HandleShutdown();

  void RecordRequest(size_t endpoint_idx, int status, int64_t latency_us);

  ServeOptions options_;
  const core::FtlEngine* engine_;
  const traj::TrajectoryDatabase* p_;
  const traj::TrajectoryDatabase* q_;        // engine mode; null in store mode
  store::Store* store_ = nullptr;            // store mode; null in engine mode
  /// Engine mode with blocking_mode != kOff: the index over Q, built
  /// at Start() and immutable afterwards.
  std::unique_ptr<const core::BlockingIndex> blocking_index_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;
  Stopwatch uptime_;

  std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;  // accepted connection fds awaiting a worker
  std::mutex wait_mu_;     // serializes Wait() callers

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> ready_{true};
  std::atomic<int64_t> requests_handled_{0};

  std::unique_ptr<MetricHandles> metrics_;
};

/// Installs SIGTERM/SIGINT handlers that store 1 into `*flag` (which
/// must outlive the process's use of the handlers). Pair with
/// ServeOptions::stop_flag for signal-triggered graceful drain.
void InstallShutdownSignalHandlers(std::atomic<int>* flag);

}  // namespace ftl::serve

#endif  // FTL_SERVE_SERVER_H_
