#ifndef FTL_SERVE_HTTP_H_
#define FTL_SERVE_HTTP_H_

/// \file http.h
/// Minimal HTTP/1.1 framing for the `ftl serve` daemon: a blocking
/// request reader / response writer over POSIX sockets, plus a tiny
/// loopback client used by tests and bench_serve.
///
/// Scope is deliberately narrow — the daemon speaks exactly the subset
/// its API needs:
///   * request:  method + target + headers + optional Content-Length
///               body (no chunked encoding, no multipart, no TLS);
///   * response: always `Connection: close`, one request per
///     connection, Content-Length framing.
/// Connection-per-request keeps the worker loop trivially fair (a
/// keep-alive client cannot pin a worker while idle) and makes
/// admission control per-request by construction. See DESIGN.md §11.
///
/// Input is untrusted: header and body sizes are bounded, and every
/// parse failure maps to a clean 400 instead of UB.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ftl::serve {

/// One parsed request. Header names are lower-cased on parse; values
/// keep their bytes (leading/trailing whitespace trimmed).
struct HttpRequest {
  std::string method;  ///< e.g. "GET", "POST" (verbatim case)
  std::string target;  ///< request target, e.g. "/v1/query"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header named `name` (lower-case), or "".
  std::string Header(const std::string& name) const;
};

/// One response to serialize. `content_type` and `extra_headers` are
/// emitted verbatim; Content-Length / Connection are always added.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::vector<std::pair<std::string, std::string>> extra_headers;
  std::string body;
};

/// Standard reason phrase for the handful of statuses the API emits
/// ("Unknown" otherwise).
const char* HttpReasonPhrase(int status);

/// The single status-mapping table shared by the serve path. The
/// process-exit-code mapping lives next to it in util/status.h
/// (ExitCodeForStatus); both derive from StatusCode so the one-shot
/// CLI and the daemon can never disagree on what a failure kind means.
///   kOk → 200, kInvalidArgument → 400, kNotFound → 404,
///   kDeadlineExceeded → 408, kCancelled → 499,
///   kFailedPrecondition / kOutOfRange → 503 (retryable: not ready /
///   overloaded), kIOError / kInternal → 500.
int HttpStatusForStatus(const Status& status);

/// Serializes `resp` including the framing headers.
std::string SerializeResponse(const HttpResponse& resp);

/// Size limits for ReadHttpRequest.
struct HttpLimits {
  size_t max_head_bytes = 16 * 1024;      ///< request line + headers
  size_t max_body_bytes = 1024 * 1024;    ///< Content-Length cap
};

/// Reads one full request from `fd` (blocking; honor socket timeouts
/// via SO_RCVTIMEO). Returns:
///   * InvalidArgument — malformed request (caller answers 400);
///   * OutOfRange     — limits exceeded (caller answers 400/413);
///   * IOError        — socket error / timeout / EOF before a full
///                      request (caller just closes).
Result<HttpRequest> ReadHttpRequest(int fd, const HttpLimits& limits = {});

/// Writes all of `data` to `fd`, retrying short writes.
Status WriteFull(int fd, const std::string& data);

/// Blocking loopback client for tests and benches: opens a TCP
/// connection to host:port, sends one request with the given body
/// (Content-Length set automatically; no body bytes sent when empty),
/// reads the response, closes. `timeout_ms` bounds connect and each
/// socket read/write.
Result<HttpResponse> HttpRequestOnce(const std::string& host, int port,
                                     const std::string& method,
                                     const std::string& target,
                                     const std::string& body,
                                     int64_t timeout_ms = 5000);

}  // namespace ftl::serve

#endif  // FTL_SERVE_HTTP_H_
