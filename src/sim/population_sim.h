#ifndef FTL_SIM_POPULATION_SIM_H_
#define FTL_SIM_POPULATION_SIM_H_

/// \file population_sim.h
/// Urban population simulator: people exposing their movement to two
/// services — the paper's motivating scenario (CDR + commuting card).
///
/// Each person has one ground-truth path; the two services observe it as
/// independent Poisson processes (the Section VI access model) with
/// service-specific noise: the CDR channel quantizes to a cell-tower
/// grid, the transit channel has GPS/stop-level accuracy.

#include <cstdint>

#include "sim/city.h"
#include "sim/observation.h"
#include "sim/path.h"
#include "traj/database.h"

namespace ftl::sim {

/// Population simulation parameters.
struct PopulationOptions {
  CityModel city = SingaporeLike();
  size_t num_persons = 300;
  int64_t duration_days = 14;

  /// Mean service accesses per day (Poisson).
  double cdr_accesses_per_day = 12.0;      ///< calls/SMS/data events
  double transit_accesses_per_day = 4.0;   ///< card taps

  /// CDR readings snap to a cell-tower grid; transit readings are
  /// GPS-grade.
  NoiseModel cdr_noise{0.0, 500.0, 0};
  NoiseModel transit_noise{20.0, 0.0, 0};

  /// Commuter-style movement: long dwells (home/work), mid-range trips.
  WaypointParams waypoints{3.5 * 3600.0, 6000.0, 0.1};

  /// Fraction of persons present in BOTH databases; the rest appear in
  /// only one, making the linking task realistic (not every query has a
  /// true match, not every candidate is matchable).
  double overlap_fraction = 1.0;

  uint64_t seed = 11;
};

/// The two simulated service databases. Owner ids are the person index;
/// labels "phone-<i>" (eponymous side) / "card-<i>" (anonymous side).
struct PopulationData {
  traj::TrajectoryDatabase cdr_db;      ///< eponymous: CDR trajectories
  traj::TrajectoryDatabase transit_db;  ///< anonymous: commuting cards
};

/// Runs the simulation. Deterministic given options.seed.
PopulationData SimulatePopulation(const PopulationOptions& options);

}  // namespace ftl::sim

#endif  // FTL_SIM_POPULATION_SIM_H_
