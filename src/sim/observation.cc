#include "sim/observation.h"

#include <algorithm>
#include <cmath>

namespace ftl::sim {

traj::Record Observe(Rng* rng, const GroundTruthPath& path,
                     traj::Timestamp t, const NoiseModel& noise) {
  traj::Timestamp ts = t;
  if (noise.time_jitter_seconds > 0) {
    ts += rng->UniformInt(-noise.time_jitter_seconds,
                          noise.time_jitter_seconds);
  }
  geo::Point p = path.PositionAt(t);
  if (noise.cell_grid_meters > 0.0) {
    double g = noise.cell_grid_meters;
    p.x = std::round(p.x / g) * g;
    p.y = std::round(p.y / g) * g;
  } else if (noise.gps_sigma_meters > 0.0) {
    p.x += rng->Normal(0.0, noise.gps_sigma_meters);
    p.y += rng->Normal(0.0, noise.gps_sigma_meters);
  }
  return traj::Record{p, ts};
}

std::vector<traj::Record> SamplePeriodic(Rng* rng,
                                         const GroundTruthPath& path,
                                         const PeriodicSampler& sampler,
                                         const ActivityPattern& activity,
                                         const NoiseModel& noise) {
  std::vector<traj::Record> out;
  if (path.empty()) return out;
  traj::Timestamp t0 = path.start_time();
  traj::Timestamp t1 = path.end_time();
  // Iterate day by day.
  int64_t first_day = t0 / activity.day_seconds;
  int64_t last_day = t1 / activity.day_seconds;
  for (int64_t day = first_day; day <= last_day; ++day) {
    int64_t day_start = day * activity.day_seconds;
    double jitter = rng->Uniform(-activity.start_jitter_seconds,
                                 activity.start_jitter_seconds);
    traj::Timestamp on = day_start + activity.active_start_offset +
                         static_cast<int64_t>(jitter);
    traj::Timestamp off = on + activity.active_duration;
    traj::Timestamp t = std::max(on, t0);
    traj::Timestamp end = std::min(off, t1);
    while (t < end) {
      if (sampler.keep_prob >= 1.0 || rng->Bernoulli(sampler.keep_prob)) {
        out.push_back(Observe(rng, path, t, noise));
      }
      double step = sampler.interval_seconds *
                    rng->Uniform(1.0 - sampler.interval_jitter,
                                 1.0 + sampler.interval_jitter);
      t += std::max<int64_t>(1, static_cast<int64_t>(std::llround(step)));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const traj::Record& a, const traj::Record& b) {
              return a.t < b.t;
            });
  return out;
}

std::vector<traj::Record> SamplePoisson(Rng* rng,
                                        const GroundTruthPath& path,
                                        double rate_per_second,
                                        const NoiseModel& noise) {
  std::vector<traj::Record> out;
  if (path.empty() || rate_per_second <= 0.0) return out;
  auto times = PoissonProcess(
      rng, rate_per_second, static_cast<double>(path.start_time()),
      static_cast<double>(path.end_time()));
  out.reserve(times.size());
  for (double td : times) {
    out.push_back(
        Observe(rng, path, static_cast<traj::Timestamp>(td), noise));
  }
  std::sort(out.begin(), out.end(),
            [](const traj::Record& a, const traj::Record& b) {
              return a.t < b.t;
            });
  return out;
}

}  // namespace ftl::sim
