#ifndef FTL_SIM_SCENARIO_H_
#define FTL_SIM_SCENARIO_H_

/// \file scenario.h
/// Named experiment datasets: the 12 configurations of the paper's
/// Table I (SA–SF from Singapore-taxi-style data; TA–TF from
/// T-Drive-style data), derived from the simulators by down-sampling and
/// duration trimming exactly as the paper derives them from the raw
/// datasets.

#include <cstdint>
#include <string>
#include <vector>

#include "traj/database.h"

namespace ftl::sim {

/// Which simulated raw dataset a configuration is derived from.
enum class DatasetFamily {
  kSingaporeTaxi,  ///< two channels (log + trip) of one fleet
  kTDrive,         ///< one channel randomly split in two
};

/// One Table I column.
struct DatasetConfig {
  std::string name;          ///< "SA" ... "TF"
  DatasetFamily family = DatasetFamily::kSingaporeTaxi;
  double rate_p = 0.01;      ///< sampling rate applied to P
  double rate_q = 0.08;      ///< sampling rate applied to Q
  int64_t duration_days = 7; ///< trimmed duration
};

/// The Singapore-derived configurations SA–SF (Table I):
/// SA/SB/SC vary the P sampling rate (0.006/0.008/0.01) at 31 days;
/// SD/SE/SF vary duration (7/14/21 days) at rate 0.01.
std::vector<DatasetConfig> SingaporeConfigs();

/// The T-Drive-derived configurations TA–TF (Table I):
/// TA/TB/TC vary the sampling rate (0.06/0.07/0.08) at 7 days;
/// TD/TE/TF vary duration (2/4/6 days) at rate 0.08.
std::vector<DatasetConfig> TDriveConfigs();

/// Look up a config by name across both families; empty name on miss.
DatasetConfig FindConfig(const std::string& name);

/// A built (P, Q) database pair.
struct DatasetPair {
  std::string name;
  traj::TrajectoryDatabase p;  ///< query side
  traj::TrajectoryDatabase q;  ///< candidate side
};

/// Materializes a configuration with `num_objects` moving objects.
/// Deterministic given `seed`. Down-sampling is applied at the source
/// (Bernoulli thinning), which is distributionally identical to
/// generating the full-rate stream and down-sampling afterwards.
DatasetPair BuildDataset(const DatasetConfig& config, size_t num_objects,
                         uint64_t seed);

}  // namespace ftl::sim

#endif  // FTL_SIM_SCENARIO_H_
