#ifndef FTL_SIM_TAXI_SIM_H_
#define FTL_SIM_TAXI_SIM_H_

/// \file taxi_sim.h
/// Singapore-style taxi fleet simulator.
///
/// Substitutes the paper's proprietary Singapore taxi dataset: each taxi
/// has one continuous ground-truth motion per day-shift, observed by two
/// independent channels kept in two databases —
///  * **log data**: periodic status reports (30–120 s) while in service,
///  * **trip data**: one record at each trip start (start time+location,
///    as the paper uses).
/// The channels rarely sample the same instant, mirroring the paper's
/// remark that the two databases "contain few overlap in location
/// points".

#include <cstdint>

#include "sim/city.h"
#include "sim/observation.h"
#include "sim/path.h"
#include "traj/database.h"

namespace ftl::sim {

/// Fleet simulation parameters.
struct TaxiFleetOptions {
  CityModel city = SingaporeLike();
  size_t num_taxis = 500;
  int64_t duration_days = 31;

  /// Log channel: report cadence while in service.
  PeriodicSampler log_sampler{60.0, 0.4, 1.0};

  /// Trip channel: mean seconds between trip starts while in service
  /// (~27 trips across a 14 h shift at the default).
  PeriodicSampler trip_sampler{1800.0, 0.9, 1.0};

  /// Daily service shift.
  ActivityPattern activity{86400, 6 * 3600, 14 * 3600, 3600.0};

  /// Observation noise per channel (GPS-grade on both).
  NoiseModel log_noise{30.0, 0.0, 0};
  NoiseModel trip_noise{30.0, 0.0, 0};

  /// Taxi movement: short dwells, city-scale hops.
  WaypointParams waypoints{120.0, 5000.0, 0.2};

  uint64_t seed = 1;
};

/// The two simulated databases. Trajectory owner ids are the taxi index;
/// labels are "log-<i>" / "trip-<i>".
struct TaxiFleetData {
  traj::TrajectoryDatabase log_db;   ///< the paper's query side P
  traj::TrajectoryDatabase trip_db;  ///< the paper's candidate side Q
};

/// Runs the simulation. Deterministic given options.seed.
TaxiFleetData SimulateTaxiFleet(const TaxiFleetOptions& options);

}  // namespace ftl::sim

#endif  // FTL_SIM_TAXI_SIM_H_
