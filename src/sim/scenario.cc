#include "sim/scenario.h"

#include <string>

#include "sim/observation.h"
#include "sim/path.h"
#include "sim/taxi_sim.h"
#include "traj/transforms.h"
#include "util/rng.h"

namespace ftl::sim {

std::vector<DatasetConfig> SingaporeConfigs() {
  using F = DatasetFamily;
  return {
      {"SA", F::kSingaporeTaxi, 0.006, 0.08, 31},
      {"SB", F::kSingaporeTaxi, 0.008, 0.08, 31},
      {"SC", F::kSingaporeTaxi, 0.010, 0.08, 31},
      {"SD", F::kSingaporeTaxi, 0.010, 0.08, 7},
      {"SE", F::kSingaporeTaxi, 0.010, 0.08, 14},
      {"SF", F::kSingaporeTaxi, 0.010, 0.08, 21},
  };
}

std::vector<DatasetConfig> TDriveConfigs() {
  using F = DatasetFamily;
  return {
      {"TA", F::kTDrive, 0.06, 0.06, 7},
      {"TB", F::kTDrive, 0.07, 0.07, 7},
      {"TC", F::kTDrive, 0.08, 0.08, 7},
      {"TD", F::kTDrive, 0.08, 0.08, 2},
      {"TE", F::kTDrive, 0.08, 0.08, 4},
      {"TF", F::kTDrive, 0.08, 0.08, 6},
  };
}

DatasetConfig FindConfig(const std::string& name) {
  for (const auto& c : SingaporeConfigs()) {
    if (c.name == name) return c;
  }
  for (const auto& c : TDriveConfigs()) {
    if (c.name == name) return c;
  }
  return DatasetConfig{"", DatasetFamily::kSingaporeTaxi, 0, 0, 0};
}

namespace {

DatasetPair BuildSingapore(const DatasetConfig& config, size_t num_objects,
                           uint64_t seed) {
  TaxiFleetOptions opts;
  opts.num_taxis = num_objects;
  opts.duration_days = config.duration_days;
  // Thin at the source: keep_prob == the Table I sampling rate.
  opts.log_sampler.keep_prob = config.rate_p;
  opts.trip_sampler.keep_prob = config.rate_q;
  opts.seed = seed;
  TaxiFleetData fleet = SimulateTaxiFleet(opts);
  DatasetPair pair;
  pair.name = config.name;
  pair.p = std::move(fleet.log_db);
  pair.q = std::move(fleet.trip_db);
  pair.p.set_name(config.name + "/P");
  pair.q.set_name(config.name + "/Q");
  return pair;
}

DatasetPair BuildTDrive(const DatasetConfig& config, size_t num_objects,
                        uint64_t seed) {
  CityModel city = BeijingLike();
  // T-Drive-like raw channel: one report every ~177 s during a ~12 h
  // active day.
  PeriodicSampler raw_sampler{177.0, 0.35, 1.0};
  ActivityPattern activity{86400, 7 * 3600, 12 * 3600, 3600.0};
  NoiseModel noise{40.0, 0.0, 0};
  WaypointParams waypoints{180.0, 6000.0, 0.25};
  int64_t span = config.duration_days * 86400;

  DatasetPair pair;
  pair.name = config.name;
  pair.p.set_name(config.name + "/P");
  pair.q.set_name(config.name + "/Q");
  Rng master(seed);
  for (size_t i = 0; i < num_objects; ++i) {
    Rng rng = master.Fork();
    GroundTruthPath path =
        GenerateWaypointPath(&rng, city, 0, span, waypoints);
    auto records = SamplePeriodic(&rng, path, raw_sampler, activity, noise);
    traj::Trajectory full("t" + std::to_string(i),
                          static_cast<traj::OwnerId>(i), std::move(records));
    // The paper's procedure: random 50/50 record split, then down-sample.
    auto [a, b] = traj::SplitRecords(full, &rng);
    traj::Trajectory pa = traj::DownSample(a, config.rate_p, &rng);
    traj::Trajectory qb = traj::DownSample(b, config.rate_q, &rng);
    (void)pair.p.Add(std::move(pa));
    (void)pair.q.Add(std::move(qb));
  }
  return pair;
}

}  // namespace

DatasetPair BuildDataset(const DatasetConfig& config, size_t num_objects,
                         uint64_t seed) {
  switch (config.family) {
    case DatasetFamily::kSingaporeTaxi:
      return BuildSingapore(config, num_objects, seed);
    case DatasetFamily::kTDrive:
      return BuildTDrive(config, num_objects, seed);
  }
  return DatasetPair{};
}

}  // namespace ftl::sim
