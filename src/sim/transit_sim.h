#ifndef FTL_SIM_TRANSIT_SIM_H_
#define FTL_SIM_TRANSIT_SIM_H_

/// \file transit_sim.h
/// Commuter population on a grid transit network — the paper's
/// motivating scenario in structured form.
///
/// The city has a grid of bus lines (pitch `stop_pitch`); stops sit on
/// grid intersections. Each person commutes daily between a fixed home
/// and workplace: walk to the nearest stop, ride an L-shaped route along
/// the grid (one transfer), walk to the destination. Two observation
/// channels:
///  * **card taps** — a record at every boarding stop (anonymous card),
///  * **CDR** — Poisson phone events along the whole day, quantized to a
///    cell grid (eponymous).
///
/// Compared with the generic waypoint population, this data has
/// *structure*: repeated daily routes, taps pinned to stop locations,
/// rigid timing — matching how real commuter datasets look, and giving
/// the linking problem its realistic shape (many people share stops and
/// schedules).

#include <cstdint>
#include <vector>

#include "sim/city.h"
#include "sim/observation.h"
#include "sim/path.h"
#include "traj/database.h"
#include "util/rng.h"

namespace ftl::sim {

/// Network + population parameters.
struct CommuterOptions {
  CityModel city = SingaporeLike();
  size_t num_persons = 150;
  int64_t duration_days = 10;

  /// Grid pitch between adjacent stops, meters.
  double stop_pitch = 800.0;

  /// Walking and riding speeds, m/s (bus speed includes stop dwell).
  double walk_speed = 1.4;
  double bus_speed = 7.0;

  /// Departure windows (seconds after midnight) with uniform jitter.
  int64_t morning_leave = 8 * 3600;
  int64_t evening_leave = 18 * 3600;
  int64_t leave_jitter = 45 * 60;

  /// Phone events per day (Poisson) and channel noise.
  double cdr_events_per_day = 12.0;
  NoiseModel cdr_noise{0.0, 500.0, 0};
  NoiseModel tap_noise{10.0, 0.0, 0};

  uint64_t seed = 4001;
};

/// The two simulated databases; owners are person indices.
struct CommuterData {
  traj::TrajectoryDatabase cdr_db;      ///< "phone-<i>", eponymous
  traj::TrajectoryDatabase transit_db;  ///< "card-<i>", anonymous
};

/// Snaps a point to the nearest stop (grid intersection).
geo::Point NearestStop(const geo::Point& p, double stop_pitch);

/// One person's ground truth plus their tap events (used by tests; the
/// database-level API below is what applications normally call).
struct CommuterDay {
  GroundTruthPath path;
  std::vector<traj::Record> taps;  ///< boarding-time records at stops
};

/// Builds one person's full-horizon path and taps.
CommuterDay BuildCommuter(Rng* rng, const CommuterOptions& options);

/// Simulates the whole population. Deterministic given options.seed.
CommuterData SimulateCommuters(const CommuterOptions& options);

}  // namespace ftl::sim

#endif  // FTL_SIM_TRANSIT_SIM_H_
