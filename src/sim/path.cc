#include "sim/path.h"

#include <algorithm>
#include <cmath>

namespace ftl::sim {

geo::Point GroundTruthPath::PositionAt(traj::Timestamp t) const {
  if (knots_.empty()) return geo::Point{};
  if (t <= knots_.front().t) return knots_.front().location;
  if (t >= knots_.back().t) return knots_.back().location;
  auto it = std::lower_bound(
      knots_.begin(), knots_.end(), t,
      [](const traj::Record& r, traj::Timestamp ts) { return r.t < ts; });
  // it points at the first knot with knot.t >= t; it > begin here.
  const traj::Record& hi = *it;
  const traj::Record& lo = *(it - 1);
  if (hi.t == lo.t) return hi.location;
  double frac = static_cast<double>(t - lo.t) /
                static_cast<double>(hi.t - lo.t);
  return geo::Lerp(lo.location, hi.location, frac);
}

double GroundTruthPath::MeanSpeed(traj::Timestamp t, int64_t dt) const {
  if (dt <= 0) return 0.0;
  geo::Point a = PositionAt(t);
  geo::Point b = PositionAt(t + dt);
  return geo::Distance(a, b) / static_cast<double>(dt);
}

double GroundTruthPath::MaxKnotSpeed() const {
  double vmax = 0.0;
  for (size_t i = 1; i < knots_.size(); ++i) {
    int64_t dt = knots_[i].t - knots_[i - 1].t;
    if (dt <= 0) continue;
    double v = geo::Distance(knots_[i].location, knots_[i - 1].location) /
               static_cast<double>(dt);
    vmax = std::max(vmax, v);
  }
  return vmax;
}

namespace {

/// Laplace-distributed offset with the given scale.
double LaplaceOffset(Rng* rng, double scale) {
  double u = rng->Uniform(-0.5, 0.5);
  double sign = u < 0 ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::abs(u));
}

geo::Point NextWaypoint(Rng* rng, const CityModel& city,
                        const geo::Point& from,
                        const WaypointParams& params) {
  if (!city.hotspots.empty() && rng->Bernoulli(params.hotspot_prob)) {
    const geo::Point& h = city.hotspots[rng->Index(city.hotspots.size())];
    geo::Point p{h.x + LaplaceOffset(rng, params.hotspot_scatter_meters),
                 h.y + LaplaceOffset(rng, params.hotspot_scatter_meters)};
    return city.bounds.Clamp(p);
  }
  if (rng->Bernoulli(params.long_trip_prob)) {
    return geo::Point{
        rng->Uniform(city.bounds.min_x, city.bounds.max_x),
        rng->Uniform(city.bounds.min_y, city.bounds.max_y)};
  }
  geo::Point p{from.x + LaplaceOffset(rng, params.trip_scale_meters),
               from.y + LaplaceOffset(rng, params.trip_scale_meters)};
  return city.bounds.Clamp(p);
}

}  // namespace

GroundTruthPath GenerateWaypointPath(Rng* rng, const CityModel& city,
                                     traj::Timestamp t0, traj::Timestamp t1,
                                     const WaypointParams& params) {
  std::vector<traj::Record> knots;
  geo::Point pos{rng->Uniform(city.bounds.min_x, city.bounds.max_x),
                 rng->Uniform(city.bounds.min_y, city.bounds.max_y)};
  traj::Timestamp t = t0;
  knots.push_back(traj::Record{pos, t});
  while (t < t1) {
    // Dwell.
    int64_t dwell = std::max<int64_t>(
        1, static_cast<int64_t>(
               std::llround(rng->Exponential(1.0 / params.mean_dwell_seconds))));
    t += dwell;
    if (t >= t1) {
      knots.push_back(traj::Record{pos, t1});
      break;
    }
    knots.push_back(traj::Record{pos, t});
    // Travel. Road factor inflates effective trip time so the observed
    // straight-line speed stays safely below the physical speed.
    geo::Point dest = NextWaypoint(rng, city, pos, params);
    double speed = rng->Uniform(city.min_speed_mps, city.max_speed_mps);
    double straight = geo::Distance(pos, dest);
    double travel_s = straight * city.road_factor / std::max(0.1, speed);
    int64_t dt = std::max<int64_t>(1, static_cast<int64_t>(
                                          std::llround(travel_s)));
    t += dt;
    pos = dest;
    if (t >= t1) {
      // Truncate the final leg at t1 (position interpolated).
      double frac = 1.0 - static_cast<double>(t - t1) /
                              static_cast<double>(dt);
      geo::Point cut = geo::Lerp(knots.back().location, dest, frac);
      knots.push_back(traj::Record{cut, t1});
      break;
    }
    knots.push_back(traj::Record{pos, t});
  }
  return GroundTruthPath(std::move(knots));
}

}  // namespace ftl::sim
