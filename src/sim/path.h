#ifndef FTL_SIM_PATH_H_
#define FTL_SIM_PATH_H_

/// \file path.h
/// Ground-truth continuous motion of one moving object.
///
/// A path is a piecewise-linear function time -> position given by
/// knots; positions between knots are interpolated. Knot sequences are
/// produced by a waypoint process: alternate dwells (stay in place) and
/// travels (move to a new waypoint at a bounded speed). Every sampled
/// observation in the synthetic datasets is a (possibly noisy) reading
/// of such a path, so the maximum-speed constraint FTL relies on holds
/// by construction.

#include <cstdint>
#include <vector>

#include "geo/point.h"
#include "sim/city.h"
#include "traj/record.h"
#include "util/rng.h"

namespace ftl::sim {

/// Piecewise-linear ground-truth motion.
class GroundTruthPath {
 public:
  GroundTruthPath() = default;

  /// `knots` must be sorted by time and non-empty for PositionAt.
  explicit GroundTruthPath(std::vector<traj::Record> knots)
      : knots_(std::move(knots)) {}

  /// Exact position at time `t` (clamped to the path's time span).
  geo::Point PositionAt(traj::Timestamp t) const;

  /// True ground-truth speed over [t, t+dt], m/s.
  double MeanSpeed(traj::Timestamp t, int64_t dt) const;

  const std::vector<traj::Record>& knots() const { return knots_; }
  bool empty() const { return knots_.empty(); }
  traj::Timestamp start_time() const { return knots_.front().t; }
  traj::Timestamp end_time() const { return knots_.back().t; }

  /// Maximum speed between consecutive knots, m/s (invariant check).
  double MaxKnotSpeed() const;

 private:
  std::vector<traj::Record> knots_;
};

/// Waypoint-process parameters.
struct WaypointParams {
  /// Mean dwell between trips, seconds (exponential).
  double mean_dwell_seconds = 600.0;

  /// Trip displacement scale, meters: destination offsets are Laplace-
  /// distributed with this scale, clamped into the city — short hops are
  /// common, cross-city trips rare, as in real mobility.
  double trip_scale_meters = 4000.0;

  /// Probability a trip targets a uniformly random city point instead of
  /// a local hop (long-haul fraction).
  double long_trip_prob = 0.15;

  /// Probability a trip targets one of the city's hotspots (with a small
  /// scatter). Shared hotspots put different objects in the same place
  /// at the same time, which is what makes real-world linking fuzzy.
  double hotspot_prob = 0.35;

  /// Scatter around the chosen hotspot, meters (Laplace scale).
  double hotspot_scatter_meters = 400.0;
};

/// Generates a ground-truth path covering [t0, t1].
GroundTruthPath GenerateWaypointPath(Rng* rng, const CityModel& city,
                                     traj::Timestamp t0, traj::Timestamp t1,
                                     const WaypointParams& params);

}  // namespace ftl::sim

#endif  // FTL_SIM_PATH_H_
