#ifndef FTL_SIM_OBSERVATION_H_
#define FTL_SIM_OBSERVATION_H_

/// \file observation.h
/// Observation channels: turn a ground-truth path into the noisy,
/// sparse location–timestamp records a service provider would store.
///
/// Models the paper's three data-quality challenges directly:
///  * sparsity      — periodic/Poisson sampling with activity windows,
///  * non-exact matching — independent channels sample at different times,
///  * inaccuracy    — Gaussian GPS noise / cell-tower-like quantization.

#include <cstdint>
#include <vector>

#include "sim/path.h"
#include "traj/trajectory.h"
#include "util/rng.h"

namespace ftl::sim {

/// Location-reading noise model.
struct NoiseModel {
  /// Gaussian position noise standard deviation per axis, meters
  /// (GPS: tens of meters).
  double gps_sigma_meters = 50.0;

  /// Cell-tower style quantization: when > 0, readings snap to a square
  /// grid of this pitch *instead of* adding Gaussian noise — "the user
  /// location in CDR data is usually the location of a nearby cell
  /// tower, which can be hundreds of meters away".
  double cell_grid_meters = 0.0;

  /// Uniform timestamp jitter, +/- seconds.
  int64_t time_jitter_seconds = 0;
};

/// Applies the noise model to a true position/time.
traj::Record Observe(Rng* rng, const GroundTruthPath& path,
                     traj::Timestamp t, const NoiseModel& noise);

/// Periodic sampling: one reading every ~`interval` seconds (jittered by
/// +/- `interval_jitter`) inside each [on, off) activity window,
/// independently kept with probability `keep_prob`.
struct PeriodicSampler {
  double interval_seconds = 60.0;
  double interval_jitter = 0.3;  ///< fraction of interval
  double keep_prob = 1.0;        ///< thinning (== down-sampling at source)
};

/// Daily activity pattern: the object emits readings only during an
/// active window each day (e.g. a taxi shift).
struct ActivityPattern {
  int64_t day_seconds = 86400;
  int64_t active_start_offset = 6 * 3600;  ///< seconds after midnight
  int64_t active_duration = 14 * 3600;     ///< shift length
  double start_jitter_seconds = 3600.0;    ///< per-day uniform jitter
};

/// Samples a path periodically within daily activity windows.
std::vector<traj::Record> SamplePeriodic(Rng* rng, const GroundTruthPath& path,
                                         const PeriodicSampler& sampler,
                                         const ActivityPattern& activity,
                                         const NoiseModel& noise);

/// Samples a path at Poisson-process event times with the given rate
/// (events/second) over the whole path span — the Section VI access
/// model (e.g. phone calls, card payments).
std::vector<traj::Record> SamplePoisson(Rng* rng, const GroundTruthPath& path,
                                        double rate_per_second,
                                        const NoiseModel& noise);

}  // namespace ftl::sim

#endif  // FTL_SIM_OBSERVATION_H_
