#include "sim/transit_sim.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace ftl::sim {

geo::Point NearestStop(const geo::Point& p, double stop_pitch) {
  return geo::Point{std::round(p.x / stop_pitch) * stop_pitch,
                    std::round(p.y / stop_pitch) * stop_pitch};
}

namespace {

/// Appends a straight movement leg to `knots`, advancing *t. Durations
/// round UP so the realized knot-to-knot speed never exceeds `speed`.
void Leg(std::vector<traj::Record>* knots, traj::Timestamp* t,
         const geo::Point& from, const geo::Point& to, double speed) {
  double d = geo::Distance(from, to);
  int64_t dt = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(d / speed)));
  *t += dt;
  knots->push_back(traj::Record{to, *t});
}

/// One commute trip: walk -> board (tap) -> ride L-shape with a corner
/// transfer (tap) -> walk. Returns the arrival time.
traj::Timestamp Trip(std::vector<traj::Record>* knots,
                     std::vector<traj::Record>* taps, traj::Timestamp t,
                     const geo::Point& from, const geo::Point& to,
                     const CommuterOptions& o) {
  geo::Point s_from = NearestStop(from, o.stop_pitch);
  geo::Point s_to = NearestStop(to, o.stop_pitch);
  knots->push_back(traj::Record{from, t});
  Leg(knots, &t, from, s_from, o.walk_speed);
  taps->push_back(traj::Record{s_from, t});  // boarding tap
  // Ride along the grid: horizontal then vertical via the corner.
  geo::Point corner{s_to.x, s_from.y};
  if (!(corner == s_from)) {
    Leg(knots, &t, s_from, corner, o.bus_speed);
  }
  if (!(corner == s_to)) {
    if (!(corner == s_from)) {
      taps->push_back(traj::Record{corner, t});  // transfer tap
    }
    Leg(knots, &t, corner, s_to, o.bus_speed);
  }
  Leg(knots, &t, s_to, to, o.walk_speed);
  return t;
}

}  // namespace

CommuterDay BuildCommuter(Rng* rng, const CommuterOptions& options) {
  CommuterDay day;
  const auto& b = options.city.bounds;
  geo::Point home{rng->Uniform(b.min_x, b.max_x),
                  rng->Uniform(b.min_y, b.max_y)};
  geo::Point work{rng->Uniform(b.min_x, b.max_x),
                  rng->Uniform(b.min_y, b.max_y)};
  std::vector<traj::Record> knots;
  knots.push_back(traj::Record{home, 0});
  traj::Timestamp horizon = options.duration_days * 86400;
  for (int64_t d = 0; d * 86400 < horizon; ++d) {
    traj::Timestamp day_start = d * 86400;
    traj::Timestamp leave_home =
        day_start + options.morning_leave +
        rng->UniformInt(-options.leave_jitter, options.leave_jitter);
    if (leave_home >= horizon) break;
    knots.push_back(traj::Record{home, leave_home});
    traj::Timestamp at_work =
        Trip(&knots, &day.taps, leave_home, home, work, options);
    traj::Timestamp leave_work =
        day_start + options.evening_leave +
        rng->UniformInt(-options.leave_jitter, options.leave_jitter);
    leave_work = std::max(leave_work, at_work + 600);
    if (leave_work >= horizon) break;
    knots.push_back(traj::Record{work, leave_work});
    Trip(&knots, &day.taps, leave_work, work, home, options);
  }
  if (knots.back().t < horizon) {
    knots.push_back(traj::Record{knots.back().location, horizon});
  }
  day.path = GroundTruthPath(std::move(knots));
  return day;
}

CommuterData SimulateCommuters(const CommuterOptions& options) {
  CommuterData data;
  data.cdr_db.set_name("commuter-cdr");
  data.transit_db.set_name("commuter-cards");
  Rng master(options.seed);
  double cdr_rate = options.cdr_events_per_day / 86400.0;
  for (size_t i = 0; i < options.num_persons; ++i) {
    Rng rng = master.Fork();
    CommuterDay person = BuildCommuter(&rng, options);
    traj::OwnerId owner = static_cast<traj::OwnerId>(i);
    // CDR channel: Poisson along the whole path, cell-quantized.
    auto cdr = SamplePoisson(&rng, person.path, cdr_rate,
                             options.cdr_noise);
    (void)data.cdr_db.Add(traj::Trajectory(
        "phone-" + std::to_string(i), owner, std::move(cdr)));
    // Card channel: the tap events with small noise.
    std::vector<traj::Record> taps;
    taps.reserve(person.taps.size());
    for (const auto& tap : person.taps) {
      traj::Record noisy = tap;
      if (options.tap_noise.gps_sigma_meters > 0.0) {
        noisy.location.x +=
            rng.Normal(0.0, options.tap_noise.gps_sigma_meters);
        noisy.location.y +=
            rng.Normal(0.0, options.tap_noise.gps_sigma_meters);
      }
      taps.push_back(noisy);
    }
    (void)data.transit_db.Add(traj::Trajectory(
        "card-" + std::to_string(i), owner, std::move(taps)));
  }
  return data;
}

}  // namespace ftl::sim
