#include "sim/taxi_sim.h"

#include <string>

namespace ftl::sim {

TaxiFleetData SimulateTaxiFleet(const TaxiFleetOptions& options) {
  TaxiFleetData data;
  data.log_db.set_name("taxi-log");
  data.trip_db.set_name("taxi-trip");
  Rng master(options.seed);
  int64_t span = options.duration_days * 86400;
  for (size_t i = 0; i < options.num_taxis; ++i) {
    Rng rng = master.Fork();
    GroundTruthPath path =
        GenerateWaypointPath(&rng, options.city, 0, span, options.waypoints);
    auto log_records = SamplePeriodic(&rng, path, options.log_sampler,
                                      options.activity, options.log_noise);
    auto trip_records = SamplePeriodic(&rng, path, options.trip_sampler,
                                       options.activity, options.trip_noise);
    traj::OwnerId owner = static_cast<traj::OwnerId>(i);
    (void)data.log_db.Add(traj::Trajectory("log-" + std::to_string(i), owner,
                                           std::move(log_records)));
    (void)data.trip_db.Add(traj::Trajectory("trip-" + std::to_string(i),
                                            owner, std::move(trip_records)));
  }
  return data;
}

}  // namespace ftl::sim
