#ifndef FTL_SIM_CITY_H_
#define FTL_SIM_CITY_H_

/// \file city.h
/// City models for the mobility simulator.
///
/// The paper's datasets come from Singapore (taxi log + trip databases)
/// and Beijing (T-Drive). We model each as a bounded planar region with
/// a speed regime; the FTL-relevant properties are the spatial extent
/// (which bounds how incompatible two far-apart records can be) and the
/// realistic travel speeds (which stay below Vmax).

#include <vector>

#include "geo/point.h"

namespace ftl::sim {

/// Static description of a city for simulation purposes.
struct CityModel {
  geo::BoundingBox bounds;      ///< city extent, meters
  double min_speed_mps = 0.0;   ///< slowest travel speed
  double max_speed_mps = 0.0;   ///< fastest travel speed (< FTL Vmax)
  double road_factor = 1.25;    ///< path length inflation vs straight line

  /// Attraction points (CBD, airport, malls, stations) that draw a
  /// disproportionate share of trips. Shared destinations make
  /// *different* moving objects frequently co-located — the property of
  /// real urban data that makes fuzzy linking genuinely hard.
  std::vector<geo::Point> hotspots;

  /// Longest possible straight-line distance inside the city.
  double Diameter() const { return bounds.Diagonal(); }
};

/// Singapore-like city: ~40 km x 25 km, urban taxi speeds, a compact
/// set of high-traffic hotspots.
inline CityModel SingaporeLike() {
  CityModel c;
  c.bounds = geo::BoundingBox{0.0, 0.0, 40000.0, 25000.0};
  c.min_speed_mps = geo::KphToMps(20.0);
  c.max_speed_mps = geo::KphToMps(70.0);
  c.road_factor = 1.3;
  c.hotspots = {
      {20000.0, 12000.0},  // CBD
      {36000.0, 9000.0},   // airport (east)
      {9000.0, 15000.0},   // west hub
      {24000.0, 18000.0},  // north mall belt
      {15000.0, 6000.0},   // south port
      {28000.0, 13000.0},  // east-central interchange
  };
  return c;
}

/// Beijing-like city: ~50 km x 50 km ("much larger scale than
/// Singapore" — paper Section VII-B), hotspots spread wider.
inline CityModel BeijingLike() {
  CityModel c;
  c.bounds = geo::BoundingBox{0.0, 0.0, 50000.0, 50000.0};
  c.min_speed_mps = geo::KphToMps(15.0);
  c.max_speed_mps = geo::KphToMps(60.0);
  c.road_factor = 1.4;
  c.hotspots = {
      {25000.0, 25000.0},  // center
      {44000.0, 30000.0},  // airport (east)
      {14000.0, 34000.0},  // university district
      {32000.0, 14000.0},  // south rail hub
      {10000.0, 12000.0},  // southwest market
      {38000.0, 42000.0},  // northeast business park
      {20000.0, 42000.0},  // north residential hub
      {45000.0, 8000.0},   // southeast industrial
  };
  return c;
}

}  // namespace ftl::sim

#endif  // FTL_SIM_CITY_H_
