#include "sim/population_sim.h"

#include <string>

namespace ftl::sim {

PopulationData SimulatePopulation(const PopulationOptions& options) {
  PopulationData data;
  data.cdr_db.set_name("cdr");
  data.transit_db.set_name("transit");
  Rng master(options.seed);
  int64_t span = options.duration_days * 86400;
  double cdr_rate = options.cdr_accesses_per_day / 86400.0;
  double transit_rate = options.transit_accesses_per_day / 86400.0;
  for (size_t i = 0; i < options.num_persons; ++i) {
    Rng rng = master.Fork();
    GroundTruthPath path =
        GenerateWaypointPath(&rng, options.city, 0, span, options.waypoints);
    traj::OwnerId owner = static_cast<traj::OwnerId>(i);
    bool in_both = rng.Bernoulli(options.overlap_fraction);
    bool cdr_only = !in_both && rng.Bernoulli(0.5);
    if (in_both || cdr_only) {
      auto recs = SamplePoisson(&rng, path, cdr_rate, options.cdr_noise);
      (void)data.cdr_db.Add(
          traj::Trajectory("phone-" + std::to_string(i), owner,
                           std::move(recs)));
    }
    if (in_both || !cdr_only) {
      auto recs =
          SamplePoisson(&rng, path, transit_rate, options.transit_noise);
      (void)data.transit_db.Add(
          traj::Trajectory("card-" + std::to_string(i), owner,
                           std::move(recs)));
    }
  }
  return data;
}

}  // namespace ftl::sim
