#ifndef FTL_IO_JSON_PARSE_H_
#define FTL_IO_JSON_PARSE_H_

/// \file json_parse.h
/// Minimal JSON parser, the read-side counterpart of report_json.h's
/// JsonWriter. Grown for the `ftl serve` network API, whose request
/// bodies are small JSON objects; kept dependency-free and strict
/// (RFC 8259 grammar, no extensions, bounded nesting depth) because it
/// parses untrusted network input.
///
/// The parse result is an owning tree of JsonValue nodes. Numbers are
/// held as double (adequate for the API's labels/counts/milliseconds;
/// integers round-trip exactly up to 2^53). Object keys preserve
/// insertion order and may repeat; Find returns the first occurrence.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ftl::io {

/// One parsed JSON value (a tagged tree node).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; only meaningful for the matching kind.
  bool AsBool() const { return bool_; }
  double AsDouble() const { return num_; }
  const std::string& AsString() const { return str_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Number as int64 when it is integral and in range; error otherwise.
  Result<int64_t> AsInt64() const;

  /// First member with `key`, or nullptr (objects only).
  const JsonValue* Find(const std::string& key) const;

  /// Construction helpers (used by the parser; handy in tests).
  static JsonValue Null();
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue String(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parse options: `max_depth` bounds container nesting so crafted
/// input cannot exhaust the stack.
struct JsonParseOptions {
  size_t max_depth = 64;
};

/// Parses exactly one JSON document from `text` (leading/trailing
/// whitespace allowed, anything else after the value is an error).
/// Returns InvalidArgument with a byte offset on malformed input.
Result<JsonValue> ParseJson(std::string_view text,
                            const JsonParseOptions& options = {});

}  // namespace ftl::io

#endif  // FTL_IO_JSON_PARSE_H_
