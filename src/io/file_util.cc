#include "io/file_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/failpoint.h"

namespace ftl::io {

Result<std::string> ReadTextFile(const std::string& path,
                                 const char* failpoint_site) {
  FTL_FAILPOINT(failpoint_site);
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open for read: " + path);
  std::stringstream buf;
  buf << f.rdbuf();
  if (f.bad()) return Status::IOError("read failed: " + path);
  return buf.str();
}

Status WriteTextFile(const std::string& path, const std::string& payload,
                     const char* failpoint_site) {
  size_t keep = payload.size();
  if (failpoint::AnyArmed()) {
    failpoint::Hit hit = failpoint::CheckIo(failpoint_site);
    if (!hit.status.ok()) return hit.status;
    if (hit.partial_write) {
      // arg == 0 means "half the payload": a torn write somewhere in
      // the middle, the default shape of a crash mid-flush.
      size_t budget = hit.arg > 0 ? static_cast<size_t>(hit.arg)
                                  : payload.size() / 2;
      keep = std::min(keep, budget);
    }
  }
  std::ofstream f(path, std::ios::trunc | std::ios::binary);
  if (!f) return Status::IOError("cannot open for write: " + path);
  f.write(payload.data(), static_cast<std::streamsize>(keep));
  f.close();
  if (!f) return Status::IOError("write failed: " + path);
  if (keep < payload.size()) {
    return Status::IOError(std::string("failpoint '") + failpoint_site +
                           "': partial write (" + std::to_string(keep) +
                           " of " + std::to_string(payload.size()) +
                           " bytes) to " + path);
  }
  return Status::OK();
}

Result<uint64_t> TruncateToLastValidRecord(const std::string& path,
                                           const ValidPrefixFn& valid_prefix) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    return Status::NotFound("no such file: " + path);
  }
  // Read directly, with no failpoint: repair runs inside recovery
  // paths that are themselves under fault injection, and re-tripping
  // an io.read_* site here would make the repair untestable.
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open for read: " + path);
  std::stringstream buf;
  buf << f.rdbuf();
  if (f.bad()) return Status::IOError("read failed: " + path);
  const std::string data = buf.str();
  f.close();

  size_t keep = valid_prefix(std::string_view(data));
  if (keep > data.size()) {
    return Status::Internal("valid_prefix returned " + std::to_string(keep) +
                            " > file size " + std::to_string(data.size()) +
                            " for " + path);
  }
  const uint64_t dropped = static_cast<uint64_t>(data.size() - keep);
  if (dropped == 0) return dropped;
  std::filesystem::resize_file(path, keep, ec);
  if (ec) {
    return Status::IOError("truncate " + path + " to " + std::to_string(keep) +
                           " bytes: " + ec.message());
  }
  FTL_RETURN_NOT_OK(SyncFile(path));
  return dropped;
}

size_t LastCompleteLinePrefix(std::string_view data) {
  size_t nl = data.rfind('\n');
  return nl == std::string_view::npos ? 0 : nl + 1;
}

Status SyncFile(const std::string& path, const char* failpoint_site) {
  if (failpoint_site != nullptr) FTL_FAILPOINT(failpoint_site);
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("open for fsync: " + path + ": " +
                           std::strerror(errno));
  }
  int rc = ::fsync(fd);
  int saved = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync: " + path + ": " + std::strerror(saved));
  }
  return Status::OK();
}

Status SyncDir(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("open dir for fsync: " + path + ": " +
                           std::strerror(errno));
  }
  int rc = ::fsync(fd);
  int saved = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync dir: " + path + ": " +
                           std::strerror(saved));
  }
  return Status::OK();
}

}  // namespace ftl::io
