#include "io/file_util.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/failpoint.h"

namespace ftl::io {

Result<std::string> ReadTextFile(const std::string& path,
                                 const char* failpoint_site) {
  FTL_FAILPOINT(failpoint_site);
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IOError("cannot open for read: " + path);
  std::stringstream buf;
  buf << f.rdbuf();
  if (f.bad()) return Status::IOError("read failed: " + path);
  return buf.str();
}

Status WriteTextFile(const std::string& path, const std::string& payload,
                     const char* failpoint_site) {
  size_t keep = payload.size();
  if (failpoint::AnyArmed()) {
    failpoint::Hit hit = failpoint::CheckIo(failpoint_site);
    if (!hit.status.ok()) return hit.status;
    if (hit.partial_write) {
      // arg == 0 means "half the payload": a torn write somewhere in
      // the middle, the default shape of a crash mid-flush.
      size_t budget = hit.arg > 0 ? static_cast<size_t>(hit.arg)
                                  : payload.size() / 2;
      keep = std::min(keep, budget);
    }
  }
  std::ofstream f(path, std::ios::trunc | std::ios::binary);
  if (!f) return Status::IOError("cannot open for write: " + path);
  f.write(payload.data(), static_cast<std::streamsize>(keep));
  f.close();
  if (!f) return Status::IOError("write failed: " + path);
  if (keep < payload.size()) {
    return Status::IOError(std::string("failpoint '") + failpoint_site +
                           "': partial write (" + std::to_string(keep) +
                           " of " + std::to_string(payload.size()) +
                           " bytes) to " + path);
  }
  return Status::OK();
}

}  // namespace ftl::io
